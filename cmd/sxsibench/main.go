// Command sxsibench regenerates the paper's tables and figures (Section 6)
// on synthetic corpora. Usage:
//
//	sxsibench -exp all -scale 1.0
//	sxsibench -exp fig10,table2
//
// Experiments: fig8, table2, table3, table4, table5, table6, fig10, fig11,
// fig12, fig13, fig15, table7, fig18, stream, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment list or 'all'")
	scale := flag.Float64("scale", 1.0, "corpus size multiplier")
	flag.Parse()

	s := bench.Scale(*scale)
	runners := []struct {
		name string
		run  func()
	}{
		{"fig8", func() { bench.Fig8(os.Stdout, s) }},
		{"table2", func() { bench.Table23(os.Stdout, s, 64) }},
		{"table3", func() { bench.Table23(os.Stdout, s, 4) }},
		{"table4", func() { bench.Table4(os.Stdout, s) }},
		{"table5", func() { bench.Table5(os.Stdout, s) }},
		{"table6", func() { bench.Table6(os.Stdout, s) }},
		{"fig10", func() { bench.Fig10(os.Stdout, s) }},
		{"fig11", func() { bench.Fig11(os.Stdout, s) }},
		{"fig12", func() { bench.Fig12(os.Stdout, s) }},
		{"fig13", func() { bench.Fig13(os.Stdout, s) }},
		{"fig15", func() { bench.Fig15(os.Stdout, s) }},
		{"table7", func() { bench.Table7(os.Stdout, s) }},
		{"fig18", func() { bench.Fig18(os.Stdout, s) }},
		{"stream", func() { bench.Streaming(os.Stdout, s) }},
	}
	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	ran := 0
	for _, r := range runners {
		if want["all"] || want[r.name] {
			r.run()
			ran++
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
