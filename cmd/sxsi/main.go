// Command sxsi indexes XML documents and evaluates Core+ XPath queries.
//
// The build-once / query-many workflow:
//
//	sxsi build -i doc.xml -o doc.sxsi            index a document and save it
//	sxsi query -i doc.sxsi '//listitem//keyword' load the index, serialize results
//	sxsi count -i doc.sxsi '//keyword'           load the index, print the count
//	sxsi stats -i doc.sxsi                       index statistics
//	sxsi search -dir ./docs 'ocean "coral reef"' BM25-ranked full-text search
//	sxsi serve -dir ./indexes -addr :8080        serve a directory over HTTP
//
// Query and count accept either a saved index (memory-mapped by default,
// so opening is near-instant regardless of index size; -no-mmap copies
// instead) or a raw XML file (indexed on the fly); the two are
// distinguished by the index magic number. The query may be given
// positionally or with -q. "index" is accepted as an alias of "build" and
// -in/-out as aliases of -i/-o.
package main

import (
	"bufio"
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/xpath"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	in := fs.String("i", "", "input file (.xml or saved index)")
	out := fs.String("o", "", "output index file (for 'build')")
	q := fs.String("q", "", "XPath query (may also be given positionally)")
	sample := fs.Int("sample", 64, "FM-index sampling rate l")
	procs := fs.Int("p", 0, "parallel build workers (0 = all CPUs; for 'build')")
	mem := fs.String("mem", "", "build memory budget, e.g. 512M or 2G (empty = unbounded; for 'build')")
	rl := fs.Bool("rl", false, "use the run-length text index (repetitive data)")
	noMmap := fs.Bool("no-mmap", false, "load saved indexes by copying instead of memory-mapping")
	addr := fs.String("addr", ":8080", "listen address (for 'serve')")
	dir := fs.String("dir", "", "document directory (for 'serve')")
	workers := fs.Int("workers", 0, "worker pool size for 'serve' (0 = GOMAXPROCS)")
	cacheSize := fs.Int("cache", 0, "compiled-query LRU capacity for 'serve'")
	strategy := fs.String("strategy", "auto", "evaluation strategy: auto, top-down or bottom-up (for 'query' and 'count')")
	timeout := fs.Duration("timeout", 0, "per-request evaluation deadline for 'serve' (0 = none)")
	watch := fs.Duration("watch", 0, "poll loaded files every D and hot-swap changed ones for 'serve' (0 = off)")
	debugAddr := fs.String("debug-addr", "", "serve net/http/pprof on this address for 'serve' (empty = off)")
	maxConcurrent := fs.Int("max-concurrent", 0, "max concurrent evaluations for 'serve' (0 = unlimited)")
	maxQueue := fs.Int("max-queue", 0, "max queued requests before 429 for 'serve'")
	xpathFilter := fs.String("xpath", "", "restrict 'search' hits to documents matching this XPath")
	topK := fs.Int("k", 0, "number of ranked hits for 'search' (0 = default 10)")
	saveIndex := fs.String("save-index", "", "after 'search', save the posting index to this file")
	fs.StringVar(in, "in", "", "alias of -i")
	fs.StringVar(out, "out", "", "alias of -o")
	fs.Parse(os.Args[2:])
	if *q == "" && fs.NArg() > 0 {
		if cmd == "search" {
			// Search terms may be given as separate words: join them back
			// into one query (`sxsi search -dir . dark horse`).
			*q = strings.Join(fs.Args(), " ")
		} else {
			*q = fs.Arg(0)
		}
	}

	cfg := core.Config{SampleRate: *sample, RunLength: *rl, NoMmap: *noMmap, BuildProcs: *procs}
	if *mem != "" {
		budget, err := parseMem(*mem)
		if err != nil {
			fatal(err.Error())
		}
		cfg.MemoryBudget = budget
	}
	st, err := xpath.ParseStrategy(*strategy)
	if err != nil {
		fatal(err.Error())
	}
	cfg.Query.ForceStrategy = st
	if cmd == "search" {
		if *dir == "" {
			fatal("missing -dir document directory")
		}
		if *q == "" {
			fatal("missing search terms")
		}
		runSearch(*dir, *q, *xpathFilter, *topK, *saveIndex,
			collection.Config{Workers: *workers, CacheSize: *cacheSize, RequestTimeout: *timeout, Index: cfg})
		return
	}
	if cmd == "serve" {
		if *dir == "" {
			fatal("missing -dir document directory")
		}
		opts := service.Options{
			Addr:       *addr,
			Dir:        *dir,
			DebugAddr:  *debugAddr,
			Watch:      *watch,
			HTTP:       service.Config{MaxConcurrent: *maxConcurrent, MaxQueue: *maxQueue},
			Collection: collection.Config{Workers: *workers, CacheSize: *cacheSize, RequestTimeout: *timeout, Index: cfg},
		}
		check(service.Run(opts, os.Stderr))
		return
	}

	if *in == "" {
		fatal("missing -i input file")
	}

	switch cmd {
	case "build", "index":
		if *out == "" {
			fatal("missing -o output index file")
		}
		// A build may run for a long time on large corpora: make SIGINT and
		// SIGTERM cancel it cleanly. Every pipeline stage polls the context,
		// and an interrupted save removes its temporary file, so no partial
		// .sxsi or orphaned .sxsi.tmp is left behind.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		data, err := os.ReadFile(*in)
		check(err)
		var eng *core.Engine
		if core.IsIndexData(data) {
			eng, err = core.Load(bytes.NewReader(data), cfg)
		} else {
			eng, err = core.BuildContext(ctx, data, cfg)
		}
		check(err)
		n, err := eng.SaveFileCtx(ctx, *out)
		check(err)
		fmt.Printf("wrote %d bytes to %s\n", n, *out)
	case "count":
		if *q == "" {
			fatal("missing query")
		}
		n, err := open(*in, cfg).Count(*q)
		check(err)
		fmt.Println(n)
	case "query":
		if *q == "" {
			fatal("missing query")
		}
		w := bufio.NewWriter(os.Stdout)
		_, err := open(*in, cfg).Serialize(*q, w)
		check(err)
		check(w.Flush())
	case "stats":
		st := open(*in, cfg).Stats()
		fmt.Printf("nodes:        %d\n", st.Nodes)
		fmt.Printf("texts:        %d\n", st.Texts)
		fmt.Printf("distinct tags:%d\n", st.Tags)
		fmt.Printf("tree bytes:   %d\n", st.TreeBytes)
		fmt.Printf("fm bytes:     %d\n", st.TextBytes)
		fmt.Printf("plain bytes:  %d\n", st.PlainBytes)
		fmt.Printf("mapped:       %v\n", st.Mapped)
		fmt.Printf("mapped bytes: %d\n", st.MappedBytes)
		fmt.Printf("heap bytes:   %d\n", st.HeapBytes)
	default:
		usage()
	}
}

// runSearch loads every document under dir into a collection and prints
// the BM25-ranked hits of the term query, one per line:
//
//	RANK. NAME  SCORE  [nodes=N]  SNIPPET
//
// An -xpath filter keeps only documents where the expression selects at
// least one node (N in the output); -save-index persists the posting index
// built along the way, which `sxsi serve` rebuilds on startup anyway but
// other tools can mmap.
func runSearch(dir, terms, xpathFilter string, k int, saveIndex string, ccfg collection.Config) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	c := collection.New(ccfg)
	names, err := c.LoadDir(ctx, dir)
	check(err)
	if len(names) == 0 {
		fatal("no .xml or .sxsi documents under " + dir)
	}
	rep, err := c.Search(ctx, terms, xpathFilter, k)
	check(err)
	fmt.Printf("%d candidates, %d matched\n", rep.Candidates, rep.Matched)
	for i, h := range rep.Hits {
		fmt.Printf("%2d. %-20s %8.4f", i+1, h.Doc, h.Score)
		if xpathFilter != "" {
			fmt.Printf("  nodes=%d", h.Nodes)
		}
		if h.Snippet != "" {
			fmt.Printf("  %s", h.Snippet)
		}
		fmt.Println()
	}
	for _, name := range sortedKeys(rep.Failed) {
		fmt.Fprintf(os.Stderr, "sxsi: %s: %s\n", name, rep.Failed[name])
	}
	if saveIndex != "" {
		n, err := c.SaveSearchIndex(saveIndex)
		check(err)
		fmt.Printf("wrote %d index bytes to %s\n", n, saveIndex)
	}
}

// sortedKeys returns the keys of m, sorted.
func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// open loads a saved index (memory-mapped unless -no-mmap) or builds one
// from raw XML, sniffing the magic.
func open(path string, cfg core.Config) *core.Engine {
	f, err := os.Open(path)
	check(err)
	head := make([]byte, 16)
	n, _ := io.ReadFull(f, head) // shorter files simply fail the magic check
	check(f.Close())
	if core.IsIndexData(head[:n]) {
		eng, err := core.OpenFile(path, cfg)
		check(err)
		return eng
	}
	data, err := os.ReadFile(path)
	check(err)
	eng, err := core.Build(data, cfg)
	check(err)
	return eng
}

// parseMem parses a memory budget: a plain byte count, or a number with a
// K/M/G/T suffix (binary units), case-insensitive, e.g. "512M", "2g".
func parseMem(s string) (int64, error) {
	t := strings.TrimSpace(s)
	shift := 0
	switch {
	case t == "":
		return 0, fmt.Errorf("invalid memory budget %q", s)
	default:
		switch t[len(t)-1] {
		case 'k', 'K':
			shift, t = 10, t[:len(t)-1]
		case 'm', 'M':
			shift, t = 20, t[:len(t)-1]
		case 'g', 'G':
			shift, t = 30, t[:len(t)-1]
		case 't', 'T':
			shift, t = 40, t[:len(t)-1]
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil || n <= 0 || n > (1<<62)>>shift {
		return 0, fmt.Errorf("invalid memory budget %q (want e.g. 512M, 2G)", s)
	}
	return n << shift, nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: sxsi <command> -i FILE [flags] [QUERY]

commands:
  build  -i doc.xml  -o doc.sxsi    index a document and save the index
  query  -i doc.sxsi 'XPATH'        evaluate and serialize result subtrees
  count  -i doc.sxsi 'XPATH'        evaluate in counting mode
  stats  -i doc.sxsi                print index statistics
  search -dir DIR 'TERMS'           BM25-ranked full-text search over a directory
  serve  -dir DIR [-addr :8080]     serve a directory of documents over HTTP

flags: -sample N (FM sampling rate), -rl (run-length text index),
       -p N (build: parallel workers, 0 = all CPUs),
       -mem BUDGET (build: transient memory budget, e.g. 512M or 2G),
       -no-mmap (copy saved indexes instead of memory-mapping them),
       -strategy auto|top-down|bottom-up (force the evaluation strategy),
       -workers N / -cache N (serve worker pool and query-cache size),
       -timeout D (serve per-request evaluation deadline, e.g. 30s),
       -watch D (serve: poll files and hot-swap changed indexes),
       -debug-addr A (serve: net/http/pprof listener),
       -max-concurrent N / -max-queue N (serve: admission control, 429 when full),
       -xpath EXPR / -k N / -save-index F (search: structural filter, top-k, persist)`)
	os.Exit(2)
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "sxsi:", msg)
	os.Exit(2)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sxsi:", err)
		os.Exit(1)
	}
}
