// Command sxsi indexes XML documents and evaluates Core+ XPath queries.
//
//	sxsi index  -in doc.xml -out doc.sxsi        build and save an index
//	sxsi count  -in doc.sxsi -q '//keyword'      counting query
//	sxsi query  -in doc.sxsi -q '//keyword'      serialize results
//	sxsi stats  -in doc.sxsi                     index statistics
//
// -in accepts either a raw XML file (indexed on the fly) or a saved index.
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	in := fs.String("in", "", "input file (.xml or saved index)")
	out := fs.String("out", "", "output index file (for 'index')")
	q := fs.String("q", "", "XPath query")
	sample := fs.Int("sample", 64, "FM-index sampling rate l")
	rl := fs.Bool("rl", false, "use the run-length text index (repetitive data)")
	fs.Parse(os.Args[2:])

	if *in == "" {
		fatal("missing -in")
	}
	cfg := core.Config{SampleRate: *sample, RunLength: *rl}
	eng := open(*in, cfg)

	switch cmd {
	case "index":
		if *out == "" {
			fatal("missing -out")
		}
		f, err := os.Create(*out)
		check(err)
		defer f.Close()
		n, err := eng.Save(f)
		check(err)
		fmt.Printf("wrote %d bytes to %s\n", n, *out)
	case "count":
		if *q == "" {
			fatal("missing -q")
		}
		n, err := eng.Count(*q)
		check(err)
		fmt.Println(n)
	case "query":
		if *q == "" {
			fatal("missing -q")
		}
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		_, err := eng.Serialize(*q, w)
		check(err)
	case "stats":
		st := eng.Stats()
		fmt.Printf("nodes:        %d\n", st.Nodes)
		fmt.Printf("texts:        %d\n", st.Texts)
		fmt.Printf("distinct tags:%d\n", st.Tags)
		fmt.Printf("tree bytes:   %d\n", st.TreeBytes)
		fmt.Printf("fm bytes:     %d\n", st.TextBytes)
		fmt.Printf("plain bytes:  %d\n", st.PlainBytes)
	default:
		usage()
	}
}

// open loads a saved index or builds one from raw XML, sniffing the magic.
func open(path string, cfg core.Config) *core.Engine {
	data, err := os.ReadFile(path)
	check(err)
	if bytes.HasPrefix(data, []byte("SXSIGO")) {
		eng, err := core.Load(bytes.NewReader(data), cfg)
		check(err)
		return eng
	}
	eng, err := core.Build(data, cfg)
	check(err)
	return eng
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sxsi {index|count|query|stats} -in FILE [-out FILE] [-q QUERY]")
	os.Exit(2)
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "sxsi:", msg)
	os.Exit(2)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sxsi:", err)
		os.Exit(1)
	}
}
