// Command sxsivet is the repo-specific static analysis suite: five
// analyzers that mechanize the engine's safety contracts (mapped memory
// is read-only, document-scale loops poll their context, on-disk
// lengths are capped before allocation, load paths wrap
// persist.ErrCorrupt, guarded-by annotations hold).
//
// Two ways to run it:
//
//	go vet -vettool=$(go env GOPATH)/bin/sxsivet ./...   # vet harness
//	go run ./cmd/sxsivet ./...                           # standalone
//
// Under `go vet -vettool` the tool speaks cmd/go's unit-checker
// protocol (per-package JSON configs, export data supplied, results
// cached by the build system). Standalone mode loads packages itself
// through `go list -export` — same analyzers, same output, no vet
// caching. Suppress a finding with an in-source comment:
//
//	//sxsivet:ignore <analyzer> <reason>
package main

import (
	"os"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/checker"
)

func main() {
	args := os.Args[1:]
	if len(args) == 1 && (strings.HasPrefix(args[0], "-V") || args[0] == "-flags" || strings.HasSuffix(args[0], ".cfg")) {
		os.Exit(checker.Vet(args, lint.Analyzers()))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(checker.Standalone(args, lint.Analyzers()))
}
