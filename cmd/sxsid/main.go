// Command sxsid is the SXSI query daemon: it bulk-loads a directory of
// saved indexes (.sxsi, memory-mapped by default so startup latency and
// private memory are independent of index size; -no-mmap copies instead)
// and raw XML documents (.xml, indexed on startup) and serves Core+ XPath
// queries over HTTP.
//
//	sxsid -dir ./indexes -addr :8080
//
// Endpoints (see package service):
//
//	GET  /healthz                     liveness
//	GET  /docs                        document list with index statistics
//	GET  /count?doc=D&q=//a//b        counting mode
//	GET  /query?doc=D&q=//a//b        serialized results (CLI byte-identical)
//	POST /query                       JSON batch over the worker pool
//	GET  /stats[?doc=D]               serving counters / per-index statistics
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dir := flag.String("dir", "", "directory of .sxsi indexes and .xml documents to load at startup")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	cache := flag.Int("cache", 0, "compiled-query LRU capacity (0 = default, negative disables)")
	sample := flag.Int("sample", 64, "FM-index sampling rate l for documents built from raw XML")
	rl := flag.Bool("rl", false, "use the run-length text index (repetitive data)")
	noMmap := flag.Bool("no-mmap", false, "load .sxsi indexes by copying instead of memory-mapping")
	flag.Parse()

	cfg := collection.Config{
		Workers:   *workers,
		CacheSize: *cache,
		Index:     core.Config{SampleRate: *sample, RunLength: *rl, NoMmap: *noMmap},
	}
	if err := service.Run(*addr, *dir, cfg, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "sxsid:", err)
		os.Exit(1)
	}
}
