// Command sxsid is the SXSI query daemon: it bulk-loads a directory of
// saved indexes (.sxsi, memory-mapped by default so startup latency and
// private memory are independent of index size; -no-mmap copies instead)
// and raw XML documents (.xml, indexed on startup) and serves Core+ XPath
// queries over HTTP.
//
//	sxsid -dir ./indexes -addr :8080
//
// Endpoints (see package service):
//
//	GET  /healthz                     liveness
//	GET  /docs                        document list with index statistics
//	GET  /count?doc=D&q=//a//b        counting mode (doc=* fans out)
//	GET  /query?doc=D&q=//a//b        serialized results (CLI byte-identical)
//	POST /query                       JSON batch over the worker pool
//	GET  /search?q=terms              BM25-ranked full-text search (top-k)
//	POST /reload                      hot-swap changed index files
//	GET  /stats[?doc=D]               serving counters / per-index statistics
//	GET  /metrics                     Prometheus text-format metrics
//
// Operational flags: -watch D polls the loaded files and hot-swaps changed
// ones every D; -debug-addr serves net/http/pprof on a second listener;
// -max-concurrent/-max-queue bound in-flight evaluations (excess answers
// 429 + Retry-After); -timeout D puts a deadline on every evaluation.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dir := flag.String("dir", "", "directory of .sxsi indexes and .xml documents to load at startup")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	cache := flag.Int("cache", 0, "compiled-query LRU capacity (0 = default, negative disables)")
	sample := flag.Int("sample", 64, "FM-index sampling rate l for documents built from raw XML")
	rl := flag.Bool("rl", false, "use the run-length text index (repetitive data)")
	noMmap := flag.Bool("no-mmap", false, "load .sxsi indexes by copying instead of memory-mapping")
	timeout := flag.Duration("timeout", 0, "per-request evaluation deadline (0 = none)")
	watch := flag.Duration("watch", 0, "poll loaded files every D and hot-swap changed ones (0 = off)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this address (empty = off)")
	maxConcurrent := flag.Int("max-concurrent", 0, "max concurrent query evaluations (0 = unlimited)")
	maxQueue := flag.Int("max-queue", 0, "max requests queued for an evaluation slot before answering 429")
	flag.Parse()

	opts := service.Options{
		Addr:      *addr,
		Dir:       *dir,
		DebugAddr: *debugAddr,
		Watch:     *watch,
		HTTP:      service.Config{MaxConcurrent: *maxConcurrent, MaxQueue: *maxQueue},
		Collection: collection.Config{
			Workers:        *workers,
			CacheSize:      *cache,
			RequestTimeout: *timeout,
			Index:          core.Config{SampleRate: *sample, RunLength: *rl, NoMmap: *noMmap},
		},
	}
	if err := service.Run(opts, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "sxsid:", err)
		os.Exit(1)
	}
}
