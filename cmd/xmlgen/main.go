// Command xmlgen writes the synthetic benchmark corpora (Section 6.1
// substitutes) to disk.
//
//	xmlgen -kind xmark -size 100000000 -seed 1 -out xmark100m.xml
//
// Kinds: xmark, medline, treebank, wiki, bioxml.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
)

func main() {
	kind := flag.String("kind", "xmark", "corpus kind: xmark|medline|treebank|wiki|bioxml")
	size := flag.Int("size", 10<<20, "approximate size in bytes")
	seed := flag.Uint64("seed", 1, "generator seed")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	var data []byte
	switch *kind {
	case "xmark":
		data = gen.XMark(*seed, *size)
	case "medline":
		data = gen.Medline(*seed, *size)
	case "treebank":
		data = gen.Treebank(*seed, *size)
	case "wiki":
		data = gen.Wiki(*seed, *size)
	case "bioxml":
		data = gen.BioXML(*seed, *size)
	default:
		fmt.Fprintf(os.Stderr, "unknown kind %q\n", *kind)
		os.Exit(2)
	}
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %d bytes to %s\n", len(data), *out)
}
