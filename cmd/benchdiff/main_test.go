package main

import (
	"regexp"
	"testing"
)

func TestParseLine(t *testing.T) {
	cases := []struct {
		line string
		name string
		ns   float64
		ok   bool
	}{
		{"BenchmarkLoad-8   \t     100\t  12300201 ns/op\t 170.90 MB/s", "BenchmarkLoad", 12300201, true},
		{"BenchmarkFig10_XMark/X01/count-4 \t 1000\t 52.5 ns/op", "BenchmarkFig10_XMark/X01/count", 52.5, true},
		{"BenchmarkNoProcs \t 10\t 99 ns/op", "BenchmarkNoProcs", 99, true},
		{"PASS", "", 0, false},
		{"ok  \trepro\t0.9s", "", 0, false},
		{"goos: linux", "", 0, false},
		{"BenchmarkBroken 12", "", 0, false},
	}
	for _, c := range cases {
		name, ns, ok := parseLine(c.line)
		if ok != c.ok || name != c.name || ns != c.ns {
			t.Fatalf("parseLine(%q) = %q,%v,%v want %q,%v,%v", c.line, name, ns, ok, c.name, c.ns, c.ok)
		}
	}
}

func TestCompareGating(t *testing.T) {
	oldRuns := map[string][]float64{
		"BenchmarkLoad":     {100, 110, 105}, // median 105
		"BenchmarkOther":    {50},
		"BenchmarkDeleted":  {10},
		"BenchmarkUnpinned": {10},
	}
	newRuns := map[string][]float64{
		"BenchmarkLoad":     {150, 160, 140}, // median 150: 1.43x, regressed
		"BenchmarkOther":    {60},            // 1.2x, under threshold
		"BenchmarkNew":      {1},             // no baseline
		"BenchmarkUnpinned": {500},           // huge, but not pinned
	}
	re := regexp.MustCompile(`^BenchmarkLoad$|^BenchmarkOther$`)
	rep := compare(oldRuns, newRuns, re, 1.30)
	got := map[string]result{}
	for _, r := range rep.Results {
		got[r.Name] = r
	}
	if !got["BenchmarkLoad"].Regressed {
		t.Fatal("BenchmarkLoad should regress")
	}
	if got["BenchmarkOther"].Regressed || got["BenchmarkUnpinned"].Regressed {
		t.Fatal("under-threshold or unpinned benchmark flagged")
	}
	if got["BenchmarkNew"].Regressed || got["BenchmarkDeleted"].Regressed {
		t.Fatal("one-sided benchmarks must never gate")
	}
	if got["BenchmarkLoad"].OldNsOp != 105 || got["BenchmarkLoad"].NewNsOp != 150 {
		t.Fatalf("median wrong: %+v", got["BenchmarkLoad"])
	}
}
