package main

import (
	"regexp"
	"testing"
)

func TestParseLine(t *testing.T) {
	cases := []struct {
		line string
		name string
		ns   float64
		ok   bool
	}{
		{"BenchmarkLoad-8   \t     100\t  12300201 ns/op\t 170.90 MB/s", "BenchmarkLoad", 12300201, true},
		{"BenchmarkFig10_XMark/X01/count-4 \t 1000\t 52.5 ns/op", "BenchmarkFig10_XMark/X01/count", 52.5, true},
		{"BenchmarkNoProcs \t 10\t 99 ns/op", "BenchmarkNoProcs", 99, true},
		{"PASS", "", 0, false},
		{"ok  \trepro\t0.9s", "", 0, false},
		{"goos: linux", "", 0, false},
		{"BenchmarkBroken 12", "", 0, false},
	}
	for _, c := range cases {
		name, ns, ok := parseLine(c.line)
		if ok != c.ok || name != c.name || ns != c.ns {
			t.Fatalf("parseLine(%q) = %q,%v,%v want %q,%v,%v", c.line, name, ns, ok, c.name, c.ns, c.ok)
		}
	}
}

func TestCompareGating(t *testing.T) {
	oldRuns := map[string][]float64{
		"BenchmarkLoad":     {100, 110, 105}, // median 105
		"BenchmarkOther":    {50},
		"BenchmarkDeleted":  {10},
		"BenchmarkUnpinned": {10},
	}
	newRuns := map[string][]float64{
		"BenchmarkLoad":     {150, 160, 140}, // median 150: 1.43x, regressed
		"BenchmarkOther":    {60},            // 1.2x, under threshold
		"BenchmarkNew":      {1},             // no baseline
		"BenchmarkUnpinned": {500},           // huge, but not pinned
	}
	re := regexp.MustCompile(`^BenchmarkLoad$|^BenchmarkOther$`)
	rep := compare(oldRuns, newRuns, re, 1.30)
	got := map[string]result{}
	for _, r := range rep.Results {
		got[r.Name] = r
	}
	if !got["BenchmarkLoad"].Regressed {
		t.Fatal("BenchmarkLoad should regress")
	}
	if got["BenchmarkOther"].Regressed || got["BenchmarkUnpinned"].Regressed {
		t.Fatal("under-threshold or unpinned benchmark flagged")
	}
	if got["BenchmarkNew"].Regressed || got["BenchmarkDeleted"].Regressed {
		t.Fatal("one-sided benchmarks must never gate")
	}
	if got["BenchmarkLoad"].OldNsOp != 105 || got["BenchmarkLoad"].NewNsOp != 150 {
		t.Fatalf("median wrong: %+v", got["BenchmarkLoad"])
	}
}

func TestSnapshot(t *testing.T) {
	runs := map[string][]float64{
		"BenchmarkSearchTopK": {300, 100, 200}, // median 200
		"BenchmarkLoad":       {50, 60},        // even count: mean of middle two
		"BenchmarkUnpinned":   {7},
	}
	re := regexp.MustCompile(`^BenchmarkLoad$|^BenchmarkSearchTopK$`)
	rep := snapshot(runs, re, "abc123")
	if rep.Commit != "abc123" || rep.Pinned != re.String() {
		t.Fatalf("header: %+v", rep)
	}
	// Sorted by name for stable diffs across runs.
	wantOrder := []string{"BenchmarkLoad", "BenchmarkSearchTopK", "BenchmarkUnpinned"}
	if len(rep.Results) != len(wantOrder) {
		t.Fatalf("results: %+v", rep.Results)
	}
	for i, r := range rep.Results {
		if r.Name != wantOrder[i] {
			t.Fatalf("order[%d] = %s, want %s", i, r.Name, wantOrder[i])
		}
	}
	got := map[string]snapshotResult{}
	for _, r := range rep.Results {
		got[r.Name] = r
	}
	if r := got["BenchmarkSearchTopK"]; r.NsOp != 200 || r.Runs != 3 || !r.Pinned {
		t.Fatalf("SearchTopK: %+v", r)
	}
	if r := got["BenchmarkLoad"]; r.NsOp != 55 || r.Runs != 2 || !r.Pinned {
		t.Fatalf("Load: %+v", r)
	}
	if got["BenchmarkUnpinned"].Pinned {
		t.Fatal("unpinned benchmark marked pinned")
	}
}
