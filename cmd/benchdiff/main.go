// Command benchdiff compares two `go test -bench` outputs and gates CI on
// performance regressions. It reads the old (merge-base) and new (PR)
// outputs, takes the median ns/op per benchmark across repeated runs
// (-count), reports every ratio as JSON, and exits nonzero when a
// benchmark matching the pinned regular expression regressed by more than
// the threshold.
//
//	benchdiff -old base.txt -new pr.txt \
//	    -pinned '^BenchmarkLoad$|^BenchmarkBwdSearchDeep$' \
//	    -threshold 1.30 -json BENCH_pr.json
//
// Benchmarks present on only one side are reported but never gate: a new
// benchmark has no baseline, and a deleted one has no regression. Unlike
// benchstat, no statistics beyond the median are attempted — the gate is
// deliberately loose (default +30%) so shared-runner noise does not flap,
// and benchstat can still be run on the same files for human consumption.
//
// With -snapshot, benchdiff instead canonicalizes a single run into the
// benchmark-trajectory JSON that CI commits on every push to main (the
// BENCH_<run>.json files at the repo root): per benchmark the median ns/op
// and the run count, sorted by name, plus whatever -commit identifier the
// caller passes. Nothing gates in snapshot mode.
//
//	benchdiff -snapshot run.txt -pinned "$PINNED" -commit "$SHA" -json BENCH_main.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// result is one benchmark's comparison in the JSON report.
type result struct {
	Name      string  `json:"name"`
	OldNsOp   float64 `json:"old_ns_op,omitempty"`
	NewNsOp   float64 `json:"new_ns_op,omitempty"`
	Ratio     float64 `json:"ratio,omitempty"` // new / old
	Pinned    bool    `json:"pinned"`
	Regressed bool    `json:"regressed"`
}

type report struct {
	Threshold float64  `json:"threshold"`
	Pinned    string   `json:"pinned"`
	Results   []result `json:"results"`
}

// snapshotResult is one benchmark's entry in the trajectory JSON.
type snapshotResult struct {
	Name   string  `json:"name"`
	NsOp   float64 `json:"ns_op"`
	Runs   int     `json:"runs"`
	Pinned bool    `json:"pinned"`
}

// snapshotReport is the canonical trajectory file CI commits on pushes to
// main: one point of the benchmark time series.
type snapshotReport struct {
	Commit  string           `json:"commit,omitempty"`
	Pinned  string           `json:"pinned"`
	Results []snapshotResult `json:"results"`
}

func main() {
	oldPath := flag.String("old", "", "benchmark output of the baseline (merge-base)")
	newPath := flag.String("new", "", "benchmark output of the candidate (PR)")
	snapPath := flag.String("snapshot", "", "canonicalize this single benchmark output instead of comparing (trajectory mode)")
	pinned := flag.String("pinned", ".*", "regexp of benchmark names that gate the run")
	threshold := flag.Float64("threshold", 1.30, "maximum allowed new/old ns-per-op ratio for pinned benchmarks")
	commit := flag.String("commit", "", "commit identifier embedded in -snapshot output")
	jsonOut := flag.String("json", "", "write the full comparison as JSON to this file")
	flag.Parse()
	re, err := regexp.Compile(*pinned)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff: bad -pinned:", err)
		os.Exit(2)
	}
	if *snapPath != "" {
		runs, err := parseFile(*snapPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		rep := snapshot(runs, re, *commit)
		if len(rep.Results) == 0 {
			fmt.Fprintln(os.Stderr, "benchdiff: no benchmark results in", *snapPath)
			os.Exit(2)
		}
		for _, r := range rep.Results {
			fmt.Printf("%-50s ns/op=%12.1f runs=%d pinned=%v\n", r.Name, r.NsOp, r.Runs, r.Pinned)
		}
		if *jsonOut != "" {
			if err := writeJSON(*jsonOut, rep); err != nil {
				fmt.Fprintln(os.Stderr, "benchdiff: write json:", err)
				os.Exit(2)
			}
		}
		return
	}
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -old and -new are required (or -snapshot)")
		os.Exit(2)
	}
	oldRuns, err := parseFile(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newRuns, err := parseFile(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	rep := compare(oldRuns, newRuns, re, *threshold)
	failed := false
	for _, r := range rep.Results {
		status := "ok"
		switch {
		case r.OldNsOp == 0:
			status = "new"
		case r.NewNsOp == 0:
			status = "gone"
		case r.Regressed:
			status = "REGRESSED"
			failed = true
		}
		fmt.Printf("%-50s old=%12.1f new=%12.1f ratio=%5.2f pinned=%-5v %s\n",
			r.Name, r.OldNsOp, r.NewNsOp, r.Ratio, r.Pinned, status)
	}
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, rep); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff: write json:", err)
			os.Exit(2)
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchdiff: pinned benchmarks regressed beyond %.0f%%\n", (*threshold-1)*100)
		os.Exit(1)
	}
}

// snapshot canonicalizes one run set into the trajectory report: median
// ns/op per benchmark, sorted by name for stable diffs.
func snapshot(runs map[string][]float64, pinned *regexp.Regexp, commit string) snapshotReport {
	rep := snapshotReport{Commit: commit, Pinned: pinned.String()}
	names := make([]string, 0, len(runs))
	for n := range runs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		rep.Results = append(rep.Results, snapshotResult{
			Name:   n,
			NsOp:   median(runs[n]),
			Runs:   len(runs[n]),
			Pinned: pinned.MatchString(n),
		})
	}
	return rep
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// compare builds the report: per benchmark, median old vs median new.
func compare(oldRuns, newRuns map[string][]float64, pinned *regexp.Regexp, threshold float64) report {
	names := map[string]bool{}
	for n := range oldRuns {
		names[n] = true
	}
	for n := range newRuns {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	rep := report{Threshold: threshold, Pinned: pinned.String()}
	for _, n := range sorted {
		r := result{Name: n, Pinned: pinned.MatchString(n)}
		r.OldNsOp = median(oldRuns[n])
		r.NewNsOp = median(newRuns[n])
		if r.OldNsOp > 0 && r.NewNsOp > 0 {
			r.Ratio = r.NewNsOp / r.OldNsOp
			r.Regressed = r.Pinned && r.Ratio > threshold
		}
		rep.Results = append(rep.Results, r)
	}
	return rep
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}

func parseFile(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	runs := map[string][]float64{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		name, ns, ok := parseLine(sc.Text())
		if ok {
			runs[name] = append(runs[name], ns)
		}
	}
	return runs, sc.Err()
}

// parseLine extracts (name, ns/op) from one benchmark result line, e.g.
//
//	BenchmarkLoad-8   	     100	  12300201 ns/op	 170.90 MB/s
//
// The trailing -N GOMAXPROCS suffix is stripped so runs from machines with
// different core counts still line up.
func parseLine(line string) (string, float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", 0, false
	}
	nsIdx := -1
	for i, f := range fields {
		if f == "ns/op" {
			nsIdx = i - 1
			break
		}
	}
	if nsIdx < 2 {
		return "", 0, false
	}
	ns, err := strconv.ParseFloat(fields[nsIdx], 64)
	if err != nil {
		return "", 0, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	return name, ns, true
}
