// Genomics: the paper's Section 6.7 scenario — a gene-annotation database
// whose DNA content is highly repetitive. The text index is swapped for the
// run-length FM sequence (the RLCSA substitution), and transcription-factor
// binding sites are found with PSSM queries that run as branch-and-bound
// backtracking over the BWT, plugged into XPath as a custom predicate.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/gen"
	"repro/internal/pssm"
)

func main() {
	data := gen.BioXML(7, 8<<20)
	fmt.Printf("corpus: %.1f MB of gene annotations + DNA\n", float64(len(data))/(1<<20))

	// RunLength selects the run-length FM sequence: on repetitive DNA its
	// size is proportional to the number of BWT runs, not the text length.
	idx, err := sxsi.Build(data, sxsi.Config{RunLength: true, SampleRate: 16})
	if err != nil {
		log.Fatal(err)
	}
	st := idx.Stats()
	fmt.Printf("text index: %.1f MB for %.1f MB of text\n",
		float64(st.TextBytes)/(1<<20), float64(len(data))/(1<<20))

	// Register the PSSM matcher as a custom XPath predicate; only the text
	// machinery changes, the automata/tree engine is untouched (the
	// modularity claim of Section 6.7).
	matrices := map[string]pssm.Matrix{"M1": pssm.M1(), "M2": pssm.M2(), "M3": pssm.M3()}
	match := func(lit string) []int32 {
		m := matrices[lit]
		occs := pssm.Search(idx.Doc.FM, &m, m.MaxScore()*0.85)
		return pssm.DistinctTexts(occs)
	}
	eng := idx.WithQueryOptions(sxsi.QueryOptions{
		CustomMatchSets: map[string]func(string) []int32{"pssm": match},
	})

	for _, src := range []string{
		`//promoter[pssm(., 'M1')]`,
		`//exon[.//sequence[pssm(., 'M1')]]`,
		`//gene[biotype = 'protein_coding']`,
		`//transcript[protein]`,
	} {
		q, err := eng.Compile(src)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		n := q.Count()
		fmt.Printf("%-45s %6d results in %8v  [%s]\n", src, n, time.Since(start).Round(time.Microsecond), q.Strategy())
	}

	// Plain substring search over DNA also works through the FM-index.
	n, _ := idx.Count(`//promoter[contains(., 'TATAAA')]`)
	fmt.Printf("promoters containing a TATA box: %d\n", n)
}
