// Quickstart: index an XML document in memory, run counting, materializing
// and serializing queries, and save/reload the index.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	"repro"
)

const doc = `<parts>
<part name="pen"><color>blue</color><stock>40</stock>Soon discontinued.</part>
<part name="rubber"><stock>30</stock></part>
<part name="pencil"><color>green</color><stock>12</stock></part>
</parts>`

func main() {
	// Build the self-index: after this, the original document could be
	// discarded — every query and serialization below runs on the index.
	idx, err := sxsi.Build([]byte(doc), sxsi.Config{})
	if err != nil {
		log.Fatal(err)
	}
	st := idx.Stats()
	fmt.Printf("indexed: %d nodes, %d texts, %d distinct labels\n", st.Nodes, st.Texts, st.Tags)

	// Counting mode (Section 5.5.3 of the paper): no results materialized.
	n, err := idx.Count("//part[color]/stock")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parts with a color have %d stock entries\n", n)

	// Text predicates run on the FM-index.
	n, _ = idx.Count("//part[contains(., 'discontinued')]")
	fmt.Printf("%d part(s) mention 'discontinued'\n", n)

	// Attribute tests and serialization.
	fmt.Println("serialize //part[@name = 'pen']/color:")
	if _, err := idx.Serialize("//part[@name = 'pen']/color", os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Persist and reload: loading skips suffix sorting and is much faster
	// than building.
	var buf bytes.Buffer
	if _, err := idx.Save(&buf); err != nil {
		log.Fatal(err)
	}
	idx2, err := sxsi.Load(&buf, sxsi.Config{})
	if err != nil {
		log.Fatal(err)
	}
	n, _ = idx2.Count("//stock")
	fmt.Printf("after reload: %d stock elements\n", n)
}
