// Wikisearch: the paper's Section 6.6.2 scenario — natural-language search
// over wiki pages through the pluggable word-based text index: phrase
// queries match at word boundaries via a word-level suffix array, plugged
// into XPath as the custom predicate wcontains.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/gen"
	"repro/internal/wordindex"
)

func main() {
	data := gen.Wiki(99, 16<<20)
	fmt.Printf("corpus: %.1f MB of wiki pages\n", float64(len(data))/(1<<20))

	idx, err := sxsi.Build(data, sxsi.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// Build the word index over the same text collection and register it.
	start := time.Now()
	widx, err := wordindex.New(idx.Doc.Plain.All())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("word index: %d tokens, %d distinct words, built in %v\n",
		widx.NumWords(), widx.VocabSize(), time.Since(start).Round(time.Millisecond))

	eng := idx.WithQueryOptions(sxsi.QueryOptions{
		CustomMatchSets: map[string]func(string) []int32{
			"wcontains": widx.ContainsPhrase,
		},
	})

	for _, src := range []string{
		`//text[wcontains(., "dark horse")]`,
		`//page/title[wcontains(., "crude oil")]`,
		`//page[.//text[wcontains(., "played on a board")]]/title`,
	} {
		q, err := eng.Compile(src)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		n := q.Count()
		fmt.Printf("%-55s %5d results in %8v  [%s]\n", src, n, time.Since(start).Round(time.Microsecond), q.Strategy())
	}

	// Word-boundary semantics differ from substring semantics: compare.
	a, _ := eng.Count(`//text[wcontains(., "horse")]`)
	b, _ := idx.Count(`//text[contains(., "horse")]`)
	fmt.Printf("word match 'horse': %d pages; substring match: %d pages\n", a, b)
}
