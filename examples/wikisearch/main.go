// Wikisearch: the paper's Section 6.6.2 scenario — natural-language search
// over wiki pages, two ways. First through the pluggable word-based text
// index: phrase queries match at word boundaries via a word-level suffix
// array, plugged into XPath as the custom predicate wcontains. Then
// through the collection search tier: several wiki documents registered in
// a collection, queried with BM25-ranked terms plus a structural XPath
// filter — the production path behind `sxsi search` and GET /search.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/collection"
	"repro/internal/gen"
	"repro/internal/wordindex"
)

func main() {
	data := gen.Wiki(99, 16<<20)
	fmt.Printf("corpus: %.1f MB of wiki pages\n", float64(len(data))/(1<<20))

	idx, err := sxsi.Build(data, sxsi.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// Build the word index over the same text collection and register it.
	start := time.Now()
	widx, err := wordindex.New(idx.Doc.Plain.All())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("word index: %d tokens, %d distinct words, built in %v\n",
		widx.NumWords(), widx.VocabSize(), time.Since(start).Round(time.Millisecond))

	eng := idx.WithQueryOptions(sxsi.QueryOptions{
		CustomMatchSets: map[string]func(string) []int32{
			"wcontains": widx.ContainsPhrase,
		},
	})

	for _, src := range []string{
		`//text[wcontains(., "dark horse")]`,
		`//page/title[wcontains(., "crude oil")]`,
		`//page[.//text[wcontains(., "played on a board")]]/title`,
	} {
		q, err := eng.Compile(src)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		n := q.Count()
		fmt.Printf("%-55s %5d results in %8v  [%s]\n", src, n, time.Since(start).Round(time.Microsecond), q.Strategy())
	}

	// Word-boundary semantics differ from substring semantics: compare.
	a, _ := eng.Count(`//text[wcontains(., "horse")]`)
	b, _ := idx.Count(`//text[contains(., "horse")]`)
	fmt.Printf("word match 'horse': %d pages; substring match: %d pages\n", a, b)

	// Part two: the collection search tier. Register several wiki dumps as
	// separate documents; the collection tokenizes each into the posting
	// index as it registers, and Search answers "which documents talk about
	// these terms" with BM25 ranking before any structural work runs.
	fmt.Println("\ncollection search tier:")
	c := collection.New(collection.Config{})
	start = time.Now()
	for seed := uint64(1); seed <= 6; seed++ {
		doc, err := sxsi.Build(gen.Wiki(seed, 2<<20), sxsi.Config{})
		if err != nil {
			log.Fatal(err)
		}
		c.Add(fmt.Sprintf("wiki-%02d", seed), doc.Engine)
	}
	fmt.Printf("indexed %d documents in %v\n", c.Len(), time.Since(start).Round(time.Millisecond))

	for _, q := range []string{
		`dark horse`,
		`"crude oil" board`,
	} {
		start := time.Now()
		rep, err := c.Search(context.Background(), q, `//page/title`, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("search %-22q %d candidates, %d matched in %v\n",
			q, rep.Candidates, rep.Matched, time.Since(start).Round(time.Microsecond))
		for i, h := range rep.Hits {
			fmt.Printf("  %d. %s  score=%.3f  titles=%d  %s\n", i+1, h.Doc, h.Score, h.Nodes, h.Snippet)
		}
	}
}
