// Bibsearch: the paper's text-oriented scenario (Section 6.6) — index a
// Medline-like bibliographic collection and run selective text queries,
// showing the planner's strategy choices (bottom-up from FM-index matches
// for selective predicates, naive string-value semantics for mixed
// content).
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/gen"
)

func main() {
	// Generate a ~4MB synthetic Medline corpus (deterministic).
	data := gen.Medline(2024, 4<<20)
	fmt.Printf("corpus: %.1f MB of bibliographic XML\n", float64(len(data))/(1<<20))

	idx, err := sxsi.Build(data, sxsi.Config{})
	if err != nil {
		log.Fatal(err)
	}

	queries := []string{
		// Selective author-prefix search: runs bottom-up from the FM-index.
		`//MedlineCitation/Article/AuthorList/Author[starts-with(LastName, "Bar")]`,
		// Abstract keyword search.
		`//Article[.//AbstractText[contains(., "epididymis")]]`,
		// Boolean combination: evaluated top-down, still FM-backed.
		`//Article[.//AbstractText[contains(., "foot") or contains(., "feet")]]`,
		// Mixed-content target: naive string-value semantics.
		`//MedlineCitation[contains(., "blood cell")]`,
		// Lexicographic publication-type filter.
		`//*[.//PublicationType[ends-with(., "Article")]]`,
	}
	for _, src := range queries {
		q, err := idx.Compile(src)
		if err != nil {
			log.Fatalf("%s: %v", src, err)
		}
		n := q.Count()
		fmt.Printf("%-80s  %6d results  [%s]\n", src, n, q.Strategy())
	}

	// Show one hit with its content.
	q, _ := idx.Compile(`//Author[starts-with(LastName, "Bar")]/LastName`)
	nodes := q.Nodes()
	if len(nodes) > 0 {
		fmt.Printf("first matching author: %s\n", idx.Doc.TextValue(nodes[0]))
	}
}
