module repro

go 1.24

// The repo-specific analyzer suite (internal/lint, run by CI as
// `go vet -vettool`). Pinned as a module tool so `go tool sxsivet`
// builds it from the tree itself — there is no external version to
// drift from.
tool repro/cmd/sxsivet
