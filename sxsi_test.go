package sxsi

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
)

const sampleDoc = `<parts><part name="pen"><color>blue</color><stock>40</stock></part><part name="rubber"><stock>30</stock></part></parts>`

func TestBuildAndQuery(t *testing.T) {
	idx, err := Build([]byte(sampleDoc), Config{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := idx.Count("//stock")
	if err != nil || n != 2 {
		t.Fatalf("count=%d err=%v", n, err)
	}
	var buf bytes.Buffer
	k, err := idx.Serialize("//part[@name = 'pen']/color", &buf)
	if err != nil || k != 1 {
		t.Fatalf("k=%d err=%v", k, err)
	}
	if strings.TrimSpace(buf.String()) != "<color>blue</color>" {
		t.Fatalf("serialized %q", buf.String())
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	data := gen.XMark(11, 100_000)
	idx, err := Build(data, Config{SampleRate: 16})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	idx2, err := Load(bytes.NewReader(buf.Bytes()), Config{SampleRate: 16})
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"//listitem//keyword",
		"/site/regions",
		"//person[address and (phone or homepage)]/name",
		"//keyword[contains(., 'unique')]",
		"//item/@id",
	}
	for _, q := range queries {
		a, err := idx.Count(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		b, err := idx2.Count(q)
		if err != nil {
			t.Fatalf("%s after load: %v", q, err)
		}
		if a != b {
			t.Fatalf("%s: before=%d after=%d", q, a, b)
		}
	}
	// Serialization must agree too.
	var s1, s2 bytes.Buffer
	if _, err := idx.Serialize("//listitem//keyword", &s1); err != nil {
		t.Fatal(err)
	}
	if _, err := idx2.Serialize("//listitem//keyword", &s2); err != nil {
		t.Fatal(err)
	}
	if s1.String() != s2.String() {
		t.Fatal("serialization differs after reload")
	}
}

// TestSavedIndexByteIdentical proves a pre-existing .sxsi payload survives
// the sampled-select change with no format or version bump: the select
// samples are rebuilt during Load (they are derived from the rank
// directory, never persisted), so saving a loaded index reproduces the
// original bytes exactly.
func TestSavedIndexByteIdentical(t *testing.T) {
	data := gen.XMark(23, 150_000)
	idx, err := Build(data, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	saved := append([]byte(nil), buf.Bytes()...)
	idx2, err := Load(bytes.NewReader(saved), Config{})
	if err != nil {
		t.Fatal(err)
	}
	// The loaded index must answer queries (its select samples exist)...
	if n, err := idx2.Count("//keyword"); err != nil || n == 0 {
		t.Fatalf("loaded index count=%d err=%v", n, err)
	}
	// ...and re-serialize to the identical byte stream.
	var buf2 bytes.Buffer
	if _, err := idx2.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saved, buf2.Bytes()) {
		t.Fatal("re-saved index differs from the original payload")
	}
}

// TestLoadFasterThanBuild pins the point of the persistence layer: loading
// a saved index must beat rebuilding by at least an order of magnitude,
// because loading skips parsing and suffix sorting entirely (Figure 8).
func TestLoadFasterThanBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	data := gen.XMark(7, 2_000_000)
	idx, err := Build(data, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	saved := buf.Bytes()

	build := func() {
		if _, err := Build(data, Config{}); err != nil {
			t.Fatal(err)
		}
	}
	load := func() {
		if _, err := Load(bytes.NewReader(saved), Config{}); err != nil {
			t.Fatal(err)
		}
	}
	timeIt := func(f func()) time.Duration {
		start := time.Now()
		f()
		return time.Since(start)
	}
	// Warm up once, then take the best of three to damp scheduler noise.
	build()
	load()
	best := func(f func()) time.Duration {
		b := timeIt(f)
		for i := 0; i < 2; i++ {
			if d := timeIt(f); d < b {
				b = d
			}
		}
		return b
	}
	tb, tl := best(build), best(load)
	t.Logf("build=%v load=%v ratio=%.1fx", tb, tl, float64(tb)/float64(tl))
	// Locally the ratio is well above 10x (see BenchmarkBuild/BenchmarkLoad
	// for the headline numbers); the hard gate here is looser so noisy
	// shared CI runners do not fail spuriously.
	if tl*5 > tb {
		t.Fatalf("load (%v) is not 5x faster than build (%v)", tl, tb)
	}
}

// TestLoadedIndexIdenticalOutput is the build-once/serve-many contract:
// the saved-then-loaded index must produce byte-identical query output to
// the freshly built one, across result serialization, counting, and node
// materialization.
func TestLoadedIndexIdenticalOutput(t *testing.T) {
	data := gen.Medline(5, 200_000)
	fresh, err := Build(data, Config{SampleRate: 32})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := fresh.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()), Config{SampleRate: 32})
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"//MedlineCitation",
		"//Author/LastName",
		"//Article[Journal]//Title",
		"//PMID",
	}
	for _, q := range queries {
		var s1, s2 bytes.Buffer
		k1, err1 := fresh.Serialize(q, &s1)
		k2, err2 := loaded.Serialize(q, &s2)
		if err1 != nil || err2 != nil || k1 != k2 {
			t.Fatalf("%s: k=%d/%d err=%v/%v", q, k1, k2, err1, err2)
		}
		if !bytes.Equal(s1.Bytes(), s2.Bytes()) {
			t.Fatalf("%s: serialized output differs", q)
		}
		n1, _ := fresh.Nodes(q)
		n2, _ := loaded.Nodes(q)
		if len(n1) != len(n2) {
			t.Fatalf("%s: node count differs", q)
		}
		for i := range n1 {
			if n1[i] != n2[i] {
				t.Fatalf("%s: node %d differs", q, i)
			}
		}
	}
}

func TestRunLengthConfig(t *testing.T) {
	data := gen.BioXML(3, 150_000)
	idx, err := Build(data, Config{RunLength: true, SampleRate: 16})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Build(data, Config{SampleRate: 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"//gene", "//transcript/sequence", "//gene[biotype = 'pseudogene']"} {
		a, _ := idx.Count(q)
		b, _ := plain.Count(q)
		if a != b {
			t.Fatalf("%s: rl=%d plain=%d", q, a, b)
		}
	}
}

func TestStats(t *testing.T) {
	idx, err := Build([]byte(sampleDoc), Config{})
	if err != nil {
		t.Fatal(err)
	}
	st := idx.Stats()
	if st.Nodes != 16 || st.Texts != 5 {
		t.Fatalf("stats %+v", st)
	}
	if st.TreeBytes <= 0 || st.TextBytes <= 0 {
		t.Fatalf("sizes %+v", st)
	}
}

func TestBadInput(t *testing.T) {
	if _, err := Build([]byte("<unclosed>"), Config{}); err == nil {
		t.Fatal("expected parse error")
	}
	idx, _ := Build([]byte(sampleDoc), Config{})
	if _, err := idx.Count("//a["); err == nil {
		t.Fatal("expected query error")
	}
	if _, err := Load(bytes.NewReader([]byte("garbage")), Config{}); err == nil {
		t.Fatal("expected load error")
	}
}
