package sxsi

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/gen"
)

const sampleDoc = `<parts><part name="pen"><color>blue</color><stock>40</stock></part><part name="rubber"><stock>30</stock></part></parts>`

func TestBuildAndQuery(t *testing.T) {
	idx, err := Build([]byte(sampleDoc), Config{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := idx.Count("//stock")
	if err != nil || n != 2 {
		t.Fatalf("count=%d err=%v", n, err)
	}
	var buf bytes.Buffer
	k, err := idx.Serialize("//part[@name = 'pen']/color", &buf)
	if err != nil || k != 1 {
		t.Fatalf("k=%d err=%v", k, err)
	}
	if strings.TrimSpace(buf.String()) != "<color>blue</color>" {
		t.Fatalf("serialized %q", buf.String())
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	data := gen.XMark(11, 100_000)
	idx, err := Build(data, Config{SampleRate: 16})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	idx2, err := Load(bytes.NewReader(buf.Bytes()), Config{SampleRate: 16})
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"//listitem//keyword",
		"/site/regions",
		"//person[address and (phone or homepage)]/name",
		"//keyword[contains(., 'unique')]",
		"//item/@id",
	}
	for _, q := range queries {
		a, err := idx.Count(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		b, err := idx2.Count(q)
		if err != nil {
			t.Fatalf("%s after load: %v", q, err)
		}
		if a != b {
			t.Fatalf("%s: before=%d after=%d", q, a, b)
		}
	}
	// Serialization must agree too.
	var s1, s2 bytes.Buffer
	if _, err := idx.Serialize("//listitem//keyword", &s1); err != nil {
		t.Fatal(err)
	}
	if _, err := idx2.Serialize("//listitem//keyword", &s2); err != nil {
		t.Fatal(err)
	}
	if s1.String() != s2.String() {
		t.Fatal("serialization differs after reload")
	}
}

func TestRunLengthConfig(t *testing.T) {
	data := gen.BioXML(3, 150_000)
	idx, err := Build(data, Config{RunLength: true, SampleRate: 16})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Build(data, Config{SampleRate: 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"//gene", "//transcript/sequence", "//gene[biotype = 'pseudogene']"} {
		a, _ := idx.Count(q)
		b, _ := plain.Count(q)
		if a != b {
			t.Fatalf("%s: rl=%d plain=%d", q, a, b)
		}
	}
}

func TestStats(t *testing.T) {
	idx, err := Build([]byte(sampleDoc), Config{})
	if err != nil {
		t.Fatal(err)
	}
	st := idx.Stats()
	if st.Nodes != 16 || st.Texts != 5 {
		t.Fatalf("stats %+v", st)
	}
	if st.TreeBytes <= 0 || st.TextBytes <= 0 {
		t.Fatalf("sizes %+v", st)
	}
}

func TestBadInput(t *testing.T) {
	if _, err := Build([]byte("<unclosed>"), Config{}); err == nil {
		t.Fatal("expected parse error")
	}
	idx, _ := Build([]byte(sampleDoc), Config{})
	if _, err := idx.Count("//a["); err == nil {
		t.Fatal("expected query error")
	}
	if _, err := Load(bytes.NewReader([]byte("garbage")), Config{}); err == nil {
		t.Fatal("expected load error")
	}
}
