// Package sxsi is a Go implementation of SXSI, the Succinct XML Self-Index
// of Arroyuelo, Claude, Maneth, Mäkinen, Navarro, Nguyên, Sirén and
// Välimäki ("Fast in-memory XPath search using compressed indexes", ICDE
// 2010): a compressed, in-memory self-index for XML that supports fast
// evaluation of the Core+ XPath fragment (forward axes plus the text
// predicates =, contains, starts-with, ends-with).
//
// The index replaces the document: the tree structure lives in a
// balanced-parentheses representation with per-tag rank/select support, and
// the text collection lives in an FM-index from which any text can be
// extracted. Queries compile to alternating marking tree automata that jump
// directly to relevant nodes, or run bottom-up from text-index matches for
// selective textual predicates.
//
// Quick start:
//
//	idx, err := sxsi.Build(xmlBytes, sxsi.Config{})
//	n, err := idx.Count("//listitem//keyword")
//	err = idx.Serialize("//keyword[contains(., 'gold')]", os.Stdout)
//
// The index replaces the document on disk too: SaveFile writes it in a
// versioned binary format, and LoadFile restores it while skipping parsing
// and suffix sorting — more than an order of magnitude faster than Build:
//
//	_, err = idx.SaveFile("doc.sxsi")
//	idx, err = sxsi.LoadFile("doc.sxsi", sxsi.Config{})
package sxsi

import (
	"io"

	"repro/internal/core"
	"repro/internal/xpath"
)

// Config controls indexing and evaluation; the zero value gives the paper's
// defaults (FM-index with sampling step 64, plain-text store kept, all
// evaluator optimizations on).
type Config = core.Config

// Index is an indexed XML document.
type Index struct{ *core.Engine }

// Query is a compiled Core+ XPath query bound to an index.
type Query = xpath.Query

// QueryOptions are the per-query planner and evaluator toggles.
type QueryOptions = xpath.Options

// Strategy selects between the top-down marking automaton and the
// bottom-up text-index climb; set it through QueryOptions.ForceStrategy to
// override the cost model's per-query choice.
type Strategy = xpath.Strategy

// The evaluation strategies a query can be pinned to.
const (
	StrategyAuto     = xpath.StrategyAuto
	StrategyTopDown  = xpath.StrategyTopDown
	StrategyBottomUp = xpath.StrategyBottomUp
)

// ParseStrategy resolves the CLI/wire names of the strategies
// ("auto", "top-down", "bottom-up" and their abbreviations).
func ParseStrategy(s string) (Strategy, error) { return xpath.ParseStrategy(s) }

// CostEstimate is the cost model's record of the statistics consulted and
// the strategy chosen for a compiled query (Query.Cost).
type CostEstimate = xpath.CostEstimate

// ResultIter streams result nodes lazily in document order (Index.Iter,
// Query.Iter). Close it — or drain it — before closing the index it reads
// from.
type ResultIter = xpath.ResultIter

// Build parses and indexes an XML document held in memory.
func Build(xml []byte, cfg Config) (*Index, error) {
	e, err := core.Build(xml, cfg)
	if err != nil {
		return nil, err
	}
	return &Index{e}, nil
}

// BuildFile indexes an XML file.
func BuildFile(path string, cfg Config) (*Index, error) {
	e, err := core.BuildFile(path, cfg)
	if err != nil {
		return nil, err
	}
	return &Index{e}, nil
}

// Load reads an index previously written with Save. Loading skips suffix
// sorting and is much faster than Build.
func Load(r io.Reader, cfg Config) (*Index, error) {
	e, err := core.Load(r, cfg)
	if err != nil {
		return nil, err
	}
	return &Index{e}, nil
}

// LoadFile reads an index file previously written with SaveFile (or the
// sxsi CLI's build subcommand).
func LoadFile(path string, cfg Config) (*Index, error) {
	e, err := core.LoadFile(path, cfg)
	if err != nil {
		return nil, err
	}
	return &Index{e}, nil
}

// OpenFile opens an index file memory-mapped: the succinct payloads alias
// the mapped file, so opening costs only the derived directories and the
// index pages stay shared with the OS page cache across processes and
// restarts. Old (pre-alignment) index files and cfg.NoMmap fall back to
// the copying load. Call Close on the returned index once it is no longer
// used to release the mapping.
func OpenFile(path string, cfg Config) (*Index, error) {
	e, err := core.OpenFile(path, cfg)
	if err != nil {
		return nil, err
	}
	return &Index{e}, nil
}
