// Build peak-memory smoke test, gated by SXSI_BENCH_MB like the large-index
// open benchmarks: it builds a corpus of that many MiB with a transient
// memory budget far below what an unbounded suffix sort would need, samples
// the live heap during the build, and fails when the peak exceeds the
// allowance. An ignored budget shows up as a ~18 byte/symbol suffix-sort
// working set (plus retained chunk arrays), which is far outside the bound.
package sxsi

import (
	"context"
	"os"
	"runtime"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
)

func TestBuildPeakRSS(t *testing.T) {
	mb, _ := strconv.Atoi(os.Getenv("SXSI_BENCH_MB"))
	if mb <= 0 {
		t.Skip("set SXSI_BENCH_MB to run the build peak-memory smoke test")
	}
	size := int64(mb) << 20
	budget := size / 4
	data := gen.XMark(23, int(size))

	var baseline runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&baseline)

	// Sample the live heap while the build runs. ReadMemStats is a brief
	// stop-the-world, so the 10ms period costs little next to a large build.
	var peak atomic.Int64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		var ms runtime.MemStats
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if h := int64(ms.HeapAlloc); h > peak.Load() {
					peak.Store(h)
				}
			}
		}
	}()

	eng, err := core.BuildContext(context.Background(), data, core.Config{
		BuildProcs:   runtime.NumCPU(),
		MemoryBudget: budget,
		BuildTempDir: t.TempDir(),
	})
	close(stop)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if n, err := eng.Count("//item"); err != nil || n == 0 {
		t.Fatalf("sanity query on bounded build: n=%d err=%v", n, err)
	}

	// The budget bounds the transient build state (suffix-sort working sets,
	// retained chunk arrays, the BWT scratch). On top of it the peak
	// legitimately carries the input document, the parse product, the
	// finished index, and — because HeapAlloc includes floating garbage up
	// to the GOGC factor — roughly a 2x multiplier on the live set. 9x
	// corpus plus 2x budget covers all of that with headroom (measured at
	// 48 MiB: bounded peaks at ~6.7x corpus, unbounded at ~10.8x, so an
	// ignored budget still trips the gate).
	allowed := int64(baseline.HeapAlloc) + 9*size + 2*budget
	if p := peak.Load(); p > allowed {
		t.Fatalf("peak heap %d MiB exceeds allowance %d MiB (corpus %d MiB, budget %d MiB)",
			p>>20, allowed>>20, size>>20, budget>>20)
	} else {
		t.Logf("peak heap %d MiB within allowance %d MiB (corpus %d MiB, budget %d MiB)",
			p>>20, allowed>>20, size>>20, budget>>20)
	}
}
