package mmap

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"unsafe"
)

func TestOpenReadsFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	want := bytes.Repeat([]byte("sxsi-mmap!"), 1000)
	if err := os.WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if !bytes.Equal(f.Data(), want) {
		t.Fatal("data differs from file content")
	}
	if f.Size() != len(want) {
		t.Fatalf("Size=%d want %d", f.Size(), len(want))
	}
	if uintptr(unsafe.Pointer(&f.Data()[0]))&7 != 0 {
		t.Fatal("data base not 8-byte aligned")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestOpenEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 0 || f.Mapped() {
		t.Fatalf("empty file: size=%d mapped=%v", f.Size(), f.Mapped())
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(filepath.Join(dir, "absent")); err == nil {
		t.Fatal("missing file: expected error")
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("directory: expected error")
	}
}
