//go:build unix

package mmap

import (
	"os"
	"syscall"
)

// open maps the file read-only. The file descriptor is closed before
// returning — the mapping keeps the pages reachable on its own.
func open(path string) (*File, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer file.Close()
	size, err := statSize(file)
	if err != nil {
		return nil, err
	}
	if size == 0 {
		return &File{}, nil
	}
	if size != int64(int(size)) {
		return nil, &os.PathError{Op: "mmap", Path: path, Err: syscall.EFBIG}
	}
	data, err := syscall.Mmap(int(file.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, &os.PathError{Op: "mmap", Path: path, Err: err}
	}
	return &File{data: data, mapped: true}, nil
}

func (f *File) close() error {
	data := f.data
	f.data = nil
	if !f.mapped || data == nil {
		return nil
	}
	return syscall.Munmap(data)
}
