//go:build !unix

package mmap

import (
	"io"
	"os"

	"repro/internal/persist"
)

// open reads the whole file into an 8-byte-aligned private buffer. The
// decoders alias payloads out of it exactly as they would out of a real
// mapping, so every caller above this package behaves identically; only
// the page sharing with the OS cache is lost.
func open(path string) (*File, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer file.Close()
	size, err := statSize(file)
	if err != nil {
		return nil, err
	}
	if size == 0 {
		return &File{}, nil
	}
	if size != int64(int(size)) {
		return nil, &os.PathError{Op: "mmap", Path: path, Err: os.ErrInvalid}
	}
	data := persist.AlignedBuffer(int(size))
	if _, err := io.ReadFull(file, data); err != nil {
		return nil, &os.PathError{Op: "mmap", Path: path, Err: err}
	}
	return &File{data: data, mapped: false}, nil
}

func (f *File) close() error {
	f.data = nil // the buffer is garbage-collected once unreferenced
	return nil
}
