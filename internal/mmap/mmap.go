// Package mmap provides read-only memory mapping of files for the
// zero-copy index load path. On Unix platforms Open maps the file with
// mmap(2), so the index pages stay in the OS page cache and are shared
// across processes serving the same files; elsewhere it falls back to
// reading the whole file into an 8-byte-aligned private buffer, which
// keeps the same API (and the same alignment guarantees the mapped
// decoders rely on) at the cost of the copy.
//
// The returned data is read-only: writing through it faults on mapped
// platforms. Close invalidates the data — the caller must guarantee no
// slice aliasing it is used afterwards, which in this codebase means the
// engine loaded from the mapping has been dropped.
package mmap

import "os"

// File is an open read-only file image.
type File struct {
	data   []byte
	mapped bool // true when backed by a real OS mapping
	closed bool
}

// Data returns the file contents. The slice is read-only and valid until
// Close. Its base address is at least 8-byte aligned (page-aligned when
// mapped), as the aligned container decoders require.
func (f *File) Data() []byte { return f.data }

// Mapped reports whether the data is backed by an OS memory mapping (as
// opposed to the read-everything fallback buffer).
func (f *File) Mapped() bool { return f.mapped }

// Size returns the file image size in bytes.
func (f *File) Size() int { return len(f.data) }

// Open maps (or, on fallback platforms, reads) the file at path.
func Open(path string) (*File, error) {
	return open(path)
}

// Close releases the mapping. Any slice aliasing Data becomes invalid.
// Close is idempotent.
func (f *File) Close() error {
	if f.closed {
		return nil
	}
	f.closed = true
	return f.close()
}

// stat sizes the file and rejects non-regular files, shared by both
// implementations.
func statSize(file *os.File) (int64, error) {
	st, err := file.Stat()
	if err != nil {
		return 0, err
	}
	if !st.Mode().IsRegular() {
		return 0, &os.PathError{Op: "mmap", Path: file.Name(), Err: os.ErrInvalid}
	}
	return st.Size(), nil
}
