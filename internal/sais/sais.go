// Package sais implements the SA-IS linear-time suffix array construction
// algorithm of Nong, Zhang and Chan over an integer alphabet. The FM-index
// construction (paper Section 3.3) builds the BWT from this suffix array.
// Working over an integer alphabet lets the text collection give every text
// terminator a distinct rank (terminator of text i sorts as value i), which
// realizes the paper's fixed ordering "the end-marker of the i-th text
// appears at F[i]" (Section 3.2). The word-based index (Section 6.6.2)
// reuses the same code over a word-identifier alphabet.
package sais

import (
	"context"
	"errors"
	"math"
)

// ErrTooLarge reports an input too long for the int32 position arithmetic
// of this implementation. Positions (including the internal sentinel) are
// stored as int32, so inputs of 2^31-1 symbols or more would silently
// corrupt the suffix array; every entry point rejects them instead.
var ErrTooLarge = errors.New("sais: input too large for int32 positions (>= 2^31-1 symbols)")

// maxInput is the largest supported input length: the internal sentinel
// occupies position len(s), which must still fit an int32.
const maxInput = math.MaxInt32 - 1

// CheckSize reports ErrTooLarge when an input of n symbols would overflow
// the int32 position arithmetic. Callers that derive n without holding the
// input (e.g. summing text lengths) share the same boundary through it.
func CheckSize(n int) error {
	if n > maxInput {
		return ErrTooLarge
	}
	return nil
}

// pollStride is how many induced-sort steps run between context polls: large
// enough that the atomic-free countdown is invisible in profiles, small
// enough that cancellation latency stays in the low milliseconds.
const pollStride = 1 << 17

// Compute returns the suffix array of s, whose values must lie in [0, k).
// Suffixes are compared as usual; no sentinel is required (one is appended
// internally). Inputs of 2^31-1 symbols or more return ErrTooLarge.
func Compute(s []int32, k int) ([]int32, error) {
	return ComputeCtx(context.Background(), s, k)
}

// ComputeCtx is Compute with cancellation: the induced-sorting loops poll
// ctx at bounded intervals (every pollStride positions, across recursion
// levels) and return its error once it is done.
func ComputeCtx(ctx context.Context, s []int32, k int) ([]int32, error) {
	n := len(s)
	if err := CheckSize(n); err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	// Shift values by +1 and append a unique smallest sentinel 0 so that the
	// core algorithm's precondition (unique minimal last symbol) holds. The
	// copy is O(n) like everything else here, so it shares the poller.
	pl := newPoller(ctx)
	t := make([]int32, n+1)
	for base := 0; base < n; base += pollStride {
		end := min(base+pollStride, n)
		for i := base; i < end; i++ {
			t[i] = s[i] + 1
		}
		if err := pl.tick(end - base); err != nil {
			return nil, err
		}
	}
	t[n] = 0
	sa := make([]int32, n+1)
	if err := saisCore(t, sa, int32(k)+1, pl); err != nil {
		return nil, err
	}
	return sa[1:], nil // drop the sentinel suffix, which always sorts first
}

// poller checks a context every pollStride ticks. One poller is threaded
// through the whole recursion so the interval is bounded globally, not per
// level. A nil context never polls (zero overhead beyond the countdown).
type poller struct {
	ctx   context.Context
	count int
}

func newPoller(ctx context.Context) *poller {
	if ctx != nil && ctx.Done() == nil {
		ctx = nil // uncancellable context: skip the Err calls entirely
	}
	return &poller{ctx: ctx}
}

// tick accounts for work units and polls once per stride.
func (p *poller) tick(units int) error {
	p.count += units
	if p.count < pollStride {
		return nil
	}
	p.count = 0
	if p.ctx == nil {
		return nil
	}
	return p.ctx.Err()
}

// saisCore computes the suffix array of s into sa. s must end with a unique
// minimal symbol. Alphabet size is k.
func saisCore(s []int32, sa []int32, k int32, pl *poller) error {
	n := len(s)
	if n == 0 {
		return nil
	}
	if n == 1 {
		sa[0] = 0
		return nil
	}
	if n == 2 {
		if s[0] < s[1] {
			sa[0], sa[1] = 0, 1
		} else {
			sa[0], sa[1] = 1, 0
		}
		return nil
	}

	// Classify suffix types: sType[i] == true iff suffix i is S-type.
	sType := make([]bool, n)
	sType[n-1] = true
	for i := n - 2; i >= 0; i-- {
		sType[i] = s[i] < s[i+1] || (s[i] == s[i+1] && sType[i+1])
	}
	if err := pl.tick(n); err != nil {
		return err
	}
	isLMS := func(i int) bool { return i > 0 && sType[i] && !sType[i-1] }

	bkt := make([]int32, k)
	bucketBounds := func(end bool) {
		for i := range bkt {
			bkt[i] = 0
		}
		for _, c := range s {
			bkt[c]++
		}
		var sum int32
		for i := int32(0); i < k; i++ {
			sum += bkt[i]
			if end {
				bkt[i] = sum
			} else {
				bkt[i] = sum - bkt[i]
			}
		}
	}

	induceL := func() error {
		bucketBounds(false)
		for i := 0; i < n; i++ {
			j := sa[i] - 1
			if sa[i] > 0 && !sType[j] {
				sa[bkt[s[j]]] = j
				bkt[s[j]]++
			}
		}
		return pl.tick(n)
	}
	induceS := func() error {
		bucketBounds(true)
		for i := n - 1; i >= 0; i-- {
			j := sa[i] - 1
			if sa[i] > 0 && sType[j] {
				bkt[s[j]]--
				sa[bkt[s[j]]] = j
			}
		}
		return pl.tick(n)
	}

	// Stage 1: sort LMS substrings by induced sorting.
	for i := 0; i < n; i++ {
		sa[i] = -1
	}
	bucketBounds(true)
	for i := 1; i < n; i++ {
		if isLMS(i) {
			bkt[s[i]]--
			sa[bkt[s[i]]] = int32(i)
		}
	}
	if err := induceL(); err != nil {
		return err
	}
	if err := induceS(); err != nil {
		return err
	}

	// Compact the sorted LMS positions into sa[0:n1].
	n1 := 0
	for i := 0; i < n; i++ {
		if isLMS(int(sa[i])) {
			sa[n1] = sa[i]
			n1++
		}
	}
	for i := n1; i < n; i++ {
		sa[i] = -1
	}

	// Name LMS substrings; store names at sa[n1 + pos/2].
	name := int32(0)
	prev := -1
	for i := 0; i < n1; i++ {
		pos := int(sa[i])
		diff := false
		if prev < 0 {
			diff = true
		} else {
			for d := 0; ; d++ {
				if s[pos+d] != s[prev+d] || sType[pos+d] != sType[prev+d] {
					diff = true
					break
				}
				if d > 0 && (isLMS(pos+d) || isLMS(prev+d)) {
					break
				}
			}
		}
		if diff {
			name++
			prev = pos
		}
		sa[n1+pos/2] = name - 1
	}
	if err := pl.tick(n); err != nil {
		return err
	}
	// Compact names to the tail of sa, forming the reduced string s1.
	j := n - 1
	for i := n - 1; i >= n1; i-- {
		if sa[i] >= 0 {
			sa[j] = sa[i]
			j--
		}
	}
	s1 := sa[n-n1 : n]

	// Stage 2: sort the reduced problem.
	if int(name) < n1 {
		sub := make([]int32, n1)
		copy(sub, s1)
		if err := saisCore(sub, sa[:n1], name, pl); err != nil {
			return err
		}
	} else {
		for i := 0; i < n1; i++ {
			sa[s1[i]] = int32(i)
		}
	}

	// Stage 3: induce the full suffix array from the sorted LMS suffixes.
	// Rebuild the LMS position list into s1 (tail of sa).
	j = 0
	for i := 1; i < n; i++ {
		if isLMS(i) {
			s1[j] = int32(i)
			j++
		}
	}
	for i := 0; i < n1; i++ {
		sa[i] = s1[sa[i]]
	}
	for i := n1; i < n; i++ {
		sa[i] = -1
	}
	bucketBounds(true)
	for i := n1 - 1; i >= 0; i-- {
		p := sa[i]
		sa[i] = -1
		bkt[s[p]]--
		sa[bkt[s[p]]] = p
	}
	if err := induceL(); err != nil {
		return err
	}
	return induceS()
}

// ComputeBytes returns the suffix array of a byte string (alphabet 256).
func ComputeBytes(s []byte) ([]int32, error) {
	if err := CheckSize(len(s)); err != nil {
		return nil, err
	}
	t := make([]int32, len(s))
	for i, c := range s {
		t[i] = int32(c)
	}
	return Compute(t, 256)
}
