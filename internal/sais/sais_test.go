package sais

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// naiveSA computes the suffix array by direct comparison.
func naiveSA(s []int32) []int32 {
	n := len(s)
	sa := make([]int32, n)
	for i := range sa {
		sa[i] = int32(i)
	}
	sort.Slice(sa, func(a, b int) bool {
		i, j := int(sa[a]), int(sa[b])
		for i < n && j < n {
			if s[i] != s[j] {
				return s[i] < s[j]
			}
			i++
			j++
		}
		return i == n && j < n
	})
	return sa
}

func equalSA(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func check(t *testing.T, s []int32, k int) {
	t.Helper()
	got, err := Compute(s, k)
	if err != nil {
		t.Fatal(err)
	}
	want := naiveSA(s)
	if !equalSA(got, want) {
		t.Fatalf("SA mismatch for %v:\n got %v\nwant %v", s, got, want)
	}
}

func toInt32(s string) []int32 {
	r := make([]int32, len(s))
	for i := range s {
		r[i] = int32(s[i])
	}
	return r
}

func TestKnownStrings(t *testing.T) {
	for _, s := range []string{
		"banana", "mississippi", "abracadabra", "aaaa", "abcd", "dcba",
		"discontinued", "abab", "baba", "a", "ab", "ba", "aa",
	} {
		check(t, toInt32(s), 256)
	}
}

func TestEmpty(t *testing.T) {
	got, err := Compute(nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatalf("empty SA should be nil, got %v", got)
	}
}

func TestMultiTerminator(t *testing.T) {
	// Simulates the text-collection encoding: texts "ab", "ab", "b" with
	// distinct terminators 0,1,2 and characters offset by 3.
	d := int32(3)
	a, b := d+'a', d+'b'
	s := []int32{a, b, 0, a, b, 1, b, 2}
	check(t, s, int(d)+256)
	// First d entries of the SA must be the terminator positions in text order.
	sa, err := Compute(s, int(d)+256)
	if err != nil {
		t.Fatal(err)
	}
	if sa[0] != 2 || sa[1] != 5 || sa[2] != 7 {
		t.Fatalf("terminator ordering violated: %v", sa[:3])
	}
}

func TestRandomSmallAlphabet(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(60)
		k := 1 + r.Intn(4)
		s := make([]int32, n)
		for i := range s {
			s[i] = int32(r.Intn(k))
		}
		check(t, s, k)
	}
}

func TestRandomLargerAlphabet(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(500)
		k := 2 + r.Intn(100)
		s := make([]int32, n)
		for i := range s {
			s[i] = int32(r.Intn(k))
		}
		check(t, s, k)
	}
}

func TestRepetitive(t *testing.T) {
	// Highly repetitive input (the DNA case of Section 6.7).
	r := rand.New(rand.NewSource(17))
	motif := make([]int32, 50)
	for i := range motif {
		motif[i] = int32(r.Intn(4))
	}
	var s []int32
	for rep := 0; rep < 20; rep++ {
		s = append(s, motif...)
		if r.Intn(3) == 0 {
			s = append(s, int32(r.Intn(4)))
		}
	}
	check(t, s, 4)
}

func TestComputeBytes(t *testing.T) {
	got, err := ComputeBytes([]byte("banana"))
	if err != nil {
		t.Fatal(err)
	}
	want := naiveSA(toInt32("banana"))
	if !equalSA(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestLargeRandomConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	n := 100000
	s := make([]int32, n)
	for i := range s {
		s[i] = int32(r.Intn(8))
	}
	sa, err := Compute(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Verify it is a permutation and sorted (adjacent comparisons only).
	seen := make([]bool, n)
	for _, p := range sa {
		if p < 0 || int(p) >= n || seen[p] {
			t.Fatal("not a permutation")
		}
		seen[p] = true
	}
	for i := 1; i < n; i++ {
		if !suffixLess(s, int(sa[i-1]), int(sa[i])) {
			t.Fatalf("suffixes %d,%d out of order at rank %d", sa[i-1], sa[i], i)
		}
	}
}

func suffixLess(s []int32, i, j int) bool {
	n := len(s)
	for i < n && j < n {
		if s[i] != s[j] {
			return s[i] < s[j]
		}
		i++
		j++
	}
	return i == n
}

func BenchmarkSAIS1MB(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	s := make([]int32, 1<<20)
	for i := range s {
		s[i] = int32(r.Intn(60))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(s, 60); err != nil {
			b.Fatal(err)
		}
	}
}

// TestErrTooLarge pins the int32 overflow guard at its exact boundary
// without allocating gigabytes: CheckSize carries the guard logic, and the
// entry points route through it (pinned on a representative fake length via
// the exported check; Compute itself is exercised at the small end).
func TestErrTooLarge(t *testing.T) {
	if err := CheckSize(math.MaxInt32 - 1); err != nil {
		t.Fatalf("n = 2^31-2 must be accepted, got %v", err)
	}
	if err := CheckSize(math.MaxInt32); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("n = 2^31-1 must return ErrTooLarge, got %v", err)
	}
	if err := CheckSize(math.MaxInt32 + 1); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("n = 2^31 must return ErrTooLarge, got %v", err)
	}
	// A normal-size input through the real entry points stays error-free.
	if _, err := Compute([]int32{1, 0, 1}, 2); err != nil {
		t.Fatalf("small Compute: %v", err)
	}
	if _, err := ComputeBytes([]byte("ok")); err != nil {
		t.Fatalf("small ComputeBytes: %v", err)
	}
}

// cancelAfterFirstPoll is a context that reports itself done as soon as its
// Err method has been consulted once: the run is guaranteed to be past the
// entry check and mid-induced-sort, so the test pins that the inner loops
// really poll (mirrors the query-side pollCtx pattern of the xpath tests).
type cancelAfterFirstPoll struct {
	context.Context
	polled bool
}

func (c *cancelAfterFirstPoll) Done() <-chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}

func (c *cancelAfterFirstPoll) Err() error {
	if c.polled {
		return context.Canceled
	}
	c.polled = true
	return nil
}

// TestComputeCtxCancel is the regression test for the build-cancellation
// bugfix: a cancelled context aborts the suffix sort mid-flight with
// context.Canceled instead of running to completion.
func TestComputeCtxCancel(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	s := make([]int32, 1<<20)
	for i := range s {
		s[i] = int32(r.Intn(4))
	}
	ctx := &cancelAfterFirstPoll{Context: context.Background()}
	if _, err := ComputeCtx(ctx, s, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-flight cancel: got %v, want context.Canceled", err)
	}
	if !ctx.polled {
		t.Fatal("the sort never polled the context")
	}
	// An uncancelled run over the same input still succeeds.
	if _, err := ComputeCtx(context.Background(), s, 4); err != nil {
		t.Fatal(err)
	}
}
