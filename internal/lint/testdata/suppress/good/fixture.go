// Fixture posing as repro/internal/xpath: well-formed suppressions
// silence the named analyzer (or all of them) on the next line.
package fixture

import "context"

func suppressed(ctx context.Context, xs []int) int {
	_ = ctx.Err()
	total := 0
	//sxsivet:ignore ctxpoll fixture exercises the suppression path
	for _, x := range xs {
		total += x
	}
	return total
}

func suppressedAll(ctx context.Context, xs []int) int {
	_ = ctx.Err()
	total := 0
	//sxsivet:ignore all fixture exercises the wildcard suppression
	for _, x := range xs {
		total += x
	}
	return total
}

func trailing(ctx context.Context, xs []int) int {
	_ = ctx.Err()
	total := 0
	for _, x := range xs { //sxsivet:ignore ctxpoll trailing-comment form covers its own line
		total += x
	}
	return total
}
