// Fixture posing as repro/internal/xpath: a suppression without a
// justification is itself reported and suppresses nothing.
package fixture

import "context"

func unjustified(ctx context.Context, xs []int) int {
	_ = ctx.Err()
	total := 0
	/* want `malformed suppression` */ //sxsivet:ignore ctxpoll
	for _, x := range xs { // want `loop does not poll its context`
		total += x
	}
	return total
}
