// Fixture posing as repro/internal/wordindex: it imports persist, so
// makes sized from on-disk lengths must be bounds-checked first.
package fixture

import "repro/internal/persist"

func loadVals(mr *persist.MReader) []uint32 {
	n := mr.Int()
	out := make([]uint32, n) // want `make sized from on-disk length n without a preceding bound check`
	for i := range out {
		out[i] = mr.Uint32()
	}
	return out
}

func loadAnon(mr *persist.MReader) []byte {
	return make([]byte, mr.Int()) // want `make sized from on-disk length \(on-disk length\) without a preceding bound check`
}

func loadDerived(mr *persist.MReader) []uint64 {
	n := int(mr.Uint32())
	m := n * 2
	return make([]uint64, m) // want `make sized from on-disk length m without a preceding bound check`
}
