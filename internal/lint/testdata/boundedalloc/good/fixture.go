// Fixture posing as repro/internal/wordindex: every make here bounds its
// on-disk length first, one of the accepted ways.
package fixture

import (
	"fmt"

	"repro/internal/persist"
)

func loadCompared(mr *persist.MReader, limit int) ([]uint32, error) {
	n := mr.Int()
	if n > limit {
		return nil, fmt.Errorf("%w: implausible count %d", persist.ErrCorrupt, n)
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = mr.Uint32()
	}
	return out, nil
}

func loadClamped(mr *persist.MReader) []byte {
	n := mr.Int()
	buf := make([]byte, min(n, 4096)) // min against a trusted cap clamps
	return buf
}

func loadViaChecker(mr *persist.MReader) ([]uint64, error) {
	n := mr.Int()
	if err := mr.Check(n <= 1<<20, "count out of range"); err != nil {
		return nil, err
	}
	return make([]uint64, n), nil
}
