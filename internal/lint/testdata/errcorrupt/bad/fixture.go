// Fixture posing as repro/internal/bitvec: a structure package, so its
// load paths must classify failures as persist.ErrCorrupt.
package fixture

import (
	"errors"
	"fmt"
)

func LoadThing(b []byte) error {
	if len(b) == 0 {
		panic("empty input") // want `panic in load path LoadThing`
	}
	if b[0] != 1 {
		return errors.New("bad version") // want `errors.New in load path LoadThing`
	}
	if len(b) < 8 {
		return fmt.Errorf("truncated at %d bytes", len(b)) // want `fmt.Errorf without %w in load path LoadThing`
	}
	return nil
}
