// Fixture posing as repro/internal/bitvec: load paths wrap
// persist.ErrCorrupt; functions off the load path are unrestricted.
package fixture

import (
	"fmt"

	"repro/internal/persist"
)

func LoadThing(b []byte) error {
	if len(b) < 8 {
		return fmt.Errorf("%w: truncated at %d bytes", persist.ErrCorrupt, len(b))
	}
	return nil
}

func decodeField(b []byte) (uint8, error) {
	if len(b) == 0 {
		return 0, fmt.Errorf("%w: missing field", persist.ErrCorrupt)
	}
	return b[0], nil
}

func format(n int) error {
	// Not a load path: plain errors are fine here.
	return fmt.Errorf("unrelated operational failure %d", n)
}
