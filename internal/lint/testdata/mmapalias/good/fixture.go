// Fixture posing as repro/internal/bitvec: a loader package, so keeping
// mapped-derived slices in struct fields is its job — only writes
// through them would be violations, and there are none here.
package fixture

import "repro/internal/persist"

type vec struct {
	words []uint64
	raw   []byte
}

func load(mr *persist.MReader) *vec {
	v := &vec{}
	v.words = mr.Words()
	v.raw = mr.Bytes()
	return v
}

func sum(mr *persist.MReader) uint64 {
	var total uint64
	for _, w := range mr.Words() {
		total += w
	}
	// A private copy is mutable: the copy's destination is fresh memory.
	own := make([]byte, 8)
	copy(own, "payload")
	own[0] = 1
	return total
}
