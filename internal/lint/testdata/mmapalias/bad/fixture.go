// Fixture posing as repro/internal/xpath: neither an unsafe-allowed nor
// a loader package, so every mapped-memory misuse below must be flagged.
package fixture

import (
	_ "unsafe" // want `unsafe is confined to internal/persist and internal/mmap`

	"repro/internal/persist"
)

type holder struct {
	data []byte
}

func mutate(src persist.Source) *holder {
	b := src.Bytes()
	b[0] = 1 // want `write through slice derived from mapped index memory`
	var tmp [4]byte
	copy(b, tmp[:])  // want `copy on a slice derived from mapped index memory`
	_ = append(b, 0) // want `append on a slice derived from mapped index memory`
	h := &holder{}
	h.data = b // want `stored into a struct field outside the loader packages`
	lit := holder{
		data: b, // want `stored into a struct literal outside the loader packages`
	}
	_ = lit
	return h
}

func reslice(src persist.Source) {
	b := src.Raw(16)
	c := b[2:8]
	c[0] = 9 // want `write through slice derived from mapped index memory`
}
