// Fixture for the guarded-by annotation check (any package path).
package fixture

import "sync"

type counter struct {
	mu  sync.Mutex
	n   int // guarded by mu
	bad int /* want `annotation names "nosuchmu", which is not a sibling` */ // guarded by nosuchmu
}

func (c *counter) inc() {
	c.n++ // want `field n is guarded by mu, but inc does not acquire c.mu`
}

func read(c *counter) int {
	return c.n // want `field n is guarded by mu, but read does not acquire c.mu`
}

func lockOther(c, d *counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d.n++ // want `field n is guarded by mu, but lockOther does not acquire d.mu`
}
