// Fixture for the guarded-by annotation check: compliant accesses.
package fixture

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *counter) inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func newCounter(start int) *counter {
	c := &counter{}
	c.n = start // constructor: the value is not shared yet
	return c
}

func fresh() *counter {
	c := &counter{n: 1}
	c.n++ // the function visibly constructs the value
	return c
}
