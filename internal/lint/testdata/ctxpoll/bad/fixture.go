// Fixture posing as repro/internal/xpath: a document-scale package, so
// context parameters must be used and unbounded loops must poll.
package fixture

import "context"

func dropped(ctx context.Context, n int) int { // want `context parameter ctx is dropped`
	total := 0
	for i := 0; i < n; i++ { // want `loop does not poll its context`
		total += i
	}
	return total
}

func unpolled(ctx context.Context, xs []int) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	total := 0
	for _, x := range xs { // want `loop does not poll its context`
		total += x
	}
	return total, nil
}
