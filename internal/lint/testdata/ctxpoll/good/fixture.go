// Fixture posing as repro/internal/xpath: every loop here satisfies the
// polling contract one of the accepted ways.
package fixture

import "context"

func strided(ctx context.Context, xs []int) (int, error) {
	total := 0
	for i, x := range xs {
		if i&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
		}
		total += x
	}
	return total, nil
}

func constTrip(ctx context.Context) int {
	_ = ctx.Err()
	total := 0
	for i := 0; i < 256; i++ { // bounded by construction: exempt
		total += i
	}
	return total
}

func nested(ctx context.Context, m [][]int) int {
	total := 0
	for _, row := range m {
		if ctx.Err() != nil {
			return total
		}
		for _, x := range row { // nested: the outer loop's poll bounds it
			total += x
		}
	}
	return total
}

type iter struct {
	ctx context.Context
	i   int
}

func newIter(ctx context.Context) *iter { return &iter{ctx: ctx} }

func (it *iter) next() bool {
	it.i++
	return it.i < 1<<20 && it.ctx.Err() == nil
}

func drain(ctx context.Context) int {
	it := newIter(ctx)
	n := 0
	for it.next() { // delegates to a ctx-carrying value
		n++
	}
	return n
}
