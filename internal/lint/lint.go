// Package lint assembles the sxsivet analyzer suite: five repo-specific
// static checks that mechanize the engine's safety contracts. Each
// contract exists because violating it has already produced a real bug;
// the analyzers make the next violation a CI failure instead of a
// debugging session. See docs/ARCHITECTURE.md, "Invariants & static
// analysis", for the contract-by-contract story and the suppression
// syntax (//sxsivet:ignore <analyzer> <reason>).
package lint

import (
	"repro/internal/lint/analysis"
	"repro/internal/lint/boundedalloc"
	"repro/internal/lint/ctxpoll"
	"repro/internal/lint/errcorrupt"
	"repro/internal/lint/guardedby"
	"repro/internal/lint/mmapalias"
)

// Analyzers returns the full sxsivet suite in diagnostic order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		mmapalias.Analyzer,
		ctxpoll.Analyzer,
		boundedalloc.Analyzer,
		errcorrupt.Analyzer,
		guardedby.Analyzer,
	}
}
