package lint_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/analysistest"
	"repro/internal/lint/boundedalloc"
	"repro/internal/lint/ctxpoll"
	"repro/internal/lint/errcorrupt"
	"repro/internal/lint/guardedby"
	"repro/internal/lint/mmapalias"
)

// TestAnalyzers runs each analyzer over a violating and a clean fixture.
// The fixtures pose as real repo import paths because the analyzers
// scope themselves by package path; the import path also selects which
// side of a path-dependent rule is exercised (e.g. mmapalias allows
// field stores in loader packages but not elsewhere).
func TestAnalyzers(t *testing.T) {
	cases := []struct {
		dir        string
		importPath string
		analyzer   *analysis.Analyzer
	}{
		{"testdata/mmapalias/bad", "repro/internal/xpath", mmapalias.Analyzer},
		{"testdata/mmapalias/good", "repro/internal/bitvec", mmapalias.Analyzer},
		{"testdata/ctxpoll/bad", "repro/internal/xpath", ctxpoll.Analyzer},
		{"testdata/ctxpoll/good", "repro/internal/xpath", ctxpoll.Analyzer},
		{"testdata/boundedalloc/bad", "repro/internal/wordindex", boundedalloc.Analyzer},
		{"testdata/boundedalloc/good", "repro/internal/wordindex", boundedalloc.Analyzer},
		{"testdata/errcorrupt/bad", "repro/internal/bitvec", errcorrupt.Analyzer},
		{"testdata/errcorrupt/good", "repro/internal/bitvec", errcorrupt.Analyzer},
		{"testdata/guardedby/bad", "repro/internal/collection", guardedby.Analyzer},
		{"testdata/guardedby/good", "repro/internal/collection", guardedby.Analyzer},
	}
	for _, tc := range cases {
		t.Run(filepath.Base(filepath.Dir(tc.dir))+"/"+filepath.Base(tc.dir), func(t *testing.T) {
			analysistest.Run(t, tc.dir, tc.importPath, tc.analyzer)
		})
	}
}

// TestSuppression checks the //sxsivet:ignore directive: a justified
// directive silences the named analyzer (or all of them), a directive
// without a justification is itself reported and suppresses nothing.
func TestSuppression(t *testing.T) {
	t.Run("honored", func(t *testing.T) {
		analysistest.Run(t, "testdata/suppress/good", "repro/internal/xpath", ctxpoll.Analyzer)
	})
	t.Run("malformed", func(t *testing.T) {
		analysistest.Run(t, "testdata/suppress/bad", "repro/internal/xpath", ctxpoll.Analyzer)
	})
}

// TestSuiteComplete pins the analyzer roster: CI invokes the suite as a
// unit, so dropping an analyzer from Analyzers() must not pass silently.
func TestSuiteComplete(t *testing.T) {
	want := []string{"mmapalias", "ctxpoll", "boundedalloc", "errcorrupt", "guardedby"}
	got := lint.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("Analyzers() returned %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("Analyzers()[%d] = %q, want %q", i, a.Name, want[i])
		}
	}
}

// TestVetToolClean is the smoke test for the whole pipeline: build the
// sxsivet binary and run it as a vettool over the entire repo, which
// must exit clean — every surfaced violation was either fixed or
// carries a justified suppression.
func TestVetToolClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and vets the whole tree")
	}
	root := repoRoot(t)
	bin := filepath.Join(t.TempDir(), "sxsivet")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/sxsivet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building sxsivet: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Errorf("go vet -vettool=sxsivet ./... reported findings: %v\n%s", err, out)
	}
	standalone := exec.Command(bin, "./...")
	standalone.Dir = root
	if out, err := standalone.CombinedOutput(); err != nil {
		t.Errorf("sxsivet ./... (standalone) reported findings: %v\n%s", err, out)
	}
}

// repoRoot walks up from the test's working directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}
