// Package errcorrupt enforces the typed-corruption contract on the
// structure packages: every Load/Read/Open/decode path must surface bad
// input as an error wrapping persist.ErrCorrupt — never as a panic, and
// never as an anonymous error that callers cannot classify. Collection
// and service code rely on errors.Is(err, persist.ErrCorrupt) to keep a
// corrupt file from being mistaken for an operational failure.
//
// Inside a load-path function the analyzer flags:
//   - panic(...) — corrupt input must not take the process down;
//   - errors.New(...) — unclassifiable;
//   - fmt.Errorf with a format string that wraps nothing (no %w) — the
//     chain to ErrCorrupt is broken at this frame.
//
// fmt.Errorf("...: %w", err) is accepted: decode errors propagate
// wrapped, and the frame that created them is the one that attached
// ErrCorrupt.
package errcorrupt

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "errcorrupt",
	Doc:  "require load paths in structure packages to wrap decode failures in persist.ErrCorrupt and never panic on input data",
	Match: analysis.PathIn(
		"repro/internal/persist",
		"repro/internal/bitvec",
		"repro/internal/bp",
		"repro/internal/wavelet",
		"repro/internal/fmindex",
		"repro/internal/wordindex",
		"repro/internal/xmltree",
		"repro/internal/rlfm",
		"repro/internal/pssm",
		"repro/internal/core",
	),
	Run: run,
}

// loadPrefixes mark the functions that decode untrusted input.
var loadPrefixes = []string{"Load", "Read", "Open", "load", "read", "open", "decode", "Decode"}

func isLoadPath(name string) bool {
	for _, p := range loadPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isLoadPath(fn.Name.Name) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch callee(pass.TypesInfo, call) {
				case "panic":
					pass.Reportf(call.Pos(), "panic in load path %s: corrupt input must surface as an error wrapping persist.ErrCorrupt, not a panic", fn.Name.Name)
				case "errors.New":
					pass.Reportf(call.Pos(), "errors.New in load path %s: decode failures must wrap persist.ErrCorrupt (%%w) so callers can classify them", fn.Name.Name)
				case "fmt.Errorf":
					if format, ok := constFormat(pass.TypesInfo, call); ok && !strings.Contains(format, "%w") {
						pass.Reportf(call.Pos(), "fmt.Errorf without %%w in load path %s: the error chain to persist.ErrCorrupt is broken at this frame", fn.Name.Name)
					}
				}
				return true
			})
		}
	}
	return nil
}

// callee names the called function: "panic" for the builtin,
// "pkg.Func" for package-level functions, "" otherwise.
func callee(info *types.Info, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok {
			return b.Name()
		}
	case *ast.SelectorExpr:
		if obj, ok := info.Uses[fun.Sel].(*types.Func); ok && obj.Pkg() != nil {
			if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() == nil {
				return obj.Pkg().Name() + "." + obj.Name()
			}
		}
	}
	return ""
}

// constFormat extracts a constant format-string first argument.
func constFormat(info *types.Info, call *ast.CallExpr) (string, bool) {
	if len(call.Args) == 0 {
		return "", false
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
