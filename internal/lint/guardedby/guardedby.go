// Package guardedby mechanizes the lock-annotation convention: a struct
// field whose declaration carries a `// guarded by <mu>` comment (where
// <mu> is a sibling sync.Mutex or sync.RWMutex field) may only be
// accessed in functions that visibly acquire that mutex — a
// `<base>.<mu>.Lock()` / `RLock()` / `TryLock()` call on the same base
// expression — or in functions that construct the value (the enclosing
// function contains a composite literal of the struct type, or is a
// New* constructor), where the value is not yet shared.
//
// The check is function-local and package-scoped: it cannot see a lock
// taken by a caller. Accesses on a deliberately lock-free path (e.g.
// reading a counter for a log line) document themselves with
// //sxsivet:ignore guardedby <reason>.
package guardedby

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "guardedby",
	Doc:  "check that fields annotated `// guarded by <mu>` are only accessed with that mutex visibly held",
	Run:  run,
}

var annotationRE = regexp.MustCompile(`guarded by (\w+)`)

var lockMethods = map[string]bool{"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true}

// guard records one annotated field and the mutex field guarding it.
type guard struct {
	structType *types.Named
	mutexName  string
}

func run(pass *analysis.Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn, guards)
		}
	}
	return nil
}

// collectGuards finds annotated fields, validating that the named mutex
// is a sibling field of a sync mutex type.
func collectGuards(pass *analysis.Pass) map[*types.Var]guard {
	guards := map[*types.Var]guard{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			def := pass.TypesInfo.Defs[ts.Name]
			if def == nil {
				return true
			}
			named, _ := def.Type().(*types.Named)
			for _, field := range st.Fields.List {
				mu := annotatedMutex(field)
				if mu == "" {
					continue
				}
				if !hasMutexField(st, pass, mu) {
					pass.Reportf(field.Pos(), "guarded-by annotation names %q, which is not a sibling sync.Mutex/RWMutex field", mu)
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok && named != nil {
						guards[v] = guard{structType: named, mutexName: mu}
					}
				}
			}
			return true
		})
	}
	return guards
}

func annotatedMutex(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := annotationRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func hasMutexField(st *ast.StructType, pass *analysis.Pass, name string) bool {
	for _, field := range st.Fields.List {
		for _, n := range field.Names {
			if n.Name == name {
				t := pass.TypesInfo.TypeOf(field.Type)
				if ptr, ok := t.(*types.Pointer); ok {
					t = ptr.Elem()
				}
				named, ok := t.(*types.Named)
				if !ok || named.Obj().Pkg() == nil {
					return false
				}
				return named.Obj().Pkg().Path() == "sync" &&
					(named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex")
			}
		}
	}
	return false
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, guards map[*types.Var]guard) {
	info := pass.TypesInfo
	// locked maps "base.mutex" strings for every acquire in the function.
	locked := map[string]bool{}
	constructs := map[*types.Named]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || !lockMethods[sel.Sel.Name] {
				return true
			}
			if muSel, ok := sel.X.(*ast.SelectorExpr); ok {
				locked[exprString(muSel.X)+"."+muSel.Sel.Name] = true
			} else if id, ok := sel.X.(*ast.Ident); ok {
				// Lock on a bare local mutex (var mu sync.Mutex).
				locked["."+id.Name] = true
			}
		case *ast.CompositeLit:
			t := info.TypeOf(n)
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				constructs[named] = true
			}
		}
		return true
	})
	isConstructor := strings.HasPrefix(fn.Name.Name, "New") || strings.HasPrefix(fn.Name.Name, "new")
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		v, ok := s.Obj().(*types.Var)
		if !ok {
			return true
		}
		g, ok := guards[v]
		if !ok {
			return true
		}
		if isConstructor || constructs[g.structType] {
			return true
		}
		if locked[exprString(sel.X)+"."+g.mutexName] {
			return true
		}
		pass.Reportf(sel.Pos(), "field %s is guarded by %s, but %s does not acquire %s.%s", v.Name(), g.mutexName, fn.Name.Name, exprString(sel.X), g.mutexName)
		return true
	})
}

// exprString renders the base expression of a selector for comparison:
// `c`, `c.inner`, `(*c).x`. Good enough to match a lock site with an
// access site in the same function.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.StarExpr:
		return exprString(e.X)
	case *ast.CallExpr:
		return exprString(e.Fun) + "()"
	case *ast.IndexExpr:
		return exprString(e.X) + "[]"
	}
	return "?"
}
