// Package analysistest runs sxsivet analyzers over fixture packages and
// compares the diagnostics against expectations written in the fixtures
// themselves, in the style of golang.org/x/tools analysistest (which is
// not vendored here): a comment
//
//	// want `regexp` `another regexp`
//
// on a line declares that the analyzers must report diagnostics on that
// line whose messages match the given regular expressions, one each.
// Lines without a want comment must produce no diagnostics. Block
// comments (/* want `re` */) work too, which allows an expectation to
// share a line with a line comment under test (e.g. a malformed
// suppression directive).
//
// Fixtures are plain directories of .go files (kept under testdata/ so
// the repo build ignores them). Run poses the fixture as an arbitrary
// import path, because every sxsivet analyzer scopes itself by package
// path; imports are resolved against the real repo packages via
// `go list -export`, so a fixture can exercise cross-package taint
// (e.g. a slice obtained from persist.Source).
package analysistest

import (
	"fmt"
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/checker"
)

// want is one expected diagnostic: a regexp anchored to a file and line.
type want struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

// Run analyzes the fixture package in dir as if its import path were
// importPath and checks the diagnostics against the want comments.
func Run(t *testing.T, dir, importPath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no fixture files in %s (%v)", dir, err)
	}
	sort.Strings(files)

	wants, imports, err := parseFixtures(files)
	if err != nil {
		t.Fatal(err)
	}
	exports := map[string]string{}
	if len(imports) > 0 {
		exports, err = checker.ExportData(imports...)
		if err != nil {
			t.Fatalf("resolving fixture imports: %v", err)
		}
	}
	findings, err := checker.Analyze(checker.Target{
		ImportPath: importPath,
		GoFiles:    files,
		Exports:    exports,
		GoVersion:  "go1.24",
	}, analyzers)
	if err != nil {
		t.Fatalf("analyzing %s: %v", dir, err)
	}

	for _, f := range findings {
		if !claim(wants, f) {
			t.Errorf("%s: unexpected diagnostic (%s): %s", f.Pos, f.Analyzer, f.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched %q", w.file, w.line, w.rx)
		}
	}
}

// claim marks the first unmatched want covering the finding's position.
func claim(wants []*want, f checker.Finding) bool {
	for _, w := range wants {
		if !w.matched && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.rx.MatchString(f.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// wantRE matches a want directive inside a comment's text; quotedRE then
// pulls out each double-quoted or backquoted pattern.
var (
	wantRE   = regexp.MustCompile(`(?://|/\*)\s*want\s+(.*)`)
	quotedRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")
)

// parseFixtures extracts the want expectations and the union of imports
// from the fixture files.
func parseFixtures(files []string) ([]*want, []string, error) {
	fset := token.NewFileSet()
	var wants []*want
	seen := map[string]bool{}
	var imports []string
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, fmt.Errorf("parsing fixture: %v", err)
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				return nil, nil, err
			}
			if path != "unsafe" && !seen[path] {
				seen[path] = true
				imports = append(imports, path)
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range quotedRE.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						return nil, nil, fmt.Errorf("%s:%d: bad want pattern %s: %v", name, pos.Line, q, err)
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						return nil, nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", name, pos.Line, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}
	sort.Strings(imports)
	return wants, imports, nil
}
