// Package boundedalloc enforces the capped-allocation contract from the
// persistence layer's hardening (PR 1): a `make` whose size flows from a
// length read off disk (persist.Source / persist.Reader integer reads)
// must be validated first — otherwise one corrupt length field turns
// into an attacker-sized allocation before the first byte of payload is
// checked.
//
// A length is considered validated once, before the make, it is
//   - compared in an if-condition (the usual `if n > cap { return
//     ErrCorrupt }` guard),
//   - passed into a bounds-checking helper (a callee whose name contains
//     need/check/valid/bound/cap), or
//   - clamped through the min builtin with an untainted operand.
//
// The analysis is intraprocedural and flow-approximate: validation must
// merely precede the allocation in source order within the function.
package boundedalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "boundedalloc",
	Doc:  "require make sizes derived from on-disk length fields to pass a bound check before allocating",
	Run:  run,
}

// intReaders are the integer-reading methods of the persist decoders
// whose results are untrusted on-disk lengths.
var intReaders = map[string]bool{
	"Int": true, "Int32": true, "Uint32": true, "Uint64": true, "Byte": true,
}

// validatorSubstrings mark bounds-checking helpers by name.
var validatorSubstrings = []string{"need", "check", "valid", "bound", "cap", "len"}

func run(pass *analysis.Pass) error {
	if !importsPersist(pass.Pkg) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func importsPersist(pkg *types.Package) bool {
	if strings.HasSuffix(pkg.Path(), "internal/persist") {
		return true
	}
	for _, imp := range pkg.Imports() {
		if strings.HasSuffix(imp.Path(), "internal/persist") {
			return true
		}
	}
	return false
}

type state struct {
	pass    *analysis.Pass
	tainted map[types.Object]bool
	// validatedAt records the earliest source position at which each
	// tainted object was bounds-checked.
	validatedAt map[types.Object]token.Pos
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	st := &state{pass: pass, tainted: map[types.Object]bool{}, validatedAt: map[types.Object]token.Pos{}}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) == len(s.Rhs) {
					for i, lhs := range s.Lhs {
						if st.taintedExpr(s.Rhs[i]) {
							changed = st.mark(lhs) || changed
						}
					}
				}
			case *ast.ValueSpec:
				if len(s.Names) == len(s.Values) {
					for i, name := range s.Names {
						if st.taintedExpr(s.Values[i]) {
							changed = st.mark(name) || changed
						}
					}
				}
			}
			return true
		})
	}
	st.recordValidations(fn.Body)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "make" {
			return true
		} else if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok {
			return true
		}
		for _, sizeArg := range call.Args[1:] {
			if obj := st.unvalidated(sizeArg, call.Pos()); obj != nil {
				pass.Reportf(call.Pos(), "make sized from on-disk length %s without a preceding bound check; cap it against the remaining input first", obj.Name())
			}
		}
		return true
	})
}

// mark taints the object behind an assignable expression.
func (st *state) mark(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return false
	}
	obj := st.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = st.pass.TypesInfo.Uses[id]
	}
	if obj == nil || st.tainted[obj] {
		return false
	}
	st.tainted[obj] = true
	return true
}

// taintedExpr reports whether e carries an untrusted on-disk length.
func (st *state) taintedExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		obj := st.pass.TypesInfo.Uses[e]
		return obj != nil && st.tainted[obj]
	case *ast.ParenExpr:
		return st.taintedExpr(e.X)
	case *ast.BinaryExpr:
		return st.taintedExpr(e.X) || st.taintedExpr(e.Y)
	case *ast.CallExpr:
		if st.isPersistIntRead(e) {
			return true
		}
		if id, ok := e.Fun.(*ast.Ident); ok {
			if b, isB := st.pass.TypesInfo.Uses[id].(*types.Builtin); isB {
				switch b.Name() {
				case "min":
					// min clamps: tainted only if every operand is.
					for _, a := range e.Args {
						if !st.taintedExpr(a) {
							return false
						}
					}
					return len(e.Args) > 0
				case "max", "len":
					for _, a := range e.Args {
						if st.taintedExpr(a) {
							return true
						}
					}
					return false
				}
			}
		}
		// Integer conversions keep the taint.
		if tv, ok := st.pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return st.taintedExpr(e.Args[0])
		}
	}
	return false
}

// isPersistIntRead reports whether call reads an integer off a persist
// decoder (Source, Reader, MReader — matched by receiver package).
func (st *state) isPersistIntRead(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !intReaders[sel.Sel.Name] {
		return false
	}
	s, ok := st.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	recv := s.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return strings.HasSuffix(named.Obj().Pkg().Path(), "internal/persist")
}

// recordValidations scans for bound checks and records, per tainted
// object, where it was first validated. Comparisons anywhere count —
// loaders often compute `ok := got == n && ...` and feed it to
// Source.Check rather than branching inline.
func (st *state) recordValidations(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			st.recordComparisons(n)
		case *ast.CallExpr:
			var name string
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				name = fun.Name
			case *ast.SelectorExpr:
				name = fun.Sel.Name
			}
			if name == "" {
				return true
			}
			lower := strings.ToLower(name)
			for _, sub := range validatorSubstrings {
				if strings.Contains(lower, sub) {
					for _, a := range n.Args {
						st.validateOperands(a, n.Pos())
					}
					break
				}
			}
		}
		return true
	})
}

// recordComparisons marks every tainted object compared inside a
// condition expression as validated at that position.
func (st *state) recordComparisons(cond ast.Expr) {
	ast.Inspect(cond, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch b.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			st.validateOperands(b.X, b.Pos())
			st.validateOperands(b.Y, b.Pos())
		}
		return true
	})
}

// validateOperands marks every tainted identifier inside e as validated
// at pos (keeping the earliest position seen).
func (st *state) validateOperands(e ast.Expr, pos token.Pos) {
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := st.pass.TypesInfo.Uses[id]
		if obj == nil || !st.tainted[obj] {
			return true
		}
		if prev, ok := st.validatedAt[obj]; !ok || pos < prev {
			st.validatedAt[obj] = pos
		}
		return true
	})
}

// unvalidated returns a tainted object used in the size expression that
// has no validation before makePos, or nil if the size is safe.
func (st *state) unvalidated(size ast.Expr, makePos token.Pos) types.Object {
	if !st.taintedExpr(size) {
		return nil
	}
	var found types.Object
	sawTaintedIdent := false
	ast.Inspect(size, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := st.pass.TypesInfo.Uses[id]
		if obj == nil || !st.tainted[obj] {
			return true
		}
		sawTaintedIdent = true
		if at, ok := st.validatedAt[obj]; !ok || at >= makePos {
			found = obj
		}
		return true
	})
	if found == nil && !sawTaintedIdent {
		// The size is a tainted expression with no identifiable variable
		// (e.g. make([]T, r.Int())): report against the expression.
		return anonLength{}
	}
	return found
}

// anonLength stands in for a tainted size expression with no variable.
type anonLength struct{ types.Object }

func (anonLength) Name() string { return "(on-disk length)" }
