package checker

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"

	"repro/internal/lint/analysis"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Module     *struct{ GoVersion string }
	Error      *struct{ Err string }
}

// Standalone analyzes the packages matching the given go-list patterns
// (`sxsivet ./...`), without the vet harness: one `go list -export
// -deps -json` run yields export data for every dependency and the file
// lists of the targets, and each target is then type-checked and
// analyzed exactly as in vet mode. Returns a process exit code (0
// clean, 1 operational failure, 2 diagnostics).
func Standalone(patterns []string, analyzers []*analysis.Analyzer) int {
	pkgs, err := goList(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sxsivet: %v\n", err)
		return 1
	}
	exports := map[string]string{}
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	exit := 0
	for _, p := range pkgs {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		if p.Error != nil {
			fmt.Fprintf(os.Stderr, "sxsivet: %s: %s\n", p.ImportPath, p.Error.Err)
			exit = max(exit, 1)
			continue
		}
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = p.Dir + string(os.PathSeparator) + f
		}
		goVersion := ""
		if p.Module != nil {
			goVersion = p.Module.GoVersion
		}
		findings, err := Analyze(Target{
			ImportPath: p.ImportPath,
			GoFiles:    files,
			Exports:    exports,
			GoVersion:  goVersion,
		}, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sxsivet: %s: %v\n", p.ImportPath, err)
			exit = max(exit, 1)
			continue
		}
		exit = max(exit, printFindings(findings))
	}
	return exit
}

// ExportData resolves export-data files for the given import paths and
// all their dependencies via one `go list -export -deps` run (so it must
// execute inside the module). The analysistest harness uses it to
// typecheck fixture packages against the real packages they import.
func ExportData(paths ...string) (map[string]string, error) {
	pkgs, err := goList(paths)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range pkgs {
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

func goList(patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Dir,GoFiles,Export,DepOnly,Standard,Module,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.Bytes())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}
