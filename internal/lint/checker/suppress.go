package checker

import (
	"go/ast"
	"go/token"
	"strings"

	"repro/internal/lint/analysis"
)

// Suppression syntax:
//
//	//sxsivet:ignore <analyzer> <reason>
//
// The comment suppresses diagnostics from <analyzer> on its own line
// (trailing comment) and on the line immediately below it (a standalone
// comment above the flagged statement). The reason is mandatory — an
// ignore without one is itself reported — so every suppression in the
// tree records why the contract does not apply.

const ignorePrefix = "//sxsivet:ignore"

// suppressed records, per file and line, which analyzers are ignored.
type suppressed map[string]map[int]map[string]bool

func (s suppressed) covers(pos token.Position, analyzer string) bool {
	byLine := s[pos.Filename]
	if byLine == nil {
		return false
	}
	return byLine[pos.Line][analyzer] || byLine[pos.Line][ignoreAll]
}

// ignoreAll is the analyzer name that silences every check on a line.
const ignoreAll = "all"

// suppressions scans the comments of files for ignore directives,
// returning the suppression table and a diagnostic for each malformed
// directive (missing analyzer or missing reason).
func suppressions(fset *token.FileSet, files []*ast.File) (suppressed, []analysis.Diagnostic) {
	sup := suppressed{}
	var bad []analysis.Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, analysis.Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "sxsivet",
						Message:  "malformed suppression: want //sxsivet:ignore <analyzer> <reason>",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := sup[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					sup[pos.Filename] = byLine
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					if byLine[line] == nil {
						byLine[line] = map[string]bool{}
					}
					byLine[line][fields[0]] = true
				}
			}
		}
	}
	return sup, bad
}
