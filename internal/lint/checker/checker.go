// Package checker drives the sxsivet analyzers over type-checked
// packages. It has two entry points sharing one analysis core: Vet
// implements the `go vet -vettool` unit-checker protocol (cmd/go hands
// the tool a JSON config per package, with export data for every import
// already built), and Standalone loads packages itself via
// `go list -export -json -deps` so `sxsivet ./...` works without the vet
// harness. Both modes typecheck from export data with the standard
// library's gc importer, so a run costs parsing plus type-checking of
// the target package only.
package checker

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// Target describes one package to analyze.
type Target struct {
	ImportPath string
	GoFiles    []string
	// Exports maps an import path to its export-data file. Paths absent
	// from the map fail to import, which surfaces as a typecheck error.
	Exports map[string]string
	// ImportMap renames imports (vet configs use it for test variants);
	// may be nil.
	ImportMap map[string]string
	GoVersion string
}

// Finding is one reported diagnostic with its position resolved, ready
// for printing by a driver.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// Analyze parses and type-checks the target and runs every analyzer
// whose Match accepts the package. Diagnostics are suppression-filtered
// and sorted by position. Findings in _test.go files are dropped: the
// contracts guard engine code, and test helpers loop and allocate in
// ways that are bounded by the test harness itself.
func Analyze(t Target, analyzers []*analysis.Analyzer) ([]Finding, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkg, info, err := typecheck(fset, files, t)
	if err != nil {
		return nil, err
	}
	diags := RunAnalyzers(fset, files, pkg, info, t.ImportPath, analyzers)
	var out []Finding
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if strings.HasSuffix(pos.Filename, "_test.go") {
			continue
		}
		out = append(out, Finding{Pos: pos, Analyzer: d.Analyzer, Message: d.Message})
	}
	return out, nil
}

// RunAnalyzers runs the matching analyzers over an already-typechecked
// package and returns the suppression-filtered, sorted diagnostics.
// Exported separately so the analysistest harness can feed fixture
// packages through the exact pipeline the drivers use.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, importPath string, analyzers []*analysis.Analyzer) []analysis.Diagnostic {
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		if a.Match != nil && !a.Match(importPath) {
			continue
		}
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			diags = append(diags, analysis.Diagnostic{
				Pos:      files[0].Pos(),
				Analyzer: a.Name,
				Message:  fmt.Sprintf("analyzer failed: %v", err),
			})
		}
	}
	sup, bad := suppressions(fset, files)
	diags = append(diags, bad...)
	kept := diags[:0]
	for _, d := range diags {
		if !sup.covers(fset.Position(d.Pos), d.Analyzer) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		pi, pj := fset.Position(kept[i].Pos), fset.Position(kept[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept
}

func typecheck(fset *token.FileSet, files []*ast.File, t Target) (*types.Package, *types.Info, error) {
	lookup := func(path string) (io.ReadCloser, error) {
		if f, ok := t.Exports[path]; ok && f != "" {
			return os.Open(f)
		}
		return nil, fmt.Errorf("no export data for %q", path)
	}
	gc := importer.ForCompiler(fset, "gc", lookup)
	imp := importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		if mapped, ok := t.ImportMap[path]; ok {
			path = mapped
		}
		return gc.Import(path)
	})
	conf := types.Config{Importer: imp, GoVersion: goVersion(t.GoVersion)}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// goVersion normalizes cfg Go versions ("go1.24.0", "1.24") to the
// "go1.N" form types.Config accepts, dropping anything unparseable.
func goVersion(v string) string {
	if v == "" {
		return ""
	}
	if !strings.HasPrefix(v, "go") {
		v = "go" + v
	}
	parts := strings.SplitN(v, ".", 3)
	if len(parts) >= 2 {
		return parts[0] + "." + parts[1]
	}
	return v
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
