package checker

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint/analysis"
)

// vetConfig is the subset of cmd/go's vet.cfg the tool consumes. cmd/go
// writes one per package (dependencies included, for fact passing) and
// invokes the vettool as `tool path/vet.cfg`.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// Vet runs the tool under the `go vet -vettool` protocol: respond to
// -V=full (version for the build cache key) and -flags (supported flag
// set, none), then analyze the package described by the cfg argument.
// Returns the process exit code: 0 clean, 1 operational failure, 2
// diagnostics reported (matching x/tools' unitchecker convention, which
// cmd/go interprets as "vet found problems").
//
// sxsivet analyzers are fact-free, so invocations for dependency
// packages (VetxOnly) write an empty facts file and return immediately —
// a `go vet -vettool=sxsivet ./...` spends its time only on the
// packages actually named.
func Vet(args []string, analyzers []*analysis.Analyzer) int {
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		// cmd/go caches vet results keyed on this line.
		fmt.Printf("sxsivet version 1 buildID=sxsivet-1\n")
		return 0
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return 0
	}
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fmt.Fprintf(os.Stderr, "sxsivet: expected a vet config file, got %q (run via go vet -vettool=sxsivet, or with package patterns)\n", args)
		return 1
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "sxsivet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "sxsivet: parsing %s: %v\n", args[0], err)
		return 1
	}
	if cfg.VetxOutput != "" {
		// No facts, but cmd/go expects the file to exist.
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "sxsivet: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	diags, err := Analyze(Target{
		ImportPath: cfg.ImportPath,
		GoFiles:    cfg.GoFiles,
		Exports:    cfg.PackageFile,
		ImportMap:  cfg.ImportMap,
		GoVersion:  cfg.GoVersion,
	}, analyzers)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "sxsivet: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	return printFindings(diags)
}

// printFindings writes diagnostics in the file:line:col form cmd/go and
// editors understand, tagged with the analyzer so the matching
// //sxsivet:ignore is one copy-paste away.
func printFindings(findings []Finding) int {
	if len(findings) == 0 {
		return 0
	}
	for _, d := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s (sxsivet/%s)\n", d.Pos, d.Message, d.Analyzer)
	}
	return 2
}
