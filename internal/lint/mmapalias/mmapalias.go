// Package mmapalias enforces the mapped-memory contract from
// ARCHITECTURE's "replace-never-mutate" rule: slices decoded through
// persist.Source (and the data of internal/mmap files) may alias a
// read-only OS mapping, so they must never be written through, and the
// unsafe reinterpretation that produces them stays confined to the two
// loader-support packages. Concretely:
//
//  1. importing "unsafe" is allowed only in internal/persist and
//     internal/mmap;
//  2. no element write, copy-into, append-to or clear of a slice derived
//     from a persist.Source / persist.MReader / mmap.File payload;
//  3. outside the loader packages (persist, mmap and the structure
//     packages that decode sections), a mapped-derived slice must not be
//     stored into a struct field, where it could outlive the mapping.
//
// The analysis is intraprocedural: a derived slice is tracked through
// local assignments, re-slicings and conversions within one function.
package mmapalias

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "mmapalias",
	Doc:  "forbid writes through (and escaping stores of) slices aliasing mapped index memory, and confine unsafe to the loader-support packages",
	Run:  run,
}

// unsafeOK lists the packages allowed to import unsafe: the two that
// implement the aliasing itself.
var unsafeOK = []string{"internal/persist", "internal/mmap"}

// loaderOK lists the packages allowed to keep mapped-derived slices in
// struct fields: the loader-support packages plus every structure
// package whose Load decodes sections into long-lived directories. Their
// lifetime is managed by Engine.Close via the mapping finalizer.
var loaderOK = []string{
	"internal/persist", "internal/mmap", "internal/bitvec", "internal/bp",
	"internal/wavelet", "internal/fmindex", "internal/wordindex", "internal/tags",
	"internal/xmltree", "internal/rlfm", "internal/pssm", "internal/core",
	"internal/search",
}

func pathIn(path string, list []string) bool {
	path, _, _ = strings.Cut(path, " ")
	for _, s := range list {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !pathIn(pass.Pkg.Path(), unsafeOK) {
		for _, f := range pass.Files {
			for _, imp := range f.Imports {
				if imp.Path.Value == `"unsafe"` {
					pass.Reportf(imp.Pos(), "unsafe is confined to internal/persist and internal/mmap; mapped-memory reinterpretation must not spread")
				}
			}
		}
	}
	isLoader := pathIn(pass.Pkg.Path(), loaderOK)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn, isLoader)
		}
	}
	return nil
}

// checkFunc runs the taint pass over one function body (function
// literals inside it share the same scope and taint set).
func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, isLoader bool) {
	t := &tainter{info: pass.TypesInfo, tainted: map[types.Object]bool{}}
	// Propagate to a fixed point: assignments can forward taint in
	// source order or through loop-carried variables.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) == len(s.Rhs) {
					for i, lhs := range s.Lhs {
						if t.expr(s.Rhs[i]) {
							changed = t.mark(lhs) || changed
						}
					}
				}
			case *ast.ValueSpec:
				if len(s.Names) == len(s.Values) {
					for i, name := range s.Names {
						if t.expr(s.Values[i]) {
							changed = t.mark(name) || changed
						}
					}
				}
			}
			return true
		})
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				if idx, ok := lhs.(*ast.IndexExpr); ok && t.expr(idx.X) {
					pass.Reportf(idx.Pos(), "write through slice derived from mapped index memory (persist.Source payloads are read-only)")
				}
				if !isLoader && len(s.Lhs) == len(s.Rhs) && t.expr(s.Rhs[i]) {
					if sel, ok := lhs.(*ast.SelectorExpr); ok && isFieldStore(pass.TypesInfo, sel) {
						pass.Reportf(s.Pos(), "mapped-derived slice stored into a struct field outside the loader packages; it must not outlive Engine.Close")
					}
				}
			}
		case *ast.CompositeLit:
			if isLoader {
				return true
			}
			if _, ok := pass.TypesInfo.TypeOf(s).Underlying().(*types.Struct); !ok {
				return true
			}
			for _, el := range s.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if t.expr(v) {
					pass.Reportf(v.Pos(), "mapped-derived slice stored into a struct literal outside the loader packages; it must not outlive Engine.Close")
				}
			}
		case *ast.CallExpr:
			if name, ok := builtinName(pass.TypesInfo, s.Fun); ok {
				switch name {
				case "copy", "append", "clear":
					if len(s.Args) > 0 && t.expr(s.Args[0]) {
						pass.Reportf(s.Pos(), "%s on a slice derived from mapped index memory (persist.Source payloads are read-only)", name)
					}
				}
			}
		}
		return true
	})
}

func builtinName(info *types.Info, fun ast.Expr) (string, bool) {
	id, ok := fun.(*ast.Ident)
	if !ok {
		return "", false
	}
	if _, ok := info.Uses[id].(*types.Builtin); !ok {
		return "", false
	}
	return id.Name, true
}

// isFieldStore reports whether sel resolves to a struct field (as
// opposed to a package-level var accessed through a package selector).
func isFieldStore(info *types.Info, sel *ast.SelectorExpr) bool {
	s, ok := info.Selections[sel]
	return ok && s.Kind() == types.FieldVal
}

type tainter struct {
	info    *types.Info
	tainted map[types.Object]bool
}

// mark taints the object behind an assignable expression, reporting
// whether the set grew.
func (t *tainter) mark(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return false
	}
	obj := t.info.Defs[id]
	if obj == nil {
		obj = t.info.Uses[id]
	}
	if obj == nil || t.tainted[obj] {
		return false
	}
	t.tainted[obj] = true
	return true
}

// expr reports whether e evaluates to a mapped-derived slice.
func (t *tainter) expr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		obj := t.info.Uses[e]
		return obj != nil && t.tainted[obj]
	case *ast.ParenExpr:
		return t.expr(e.X)
	case *ast.SliceExpr:
		return t.expr(e.X)
	case *ast.CallExpr:
		if t.isMappedPayloadCall(e) {
			return true
		}
		// Conversion of a tainted slice keeps the aliasing.
		if tv, ok := t.info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return t.expr(e.Args[0])
		}
	}
	return false
}

// isMappedPayloadCall reports whether call is a slice-returning method
// of persist.Source / *persist.MReader / *persist.MappedFile, or
// mmap.(*File).Data — the taint sources.
func (t *tainter) isMappedPayloadCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := t.info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	sig, ok := s.Obj().Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return false
	}
	if _, isSlice := sig.Results().At(0).Type().Underlying().(*types.Slice); !isSlice {
		return false
	}
	recv := s.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg, name := named.Obj().Pkg().Path(), named.Obj().Name()
	switch {
	case strings.HasSuffix(pkg, "internal/persist") && (name == "Source" || name == "MReader" || name == "MappedFile"):
		return true
	case strings.HasSuffix(pkg, "internal/mmap") && name == "File" && s.Obj().Name() == "Data":
		return true
	}
	return false
}
