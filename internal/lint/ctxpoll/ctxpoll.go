// Package ctxpoll enforces the cancellation contract on the
// document-scale packages (xpath, sais, fmindex, build, xmlparse): a
// function that receives a context.Context must actually use it, and
// every top-level loop in such a function must poll cancellation at a
// bounded interval — directly (ctx.Err(), ctx.Done(), passing ctx to a
// callee), through a named poll helper (poll, tick, ctxErr, pollCtx,
// checkCtx), or by delegating to a value that carries a context (a
// struct with a context.Context field, like the sais poller or the
// xmlparse parser).
//
// Loops with a small constant trip count (≤ 1024 iterations, or ranging
// over a fixed-size array) are exempt: they are bounded by construction,
// not document-scale. Nested loops are the enclosing loop's
// responsibility — the outer loop's poll bounds the interval.
package ctxpoll

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxpoll",
	Doc:  "require context-taking functions in document-scale packages to use their context and to poll it in every top-level loop",
	Match: analysis.PathIn(
		"repro/internal/xpath",
		"repro/internal/sais",
		"repro/internal/fmindex",
		"repro/internal/build",
		"repro/internal/xmlparse",
		"repro/internal/search",
	),
	Run: run,
}

// maxConstTrip is the largest constant loop bound considered trivially
// bounded. Matches the smallest polling stride used in the tree (64), a
// few times over: anything at or under this finishes long before a
// polling interval would have elapsed.
const maxConstTrip = 1024

// pollName reports whether a callee name counts as a cancellation poll
// helper: the tree's idioms are poll/checkPoll/pollCtx (xmlparse, the
// fmindex merge), tick (the sais poller) and ctxErr/checkCtx wrappers.
func pollName(name string) bool {
	lower := strings.ToLower(name)
	return strings.Contains(lower, "poll") || lower == "tick" || lower == "ctxerr" || lower == "checkctx"
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	var ctxParams []*types.Var
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			obj, ok := info.Defs[name].(*types.Var)
			if ok && name.Name != "_" && isContext(obj.Type()) {
				ctxParams = append(ctxParams, obj)
			}
		}
	}
	if len(ctxParams) == 0 {
		return
	}
	used := map[*types.Var]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok {
				for _, p := range ctxParams {
					if v == p {
						used[p] = true
					}
				}
			}
		}
		return true
	})
	for _, p := range ctxParams {
		if !used[p] {
			pass.Reportf(fn.Name.Pos(), "context parameter %s is dropped: cancellation does not propagate through %s", p.Name(), fn.Name.Name)
		}
	}
	checkLoops(pass, fn.Body, ctxDerived(info, fn.Body))
}

// ctxDerived collects the local variables assigned from calls that took
// a context argument: iterators, pollers and evaluators constructed from
// ctx poll internally, so method calls on them delegate cancellation
// even when their static type (often an interface) hides the field.
func ctxDerived(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	derived := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		hasCtx := false
		for _, a := range call.Args {
			if tv, ok := info.Types[a]; ok && isContext(tv.Type) {
				hasCtx = true
			}
		}
		if !hasCtx {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				if obj := info.Defs[id]; obj != nil {
					derived[obj] = true
				} else if obj := info.Uses[id]; obj != nil {
					derived[obj] = true
				}
			}
		}
		return true
	})
	return derived
}

// checkLoops reports top-level loops (not nested in another loop of the
// same function) whose bodies neither touch a context nor call a poll
// helper nor delegate to a context-carrying value.
func checkLoops(pass *analysis.Pass, body *ast.BlockStmt, derived map[types.Object]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		// scope collects the loop parts that re-execute every iteration:
		// condition and post clause poll just as well as the body does
		// (`for it.next() { ... }` with a ctx-carrying iterator).
		var scope []ast.Node
		var pos token.Pos
		switch l := n.(type) {
		case *ast.ForStmt:
			if constTrip(pass.TypesInfo, l) {
				return false // bounded by construction; skip inner loops too
			}
			scope, pos = []ast.Node{l.Body}, l.Pos()
			if l.Cond != nil {
				scope = append(scope, l.Cond)
			}
			if l.Post != nil {
				scope = append(scope, l.Post)
			}
		case *ast.RangeStmt:
			if rangeBounded(pass.TypesInfo, l) {
				return false
			}
			// The range expression evaluates once, so only the body counts.
			scope, pos = []ast.Node{l.Body}, l.Pos()
		default:
			return true
		}
		polled := false
		for _, s := range scope {
			if polls(pass.TypesInfo, s, derived) {
				polled = true
				break
			}
		}
		if !polled {
			pass.Reportf(pos, "loop does not poll its context: document-scale loops must check cancellation at a bounded interval (ctx.Err, a poll helper, or a ctx-carrying callee)")
		}
		return false // nested loops are the outer loop's responsibility
	})
}

// polls reports whether the statement tree references a context value,
// calls a poll-named helper, or calls into a context-carrying (or
// ctx-derived) value.
func polls(info *types.Info, body ast.Node, derived map[types.Object]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if v, ok := info.Uses[n].(*types.Var); ok && isContext(v.Type()) {
				found = true
			}
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.SelectorExpr:
				if pollName(fun.Sel.Name) {
					found = true
				}
				if tv, ok := info.Types[fun.X]; ok && carriesContext(tv.Type) {
					found = true
				}
				if id, ok := fun.X.(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil && derived[obj] {
						found = true
					}
				}
			case *ast.Ident:
				if pollName(fun.Name) {
					found = true
				}
				if obj := info.Uses[fun]; obj != nil && derived[obj] {
					found = true // calling a closure built from ctx
				}
			}
			for _, a := range n.Args {
				if tv, ok := info.Types[a]; ok && carriesContext(tv.Type) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// carriesContext reports whether t is (a pointer to) a context, or a
// struct with a context.Context field: calling into such a value
// delegates cancellation (poller, parser, evaluator objects).
func carriesContext(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if isContext(t) {
		return true
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isContext(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

// constTrip reports whether the for loop has a constant trip count of at
// most maxConstTrip: `for i := lit; i < N; i++` with N constant.
func constTrip(info *types.Info, l *ast.ForStmt) bool {
	if l.Cond == nil {
		return false
	}
	cmp, ok := l.Cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	for _, side := range []ast.Expr{cmp.X, cmp.Y} {
		if tv, ok := info.Types[side]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
			if v, exact := constant.Int64Val(tv.Value); exact && v >= -maxConstTrip && v <= maxConstTrip {
				return true
			}
		}
	}
	return false
}

// rangeBounded reports whether the range statement iterates a fixed-size
// array (or pointer to one) of at most maxConstTrip elements, or a small
// constant integer.
func rangeBounded(info *types.Info, l *ast.RangeStmt) bool {
	tv, ok := info.Types[l.X]
	if !ok {
		return false
	}
	if tv.Value != nil && tv.Value.Kind() == constant.Int {
		if v, exact := constant.Int64Val(tv.Value); exact && v <= maxConstTrip {
			return true
		}
	}
	t := tv.Type.Underlying()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem().Underlying()
	}
	arr, ok := t.(*types.Array)
	return ok && arr.Len() <= maxConstTrip
}
