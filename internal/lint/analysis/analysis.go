// Package analysis is a minimal, dependency-free skeleton of the
// golang.org/x/tools/go/analysis model: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics. The repo
// carries no module dependencies by policy, so the vendored-x/tools route
// is out; this package keeps just the parts the sxsivet analyzers need —
// a named analyzer with a Run function, a per-package Pass bundling the
// syntax trees and type information, and positioned diagnostics — while
// the drivers (go vet -vettool protocol and the standalone go-list mode)
// live in internal/lint/checker.
//
// Analyzers here are purely intraprocedural and fact-free: each Run sees
// one package at a time. That is enough for the engine's contracts, which
// are all expressible as "inside this function / this package, this shape
// of code must (not) appear".
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //sxsivet:ignore comments. Lower-case, no spaces.
	Name string

	// Doc is a one-paragraph description of the contract enforced.
	Doc string

	// Match restricts the analyzer to packages for which it returns
	// true (by import path). A nil Match runs everywhere. Drivers apply
	// Match; tests may call Run directly to analyze fixture packages
	// regardless of their path.
	Match func(pkgPath string) bool

	// Run performs the analysis on one package.
	Run func(*Pass) error
}

// Pass bundles everything an analyzer may inspect about one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. Drivers install it.
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, positioned in the package's FileSet.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// PathIn returns a Match function accepting exactly the given import
// paths. Vet configs for test variants decorate the path with a
// bracketed suffix ("p [p.test]"); the decoration is stripped before
// matching so the internal-test view of a package keeps its scope.
func PathIn(paths ...string) func(string) bool {
	set := make(map[string]bool, len(paths))
	for _, p := range paths {
		set[p] = true
	}
	return func(pkgPath string) bool {
		for i := 0; i < len(pkgPath); i++ {
			if pkgPath[i] == ' ' {
				pkgPath = pkgPath[:i]
				break
			}
		}
		return set[pkgPath]
	}
}
