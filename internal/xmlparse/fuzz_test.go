package xmlparse_test

import (
	"testing"

	"repro/internal/xmlparse"
)

// fuzzHandler checks the SAX stream discipline: starts and ends nest
// properly and text only arrives inside the root element.
type fuzzHandler struct {
	depth  int
	events int
	bad    string
}

func (h *fuzzHandler) StartElement(name string, attrs []xmlparse.Attr) error {
	h.events++
	if name == "" {
		h.bad = "empty element name"
	}
	for _, a := range attrs {
		if a.Name == "" {
			h.bad = "empty attribute name"
		}
	}
	h.depth++
	return nil
}

func (h *fuzzHandler) EndElement(name string) error {
	h.events++
	h.depth--
	if h.depth < 0 {
		h.bad = "end before start"
	}
	return nil
}

func (h *fuzzHandler) Text(data []byte) error {
	h.events++
	if h.depth == 0 {
		h.bad = "text outside the root element"
	}
	if len(data) == 0 {
		h.bad = "empty text event"
	}
	return nil
}

// FuzzParse pins the parser contract on arbitrary bytes: Parse either
// returns a *SyntaxError or delivers a well-nested event stream — it must
// never panic. Run with `go test -fuzz FuzzParse ./internal/xmlparse`; a
// plain `go test` run executes the seed corpus as regression cases.
func FuzzParse(f *testing.F) {
	for _, s := range []string{
		`<a/>`,
		`<a x="1" y='2'><b>text</b><c/></a>`,
		`<?xml version="1.0"?><!DOCTYPE a [<!ELEMENT a ANY>]><a><!-- c --><![CDATA[<raw>]]></a>`,
		`<a>&amp;&lt;&gt;&quot;&apos;&#65;&#x41;</a>`,
		`<a>`,
		`</a>`,
		`<a></b>`,
		`<a b=c/>`,
		`<a b="1/>`,
		`text outside`,
		`<a><![CDATA[unterminated`,
		`<a>&unknown;</a>`,
		`<a>&#xFFFFFFFF;</a>`,
		`<a><b></b></a><c/>`,
		"<\x00a/>",
		`<a ` + "\xff" + `="1"/>`,
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		h := &fuzzHandler{}
		err := xmlparse.Parse(data, h)
		if err != nil {
			return
		}
		if h.bad != "" {
			t.Fatalf("accepted %q but event stream is malformed: %s", data, h.bad)
		}
		if h.depth != 0 {
			t.Fatalf("accepted %q with unbalanced elements (depth %d)", data, h.depth)
		}
		if h.events == 0 {
			t.Fatalf("accepted %q with no events (no root element?)", data)
		}
	})
}
