// Package xmlparse is a small, dependency-free SAX-style XML parser. It
// produces the event stream (start element, end element, character data)
// from which the succinct document model of Section 2 is built; the
// streaming baseline evaluator consumes the same events. It supports
// attributes, comments, CDATA sections, processing instructions, DOCTYPE
// declarations (skipped), and the predefined plus numeric character
// entities. It is deliberately not a full validating parser.
package xmlparse

import (
	"context"
	"fmt"
	"strconv"
	"strings"
)

// Attr is a parsed attribute.
type Attr struct {
	Name  string
	Value string
}

// Handler receives parse events.
type Handler interface {
	StartElement(name string, attrs []Attr) error
	EndElement(name string) error
	// Text receives character data; the slice is only valid during the call.
	Text(data []byte) error
}

// SyntaxError reports a malformed document.
type SyntaxError struct {
	Offset int
	Msg    string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("xml syntax error at byte %d: %s", e.Offset, e.Msg)
}

type parser struct {
	data []byte
	pos  int
	h    Handler
	// cancellation: ctx is polled every pollStride loop iterations of run
	// (nil = never). Each iteration consumes at least one byte, so the poll
	// interval is bounded by pollStride bytes of input.
	ctx      context.Context
	pollLeft int
	// reusable buffers
	textBuf []byte
	stack   []string
}

// pollStride is the number of markup/text items parsed between context
// polls: cheap enough to be invisible, frequent enough that cancelling a
// multi-gigabyte parse takes effect within a few thousand events.
const pollStride = 2048

// Parse parses the document and streams events to h.
func Parse(data []byte, h Handler) error {
	return ParseCtx(context.Background(), data, h)
}

// ParseCtx is Parse with cancellation: the event loop polls ctx at bounded
// intervals and returns its error once it is done, mirroring the query-side
// polling contract (a build driving a cancelled context stops within one
// polling interval, not at end of input).
func ParseCtx(ctx context.Context, data []byte, h Handler) error {
	if ctx != nil && ctx.Done() == nil {
		ctx = nil // uncancellable: skip the Err calls entirely
	}
	p := &parser{data: data, h: h, ctx: ctx, pollLeft: pollStride}
	return p.run()
}

// poll checks the context once per pollStride calls.
func (p *parser) poll() error {
	p.pollLeft--
	if p.pollLeft > 0 {
		return nil
	}
	p.pollLeft = pollStride
	if p.ctx == nil {
		return nil
	}
	return p.ctx.Err()
}

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Offset: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) run() error {
	sawRoot := false
	for p.pos < len(p.data) {
		if err := p.poll(); err != nil {
			return err
		}
		if p.data[p.pos] == '<' {
			if err := p.markup(&sawRoot); err != nil {
				return err
			}
		} else {
			if err := p.text(); err != nil {
				return err
			}
		}
	}
	if len(p.stack) != 0 {
		return p.errf("unclosed element <%s>", p.stack[len(p.stack)-1])
	}
	if !sawRoot {
		return p.errf("no root element")
	}
	return nil
}

func (p *parser) markup(sawRoot *bool) error {
	start := p.pos
	if p.pos+1 >= len(p.data) {
		return p.errf("truncated markup")
	}
	switch p.data[p.pos+1] {
	case '?':
		return p.skipPI()
	case '!':
		return p.skipDecl()
	case '/':
		return p.endTag()
	default:
		if len(p.stack) == 0 && *sawRoot {
			p.pos = start
			return p.errf("content after root element")
		}
		*sawRoot = true
		return p.startTag()
	}
}

func (p *parser) skipPI() error {
	end := indexFrom(p.data, p.pos+2, "?>")
	if end < 0 {
		return p.errf("unterminated processing instruction")
	}
	p.pos = end + 2
	return nil
}

func (p *parser) skipDecl() error {
	// <!-- comment -->, <![CDATA[ ... ]]> (handled in text), <!DOCTYPE ...>
	if strings.HasPrefix(string(p.data[p.pos:min(p.pos+4, len(p.data))]), "<!--") {
		end := indexFrom(p.data, p.pos+4, "-->")
		if end < 0 {
			return p.errf("unterminated comment")
		}
		p.pos = end + 3
		return nil
	}
	if strings.HasPrefix(string(p.data[p.pos:min(p.pos+9, len(p.data))]), "<![CDATA[") {
		end := indexFrom(p.data, p.pos+9, "]]>")
		if end < 0 {
			return p.errf("unterminated CDATA section")
		}
		if len(p.stack) == 0 {
			return p.errf("CDATA outside root element")
		}
		if end > p.pos+9 {
			if err := p.h.Text(p.data[p.pos+9 : end]); err != nil {
				return err
			}
		}
		p.pos = end + 3
		return nil
	}
	// DOCTYPE or other declaration: skip to matching '>' (allow one nesting
	// level of [...] for internal subsets).
	depth := 0
	for i := p.pos + 2; i < len(p.data); i++ {
		switch p.data[i] {
		case '[':
			depth++
		case ']':
			depth--
		case '>':
			if depth <= 0 {
				p.pos = i + 1
				return nil
			}
		}
	}
	return p.errf("unterminated declaration")
}

func (p *parser) startTag() error {
	p.pos++ // consume '<'
	name, err := p.name()
	if err != nil {
		return err
	}
	var attrs []Attr
	for {
		p.skipSpace()
		if p.pos >= len(p.data) {
			return p.errf("unterminated start tag <%s", name)
		}
		c := p.data[p.pos]
		if c == '>' {
			p.pos++
			if err := p.h.StartElement(name, attrs); err != nil {
				return err
			}
			p.stack = append(p.stack, name)
			return nil
		}
		if c == '/' {
			if p.pos+1 >= len(p.data) || p.data[p.pos+1] != '>' {
				return p.errf("malformed empty-element tag")
			}
			p.pos += 2
			if err := p.h.StartElement(name, attrs); err != nil {
				return err
			}
			return p.h.EndElement(name)
		}
		aname, err := p.name()
		if err != nil {
			return err
		}
		p.skipSpace()
		if p.pos >= len(p.data) || p.data[p.pos] != '=' {
			return p.errf("expected '=' after attribute %q", aname)
		}
		p.pos++
		p.skipSpace()
		if p.pos >= len(p.data) || (p.data[p.pos] != '"' && p.data[p.pos] != '\'') {
			return p.errf("expected quoted attribute value for %q", aname)
		}
		quote := p.data[p.pos]
		p.pos++
		vstart := p.pos
		for p.pos < len(p.data) && p.data[p.pos] != quote {
			p.pos++
		}
		if p.pos >= len(p.data) {
			return p.errf("unterminated attribute value for %q", aname)
		}
		val, err := p.unescape(p.data[vstart:p.pos])
		if err != nil {
			return err
		}
		p.pos++
		attrs = append(attrs, Attr{Name: aname, Value: string(val)})
	}
}

func (p *parser) endTag() error {
	p.pos += 2 // consume '</'
	name, err := p.name()
	if err != nil {
		return err
	}
	p.skipSpace()
	if p.pos >= len(p.data) || p.data[p.pos] != '>' {
		return p.errf("malformed end tag </%s", name)
	}
	p.pos++
	if len(p.stack) == 0 {
		return p.errf("unexpected </%s>", name)
	}
	top := p.stack[len(p.stack)-1]
	if top != name {
		return p.errf("mismatched end tag </%s>, open element is <%s>", name, top)
	}
	p.stack = p.stack[:len(p.stack)-1]
	return p.h.EndElement(name)
}

func (p *parser) text() error {
	start := p.pos
	for p.pos < len(p.data) && p.data[p.pos] != '<' {
		p.pos++
	}
	raw := p.data[start:p.pos]
	if len(p.stack) == 0 {
		// Whitespace between the prolog and the root is ignored.
		if len(strings.TrimSpace(string(raw))) != 0 {
			p.pos = start
			return p.errf("character data outside root element")
		}
		return nil
	}
	data, err := p.unescape(raw)
	if err != nil {
		return err
	}
	if len(data) > 0 {
		return p.h.Text(data)
	}
	return nil
}

func (p *parser) name() (string, error) {
	start := p.pos
	for p.pos < len(p.data) && isNameByte(p.data[p.pos], p.pos == start) {
		p.pos++
	}
	if p.pos == start {
		return "", p.errf("expected name")
	}
	return string(p.data[start:p.pos]), nil
}

func (p *parser) skipSpace() {
	for p.pos < len(p.data) && isSpace(p.data[p.pos]) {
		p.pos++
	}
}

// unescape resolves entity references in raw.
func (p *parser) unescape(raw []byte) ([]byte, error) {
	amp := -1
	for i, c := range raw {
		if c == '&' {
			amp = i
			break
		}
	}
	if amp < 0 {
		return raw, nil
	}
	out := p.textBuf[:0]
	out = append(out, raw[:amp]...)
	i := amp
	for i < len(raw) {
		c := raw[i]
		if c != '&' {
			out = append(out, c)
			i++
			continue
		}
		semi := -1
		for j := i + 1; j < len(raw) && j < i+12; j++ {
			if raw[j] == ';' {
				semi = j
				break
			}
		}
		if semi < 0 {
			return nil, p.errf("unterminated entity reference")
		}
		ent := string(raw[i+1 : semi])
		switch ent {
		case "amp":
			out = append(out, '&')
		case "lt":
			out = append(out, '<')
		case "gt":
			out = append(out, '>')
		case "quot":
			out = append(out, '"')
		case "apos":
			out = append(out, '\'')
		default:
			if strings.HasPrefix(ent, "#") {
				var code int64
				var err error
				if strings.HasPrefix(ent, "#x") || strings.HasPrefix(ent, "#X") {
					code, err = strconv.ParseInt(ent[2:], 16, 32)
				} else {
					code, err = strconv.ParseInt(ent[1:], 10, 32)
				}
				if err != nil || code < 0 || code > 0x10FFFF {
					return nil, p.errf("bad character reference &%s;", ent)
				}
				out = appendRune(out, rune(code))
			} else {
				return nil, p.errf("unknown entity &%s;", ent)
			}
		}
		i = semi + 1
	}
	p.textBuf = out
	return out, nil
}

func appendRune(b []byte, r rune) []byte {
	return append(b, string(r)...)
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func isNameByte(c byte, first bool) bool {
	if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' || c >= 0x80 {
		return true
	}
	if !first && (c >= '0' && c <= '9' || c == '-' || c == '.') {
		return true
	}
	return false
}

func indexFrom(data []byte, from int, sub string) int {
	if from >= len(data) {
		return -1
	}
	idx := strings.Index(string(data[from:]), sub)
	if idx < 0 {
		return -1
	}
	return from + idx
}

// Escape writes s with the five predefined entities escaped, for
// serialization (Section 4.3 / experimental protocol in Section 6.1).
func Escape(s []byte, attr bool) []byte {
	needs := false
	for _, c := range s {
		if c == '&' || c == '<' || c == '>' || (attr && (c == '"' || c == '\'')) {
			needs = true
			break
		}
	}
	if !needs {
		return s
	}
	out := make([]byte, 0, len(s)+8)
	for _, c := range s {
		switch {
		case c == '&':
			out = append(out, "&amp;"...)
		case c == '<':
			out = append(out, "&lt;"...)
		case c == '>':
			out = append(out, "&gt;"...)
		case attr && c == '"':
			out = append(out, "&quot;"...)
		case attr && c == '\'':
			out = append(out, "&apos;"...)
		default:
			out = append(out, c)
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
