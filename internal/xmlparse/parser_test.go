package xmlparse

import (
	"fmt"
	"strings"
	"testing"
)

// recorder collects events as strings for easy comparison.
type recorder struct {
	events []string
}

func (r *recorder) StartElement(name string, attrs []Attr) error {
	s := "<" + name
	for _, a := range attrs {
		s += fmt.Sprintf(" %s=%q", a.Name, a.Value)
	}
	r.events = append(r.events, s+">")
	return nil
}
func (r *recorder) EndElement(name string) error {
	r.events = append(r.events, "</"+name+">")
	return nil
}
func (r *recorder) Text(data []byte) error {
	r.events = append(r.events, "T:"+string(data))
	return nil
}

func parseOK(t *testing.T, doc string) []string {
	t.Helper()
	rec := &recorder{}
	if err := Parse([]byte(doc), rec); err != nil {
		t.Fatalf("parse %q: %v", doc, err)
	}
	return rec.events
}

func expectEvents(t *testing.T, doc string, want ...string) {
	t.Helper()
	got := parseOK(t, doc)
	if len(got) != len(want) {
		t.Fatalf("doc %q events:\n got %v\nwant %v", doc, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("doc %q event %d: got %q want %q", doc, i, got[i], want[i])
		}
	}
}

func TestSimple(t *testing.T) {
	expectEvents(t, "<a><b>hi</b></a>",
		"<a>", "<b>", "T:hi", "</b>", "</a>")
}

func TestAttributes(t *testing.T) {
	expectEvents(t, `<part name="pen" id='7'/>`,
		`<part name="pen" id="7">`, "</part>")
}

func TestPaperExampleDocument(t *testing.T) {
	doc := `<parts>
<part name="pen">
   <color>blue</color>
   <stock>40</stock>
   Soon discontinued.
</part>
<part name="rubber">
   <stock>30</stock>
</part>
</parts>`
	events := parseOK(t, doc)
	// 7 whitespace texts + the real ones, per the paper's Section 2 remark.
	var texts int
	for _, e := range events {
		if strings.HasPrefix(e, "T:") {
			texts++
		}
	}
	if texts != 11 { // blue, 40, "Soon discontinued." (merged w/ ws), 30 + whitespace runs
		// The exact count depends on text-run merging; just require >= 8.
		if texts < 8 {
			t.Fatalf("expected many text events, got %d: %v", texts, events)
		}
	}
}

func TestEntities(t *testing.T) {
	expectEvents(t, "<a>x &amp; y &lt;z&gt; &#65;&#x42;</a>",
		"<a>", "T:x & y <z> AB", "</a>")
}

func TestEntityInAttribute(t *testing.T) {
	expectEvents(t, `<a t="a&amp;b"/>`, `<a t="a&b">`, "</a>")
}

func TestCDATA(t *testing.T) {
	expectEvents(t, "<a><![CDATA[<not> &parsed;]]></a>",
		"<a>", "T:<not> &parsed;", "</a>")
}

func TestCommentsAndPI(t *testing.T) {
	expectEvents(t, `<?xml version="1.0"?><!-- c --><a><!-- inner --><b/></a>`,
		"<a>", "<b>", "</b>", "</a>")
}

func TestDoctype(t *testing.T) {
	expectEvents(t, `<!DOCTYPE parts [<!ELEMENT parts (part*)>]><parts/>`,
		"<parts>", "</parts>")
}

func TestWhitespacePreserved(t *testing.T) {
	expectEvents(t, "<a>\n  <b/>\n</a>",
		"<a>", "T:\n  ", "<b>", "</b>", "T:\n", "</a>")
}

func TestErrors(t *testing.T) {
	bad := []string{
		"",                     // no root
		"<a>",                  // unclosed
		"<a></b>",              // mismatch
		"<a></a><b></b>",       // two roots
		"text only",            // no markup
		"<a attr></a>",         // attribute without value
		"<a attr=x></a>",       // unquoted value
		`<a t="v></a>`,         // unterminated value
		"<a>&unknown;</a>",     // unknown entity
		"<a><![CDATA[x</a>",    // unterminated CDATA
		"<!-- only a comment>", // unterminated comment, no root
		"<a>x</a>trailing",     // content after root
		"<a></a><b/>",          // second root
	}
	for _, doc := range bad {
		rec := &recorder{}
		if err := Parse([]byte(doc), rec); err == nil {
			t.Errorf("expected error for %q", doc)
		}
	}
}

func TestErrorOffsetReported(t *testing.T) {
	err := Parse([]byte("<a>&nope;</a>"), &recorder{})
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("want SyntaxError, got %v", err)
	}
	if se.Offset <= 0 {
		t.Fatalf("offset %d", se.Offset)
	}
}

func TestEscapeRoundTrip(t *testing.T) {
	orig := `a<b&c>"d'e`
	esc := string(Escape([]byte(orig), true))
	doc := `<x t="` + esc + `">` + string(Escape([]byte(orig), false)) + `</x>`
	rec := &recorder{}
	if err := Parse([]byte(doc), rec); err != nil {
		t.Fatalf("%v (doc=%q)", err, doc)
	}
	if rec.events[0] != fmt.Sprintf("<x t=%q>", orig) {
		t.Fatalf("attr roundtrip: %q", rec.events[0])
	}
	if rec.events[1] != "T:"+orig {
		t.Fatalf("text roundtrip: %q", rec.events[1])
	}
}

func TestDeepNesting(t *testing.T) {
	depth := 5000
	doc := strings.Repeat("<d>", depth) + "x" + strings.Repeat("</d>", depth)
	rec := &recorder{}
	if err := Parse([]byte(doc), rec); err != nil {
		t.Fatal(err)
	}
	if len(rec.events) != 2*depth+1 {
		t.Fatalf("events=%d", len(rec.events))
	}
}

func TestUTF8Names(t *testing.T) {
	expectEvents(t, "<日本語>x</日本語>", "<日本語>", "T:x", "</日本語>")
}
