// Package stream is a one-pass streaming XPath evaluator, the stand-in for
// the streaming engines the paper compares against in the introduction (GCX,
// SPEX). It reads the raw XML exactly once through the SAX parser, keeping
// only a stack of active NFA state sets, and supports linear Core+ paths
// (child/descendant/attribute steps, no predicates). Its purpose is the
// indexed-vs-streaming comparison: it touches every byte of the document on
// every query, while SXSI jumps.
package stream

import (
	"fmt"

	"repro/internal/xmlparse"
	"repro/internal/xpath"
)

// Query is a compiled streaming query.
type Query struct {
	steps []*xpath.Step
}

// Compile prepares a linear path query for streaming evaluation.
func Compile(src string) (*Query, error) {
	ast, err := xpath.ParseQuery(src)
	if err != nil {
		return nil, err
	}
	norm, err := xpath.Normalize(ast)
	if err != nil {
		return nil, err
	}
	for _, st := range norm.Steps {
		if len(st.Filters) > 0 {
			return nil, fmt.Errorf("stream: predicates are not supported by the streaming baseline")
		}
		if st.Axis != xpath.AxisChild && st.Axis != xpath.AxisDescendant {
			return nil, fmt.Errorf("stream: axis %v is not supported by the streaming baseline", st.Axis)
		}
	}
	return &Query{steps: norm.Steps}, nil
}

// counter runs the NFA over SAX events.
type counter struct {
	q     *Query
	stack []uint64 // active state sets per open element; bit i = "expect step i next"
	count int64
}

func (c *counter) matches(i int, name string) bool {
	st := c.q.steps[i]
	switch st.Test.Kind {
	case xpath.TestName:
		return st.Test.Name == name
	case xpath.TestStar:
		return name != "#" && name != "@" && name != "%" && name != "&"
	case xpath.TestText:
		return name == "#"
	case xpath.TestNode:
		return name != "@" && name != "%" && name != "&"
	}
	return false
}

// enter computes the state set for a child with the given name, given the
// parent's active set, and counts final-step matches.
func (c *counter) enter(name string) {
	parent := c.stack[len(c.stack)-1]
	var next uint64
	k := len(c.q.steps)
	for i := 0; i < k; i++ {
		if parent>>uint(i)&1 == 0 {
			continue
		}
		st := c.q.steps[i]
		if st.Axis == xpath.AxisDescendant {
			next |= 1 << uint(i) // descendant expectations persist downward
		}
		if c.matches(i, name) {
			if i == k-1 {
				c.count++
			} else {
				next |= 1 << uint(i+1)
			}
		}
	}
	c.stack = append(c.stack, next)
}

func (c *counter) StartElement(name string, attrs []xmlparse.Attr) error {
	c.enter(name)
	if len(attrs) > 0 {
		c.enter("@")
		for _, a := range attrs {
			c.enter(a.Name)
			c.enter("%")
			c.stack = c.stack[:len(c.stack)-1]
			c.stack = c.stack[:len(c.stack)-1]
		}
		c.stack = c.stack[:len(c.stack)-1]
	}
	return nil
}

func (c *counter) EndElement(string) error {
	c.stack = c.stack[:len(c.stack)-1]
	return nil
}

func (c *counter) Text([]byte) error {
	c.enter("#")
	c.stack = c.stack[:len(c.stack)-1]
	return nil
}

// Count streams the document once and returns the number of matches of the
// final step.
func (q *Query) Count(doc []byte) (int64, error) {
	c := &counter{q: q}
	// The virtual & root: step 0 expectations start below it.
	c.stack = append(c.stack, 1)
	if err := xmlparse.Parse(doc, c); err != nil {
		return 0, err
	}
	return c.count, nil
}
