package stream

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dom"
)

func checkCount(t *testing.T, doc, query string) {
	t.Helper()
	q, err := Compile(query)
	if err != nil {
		t.Fatalf("compile %q: %v", query, err)
	}
	got, err := q.Count([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	tree, err := dom.Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	want, err := tree.Count(query)
	if err != nil {
		t.Fatal(err)
	}
	if got != int64(want) {
		t.Fatalf("stream count(%q)=%d want %d (doc=%q)", query, got, want, doc)
	}
}

func TestLinearPaths(t *testing.T) {
	doc := `<parts><part name="pen"><color>blue</color><stock>40</stock></part><part><stock>30</stock></part></parts>`
	for _, q := range []string{
		"/parts", "/parts/part", "//part", "//stock", "/parts/part/stock",
		"//part/color", "//*", "//text()", "//part/@name", "//@name",
		"/parts//stock", "//nosuch",
	} {
		checkCount(t, doc, q)
	}
}

func TestNested(t *testing.T) {
	doc := "<r><a><a><b/></a><b/></a></r>"
	for _, q := range []string{"//a", "//a/b", "//a//b", "/r/a", "/r/a/b", "//a/a"} {
		checkCount(t, doc, q)
	}
}

func TestUnsupported(t *testing.T) {
	for _, q := range []string{"//a[b]", "//a/following-sibling::b"} {
		if _, err := Compile(q); err == nil {
			t.Errorf("expected error for %q", q)
		}
	}
}

func TestRandomDocs(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	tags := []string{"a", "b", "c"}
	for trial := 0; trial < 20; trial++ {
		var sb strings.Builder
		var build func(depth, n int) int
		build = func(depth, n int) int {
			for n > 0 && r.Intn(3) > 0 {
				tag := tags[r.Intn(len(tags))]
				sb.WriteString("<" + tag + ">")
				n--
				if depth < 5 {
					n = build(depth+1, n)
				}
				sb.WriteString("</" + tag + ">")
			}
			return n
		}
		sb.WriteString("<root>")
		build(0, 50)
		sb.WriteString("</root>")
		for _, q := range []string{"//a", "//a/b", "//a//b", "//a//b//c", "/root/a/b", "//*"} {
			checkCount(t, sb.String(), q)
		}
	}
}
