package build

import (
	"bytes"
	"context"
	"errors"
	"os"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/fmindex"
	"repro/internal/gen"
	"repro/internal/xmltree"
)

var corpora = []struct {
	name string
	data func(seed uint64) []byte
}{
	{"xmark", func(s uint64) []byte { return gen.XMark(s, 256<<10) }},
	{"medline", func(s uint64) []byte { return gen.Medline(s, 256<<10) }},
	{"treebank", func(s uint64) []byte { return gen.Treebank(s, 128<<10) }},
	{"wiki", func(s uint64) []byte { return gen.Wiki(s, 256<<10) }},
	{"bioxml", func(s uint64) []byte { return gen.BioXML(s, 256<<10) }},
}

func docBytes(t *testing.T, d *xmltree.Doc) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestByteIdenticalAcrossCorpora is the pipeline equivalence suite: for
// every oracle corpus, worker count in {1, 2, 8} and memory budget in
// {unbounded, tight}, the staged parallel build serializes to exactly the
// bytes of the serial xmltree.Parse reference. The tight budget (1 MiB
// against ~256 KiB documents) forces multi-chunk sorting with spilled
// suffix arrays, so the chunk/merge/spill machinery is in the loop.
func TestByteIdenticalAcrossCorpora(t *testing.T) {
	opts := xmltree.Options{SampleRate: 8}
	for _, c := range corpora {
		data := c.data(1)
		serial, err := xmltree.Parse(data, opts)
		if err != nil {
			t.Fatalf("%s: serial parse: %v", c.name, err)
		}
		want := docBytes(t, serial)
		for _, procs := range []int{1, 2, 8} {
			for _, budget := range []int64{0, 1 << 20} {
				var st fmindex.BuildStats
				doc, err := Document(context.Background(), data, Options{
					Tree: opts, Procs: procs, MemoryBudget: budget,
					TempDir: t.TempDir(), FMStats: &st,
				})
				if err != nil {
					t.Fatalf("%s p=%d mem=%d: %v", c.name, procs, budget, err)
				}
				if !bytes.Equal(want, docBytes(t, doc)) {
					t.Fatalf("%s p=%d mem=%d: serialized index differs from serial build",
						c.name, procs, budget)
				}
				if budget > 0 && c.name == "xmark" && !st.Spilled {
					t.Fatalf("xmark tight budget: expected spilled suffix arrays, stats %+v", st)
				}
			}
		}
	}
}

// The bounded xmark build must split the text collection into several
// chunks — otherwise the equivalence suite above would never exercise the
// multi-chunk merge on realistic input.
func TestTightBudgetChunks(t *testing.T) {
	data := gen.XMark(2, 512<<10)
	var st fmindex.BuildStats
	_, err := Document(context.Background(), data, Options{
		Tree: xmltree.Options{SampleRate: 8}, Procs: 4, MemoryBudget: 1 << 20,
		TempDir: t.TempDir(), FMStats: &st,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Chunks < 2 {
		t.Fatalf("expected a multi-chunk plan, got %+v", st)
	}
}

// pollCtx reports itself done starting from the nth Err call, without any
// timer: it cancels deterministically at a context poll site. The counter
// is atomic because concurrent sort workers poll the same context.
type pollCtx struct {
	context.Context
	calls atomic.Int64
	after int64
}

func (p *pollCtx) Err() error {
	if p.calls.Add(1) >= p.after {
		return context.Canceled
	}
	return nil
}

func (p *pollCtx) Done() <-chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}

func TestBuildCancellation(t *testing.T) {
	data := gen.XMark(3, 256<<10)

	t.Run("already cancelled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := Document(ctx, data, Options{}); !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	})

	// Cancel at poll sites spread across the whole build — the parse loop,
	// the sort, the merge, the assembly checks. First count how many polls
	// a full build performs, then cancel at points across that range. Every
	// build must fail with the context error and leave the spill directory
	// clean.
	t.Run("mid flight", func(t *testing.T) {
		probe := &pollCtx{Context: context.Background(), after: 1 << 60}
		if _, err := Document(probe, data, Options{
			Procs: 2, MemoryBudget: 1 << 20, TempDir: t.TempDir(),
		}); err != nil {
			t.Fatal(err)
		}
		total := probe.calls.Load()
		if total < 4 {
			t.Fatalf("only %d poll sites hit — cancellation coverage too sparse", total)
		}
		for _, after := range []int64{1, 2, total / 3, 2 * total / 3, total} {
			if after < 1 {
				after = 1
			}
			dir := t.TempDir()
			ctx := &pollCtx{Context: context.Background(), after: after}
			_, err := Document(ctx, data, Options{
				Procs: 2, MemoryBudget: 1 << 20, TempDir: dir,
			})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("after=%d/%d: want context.Canceled, got %v", after, total, err)
			}
			ents, derr := os.ReadDir(dir)
			if derr != nil {
				t.Fatal(derr)
			}
			if len(ents) != 0 {
				t.Fatalf("after=%d: spill files left behind: %v", after, ents)
			}
		}
	})
}

// A failed build must leave no reachable partial state: repeated failing
// builds of a ~1 MiB document may not grow the live heap. The failure is
// injected through an attribute value carrying an encoded NUL byte — the
// parser passes it through (only PCDATA text is NUL-sanitized), so the
// pipeline fails deep inside the FM stage, after the parse product and the
// structural side already exist.
func TestFailedBuildLeaksNothing(t *testing.T) {
	var doc bytes.Buffer
	doc.WriteString(`<root bad="x&#0;y">`)
	filler := gen.XMark(4, 1<<20)
	// Embed the filler inside our root by stripping nothing: just append
	// it as a sibling subtree via a wrapper element.
	doc.WriteString("<w>")
	doc.Write(filler)
	doc.WriteString("</w></root>")
	data := doc.Bytes()

	if _, err := Document(context.Background(), data, Options{}); !errors.Is(err, fmindex.ErrNulByte) {
		t.Fatalf("want ErrNulByte, got %v", err)
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < 5; i++ {
		if _, err := Document(context.Background(), data, Options{}); err == nil {
			t.Fatal("build unexpectedly succeeded")
		}
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	// Five leaked builds of a 1 MiB document would retain tens of MiB
	// (parse arrays, structure, partial FM state). Allow 4 MiB of noise.
	if growth := int64(after.HeapAlloc) - int64(before.HeapAlloc); growth > 4<<20 {
		t.Fatalf("heap grew by %d bytes across failed builds", growth)
	}
}
