// Package build is the staged construction pipeline for the SXSI index:
//
//	parse (xmltree.ParseRaw)
//	  ├── structure assembly (BP, tag sequence, leaf bitmap, planner tables)
//	  └── text self-index (fmindex.NewParallel: chunked SA-IS + merge)
//	attach (Doc.SetFM)
//
// Stage 1 flattens the document into plain arrays; the two sides of stage 2
// depend only on that product, so with an unbounded memory budget they run
// concurrently. A bounded budget serializes them — structure first, then
// the text index — so their peaks do not stack, and hands the budget to the
// FM builder, which sizes its sort chunks against it and spills chunk
// suffix arrays to disk when keeping them in RAM would not fit.
//
// Every stage polls the context at bounded intervals, and a failed or
// cancelled build returns an error with no partially built state reachable:
// the stage products are local until the final attach.
//
// xmltree.Parse remains the serial reference implementation; Document
// produces an identical *xmltree.Doc (the equivalence suite pins the
// serialized index byte for byte), which is what lets `sxsi build` default
// to this pipeline.
package build

import (
	"context"

	"repro/internal/fmindex"
	"repro/internal/xmltree"
)

// Options configure a pipeline run.
type Options struct {
	// Tree carries the document-model options (sampling rate, SkipFM,
	// SkipPlain, sequence builder), exactly as xmltree.Parse takes them.
	Tree xmltree.Options
	// Procs is the worker count for the parallel text-index construction
	// (0 = GOMAXPROCS). Any value produces the same index.
	Procs int
	// MemoryBudget bounds the transient construction memory of the text
	// side in bytes and serializes the two assembly sides (0 = unbounded,
	// concurrent). See fmindex.BuildOptions.MemoryBudget for the floor.
	MemoryBudget int64
	// TempDir receives suffix-array spill files of bounded builds
	// ("" = os.TempDir()).
	TempDir string
	// FMStats, when non-nil, receives the realized text-side build plan.
	FMStats *fmindex.BuildStats
}

// Document builds the indexed document model from an XML byte slice via the
// staged pipeline. It is the parallel, memory-bounded, cancellable
// equivalent of xmltree.Parse.
func Document(ctx context.Context, xml []byte, o Options) (*xmltree.Doc, error) {
	raw, err := xmltree.ParseRaw(ctx, xml)
	if err != nil {
		return nil, err
	}
	if o.Tree.SkipFM {
		return xmltree.AssembleStructure(ctx, raw, o.Tree)
	}
	fmOpts := fmindex.Options{SampleRate: o.Tree.SampleRate, Builder: o.Tree.Builder}
	fmBuild := fmindex.BuildOptions{
		Procs:        o.Procs,
		MemoryBudget: o.MemoryBudget,
		TempDir:      o.TempDir,
		Stats:        o.FMStats,
	}
	if o.MemoryBudget > 0 {
		// Bounded: do not stack the structural peak on the text-side peak.
		doc, err := xmltree.AssembleStructure(ctx, raw, o.Tree)
		if err != nil {
			return nil, err
		}
		fm, err := fmindex.NewParallel(ctx, raw.Texts, fmOpts, fmBuild)
		if err != nil {
			return nil, err
		}
		doc.SetFM(fm)
		return doc, nil
	}
	// Unbounded: the text side (dominant) overlaps the structure build.
	var (
		fm     *fmindex.Index
		fmErr  error
		fmDone = make(chan struct{})
	)
	go func() {
		defer close(fmDone)
		fm, fmErr = fmindex.NewParallel(ctx, raw.Texts, fmOpts, fmBuild)
	}()
	doc, err := xmltree.AssembleStructure(ctx, raw, o.Tree)
	<-fmDone
	if err != nil {
		return nil, err
	}
	if fmErr != nil {
		return nil, fmErr
	}
	doc.SetFM(fm)
	return doc, nil
}
