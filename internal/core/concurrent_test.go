package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/automata"
	"repro/internal/gen"
	"repro/internal/xpath"
)

// TestConcurrentEngine hammers one shared Engine from many goroutines with
// mixed Count/Nodes/Serialize/Compile traffic and cross-checks every answer
// against serially computed expectations. Run under -race this is the
// engine-level concurrency contract test.
func TestConcurrentEngine(t *testing.T) {
	eng, err := Build(gen.XMark(11, 64<<10), Config{SampleRate: 8})
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"//listitem//keyword",
		"//item[.//keyword]/name",
		"//person//emailaddress",
		"//keyword[contains(., 'gold')]",
		"//item[@id]/description",
		"//open_auction[bidder]//increase",
		"//closed_auction[not(annotation)]",
		"//europe/item/name[starts-with(., 'a')]",
		// Backward axes: nav post-steps and nav predicates must also be
		// safe for concurrent evaluation of one shared Query.
		"//keyword/ancestor::listitem",
		"//name[parent::item]/..",
		"//keyword[contains(., 'gold')]/preceding::emph",
	}
	type expect struct {
		count int64
		nodes []int
		xml   []byte
	}
	want := make([]expect, len(queries))
	for i, q := range queries {
		n, err := eng.Count(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		nodes, err := eng.Nodes(q)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := eng.Serialize(q, &buf); err != nil {
			t.Fatal(err)
		}
		want[i] = expect{count: n, nodes: nodes, xml: buf.Bytes()}
	}

	const goroutines = 16
	const iters = 30
	// Shared compiled queries: one per query string, used by all goroutines
	// at once (the collection cache does the same).
	shared := make([]*xpath.Query, len(queries))
	for i, q := range queries {
		if shared[i], err = eng.Compile(q); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				i := (g + it) % len(queries)
				q := queries[i]
				switch it % 4 {
				case 0:
					if n, err := eng.Count(q); err != nil || n != want[i].count {
						errc <- fmt.Errorf("g%d Count(%s) = %d, %v; want %d", g, q, n, err, want[i].count)
						return
					}
				case 1:
					nodes, err := eng.Nodes(q)
					if err != nil || len(nodes) != len(want[i].nodes) {
						errc <- fmt.Errorf("g%d Nodes(%s) len %d, %v; want %d", g, q, len(nodes), err, len(want[i].nodes))
						return
					}
				case 2:
					var buf bytes.Buffer
					if _, err := eng.Serialize(q, &buf); err != nil || !bytes.Equal(buf.Bytes(), want[i].xml) {
						errc <- fmt.Errorf("g%d Serialize(%s) diverged (%v)", g, q, err)
						return
					}
				case 3:
					// Shared compiled query evaluated concurrently.
					if n := shared[i].Count(); n != want[i].count {
						errc <- fmt.Errorf("g%d shared Count(%s) = %d, want %d", g, q, n, want[i].count)
						return
					}
					_ = shared[i].Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestConcurrentClones runs WithEval/WithQueryOptions clones concurrently
// with their parent on the same index: results must agree and no state may
// be shared (the -race run enforces the latter).
func TestConcurrentClones(t *testing.T) {
	eng, err := Build(gen.Medline(5, 32<<10), Config{SampleRate: 8})
	if err != nil {
		t.Fatal(err)
	}
	const q = "//MedlineCitation//Author/LastName"
	base, err := eng.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 20; it++ {
				e := eng
				switch g % 3 {
				case 1:
					e = eng.WithEval(automata.Options{NoJump: it%2 == 0, NoLazy: true})
				case 2:
					e = eng.WithQueryOptions(xpath.Options{DisableBottomUp: true, ForceNaiveText: it%2 == 0})
				}
				if n, err := e.Count(q); err != nil || n != base {
					errc <- fmt.Errorf("g%d it%d: count %d, %v; want %d", g, it, n, err, base)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestCloneDoesNotAliasCustomMatchSets pins the WithQueryOptions/WithEval
// bugfix: mutating the options map passed in (or the parent's registry)
// after cloning must not leak into the clone.
func TestCloneDoesNotAliasCustomMatchSets(t *testing.T) {
	e, err := Build([]byte(doc), Config{})
	if err != nil {
		t.Fatal(err)
	}
	opts := xpath.Options{CustomMatchSets: map[string]func(string) []int32{
		"only": func(string) []int32 { return []int32{2} },
	}}
	clone := e.WithQueryOptions(opts)
	// Caller mutates its map after the clone was taken.
	opts.CustomMatchSets["evil"] = func(string) []int32 { return []int32{0} }
	delete(opts.CustomMatchSets, "only")
	if n, err := clone.Count("//b[only(., 'x')]"); err != nil || n != 1 {
		t.Fatalf("clone lost its predicate: n=%d err=%v", n, err)
	}
	if _, err := clone.Count("//b[evil(., 'x')]"); err == nil {
		t.Fatal("clone picked up a predicate registered after cloning")
	}
	// A second-generation clone must not alias the first one's map either.
	c2 := clone.WithEval(automata.Options{NoJump: true})
	if n, err := c2.Count("//b[only(., 'x')]"); err != nil || n != 1 {
		t.Fatalf("WithEval clone lost the predicate: n=%d err=%v", n, err)
	}
}
