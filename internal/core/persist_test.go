package core

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/persist"
)

const persistDoc = `<inventory><item sku="a1"><name>bolt</name><qty>12</qty></item>` +
	`<item sku="b2"><name>nut</name><qty>7</qty></item></inventory>`

func TestEngineSaveLoadFile(t *testing.T) {
	e, err := Build([]byte(persistDoc), Config{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "doc.sxsi")
	n, err := e.SaveFile(path)
	if err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil || st.Size() != n {
		t.Fatalf("size=%v n=%d err=%v", st, n, err)
	}
	got, err := LoadFile(path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"//item", "//item[@sku = 'a1']/name", "//qty"} {
		a, err1 := e.Count(q)
		b, err2 := got.Count(q)
		if err1 != nil || err2 != nil || a != b {
			t.Fatalf("%s: %d/%v vs %d/%v", q, a, err1, b, err2)
		}
	}
	var s1, s2 bytes.Buffer
	if _, err := e.Serialize("//item", &s1); err != nil {
		t.Fatal(err)
	}
	if _, err := got.Serialize("//item", &s2); err != nil {
		t.Fatal(err)
	}
	if s1.String() != s2.String() {
		t.Fatal("serialization differs after file round-trip")
	}
}

func TestIsIndexData(t *testing.T) {
	e, _ := Build([]byte(persistDoc), Config{})
	var buf bytes.Buffer
	if _, err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !IsIndexData(buf.Bytes()) {
		t.Fatal("saved index not recognized")
	}
	if IsIndexData([]byte(persistDoc)) || IsIndexData(nil) || IsIndexData([]byte("SX")) {
		t.Fatal("false positive")
	}
}

func TestLoadTruncated(t *testing.T) {
	e, _ := Build([]byte(persistDoc), Config{})
	var buf bytes.Buffer
	if _, err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{0, 1, len(data) / 4, len(data) / 2, len(data) - 1} {
		if _, err := Load(bytes.NewReader(data[:cut]), Config{}); !errors.Is(err, persist.ErrCorrupt) {
			t.Fatalf("cut=%d err=%v", cut, err)
		}
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "absent.sxsi"), Config{}); err == nil {
		t.Fatal("missing file: expected error")
	}
}
