package core

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// A cancelled save must abort through the atomic-write error path: the
// output file is never created and no .sxsi.tmp is orphaned in the
// directory — the exact failure mode of interrupting `sxsi build`.
func TestSaveFileCtxCancelledLeavesNoTemp(t *testing.T) {
	e, err := Build([]byte(doc), Config{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "doc.sxsi")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.SaveFileCtx(ctx, path); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("directory not clean after cancelled save: %v", names)
	}
}

// An uncancelled context must not change the write path: the saved file
// round-trips and the temp file is gone.
func TestSaveFileCtxSuccess(t *testing.T) {
	e, err := Build([]byte(doc), Config{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "doc.sxsi")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if _, err := e.SaveFileCtx(ctx, path); err != nil {
		t.Fatal(err)
	}
	got, err := OpenFile(path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	if n, err := got.Count("//b"); err != nil || n != 3 {
		t.Fatalf("reloaded count: n=%d err=%v", n, err)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("expected only the index file, got %d entries", len(ents))
	}
}

// The parallel build configuration on Config must produce an engine whose
// saved bytes match the default serial-equivalent build.
func TestBuildContextConfigEquivalence(t *testing.T) {
	serial, err := Build([]byte(doc), Config{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := BuildContext(context.Background(), []byte(doc), Config{
		BuildProcs: 4, MemoryBudget: 1 << 20, BuildTempDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	a := saveToBytes(t, serial)
	b := saveToBytes(t, par)
	if string(a) != string(b) {
		t.Fatal("parallel-configured build differs from serial build")
	}
}

func saveToBytes(t *testing.T, e *Engine) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "x.sxsi")
	if _, err := e.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
