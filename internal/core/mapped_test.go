package core

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/persist"
	"repro/internal/xpath"
)

// TestMappedIdenticalOutput is the zero-copy correctness contract: for
// every corpus shape, a memory-mapped engine must produce byte-identical
// query output to the copying load path, under each of the three
// evaluator configurations the oracle suite uses (default planner,
// bottom-up disabled, naive text predicates).
func TestMappedIdenticalOutput(t *testing.T) {
	corpora := []struct {
		name string
		data []byte
		qs   []string
	}{
		{"xmark", gen.XMark(3, 60_000), []string{
			"//listitem//keyword", "//item[@id]/name", "//keyword/ancestor::listitem",
			"//parlist/preceding-sibling::text", "//closed_auction[annotation]",
		}},
		{"medline", gen.Medline(9, 60_000), []string{
			"//MedlineCitation", "//Author/LastName", "//PMID",
			"//Article[contains(., 'the')]",
		}},
		{"treebank", gen.Treebank(4, 40_000), []string{
			"//VP/preceding-sibling::NP", "//NP[not(.//PP)]", "//S//VP",
		}},
		{"wiki", gen.Wiki(5, 60_000), []string{
			"//page//title", "//revision/parent::page",
		}},
		{"bioxml", gen.BioXML(6, 60_000), []string{
			"//exon/ancestor-or-self::gene", "//sequence",
		}},
	}
	configs := []struct {
		name string
		opts xpath.Options
	}{
		{"default", xpath.Options{}},
		{"no-bottomup", xpath.Options{DisableBottomUp: true}},
		{"naive-text", xpath.Options{ForceNaiveText: true}},
	}
	dir := t.TempDir()
	for _, c := range corpora {
		built, err := Build(c.data, Config{SampleRate: 8})
		if err != nil {
			t.Fatalf("%s: build: %v", c.name, err)
		}
		path := filepath.Join(dir, c.name+".sxsi")
		if _, err := built.SaveFile(path); err != nil {
			t.Fatalf("%s: save: %v", c.name, err)
		}
		copied, err := LoadFile(path, Config{SampleRate: 8})
		if err != nil {
			t.Fatalf("%s: copy load: %v", c.name, err)
		}
		mapped, err := OpenFile(path, Config{SampleRate: 8})
		if err != nil {
			t.Fatalf("%s: mapped open: %v", c.name, err)
		}
		if !mapped.Mapped() {
			t.Fatalf("%s: OpenFile did not map", c.name)
		}
		if copied.Mapped() {
			t.Fatalf("%s: LoadFile claims to be mapped", c.name)
		}
		for _, cfg := range configs {
			em := mapped.WithQueryOptions(cfg.opts)
			ec := copied.WithQueryOptions(cfg.opts)
			for _, q := range c.qs {
				nm, err1 := em.Count(q)
				nc, err2 := ec.Count(q)
				if err1 != nil || err2 != nil || nm != nc {
					t.Fatalf("%s/%s/%s: count %d/%v vs %d/%v", c.name, cfg.name, q, nm, err1, nc, err2)
				}
				var sm, sc bytes.Buffer
				km, err1 := em.Serialize(q, &sm)
				kc, err2 := ec.Serialize(q, &sc)
				if err1 != nil || err2 != nil || km != kc {
					t.Fatalf("%s/%s/%s: serialize %d/%v vs %d/%v", c.name, cfg.name, q, km, err1, kc, err2)
				}
				if !bytes.Equal(sm.Bytes(), sc.Bytes()) {
					t.Fatalf("%s/%s/%s: serialized bytes differ", c.name, cfg.name, q)
				}
			}
		}
		if err := mapped.Close(); err != nil {
			t.Fatalf("%s: close: %v", c.name, err)
		}
	}
}

// TestMappedRunLength: the run-length sequence cannot alias (it is
// rebuilt from the BWT), but a mapped open with RunLength must still give
// identical results.
func TestMappedRunLength(t *testing.T) {
	data := gen.BioXML(2, 40_000)
	built, err := Build(data, Config{RunLength: true, SampleRate: 8})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "rl.sxsi")
	if _, err := built.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	mapped, err := OpenFile(path, Config{RunLength: true, SampleRate: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	for _, q := range []string{"//gene//exon", "//sequence[contains(., 'ACG')]"} {
		a, err1 := built.Count(q)
		b, err2 := mapped.Count(q)
		if err1 != nil || err2 != nil || a != b {
			t.Fatalf("%s: %d/%v vs %d/%v", q, a, err1, b, err2)
		}
	}
}

// TestOpenFileFallbacks: NoMmap and pre-alignment files both take the
// copying path and still answer queries.
func TestOpenFileFallbacks(t *testing.T) {
	e, err := Build([]byte(persistDoc), Config{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	path := filepath.Join(dir, "doc.sxsi")
	if _, err := e.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	noMap, err := OpenFile(path, Config{NoMmap: true})
	if err != nil {
		t.Fatal(err)
	}
	if noMap.Mapped() {
		t.Fatal("NoMmap engine claims to be mapped")
	}

	// A version-2 (unaligned) file: OpenFile must fall back to copying.
	var old bytes.Buffer
	if _, err := e.Doc.WriteToVersion(&old, 2); err != nil {
		t.Fatal(err)
	}
	oldPath := filepath.Join(dir, "old.sxsi")
	if err := os.WriteFile(oldPath, old.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	oldEng, err := OpenFile(oldPath, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if oldEng.Mapped() {
		t.Fatal("v2 engine claims to be mapped")
	}
	for _, eng := range []*Engine{noMap, oldEng} {
		n, err := eng.Count("//item")
		if err != nil || n != 2 {
			t.Fatalf("count=%d err=%v", n, err)
		}
	}

	// LoadMapped on a v2 stream reports the typed sentinel.
	if _, err := LoadMapped(old.Bytes(), Config{}); !errors.Is(err, ErrNotMappable) {
		t.Fatalf("LoadMapped(v2): want ErrNotMappable, got %v", err)
	}
}

// TestOpenFileCorruptMapped drives corrupted index files through OpenFile
// itself — a real mapping, unlike the heap buffers of the xmltree
// corruption suite — so the error path that unmaps while background
// validation could still be running is exercised against live mmap'd
// pages. Every outcome must be a clean load or a typed error; any crash
// here is a loader goroutine outliving its mapping.
func TestOpenFileCorruptMapped(t *testing.T) {
	eng, err := Build(gen.Medline(13, 30_000), Config{SampleRate: 8})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "doc.sxsi")
	if _, err := eng.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(orig); i += 31 {
		mut := append([]byte(nil), orig...)
		mut[i] ^= 0xFF
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := OpenFile(path, Config{SampleRate: 8})
		if err != nil {
			if !errors.Is(err, persist.ErrCorrupt) {
				t.Fatalf("byte %d: untyped error %v", i, err)
			}
			continue
		}
		got.Close()
	}
}

// TestMappedStats: the stats of a mapped engine expose the mapped/heap
// split; heap-loaded engines report zero mapped bytes.
func TestMappedStats(t *testing.T) {
	e, err := Build([]byte(persistDoc), Config{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "doc.sxsi")
	n, err := e.SaveFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := OpenFile(path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	st := mapped.Stats()
	if !st.Mapped || int64(st.MappedBytes) != n {
		t.Fatalf("mapped stats: %+v (file %d bytes)", st, n)
	}
	if hs := e.Stats(); hs.Mapped || hs.MappedBytes != 0 {
		t.Fatalf("built stats: %+v", hs)
	}
}

// TestSaveFileAtomic: SaveFile leaves exactly the target file — no
// temporaries — both for fresh writes and overwrites, and the result
// loads. A failed save (unwritable directory) must not leave debris.
func TestSaveFileAtomic(t *testing.T) {
	e, err := Build([]byte(persistDoc), Config{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "doc.sxsi")
	for i := 0; i < 2; i++ { // fresh write, then overwrite
		if _, err := e.SaveFile(path); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "doc.sxsi" {
		names := make([]string, len(entries))
		for i, en := range entries {
			names[i] = en.Name()
		}
		t.Fatalf("directory not clean after save: %s", strings.Join(names, ", "))
	}
	if _, err := OpenFile(path, Config{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.SaveFile(filepath.Join(dir, "absent", "doc.sxsi")); err == nil {
		t.Fatal("save into missing directory: expected error")
	}
}

// TestEngineCloseIdempotent: Close twice, and Close on a heap engine, are
// both fine.
func TestEngineCloseIdempotent(t *testing.T) {
	e, err := Build([]byte(persistDoc), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "doc.sxsi")
	if _, err := e.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	m, err := OpenFile(path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMappedEngineIsZeroCopy pins the aliasing property at the engine
// level: the mapped document's parenthesis words must point into the
// mapped region, not at a private copy.
func TestMappedEngineIsZeroCopy(t *testing.T) {
	e, err := Build([]byte(persistDoc), Config{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "doc.sxsi")
	if _, err := e.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	m, err := OpenFile(path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Doc.MappedBytes() == 0 {
		t.Fatal("no mapped bytes")
	}
	// The engine and a re-opened engine must not share heap: two separate
	// opens alias the same file but different mappings, and both answer.
	m2, err := OpenFile(path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	a, _ := m.Count("//item")
	b, _ := m2.Count("//item")
	if a != b || a != 2 {
		t.Fatalf("counts %d/%d", a, b)
	}
}
