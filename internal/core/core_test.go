package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/automata"
	"repro/internal/xpath"
)

const doc = `<r><a k="v"><b>one</b></a><a><b>two</b><b>three</b></a></r>`

func TestEngineBasics(t *testing.T) {
	e, err := Build([]byte(doc), Config{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := e.Count("//b")
	if err != nil || n != 3 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	nodes, err := e.Nodes("//a[@k]/b")
	if err != nil || len(nodes) != 1 {
		t.Fatalf("nodes=%v err=%v", nodes, err)
	}
	var buf bytes.Buffer
	k, err := e.Serialize("//b[. = 'two']", &buf)
	if err != nil || k != 1 || strings.TrimSpace(buf.String()) != "<b>two</b>" {
		t.Fatalf("k=%d out=%q err=%v", k, buf.String(), err)
	}
	if !strings.Contains(e.String(), "nodes=") {
		t.Fatal("String()")
	}
}

func TestWithEvalSharesIndex(t *testing.T) {
	e, _ := Build([]byte(doc), Config{})
	e2 := e.WithEval(automata.Options{NoJump: true})
	if e2.Doc != e.Doc {
		t.Fatal("WithEval must not rebuild the index")
	}
	a, _ := e.Count("//b")
	b, _ := e2.Count("//b")
	if a != b {
		t.Fatalf("%d != %d", a, b)
	}
}

func TestWithQueryOptionsCustomPredicate(t *testing.T) {
	e, _ := Build([]byte(doc), Config{})
	e2 := e.WithQueryOptions(xpath.Options{
		CustomMatchSets: map[string]func(string) []int32{
			// match the text id of "two" (the second # text; ids follow
			// document order: v, one, two, three)
			"only": func(string) []int32 { return []int32{2} },
		},
	})
	n, err := e2.Count("//b[only(., 'x')]")
	if err != nil || n != 1 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	// Unknown custom function must be a compile error.
	if _, err := e2.Count("//b[nosuch(., 'x')]"); err == nil {
		t.Fatal("expected unknown-function error")
	}
}

func TestBuildFileMissing(t *testing.T) {
	if _, err := BuildFile("/nonexistent/file.xml", Config{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestSkipFMDisablesTextIndex(t *testing.T) {
	e, err := Build([]byte(doc), Config{SkipFM: true})
	if err != nil {
		t.Fatal(err)
	}
	if e.Doc.FM != nil {
		t.Fatal("FM should be nil")
	}
	// Text predicates still work via the naive path.
	n, err := e.Count("//b[contains(., 'thr')]")
	if err != nil || n != 1 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}
