// Package core assembles the paper's primary contribution — the SXSI
// engine: the succinct document model (package xmltree: balanced
// parentheses, tag sequence, leaf bitmap), the FM-index text collection
// (package fmindex) and the tree-automata query evaluator with its planner
// (packages automata, xpath), behind one engine type. The public root
// package sxsi re-exports this API.
package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"repro/internal/automata"
	"repro/internal/build"
	"repro/internal/fmindex"
	"repro/internal/mmap"
	"repro/internal/persist"
	"repro/internal/rlfm"
	"repro/internal/search"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Engine is an indexed XML document ready for Core+ XPath queries.
//
// Concurrency contract: once built or loaded, an Engine is immutable and
// safe for concurrent use by any number of goroutines — Compile, Count,
// Nodes, Serialize and Stats may all run in parallel on one shared Engine.
// Every evaluation allocates its own scratch state (evaluator memo tables,
// result buffers), and compiled Queries are themselves safe for concurrent
// evaluation, so they may be cached and shared across goroutines (package
// collection does exactly that). Clones made with WithEval or
// WithQueryOptions share only the immutable index and are safe to use
// concurrently with their parent.
//
// An engine opened through OpenFile may be memory-mapped: its succinct
// payloads alias the mapped index file and only the derived directories
// live on the heap. The mapping stays valid for the engine's whole
// lifetime (clones included); Close releases it and must only be called
// once no goroutine can touch the engine or a clone again.
type Engine struct {
	Doc  *xmltree.Doc
	opts Config

	// backing keeps the mapped index file alive for mapped engines; nil
	// for built or copy-loaded engines.
	backing *mmap.File

	// postings caches the word-level postings of Postings(), built on
	// first use. Clones (WithEval/WithQueryOptions) start with a fresh
	// cache; they share the immutable Doc, so a rebuild is identical.
	postOnce sync.Once
	postings *search.DocPostings
}

// Config controls indexing and evaluation.
type Config struct {
	// SampleRate is the FM-index locate sampling step l (default 64;
	// Section 3.1, Tables II/III).
	SampleRate int
	// SkipFM disables the text self-index (tree-only workloads).
	SkipFM bool
	// SkipPlain drops the redundant plain-text store of Section 3.4; text
	// extraction then walks the BWT.
	SkipPlain bool
	// RunLength uses the run-length FM sequence (package rlfm) instead of
	// the wavelet tree — the RLCSA swap of Section 6.7 for repetitive
	// collections.
	RunLength bool
	// NoMmap disables the memory-mapped load path of OpenFile: the index is
	// copied into private memory as with LoadFile.
	NoMmap bool
	// BuildProcs is the worker count for parallel index construction
	// (0 = GOMAXPROCS). Any value produces the same index.
	BuildProcs int
	// MemoryBudget bounds the transient construction memory in bytes
	// (0 = unbounded): sort chunks are sized against it and per-chunk
	// suffix arrays spill to temporary files when RAM would not suffice.
	MemoryBudget int64
	// BuildTempDir receives the spill files of bounded builds
	// ("" = os.TempDir()).
	BuildTempDir string
	// Query carries the per-query evaluation options.
	Query xpath.Options
}

func (c Config) treeOptions() xmltree.Options {
	o := xmltree.Options{
		SkipFM:     c.SkipFM,
		SkipPlain:  c.SkipPlain,
		SampleRate: c.SampleRate,
	}
	if c.RunLength {
		o.Builder = func(bwt []byte) fmindex.RankSequence { return rlfm.New(bwt) }
	}
	return o
}

// Build parses and indexes an XML document held in memory.
func Build(xml []byte, cfg Config) (*Engine, error) {
	return BuildContext(context.Background(), xml, cfg)
}

// BuildContext is Build with cancellation and resource control: it runs the
// staged pipeline of package build — parse, then structure assembly and the
// chunk-parallel text-index construction (cfg.BuildProcs workers, transient
// memory bounded by cfg.MemoryBudget) — polling ctx at bounded intervals in
// every stage. The produced index is byte-identical to a serial build.
func BuildContext(ctx context.Context, xml []byte, cfg Config) (*Engine, error) {
	doc, err := build.Document(ctx, xml, build.Options{
		Tree:         cfg.treeOptions(),
		Procs:        cfg.BuildProcs,
		MemoryBudget: cfg.MemoryBudget,
		TempDir:      cfg.BuildTempDir,
	})
	if err != nil {
		return nil, err
	}
	return &Engine{Doc: doc, opts: cfg}, nil
}

// BuildFile indexes an XML file.
func BuildFile(path string, cfg Config) (*Engine, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Build(data, cfg)
}

// Save writes the index to w in the versioned container format of package
// persist; Load reads it back. Loading skips suffix sorting and is much
// faster than Build (Figure 8).
func (e *Engine) Save(w io.Writer) (int64, error) { return e.Doc.WriteTo(w) }

// SaveFile writes the index to path, returning the number of bytes
// written. The write is crash-safe: the index is written to a temporary
// file in the same directory, fsynced, and atomically renamed over path,
// so a crash mid-build can never leave a truncated .sxsi that a later
// (mapped) reader would trust. The containing directory is fsynced
// best-effort to persist the rename itself.
func (e *Engine) SaveFile(path string) (int64, error) {
	return e.SaveFileCtx(context.Background(), path)
}

// SaveFileCtx is SaveFile with cancellation: the writer checks ctx between
// section writes, so an interrupted save aborts promptly and takes the
// error path of the atomic write — the temporary file is removed and path
// is left untouched (no orphaned .sxsi.tmp).
func (e *Engine) SaveFileCtx(ctx context.Context, path string) (int64, error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return 0, err
	}
	tmp := f.Name()
	// CreateTemp makes the file 0600; give the finished index the usual
	// artifact permissions — other processes mapping the same file (the
	// point of the mmap path) must be able to open it.
	if err := f.Chmod(0o644); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	var w io.Writer = f
	if ctx != nil && ctx.Done() != nil {
		w = &ctxWriter{ctx: ctx, w: f}
	}
	n, err := e.Save(w)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return n, err
	}
	// Not all platforms and filesystems support fsyncing a directory;
	// failure here does not undo a completed, durable write of the data.
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return n, nil
}

// ctxWriter fails writes once its context is done. Writes arrive in
// section-sized batches from the persist layer, so the per-call check is
// both cheap and prompt.
type ctxWriter struct {
	ctx context.Context
	w   io.Writer
}

func (cw *ctxWriter) Write(p []byte) (int, error) {
	if err := cw.ctx.Err(); err != nil {
		return 0, err
	}
	return cw.w.Write(p)
}

// Load reads an index previously written by Save.
func Load(r io.Reader, cfg Config) (*Engine, error) {
	doc, err := xmltree.ReadIndex(r, cfg.treeOptions())
	if err != nil {
		return nil, err
	}
	return &Engine{Doc: doc, opts: cfg}, nil
}

// LoadFile reads an index file previously written by SaveFile.
func LoadFile(path string, cfg Config) (*Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f, cfg)
}

// ErrNotMappable reports an index whose on-disk version predates the
// aligned layout; it loads through Load/LoadFile but not LoadMapped.
var ErrNotMappable = xmltree.ErrNotMappable

// LoadMapped reads an index out of data — typically an mmap'd file —
// aliasing the succinct payloads in place instead of copying them. Only
// derived directories are built on the heap, so the load cost is
// independent of the text and tree payload sizes. data must stay alive
// and unchanged for the engine's whole lifetime (for a real mapping, keep
// the mapping open; OpenFile manages that automatically). Indexes older
// than the aligned format return ErrNotMappable.
func LoadMapped(data []byte, cfg Config) (*Engine, error) {
	doc, err := xmltree.ReadIndexMapped(persist.EnsureAligned(data), cfg.treeOptions())
	if err != nil {
		return nil, err
	}
	return &Engine{Doc: doc, opts: cfg}, nil
}

// OpenFile opens an index file for querying with the fastest available
// path: the file is memory-mapped (or, on platforms without mmap, read
// into one aligned buffer) and loaded zero-copy via LoadMapped, so opening
// a multi-gigabyte index costs only its derived directories and restarts
// hit the OS page cache instead of re-reading the index. Pre-aligned-
// layout files, big-endian hosts, and cfg.NoMmap all fall back to the
// copying load. The engine owns the mapping; release it with Close once
// the engine is no longer in use.
func OpenFile(path string, cfg Config) (*Engine, error) {
	if cfg.NoMmap {
		return LoadFile(path, cfg)
	}
	m, err := mmap.Open(path)
	if err != nil {
		return nil, err
	}
	eng, err := LoadMapped(m.Data(), cfg)
	if err == nil {
		eng.backing = m
		// Fallback release: once the document — the object whose slices
		// alias the mapping, shared by every clone and compiled query — is
		// unreachable, unmap. This is what keeps a long-running service
		// that replaces documents (collection.Add over an existing name)
		// from accumulating dead mappings; explicit Close stays available
		// for deterministic release and the two compose because Close is
		// idempotent. Caveat: a caller that keeps an aliased []byte (e.g. a
		// Doc.Text result) without keeping the engine or document alive has
		// already broken the documented lifetime contract.
		runtime.SetFinalizer(eng.Doc, func(*xmltree.Doc) { m.Close() })
		return eng, nil
	}
	if errors.Is(err, ErrNotMappable) {
		// Old unaligned container: decode it the copying way, straight out
		// of the mapped bytes, then drop the mapping.
		eng, err = Load(bytes.NewReader(m.Data()), cfg)
	}
	m.Close()
	return eng, err
}

// Mapped reports whether the engine's payloads alias a mapped (or aligned
// fallback) buffer rather than private heap memory.
func (e *Engine) Mapped() bool { return e.Doc.MappedBytes() > 0 }

// Close releases the mapping behind a mapped engine; it is a no-op for
// heap-loaded engines and is idempotent. The caller must guarantee that
// neither the engine nor any clone of it is used afterwards — their
// payloads point into the released region.
func (e *Engine) Close() error {
	if e.backing == nil {
		return nil
	}
	err := e.backing.Close()
	e.backing = nil
	return err
}

// IsIndexData reports whether data begins with the saved-index magic, i.e.
// whether it is a serialized index rather than raw XML.
func IsIndexData(data []byte) bool {
	return len(data) >= len(xmltree.IndexMagic) &&
		string(data[:len(xmltree.IndexMagic)]) == xmltree.IndexMagic
}

// Postings returns the engine's word-level postings — per-token term
// frequencies and the total token count over the document's texts, the
// per-document slice of the collection search tier (package search). It
// is built lazily on first use, cached for the engine's lifetime, and
// safe for concurrent use; the returned value is immutable and carries
// the engine's document for phrase counting and snippet extraction.
func (e *Engine) Postings() *search.DocPostings {
	e.postOnce.Do(func() { e.postings = search.BuildDoc(e.Doc) })
	return e.postings
}

// Compile compiles a Core+ XPath query against the document.
func (e *Engine) Compile(query string) (*xpath.Query, error) {
	return xpath.Compile(query, e.Doc, e.opts.Query)
}

// Count runs the query in counting mode.
func (e *Engine) Count(query string) (int64, error) {
	return e.CountContext(context.Background(), query)
}

// CountContext is Count with cancellation: both evaluation strategies poll
// the context and return its error once it is done.
func (e *Engine) CountContext(ctx context.Context, query string) (int64, error) {
	q, err := e.Compile(query)
	if err != nil {
		return 0, err
	}
	return q.CountCtx(ctx)
}

// Nodes materializes the result nodes (positions in the parentheses
// sequence; use Doc methods or Serialize for content).
func (e *Engine) Nodes(query string) ([]int, error) {
	return e.NodesContext(context.Background(), query)
}

// NodesContext is Nodes with cancellation.
func (e *Engine) NodesContext(ctx context.Context, query string) ([]int, error) {
	q, err := e.Compile(query)
	if err != nil {
		return nil, err
	}
	return q.NodesCtx(ctx)
}

// Exists reports whether the query selects at least one node, evaluating
// lazily: the first verified result ends the run, so a selective query on a
// large document costs far less than Count.
func (e *Engine) Exists(ctx context.Context, query string) (bool, error) {
	q, err := e.Compile(query)
	if err != nil {
		return false, err
	}
	return q.Exists(ctx)
}

// Iter compiles the query and returns a lazy document-order iterator over
// its results. The iterator must be closed (or drained) before the engine
// is: for mapped engines it reads from the mapping.
func (e *Engine) Iter(ctx context.Context, query string) (xpath.ResultIter, error) {
	q, err := e.Compile(query)
	if err != nil {
		return nil, err
	}
	return q.Iter(ctx), nil
}

// Serialize evaluates the query and writes the XML serialization of each
// result node to w, returning the number of results.
func (e *Engine) Serialize(query string, w io.Writer) (int, error) {
	return e.SerializeContext(context.Background(), query, w)
}

// SerializeContext is Serialize with cancellation; results stream through
// the lazy iterator, so a cancelled call has written a prefix of them.
func (e *Engine) SerializeContext(ctx context.Context, query string, w io.Writer) (int, error) {
	q, err := e.Compile(query)
	if err != nil {
		return 0, err
	}
	return q.SerializeCtx(ctx, w)
}

// Stats describes the in-memory footprint of the index components
// (Figure 8's memory column). For mapped engines, Mapped is true,
// MappedBytes is the size of the aliased index file, and HeapBytes
// estimates the private memory left over (the derived directories): the
// component byte counts include the aliased payloads, so heap usage is
// their total minus the mapping.
type Stats struct {
	Nodes       int  `json:"nodes"`
	Texts       int  `json:"texts"`
	Tags        int  `json:"tags"`
	TreeBytes   int  `json:"tree_bytes"`
	TextBytes   int  `json:"text_bytes"` // FM-index
	PlainBytes  int  `json:"plain_bytes"`
	Mapped      bool `json:"mapped"`
	MappedBytes int  `json:"mapped_bytes"`
	HeapBytes   int  `json:"heap_bytes"`
}

// Stats reports index statistics.
func (e *Engine) Stats() Stats {
	tree, text, plain := e.Doc.SizeInBytes()
	st := Stats{
		Nodes:      e.Doc.NumNodes(),
		Texts:      e.Doc.NumTexts(),
		Tags:       e.Doc.NumTags(),
		TreeBytes:  tree,
		TextBytes:  text,
		PlainBytes: plain,
	}
	st.MappedBytes = e.Doc.MappedBytes()
	st.Mapped = st.MappedBytes > 0
	st.HeapBytes = max(0, tree+text+plain-st.MappedBytes)
	return st
}

// cloneQueryOptions deep-copies the reference-typed parts of query options
// so an Engine clone never aliases mutable state with its parent: mutating
// the CustomMatchSets registry of one must not be visible in the other.
func cloneQueryOptions(o xpath.Options) xpath.Options {
	if o.CustomMatchSets != nil {
		m := make(map[string]func(string) []int32, len(o.CustomMatchSets))
		for name, fn := range o.CustomMatchSets {
			m[name] = fn
		}
		o.CustomMatchSets = m
	}
	return o
}

// WithEval returns a copy of the engine with the given evaluator option
// overrides applied (used by the ablation benchmarks). The clone shares the
// immutable index only and is safe to use concurrently with the parent.
func (e *Engine) WithEval(opts automata.Options) *Engine {
	cfg := e.opts
	cfg.Query = cloneQueryOptions(cfg.Query)
	cfg.Query.Eval = opts
	return &Engine{Doc: e.Doc, opts: cfg}
}

// WithQueryOptions returns a copy of the engine using the given query
// options (planner toggles, custom predicates). The clone shares the
// immutable index only and is safe to use concurrently with the parent.
func (e *Engine) WithQueryOptions(opts xpath.Options) *Engine {
	cfg := e.opts
	cfg.Query = cloneQueryOptions(opts)
	return &Engine{Doc: e.Doc, opts: cfg}
}

func (e *Engine) String() string {
	return fmt.Sprintf("sxsi[nodes=%d texts=%d tags=%d]", e.Doc.NumNodes(), e.Doc.NumTexts(), e.Doc.NumTags())
}
