// Package core assembles the paper's primary contribution — the SXSI
// engine: the succinct document model (package xmltree: balanced
// parentheses, tag sequence, leaf bitmap), the FM-index text collection
// (package fmindex) and the tree-automata query evaluator with its planner
// (packages automata, xpath), behind one engine type. The public root
// package sxsi re-exports this API.
package core

import (
	"fmt"
	"io"
	"os"

	"repro/internal/automata"
	"repro/internal/fmindex"
	"repro/internal/rlfm"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Engine is an indexed XML document ready for Core+ XPath queries.
//
// Concurrency contract: once built or loaded, an Engine is immutable and
// safe for concurrent use by any number of goroutines — Compile, Count,
// Nodes, Serialize and Stats may all run in parallel on one shared Engine.
// Every evaluation allocates its own scratch state (evaluator memo tables,
// result buffers), and compiled Queries are themselves safe for concurrent
// evaluation, so they may be cached and shared across goroutines (package
// collection does exactly that). Clones made with WithEval or
// WithQueryOptions share only the immutable index and are safe to use
// concurrently with their parent.
type Engine struct {
	Doc  *xmltree.Doc
	opts Config
}

// Config controls indexing and evaluation.
type Config struct {
	// SampleRate is the FM-index locate sampling step l (default 64;
	// Section 3.1, Tables II/III).
	SampleRate int
	// SkipFM disables the text self-index (tree-only workloads).
	SkipFM bool
	// SkipPlain drops the redundant plain-text store of Section 3.4; text
	// extraction then walks the BWT.
	SkipPlain bool
	// RunLength uses the run-length FM sequence (package rlfm) instead of
	// the wavelet tree — the RLCSA swap of Section 6.7 for repetitive
	// collections.
	RunLength bool
	// Query carries the per-query evaluation options.
	Query xpath.Options
}

func (c Config) treeOptions() xmltree.Options {
	o := xmltree.Options{
		SkipFM:     c.SkipFM,
		SkipPlain:  c.SkipPlain,
		SampleRate: c.SampleRate,
	}
	if c.RunLength {
		o.Builder = func(bwt []byte) fmindex.RankSequence { return rlfm.New(bwt) }
	}
	return o
}

// Build parses and indexes an XML document held in memory.
func Build(xml []byte, cfg Config) (*Engine, error) {
	doc, err := xmltree.Parse(xml, cfg.treeOptions())
	if err != nil {
		return nil, err
	}
	return &Engine{Doc: doc, opts: cfg}, nil
}

// BuildFile indexes an XML file.
func BuildFile(path string, cfg Config) (*Engine, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Build(data, cfg)
}

// Save writes the index to w in the versioned container format of package
// persist; Load reads it back. Loading skips suffix sorting and is much
// faster than Build (Figure 8).
func (e *Engine) Save(w io.Writer) (int64, error) { return e.Doc.WriteTo(w) }

// SaveFile writes the index to path, returning the number of bytes
// written.
func (e *Engine) SaveFile(path string) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	n, err := e.Save(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return n, err
}

// Load reads an index previously written by Save.
func Load(r io.Reader, cfg Config) (*Engine, error) {
	doc, err := xmltree.ReadIndex(r, cfg.treeOptions())
	if err != nil {
		return nil, err
	}
	return &Engine{Doc: doc, opts: cfg}, nil
}

// LoadFile reads an index file previously written by SaveFile.
func LoadFile(path string, cfg Config) (*Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f, cfg)
}

// IsIndexData reports whether data begins with the saved-index magic, i.e.
// whether it is a serialized index rather than raw XML.
func IsIndexData(data []byte) bool {
	return len(data) >= len(xmltree.IndexMagic) &&
		string(data[:len(xmltree.IndexMagic)]) == xmltree.IndexMagic
}

// Compile compiles a Core+ XPath query against the document.
func (e *Engine) Compile(query string) (*xpath.Query, error) {
	return xpath.Compile(query, e.Doc, e.opts.Query)
}

// Count runs the query in counting mode.
func (e *Engine) Count(query string) (int64, error) {
	q, err := e.Compile(query)
	if err != nil {
		return 0, err
	}
	return q.Count(), nil
}

// Nodes materializes the result nodes (positions in the parentheses
// sequence; use Doc methods or Serialize for content).
func (e *Engine) Nodes(query string) ([]int, error) {
	q, err := e.Compile(query)
	if err != nil {
		return nil, err
	}
	return q.Nodes(), nil
}

// Serialize evaluates the query and writes the XML serialization of each
// result node to w, returning the number of results.
func (e *Engine) Serialize(query string, w io.Writer) (int, error) {
	q, err := e.Compile(query)
	if err != nil {
		return 0, err
	}
	return q.Serialize(w)
}

// Stats describes the in-memory footprint of the index components
// (Figure 8's memory column).
type Stats struct {
	Nodes      int `json:"nodes"`
	Texts      int `json:"texts"`
	Tags       int `json:"tags"`
	TreeBytes  int `json:"tree_bytes"`
	TextBytes  int `json:"text_bytes"` // FM-index
	PlainBytes int `json:"plain_bytes"`
}

// Stats reports index statistics.
func (e *Engine) Stats() Stats {
	tree, text, plain := e.Doc.SizeInBytes()
	return Stats{
		Nodes:      e.Doc.NumNodes(),
		Texts:      e.Doc.NumTexts(),
		Tags:       e.Doc.NumTags(),
		TreeBytes:  tree,
		TextBytes:  text,
		PlainBytes: plain,
	}
}

// cloneQueryOptions deep-copies the reference-typed parts of query options
// so an Engine clone never aliases mutable state with its parent: mutating
// the CustomMatchSets registry of one must not be visible in the other.
func cloneQueryOptions(o xpath.Options) xpath.Options {
	if o.CustomMatchSets != nil {
		m := make(map[string]func(string) []int32, len(o.CustomMatchSets))
		for name, fn := range o.CustomMatchSets {
			m[name] = fn
		}
		o.CustomMatchSets = m
	}
	return o
}

// WithEval returns a copy of the engine with the given evaluator option
// overrides applied (used by the ablation benchmarks). The clone shares the
// immutable index only and is safe to use concurrently with the parent.
func (e *Engine) WithEval(opts automata.Options) *Engine {
	cfg := e.opts
	cfg.Query = cloneQueryOptions(cfg.Query)
	cfg.Query.Eval = opts
	return &Engine{Doc: e.Doc, opts: cfg}
}

// WithQueryOptions returns a copy of the engine using the given query
// options (planner toggles, custom predicates). The clone shares the
// immutable index only and is safe to use concurrently with the parent.
func (e *Engine) WithQueryOptions(opts xpath.Options) *Engine {
	cfg := e.opts
	cfg.Query = cloneQueryOptions(opts)
	return &Engine{Doc: e.Doc, opts: cfg}
}

func (e *Engine) String() string {
	return fmt.Sprintf("sxsi[nodes=%d texts=%d tags=%d]", e.Doc.NumNodes(), e.Doc.NumTexts(), e.Doc.NumTags())
}
