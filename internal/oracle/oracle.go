// Package oracle generates random Core+ XPath queries over a document's own
// vocabulary, for differential testing of the succinct engine against the
// naive pointer-based evaluator of package dom. The generator stays inside
// the fragment both evaluators support (every axis but namespace — forward,
// backward and following — attribute steps, boolean filters, the four text
// predicates), so every generated query must compile — a compile error on
// generated input is itself a bug.
package oracle

import (
	"strings"

	"repro/internal/dom"
	"repro/internal/gen"
)

// Vocab is the query-generation vocabulary extracted from one document.
type Vocab struct {
	Tags  []string // element tag names (reserved labels excluded)
	Attrs []string // attribute names
	Words []string // words sampled from text content
}

// ExtractVocab walks a dom tree collecting element tags, attribute names
// and up to maxWords distinct text words.
func ExtractVocab(t *dom.Tree, maxWords int) Vocab {
	var v Vocab
	tagSeen := map[string]bool{}
	attrSeen := map[string]bool{}
	wordSeen := map[string]bool{}
	var walk func(n *dom.Node, underAttr bool)
	walk = func(n *dom.Node, underAttr bool) {
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			switch c.Tag {
			case "@":
				walk(c, true)
				continue
			case "#", "%":
				if len(wordSeen) < maxWords {
					for _, w := range strings.Fields(string(c.Text)) {
						if isWord(w) && !wordSeen[w] && len(wordSeen) < maxWords {
							wordSeen[w] = true
							v.Words = append(v.Words, w)
						}
					}
				}
				continue
			}
			if underAttr {
				if !attrSeen[c.Tag] {
					attrSeen[c.Tag] = true
					v.Attrs = append(v.Attrs, c.Tag)
				}
			} else if !tagSeen[c.Tag] {
				tagSeen[c.Tag] = true
				v.Tags = append(v.Tags, c.Tag)
			}
			walk(c, false)
		}
	}
	walk(t.Root, false)
	return v
}

// isWord keeps only literals that survive the query lexer unescaped.
func isWord(w string) bool {
	if len(w) == 0 || len(w) > 12 {
		return false
	}
	for i := 0; i < len(w); i++ {
		c := w[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9') {
			return false
		}
	}
	return true
}

// stepAxes are the explicit axis spellings the generator mixes into main
// path steps (the grammar lets an explicit axis override the // shorthand).
// The backward and following axes route the query through the navigational
// post-step evaluator; following-sibling stays inside the automaton.
var stepAxes = []string{
	"following-sibling", "parent", "ancestor", "ancestor-or-self",
	"preceding-sibling", "preceding", "following", "descendant-or-self",
}

// RandomQuery produces one random Core+ query over the vocabulary. The
// distribution mixes selective and non-selective steps, every axis
// (standalone and inside predicates), attribute steps, boolean filters and
// text predicates, including deliberate misses (unknown tags and literals)
// to exercise the empty-result paths.
func RandomQuery(r *gen.RNG, v Vocab) string {
	var sb strings.Builder
	steps := 1 + r.Intn(3)
	for i := 0; i < steps; i++ {
		if r.Intn(2) == 0 {
			sb.WriteString("//")
		} else {
			sb.WriteString("/")
		}
		// Explicit axes ride on non-first steps so the context set they
		// move from is usually non-empty (every axis is legal anywhere).
		if i > 0 && r.Intn(6) == 0 {
			if r.Intn(5) == 0 {
				// The ".." abbreviation is a whole step (parent::node()).
				sb.WriteString("..")
				if r.Intn(3) == 0 {
					sb.WriteString("[" + randExpr(r, v, 2) + "]")
				}
				continue
			}
			sb.WriteString(pick(r, stepAxes) + "::")
		}
		sb.WriteString(nodeTest(r, v))
		if r.Intn(3) == 0 {
			sb.WriteString("[" + randExpr(r, v, 2) + "]")
		}
	}
	// Occasionally finish on an attribute or text() step.
	switch r.Intn(10) {
	case 0:
		if len(v.Attrs) > 0 {
			sb.WriteString("/@" + pick(r, v.Attrs))
		}
	case 1:
		sb.WriteString("//text()")
	}
	return sb.String()
}

func nodeTest(r *gen.RNG, v Vocab) string {
	switch r.Intn(10) {
	case 0:
		return "*"
	case 1:
		return "node()"
	case 2:
		// A tag that (most likely) does not occur: the absent-label path.
		return "zz" + pick(r, v.Tags)
	default:
		return pick(r, v.Tags)
	}
}

// randExpr generates a filter expression with bounded nesting depth.
func randExpr(r *gen.RNG, v Vocab, depth int) string {
	if depth > 0 {
		switch r.Intn(8) {
		case 0:
			return randExpr(r, v, depth-1) + " and " + randExpr(r, v, depth-1)
		case 1:
			return randExpr(r, v, depth-1) + " or " + randExpr(r, v, depth-1)
		case 2:
			return "not(" + randExpr(r, v, depth-1) + ")"
		}
	}
	switch r.Intn(6) {
	case 0: // relative path existence
		return relPath(r, v)
	case 1: // attribute existence
		if len(v.Attrs) > 0 {
			return "@" + pick(r, v.Attrs)
		}
		return relPath(r, v)
	case 2: // attribute value
		if len(v.Attrs) > 0 && len(v.Words) > 0 {
			return "@" + pick(r, v.Attrs) + " = '" + literal(r, v) + "'"
		}
		return relPath(r, v)
	case 3: // equality on the current node or a path target
		return target(r, v) + " = '" + literal(r, v) + "'"
	default: // contains / starts-with / ends-with
		fn := [...]string{"contains", "starts-with", "ends-with"}[r.Intn(3)]
		return fn + "(" + target(r, v) + ", '" + literal(r, v) + "')"
	}
}

func relPath(r *gen.RNG, v Vocab) string {
	p := pick(r, v.Tags)
	switch r.Intn(8) {
	case 0:
		return ".//" + p
	case 1:
		return p + "/" + pick(r, v.Tags)
	case 2:
		return p + "//" + pick(r, v.Tags)
	case 3:
		// backward/following axes inside predicates (a[parent::b] etc.)
		return pick(r, stepAxes) + "::" + p
	case 4:
		return "../" + p
	case 5:
		return "ancestor::" + p + "/" + pick(r, v.Tags)
	}
	return p
}

func target(r *gen.RNG, v Vocab) string {
	if r.Intn(2) == 0 {
		return "."
	}
	return relPath(r, v)
}

// literal picks a word from the document, sometimes truncated to a prefix
// (so starts-with/contains hit partial matches), sometimes a guaranteed
// miss.
func literal(r *gen.RNG, v Vocab) string {
	if len(v.Words) == 0 || r.Intn(8) == 0 {
		return "qqmiss"
	}
	w := pick(r, v.Words)
	if len(w) > 3 && r.Intn(3) == 0 {
		return w[:1+r.Intn(len(w)-1)]
	}
	return w
}

func pick(r *gen.RNG, xs []string) string {
	if len(xs) == 0 {
		return "empty"
	}
	return xs[r.Intn(len(xs))]
}
