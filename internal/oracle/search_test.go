package oracle

// The differential ranking oracle: the posting-tier top-k (collection.Search)
// must agree exactly with a brute-force scorer that re-derives every number
// from first principles — term frequencies by re-tokenizing each document's
// text store, phrase frequencies by naive overlapping substring scans (the
// tier uses FM-index backward search), document frequencies and BM25 by the
// formula — across the five corpora. Zero mismatches allowed.

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/gen"
	"repro/internal/search"
)

// bruteDoc is one document's independently derived text statistics.
type bruteDoc struct {
	name   string
	tf     map[string]int64
	tokens int64
	texts  [][]byte
}

func bruteStats(name string, eng *core.Engine) *bruteDoc {
	b := &bruteDoc{name: name, tf: map[string]int64{}}
	for id := 0; id < eng.Doc.NumTexts(); id++ {
		text := eng.Doc.Text(id)
		b.texts = append(b.texts, text)
		for _, tok := range search.Tokenize(text) {
			b.tf[tok]++
			b.tokens++
		}
	}
	return b
}

// phraseCount counts overlapping occurrences of pat in every text — the
// naive counterpart of the FM-index GlobalCount the tier uses.
func (b *bruteDoc) phraseCount(pat string) int64 {
	var n int64
	for _, text := range b.texts {
		for i := 0; i+len(pat) <= len(text); i++ {
			if string(text[i:i+len(pat)]) == pat {
				n++
			}
		}
	}
	return n
}

// bruteRank mirrors the tier's documented semantics with independent code:
// candidates are the documents containing every word term; word df counts
// over all documents, phrase df over the candidates; BM25 with k1=1.2,
// b=0.75 and idf = ln(1+(n-df+0.5)/(df+0.5)); conjunctive matching; ties
// broken by name.
func bruteRank(docs []*bruteDoc, terms []search.Term) []collection.SearchHit {
	var cands []*bruteDoc
	for _, d := range docs {
		ok := true
		for _, t := range terms {
			if !t.Phrase && d.tf[t.Text] == 0 {
				ok = false
				break
			}
		}
		if ok {
			cands = append(cands, d)
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].name < cands[j].name })

	var total int64
	for _, d := range docs {
		total += d.tokens
	}
	avgdl := 1.0
	if len(docs) > 0 && total > 0 {
		avgdl = float64(total) / float64(len(docs))
	}
	idf := func(n, df int) float64 {
		return math.Log(1 + (float64(n)-float64(df)+0.5)/(float64(df)+0.5))
	}
	termIDF := make([]float64, len(terms))
	phraseTF := map[*bruteDoc]map[string]int64{}
	for ti, t := range terms {
		df := 0
		if t.Phrase {
			for _, d := range cands {
				if phraseTF[d] == nil {
					phraseTF[d] = map[string]int64{}
				}
				if _, ok := phraseTF[d][t.Text]; !ok {
					phraseTF[d][t.Text] = d.phraseCount(t.Text)
				}
				if phraseTF[d][t.Text] > 0 {
					df++
				}
			}
			termIDF[ti] = idf(len(cands), df)
			continue
		}
		for _, d := range docs {
			if d.tf[t.Text] > 0 {
				df++
			}
		}
		termIDF[ti] = idf(len(docs), df)
	}

	var hits []collection.SearchHit
	for _, d := range cands {
		dl := float64(d.tokens)
		score, matched := 0.0, true
		for ti, t := range terms {
			tf := d.tf[t.Text]
			if t.Phrase {
				tf = phraseTF[d][t.Text]
			}
			if tf == 0 {
				matched = false
				break
			}
			f := float64(tf)
			score += termIDF[ti] * f * (1.2 + 1) / (f + 1.2*(1-0.75+0.75*dl/avgdl))
		}
		if matched {
			hits = append(hits, collection.SearchHit{Doc: d.name, Score: score})
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Doc < hits[j].Doc
	})
	return hits
}

// randomSearchQuery builds a term query from the corpus vocabulary: 1-3
// word terms, sometimes with a quoted phrase sampled from real text (so
// phrase hits actually occur).
func randomSearchQuery(r *gen.RNG, v Vocab, docs []*bruteDoc) string {
	var parts []string
	for n := 1 + int(r.Next()%3); n > 0; n-- {
		parts = append(parts, v.Words[r.Next()%uint64(len(v.Words))])
	}
	if r.Next()%3 == 0 {
		d := docs[r.Next()%uint64(len(docs))]
		if text := d.texts[r.Next()%uint64(len(d.texts))]; len(text) > 0 {
			fields := strings.Fields(string(text))
			if len(fields) >= 2 {
				at := int(r.Next() % uint64(len(fields)-1))
				parts = append(parts, `"`+fields[at]+" "+fields[at+1]+`"`)
			}
		}
	}
	return strings.Join(parts, " ")
}

// TestDifferentialRanking pins the posting tier against the brute-force
// scorer: ≥300 random term queries across the five corpora (each split
// into 6 documents), exact agreement on the matched set, the ranking order
// and the scores. Zero mismatches allowed.
func TestDifferentialRanking(t *testing.T) {
	const queriesPerCorpus = 60
	const docsPerCorpus = 6
	pairs, mismatches := 0, 0
	for _, corp := range corpora {
		c := collection.New(collection.Config{})
		var docs []*bruteDoc
		var vocabData []byte
		for seed := uint64(1); seed <= docsPerCorpus; seed++ {
			data := corp.data(seed)
			if seed == 1 {
				vocabData = data
			}
			eng, err := core.Build(data, core.Config{SampleRate: 4})
			if err != nil {
				t.Fatalf("%s/%d: build: %v", corp.name, seed, err)
			}
			name := fmt.Sprintf("%s-%d", corp.name, seed)
			c.Add(name, eng)
			docs = append(docs, bruteStats(name, eng))
		}
		tree, err := dom.Parse(vocabData)
		if err != nil {
			t.Fatalf("%s: dom: %v", corp.name, err)
		}
		v := ExtractVocab(tree, 200)
		if len(v.Words) == 0 {
			t.Fatalf("%s: no vocabulary words", corp.name)
		}
		r := gen.NewRNG(12345)
		for i := 0; i < queriesPerCorpus; i++ {
			q := randomSearchQuery(r, v, docs)
			terms, err := search.ParseQuery(q)
			if err != nil {
				t.Fatalf("%s: generated query %q does not parse: %v", corp.name, q, err)
			}
			want := bruteRank(docs, terms)
			rep, err := c.Search(context.Background(), q, "", len(docs))
			if err != nil {
				t.Fatalf("%s: Search(%q): %v", corp.name, q, err)
			}
			pairs++
			if !sameRanking(t, corp.name, q, rep, want) {
				mismatches++
				if mismatches > 5 {
					t.Fatal("too many ranking mismatches, stopping")
				}
			}
		}
	}
	if pairs < 300 {
		t.Fatalf("only %d ranking pairs, want >= 300", pairs)
	}
	if mismatches != 0 {
		t.Fatalf("%d/%d ranking pairs mismatched", mismatches, pairs)
	}
	t.Logf("%d ranking pairs, zero mismatches", pairs)
}

func sameRanking(t *testing.T, name, q string, rep *collection.SearchReport, want []collection.SearchHit) bool {
	t.Helper()
	if rep.Matched != len(want) || len(rep.Hits) != len(want) {
		t.Errorf("%s: %q: tier matched %d/%d hits, oracle %d", name, q, rep.Matched, len(rep.Hits), len(want))
		return false
	}
	for i, h := range rep.Hits {
		w := want[i]
		if h.Doc != w.Doc {
			t.Errorf("%s: %q: rank %d: tier %s, oracle %s", name, q, i, h.Doc, w.Doc)
			return false
		}
		if math.Abs(h.Score-w.Score) > 1e-9*math.Max(1, math.Abs(w.Score)) {
			t.Errorf("%s: %q: rank %d (%s): tier score %v, oracle %v", name, q, i, h.Doc, h.Score, w.Score)
			return false
		}
	}
	return true
}
