package oracle

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/gen"
	"repro/internal/xpath"
)

// corpora: five generators with different shapes (attribute-heavy auction
// data, flat bibliographic records, deep recursion, wiki text, long DNA
// strings), two seeds each.
var corpora = []struct {
	name string
	data func(seed uint64) []byte
}{
	{"xmark", func(s uint64) []byte { return gen.XMark(s, 12<<10) }},
	{"medline", func(s uint64) []byte { return gen.Medline(s, 12<<10) }},
	{"treebank", func(s uint64) []byte { return gen.Treebank(s, 8<<10) }},
	{"wiki", func(s uint64) []byte { return gen.Wiki(s, 12<<10) }},
	{"bioxml", func(s uint64) []byte { return gen.BioXML(s, 12<<10) }},
}

// TestDifferential is the differential oracle suite: ≥500 random
// (document, query) pairs, each evaluated by the succinct engine (default
// planner and, for a rotating third of the pairs, with the bottom-up plan or
// the FM-index disabled) and by the naive dom walker; node sets must agree
// exactly (by preorder number), and Count must agree with the set size.
func TestDifferential(t *testing.T) {
	const queriesPerDoc = 60
	pairs, mismatches := 0, 0
	for _, c := range corpora {
		for seed := uint64(1); seed <= 2; seed++ {
			data := c.data(seed)
			eng, err := core.Build(data, core.Config{SampleRate: 4})
			if err != nil {
				t.Fatalf("%s/%d: build: %v", c.name, seed, err)
			}
			tree, err := dom.Parse(data)
			if err != nil {
				t.Fatalf("%s/%d: dom: %v", c.name, seed, err)
			}
			v := ExtractVocab(tree, 200)
			if len(v.Tags) == 0 {
				t.Fatalf("%s/%d: empty vocabulary", c.name, seed)
			}
			r := gen.NewRNG(seed * 7919)
			for i := 0; i < queriesPerDoc; i++ {
				q := RandomQuery(r, v)
				e := eng
				switch i % 3 {
				case 1:
					e = eng.WithQueryOptions(xpath.Options{DisableBottomUp: true})
				case 2:
					e = eng.WithQueryOptions(xpath.Options{ForceNaiveText: true})
				}
				pairs++
				if !checkOne(t, c.name, e, tree, q) {
					mismatches++
					if mismatches > 10 {
						t.Fatal("too many mismatches, stopping")
					}
				}
			}
		}
	}
	if pairs < 500 {
		t.Fatalf("only %d differential pairs, want >= 500", pairs)
	}
	if mismatches != 0 {
		t.Fatalf("%d/%d pairs mismatched", mismatches, pairs)
	}
	t.Logf("%d differential pairs, zero mismatches", pairs)
}

func checkOne(t *testing.T, name string, eng *core.Engine, tree *dom.Tree, q string) bool {
	t.Helper()
	want, err := tree.Eval(q)
	if err != nil {
		t.Errorf("%s: oracle eval %q: %v", name, q, err)
		return false
	}
	got, err := eng.Nodes(q)
	if err != nil {
		t.Errorf("%s: engine compile %q: %v", name, q, err)
		return false
	}
	if len(got) != len(want) {
		t.Errorf("%s: %q: engine %d nodes, oracle %d", name, q, len(got), len(want))
		return false
	}
	for i, x := range got {
		if eng.Doc.Preorder(x) != want[i].Order {
			t.Errorf("%s: %q: node %d: engine preorder %d, oracle %d", name, q, i, eng.Doc.Preorder(x), want[i].Order)
			return false
		}
	}
	n, err := eng.Count(q)
	if err != nil {
		t.Errorf("%s: engine count %q: %v", name, q, err)
		return false
	}
	if n != int64(len(want)) {
		t.Errorf("%s: %q: engine count %d, oracle %d", name, q, n, len(want))
		return false
	}
	return true
}

// TestDifferentialParallelBuild runs the differential oracle over engines
// built by the parallel, memory-bounded pipeline (8 workers, a 1 MiB
// transient budget that forces the spill path): ≥450 random (document,
// query) pairs across the 5 corpora × 2 seeds must match the dom walker
// exactly. Together with the byte-identity suite in package build, this
// pins that parallel-built indexes answer queries identically.
func TestDifferentialParallelBuild(t *testing.T) {
	const queriesPerDoc = 45
	pairs, mismatches := 0, 0
	cfg := core.Config{SampleRate: 4, BuildProcs: 8, MemoryBudget: 1 << 20, BuildTempDir: t.TempDir()}
	for _, c := range corpora {
		for seed := uint64(1); seed <= 2; seed++ {
			data := c.data(seed)
			eng, err := core.BuildContext(context.Background(), data, cfg)
			if err != nil {
				t.Fatalf("%s/%d: parallel build: %v", c.name, seed, err)
			}
			tree, err := dom.Parse(data)
			if err != nil {
				t.Fatalf("%s/%d: dom: %v", c.name, seed, err)
			}
			v := ExtractVocab(tree, 200)
			r := gen.NewRNG(seed*104729 + 17)
			for i := 0; i < queriesPerDoc; i++ {
				q := RandomQuery(r, v)
				pairs++
				if !checkOne(t, c.name, eng, tree, q) {
					mismatches++
					if mismatches > 10 {
						t.Fatal("too many mismatches, stopping")
					}
				}
			}
		}
	}
	if pairs < 450 {
		t.Fatalf("only %d differential pairs, want >= 450", pairs)
	}
	if mismatches != 0 {
		t.Fatalf("%d/%d pairs mismatched", mismatches, pairs)
	}
	t.Logf("%d differential pairs over parallel-built indexes, zero mismatches", pairs)
}

// TestGeneratedQueriesAlwaysCompile pins the generator's contract: every
// query it emits parses and compiles (a parse error on generated input is a
// generator bug, which would silently shrink the differential suite).
func TestGeneratedQueriesAlwaysCompile(t *testing.T) {
	data := gen.XMark(3, 8<<10)
	eng, err := core.Build(data, core.Config{SampleRate: 4})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := dom.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	v := ExtractVocab(tree, 100)
	r := gen.NewRNG(42)
	for i := 0; i < 500; i++ {
		q := RandomQuery(r, v)
		if _, err := eng.Compile(q); err != nil {
			t.Fatalf("generated query %q does not compile: %v", q, err)
		}
	}
}
