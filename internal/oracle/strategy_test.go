package oracle

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/gen"
	"repro/internal/xpath"
)

// strategyConfigs are the base evaluator configurations the equivalence
// suite rotates through, mirroring the rotation of TestDifferential: the
// default planner, the naive text semantics, and a plain-scan cutoff of 1
// (every contains/ends-with match set goes through the plain-text store).
var strategyConfigs = []struct {
	name string
	opts xpath.Options
}{
	{"default", xpath.Options{}},
	{"naivetext", xpath.Options{ForceNaiveText: true}},
	{"plainscan", xpath.Options{PlainCutoff: 1}},
}

var forcedStrategies = []xpath.Strategy{
	xpath.StrategyAuto, xpath.StrategyTopDown, xpath.StrategyBottomUp,
}

// drainIter pulls every result from the lazy iterator.
func drainIter(q *xpath.Query) ([]int, error) {
	it := q.Iter(context.Background())
	defer it.Close()
	var out []int
	for {
		x, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, x)
	}
	return out, it.Err()
}

func toPreorders(eng *core.Engine, nodes []int) []int {
	out := make([]int, len(nodes))
	for i, x := range nodes {
		out[i] = eng.Doc.Preorder(x)
	}
	return out
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestStrategyEquivalence is the strategy-equivalence differential suite:
// every random (document, query) pair is evaluated under {auto,
// forced-top-down, forced-bottom-up} × {materialized, iterator} on top of
// the rotating base configurations, and every run must agree exactly with
// the DOM oracle (node identity by preorder, Count with the set size,
// Exists with set non-emptiness). The cost model's choice is recorded per
// query; the suite fails if it never picks one of the two strategies,
// because then that evaluation path was not actually differentially tested.
func TestStrategyEquivalence(t *testing.T) {
	const queriesPerDoc = 40
	tally := &StrategyTally{}
	pairs, mismatches := 0, 0
	fail := func(format string, args ...any) {
		t.Helper()
		t.Errorf(format, args...)
		mismatches++
		if mismatches > 10 {
			t.Fatal("too many mismatches, stopping")
		}
	}
	for _, c := range corpora {
		for seed := uint64(1); seed <= 2; seed++ {
			data := c.data(seed)
			eng, err := core.Build(data, core.Config{SampleRate: 4})
			if err != nil {
				t.Fatalf("%s/%d: build: %v", c.name, seed, err)
			}
			tree, err := dom.Parse(data)
			if err != nil {
				t.Fatalf("%s/%d: dom: %v", c.name, seed, err)
			}
			v := ExtractVocab(tree, 200)
			r := gen.NewRNG(seed * 104729)
			queries := make([]string, 0, queriesPerDoc+5)
			for i := 0; i < queriesPerDoc; i++ {
				queries = append(queries, RandomQuery(r, v))
			}
			// Random queries over small documents rarely have a text
			// predicate more selective than the last step's tag, so add
			// handcrafted equality predicates (few exact matches, every
			// text leaf a candidate) that the cost model is guaranteed to
			// send bottom-up.
			for _, w := range v.Words {
				if len(queries) == queriesPerDoc+5 {
					break
				}
				queries = append(queries, "//text()[. = '"+w+"']")
			}
			for i, qsrc := range queries {
				base := strategyConfigs[i%len(strategyConfigs)]
				want, err := tree.Eval(qsrc)
				if err != nil {
					t.Fatalf("%s: oracle eval %q: %v", c.name, qsrc, err)
				}
				wantOrders := make([]int, len(want))
				for k, n := range want {
					wantOrders[k] = n.Order
				}
				pairs++
				for _, strat := range forcedStrategies {
					opts := base.opts
					opts.ForceStrategy = strat
					e := eng.WithQueryOptions(opts)
					q, err := e.Compile(qsrc)
					if err != nil {
						fail("%s/%s/%s: compile %q: %v", c.name, base.name, strat, qsrc, err)
						continue
					}
					if strat == xpath.StrategyAuto && base.name == "default" {
						tally.Record(qsrc, q.Cost())
					}
					mat, err := q.NodesCtx(context.Background())
					if err != nil {
						fail("%s/%s/%s: nodes %q: %v", c.name, base.name, strat, qsrc, err)
						continue
					}
					if got := toPreorders(eng, mat); !sameInts(got, wantOrders) {
						fail("%s/%s/%s: %q: materialized %v, oracle %v (cost %v)",
							c.name, base.name, strat, qsrc, got, wantOrders, q.Cost())
						continue
					}
					lazy, err := drainIter(q)
					if err != nil {
						fail("%s/%s/%s: iter %q: %v", c.name, base.name, strat, qsrc, err)
						continue
					}
					if got := toPreorders(eng, lazy); !sameInts(got, wantOrders) {
						fail("%s/%s/%s: %q: iterator %v, oracle %v (cost %v)",
							c.name, base.name, strat, qsrc, got, wantOrders, q.Cost())
						continue
					}
					n, err := q.CountCtx(context.Background())
					if err != nil || n != int64(len(wantOrders)) {
						fail("%s/%s/%s: %q: count %d (err %v), oracle %d",
							c.name, base.name, strat, qsrc, n, err, len(wantOrders))
						continue
					}
					ex, err := q.Exists(context.Background())
					if err != nil || ex != (len(wantOrders) > 0) {
						fail("%s/%s/%s: %q: exists %v (err %v), oracle %v",
							c.name, base.name, strat, qsrc, ex, err, len(wantOrders) > 0)
					}
				}
			}
		}
	}
	if pairs < 300 {
		t.Fatalf("only %d strategy pairs, want >= 300", pairs)
	}
	if mismatches != 0 {
		t.Fatalf("%d/%d strategy pairs mismatched", mismatches, pairs)
	}
	if tally.Count(xpath.StrategyTopDown) == 0 || tally.Count(xpath.StrategyBottomUp) == 0 {
		t.Fatalf("cost model never exercised both strategies: %v", tally)
	}
	t.Logf("%d pairs × %d strategies × {materialized, iterator}, zero mismatches; auto decisions: %v",
		pairs, len(forcedStrategies), tally)
}

// domTexts collects the string values of every text and attribute-value
// leaf, in document order — the DOM view of the engine's text collection.
func domTexts(tree *dom.Tree) []string {
	var out []string
	var walk func(n *dom.Node)
	walk = func(n *dom.Node) {
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			if c.Tag == "#" || c.Tag == "%" {
				out = append(out, string(c.Text))
				continue
			}
			walk(c)
		}
	}
	walk(tree.Root)
	return out
}

// domTagCounts counts every node label in the model tree (attribute-name
// nodes included: they share the tag namespace with elements).
func domTagCounts(tree *dom.Tree) map[string]int {
	counts := map[string]int{}
	var walk func(n *dom.Node)
	walk = func(n *dom.Node) {
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			counts[c.Tag]++
			walk(c)
		}
	}
	walk(tree.Root)
	return counts
}

// countOccurrences counts the (overlapping) occurrences of pat across the
// texts — the quantity one FM backward search reports as GlobalCount.
func countOccurrences(texts []string, pat string) int {
	n := 0
	for _, s := range texts {
		for i := 0; i+len(pat) <= len(s); i++ {
			if s[i:i+len(pat)] == pat {
				n++
			}
		}
	}
	return n
}

// TestCostEstimatorExact pins the cost model's contract: its statistics are
// exact, not estimates. Per-tag candidate counts (from the tag rank
// directories) must equal true node counts from the DOM oracle, and
// text-predicate match counts (from one FM backward search per pattern)
// must equal true match counts computed naively over the DOM's texts.
func TestCostEstimatorExact(t *testing.T) {
	for _, c := range corpora {
		t.Run(c.name, func(t *testing.T) {
			data := c.data(1)
			eng, err := core.Build(data, core.Config{SampleRate: 4})
			if err != nil {
				t.Fatal(err)
			}
			tree, err := dom.Parse(data)
			if err != nil {
				t.Fatal(err)
			}
			v := ExtractVocab(tree, 100)
			tagCounts := domTagCounts(tree)
			texts := domTexts(tree)

			cost := func(src string) xpath.CostEstimate {
				t.Helper()
				q, err := eng.Compile(src)
				if err != nil {
					t.Fatalf("compile %q: %v", src, err)
				}
				return q.Cost()
			}

			tags := v.Tags
			if len(tags) > 30 {
				tags = tags[:30]
			}
			for _, tag := range tags {
				if got, want := cost("//"+tag).LastStepCount, tagCounts[tag]; got != want {
					t.Errorf("//%s: LastStepCount %d, dom count %d", tag, got, want)
				}
			}
			if got := cost("//zzqqabsenttag").LastStepCount; got != 0 {
				t.Errorf("absent tag: LastStepCount %d, want 0", got)
			}
			if got, want := cost("//text()").LastStepCount, len(texts); got != want {
				t.Errorf("//text(): LastStepCount %d, dom texts %d", got, want)
			}

			words := v.Words
			if len(words) > 15 {
				words = words[:15]
			}
			for _, w := range words {
				checks := []struct {
					src  string
					want int
				}{
					{"//text()[. = '" + w + "']", countMatching(texts, w, func(s, p string) bool { return s == p })},
					{"//text()[starts-with(., '" + w + "')]", countMatching(texts, w, strings.HasPrefix)},
					{"//text()[ends-with(., '" + w + "')]", countMatching(texts, w, strings.HasSuffix)},
					{"//text()[contains(., '" + w + "')]", countOccurrences(texts, w)},
				}
				for _, ck := range checks {
					est := cost(ck.src)
					if !est.BottomUpOK {
						t.Fatalf("%s: expected bottom-up-eligible shape", ck.src)
					}
					if est.TextMatches != ck.want {
						t.Errorf("%s: TextMatches %d, dom %d", ck.src, est.TextMatches, ck.want)
					}
				}
			}
		})
	}
}

func countMatching(texts []string, pat string, match func(s, p string) bool) int {
	n := 0
	for _, s := range texts {
		if match(s, pat) {
			n++
		}
	}
	return n
}
