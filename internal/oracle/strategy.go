package oracle

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/xpath"
)

// StrategyRecord is one cost-model decision observed by the differential
// harness: the query, the statistics the planner consulted and the strategy
// it chose.
type StrategyRecord struct {
	Query string
	Cost  xpath.CostEstimate
}

// StrategyTally collects the cost model's per-query decisions across a
// differential run, so the harness can both report the strategy mix and
// assert that a suite actually exercised every evaluation path (a suite
// where the cost model never picks bottom-up is not testing bottom-up).
// Safe for concurrent use.
type StrategyTally struct {
	mu      sync.Mutex
	records []StrategyRecord
	counts  map[xpath.Strategy]int
}

// Record notes one compiled query's decision.
func (t *StrategyTally) Record(query string, c xpath.CostEstimate) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.counts == nil {
		t.counts = map[xpath.Strategy]int{}
	}
	t.records = append(t.records, StrategyRecord{Query: query, Cost: c})
	t.counts[c.Chosen]++
}

// Len returns the number of recorded decisions.
func (t *StrategyTally) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.records)
}

// Count returns how many recorded queries chose the given strategy.
func (t *StrategyTally) Count(s xpath.Strategy) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counts[s]
}

// Records returns a copy of the recorded decisions in recording order.
func (t *StrategyTally) Records() []StrategyRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]StrategyRecord, len(t.records))
	copy(out, t.records)
	return out
}

// String summarizes the tally as "strategy=count" pairs, sorted by name.
func (t *StrategyTally) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	keys := make([]xpath.Strategy, 0, len(t.counts))
	for k := range t.counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	s := ""
	for _, k := range keys {
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", k, t.counts[k])
	}
	return s
}
