package xmltree

import (
	"bytes"
	"strings"
	"testing"
)

const paperDoc = `<parts><part name="pen"><color>blue</color><stock>40</stock>Soon discontinued.</part><part name="rubber"><stock>30</stock></part></parts>`

func parse(t *testing.T, doc string, opts Options) *Doc {
	t.Helper()
	d, err := Parse([]byte(doc), opts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPaperModelShape(t *testing.T) {
	d := parse(t, paperDoc, Options{})
	// Model: & > parts > part(> @ > name > %; color > #; stock > #; #text),
	//                     part(> @ > name > %; stock > #)
	// Count nodes: & parts part @ name % color # stock # # part @ name % stock #
	if d.NumNodes() != 17 {
		t.Fatalf("nodes=%d want 17", d.NumNodes())
	}
	if d.NumTexts() != 6 {
		t.Fatalf("texts=%d want 6", d.NumTexts())
	}
	root := d.Root()
	if d.TagName(d.TagOf(root)) != RootLabel {
		t.Fatal("root label")
	}
	parts := d.FirstChild(root)
	if d.TagName(d.TagOf(parts)) != "parts" {
		t.Fatalf("first child = %s", d.TagName(d.TagOf(parts)))
	}
	part1 := d.FirstChild(parts)
	if d.TagName(d.TagOf(part1)) != "part" {
		t.Fatal("part1")
	}
	at := d.FirstChild(part1)
	if d.TagOf(at) != d.AttrsTag() {
		t.Fatal("@ node must be first child of attributed element")
	}
	nameNode := d.FirstChild(at)
	if d.TagName(d.TagOf(nameNode)) != "name" {
		t.Fatal("attr name node")
	}
	val := d.FirstChild(nameNode)
	if d.TagOf(val) != d.AttrValTag() {
		t.Fatal("% node")
	}
	if got := string(d.Text(d.NodeToTextID(val))); got != "pen" {
		t.Fatalf("attr text=%q", got)
	}
	// texts in document order: pen, blue, 40, Soon discontinued., rubber, 30
	want := []string{"pen", "blue", "40", "Soon discontinued.", "rubber", "30"}
	for i, w := range want {
		if got := string(d.Text(i)); got != w {
			t.Fatalf("text %d = %q want %q", i, got, w)
		}
	}
}

func TestTaggedOps(t *testing.T) {
	d := parse(t, paperDoc, Options{})
	stock := d.TagID("stock")
	part := d.TagID("part")
	root := d.Root()
	if d.SubtreeTags(root, stock) != 2 {
		t.Fatalf("SubtreeTags(stock)=%d", d.SubtreeTags(root, stock))
	}
	if d.SubtreeTags(root, part) != 2 {
		t.Fatal("SubtreeTags(part)")
	}
	// TaggedDesc finds the first stock (inside part1).
	s1 := d.TaggedDesc(root, stock)
	if s1 == Nil || d.TagOf(s1) != stock {
		t.Fatal("TaggedDesc stock")
	}
	// TaggedFoll from first stock finds the second.
	s2 := d.TaggedFoll(s1, stock)
	if s2 == Nil || s2 <= s1 || d.TagOf(s2) != stock {
		t.Fatal("TaggedFoll stock")
	}
	if d.TaggedFoll(s2, stock) != Nil {
		t.Fatal("no third stock")
	}
	// SubtreeTags of part1 counts only its own stock.
	part1 := d.FirstChild(d.FirstChild(root))
	if d.SubtreeTags(part1, stock) != 1 {
		t.Fatal("SubtreeTags part1 stock")
	}
	// TaggedPrec from second part's stock skipping ancestors.
	color := d.TagID("color")
	if p := d.TaggedPrec(s2, color); p == Nil || d.TagOf(p) != color {
		t.Fatal("TaggedPrec color")
	}
}

func TestTextIDRange(t *testing.T) {
	d := parse(t, paperDoc, Options{})
	root := d.Root()
	lo, hi := d.TextIDs(root)
	if lo != 0 || hi != 6 {
		t.Fatalf("root text range [%d,%d)", lo, hi)
	}
	part1 := d.FirstChild(d.FirstChild(root))
	lo, hi = d.TextIDs(part1)
	if lo != 0 || hi != 4 {
		t.Fatalf("part1 text range [%d,%d)", lo, hi)
	}
	part2 := d.NextSibling(part1)
	lo, hi = d.TextIDs(part2)
	if lo != 4 || hi != 6 {
		t.Fatalf("part2 text range [%d,%d)", lo, hi)
	}
	for id := 0; id < 6; id++ {
		node := d.TextIDToNode(id)
		if d.NodeToTextID(node) != id {
			t.Fatalf("roundtrip text id %d", id)
		}
	}
}

func TestTextValue(t *testing.T) {
	d := parse(t, paperDoc, Options{})
	part1 := d.FirstChild(d.FirstChild(d.Root()))
	// string-value excludes the attribute value "pen"
	if got := string(d.TextValue(part1)); got != "blue40Soon discontinued." {
		t.Fatalf("TextValue(part1)=%q", got)
	}
	color := d.TaggedDesc(d.Root(), d.TagID("color"))
	if got := string(d.TextValue(color)); got != "blue" {
		t.Fatalf("TextValue(color)=%q", got)
	}
}

func TestPureText(t *testing.T) {
	d := parse(t, paperDoc, Options{})
	if !d.PureText(d.TagID("color")) || !d.PureText(d.TagID("stock")) {
		t.Fatal("color/stock should be pure text")
	}
	if d.PureText(d.TagID("part")) {
		t.Fatal("part has mixed content")
	}
	// parts has element children only
	if d.PureText(d.TagID("parts")) {
		t.Fatal("parts has element children")
	}
}

func TestRelativeTagTables(t *testing.T) {
	d := parse(t, paperDoc, Options{})
	parts, part, color, stock := d.TagID("parts"), d.TagID("part"), d.TagID("color"), d.TagID("stock")
	if !d.HasChildTag(parts, part) {
		t.Fatal("parts/part child")
	}
	if d.HasChildTag(parts, color) {
		t.Fatal("parts has no color child")
	}
	if !d.HasDescendantTag(parts, color) {
		t.Fatal("parts//color")
	}
	if d.HasDescendantTag(color, parts) {
		t.Fatal("color has no parts below")
	}
	if !d.HasFollowingSiblingTag(color, stock) {
		t.Fatal("color then stock siblings")
	}
	if d.HasFollowingSiblingTag(stock, color) {
		t.Fatal("no color after stock among siblings")
	}
	if !d.HasFollowingTag(color, part) {
		t.Fatal("part2 opens after color closes")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	docs := []string{
		paperDoc,
		`<a/>`,
		`<a>text</a>`,
		`<a x="1" y="2"><b/>mid<c>deep</c></a>`,
		`<r><e>&amp;&lt;&gt;</e></r>`,
	}
	for _, doc := range docs {
		d := parse(t, doc, Options{SkipFM: true})
		var buf bytes.Buffer
		if err := d.GetSubtree(d.Root(), &buf); err != nil {
			t.Fatal(err)
		}
		// Reparse the output; it must produce an identical model.
		d2 := parse(t, buf.String(), Options{SkipFM: true})
		var buf2 bytes.Buffer
		if err := d2.GetSubtree(d2.Root(), &buf2); err != nil {
			t.Fatal(err)
		}
		if buf.String() != buf2.String() {
			t.Fatalf("not a fixed point:\n1: %s\n2: %s", buf.String(), buf2.String())
		}
	}
}

func TestFMExtractionMatchesPlain(t *testing.T) {
	d := parse(t, paperDoc, Options{})
	for id := 0; id < d.NumTexts(); id++ {
		if got, want := string(d.FM.Extract(id)), string(d.Plain.Get(id)); got != want {
			t.Fatalf("text %d: fm=%q plain=%q", id, got, want)
		}
	}
}

func TestSkipPlainUsesFM(t *testing.T) {
	d := parse(t, paperDoc, Options{SkipPlain: true})
	if d.Plain != nil {
		t.Fatal("plain should be nil")
	}
	if got := string(d.Text(1)); got != "blue" {
		t.Fatalf("Text(1)=%q", got)
	}
}

func TestWhitespaceTextsBecomeLeaves(t *testing.T) {
	// Paper Section 2: indentation produces extra # leaves.
	doc := "<parts>\n<part/>\n</parts>"
	d := parse(t, doc, Options{SkipFM: true})
	// & parts # part # => 5 nodes, 2 texts
	if d.NumNodes() != 5 {
		t.Fatalf("nodes=%d", d.NumNodes())
	}
	if d.NumTexts() != 2 {
		t.Fatalf("texts=%d", d.NumTexts())
	}
}

func TestEmptyElementNoTextLeaf(t *testing.T) {
	// <a></a> is stored as a single a-labeled leaf under & (Section 2).
	d := parse(t, "<a></a>", Options{SkipFM: true})
	if d.NumNodes() != 2 {
		t.Fatalf("nodes=%d", d.NumNodes())
	}
	a := d.FirstChild(d.Root())
	if !d.IsLeaf(a) {
		t.Fatal("a should be a leaf")
	}
}

func TestBigDocumentNavigation(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<root>")
	for i := 0; i < 1000; i++ {
		sb.WriteString("<item><k>v</k></item>")
	}
	sb.WriteString("</root>")
	d := parse(t, sb.String(), Options{SkipFM: true})
	item := d.TagID("item")
	if d.TagCount(item) != 1000 {
		t.Fatalf("item count=%d", d.TagCount(item))
	}
	// Walk all items via TaggedDesc + TaggedFoll.
	count := 0
	for x := d.TaggedDesc(d.Root(), item); x != Nil; x = d.TaggedFoll(x, item) {
		count++
	}
	if count != 1000 {
		t.Fatalf("jump walk count=%d", count)
	}
}

func TestNextInSet(t *testing.T) {
	d := parse(t, paperDoc, Options{SkipFM: true})
	color, stock := d.TagID("color"), d.TagID("stock")
	root := d.Root()
	end := d.Close(root)
	p := d.NextInSet([]int32{color, stock}, root+1, end)
	if p == Nil || d.TagOf(p) != color {
		t.Fatal("first of {color,stock} should be color")
	}
	p2 := d.NextInSet([]int32{color, stock}, p+1, end)
	if p2 == Nil || d.TagOf(p2) != stock {
		t.Fatal("second should be stock")
	}
}
