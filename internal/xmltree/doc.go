// Package xmltree assembles the succinct XML document model of the paper:
// the balanced-parentheses structure Par, the tag sequence Tag, the leaf
// bitmap B connecting tree nodes and text identifiers (Section 4), the text
// collection (Section 3), and the relative tag position tables of Section
// 5.5.6. The model adds an extra root labeled "&" and encodes attributes via
// "@"/"%" nodes and text via "#" leaves exactly as Section 2 describes.
package xmltree

import (
	"bytes"
	"context"
	"fmt"
	"io"

	"repro/internal/bitvec"
	"repro/internal/bp"
	"repro/internal/fmindex"
	"repro/internal/tags"
	"repro/internal/xmlparse"
)

// Reserved label names of the model (Section 2).
const (
	RootLabel    = "&" // synthetic super-root
	TextLabel    = "#" // text leaf
	AttrsLabel   = "@" // attribute container (first child)
	AttrValLabel = "%" // attribute value leaf
)

// Nil is the missing-node sentinel, shared with package bp.
const Nil = bp.Nil

// Doc is the indexed document. Nodes are identified by the position of
// their opening parenthesis in Par.
type Doc struct {
	Par *bp.Parens
	Tag *tags.Sequence

	names  []string
	nameID map[string]int32

	leafB *bitvec.Vector // marks opening parens of #/% text leaves

	// Text storage. FM is the self-index (may be nil if disabled); Plain is
	// the redundant plain-text store of Section 3.4 (may be nil).
	FM    *fmindex.Index
	Plain *TextStore
	nText int

	// per-tag statistics
	tagCount []int32 // occurrences of each tag (as node label)

	// pureText[tag] reports that every element with this tag has pure
	// PCDATA content: either no children or exactly one # text child.
	// Used by the planner rule of Section 6.6 (step 2).
	pureText []bool

	// Relative tag position tables (Section 5.5.6): bitsets over tag ids.
	childTags, descTags, follSibTags, follTags []tagSet

	// min close / max open positions per tag, used to build follTags and
	// useful for planning.
	minClose, maxOpen []int32

	// mappedBytes is the size of the backing buffer a ReadIndexMapped load
	// aliases its payloads out of; zero for parsed or copy-loaded documents.
	mappedBytes int
}

// TextStore is the redundant plain-text collection of Section 3.4. It has
// two representations behind one accessor: the builder keeps the parsed
// texts as individual slices, while a loaded store is a single blob plus
// cumulative end offsets, sliced on demand — on a mapped index both alias
// the file, so restoring millions of texts costs nothing at open time and
// no per-text headers are ever materialized.
type TextStore struct {
	parts [][]byte // building path: one slice per text
	blob  []byte   // loaded path: concatenated texts…
	offs  []uint64 // …and their cumulative end offsets (len = text count)
}

// NewTextStoreParts wraps per-text slices (the parse/build path).
func NewTextStoreParts(parts [][]byte) *TextStore { return &TextStore{parts: parts} }

// NewTextStoreBlob wraps a concatenated blob with cumulative end offsets,
// which must be monotone and end at len(blob) — the loaders validate this
// before construction, and Get relies on it.
func NewTextStoreBlob(blob []byte, offs []uint64) *TextStore {
	return &TextStore{blob: blob, offs: offs}
}

// Len returns the number of texts.
func (ts *TextStore) Len() int {
	if ts.parts != nil {
		return len(ts.parts)
	}
	return len(ts.offs)
}

// Get returns text id without copying.
func (ts *TextStore) Get(id int) []byte {
	if ts.parts != nil {
		return ts.parts[id]
	}
	lo := uint64(0)
	if id > 0 {
		lo = ts.offs[id-1]
	}
	hi := ts.offs[id]
	return ts.blob[lo:hi:hi]
}

// All materializes the collection as one slice per text (sharing the
// underlying bytes). Intended for bulk consumers like the word index;
// query paths should use Get.
func (ts *TextStore) All() [][]byte {
	if ts.parts != nil {
		return ts.parts
	}
	out := make([][]byte, len(ts.offs))
	for i := range out {
		out[i] = ts.Get(i)
	}
	return out
}

// SizeInBytes reports the memory footprint (content plus headers).
func (ts *TextStore) SizeInBytes() int {
	if ts.parts != nil {
		n := 0
		for _, t := range ts.parts {
			n += len(t) + 24
		}
		return n
	}
	return len(ts.blob) + 8*len(ts.offs)
}

type tagSet []uint64

func newTagSet(n int) tagSet { return make(tagSet, (n+63)/64) }
func (s tagSet) set(i int32) { s[i>>6] |= 1 << uint(i&63) }
func (s tagSet) get(i int32) bool {
	if int(i>>6) >= len(s) {
		return false
	}
	return s[i>>6]&(1<<uint(i&63)) != 0
}
func (s tagSet) or(o tagSet) {
	for i := range o {
		s[i] |= o[i]
	}
}

// Options configure document indexing.
type Options struct {
	// BuildFM builds the FM-index over the text collection. Default true.
	SkipFM bool
	// SampleRate is the FM locate sampling step l (default 64).
	SampleRate int
	// SkipPlain disables the redundant plain-text store of Section 3.4; text
	// extraction then walks the BWT.
	SkipPlain bool
	// Builder optionally overrides the FM-index rank sequence (e.g. the
	// run-length sequence for repetitive collections, Section 6.7).
	Builder fmindex.SequenceBuilder
}

// Raw is the stage-1 parse product of the staged build pipeline (package
// build): the event stream of one document flattened into plain arrays,
// before any succinct structure exists. It decouples parsing from assembly
// so the structural side (BP, tags, leaf bitmap, planner tables) and the
// text side (FM-index) can be built concurrently from one parse.
type Raw struct {
	Names  []string         // label table; reserved labels occupy ids 0..3
	NameID map[string]int32 // inverse of Names
	Parens []bool           // the parentheses sequence (true = open)
	TagIDs []int32          // 2*tag for an opening paren, 2*tag+1 for a closing
	Leaves []int            // paren positions of text leaves, ascending
	Texts  [][]byte         // the text collection, in leaf order
}

// builder accumulates the model during the parse.
type builder struct {
	raw  *Raw
	opts Options
}

// Parse indexes an XML document held in memory. It is the serial
// convenience path: ParseRaw, AssembleStructure and the FM-index build run
// back to back on the calling goroutine. Package build runs the same stages
// concurrently and memory-bounded; both produce identical documents.
func Parse(data []byte, opts Options) (*Doc, error) {
	raw, err := ParseRaw(context.Background(), data)
	if err != nil {
		return nil, err
	}
	d, err := AssembleStructure(context.Background(), raw, opts)
	if err != nil {
		return nil, err
	}
	if !opts.SkipFM {
		fm, err := fmindex.New(raw.Texts, fmindex.Options{
			SampleRate: opts.SampleRate,
			Builder:    opts.Builder,
		})
		if err != nil {
			return nil, err
		}
		d.SetFM(fm)
	}
	return d, nil
}

// ParseRaw runs the SAX parse and returns the flattened document arrays.
// Cancellation is polled inside the parser's event loop at bounded
// intervals; a failed or cancelled parse leaves no partially built state
// behind (the raw product is local until returned).
func ParseRaw(ctx context.Context, data []byte) (*Raw, error) {
	raw := &Raw{NameID: map[string]int32{}}
	b := &builder{raw: raw}
	// Pre-intern the reserved labels so their ids are stable and small.
	for _, s := range []string{RootLabel, TextLabel, AttrsLabel, AttrValLabel} {
		b.intern(s)
	}
	b.open(raw.NameID[RootLabel])
	if err := xmlparse.ParseCtx(ctx, data, b); err != nil {
		return nil, err
	}
	b.close(raw.NameID[RootLabel])
	return raw, nil
}

func (b *builder) intern(name string) int32 {
	if id, ok := b.raw.NameID[name]; ok {
		return id
	}
	id := int32(len(b.raw.Names))
	b.raw.Names = append(b.raw.Names, name)
	b.raw.NameID[name] = id
	return id
}

func (b *builder) open(tag int32) {
	b.raw.Parens = append(b.raw.Parens, true)
	b.raw.TagIDs = append(b.raw.TagIDs, 2*tag)
}

func (b *builder) close(tag int32) {
	b.raw.Parens = append(b.raw.Parens, false)
	b.raw.TagIDs = append(b.raw.TagIDs, 2*tag+1)
}

// The Handler interface (xmlparse events):

func (b *builder) StartElement(name string, attrs []xmlparse.Attr) error {
	tag := b.intern(name)
	b.open(tag)
	if len(attrs) > 0 {
		at := b.raw.NameID[AttrsLabel]
		b.open(at)
		for _, a := range attrs {
			atag := b.intern(a.Name)
			b.open(atag)
			b.textLeaf(b.raw.NameID[AttrValLabel], []byte(a.Value))
			b.close(atag)
		}
		b.close(at)
	}
	return nil
}

func (b *builder) EndElement(name string) error {
	b.close(b.raw.NameID[name])
	return nil
}

func (b *builder) Text(data []byte) error {
	// Texts must not contain the reserved terminator byte.
	if bytes.IndexByte(data, 0) >= 0 {
		data = bytes.ReplaceAll(data, []byte{0}, []byte{' '})
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	b.textLeaf(b.raw.NameID[TextLabel], cp)
	return nil
}

// textLeaf adds a leaf node carrying one text.
func (b *builder) textLeaf(tag int32, text []byte) {
	b.raw.Leaves = append(b.raw.Leaves, len(b.raw.Parens))
	b.open(tag)
	b.close(tag)
	b.raw.Texts = append(b.raw.Texts, text)
}

// AssembleStructure builds the structural side of the document from a
// stage-1 parse product: balanced parentheses, tag sequence, leaf bitmap,
// the plain-text store (unless opts.SkipPlain) and the derived per-tag
// planner tables. The FM-index is NOT built here — attach one with SetFM,
// or leave it absent for tree-only workloads. Cancellation is polled
// between the component constructors and inside the tag-table traversal;
// on error the partially assembled document is dropped, never returned.
func AssembleStructure(ctx context.Context, raw *Raw, opts Options) (*Doc, error) {
	d := &Doc{names: raw.Names, nameID: raw.NameID}
	nTags := len(d.names)

	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	d.Par = bp.NewFromBools(raw.Parens)
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	d.Tag = tags.Build(raw.TagIDs, 2*nTags)
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}

	lb := bitvec.New(len(raw.Parens))
	for _, p := range raw.Leaves {
		lb.Set(p)
	}
	lb.Build()
	d.leafB = lb
	d.nText = len(raw.Texts)

	if !opts.SkipPlain {
		d.Plain = NewTextStoreParts(raw.Texts)
	}
	if err := d.buildTagTablesCtx(ctx); err != nil {
		return nil, err
	}
	return d, nil
}

// SetFM attaches a text self-index built externally (the staged pipeline
// builds it concurrently with the structure). The index must cover exactly
// this document's text collection, in leaf order.
func (d *Doc) SetFM(fm *fmindex.Index) { d.FM = fm }

// ctxErr is the bounded-interval cancellation check shared by the assembly
// stages; a nil context never fails.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// tablePollStride is how many parenthesis positions the tag-table traversal
// visits between context polls.
const tablePollStride = 1 << 16

// RebuildTagTables recomputes the derived per-tag tables; exposed so the
// benchmark harness can time this construction component (Table IV).
func (d *Doc) RebuildTagTables() { d.buildTagTables() }

func (d *Doc) buildTagTables() { d.buildTagTablesCtx(context.Background()) }

// buildTagTablesCtx computes pureText, tag counts, and the four relative tag
// position tables by one traversal of the built structure, polling ctx
// every tablePollStride positions.
func (d *Doc) buildTagTablesCtx(ctx context.Context) error {
	nTags := len(d.names)
	d.tagCount = make([]int32, nTags)
	d.pureText = make([]bool, nTags)
	for i := range d.pureText {
		d.pureText[i] = true
	}
	d.childTags = make([]tagSet, nTags)
	d.descTags = make([]tagSet, nTags)
	d.follSibTags = make([]tagSet, nTags)
	d.follTags = make([]tagSet, nTags)
	d.minClose = make([]int32, nTags)
	d.maxOpen = make([]int32, nTags)
	for i := range d.minClose {
		d.minClose[i] = int32(1) << 30
		d.maxOpen[i] = -1
	}
	for i := 0; i < nTags; i++ {
		d.childTags[i] = newTagSet(nTags)
		d.descTags[i] = newTagSet(nTags)
		d.follSibTags[i] = newTagSet(nTags)
		d.follTags[i] = newTagSet(nTags)
	}
	textTag := d.nameID[TextLabel]
	attrsTag := d.nameID[AttrsLabel]

	type tframe struct {
		tag      int32
		desc     tagSet
		sibSeen  []int32
		textKids int
		elemKids int
	}
	var stack []tframe
	n := d.Par.Len()
	if ctx != nil && ctx.Done() == nil {
		ctx = nil // uncancellable: skip the polls
	}
	for p := 0; p < n; p++ {
		if ctx != nil && p%tablePollStride == tablePollStride-1 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if d.Par.IsOpen(p) {
			tag := d.Tag.Access(p) / 2
			d.tagCount[tag]++
			if int32(p) > d.maxOpen[tag] {
				d.maxOpen[tag] = int32(p)
			}
			if len(stack) > 0 {
				top := &stack[len(stack)-1]
				d.childTags[top.tag].set(tag)
				for _, s := range top.sibSeen {
					d.follSibTags[s].set(tag)
				}
				// keep distinct sibling tags only
				dup := false
				for _, s := range top.sibSeen {
					if s == tag {
						dup = true
						break
					}
				}
				if !dup {
					top.sibSeen = append(top.sibSeen, tag)
				}
				switch tag {
				case textTag:
					top.textKids++
				case attrsTag:
					// attributes do not affect PCDATA purity
				default:
					top.elemKids++
				}
			}
			stack = append(stack, tframe{tag: tag, desc: newTagSet(nTags)})
		} else {
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			tag := d.Tag.Access(p) / 2
			if int32(p) < d.minClose[tag] {
				d.minClose[tag] = int32(p)
			}
			d.descTags[tag].or(f.desc)
			if f.elemKids > 0 || f.textKids > 1 {
				d.pureText[tag] = false
			}
			if len(stack) > 0 {
				top := &stack[len(stack)-1]
				top.desc.or(f.desc)
				top.desc.set(tag)
			}
		}
	}
	// follTags: l' follows l iff some l' opens after some l closes.
	for l := 0; l < nTags; l++ {
		if d.tagCount[l] == 0 {
			continue
		}
		for l2 := 0; l2 < nTags; l2++ {
			if d.tagCount[l2] == 0 {
				continue
			}
			if d.maxOpen[l2] > d.minClose[l] {
				d.follTags[l].set(int32(l2))
			}
		}
	}
	return nil
}

// --- Names and tags ---

// NumTags returns the number of distinct labels (including reserved ones).
func (d *Doc) NumTags() int { return len(d.names) }

// TagName returns the label string of tag id.
func (d *Doc) TagName(id int32) string { return d.names[id] }

// TagID returns the id of a label, or -1 if the label does not occur.
func (d *Doc) TagID(name string) int32 {
	if id, ok := d.nameID[name]; ok {
		return id
	}
	return -1
}

// RootTag, TextTag, AttrsTag, AttrValTag return the reserved tag ids.
func (d *Doc) RootTag() int32    { return d.nameID[RootLabel] }
func (d *Doc) TextTag() int32    { return d.nameID[TextLabel] }
func (d *Doc) AttrsTag() int32   { return d.nameID[AttrsLabel] }
func (d *Doc) AttrValTag() int32 { return d.nameID[AttrValLabel] }

// TagCount returns the number of nodes labeled tag.
func (d *Doc) TagCount(tag int32) int {
	if tag < 0 || int(tag) >= len(d.tagCount) {
		return 0
	}
	return int(d.tagCount[tag])
}

// PureText reports whether every node labeled tag has pure PCDATA content.
func (d *Doc) PureText(tag int32) bool {
	if tag < 0 || int(tag) >= len(d.pureText) {
		return false
	}
	return d.pureText[tag]
}

// HasDescendantTag reports whether any node labeled l has a descendant
// labeled l2 (relative tag position table, Section 5.5.6).
func (d *Doc) HasDescendantTag(l, l2 int32) bool { return d.descTags[l].get(l2) }

// HasChildTag reports whether any l-node has an l2 child.
func (d *Doc) HasChildTag(l, l2 int32) bool { return d.childTags[l].get(l2) }

// HasFollowingSiblingTag reports whether any l-node has a following sibling l2.
func (d *Doc) HasFollowingSiblingTag(l, l2 int32) bool { return d.follSibTags[l].get(l2) }

// HasFollowingTag reports whether any l2-node opens after some l-node closes.
func (d *Doc) HasFollowingTag(l, l2 int32) bool { return d.follTags[l].get(l2) }

// --- Tree navigation (delegated to Par, Section 4.2.1) ---

// Root returns the synthetic & root node.
func (d *Doc) Root() int { return d.Par.Root() }

// NumNodes returns the number of tree nodes (n in the paper).
func (d *Doc) NumNodes() int { return d.Par.NumNodes() }

// Close returns the closing parenthesis position of x.
func (d *Doc) Close(x int) int { return d.Par.Close(x) }

// FirstChild, NextSibling, Parent, IsLeaf, IsAncestor, SubtreeSize, Preorder
// are the basic navigation operations.
func (d *Doc) FirstChild(x int) int     { return d.Par.FirstChild(x) }
func (d *Doc) NextSibling(x int) int    { return d.Par.NextSibling(x) }
func (d *Doc) PrevSibling(x int) int    { return d.Par.PrevSibling(x) }
func (d *Doc) Parent(x int) int         { return d.Par.Parent(x) }
func (d *Doc) IsLeaf(x int) bool        { return d.Par.IsLeaf(x) }
func (d *Doc) IsAncestor(x, y int) bool { return d.Par.IsAncestor(x, y) }
func (d *Doc) SubtreeSize(x int) int    { return d.Par.SubtreeSize(x) }
func (d *Doc) Preorder(x int) int       { return d.Par.Preorder(x) }
func (d *Doc) NodeAtPreorder(k int) int { return d.Par.NodeAtPreorder(k) }

// TagOf returns the tag id of node x.
func (d *Doc) TagOf(x int) int32 { return d.Tag.Access(x) / 2 }

// --- Connecting to tags (Section 4.2.2) ---

// SubtreeTags returns the number of nodes labeled tag in the subtree of x
// (including x itself).
func (d *Doc) SubtreeTags(x int, tag int32) int {
	c := d.Par.Close(x)
	return d.Tag.Rank(2*tag, c+1) - d.Tag.Rank(2*tag, x)
}

// TaggedDesc returns the first node (preorder) labeled tag strictly within
// the subtree of x, or Nil.
func (d *Doc) TaggedDesc(x int, tag int32) int {
	p := d.Tag.NextOccurrence(2*tag, x+1)
	if p < 0 || p > d.Par.Close(x) {
		return Nil
	}
	return p
}

// TaggedFoll returns the first node labeled tag with preorder greater than
// x's that is not in x's subtree, or Nil.
func (d *Doc) TaggedFoll(x int, tag int32) int {
	p := d.Tag.NextOccurrence(2*tag, d.Par.Close(x)+1)
	if p < 0 {
		return Nil
	}
	return p
}

// TaggedPrec returns the last node labeled tag with preorder smaller than
// x's that is not an ancestor of x, or Nil.
func (d *Doc) TaggedPrec(x int, tag int32) int {
	r := d.Tag.Rank(2*tag, x)
	for r > 0 {
		p := d.Tag.Select(2*tag, r-1)
		if !d.Par.IsAncestor(p, x) {
			return p
		}
		r--
	}
	return Nil
}

// NextInSet returns the smallest paren position q with from <= q < end whose
// entry is the opening tag of one of set's tags, or Nil. This is the
// multi-tag jump used by the automaton (Section 5.4.1).
func (d *Doc) NextInSet(set []int32, from, end int) int {
	best := Nil
	for _, t := range set {
		p := d.Tag.NextOccurrence(2*t, from)
		if p >= 0 && p < end && (best == Nil || p < best) {
			best = p
		}
	}
	return best
}

// --- Connecting text and tree (Section 4.2.3) ---

// NumTexts returns d, the number of texts.
func (d *Doc) NumTexts() int { return d.nText }

// LeafNumber returns the number of text leaves with opening paren <= x.
func (d *Doc) LeafNumber(x int) int { return d.leafB.Rank1(x + 1) }

// TextIDs returns the half-open range [lo, hi) of text identifiers that
// descend from node x (including x itself if it is a text leaf).
func (d *Doc) TextIDs(x int) (int, int) {
	return d.leafB.Rank1(x), d.leafB.Rank1(d.Par.Close(x) + 1)
}

// TextIDToNode returns the tree node (leaf) holding text id.
func (d *Doc) TextIDToNode(id int) int { return d.leafB.Select1(id) }

// NodeToTextID returns the text id of a text leaf x, or -1.
func (d *Doc) NodeToTextID(x int) int {
	if !d.leafB.Get(x) {
		return -1
	}
	return d.leafB.Rank1(x)
}

// XMLIdText returns the global preorder identifier of the node holding text
// id (Section 4.2.3).
func (d *Doc) XMLIdText(id int) int { return d.Par.Preorder(d.leafB.Select1(id)) }

// --- Text access ---

// Text returns the content of text id, preferring the plain store and
// falling back to FM-index extraction (Section 3.4).
func (d *Doc) Text(id int) []byte {
	if d.Plain != nil {
		return d.Plain.Get(id)
	}
	if d.FM != nil {
		return d.FM.Extract(id)
	}
	return nil
}

// TextValue returns the XPath string-value of node x: the concatenation of
// all descendant text nodes (# leaves), excluding attribute values
// (Section 6.6's mixed-content semantics). For an attribute-value leaf (%)
// the value is its single text.
func (d *Doc) TextValue(x int) []byte {
	lo, hi := d.TextIDs(x)
	if lo >= hi {
		return nil
	}
	tt := d.TextTag()
	if d.TagOf(x) == d.AttrValTag() {
		return d.Text(lo)
	}
	var buf bytes.Buffer
	single := []byte(nil)
	count := 0
	for id := lo; id < hi; id++ {
		leaf := d.TextIDToNode(id)
		if d.TagOf(leaf) != tt {
			continue // skip attribute values
		}
		count++
		if count == 1 {
			single = d.Text(id)
		} else {
			if count == 2 {
				buf.Write(single)
			}
			buf.Write(d.Text(id))
		}
	}
	if count <= 1 {
		return single
	}
	return buf.Bytes()
}

// --- Serialization (Section 4.3) ---

// GetText writes the text with identifier id to w.
func (d *Doc) GetText(id int, w io.Writer) error {
	_, err := w.Write(d.Text(id))
	return err
}

// GetSubtree serializes the XML content of the subtree rooted at x to w,
// reproducing tags, attributes and escaped text.
func (d *Doc) GetSubtree(x int, w io.Writer) error {
	return d.serialize(x, w)
}

func (d *Doc) serialize(x int, w io.Writer) error {
	tag := d.TagOf(x)
	switch tag {
	case d.TextTag(), d.AttrValTag():
		id := d.NodeToTextID(x)
		if id >= 0 {
			if _, err := w.Write(xmlparse.Escape(d.Text(id), false)); err != nil {
				return err
			}
		}
		return nil
	case d.RootTag():
		for c := d.FirstChild(x); c != Nil; c = d.NextSibling(c) {
			if err := d.serialize(c, w); err != nil {
				return err
			}
		}
		return nil
	case d.AttrsTag():
		return nil // handled by the parent element
	}
	name := d.TagName(tag)
	if _, err := io.WriteString(w, "<"+name); err != nil {
		return err
	}
	first := d.FirstChild(x)
	content := first
	if first != Nil && d.TagOf(first) == d.AttrsTag() {
		for a := d.FirstChild(first); a != Nil; a = d.NextSibling(a) {
			aname := d.TagName(d.TagOf(a))
			leaf := d.FirstChild(a)
			var val []byte
			if leaf != Nil {
				if id := d.NodeToTextID(leaf); id >= 0 {
					val = d.Text(id)
				}
			}
			if _, err := fmt.Fprintf(w, " %s=\"%s\"", aname, xmlparse.Escape(val, true)); err != nil {
				return err
			}
		}
		content = d.NextSibling(first)
	}
	if content == Nil {
		_, err := io.WriteString(w, "/>")
		return err
	}
	if _, err := io.WriteString(w, ">"); err != nil {
		return err
	}
	for c := content; c != Nil; c = d.NextSibling(c) {
		if err := d.serialize(c, w); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "</"+name+">")
	return err
}

// MappedBytes returns the size of the mapped buffer this document aliases
// its payloads out of, or zero when it was parsed or copy-loaded into
// private memory.
func (d *Doc) MappedBytes() int { return d.mappedBytes }

// SizeInBytes reports the in-memory footprint, split by component.
func (d *Doc) SizeInBytes() (tree, text, plain int) {
	tree = d.Par.SizeInBytes() + d.Tag.SizeInBytes() + d.leafB.SizeInBytes()
	for i := range d.childTags {
		tree += 8 * (len(d.childTags[i]) + len(d.descTags[i]) + len(d.follSibTags[i]) + len(d.follTags[i]))
	}
	if d.FM != nil {
		text = d.FM.SizeInBytes()
	}
	if d.Plain != nil {
		plain = d.Plain.SizeInBytes()
	}
	return
}
