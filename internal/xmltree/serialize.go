package xmltree

import (
	"fmt"
	"io"
	"math/bits"

	"repro/internal/bitvec"
	"repro/internal/bp"
	"repro/internal/fmindex"
	"repro/internal/persist"
	"repro/internal/tags"
)

// Index persistence (Section 6.2, Figure 8). The on-disk format is a
// persist container — magic number, format version, and one length-framed
// section per component — holding each structure's own serialization:
//
//	names   the label table
//	tree    balanced parentheses (package bp)
//	tags    the tag sequence (package tags)
//	leaves  the text-leaf bitmap and text count
//	texts   the plain text store (always present: it is the document)
//	fm      the FM-index (package fmindex), if built
//
// Loading never re-runs suffix sorting — the dominant construction cost —
// and only rebuilds linear-time directories (rank structures, tag rows,
// the per-tag planner tables), which is why loading a saved index is an
// order of magnitude faster than indexing (the Figure 8 gap). Unknown
// sections are skipped by their recorded length, and a version bump is
// reported as an error before any payload is interpreted, so future layout
// changes are detected rather than silently misread.

// Magic and version of the index container. The magic is shared with the
// CLI's format sniffing; the version is bumped on any layout change.
const (
	IndexMagic   = "SXSIGO"
	indexVersion = 2
)

// Section identifiers of the container.
const (
	secNames uint32 = iota + 1
	secTree
	secTags
	secLeaves
	secTexts
	secFM
	secTagTables
)

// ErrBadIndexFile reports a corrupted or incompatible index file. It is an
// alias of the persistence layer's corruption error, so both
// errors.Is(err, ErrBadIndexFile) and errors.Is(err, persist.ErrCorrupt)
// match.
var ErrBadIndexFile = persist.ErrCorrupt

// WriteTo serializes the index. It returns the number of bytes written.
func (d *Doc) WriteTo(w io.Writer) (int64, error) {
	fw := persist.NewFileWriter(w, IndexMagic, indexVersion)
	fw.Section(secNames, func(pw *persist.Writer) {
		pw.Int(len(d.names))
		for _, s := range d.names {
			pw.String(s)
		}
	})
	fw.Section(secTree, func(pw *persist.Writer) { d.Par.Store(pw) })
	fw.Section(secTags, func(pw *persist.Writer) { d.Tag.Store(pw) })
	fw.Section(secLeaves, func(pw *persist.Writer) {
		pw.Int(d.nText)
		d.leafB.Store(pw)
	})
	fw.Section(secTexts, func(pw *persist.Writer) {
		// One blob plus cumulative end offsets (64-bit: text collections are
		// not bounded to 2 GiB here): the loader restores the collection
		// with a single allocation and d subslices.
		pw.Int(d.nText)
		total := uint64(0)
		offs := make([]uint64, d.nText)
		for id := 0; id < d.nText; id++ {
			total += uint64(len(d.Text(id)))
			offs[id] = total
		}
		pw.Words(offs)
		pw.Uint64(total)
		for id := 0; id < d.nText; id++ {
			pw.Raw(d.Text(id))
		}
	})
	if d.FM != nil {
		fw.Section(secFM, func(pw *persist.Writer) { d.FM.Store(pw) })
	}
	fw.Section(secTagTables, func(pw *persist.Writer) { d.storeTagTables(pw) })
	return fw.Close()
}

// ReadIndex deserializes an index written by WriteTo. The plain-text store
// is kept unless opts.SkipPlain is set; opts.Builder overrides the FM rank
// sequence as in Parse; with opts.SkipFM the FM section is skipped
// entirely without being decoded.
func ReadIndex(rd io.Reader, opts Options) (*Doc, error) {
	fr, err := persist.NewFileReader(rd, IndexMagic, indexVersion)
	if err != nil {
		return nil, err
	}
	d := &Doc{nameID: map[string]int32{}}
	var texts [][]byte
	haveTexts, haveTables := false, false
	for {
		id, pr, err := fr.Next()
		if err != nil {
			return nil, err
		}
		if id == 0 {
			break
		}
		switch id {
		case secNames:
			n := pr.Int()
			if err := pr.Check(n >= 4 && n <= 1<<26, "implausible name count"); err != nil {
				return nil, err
			}
			d.names = make([]string, 0, min(n, 1<<16))
			for i := 0; i < n; i++ {
				s := pr.String()
				if pr.Err() != nil {
					return nil, pr.Err()
				}
				d.names = append(d.names, s)
				d.nameID[s] = int32(i)
			}
			if err := pr.Check(len(d.nameID) == n, "duplicate label name"); err != nil {
				return nil, err
			}
		case secTree:
			if d.Par = bp.Read(pr); d.Par == nil {
				return nil, pr.Err()
			}
		case secTags:
			if d.Tag = tags.Read(pr); d.Tag == nil {
				return nil, pr.Err()
			}
		case secLeaves:
			d.nText = pr.Int()
			if d.leafB = bitvec.ReadVector(pr); d.leafB == nil {
				return nil, pr.Err()
			}
		case secTexts:
			n := pr.Int()
			offs := pr.Words()
			total := pr.Int()
			if pr.Err() != nil {
				return nil, pr.Err()
			}
			if err := pr.Check(len(offs) == n, "text offset count mismatch"); err != nil {
				return nil, err
			}
			prev := uint64(0)
			for _, o := range offs {
				if err := pr.Check(o >= prev, "text offsets not monotone"); err != nil {
					return nil, err
				}
				prev = o
			}
			if err := pr.Check(prev == uint64(total), "text blob length mismatch"); err != nil {
				return nil, err
			}
			blob := pr.Raw(total)
			if pr.Err() != nil {
				return nil, pr.Err()
			}
			texts = make([][]byte, n)
			start := uint64(0)
			for i, o := range offs {
				texts[i] = blob[start:o:o]
				start = o
			}
			haveTexts = true
		case secFM:
			if opts.SkipFM {
				continue // skipped by section length, never decoded
			}
			fm := fmindex.Read(pr, opts.Builder)
			if fm == nil {
				return nil, pr.Err()
			}
			d.FM = fm
		case secTagTables:
			if err := d.readTagTables(pr); err != nil {
				return nil, err
			}
			haveTables = true
		default:
			// Unknown section from a future minor revision: skip.
		}
	}
	return d.assemble(texts, haveTexts, haveTables, opts)
}

// storeTagTables serializes the derived per-tag planner tables, so loading
// can skip the whole-document traversal of buildTagTables.
func (d *Doc) storeTagTables(pw *persist.Writer) {
	nTags := len(d.names)
	pw.Int(nTags)
	pw.Int32s(d.tagCount)
	pure := make([]byte, nTags)
	for i, p := range d.pureText {
		if p {
			pure[i] = 1
		}
	}
	pw.Bytes(pure)
	pw.Int32s(d.minClose)
	pw.Int32s(d.maxOpen)
	for _, tbl := range [][]tagSet{d.childTags, d.descTags, d.follSibTags, d.follTags} {
		for _, row := range tbl {
			pw.Words(row)
		}
	}
}

// readTagTables restores the tables written by storeTagTables. Dimension
// consistency against the other sections is checked in assemble.
func (d *Doc) readTagTables(pr *persist.Reader) error {
	nTags := pr.Int()
	d.tagCount = pr.Int32s()
	pure := pr.Bytes()
	d.minClose = pr.Int32s()
	d.maxOpen = pr.Int32s()
	if pr.Err() != nil {
		return pr.Err()
	}
	ok := len(d.tagCount) == nTags && len(pure) == nTags &&
		len(d.minClose) == nTags && len(d.maxOpen) == nTags
	if err := pr.Check(ok, "tag table dimensions mismatch"); err != nil {
		return err
	}
	d.pureText = make([]bool, nTags)
	for i, b := range pure {
		d.pureText[i] = b != 0
	}
	wlen := (nTags + 63) / 64
	for _, tbl := range []*[]tagSet{&d.childTags, &d.descTags, &d.follSibTags, &d.follTags} {
		rows := make([]tagSet, nTags)
		for i := range rows {
			w := pr.Words()
			if pr.Err() != nil {
				return pr.Err()
			}
			if err := pr.Check(len(w) == wlen, "tag table row width mismatch"); err != nil {
				return err
			}
			rows[i] = w
		}
		*tbl = rows
	}
	return nil
}

// assemble cross-validates the decoded sections, fills the redundant
// parts, and runs the derived-table construction.
func (d *Doc) assemble(texts [][]byte, haveTexts, haveTables bool, opts Options) (*Doc, error) {
	if d.names == nil || d.Par == nil || d.Tag == nil || d.leafB == nil || !haveTexts {
		return nil, fmt.Errorf("%w: missing a required section", ErrBadIndexFile)
	}
	n := d.Par.Len()
	ok := d.Tag.Len() == n &&
		d.Tag.NumIDs() == 2*len(d.names) &&
		d.leafB.Len() == n &&
		d.leafB.Ones() == d.nText &&
		len(texts) == d.nText
	if !ok {
		return nil, fmt.Errorf("%w: sections are inconsistent", ErrBadIndexFile)
	}
	// Every leaf position must hold an opening parenthesis. Iterate the set
	// bits directly; per-id Select1 would dominate the whole load.
	for wi, w := range d.leafB.Words() {
		for w != 0 {
			p := wi*64 + bits.TrailingZeros64(w)
			w &= w - 1
			if !d.Par.IsOpen(p) {
				return nil, fmt.Errorf("%w: text leaf at closing parenthesis", ErrBadIndexFile)
			}
		}
	}
	if !opts.SkipPlain {
		d.Plain = texts
	}
	switch {
	case d.FM != nil:
		if d.FM.NumTexts() != d.nText {
			return nil, fmt.Errorf("%w: FM-index text count mismatch", ErrBadIndexFile)
		}
	case !opts.SkipFM:
		// The file carries no FM-index but the caller wants one: rebuild it.
		fm, err := fmindex.New(texts, fmindex.Options{SampleRate: opts.SampleRate, Builder: opts.Builder})
		if err != nil {
			return nil, err
		}
		d.FM = fm
	}
	if haveTables && len(d.tagCount) == len(d.names) {
		return d, nil // the stored tables match this document's tag space
	}
	d.buildTagTables()
	return d, nil
}
