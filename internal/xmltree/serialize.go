package xmltree

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/bitvec"
	"repro/internal/bp"
	"repro/internal/fmindex"
	"repro/internal/tags"
)

// Index persistence (Section 6.2, Figure 8): the on-disk format stores the
// raw components (parenthesis bits, tag ids, texts, BWT and samples) so
// that loading only rebuilds linear-time directory structures and skips
// suffix sorting entirely. Loading is therefore much faster than indexing,
// which is the behaviour Figure 8 reports.

var indexMagic = [8]byte{'S', 'X', 'S', 'I', 'G', 'O', '0', '1'}

// ErrBadIndexFile reports a corrupted or incompatible index file.
var ErrBadIndexFile = errors.New("xmltree: bad index file")

type countWriter struct {
	w io.Writer
	n int64
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// WriteTo serializes the index. It returns the number of bytes written.
func (d *Doc) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	bw := bufio.NewWriter(cw)
	if _, err := bw.Write(indexMagic[:]); err != nil {
		return cw.n, err
	}
	// Names.
	writeInt(bw, len(d.names))
	for _, s := range d.names {
		writeBytes(bw, []byte(s))
	}
	// Parenthesis bits.
	writeInt(bw, d.Par.Len())
	writeWords(bw, parWords(d.Par))
	// Tag ids (re-materialized).
	writeInt(bw, d.Tag.Len())
	for i := 0; i < d.Tag.Len(); i++ {
		writeInt32(bw, d.Tag.Access(i))
	}
	// Leaf positions.
	writeInt(bw, d.nText)
	for id := 0; id < d.nText; id++ {
		writeInt(bw, d.leafB.Select1(id))
	}
	// Plain texts (always stored: they are the document's content).
	for id := 0; id < d.nText; id++ {
		writeBytes(bw, d.Text(id))
	}
	// FM parts.
	if d.FM != nil {
		writeInt(bw, 1)
		p := d.FM.Parts()
		writeBytes(bw, p.BWT)
		writeInt32s(bw, p.Doc)
		writeInt32s(bw, p.Lens)
		writeInt(bw, p.SampleRate)
		writeInt(bw, p.BSLen)
		writeWords(bw, p.BSWords)
		writeInt32s(bw, p.PS)
	} else {
		writeInt(bw, 0)
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

func parWords(p *bp.Parens) []uint64 {
	// The Parens bit vector is reachable through Rank/Select; re-derive the
	// raw words from bit queries to keep bp's internals private.
	n := p.Len()
	words := make([]uint64, (n+63)/64)
	for i := 0; i < n; i++ {
		if p.IsOpen(i) {
			words[i>>6] |= 1 << uint(i&63)
		}
	}
	return words
}

// ReadIndex deserializes an index written by WriteTo. The plain-text store
// is kept unless opts.SkipPlain is set; opts.Builder overrides the FM rank
// sequence as in Parse.
func ReadIndex(rd io.Reader, opts Options) (*Doc, error) {
	br := bufio.NewReader(rd)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, err
	}
	if magic != indexMagic {
		return nil, ErrBadIndexFile
	}
	d := &Doc{nameID: map[string]int32{}}
	nNames, err := readInt(br)
	if err != nil {
		return nil, err
	}
	if nNames < 4 || nNames > 1<<26 {
		return nil, ErrBadIndexFile
	}
	for i := 0; i < nNames; i++ {
		b, err := readBytes(br)
		if err != nil {
			return nil, err
		}
		d.names = append(d.names, string(b))
		d.nameID[string(b)] = int32(i)
	}
	// Parens.
	parLen, err := readInt(br)
	if err != nil {
		return nil, err
	}
	words, err := readWords(br, (parLen+63)/64)
	if err != nil {
		return nil, err
	}
	pv := bitvec.New(parLen)
	copy(pv.Words(), words)
	pv.Build()
	d.Par = bp.New(pv)
	// Tags.
	tagLen, err := readInt(br)
	if err != nil {
		return nil, err
	}
	if tagLen != parLen {
		return nil, ErrBadIndexFile
	}
	ids := make([]int32, tagLen)
	for i := range ids {
		v, err := readInt32(br)
		if err != nil {
			return nil, err
		}
		if int(v) >= 2*nNames || v < 0 {
			return nil, ErrBadIndexFile
		}
		ids[i] = v
	}
	d.Tag = tags.Build(ids, 2*nNames)
	// Leaves.
	nText, err := readInt(br)
	if err != nil {
		return nil, err
	}
	d.nText = nText
	lb := bitvec.New(parLen)
	for i := 0; i < nText; i++ {
		p, err := readInt(br)
		if err != nil {
			return nil, err
		}
		if p < 0 || p >= parLen {
			return nil, ErrBadIndexFile
		}
		lb.Set(p)
	}
	lb.Build()
	d.leafB = lb
	// Texts.
	texts := make([][]byte, nText)
	for i := range texts {
		b, err := readBytes(br)
		if err != nil {
			return nil, err
		}
		texts[i] = b
	}
	if !opts.SkipPlain {
		d.Plain = texts
	}
	// FM.
	hasFM, err := readInt(br)
	if err != nil {
		return nil, err
	}
	if hasFM == 1 {
		var p fmindex.Parts
		if p.BWT, err = readBytes(br); err != nil {
			return nil, err
		}
		if p.Doc, err = readInt32s(br); err != nil {
			return nil, err
		}
		if p.Lens, err = readInt32s(br); err != nil {
			return nil, err
		}
		if p.SampleRate, err = readInt(br); err != nil {
			return nil, err
		}
		if p.BSLen, err = readInt(br); err != nil {
			return nil, err
		}
		if p.BSWords, err = readWords(br, (p.BSLen+63)/64); err != nil {
			return nil, err
		}
		if p.PS, err = readInt32s(br); err != nil {
			return nil, err
		}
		fm, err := fmindex.NewFromParts(p, opts.Builder)
		if err != nil {
			return nil, err
		}
		d.FM = fm
	} else if !opts.SkipFM {
		// The file has no FM-index but the caller wants one: rebuild it.
		fm, err := fmindex.New(texts, fmindex.Options{SampleRate: opts.SampleRate, Builder: opts.Builder})
		if err != nil {
			return nil, err
		}
		d.FM = fm
	}
	d.buildTagTables()
	return d, nil
}

// --- primitive encoding helpers ---

func writeInt(w io.Writer, v int) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	w.Write(b[:])
}

func writeInt32(w io.Writer, v int32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(v))
	w.Write(b[:])
}

func writeBytes(w io.Writer, b []byte) {
	writeInt(w, len(b))
	w.Write(b)
}

func writeWords(w io.Writer, words []uint64) {
	writeInt(w, len(words))
	var b [8]byte
	for _, x := range words {
		binary.LittleEndian.PutUint64(b[:], x)
		w.Write(b[:])
	}
}

func writeInt32s(w io.Writer, xs []int32) {
	writeInt(w, len(xs))
	for _, x := range xs {
		writeInt32(w, x)
	}
}

func readInt(r io.Reader) (int, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	v := int64(binary.LittleEndian.Uint64(b[:]))
	if v < 0 || v > 1<<40 {
		return 0, ErrBadIndexFile
	}
	return int(v), nil
}

func readInt32(r io.Reader) (int32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return int32(binary.LittleEndian.Uint32(b[:])), nil
}

func readBytes(r io.Reader) ([]byte, error) {
	n, err := readInt(r)
	if err != nil {
		return nil, err
	}
	if n > 1<<32 {
		return nil, ErrBadIndexFile
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

func readInt32s(r io.Reader) ([]int32, error) {
	n, err := readInt(r)
	if err != nil {
		return nil, err
	}
	out := make([]int32, n)
	for i := range out {
		if out[i], err = readInt32(r); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func readWords(r io.Reader, n int) ([]uint64, error) {
	m, err := readInt(r)
	if err != nil {
		return nil, err
	}
	if m != n {
		return nil, fmt.Errorf("%w: word count %d != %d", ErrBadIndexFile, m, n)
	}
	out := make([]uint64, n)
	var b [8]byte
	for i := range out {
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return nil, err
		}
		out[i] = binary.LittleEndian.Uint64(b[:])
	}
	return out, nil
}
