package xmltree

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/bitvec"
	"repro/internal/bp"
	"repro/internal/fmindex"
	"repro/internal/persist"
	"repro/internal/tags"
)

// Index persistence (Section 6.2, Figure 8). The on-disk format is a
// persist container — magic number, format version, and one length-framed
// section per component — holding each structure's own serialization:
//
//	names   the label table
//	tree    balanced parentheses (package bp)
//	tags    the tag sequence (package tags)
//	leaves  the text-leaf bitmap and text count
//	texts   the plain text store (always present: it is the document)
//	fm      the FM-index (package fmindex), if built
//
// Loading never re-runs suffix sorting — the dominant construction cost —
// and only rebuilds linear-time directories (rank structures, tag rows,
// the per-tag planner tables), which is why loading a saved index is an
// order of magnitude faster than indexing (the Figure 8 gap). Unknown
// sections are skipped by their recorded length, and a version bump is
// reported as an error before any payload is interpreted, so future layout
// changes are detected rather than silently misread.

// Magic and version of the index container. The magic is shared with the
// CLI's format sniffing; the version is bumped on any layout change.
// Version 3 is the aligned layout: section payloads and their word/int32
// arrays sit on 8-byte file offsets, which is what lets ReadIndexMapped
// alias them straight out of a mapped file. Version 2 files (unaligned)
// keep loading through the copying ReadIndex path.
const (
	IndexMagic         = "SXSIGO"
	indexVersion       = 3
	alignedFromVersion = 3
)

// ErrNotMappable reports an index container that predates the aligned
// layout: it loads fine through ReadIndex, but cannot be aliased in place.
var ErrNotMappable = persist.ErrNotMappable

// Section identifiers of the container.
const (
	secNames uint32 = iota + 1
	secTree
	secTags
	secLeaves
	secTexts
	secFM
	secTagTables
)

// ErrBadIndexFile reports a corrupted or incompatible index file. It is an
// alias of the persistence layer's corruption error, so both
// errors.Is(err, ErrBadIndexFile) and errors.Is(err, persist.ErrCorrupt)
// match.
var ErrBadIndexFile = persist.ErrCorrupt

// WriteTo serializes the index. It returns the number of bytes written.
func (d *Doc) WriteTo(w io.Writer) (int64, error) {
	return d.WriteToVersion(w, indexVersion)
}

// WriteToVersion serializes the index as the given container version (2
// is the last unaligned layout); WriteTo always writes the newest. The
// byte stream for a given version is identical to what that version's
// writer produced, which is what the compatibility tests pin and what lets
// current builds produce indexes for older readers.
func (d *Doc) WriteToVersion(w io.Writer, version uint16) (int64, error) {
	if version < 2 || version > indexVersion {
		return 0, fmt.Errorf("xmltree: unsupported container version %d", version)
	}
	fw := persist.NewFileWriter(w, IndexMagic, version, version >= alignedFromVersion)
	fw.Section(secNames, func(pw *persist.Writer) {
		pw.Int(len(d.names))
		for _, s := range d.names {
			pw.String(s)
		}
	})
	fw.Section(secTree, func(pw *persist.Writer) { d.Par.Store(pw) })
	fw.Section(secTags, func(pw *persist.Writer) { d.Tag.Store(pw) })
	fw.Section(secLeaves, func(pw *persist.Writer) {
		pw.Int(d.nText)
		d.leafB.Store(pw)
	})
	fw.Section(secTexts, func(pw *persist.Writer) {
		// One blob plus cumulative end offsets (64-bit: text collections are
		// not bounded to 2 GiB here): the loader restores the collection
		// with a single allocation and d subslices.
		pw.Int(d.nText)
		total := uint64(0)
		offs := make([]uint64, d.nText)
		for id := 0; id < d.nText; id++ {
			total += uint64(len(d.Text(id)))
			offs[id] = total
		}
		pw.Words(offs)
		pw.Uint64(total)
		for id := 0; id < d.nText; id++ {
			pw.Raw(d.Text(id))
		}
	})
	if d.FM != nil {
		fw.Section(secFM, func(pw *persist.Writer) { d.FM.Store(pw) })
	}
	fw.Section(secTagTables, func(pw *persist.Writer) { d.storeTagTables(pw) })
	return fw.Close()
}

// ReadIndex deserializes an index written by WriteTo. The plain-text store
// is kept unless opts.SkipPlain is set; opts.Builder overrides the FM rank
// sequence as in Parse; with opts.SkipFM the FM section is skipped
// entirely without being decoded.
func ReadIndex(rd io.Reader, opts Options) (*Doc, error) {
	fr, err := persist.NewFileReader(rd, IndexMagic, indexVersion, alignedFromVersion)
	if err != nil {
		return nil, err
	}
	return readSections(func() (uint32, persist.Source, error) { return fr.Next() }, opts)
}

// ReadIndexMapped deserializes an index out of data — typically an mmap'd
// file — aliasing the word, int32 and text payloads in place instead of
// copying them. Only the derived directories (rank/select structures, the
// BP range-min-max tree, planner tables) are built in private memory, so
// opening is O(derived structures) and the payload pages stay shared with
// the OS page cache.
//
// data must be 8-byte aligned at its base (mmap regions and
// persist.AlignedBuffer both are) and must stay alive and unchanged for
// the whole lifetime of the returned Doc; the Doc must be treated as
// read-only even more strictly than usual, since its slices may point into
// read-only pages. Containers older than the aligned layout return
// ErrNotMappable — load those through ReadIndex.
func ReadIndexMapped(data []byte, opts Options) (*Doc, error) {
	mf, err := persist.OpenMappedContainer(data, IndexMagic, indexVersion, alignedFromVersion)
	if err != nil {
		return nil, err
	}
	// Walking the container is just slicing, so collect the sections first
	// and decode them concurrently: every known section writes disjoint
	// parts of the document, and on a mapped load the per-section work is
	// pure derived-directory construction, which is what dominates the open
	// latency. Duplicate sections are rejected up front — the writer never
	// produces them, and rejecting is what makes the disjointness hold.
	type sect struct {
		id uint32
		mr *persist.MReader
	}
	var sects []sect
	var seen [secTagTables + 1]bool
	for {
		id, mr, err := mf.Next()
		if err != nil {
			return nil, err
		}
		if id == 0 {
			break
		}
		if id > secTagTables {
			continue // unknown section from a future minor revision: skip
		}
		if seen[id] {
			return nil, fmt.Errorf("%w: duplicate section %d", ErrBadIndexFile, id)
		}
		seen[id] = true
		sects = append(sects, sect{id, mr})
	}
	sd := &sectionDecoder{d: &Doc{nameID: map[string]int32{}}, opts: opts}
	errs := make([]error, len(sects))
	var wg sync.WaitGroup
	for i, s := range sects {
		wg.Add(1)
		go func(i int, s sect) {
			defer wg.Done()
			defer func() {
				// The no-panic contract of the loaders is tested, but a slipped
				// panic must surface as a load error, not kill the process from
				// a bare goroutine.
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("%w: section %d: %v", ErrBadIndexFile, s.id, r)
				}
			}()
			errs[i] = sd.decode(s.id, s.mr)
		}(i, s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	d, err := sd.d.assemble(sd.texts, sd.haveTexts, sd.haveTables, opts)
	if err != nil {
		return nil, err
	}
	d.mappedBytes = len(data)
	return d, nil
}

// readSections decodes the container sections delivered by next,
// sequentially, and assembles the document: the streaming body of
// ReadIndex. The mapped path runs the same sectionDecoder concurrently.
func readSections(next func() (uint32, persist.Source, error), opts Options) (*Doc, error) {
	sd := &sectionDecoder{d: &Doc{nameID: map[string]int32{}}, opts: opts}
	for {
		id, pr, err := next()
		if err != nil {
			return nil, err
		}
		if id == 0 {
			break
		}
		if err := sd.decode(id, pr); err != nil {
			return nil, err
		}
	}
	return sd.d.assemble(sd.texts, sd.haveTexts, sd.haveTables, opts)
}

// sectionDecoder accumulates the decoded sections. Each section id writes
// its own fields only, which is what lets the mapped path decode sections
// in parallel without locks.
type sectionDecoder struct {
	d          *Doc
	opts       Options
	texts      *TextStore
	haveTexts  bool
	haveTables bool
}

func (sd *sectionDecoder) decode(id uint32, pr persist.Source) error {
	d := sd.d
	switch id {
	case secNames:
		n := pr.Int()
		if err := pr.Check(n >= 4 && n <= 1<<26, "implausible name count"); err != nil {
			return err
		}
		d.names = make([]string, 0, min(n, 1<<16))
		for i := 0; i < n; i++ {
			s := pr.String()
			if pr.Err() != nil {
				return pr.Err()
			}
			d.names = append(d.names, s)
			d.nameID[s] = int32(i)
		}
		if err := pr.Check(len(d.nameID) == n, "duplicate label name"); err != nil {
			return err
		}
	case secTree:
		if d.Par = bp.Read(pr); d.Par == nil {
			return pr.Err()
		}
	case secTags:
		if d.Tag = tags.Read(pr); d.Tag == nil {
			return pr.Err()
		}
	case secLeaves:
		d.nText = pr.Int()
		if d.leafB = bitvec.ReadVector(pr); d.leafB == nil {
			return pr.Err()
		}
	case secTexts:
		return sd.decodeTexts(pr)
	case secFM:
		if sd.opts.SkipFM {
			return nil // skipped by section length, never decoded
		}
		fm := fmindex.Read(pr, sd.opts.Builder)
		if fm == nil {
			return pr.Err()
		}
		d.FM = fm
	case secTagTables:
		if err := d.readTagTables(pr); err != nil {
			return err
		}
		sd.haveTables = true
	default:
		// Unknown section from a future minor revision: skip.
	}
	return nil
}

// decodeTexts restores the text collection: one blob plus cumulative end
// offsets, both aliasing the buffer on a mapped source, wrapped in a lazy
// TextStore — no per-text headers are materialized. The only per-text
// cost left is the monotonicity validation (Get's slicing depends on it),
// chunked across the CPUs since millions of texts are normal.
func (sd *sectionDecoder) decodeTexts(pr persist.Source) error {
	n := pr.Int()
	offs := pr.Words()
	total := pr.Int()
	if pr.Err() != nil {
		return pr.Err()
	}
	if err := pr.Check(len(offs) == n, "text offset count mismatch"); err != nil {
		return err
	}
	last := uint64(0)
	if n > 0 {
		last = offs[n-1]
	}
	if err := pr.Check(last == uint64(total), "text blob length mismatch"); err != nil {
		return err
	}
	blob := pr.Raw(total)
	if pr.Err() != nil {
		return pr.Err()
	}
	var bad atomic.Bool
	persist.Chunked(pr, n, func(lo, hi int) {
		prev := uint64(0)
		if lo > 0 {
			prev = offs[lo-1]
		}
		for i := lo; i < hi; i++ {
			// A chunk's seed offset is validated by its left neighbor; within
			// the chunk the comparison chain establishes prev <= o <= total.
			o := offs[i]
			if o < prev {
				bad.Store(true)
				return
			}
			prev = o
		}
	})
	if err := pr.Check(!bad.Load(), "text offsets not monotone"); err != nil {
		return err
	}
	sd.texts = NewTextStoreBlob(blob, offs)
	sd.haveTexts = true
	return nil
}

// storeTagTables serializes the derived per-tag planner tables, so loading
// can skip the whole-document traversal of buildTagTables.
func (d *Doc) storeTagTables(pw *persist.Writer) {
	nTags := len(d.names)
	pw.Int(nTags)
	pw.Int32s(d.tagCount)
	pure := make([]byte, nTags)
	for i, p := range d.pureText {
		if p {
			pure[i] = 1
		}
	}
	pw.Bytes(pure)
	pw.Int32s(d.minClose)
	pw.Int32s(d.maxOpen)
	for _, tbl := range [][]tagSet{d.childTags, d.descTags, d.follSibTags, d.follTags} {
		for _, row := range tbl {
			pw.Words(row)
		}
	}
}

// readTagTables restores the tables written by storeTagTables. Dimension
// consistency against the other sections is checked in assemble.
func (d *Doc) readTagTables(pr persist.Source) error {
	nTags := pr.Int()
	d.tagCount = pr.Int32s()
	pure := pr.Bytes()
	d.minClose = pr.Int32s()
	d.maxOpen = pr.Int32s()
	if pr.Err() != nil {
		return pr.Err()
	}
	ok := len(d.tagCount) == nTags && len(pure) == nTags &&
		len(d.minClose) == nTags && len(d.maxOpen) == nTags
	if err := pr.Check(ok, "tag table dimensions mismatch"); err != nil {
		return err
	}
	d.pureText = make([]bool, nTags)
	for i, b := range pure {
		d.pureText[i] = b != 0
	}
	wlen := (nTags + 63) / 64
	for _, tbl := range []*[]tagSet{&d.childTags, &d.descTags, &d.follSibTags, &d.follTags} {
		rows := make([]tagSet, nTags)
		for i := range rows {
			w := pr.Words()
			if pr.Err() != nil {
				return pr.Err()
			}
			if err := pr.Check(len(w) == wlen, "tag table row width mismatch"); err != nil {
				return err
			}
			rows[i] = w
		}
		*tbl = rows
	}
	return nil
}

// assemble cross-validates the decoded sections, fills the redundant
// parts, and runs the derived-table construction.
func (d *Doc) assemble(texts *TextStore, haveTexts, haveTables bool, opts Options) (*Doc, error) {
	if d.names == nil || d.Par == nil || d.Tag == nil || d.leafB == nil || !haveTexts {
		return nil, fmt.Errorf("%w: missing a required section", ErrBadIndexFile)
	}
	n := d.Par.Len()
	ok := d.Tag.Len() == n &&
		d.Tag.NumIDs() == 2*len(d.names) &&
		d.leafB.Len() == n &&
		d.leafB.Ones() == d.nText &&
		texts.Len() == d.nText
	if !ok {
		return nil, fmt.Errorf("%w: sections are inconsistent", ErrBadIndexFile)
	}
	// Every leaf position must hold an opening parenthesis: word-parallel,
	// every leaf bit must also be set in the parenthesis vector. (Both
	// vectors have length n, so the word arrays line up; per-position
	// IsOpen — let alone per-id Select1 — would dominate the whole load.)
	parWords := d.Par.BitWords()
	for wi, w := range d.leafB.Words() {
		if w&^parWords[wi] != 0 {
			return nil, fmt.Errorf("%w: text leaf at closing parenthesis", ErrBadIndexFile)
		}
	}
	if !opts.SkipPlain {
		d.Plain = texts
	}
	switch {
	case d.FM != nil:
		if d.FM.NumTexts() != d.nText {
			return nil, fmt.Errorf("%w: FM-index text count mismatch", ErrBadIndexFile)
		}
	case !opts.SkipFM:
		// The file carries no FM-index but the caller wants one: rebuild it.
		fm, err := fmindex.New(texts.All(), fmindex.Options{SampleRate: opts.SampleRate, Builder: opts.Builder})
		if err != nil {
			return nil, err
		}
		d.FM = fm
	}
	if haveTables && len(d.tagCount) == len(d.names) {
		return d, nil // the stored tables match this document's tag space
	}
	d.buildTagTables()
	return d, nil
}
