package xmltree

import (
	"bytes"
	"errors"
	"testing"
)

const serializeDoc = `<lib genre="mixed"><book id="b1"><title>Gold Ring</title>` +
	`<author>A. Writer</author></book><book id="b2"><title>Silver Band</title>` +
	`</book><note>due &amp; paid</note></lib>`

func mustParse(t *testing.T, opts Options) *Doc {
	t.Helper()
	d, err := Parse([]byte(serializeDoc), opts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func saveBytes(t *testing.T, d *Doc) []byte {
	t.Helper()
	var buf bytes.Buffer
	n, err := d.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	return buf.Bytes()
}

// checkDocsEqual compares the observable behaviour of two docs.
func checkDocsEqual(t *testing.T, a, b *Doc) {
	t.Helper()
	if a.NumNodes() != b.NumNodes() || a.NumTexts() != b.NumTexts() || a.NumTags() != b.NumTags() {
		t.Fatal("dimensions differ")
	}
	for id := int32(0); int(id) < a.NumTags(); id++ {
		if a.TagName(id) != b.TagName(id) || a.TagCount(id) != b.TagCount(id) ||
			a.PureText(id) != b.PureText(id) {
			t.Fatalf("tag %d differs", id)
		}
		for id2 := int32(0); int(id2) < a.NumTags(); id2++ {
			if a.HasDescendantTag(id, id2) != b.HasDescendantTag(id, id2) ||
				a.HasChildTag(id, id2) != b.HasChildTag(id, id2) ||
				a.HasFollowingSiblingTag(id, id2) != b.HasFollowingSiblingTag(id, id2) ||
				a.HasFollowingTag(id, id2) != b.HasFollowingTag(id, id2) {
				t.Fatalf("tag tables differ at (%d,%d)", id, id2)
			}
		}
	}
	for x := 0; x < a.Par.Len(); x++ {
		if a.Par.IsOpen(x) != b.Par.IsOpen(x) || a.Tag.Access(x) != b.Tag.Access(x) {
			t.Fatalf("structure differs at %d", x)
		}
	}
	for id := 0; id < a.NumTexts(); id++ {
		if !bytes.Equal(a.Text(id), b.Text(id)) {
			t.Fatalf("text %d differs", id)
		}
		if a.TextIDToNode(id) != b.TextIDToNode(id) {
			t.Fatalf("leaf %d differs", id)
		}
	}
	var s1, s2 bytes.Buffer
	if err := a.GetSubtree(a.Root(), &s1); err != nil {
		t.Fatal(err)
	}
	if err := b.GetSubtree(b.Root(), &s2); err != nil {
		t.Fatal(err)
	}
	if s1.String() != s2.String() {
		t.Fatalf("serialization differs:\n%s\n%s", s1.String(), s2.String())
	}
}

func TestDocSaveLoadRoundTrip(t *testing.T) {
	d := mustParse(t, Options{SampleRate: 4})
	data := saveBytes(t, d)
	got, err := ReadIndex(bytes.NewReader(data), Options{SampleRate: 4})
	if err != nil {
		t.Fatal(err)
	}
	checkDocsEqual(t, d, got)
	if got.FM == nil {
		t.Fatal("FM-index not restored")
	}
	// FM answers must match.
	for _, p := range []string{"Gold", "Ring", "Writer", "zzz"} {
		if len(d.FM.Contains([]byte(p))) != len(got.FM.Contains([]byte(p))) {
			t.Fatalf("FM Contains(%q)", p)
		}
	}
}

func TestDocSaveLoadSkipVariants(t *testing.T) {
	d := mustParse(t, Options{SampleRate: 4})
	data := saveBytes(t, d)

	// SkipFM: the FM section must be skipped, not decoded.
	noFM, err := ReadIndex(bytes.NewReader(data), Options{SkipFM: true})
	if err != nil {
		t.Fatal(err)
	}
	if noFM.FM != nil {
		t.Fatal("FM present despite SkipFM")
	}
	checkDocsEqual(t, d, noFM) // Text falls back to the plain store

	// SkipPlain: texts come from the FM-index.
	noPlain, err := ReadIndex(bytes.NewReader(data), Options{SkipPlain: true})
	if err != nil {
		t.Fatal(err)
	}
	if noPlain.Plain != nil {
		t.Fatal("plain store present despite SkipPlain")
	}
	checkDocsEqual(t, d, noPlain)

	// A file saved without FM, loaded with FM wanted: rebuild.
	dNoFM := mustParse(t, Options{SkipFM: true, SampleRate: 4})
	data2 := saveBytes(t, dNoFM)
	rebuilt, err := ReadIndex(bytes.NewReader(data2), Options{SampleRate: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.FM == nil {
		t.Fatal("FM not rebuilt")
	}
	checkDocsEqual(t, d, rebuilt)
}

func TestReadIndexCorrupt(t *testing.T) {
	d := mustParse(t, Options{SampleRate: 4})
	data := saveBytes(t, d)

	// Every truncation yields a clean error, never a panic.
	for cut := 0; cut < len(data); cut++ {
		if _, err := ReadIndex(bytes.NewReader(data[:cut]), Options{}); err == nil {
			t.Fatalf("cut=%d: no error", cut)
		} else if !errors.Is(err, ErrBadIndexFile) {
			t.Fatalf("cut=%d: %v", cut, err)
		}
	}

	// Wrong magic.
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := ReadIndex(bytes.NewReader(bad), Options{}); !errors.Is(err, ErrBadIndexFile) {
		t.Fatalf("bad magic: %v", err)
	}

	// Future version.
	bad = append([]byte(nil), data...)
	bad[len(IndexMagic)] = 0xFF
	if _, err := ReadIndex(bytes.NewReader(bad), Options{}); !errors.Is(err, ErrBadIndexFile) {
		t.Fatalf("future version: %v", err)
	}

	// Single-byte corruption anywhere must not panic; it may legitimately
	// go unnoticed (e.g. inside text content), but any failure must be the
	// typed error.
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xFF
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("byte %d: panic %v", i, r)
				}
			}()
			_, err := ReadIndex(bytes.NewReader(mut), Options{})
			if err != nil && !errors.Is(err, ErrBadIndexFile) {
				t.Fatalf("byte %d: unexpected error %v", i, err)
			}
		}()
	}
}

func TestReadIndexMissingSection(t *testing.T) {
	// A header with no sections at all: magic + version + end marker.
	var buf bytes.Buffer
	buf.WriteString(IndexMagic)
	buf.Write([]byte{2, 0})       // version 2, little-endian
	buf.Write([]byte{0, 0, 0, 0}) // end marker
	if _, err := ReadIndex(bytes.NewReader(buf.Bytes()), Options{}); !errors.Is(err, ErrBadIndexFile) {
		t.Fatalf("missing sections: %v", err)
	}
}
