package xmltree

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/persist"
)

// mappedBytesOf saves d and reloads it through the mapped path.
func mappedBytesOf(t *testing.T, d *Doc) []byte {
	t.Helper()
	return persist.EnsureAligned(saveBytes(t, d))
}

// TestReadIndexMappedRoundTrip: a mapped load must behave identically to
// the parsed original, across every observable of checkDocsEqual.
func TestReadIndexMappedRoundTrip(t *testing.T) {
	d := mustParse(t, Options{SampleRate: 4})
	got, err := ReadIndexMapped(mappedBytesOf(t, d), Options{SampleRate: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got.MappedBytes() == 0 {
		t.Fatal("mapped load reports no mapped bytes")
	}
	checkDocsEqual(t, d, got)
}

// TestReadIndexMappedSkipVariants: the option combinations of the copying
// loader behave the same on the mapped one.
func TestReadIndexMappedSkipVariants(t *testing.T) {
	d := mustParse(t, Options{SampleRate: 4})
	data := mappedBytesOf(t, d)
	for _, opts := range []Options{
		{SkipFM: true},
		{SkipPlain: true, SampleRate: 4},
		{SampleRate: 4},
	} {
		got, err := ReadIndexMapped(data, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if opts.SkipFM && got.FM != nil {
			t.Fatal("FM built despite SkipFM")
		}
		if opts.SkipPlain && got.Plain != nil {
			t.Fatal("plain store kept despite SkipPlain")
		}
		var s1, s2 bytes.Buffer
		if err := d.GetSubtree(d.Root(), &s1); err != nil {
			t.Fatal(err)
		}
		if err := got.GetSubtree(got.Root(), &s2); err != nil {
			t.Fatal(err)
		}
		if s1.String() != s2.String() {
			t.Fatalf("%+v: serialization differs", opts)
		}
	}
}

// TestReadIndexMappedCorrupt mirrors TestReadIndexCorrupt on the mapped
// path: every truncation and every single-byte corruption must either
// load or fail with the typed error — no panics, no out-of-bounds reads
// on short maps.
func TestReadIndexMappedCorrupt(t *testing.T) {
	d := mustParse(t, Options{SampleRate: 4})
	data := mappedBytesOf(t, d)

	for cut := 0; cut < len(data); cut++ {
		if _, err := ReadIndexMapped(persist.EnsureAligned(data[:cut]), Options{}); err == nil {
			t.Fatalf("cut=%d: no error", cut)
		} else if !errors.Is(err, ErrBadIndexFile) {
			t.Fatalf("cut=%d: %v", cut, err)
		}
	}

	for i := range data {
		mut := persist.EnsureAligned(append([]byte(nil), data...))
		mut[i] ^= 0xFF
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("byte %d: panic %v", i, r)
				}
			}()
			_, err := ReadIndexMapped(mut, Options{})
			if err != nil && !errors.Is(err, ErrBadIndexFile) && !errors.Is(err, ErrNotMappable) {
				t.Fatalf("byte %d: unexpected error %v", i, err)
			}
		}()
	}
}

// TestOldVersionLoadsViaCopyingPath: a version-2 (pre-alignment) file
// loads through ReadIndex and is refused, typed, by ReadIndexMapped.
func TestOldVersionLoadsViaCopyingPath(t *testing.T) {
	d := mustParse(t, Options{SampleRate: 4})
	var old bytes.Buffer
	if _, err := d.WriteToVersion(&old, 2); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIndex(bytes.NewReader(old.Bytes()), Options{SampleRate: 4})
	if err != nil {
		t.Fatal(err)
	}
	checkDocsEqual(t, d, got)

	if _, err := ReadIndexMapped(persist.EnsureAligned(old.Bytes()), Options{}); !errors.Is(err, ErrNotMappable) {
		t.Fatalf("v2 mapped: want ErrNotMappable, got %v", err)
	}

	// The v2 stream must be smaller than or equal to v3 minus its padding:
	// same sections, no alignment. Sanity-check the versions actually differ.
	if bytes.Equal(old.Bytes(), saveBytes(t, d)) {
		t.Fatal("v2 and v3 streams are identical; alignment not active")
	}
}

// TestResaveByteIdentical: load → save → load → save must be a fixed
// point, through the copying path, through the mapped path, and starting
// from a v2 file — proving old files survive the upgrade losslessly.
func TestResaveByteIdentical(t *testing.T) {
	d := mustParse(t, Options{SampleRate: 4})
	first := saveBytes(t, d)

	viaCopy, err := ReadIndex(bytes.NewReader(first), Options{SampleRate: 4})
	if err != nil {
		t.Fatal(err)
	}
	if second := saveBytes(t, viaCopy); !bytes.Equal(first, second) {
		t.Fatal("copy-loaded re-save differs")
	}

	viaMap, err := ReadIndexMapped(persist.EnsureAligned(first), Options{SampleRate: 4})
	if err != nil {
		t.Fatal(err)
	}
	if second := saveBytes(t, viaMap); !bytes.Equal(first, second) {
		t.Fatal("mapped re-save differs")
	}

	var old bytes.Buffer
	if _, err := d.WriteToVersion(&old, 2); err != nil {
		t.Fatal(err)
	}
	fromOld, err := ReadIndex(bytes.NewReader(old.Bytes()), Options{SampleRate: 4})
	if err != nil {
		t.Fatal(err)
	}
	if upgraded := saveBytes(t, fromOld); !bytes.Equal(first, upgraded) {
		t.Fatal("v2 → v3 upgrade re-save differs from a direct v3 save")
	}
	// And writing v2 again is stable too.
	var again bytes.Buffer
	if _, err := fromOld.WriteToVersion(&again, 2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(old.Bytes(), again.Bytes()) {
		t.Fatal("v2 re-save differs")
	}
}

// FuzzLoadMapped drives arbitrary bytes through the mapped loader: any
// outcome but a clean load or a typed error is a bug. Loaded documents
// get a cheap traversal to catch structures that validated but are
// inconsistent enough to fault.
func FuzzLoadMapped(f *testing.F) {
	d, err := Parse([]byte(serializeDoc), Options{SampleRate: 4})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	seed := buf.Bytes()
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add(seed[:8])
	var old bytes.Buffer
	if _, err := d.WriteToVersion(&old, 2); err != nil {
		f.Fatal(err)
	}
	f.Add(old.Bytes())
	mut := append([]byte(nil), seed...)
	mut[len(mut)/3] ^= 0x40
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := ReadIndexMapped(persist.EnsureAligned(data), Options{})
		if err != nil {
			if !errors.Is(err, ErrBadIndexFile) && !errors.Is(err, ErrNotMappable) {
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		n := 0
		for x := doc.Root(); x != Nil && n < 1<<16; x = doc.FirstChild(x) {
			doc.TagOf(x)
			n++
		}
		for id := 0; id < doc.NumTexts(); id++ {
			doc.Text(id)
		}
		var sink bytes.Buffer
		doc.GetSubtree(doc.Root(), &sink)
	})
}
