package automata

import (
	"testing"

	"repro/internal/xmltree"
)

// Tests here exercise the automata machinery directly, hand-building the
// Figure 3 automaton for /descendant::listitem/descendant::keyword[child::emph].

const listDoc = `<doc><listitem><keyword>a<emph>x</emph></keyword></listitem><listitem><keyword>plain</keyword></listitem><section><keyword><emph>y</emph></keyword></section></doc>`

func buildFig3(t *testing.T, doc *xmltree.Doc) *Automaton {
	t.Helper()
	f := NewFactory()
	a, err := NewAutomaton(4, f)
	if err != nil {
		t.Fatal(err)
	}
	li := doc.TagID("listitem")
	kw := doc.TagID("keyword")
	em := doc.TagID("emph")
	// q0, {&} -> down1 q1
	a.AddTransition(0, Finite(doc.RootTag()), f.Down1(1))
	// q1: descendant::listitem (exclusive construction)
	a.AddTransition(1, AllBut(li), f.And(f.Down1(1), f.Down2(1)))
	a.AddTransition(1, Finite(li), f.And(f.Down1(2), f.Down2(1)))
	// q2: descendant::keyword[child::emph], marking
	a.AddTransition(2, AllBut(kw), f.And(f.Down1(2), f.Down2(2)))
	a.AddTransition(2, Finite(kw), f.And(f.And(f.Mark, f.And(f.Down1(2), f.Down2(2))), f.Down1(3)))
	a.AddTransition(2, Finite(kw), f.And(f.Not(f.Down1(3)), f.And(f.Down1(2), f.Down2(2))))
	// q3: child::emph filter
	a.AddTransition(3, AllLabels, f.Down2(3))
	a.AddTransition(3, Finite(em), f.True)
	a.SetBottom(1)
	a.SetBottom(2)
	a.Start = 0
	a.Finish()
	return a
}

func TestHandBuiltFig3(t *testing.T) {
	doc, err := xmltree.Parse([]byte(listDoc), xmltree.Options{SkipFM: true})
	if err != nil {
		t.Fatal(err)
	}
	a := buildFig3(t, doc)
	for _, opts := range []Options{{}, {NoJump: true}, {NoMemo: true}, {NoEarly: true}} {
		ev := NewEvaluator(a, doc, Count, opts)
		n, _ := ev.Run()
		if n != 1 {
			t.Fatalf("opts %+v: count=%d want 1 (only the first keyword has an emph child under a listitem)", opts, n)
		}
		ev2 := NewEvaluator(a, doc, Materialize, opts)
		_, nodes := ev2.Run()
		if len(nodes) != 1 || doc.TagName(doc.TagOf(nodes[0])) != "keyword" {
			t.Fatalf("opts %+v: nodes=%v", opts, nodes)
		}
	}
}

func TestFormulaHashConsing(t *testing.T) {
	f := NewFactory()
	a := f.And(f.Down1(1), f.Down2(2))
	b := f.And(f.Down1(1), f.Down2(2))
	if a != b {
		t.Fatal("structurally equal formulas must share a pointer")
	}
	if f.And(f.True, a) != a {
		t.Fatal("And(True, x) != x")
	}
	if f.And(f.False, a) != f.False {
		t.Fatal("And(False, x) != False")
	}
	if f.Or(f.False, a) != a {
		t.Fatal("Or(False, x) != x")
	}
	if f.Not(f.Not(a)) != a {
		t.Fatal("double negation")
	}
	// Or with True must not absorb marked formulas.
	m := f.And(f.Mark, a)
	or := f.Or(f.True, m)
	if or == f.True {
		t.Fatal("Or(True, marked) must not collapse to True")
	}
	if f.Or(f.True, a) != f.True {
		t.Fatal("Or(True, mark-free) should collapse")
	}
}

func TestLabelSets(t *testing.T) {
	s := Finite(1, 5)
	if !s.Contains(1) || !s.Contains(5) || s.Contains(2) {
		t.Fatal("finite set membership")
	}
	c := AllBut(3)
	if c.Contains(3) || !c.Contains(99) {
		t.Fatal("cofinite set membership")
	}
	if !AllLabels.Contains(0) {
		t.Fatal("universal set")
	}
}

func TestMaxStates(t *testing.T) {
	if _, err := NewAutomaton(65, NewFactory()); err == nil {
		t.Fatal("must reject > 64 states")
	}
}

func TestCanMarkClosure(t *testing.T) {
	doc, _ := xmltree.Parse([]byte(listDoc), xmltree.Options{SkipFM: true})
	a := buildFig3(t, doc)
	// q0,q1,q2 can reach a mark; q3 cannot.
	if a.canMark>>0&1 != 1 || a.canMark>>1&1 != 1 || a.canMark>>2&1 != 1 {
		t.Fatalf("canMark=%b", a.canMark)
	}
	if a.canMark>>3&1 != 0 {
		t.Fatalf("filter state must not mark: %b", a.canMark)
	}
}

func TestStatsCounting(t *testing.T) {
	doc, _ := xmltree.Parse([]byte(listDoc), xmltree.Options{SkipFM: true})
	a := buildFig3(t, doc)
	ev := NewEvaluator(a, doc, Count, Options{})
	ev.Run()
	if ev.Stats.Visited <= 0 {
		t.Fatal("visited not tracked")
	}
	if ev.Stats.Visited >= int64(doc.NumNodes()) {
		t.Fatalf("jumping should visit < all nodes: %d >= %d", ev.Stats.Visited, doc.NumNodes())
	}
}

func TestEmptyDocRun(t *testing.T) {
	doc, _ := xmltree.Parse([]byte("<a/>"), xmltree.Options{SkipFM: true})
	f := NewFactory()
	a, _ := NewAutomaton(2, f)
	a.AddTransition(0, Finite(doc.RootTag()), f.Down1(1))
	nosuch := AllBut() // matches everything; but transition needs a real tag
	_ = nosuch
	a.AddTransition(1, AllLabels, f.And(f.Down1(1), f.Down2(1)))
	a.SetBottom(1)
	a.Finish()
	ev := NewEvaluator(a, doc, Count, Options{})
	n, _ := ev.Run()
	if n != 0 {
		t.Fatalf("count=%d", n)
	}
}
