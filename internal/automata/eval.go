package automata

import (
	"context"
	"sort"

	"repro/internal/xmltree"
)

// Mode selects the result semantics (Section 5.5.3).
type Mode uint8

const (
	// Count replaces result sets by integer counters.
	Count Mode = iota
	// Materialize builds the result node sequence (with lazy segments,
	// Section 5.5.4).
	Materialize
)

// Options toggle the optimizations of Sections 5.4.1 and 5.5 (the axes of
// the Figure 12 ablation).
type Options struct {
	NoJump  bool // disable jumping to relevant nodes
	NoMemo  bool // disable JIT memoization of transition computations
	NoEarly bool // disable early (partial) formula evaluation
	NoLazy  bool // disable lazy result sets / SubtreeTags counting
}

// Stats reports evaluation effort (Figure 13).
type Stats struct {
	Visited int64 // nodes on which transitions were evaluated
	Marked  int64 // nodes marked during the run
}

// Res is a per-state result value: a counter in Count mode, a lazy node
// sequence in Materialize mode.
type Res struct {
	count int64
	seq   *Seq
}

// Seq is an O(1)-concatenation sequence of marked nodes; lazy segments
// stand for "every occurrence of these tags in [from, end)".
type Seq struct {
	kind      uint8 // 0 leaf, 1 cat, 2 lazy
	node      int
	l, r      *Seq
	from, end int
	tags      []int32
}

const (
	seqLeaf = iota
	seqCat
	seqLazy
)

// Expand materializes the sequence as sorted, distinct node positions.
func (s *Seq) Expand(doc *xmltree.Doc) []int {
	var out []int
	var walk func(*Seq)
	walk = func(n *Seq) {
		if n == nil {
			return
		}
		switch n.kind {
		case seqLeaf:
			out = append(out, n.node)
		case seqCat:
			walk(n.l)
			walk(n.r)
		case seqLazy:
			for _, t := range n.tags {
				for p := doc.Tag.NextOccurrence(2*t, n.from); p >= 0 && p < n.end; p = doc.Tag.NextOccurrence(2*t, p+1) {
					out = append(out, p)
				}
			}
		}
	}
	walk(s)
	sort.Ints(out)
	// adjacent duplicates can only arise from overlapping transitions
	out = dedupSorted(out)
	return out
}

func dedupSorted(a []int) []int {
	if len(a) < 2 {
		return a
	}
	w := 1
	for i := 1; i < len(a); i++ {
		if a[i] != a[w-1] {
			a[w] = a[i]
			w++
		}
	}
	return a[:w]
}

// runRes maps satisfiable states to their result values.
type runRes struct {
	sat  uint64
	vals []Res // indexed by state; only entries of sat are meaningful
}

// Evaluator runs an automaton over a document.
type Evaluator struct {
	A    *Automaton
	Doc  *xmltree.Doc
	Mode Mode
	Opts Options

	Stats Stats

	// JIT tables (Section 5.5.2): instruction cache keyed by
	// (state set, label), and jump info keyed by state set.
	instrCache map[instrKey]*instr
	jumpCache  map[uint64]*jumpInfo

	// freelist of vals slices: child results are copied by value into the
	// parent's result, so their slices can be recycled immediately.
	valsPool [][]Res

	// Cancellation state for RunContext: the recursive run polls ctxDone
	// every few visited nodes and unwinds with a runCancelled panic, since
	// threading an error through the deep recursion would cost on every
	// frame of the hot path.
	ctx     context.Context
	ctxDone <-chan struct{}
}

// runCancelled is the panic sentinel RunContext recovers.
type runCancelled struct{ err error }

type instrKey struct {
	q   uint64
	tag int32
}

// instr is the memoized "compiled" behaviour for a (state set, label) pair.
type instr struct {
	pairs  []statePhi
	q1, q2 uint64
	// markFree{1,2}: no state requested downward in that direction can
	// produce marks, enabling early formula evaluation (Section 5.5.5).
	markFree1, markFree2 bool
}

type statePhi struct {
	q   int
	phi *Formula
}

// jumpInfo is the per-state-set jumpability analysis (Section 5.4.1).
type jumpInfo struct {
	jumpable  bool
	triggers  []int32
	collector bool // all states are collectors: lazy sets apply
}

// NewEvaluator binds an automaton to a document.
func NewEvaluator(a *Automaton, doc *xmltree.Doc, mode Mode, opts Options) *Evaluator {
	return &Evaluator{
		A: a, Doc: doc, Mode: mode, Opts: opts,
		instrCache: map[instrKey]*instr{},
		jumpCache:  map[uint64]*jumpInfo{},
	}
}

// RunContext is Run with cancellation: when ctx is cancelled the run stops
// at the next visit poll (every 64 visited nodes) and the context's error
// is returned. An evaluator whose run was cancelled must not be reused —
// its Stats are partial and its pools may hold live slices.
func (ev *Evaluator) RunContext(ctx context.Context) (n int64, nodes []int, err error) {
	if ctx != nil && ctx.Done() != nil {
		if err := ctx.Err(); err != nil {
			return 0, nil, err
		}
		ev.ctx, ev.ctxDone = ctx, ctx.Done()
		defer func() {
			ev.ctx, ev.ctxDone = nil, nil
			if r := recover(); r != nil {
				rc, ok := r.(runCancelled)
				if !ok {
					panic(r)
				}
				n, nodes, err = 0, nil, rc.err
			}
		}()
	}
	n, nodes = ev.Run()
	return n, nodes, nil
}

// Run evaluates the automaton from the document root and returns the marks
// of the start state. In Count mode the returned slice is nil and the count
// is the first return value.
func (ev *Evaluator) Run() (int64, []int) {
	root := ev.Doc.Root()
	if root == xmltree.Nil {
		return 0, nil
	}
	end := ev.Doc.Close(root) + 1
	r := ev.run(1<<uint(ev.A.Start), root, end)
	q := ev.A.Start
	if r.sat>>uint(q)&1 == 0 {
		return 0, nil
	}
	if ev.Mode == Count {
		return r.vals[q].count, nil
	}
	return 0, r.vals[q].seq.Expand(ev.Doc)
}

func (ev *Evaluator) base(q uint64) runRes {
	return runRes{sat: q & ev.A.Bottom, vals: ev.allocVals()}
}

func (ev *Evaluator) allocVals() []Res {
	if n := len(ev.valsPool); n > 0 {
		v := ev.valsPool[n-1]
		ev.valsPool = ev.valsPool[:n-1]
		for i := range v {
			v[i] = Res{}
		}
		return v
	}
	return make([]Res, ev.A.NumStates)
}

func (ev *Evaluator) freeVals(r *runRes) {
	if r.vals != nil {
		ev.valsPool = append(ev.valsPool, r.vals)
		r.vals = nil
	}
}

// run evaluates the region [pos, end): the sequence of sibling subtrees
// starting at node pos, bounded by end.
func (ev *Evaluator) run(q uint64, pos, end int) runRes {
	if q == 0 {
		return runRes{vals: ev.allocVals()}
	}
	if pos == xmltree.Nil || pos >= end {
		return ev.base(q)
	}
	doc := ev.Doc
	// A jumped (flattened) region can resume at a closing parenthesis — a
	// "level pop". Chain-scanning states (LoopRight/LoopNone) end their run
	// there as if at Nil; transparent loop states continue past it.
	for !doc.Par.IsOpen(pos) {
		if dead := q &^ ev.A.Transparent(); dead != 0 {
			r := ev.run(q&^dead, pos+1, end)
			r.sat |= dead & ev.A.Bottom
			return r
		}
		pos++
		if pos >= end {
			return ev.base(q)
		}
	}
	if !ev.Opts.NoJump {
		ji := ev.jumpInfo(q)
		if ji.jumpable {
			if ji.collector && !ev.Opts.NoLazy {
				return ev.collect(q, ji, pos, end)
			}
			pos = doc.NextInSet(ji.triggers, pos, end)
			if pos == xmltree.Nil {
				return ev.base(q)
			}
		}
	}
	ev.Stats.Visited++
	if ev.ctxDone != nil && ev.Stats.Visited&63 == 0 {
		select {
		case <-ev.ctxDone:
			panic(runCancelled{ev.ctx.Err()})
		default:
		}
	}
	inst := ev.instruction(q, doc.TagOf(pos))
	cl := doc.Close(pos)

	if !ev.Opts.NoEarly && inst.markFree1 && inst.markFree2 {
		if r, ok := ev.evalInstr(inst, q, pos, nil, nil); ok {
			return r
		}
	}
	r1 := ev.run(inst.q1, pos+1, cl)
	if !ev.Opts.NoEarly && inst.markFree2 {
		if r, ok := ev.evalInstr(inst, q, pos, &r1, nil); ok {
			ev.freeVals(&r1)
			return r
		}
	}
	r2 := ev.run(inst.q2, cl+1, end)
	r, _ := ev.evalInstr(inst, q, pos, &r1, &r2)
	ev.freeVals(&r1)
	ev.freeVals(&r2)
	return r
}

// collect implements the lazy result set / constant-time subtree counting
// of Section 5.5.4 for collector state sets.
func (ev *Evaluator) collect(q uint64, ji *jumpInfo, pos, end int) runRes {
	r := ev.base(q)
	var total int64
	for _, t := range ji.triggers {
		total += int64(ev.Doc.Tag.Rank(2*t, end) - ev.Doc.Tag.Rank(2*t, pos))
	}
	ev.Stats.Marked += total
	for s := q; s != 0; s &= s - 1 {
		qi := trailing(s)
		if ev.Mode == Count {
			r.vals[qi].count = total
		} else if total > 0 {
			r.vals[qi].seq = &Seq{kind: seqLazy, from: pos, end: end, tags: ji.triggers}
		}
	}
	return r
}

func trailing(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// jumpInfo memoizes the jumpability analysis for a state set.
func (ev *Evaluator) jumpInfo(q uint64) *jumpInfo {
	if !ev.Opts.NoMemo {
		if ji, ok := ev.jumpCache[q]; ok {
			return ji
		}
	}
	ji := ev.computeJumpInfo(q)
	if !ev.Opts.NoMemo {
		ev.jumpCache[q] = ji
	}
	return ji
}

func (ev *Evaluator) computeJumpInfo(q uint64) *jumpInfo {
	a := ev.A
	ji := &jumpInfo{jumpable: true, collector: true}
	seen := map[int32]bool{}
	for s := q; s != 0; s &= s - 1 {
		qi := trailing(s)
		switch a.loop[qi] {
		case LoopConj, LoopDisj:
		default:
			ji.jumpable = false
			ji.collector = false
			return ji
		}
		if a.trigCofin[qi] {
			ji.jumpable = false
			ji.collector = false
			return ji
		}
		for _, t := range a.trigTags[qi] {
			if !seen[t] {
				seen[t] = true
				ji.triggers = append(ji.triggers, t)
			}
		}
		if a.collectible>>uint(qi)&1 == 0 {
			ji.collector = false
		}
	}
	// A collector set must also be a single state: several collectors with
	// different triggers would need per-state counts.
	if ji.collector && popcount(q) != 1 {
		ji.collector = false
	}
	return ji
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// instruction memoizes the transition selection of TopDownRun lines 4-5.
func (ev *Evaluator) instruction(q uint64, tag int32) *instr {
	if ev.Opts.NoMemo {
		return ev.computeInstr(q, tag)
	}
	k := instrKey{q: q, tag: tag}
	if in, ok := ev.instrCache[k]; ok {
		return in
	}
	in := ev.computeInstr(q, tag)
	ev.instrCache[k] = in
	return in
}

func (ev *Evaluator) computeInstr(q uint64, tag int32) *instr {
	a := ev.A
	in := &instr{}
	for s := q; s != 0; s &= s - 1 {
		qi := trailing(s)
		for _, t := range a.Trans[qi] {
			if t.Guard.Contains(tag) {
				in.pairs = append(in.pairs, statePhi{q: qi, phi: t.Phi})
				t.Phi.downStates(&in.q1, &in.q2)
			}
		}
	}
	in.markFree1 = in.q1&a.canMark == 0
	in.markFree2 = in.q2&a.canMark == 0
	return in
}

// three-valued truth
type tv int8

const (
	tvFalse tv = iota
	tvTrue
	tvUnknown
)

// evalInstr evaluates all selected formulas at node pos. r1/r2 may be nil
// (unknown) only when the corresponding direction is guaranteed mark-free
// by the caller; ok is false when some state's truth or marks could not be
// resolved without the missing direction, in which case the caller must
// retry with more information. Evaluation is two-phase: truth first (pure,
// no mark accounting), then value construction for committed transitions,
// so marks are counted exactly once (Figure 4 semantics).
func (ev *Evaluator) evalInstr(in *instr, q uint64, pos int, r1, r2 *runRes) (runRes, bool) {
	tvs := make([]tv, len(in.pairs))
	for i, p := range in.pairs {
		tvs[i] = ev.truth(p.phi, pos, r1, r2)
	}
	// Per state: true if any transition is true; unresolved if any
	// transition is unknown and either carries marks or the state is not
	// yet known true.
	for s := q; s != 0; s &= s - 1 {
		qi := trailing(s)
		anyTrue, anyUnknown, unknownMark := false, false, false
		for i, p := range in.pairs {
			if p.q != qi {
				continue
			}
			switch tvs[i] {
			case tvTrue:
				anyTrue = true
			case tvUnknown:
				anyUnknown = true
				if p.phi.hasMark {
					unknownMark = true
				}
			}
		}
		if unknownMark || (anyUnknown && !anyTrue) {
			return runRes{}, false
		}
	}
	res := runRes{vals: ev.allocVals()}
	for i, p := range in.pairs {
		if tvs[i] != tvTrue {
			continue
		}
		v := ev.value(p.phi, pos, r1, r2)
		if res.sat>>uint(p.q)&1 == 1 {
			res.vals[p.q] = ev.plus(res.vals[p.q], v)
		} else {
			res.sat |= 1 << uint(p.q)
			res.vals[p.q] = v
		}
	}
	return res, true
}

func (ev *Evaluator) plus(a, b Res) Res {
	if ev.Mode == Count {
		return Res{count: a.count + b.count}
	}
	switch {
	case a.seq == nil:
		return b
	case b.seq == nil:
		return a
	}
	return Res{seq: &Seq{kind: seqCat, l: a.seq, r: b.seq}}
}

func (ev *Evaluator) one(node int) Res {
	ev.Stats.Marked++
	if ev.Mode == Count {
		return Res{count: 1}
	}
	return Res{seq: &Seq{kind: seqLeaf, node: node}}
}

// truth computes the three-valued truth of phi (Figure 4, truth part). A
// nil r1/r2 renders the corresponding down-atoms unknown. It is pure: no
// mark accounting, no result construction.
func (ev *Evaluator) truth(phi *Formula, pos int, r1, r2 *runRes) tv {
	switch phi.Kind {
	case FTrue, FMark:
		return tvTrue
	case FFalse:
		return tvFalse
	case FPred:
		if ev.A.Factory.preds[phi.PredID](pos) {
			return tvTrue
		}
		return tvFalse
	case FDown1:
		if r1 == nil {
			return tvUnknown
		}
		if r1.sat>>uint(phi.Q)&1 == 1 {
			return tvTrue
		}
		return tvFalse
	case FDown2:
		if r2 == nil {
			return tvUnknown
		}
		if r2.sat>>uint(phi.Q)&1 == 1 {
			return tvTrue
		}
		return tvFalse
	case FAnd:
		lt := ev.truth(phi.L, pos, r1, r2)
		if lt == tvFalse {
			return tvFalse
		}
		rt := ev.truth(phi.R, pos, r1, r2)
		if rt == tvFalse {
			return tvFalse
		}
		if lt == tvTrue && rt == tvTrue {
			return tvTrue
		}
		return tvUnknown
	case FOr:
		lt := ev.truth(phi.L, pos, r1, r2)
		rt := ev.truth(phi.R, pos, r1, r2)
		switch {
		case lt == tvTrue && rt == tvTrue:
			return tvTrue
		case lt == tvTrue:
			// True overall, but an unknown mark-bearing right side means
			// the value is not yet computable; report unknown so the
			// caller retries with full information.
			if rt == tvUnknown && phi.R.hasMark {
				return tvUnknown
			}
			return tvTrue
		case rt == tvTrue:
			if lt == tvUnknown && phi.L.hasMark {
				return tvUnknown
			}
			return tvTrue
		case lt == tvFalse && rt == tvFalse:
			return tvFalse
		}
		return tvUnknown
	case FNot:
		switch ev.truth(phi.L, pos, r1, r2) {
		case tvTrue:
			return tvFalse
		case tvFalse:
			return tvTrue
		}
		return tvUnknown
	}
	return tvFalse
}

// value constructs the result of a formula known to be true (Figure 4,
// marking part). Unknown subvalues are guaranteed mark-free.
func (ev *Evaluator) value(phi *Formula, pos int, r1, r2 *runRes) Res {
	switch phi.Kind {
	case FMark:
		return ev.one(pos)
	case FDown1:
		if r1 != nil && r1.sat>>uint(phi.Q)&1 == 1 {
			return r1.vals[phi.Q]
		}
		return Res{}
	case FDown2:
		if r2 != nil && r2.sat>>uint(phi.Q)&1 == 1 {
			return r2.vals[phi.Q]
		}
		return Res{}
	case FAnd:
		// Both sides are true.
		return ev.plus(ev.value(phi.L, pos, r1, r2), ev.value(phi.R, pos, r1, r2))
	case FOr:
		var v Res
		if ev.truth(phi.L, pos, r1, r2) == tvTrue {
			v = ev.plus(v, ev.value(phi.L, pos, r1, r2))
		}
		if ev.truth(phi.R, pos, r1, r2) == tvTrue {
			v = ev.plus(v, ev.value(phi.R, pos, r1, r2))
		}
		return v
	}
	return Res{}
}
