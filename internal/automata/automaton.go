package automata

import (
	"fmt"
	"strings"
)

// LabelSet is a finite or co-finite set of tag identifiers (Definition 5.1).
// Co-finite sets encode wildcard tests such as "*" without fixing the
// document alphabet in advance.
type LabelSet struct {
	Cofinite bool
	Tags     []int32 // members (finite) or excluded members (cofinite)
}

// AllLabels is the co-finite set L.
var AllLabels = LabelSet{Cofinite: true}

// Finite builds a finite label set.
func Finite(tags ...int32) LabelSet { return LabelSet{Tags: tags} }

// AllBut builds the co-finite complement of the given tags.
func AllBut(tags ...int32) LabelSet { return LabelSet{Cofinite: true, Tags: tags} }

// Contains reports membership of tag.
func (s LabelSet) Contains(tag int32) bool {
	for _, t := range s.Tags {
		if t == tag {
			return !s.Cofinite
		}
	}
	return s.Cofinite
}

// Transition is one guarded transition q, L -> phi.
type Transition struct {
	Guard LabelSet
	Phi   *Formula
}

// LoopKind classifies a state's neutral self-recursion, which drives the
// jumpability analysis of Section 5.4.1.
type LoopKind uint8

const (
	LoopNone  LoopKind = iota
	LoopConj           // ↓1 q ∧ ↓2 q  (marking path states; members of B)
	LoopDisj           // ↓1 q ∨ ↓2 q  (descendant existence filters)
	LoopRight          // ↓2 q          (child axis scan; not jumpable)
)

// Automaton is a non-deterministic marking automaton bound to a document's
// tag alphabet (Definition 5.1). States are small integers < 64.
type Automaton struct {
	NumStates int
	Start     int
	Bottom    uint64 // B: states satisfiable at Nil
	Trans     [][]Transition
	Factory   *Factory

	// Derived data (computed by Finish):
	canMark uint64     // states from which a mark is reachable
	loop    []LoopKind // neutral loop classification per state
	// trigger transitions per state: the non-loop ones; nil Tags means the
	// state has a cofinite (unjumpable) trigger.
	trigTags    [][]int32
	trigCofin   []bool
	collectible uint64 // states whose triggers only mark (lazy result sets)
	// transparent: states whose recursion is level-agnostic (conjunctive or
	// disjunctive loops); they survive the "level pops" a flattened-region
	// traversal encounters after a jump, while chain-scanning states end
	// their run there (see Evaluator.run).
	transparent uint64
}

// Transparent returns the bitset of level-agnostic (transparent) states.
func (a *Automaton) Transparent() uint64 { return a.transparent }

// MaxStates bounds the state space so state sets fit one machine word.
const MaxStates = 64

// NewAutomaton allocates an automaton with n states.
func NewAutomaton(n int, factory *Factory) (*Automaton, error) {
	if n > MaxStates {
		return nil, fmt.Errorf("automata: query needs %d states, max %d", n, MaxStates)
	}
	return &Automaton{NumStates: n, Trans: make([][]Transition, n), Factory: factory}, nil
}

// AddTransition appends q, guard -> phi.
func (a *Automaton) AddTransition(q int, guard LabelSet, phi *Formula) {
	a.Trans[q] = append(a.Trans[q], Transition{Guard: guard, Phi: phi})
}

// SetBottom marks q as a bottom state (satisfiable at Nil).
func (a *Automaton) SetBottom(q int) { a.Bottom |= 1 << uint(q) }

// Finish computes the derived tables. Must be called after all transitions
// are added and before evaluation.
func (a *Automaton) Finish() {
	a.computeCanMark()
	a.classifyLoops()
}

func (a *Automaton) computeCanMark() {
	// Fixpoint: q can mark if any of its formulas contains mark directly or
	// references a can-marking state.
	direct := func(phi *Formula, cm uint64) bool {
		var walk func(*Formula) bool
		walk = func(p *Formula) bool {
			switch p.Kind {
			case FMark:
				return true
			case FDown1, FDown2:
				return cm>>uint(p.Q)&1 == 1
			case FAnd, FOr:
				return walk(p.L) || walk(p.R)
			case FNot:
				return false // marks under negation are discarded
			}
			return false
		}
		return walk(phi)
	}
	cm := uint64(0)
	for changed := true; changed; {
		changed = false
		for q := 0; q < a.NumStates; q++ {
			if cm>>uint(q)&1 == 1 {
				continue
			}
			for _, t := range a.Trans[q] {
				if direct(t.Phi, cm) {
					cm |= 1 << uint(q)
					changed = true
					break
				}
			}
		}
	}
	a.canMark = cm
}

func (a *Automaton) classifyLoops() {
	f := a.Factory
	a.loop = make([]LoopKind, a.NumStates)
	a.trigTags = make([][]int32, a.NumStates)
	a.trigCofin = make([]bool, a.NumStates)
	for q := 0; q < a.NumStates; q++ {
		conj := f.And(f.Down1(q), f.Down2(q))
		disj := f.Or(f.Down1(q), f.Down2(q))
		right := f.Down2(q)
		kind := LoopNone
		var trig []int32
		cofin := false
		var neutralGuards []LabelSet
		for _, t := range a.Trans[q] {
			switch t.Phi {
			case conj:
				kind = LoopConj
				neutralGuards = append(neutralGuards, t.Guard)
			case disj:
				kind = LoopDisj
				neutralGuards = append(neutralGuards, t.Guard)
			case right:
				kind = LoopRight
				neutralGuards = append(neutralGuards, t.Guard)
			default:
				if t.Guard.Cofinite {
					cofin = true
				} else {
					trig = append(trig, t.Guard.Tags...)
				}
			}
		}
		// Level-pop transparency only depends on the recursion shape.
		switch kind {
		case LoopConj, LoopDisj:
			a.transparent |= 1 << uint(q)
		}
		// Jumpability additionally requires a neutral transition covering
		// L minus the triggers: either a full guard, or a co-finite guard
		// whose exclusions are all triggers.
		if kind != LoopNone && !cofin {
			covered := false
			for _, g := range neutralGuards {
				if !g.Cofinite {
					continue
				}
				ok := true
				for _, excluded := range g.Tags {
					found := false
					for _, tr := range trig {
						if tr == excluded {
							found = true
							break
						}
					}
					if !found {
						ok = false
						break
					}
				}
				if ok {
					covered = true
					break
				}
			}
			if !covered {
				kind = LoopNone
			}
		}
		a.loop[q] = kind
		a.trigTags[q] = trig
		a.trigCofin[q] = cofin
	}
	// Collector states (Section 5.5.4, lazy result sets / SubtreeTags
	// counting): a conjunctive-loop state whose every trigger transition is
	// exactly "mark and keep recursing" — the shape of an unfiltered final
	// descendant step.
	for q := 0; q < a.NumStates; q++ {
		if a.loop[q] != LoopConj {
			continue
		}
		conj := f.And(f.Down1(q), f.Down2(q))
		markAll := f.And(f.Mark, conj)
		ok := true
		for _, t := range a.Trans[q] {
			if t.Phi == conj || t.Phi == markAll || t.Phi == f.Mark {
				continue
			}
			ok = false
			break
		}
		if ok {
			a.collectible |= 1 << uint(q)
		}
	}
}

// String renders the transition table (for debugging and tests).
func (a *Automaton) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "automaton[states=%d start=q%d B=%b]\n", a.NumStates, a.Start, a.Bottom)
	for q := 0; q < a.NumStates; q++ {
		for _, t := range a.Trans[q] {
			guard := "L"
			if !t.Guard.Cofinite {
				guard = fmt.Sprint(t.Guard.Tags)
			} else if len(t.Guard.Tags) > 0 {
				guard = fmt.Sprintf("L-%v", t.Guard.Tags)
			}
			fmt.Fprintf(&sb, "  q%d, %s -> %s\n", q, guard, t.Phi)
		}
	}
	return sb.String()
}
