// Package automata implements the alternating marking tree automata of
// Section 5: hash-consed Boolean formulas over down-moves (Definition 5.1),
// transitions guarded by finite or co-finite label sets, the TopDownRun
// evaluation with jumping to relevant nodes (Section 5.4.1), just-in-time
// memoization of transition computations (Section 5.5.2), counting mode and
// lazy result sets (Sections 5.5.3, 5.5.4), and early evaluation of
// formulas (Section 5.5.5).
package automata

import "fmt"

// FKind enumerates formula constructors (Definition 5.1).
type FKind uint8

const (
	FTrue FKind = iota
	FFalse
	FMark
	FDown1 // ↓1 q
	FDown2 // ↓2 q
	FAnd
	FOr
	FNot
	FPred // built-in predicate evaluated on the current node
)

// Formula is a hash-consed Boolean formula node. Structurally equal
// formulas share the same pointer and ID (Section 5.5.1), so equality is
// pointer comparison and IDs key memoization tables.
type Formula struct {
	ID      int
	Kind    FKind
	Q       int      // state for FDown1/FDown2
	L, R    *Formula // children for FAnd/FOr; L for FNot
	PredID  int      // index into the factory's predicate table for FPred
	hasMark bool     // whether a mark can appear in this formula's value
}

// PredFunc evaluates a built-in predicate at a document node.
type PredFunc func(node int) bool

// Factory hash-conses formulas and registers predicates.
type Factory struct {
	byKey map[fkey]*Formula
	all   []*Formula
	preds []PredFunc
	names []string // predicate descriptions for debugging

	True, False, Mark *Formula
}

type fkey struct {
	kind   FKind
	q      int32
	l, r   int32
	predID int32
}

// NewFactory creates an empty formula factory.
func NewFactory() *Factory {
	f := &Factory{byKey: map[fkey]*Formula{}}
	f.True = f.intern(&Formula{Kind: FTrue})
	f.False = f.intern(&Formula{Kind: FFalse})
	f.Mark = f.intern(&Formula{Kind: FMark, hasMark: true})
	return f
}

func (f *Factory) intern(phi *Formula) *Formula {
	k := fkey{kind: phi.Kind, q: int32(phi.Q), l: -1, r: -1, predID: int32(phi.PredID)}
	if phi.L != nil {
		k.l = int32(phi.L.ID)
	}
	if phi.R != nil {
		k.r = int32(phi.R.ID)
	}
	if existing, ok := f.byKey[k]; ok {
		return existing
	}
	phi.ID = len(f.all)
	f.all = append(f.all, phi)
	f.byKey[k] = phi
	return phi
}

// Down1 returns ↓1 q.
func (f *Factory) Down1(q int) *Formula { return f.intern(&Formula{Kind: FDown1, Q: q}) }

// Down2 returns ↓2 q.
func (f *Factory) Down2(q int) *Formula { return f.intern(&Formula{Kind: FDown2, Q: q}) }

// And returns the conjunction, with light simplification that never
// discards marks.
func (f *Factory) And(a, b *Formula) *Formula {
	if a.Kind == FFalse || b.Kind == FFalse {
		return f.False
	}
	if a.Kind == FTrue {
		return b
	}
	if b.Kind == FTrue {
		return a
	}
	return f.intern(&Formula{Kind: FAnd, L: a, R: b, hasMark: a.hasMark || b.hasMark})
}

// Or returns the disjunction; True absorbs only mark-free operands.
func (f *Factory) Or(a, b *Formula) *Formula {
	if a.Kind == FFalse {
		return b
	}
	if b.Kind == FFalse {
		return a
	}
	if a.Kind == FTrue && !b.hasMark {
		return f.True
	}
	if b.Kind == FTrue && !a.hasMark {
		return f.True
	}
	return f.intern(&Formula{Kind: FOr, L: a, R: b, hasMark: a.hasMark || b.hasMark})
}

// Not returns the negation; marks below a negation are discarded by the
// evaluation rules (Figure 4), so hasMark is false.
func (f *Factory) Not(a *Formula) *Formula {
	switch a.Kind {
	case FTrue:
		return f.False
	case FFalse:
		return f.True
	case FNot:
		return a.L
	}
	return f.intern(&Formula{Kind: FNot, L: a})
}

// Pred registers fn and returns its predicate formula.
func (f *Factory) Pred(name string, fn PredFunc) *Formula {
	id := len(f.preds)
	f.preds = append(f.preds, fn)
	f.names = append(f.names, name)
	return f.intern(&Formula{Kind: FPred, PredID: id})
}

// HasMark reports whether evaluating phi may produce marked nodes.
func (phi *Formula) HasMark() bool { return phi.hasMark }

// downStates accumulates the states referenced by ↓1 (into q1) and ↓2
// (into q2) anywhere in the formula, including under negation.
func (phi *Formula) downStates(q1, q2 *uint64) {
	switch phi.Kind {
	case FDown1:
		*q1 |= 1 << uint(phi.Q)
	case FDown2:
		*q2 |= 1 << uint(phi.Q)
	case FAnd, FOr:
		phi.L.downStates(q1, q2)
		phi.R.downStates(q1, q2)
	case FNot:
		phi.L.downStates(q1, q2)
	}
}

func (phi *Formula) String() string {
	switch phi.Kind {
	case FTrue:
		return "⊤"
	case FFalse:
		return "⊥"
	case FMark:
		return "mark"
	case FDown1:
		return fmt.Sprintf("↓1 q%d", phi.Q)
	case FDown2:
		return fmt.Sprintf("↓2 q%d", phi.Q)
	case FAnd:
		return "(" + phi.L.String() + " ∧ " + phi.R.String() + ")"
	case FOr:
		return "(" + phi.L.String() + " ∨ " + phi.R.String() + ")"
	case FNot:
		return "¬" + phi.L.String()
	case FPred:
		return fmt.Sprintf("p%d", phi.PredID)
	}
	return "?"
}
