package bitvec

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/persist"
)

func TestVectorSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 63, 64, 65, 511, 512, 513, 5000} {
		v := New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				v.Set(i)
			}
		}
		v.Build()
		var buf bytes.Buffer
		if err := v.Save(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := LoadVector(&buf)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got.Len() != v.Len() || got.Ones() != v.Ones() {
			t.Fatalf("n=%d: len/ones mismatch", n)
		}
		for i := 0; i <= n; i++ {
			if got.Rank1(i) != v.Rank1(i) {
				t.Fatalf("n=%d Rank1(%d)", n, i)
			}
		}
		for j := 0; j < v.Ones(); j++ {
			if got.Select1(j) != v.Select1(j) {
				t.Fatalf("n=%d Select1(%d)", n, j)
			}
		}
	}
}

func TestSparseSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, tc := range []struct{ n, m int }{
		{0, 0}, {10, 0}, {1, 1}, {100, 5}, {1 << 16, 100}, {1000, 1000},
	} {
		positions := rng.Perm(tc.n)[:tc.m]
		if tc.m > 0 {
			positions = append([]int(nil), positions...)
		}
		sortInts(positions)
		s := NewSparse(tc.n, positions)
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := LoadSparse(&buf)
		if err != nil {
			t.Fatalf("n=%d m=%d: %v", tc.n, tc.m, err)
		}
		if got.Len() != s.Len() || got.Ones() != s.Ones() {
			t.Fatalf("n=%d m=%d: len/ones mismatch", tc.n, tc.m)
		}
		for j := 0; j < s.Ones(); j++ {
			if got.Select1(j) != s.Select1(j) {
				t.Fatalf("Select1(%d)", j)
			}
		}
		for i := 0; i <= tc.n; i += 1 + tc.n/97 {
			if got.Rank1(i) != s.Rank1(i) {
				t.Fatalf("Rank1(%d)", i)
			}
		}
	}
}

// TestVectorLoadRebuildsSelectSamples proves the select samples are a
// derived structure: they are not part of the on-disk payload (same format
// version as the seed), Load rebuilds them identically to a fresh Build,
// and re-saving a loaded vector is byte-identical to the original payload.
func TestVectorLoadRebuildsSelectSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{0, 511, 4096, 1 << 16} {
		v := New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				v.Set(i)
			}
		}
		v.Build()
		var buf bytes.Buffer
		if err := v.Save(&buf); err != nil {
			t.Fatal(err)
		}
		saved := append([]byte(nil), buf.Bytes()...)
		got, err := LoadVector(bytes.NewReader(saved))
		if err != nil {
			t.Fatal(err)
		}
		if len(got.selSamp1) != len(v.selSamp1) || len(got.selSamp0) != len(v.selSamp0) {
			t.Fatalf("n=%d: sample counts differ after load: %d/%d want %d/%d",
				n, len(got.selSamp1), len(got.selSamp0), len(v.selSamp1), len(v.selSamp0))
		}
		for i := range v.selSamp1 {
			if got.selSamp1[i] != v.selSamp1[i] {
				t.Fatalf("n=%d: selSamp1[%d] differs", n, i)
			}
		}
		for i := range v.selSamp0 {
			if got.selSamp0[i] != v.selSamp0[i] {
				t.Fatalf("n=%d: selSamp0[%d] differs", n, i)
			}
		}
		var buf2 bytes.Buffer
		if err := got.Save(&buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(saved, buf2.Bytes()) {
			t.Fatalf("n=%d: re-saved payload not byte-identical", n)
		}
	}
}

func TestVectorLoadCorrupt(t *testing.T) {
	v := FromBools([]bool{true, false, true, true})
	var buf bytes.Buffer
	v.Save(&buf)
	data := buf.Bytes()
	// Truncations.
	for cut := 0; cut < len(data); cut++ {
		if _, err := LoadVector(bytes.NewReader(data[:cut])); !errors.Is(err, persist.ErrCorrupt) {
			t.Fatalf("cut=%d err=%v", cut, err)
		}
	}
	// Wrong format byte.
	bad := append([]byte(nil), data...)
	bad[0] = 0xFF
	if _, err := LoadVector(bytes.NewReader(bad)); !errors.Is(err, persist.ErrCorrupt) {
		t.Fatalf("bad format: %v", err)
	}
	// Word count inconsistent with the bit length.
	bad = append([]byte(nil), data...)
	bad[1] = 200 // n = 200 needs 4 words, payload has 1
	if _, err := LoadVector(bytes.NewReader(bad)); !errors.Is(err, persist.ErrCorrupt) {
		t.Fatalf("bad word count: %v", err)
	}
}

func TestSparseLoadCorrupt(t *testing.T) {
	s := NewSparse(1000, []int{3, 77, 500, 999})
	var buf bytes.Buffer
	s.Save(&buf)
	data := buf.Bytes()
	for cut := 0; cut < len(data); cut++ {
		if _, err := LoadSparse(bytes.NewReader(data[:cut])); !errors.Is(err, persist.ErrCorrupt) {
			t.Fatalf("cut=%d err=%v", cut, err)
		}
	}
	bad := append([]byte(nil), data...)
	bad[0] = 0xFF
	if _, err := LoadSparse(bytes.NewReader(bad)); !errors.Is(err, persist.ErrCorrupt) {
		t.Fatalf("bad format: %v", err)
	}
}
