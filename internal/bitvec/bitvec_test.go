package bitvec

import (
	"math/rand"
	"testing"
)

// naiveRank counts ones in b[0:i].
func naiveRank(b []bool, i int) int {
	c := 0
	for j := 0; j < i && j < len(b); j++ {
		if b[j] {
			c++
		}
	}
	return c
}

func randBools(r *rand.Rand, n int, density float64) []bool {
	b := make([]bool, n)
	for i := range b {
		b[i] = r.Float64() < density
	}
	return b
}

func TestVectorRankSelectAgainstNaive(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 1000, 4096, 10000} {
		for _, dens := range []float64{0, 0.01, 0.5, 0.99, 1} {
			b := randBools(r, n, dens)
			v := FromBools(b)
			if v.Len() != n {
				t.Fatalf("len=%d want %d", v.Len(), n)
			}
			ones := naiveRank(b, n)
			if v.Ones() != ones {
				t.Fatalf("ones=%d want %d (n=%d d=%v)", v.Ones(), ones, n, dens)
			}
			// Spot check ranks at many positions.
			step := 1
			if n > 300 {
				step = n / 100
			}
			for i := 0; i <= n; i += step {
				if got := v.Rank1(i); got != naiveRank(b, i) {
					t.Fatalf("rank1(%d)=%d want %d (n=%d d=%v)", i, got, naiveRank(b, i), n, dens)
				}
				if got := v.Rank0(i); got != i-naiveRank(b, i) {
					t.Fatalf("rank0(%d)=%d (n=%d)", i, got, n)
				}
			}
			// Full select check.
			k1, k0 := 0, 0
			for i := 0; i < n; i++ {
				if b[i] {
					if got := v.Select1(k1); got != i {
						t.Fatalf("select1(%d)=%d want %d", k1, got, i)
					}
					k1++
				} else {
					if got := v.Select0(k0); got != i {
						t.Fatalf("select0(%d)=%d want %d", k0, got, i)
					}
					k0++
				}
			}
			if v.Select1(k1) != -1 || v.Select0(k0) != -1 {
				t.Fatal("select beyond count should be -1")
			}
		}
	}
}

// TestSelectSampled stresses the sampled select path on vectors big enough
// to hold many samples, including adversarial layouts where consecutive
// samples are many superblocks apart (a dense cluster followed by a long
// empty gap and a final stretch of ones).
func TestSelectSampled(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	build := func(n int, set func(i int) bool) (*Vector, []int) {
		v := New(n)
		var ones []int
		for i := 0; i < n; i++ {
			if set(i) {
				v.Set(i)
				ones = append(ones, i)
			}
		}
		v.Build()
		return v, ones
	}
	shapes := map[string]struct {
		n   int
		set func(i int) bool
	}{
		"dense":       {1 << 17, func(i int) bool { return r.Intn(2) == 0 }},
		"all-ones":    {1<<16 + 37, func(i int) bool { return true }},
		"cluster-gap": {1 << 18, func(i int) bool { return i < 2000 || i >= 1<<18-2000 }},
		"sparse":      {1 << 18, func(i int) bool { return r.Intn(300) == 0 }},
		"runs":        {1 << 17, func(i int) bool { return i/4096%2 == 0 }},
	}
	for name, s := range shapes {
		v, ones := build(s.n, s.set)
		if v.Ones() != len(ones) {
			t.Fatalf("%s: ones=%d want %d", name, v.Ones(), len(ones))
		}
		for j, p := range ones {
			if got := v.Select1(j); got != p {
				t.Fatalf("%s: Select1(%d)=%d want %d", name, j, got, p)
			}
		}
		// Select0 against rank-based inversion, sampled positions.
		zeros := v.Len() - v.Ones()
		for k := 0; k < 3000 && k < zeros; k++ {
			j := k
			if zeros > 3000 {
				j = r.Intn(zeros)
			}
			got := v.Select0(j)
			if got < 0 || v.Get(got) || v.Rank0(got) != j {
				t.Fatalf("%s: Select0(%d)=%d (rank0=%d)", name, j, got, v.Rank0(got))
			}
		}
		if v.Select1(v.Ones()) != -1 || v.Select0(zeros) != -1 {
			t.Fatalf("%s: select past the end must be -1", name)
		}
	}
}

func TestVectorGetSet(t *testing.T) {
	v := New(100)
	v.Set(0)
	v.Set(63)
	v.Set(64)
	v.Set(99)
	v.Build()
	for _, i := range []int{0, 63, 64, 99} {
		if !v.Get(i) {
			t.Errorf("bit %d should be set", i)
		}
	}
	if v.Get(1) || v.Get(65) {
		t.Error("unexpected set bit")
	}
	if v.Rank1(100) != 4 {
		t.Errorf("rank1(100)=%d", v.Rank1(100))
	}
}

func TestVectorAppendBit(t *testing.T) {
	v := &Vector{}
	pattern := []bool{true, false, true, true, false}
	for i := 0; i < 200; i++ {
		v.AppendBit(pattern[i%len(pattern)])
	}
	v.Build()
	if v.Len() != 200 {
		t.Fatalf("len=%d", v.Len())
	}
	for i := 0; i < 200; i++ {
		if v.Get(i) != pattern[i%len(pattern)] {
			t.Fatalf("bit %d mismatch", i)
		}
	}
	if v.Ones() != 120 {
		t.Fatalf("ones=%d want 120", v.Ones())
	}
}

func TestVectorRankEdge(t *testing.T) {
	v := FromBools([]bool{true})
	if v.Rank1(0) != 0 || v.Rank1(1) != 1 || v.Rank1(5) != 1 {
		t.Error("edge rank wrong")
	}
	if v.Rank1(-3) != 0 {
		t.Error("negative rank should be 0")
	}
	empty := FromBools(nil)
	if empty.Rank1(0) != 0 || empty.Select1(0) != -1 {
		t.Error("empty vector behaviour")
	}
}

func TestSparseAgainstNaive(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 10, 100, 1000, 100000} {
		for _, m := range []int{0, 1, 2, 5, 50} {
			if m > n {
				continue
			}
			// pick m distinct sorted positions
			perm := r.Perm(n)[:m]
			pos := append([]int(nil), perm...)
			sortInts(pos)
			s := NewSparse(n, pos)
			if s.Ones() != m {
				t.Fatalf("ones=%d want %d", s.Ones(), m)
			}
			for j, p := range pos {
				if got := s.Select1(j); got != p {
					t.Fatalf("n=%d m=%d select1(%d)=%d want %d", n, m, j, got, p)
				}
			}
			// rank at every position for small n, sampled for large
			step := 1
			if n > 2000 {
				step = n / 500
			}
			want := 0
			idx := 0
			for i := 0; i <= n; i++ {
				if i%step == 0 || i == n {
					if got := s.Rank1(i); got != want {
						t.Fatalf("n=%d m=%d rank1(%d)=%d want %d pos=%v", n, m, i, got, want, pos)
					}
				}
				if idx < len(pos) && pos[idx] == i {
					want++
					idx++
				}
			}
		}
	}
}

func TestSparseNextOne(t *testing.T) {
	s := NewSparse(100, []int{3, 17, 55, 99})
	cases := []struct{ p, want int }{{0, 3}, {3, 3}, {4, 17}, {18, 55}, {56, 99}, {99, 99}}
	for _, c := range cases {
		if got := s.NextOne(c.p); got != c.want {
			t.Errorf("NextOne(%d)=%d want %d", c.p, got, c.want)
		}
	}
	if s.NextOne(100) != -1 {
		t.Error("NextOne past end should be -1")
	}
}

func TestSparseGet(t *testing.T) {
	pos := []int{0, 5, 64, 65, 1023}
	s := NewSparse(1024, pos)
	set := map[int]bool{}
	for _, p := range pos {
		set[p] = true
	}
	for i := 0; i < 1024; i++ {
		if s.Get(i) != set[i] {
			t.Fatalf("Get(%d)=%v", i, s.Get(i))
		}
	}
}

func TestSparseDense(t *testing.T) {
	// All positions set: lowBits becomes 0.
	n := 300
	pos := make([]int, n)
	for i := range pos {
		pos[i] = i
	}
	s := NewSparse(n, pos)
	for i := 0; i <= n; i++ {
		if got := s.Rank1(i); got != i {
			t.Fatalf("rank1(%d)=%d", i, got)
		}
	}
	for j := 0; j < n; j++ {
		if s.Select1(j) != j {
			t.Fatalf("select1(%d)=%d", j, s.Select1(j))
		}
	}
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func BenchmarkVectorRank(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	v := FromBools(randBools(r, 1<<20, 0.5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Rank1(i & (1<<20 - 1))
	}
}

func BenchmarkVectorSelect(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	v := FromBools(randBools(r, 1<<20, 0.5))
	ones := v.Ones()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Select1(i % ones)
	}
}

func BenchmarkSparseRank(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	n := 1 << 22
	var pos []int
	for i := 0; i < n; i++ {
		if r.Intn(100) == 0 {
			pos = append(pos, i)
		}
	}
	s := NewSparse(n, pos)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Rank1(i & (n - 1))
	}
}
