package bitvec

import (
	"math/bits"
	"sort"
)

// Sparse is an Elias–Fano encoded bit vector: it stores m sorted positions
// out of a universe [0, n) in m*ceil(log2(n/m)) + 2m + o(m) bits. This is the
// "sarray" structure of Okanohara and Sadakane that the paper uses for each
// row of the tag matrix R (Section 4.1.2). Select1 is O(1) amortized; Rank1
// is O(log) via the upper-bits directory.
type Sparse struct {
	n        int // universe size
	m        int // number of ones
	lowBits  uint
	low      []uint64 // packed low bits, lowBits each
	high     *Vector  // unary-coded high parts: m ones among m + n>>lowBits zeros
	maxValue int
}

// NewSparse builds a sparse vector over universe [0, n) from the sorted,
// strictly increasing list of one-positions.
func NewSparse(n int, positions []int) *Sparse {
	return NewSparseSeq(n, len(positions), func(i int) int { return positions[i] })
}

// NewSparseSeq builds a sparse vector over universe [0, n) from m sorted,
// strictly increasing one-positions delivered by pos, which is called once
// per index in ascending order — the allocation-free form of NewSparse for
// callers that derive positions on the fly (e.g. from a lengths array).
func NewSparseSeq(n, m int, pos func(i int) int) *Sparse {
	s := &Sparse{n: n, m: m}
	if m == 0 {
		s.high = New(0)
		s.high.Build()
		return s
	}
	// lowBits = floor(log2(n/m)), at least 0.
	lb := 0
	if n/m > 1 {
		lb = bits.Len(uint(n/m)) - 1
	}
	s.lowBits = uint(lb)
	s.low = make([]uint64, (m*lb+63)/64)
	highLen := (n >> s.lowBits) + m + 1
	s.high = New(highLen)
	p := 0
	for i := 0; i < m; i++ {
		p = pos(i)
		if lb > 0 {
			s.setLow(i, uint64(p)&((1<<s.lowBits)-1))
		}
		hp := (p >> s.lowBits) + i
		s.high.Set(hp)
	}
	s.high.Build()
	s.maxValue = p
	return s
}

func (s *Sparse) setLow(i int, v uint64) {
	bitPos := i * int(s.lowBits)
	w, off := bitPos>>6, uint(bitPos&63)
	s.low[w] |= v << off
	if off+s.lowBits > 64 {
		s.low[w+1] |= v >> (64 - off)
	}
}

func (s *Sparse) getLow(i int) uint64 {
	if s.lowBits == 0 {
		return 0
	}
	bitPos := i * int(s.lowBits)
	w, off := bitPos>>6, uint(bitPos&63)
	v := s.low[w] >> off
	if off+s.lowBits > 64 {
		v |= s.low[w+1] << (64 - off)
	}
	return v & ((1 << s.lowBits) - 1)
}

// Len returns the universe size.
func (s *Sparse) Len() int { return s.n }

// Ones returns the number of set positions.
func (s *Sparse) Ones() int { return s.m }

// Select1 returns the position of the (j+1)-th one (0-based j), or -1.
func (s *Sparse) Select1(j int) int {
	if j < 0 || j >= s.m {
		return -1
	}
	hp := s.high.Select1(j)
	highPart := hp - j
	return highPart<<s.lowBits | int(s.getLow(j))
}

// Rank1 returns the number of ones in [0, i).
func (s *Sparse) Rank1(i int) int {
	if i <= 0 || s.m == 0 {
		return 0
	}
	if i > s.n {
		i = s.n
	}
	// Number of ones with value < i. Find by binary search on Select1
	// within the candidate range given by the high directory.
	hi := (i - 1) >> s.lowBits // high part of i-1
	// Ones with high part < hi are surely < i; ones with high part > hi are >= i.
	// Candidates: ones with high part == hi.
	// Position in s.high where high part hi's run of ones ends:
	// zeros encode increments of the high part; after hi+1 zeros all ones
	// have high part > hi.
	zeroPos := s.high.Select0(hi)
	var lowerCount int
	if zeroPos < 0 {
		lowerCount = s.m
	} else {
		lowerCount = s.high.Rank1(zeroPos) // ones with high part < hi... see below
	}
	// lowerCount counts ones with high part <= hi-1? Careful: the k-th zero
	// (0-based k) appears after all ones with high part <= k... Actually in
	// Elias-Fano high stream, ones for value v appear before the (v+1)-th
	// zero and after the v-th zero. Ones before Select0(hi) have high part
	// < hi... no: before the (hi+1)-th zero (0-based index hi) all ones have
	// high part <= hi. We need ones with high part < hi first:
	start := 0
	if hi > 0 {
		z := s.high.Select0(hi - 1)
		if z >= 0 {
			start = s.high.Rank1(z) // ones with high part < hi
		} else {
			start = s.m
		}
	}
	end := lowerCount // ones with high part <= hi
	if zeroPos < 0 {
		end = s.m
	}
	// Binary search ones in [start, end) for value < i. A candidate has
	// high part hi, so its value is < i iff its low part <= low(i-1),
	// i.e. low < lowTarget with lowTarget = ((i-1) & mask) + 1.
	mask := uint64(1)<<s.lowBits - 1
	lowTarget := (uint64(i-1) & mask) + 1
	cnt := sort.Search(end-start, func(k int) bool {
		return s.getLow(start+k) >= lowTarget
	})
	return start + cnt
}

// Get returns whether position p is set.
func (s *Sparse) Get(p int) bool {
	return s.Rank1(p+1)-s.Rank1(p) == 1
}

// NextOne returns the smallest set position >= p, or -1 if none.
func (s *Sparse) NextOne(p int) int {
	r := s.Rank1(p)
	return s.Select1(r)
}

// SizeInBytes reports the memory footprint of the structure.
func (s *Sparse) SizeInBytes() int {
	sz := 8*len(s.low) + 48
	if s.high != nil {
		sz += s.high.SizeInBytes()
	}
	return sz
}
