package bitvec

import (
	"io"

	"repro/internal/persist"
)

// On-disk layout of the bit vectors. Both kinds carry a one-byte format
// version so a standalone payload is self-describing; the rank directories
// are not stored — Build recreates them in linear time on load, which is
// the cheap part of construction.
//
// Store/ReadVector (and the Sparse pair) compose into a caller's
// persist.Writer/Reader so enclosing structures serialize through one
// buffered stream; Save/Load are the standalone io.Writer/io.Reader
// wrappers.

const (
	vectorFormat = 1
	sparseFormat = 1
)

// Store serializes the frozen vector (version byte, length, raw words)
// into pw.
func (v *Vector) Store(pw *persist.Writer) {
	pw.Byte(vectorFormat)
	pw.Int(v.n)
	pw.Words(v.words)
}

// ReadVector reads a vector written by Store and rebuilds its rank
// directory. On corrupt input it returns nil and leaves the error in pr.
func ReadVector(pr persist.Source) *Vector {
	if pr.Check(pr.Byte() == vectorFormat, "unknown bit vector format") != nil {
		return nil
	}
	n := pr.Int()
	words := pr.Words()
	if pr.Check(len(words) == (n+63)/64, "bit vector word count mismatch") != nil {
		return nil
	}
	// Bits beyond n must be zero: Build's popcounts (and word-level
	// consumers) assume a clean tail.
	if rem := n & 63; rem != 0 {
		if pr.Check(words[len(words)-1]>>uint(rem) == 0, "bit vector tail not zero") != nil {
			return nil
		}
	}
	v := &Vector{words: words, n: n}
	v.Build()
	return v
}

// Save serializes the frozen vector to w.
func (v *Vector) Save(w io.Writer) error {
	pw := persist.NewWriter(w)
	v.Store(pw)
	return pw.Flush()
}

// LoadVector reads a vector written by Save.
func LoadVector(r io.Reader) (*Vector, error) {
	pr := persist.NewReader(r)
	v := ReadVector(pr)
	if pr.Err() != nil {
		return nil, pr.Err()
	}
	return v, nil
}

// Store serializes the sparse vector into pw: universe size and the packed
// Elias–Fano components (low bits plus the unary high stream).
func (s *Sparse) Store(pw *persist.Writer) {
	pw.Byte(sparseFormat)
	pw.Int(s.n)
	pw.Int(s.m)
	pw.Int(int(s.lowBits))
	pw.Int(s.maxValue)
	pw.Words(s.low)
	s.high.Store(pw)
}

// ReadSparse reads a sparse vector written by Store. On corrupt input it
// returns nil and leaves the error in pr.
func ReadSparse(pr persist.Source) *Sparse {
	if pr.Check(pr.Byte() == sparseFormat, "unknown sparse vector format") != nil {
		return nil
	}
	s := &Sparse{}
	s.n = pr.Int()
	s.m = pr.Int()
	lb := pr.Int()
	s.maxValue = pr.Int()
	s.low = pr.Words()
	high := ReadVector(pr)
	if pr.Err() != nil {
		return nil
	}
	if pr.Check(lb < 64, "sparse low-bit width out of range") != nil {
		return nil
	}
	s.lowBits = uint(lb)
	s.high = high
	if s.m == 0 {
		if pr.Check(len(s.low) == 0, "sparse low bits without ones") != nil {
			return nil
		}
		return s
	}
	ok := len(s.low) == (s.m*lb+63)/64 &&
		high.Ones() == s.m &&
		high.Len() == (s.n>>s.lowBits)+s.m+1 &&
		s.maxValue < s.n
	if pr.Check(ok, "sparse vector component mismatch") != nil {
		return nil
	}
	return s
}

// Save serializes the sparse vector to w.
func (s *Sparse) Save(w io.Writer) error {
	pw := persist.NewWriter(w)
	s.Store(pw)
	return pw.Flush()
}

// LoadSparse reads a sparse vector written by Save.
func LoadSparse(r io.Reader) (*Sparse, error) {
	pr := persist.NewReader(r)
	s := ReadSparse(pr)
	if pr.Err() != nil {
		return nil, pr.Err()
	}
	return s, nil
}
