// Package bitvec implements plain and sparse bit vectors with rank and
// select support. The plain vector follows the classical two-level rank
// directory (constant-time rank, logarithmic select); the sparse vector is an
// Elias–Fano encoding equivalent to Okanohara and Sadakane's "sarray"
// [ALENEX 2007], which the paper uses for the per-tag rows of the tag matrix
// (Section 4.1.2) and for text-boundary bitmaps (Section 3.4).
package bitvec

import (
	"fmt"
	"math/bits"

	xbits "repro/internal/bits"
)

// Vector is a mutable-then-frozen plain bit vector. Bits are appended or set
// during construction; Build freezes the vector and creates the rank
// directory. Rank/Select must only be called after Build.
type Vector struct {
	words  []uint64
	n      int      // number of valid bits
	super  []uint64 // cumulative popcount before each superblock (per 8 words = 512 bits)
	ones   int
	frozen bool
	// Select samples: superblock index holding the (k*selSampleRate)-th
	// one (resp. zero). They bound the superblock search of Select1/Select0
	// to the gap between two consecutive samples, which is O(1) superblocks
	// on dense vectors. Rebuilt by Build, never persisted.
	selSamp1 []int32
	selSamp0 []int32
}

const wordsPerSuper = 8

// selSampleRate is the number of ones (zeros) between consecutive select
// samples. At 512 bits per superblock, samples add at most one int32 per
// superblock of payload: <7% space overhead, and far less on sparse vectors.
const selSampleRate = 512

// New returns a vector of n bits, all zero.
func New(n int) *Vector {
	return &Vector{words: make([]uint64, (n+63)/64), n: n}
}

// FromBools builds a frozen vector from a boolean slice.
func FromBools(b []bool) *Vector {
	v := New(len(b))
	for i, x := range b {
		if x {
			v.Set(i)
		}
	}
	v.Build()
	return v
}

// Len returns the number of bits in the vector.
func (v *Vector) Len() int { return v.n }

// Ones returns the total number of set bits (valid after Build).
func (v *Vector) Ones() int { return v.ones }

// Set sets bit i to 1. Must be called before Build.
func (v *Vector) Set(i int) {
	v.words[i>>6] |= 1 << uint(i&63)
}

// AppendBit grows the vector by one bit. Must be called before Build.
func (v *Vector) AppendBit(b bool) {
	if v.n>>6 >= len(v.words) {
		v.words = append(v.words, 0)
	}
	if b {
		v.words[v.n>>6] |= 1 << uint(v.n&63)
	}
	v.n++
}

// Get returns bit i.
func (v *Vector) Get(i int) bool {
	return v.words[i>>6]&(1<<uint(i&63)) != 0
}

// Build freezes the vector and constructs the rank directory and the select
// samples. Load calls Build too, so samples always exist on a frozen vector
// without being part of the on-disk format.
func (v *Vector) Build() {
	ns := (len(v.words) + wordsPerSuper - 1) / wordsPerSuper
	v.super = make([]uint64, ns+1)
	var c uint64
	for i, w := range v.words {
		if i%wordsPerSuper == 0 {
			v.super[i/wordsPerSuper] = c
		}
		c += uint64(bits.OnesCount64(w))
	}
	v.super[ns] = c
	v.ones = int(c)
	v.buildSelectSamples()
	v.frozen = true
}

// buildSelectSamples records, for every selSampleRate-th one and zero, the
// superblock that contains it. One monotone sweep over the rank directory.
func (v *Vector) buildSelectSamples() {
	v.selSamp1 = make([]int32, 0, v.ones/selSampleRate+1)
	sb := 0
	for k := 0; k*selSampleRate < v.ones; k++ {
		target := uint64(k * selSampleRate)
		for v.super[sb+1] <= target {
			sb++
		}
		v.selSamp1 = append(v.selSamp1, int32(sb))
	}
	zeros := v.n - v.ones
	v.selSamp0 = make([]int32, 0, zeros/selSampleRate+1)
	sb = 0
	for k := 0; k*selSampleRate < zeros; k++ {
		target := k * selSampleRate
		for (sb+1)*wordsPerSuper*64-int(v.super[sb+1]) <= target {
			sb++
		}
		v.selSamp0 = append(v.selSamp0, int32(sb))
	}
}

// Rank1 returns the number of 1 bits in positions [0, i), i in [0, Len()].
func (v *Vector) Rank1(i int) int {
	if i <= 0 {
		return 0
	}
	if i > v.n {
		i = v.n
	}
	w := i >> 6
	c := v.super[w/wordsPerSuper]
	for j := (w / wordsPerSuper) * wordsPerSuper; j < w; j++ {
		c += uint64(bits.OnesCount64(v.words[j]))
	}
	if rem := i & 63; rem != 0 {
		c += uint64(bits.OnesCount64(v.words[w] & xbits.Rank9WordMask(rem)))
	}
	return int(c)
}

// Rank0 returns the number of 0 bits in positions [0, i).
func (v *Vector) Rank0(i int) int {
	if i > v.n {
		i = v.n
	}
	if i < 0 {
		i = 0
	}
	return i - v.Rank1(i)
}

// Select1 returns the position of the (j+1)-th set bit (0-based j), or -1 if
// there are fewer than j+1 set bits. The sampled hints narrow the superblock
// binary search to the gap between two consecutive samples.
func (v *Vector) Select1(j int) int {
	if j < 0 || j >= v.ones {
		return -1
	}
	k := j / selSampleRate
	lo := int(v.selSamp1[k])
	hi := len(v.super) - 1
	if k+1 < len(v.selSamp1) {
		hi = int(v.selSamp1[k+1])
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if int(v.super[mid]) <= j {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	c := int(v.super[lo])
	for w := lo * wordsPerSuper; w < len(v.words); w++ {
		pc := bits.OnesCount64(v.words[w])
		if c+pc > j {
			return w*64 + xbits.SelectInWord(v.words[w], j-c)
		}
		c += pc
	}
	return -1
}

// Select0 returns the position of the (j+1)-th zero bit, or -1.
func (v *Vector) Select0(j int) int {
	if j < 0 || j >= v.n-v.ones {
		return -1
	}
	k := j / selSampleRate
	lo := int(v.selSamp0[k])
	hi := len(v.super) - 1
	if k+1 < len(v.selSamp0) {
		hi = int(v.selSamp0[k+1])
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		zerosBefore := mid*wordsPerSuper*64 - int(v.super[mid])
		if zerosBefore <= j {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	c := lo*wordsPerSuper*64 - int(v.super[lo])
	for w := lo * wordsPerSuper; w < len(v.words); w++ {
		pc := 64 - bits.OnesCount64(v.words[w])
		if c+pc > j {
			return w*64 + xbits.SelectInWord(^v.words[w], j-c)
		}
		c += pc
	}
	return -1
}

// Words exposes the raw words (for serialization).
func (v *Vector) Words() []uint64 { return v.words }

// SizeInBytes reports the memory footprint of the structure.
func (v *Vector) SizeInBytes() int {
	return 8*len(v.words) + 8*len(v.super) + 4*len(v.selSamp1) + 4*len(v.selSamp0) + 24
}

func (v *Vector) String() string {
	return fmt.Sprintf("bitvec[n=%d ones=%d]", v.n, v.ones)
}
