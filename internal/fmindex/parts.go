package fmindex

import (
	"errors"

	"repro/internal/bitvec"
)

// Parts is the serializable decomposition of an index: everything needed to
// rebuild the in-memory structure without re-running suffix sorting, which
// is what makes loading a saved index much faster than construction
// (the Figure 8 "index loading time" vs "construction time" gap).
type Parts struct {
	BWT        []byte // terminators collapsed to 0
	Doc        []int32
	Lens       []int32
	SampleRate int
	BSWords    []uint64 // sampled-row bitmap
	BSLen      int
	PS         []int32
}

// ErrBadParts reports an inconsistent Parts value.
var ErrBadParts = errors.New("fmindex: inconsistent index parts")

// Parts extracts the decomposition (the BWT is re-materialized from the
// wavelet tree).
func (x *Index) Parts() Parts {
	bwt := make([]byte, x.n)
	for i := range bwt {
		bwt[i] = x.bwt.Access(i)
	}
	return Parts{
		BWT:        bwt,
		Doc:        x.doc,
		Lens:       x.lens,
		SampleRate: x.l,
		BSWords:    x.bs.Words(),
		BSLen:      x.bs.Len(),
		PS:         x.ps,
	}
}

// NewFromParts rebuilds an index from its decomposition.
func NewFromParts(p Parts, builder SequenceBuilder) (*Index, error) {
	if builder == nil {
		builder = WaveletBuilder
	}
	d := len(p.Lens)
	idx := &Index{d: d, n: len(p.BWT), l: p.SampleRate, doc: p.Doc, lens: p.Lens, ps: p.PS}
	if p.BSLen != len(p.BWT) {
		return nil, ErrBadParts
	}
	// Rebuild the sampled-row bitmap.
	bs := bitvec.New(p.BSLen)
	copy(bs.Words(), p.BSWords)
	bs.Build()
	idx.bs = bs
	if bs.Ones() != len(p.PS) {
		return nil, ErrBadParts
	}
	// Terminator count must match d.
	nTerm := 0
	for _, b := range p.BWT {
		idx.c[int(b)+1]++
		if b == 0 {
			nTerm++
		}
	}
	if nTerm != d || len(p.Doc) != d {
		if !(d == 0 && nTerm == 0) {
			return nil, ErrBadParts
		}
	}
	for i := 1; i <= 256; i++ {
		idx.c[i] += idx.c[i-1]
	}
	// Text start positions from the lengths.
	starts := make([]int, d)
	pos := 0
	for i, l := range p.Lens {
		starts[i] = pos
		pos += int(l) + 1
	}
	if d == 0 {
		idx.strt = bitvec.NewSparse(1, nil)
	} else {
		idx.strt = bitvec.NewSparse(idx.n+1, starts)
	}
	idx.bwt = builder(p.BWT)
	return idx, nil
}
