package fmindex

import (
	"io"

	"repro/internal/bitvec"
	"repro/internal/persist"
	"repro/internal/wavelet"
)

// On-disk layout: the sampling metadata (Doc array, text lengths, sampled
// positions and the sampled-row bitmap) plus the BWT sequence itself. When
// the sequence is the default wavelet tree it is stored structurally, so
// loading attaches the node bitmaps without re-running the symbol
// distribution pass; any other RankSequence falls back to the raw BWT
// string and is rebuilt by the caller's SequenceBuilder. Either way the
// suffix sort — the dominant construction cost — never runs on load.

const indexFormat = 1

// Sequence payload kinds.
const (
	seqRawBWT  = 0 // raw BWT byte string, rebuilt via the SequenceBuilder
	seqWavelet = 1 // structured wavelet tree
)

// Store serializes the index into pw.
func (x *Index) Store(pw *persist.Writer) {
	pw.Byte(indexFormat)
	pw.Int(x.n)
	pw.Int(x.d)
	pw.Int(x.l)
	pw.Int32s(x.lens)
	pw.Int32s(x.doc)
	pw.Int32s(x.ps)
	x.bs.Store(pw)
	if wt, ok := x.bwt.(storedTree); ok {
		pw.Byte(seqWavelet)
		wt.Store(pw)
	} else {
		pw.Byte(seqRawBWT)
		bwt := make([]byte, x.n)
		for i := range bwt {
			bwt[i] = x.bwt.Access(i)
		}
		pw.Bytes(bwt)
	}
}

// storedTree is the structural-serialization hook: the wavelet tree
// satisfies it; other rank sequences take the raw-BWT path.
type storedTree interface {
	RankSequence
	Store(pw *persist.Writer)
}

// Read reads an index written by Store. builder rebuilds the rank sequence
// when the stored payload is a raw BWT (or when a non-nil builder must
// override a structurally stored wavelet tree). A nil builder keeps the
// stored wavelet tree as is. On corrupt input Read returns nil and leaves
// the error in pr.
func Read(pr persist.Source, builder SequenceBuilder) *Index {
	if pr.Check(pr.Byte() == indexFormat, "unknown fm-index format") != nil {
		return nil
	}
	x := &Index{}
	x.n = pr.Int()
	x.d = pr.Int()
	x.l = pr.Int()
	x.lens = pr.Int32s()
	x.doc = pr.Int32s()
	x.ps = pr.Int32s()
	x.bs = bitvec.ReadVector(pr)
	if pr.Err() != nil {
		return nil
	}
	// Anchor n to the sampled-row bitmap before decoding the sequence: the
	// bitmap's length is backed by actually-read words, so a corrupt n
	// cannot drive the BWT materialization below (size or index-wise).
	if pr.Check(x.bs.Len() == x.n, "fm-index length mismatch") != nil {
		return nil
	}
	// The sampling metadata is fully decoded here, so its validation and
	// the text-start directory build are independent of the sequence
	// decode below. On mapped sources — where this sits on the open-latency
	// path — the two run concurrently; the goroutine must not touch pr.
	done := make(chan sampleCheck, 1)
	_, overlap := pr.(*persist.MReader)
	drained := !overlap
	// Every return path must join the goroutine: it reads slices that may
	// alias a mapping the caller unmaps as soon as Read reports an error.
	defer func() {
		if !drained {
			<-done
		}
	}()
	if overlap {
		go func() {
			defer func() {
				if r := recover(); r != nil {
					done <- sampleCheck{what: "fm-index sample validation failure"}
				}
			}()
			done <- x.validateSamples()
		}()
	}
	kind := pr.Byte()
	switch kind {
	case seqWavelet:
		wt := wavelet.Read(pr)
		if wt == nil {
			return nil
		}
		if pr.Check(wt.Len() == x.n, "bwt length mismatch") != nil {
			return nil
		}
		if builder != nil {
			// The caller wants a different sequence type: re-materialize the
			// BWT and hand it over.
			bwt := make([]byte, x.n)
			for i := range bwt {
				bwt[i] = wt.Access(i)
			}
			x.bwt = builder(bwt)
		} else {
			x.bwt = wt
		}
	case seqRawBWT:
		bwt := pr.Bytes()
		if pr.Check(len(bwt) == x.n, "bwt length mismatch") != nil {
			return nil
		}
		if builder == nil {
			builder = WaveletBuilder
		}
		x.bwt = builder(bwt)
	default:
		pr.Check(false, "unknown bwt sequence kind")
		return nil
	}
	var sc sampleCheck
	if overlap {
		sc = <-done
		drained = true
	} else {
		sc = x.validateSamples()
	}
	if pr.Check(sc.what == "", sc.what) != nil {
		return nil
	}
	x.strt = sc.strt
	if pr.Check(x.bwt.Len() == x.n && x.bwt.Count(0) == x.d, "fm-index component mismatch") != nil {
		return nil
	}
	for c := 0; c < 256; c++ {
		x.c[c+1] = x.c[c] + x.bwt.Count(byte(c))
	}
	return x
}

// sampleCheck is the outcome of validateSamples: an empty what means the
// metadata is consistent and strt is the text-start directory.
type sampleCheck struct {
	what string
	strt *bitvec.Sparse
}

// validateSamples cross-checks the sampling metadata (text lengths, doc
// identifiers, sampled positions) and builds the text-start sparse vector.
// It depends only on fields decoded before the sequence payload and is
// free of Source access, so the mapped load path overlaps it with the
// wavelet decode.
func (x *Index) validateSamples() sampleCheck {
	if len(x.lens) != x.d || len(x.doc) != x.d || x.bs.Ones() != len(x.ps) || x.l <= 0 {
		return sampleCheck{what: "fm-index component mismatch"}
	}
	total := 0
	for _, l := range x.lens {
		if l < 0 {
			return sampleCheck{what: "negative text length"}
		}
		total += int(l) + 1
	}
	if x.d > 0 && total != x.n {
		return sampleCheck{what: "text lengths do not sum to collection size"}
	}
	for _, id := range x.doc {
		if id < 0 || int(id) >= x.d {
			return sampleCheck{what: "doc identifier out of range"}
		}
	}
	for _, p := range x.ps {
		if p < 0 || int(p) >= x.n {
			return sampleCheck{what: "sampled position out of range"}
		}
	}
	if x.d == 0 {
		return sampleCheck{strt: bitvec.NewSparse(1, nil)}
	}
	// Stream the text-start positions straight out of the lengths — no
	// intermediate array; this sits on the mapped open-latency path.
	pos := 0
	return sampleCheck{strt: bitvec.NewSparseSeq(x.n+1, x.d, func(i int) int {
		p := pos
		pos += int(x.lens[i]) + 1
		return p
	})}
}

// Save serializes the index to w.
func (x *Index) Save(w io.Writer) error {
	pw := persist.NewWriter(w)
	x.Store(pw)
	return pw.Flush()
}

// Load reads an index written by Save; builder is as in Read.
func Load(r io.Reader, builder SequenceBuilder) (*Index, error) {
	pr := persist.NewReader(r)
	x := Read(pr, builder)
	if pr.Err() != nil {
		return nil, pr.Err()
	}
	return x, nil
}
