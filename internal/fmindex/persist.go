package fmindex

import (
	"io"

	"repro/internal/bitvec"
	"repro/internal/persist"
	"repro/internal/wavelet"
)

// On-disk layout: the sampling metadata (Doc array, text lengths, sampled
// positions and the sampled-row bitmap) plus the BWT sequence itself. When
// the sequence is the default wavelet tree it is stored structurally, so
// loading attaches the node bitmaps without re-running the symbol
// distribution pass; any other RankSequence falls back to the raw BWT
// string and is rebuilt by the caller's SequenceBuilder. Either way the
// suffix sort — the dominant construction cost — never runs on load.

const indexFormat = 1

// Sequence payload kinds.
const (
	seqRawBWT  = 0 // raw BWT byte string, rebuilt via the SequenceBuilder
	seqWavelet = 1 // structured wavelet tree
)

// Store serializes the index into pw.
func (x *Index) Store(pw *persist.Writer) {
	pw.Byte(indexFormat)
	pw.Int(x.n)
	pw.Int(x.d)
	pw.Int(x.l)
	pw.Int32s(x.lens)
	pw.Int32s(x.doc)
	pw.Int32s(x.ps)
	x.bs.Store(pw)
	if wt, ok := x.bwt.(storedTree); ok {
		pw.Byte(seqWavelet)
		wt.Store(pw)
	} else {
		pw.Byte(seqRawBWT)
		bwt := make([]byte, x.n)
		for i := range bwt {
			bwt[i] = x.bwt.Access(i)
		}
		pw.Bytes(bwt)
	}
}

// storedTree is the structural-serialization hook: the wavelet tree
// satisfies it; other rank sequences take the raw-BWT path.
type storedTree interface {
	RankSequence
	Store(pw *persist.Writer)
}

// Read reads an index written by Store. builder rebuilds the rank sequence
// when the stored payload is a raw BWT (or when a non-nil builder must
// override a structurally stored wavelet tree). A nil builder keeps the
// stored wavelet tree as is. On corrupt input Read returns nil and leaves
// the error in pr.
func Read(pr *persist.Reader, builder SequenceBuilder) *Index {
	if pr.Check(pr.Byte() == indexFormat, "unknown fm-index format") != nil {
		return nil
	}
	x := &Index{}
	x.n = pr.Int()
	x.d = pr.Int()
	x.l = pr.Int()
	x.lens = pr.Int32s()
	x.doc = pr.Int32s()
	x.ps = pr.Int32s()
	x.bs = bitvec.ReadVector(pr)
	if pr.Err() != nil {
		return nil
	}
	// Anchor n to the sampled-row bitmap before decoding the sequence: the
	// bitmap's length is backed by actually-read words, so a corrupt n
	// cannot drive the BWT materialization below (size or index-wise).
	if pr.Check(x.bs.Len() == x.n, "fm-index length mismatch") != nil {
		return nil
	}
	kind := pr.Byte()
	switch kind {
	case seqWavelet:
		wt := wavelet.Read(pr)
		if wt == nil {
			return nil
		}
		if pr.Check(wt.Len() == x.n, "bwt length mismatch") != nil {
			return nil
		}
		if builder != nil {
			// The caller wants a different sequence type: re-materialize the
			// BWT and hand it over.
			bwt := make([]byte, x.n)
			for i := range bwt {
				bwt[i] = wt.Access(i)
			}
			x.bwt = builder(bwt)
		} else {
			x.bwt = wt
		}
	case seqRawBWT:
		bwt := pr.Bytes()
		if pr.Check(len(bwt) == x.n, "bwt length mismatch") != nil {
			return nil
		}
		if builder == nil {
			builder = WaveletBuilder
		}
		x.bwt = builder(bwt)
	default:
		pr.Check(false, "unknown bwt sequence kind")
		return nil
	}
	if err := x.finishLoad(pr); err != nil {
		return nil
	}
	return x
}

// finishLoad validates the decoded components against each other and
// derives the redundant parts (C array, text-start positions).
func (x *Index) finishLoad(pr *persist.Reader) error {
	ok := x.bwt.Len() == x.n &&
		len(x.lens) == x.d &&
		len(x.doc) == x.d &&
		x.bwt.Count(0) == x.d &&
		x.bs.Len() == x.n &&
		x.bs.Ones() == len(x.ps) &&
		x.l > 0
	if err := pr.Check(ok, "fm-index component mismatch"); err != nil {
		return err
	}
	total := 0
	for _, l := range x.lens {
		if err := pr.Check(l >= 0, "negative text length"); err != nil {
			return err
		}
		total += int(l) + 1
	}
	if x.d > 0 {
		if err := pr.Check(total == x.n, "text lengths do not sum to collection size"); err != nil {
			return err
		}
	}
	for _, id := range x.doc {
		if err := pr.Check(id >= 0 && int(id) < x.d, "doc identifier out of range"); err != nil {
			return err
		}
	}
	for _, p := range x.ps {
		if err := pr.Check(p >= 0 && int(p) < x.n, "sampled position out of range"); err != nil {
			return err
		}
	}
	for c := 0; c < 256; c++ {
		x.c[c+1] = x.c[c] + x.bwt.Count(byte(c))
	}
	starts := make([]int, x.d)
	pos := 0
	for i, l := range x.lens {
		starts[i] = pos
		pos += int(l) + 1
	}
	if x.d == 0 {
		x.strt = bitvec.NewSparse(1, nil)
	} else {
		x.strt = bitvec.NewSparse(x.n+1, starts)
	}
	return nil
}

// Save serializes the index to w.
func (x *Index) Save(w io.Writer) error {
	pw := persist.NewWriter(w)
	x.Store(pw)
	return pw.Flush()
}

// Load reads an index written by Save; builder is as in Read.
func Load(r io.Reader, builder SequenceBuilder) (*Index, error) {
	pr := persist.NewReader(r)
	x := Read(pr, builder)
	if pr.Err() != nil {
		return nil, pr.Err()
	}
	return x, nil
}
