// Package fmindex implements the FM-index self-index over a collection of
// texts (paper Section 3): Burrows–Wheeler transform with a wavelet-tree
// rank structure, backward search, regular position sampling for locating,
// and the Doc array that maps BWT end-markers to text identifiers with the
// fixed ordering "the terminator of the i-th text appears at F[i]".
//
// All the XPath text predicates of Section 3.2 are provided: starts-with,
// ends-with, equality, contains (global count, per-text count, reporting)
// and the lexicographic operators.
package fmindex

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/bitvec"
	"repro/internal/sais"
	"repro/internal/wavelet"
)

// RankSequence is the symbol-sequence abstraction the index needs for the
// BWT: access, partial rank and global count. The default implementation is
// the Huffman-shaped wavelet tree; the run-length sequence of package rlfm
// can be plugged in for highly repetitive collections (Section 6.7).
type RankSequence interface {
	Access(i int) byte
	// Rank returns the number of occurrences of c in the prefix [0, i).
	Rank(c byte, i int) int
	Count(c byte) int
	Len() int
	SizeInBytes() int
}

// SequenceBuilder turns the raw BWT byte string into a RankSequence.
type SequenceBuilder func(bwt []byte) RankSequence

// WaveletBuilder is the default SequenceBuilder.
func WaveletBuilder(bwt []byte) RankSequence { return wavelet.New(bwt) }

// Options configure index construction.
type Options struct {
	// SampleRate is the text-position sampling step l (Section 3.1). Every
	// l-th position of T is sampled for locating. Default 64.
	SampleRate int
	// Builder constructs the BWT rank structure. Default WaveletBuilder.
	Builder SequenceBuilder
}

// Index is the FM-index over a text collection.
type Index struct {
	bwt  RankSequence
	c    [257]int // c[x] = number of symbols < x in T (terminators are symbol 0)
	doc  []int32  // doc[r] = id of the text *starting* at the r-th $ of the BWT
	d    int      // number of texts
	n    int      // |T| including one terminator per text
	l    int      // sampling step
	bs   *bitvec.Vector
	ps   []int32        // global position samples, in bwt-rank order
	strt *bitvec.Sparse // bit at the global start position of each text
	lens []int32        // text lengths (without terminator)
}

// ErrNulByte reports a text containing the reserved terminator byte.
var ErrNulByte = errors.New("fmindex: text contains NUL byte (reserved terminator)")

// ErrTooLarge reports a text collection too long for the int32 position
// arithmetic of the suffix sorter: the total length including one
// terminator per text must stay below 2^31-1 symbols. It aliases
// sais.ErrTooLarge so either spelling matches with errors.Is.
var ErrTooLarge = sais.ErrTooLarge

// collectionSize returns |T| — the total length including one terminator
// per text — and validates it against the suffix sorter's int32 position
// limit. This is the shared entry-point guard: New, NewCtx and NewParallel
// all reject oversized collections here instead of silently corrupting the
// suffix array downstream.
func collectionSize(texts [][]byte) (int, error) {
	n := 0
	for _, t := range texts {
		n += len(t) + 1
	}
	if err := sais.CheckSize(n); err != nil {
		return 0, fmt.Errorf("fmindex: %w", err)
	}
	return n, nil
}

// New builds the index over the given texts. Texts must not contain byte 0.
func New(texts [][]byte, opts Options) (*Index, error) {
	return NewCtx(context.Background(), texts, opts)
}

// NewCtx is New with cancellation: the suffix sort — the dominant
// construction cost — polls ctx at bounded intervals, and the surrounding
// passes check it between stages.
func NewCtx(ctx context.Context, texts [][]byte, opts Options) (*Index, error) {
	if opts.SampleRate <= 0 {
		opts.SampleRate = 64
	}
	if opts.Builder == nil {
		opts.Builder = WaveletBuilder
	}
	d := len(texts)
	n, err := collectionSize(texts)
	if err != nil {
		return nil, err
	}
	idx := &Index{d: d, n: n, l: opts.SampleRate}
	if d == 0 {
		idx.bwt = opts.Builder(nil)
		idx.bs = bitvec.FromBools(nil)
		idx.strt = bitvec.NewSparse(1, nil)
		return idx, nil
	}

	// Build the integer string: terminator of text i gets value i (so that
	// terminators sort below all characters and by text identifier), and
	// character c gets value d + c.
	s := make([]int32, 0, n)
	starts := make([]int, d)
	idx.lens = make([]int32, d)
	for i, t := range texts {
		if i&0xfff == 0 {
			if err := ctxErr(ctx); err != nil {
				return nil, err
			}
		}
		starts[i] = len(s)
		idx.lens[i] = int32(len(t))
		for _, ch := range t {
			if ch == 0 {
				return nil, ErrNulByte
			}
			s = append(s, int32(d)+int32(ch))
		}
		s = append(s, int32(i))
	}
	idx.strt = bitvec.NewSparse(n+1, starts)

	sa, err := sais.ComputeCtx(ctx, s, d+256)
	if err != nil {
		return nil, err
	}

	// BWT with terminators collapsed to byte 0; build doc and samples.
	bwt := make([]byte, n)
	sampled := bitvec.New(n)
	var psTmp []int32
	for i, p := range sa {
		if i&(mergePollStride-1) == 0 {
			if err := ctxErr(ctx); err != nil {
				return nil, err
			}
		}
		var prev int32
		if p == 0 {
			prev = s[n-1]
		} else {
			prev = s[p-1]
		}
		if prev < int32(d) {
			bwt[i] = 0
			// The terminator of text `prev` precedes suffix position p, so
			// text (prev+1) mod d starts here; per the paper's Doc
			// convention we record the id of the text starting at p.
			idx.doc = append(idx.doc, (prev+1)%int32(d))
		} else {
			bwt[i] = byte(prev - int32(d))
		}
		if int(p)%idx.l == 0 {
			sampled.Set(i)
			psTmp = append(psTmp, p)
		}
	}
	sampled.Build()
	idx.bs = sampled
	// ps must be in bwt-position order of the sampled rows; we appended in
	// increasing row order already.
	idx.ps = psTmp

	for i, b := range bwt {
		if i&(mergePollStride-1) == 0 {
			if err := ctxErr(ctx); err != nil {
				return nil, err
			}
		}
		idx.c[int(b)+1]++
	}
	for i := 1; i <= 256; i++ {
		idx.c[i] += idx.c[i-1]
	}
	idx.bwt = opts.Builder(bwt)
	return idx, nil
}

// NumTexts returns the number of texts d in the collection.
func (x *Index) NumTexts() int { return x.d }

// Size returns |T|, the total length including one terminator per text.
func (x *Index) Size() int { return x.n }

// TextLen returns the length of text id (without terminator).
func (x *Index) TextLen(id int) int { return int(x.lens[id]) }

// LF computes the last-to-first mapping for BWT row i.
func (x *Index) LF(i int) int {
	c := x.bwt.Access(i)
	if c == 0 {
		// Row of the terminator of the text preceding doc[r]: terminator
		// rows occupy F[0..d) ordered by text id.
		r := x.bwt.Rank(0, i)
		return int(x.doc[r]-1+int32(x.d)) % x.d
	}
	return x.c[c] + x.bwt.Rank(c, i)
}

// Step performs one backward-search step: it narrows the half-open row range
// [sp, ep) to rows whose suffixes are preceded by character c.
func (x *Index) Step(c byte, sp, ep int) (int, int) {
	return x.c[c] + x.bwt.Rank(c, sp), x.c[c] + x.bwt.Rank(c, ep)
}

// BackwardSearch returns the half-open BWT row range matching pattern p, or
// an empty range.
func (x *Index) BackwardSearch(p []byte) (int, int) {
	sp, ep := 0, x.n
	for i := len(p) - 1; i >= 0 && sp < ep; i-- {
		sp, ep = x.Step(p[i], sp, ep)
	}
	return sp, ep
}

// GlobalCount returns the total number of occurrences of p in T.
func (x *Index) GlobalCount(p []byte) int {
	sp, ep := x.BackwardSearch(p)
	if ep < sp {
		return 0
	}
	return ep - sp
}

// locateRow returns the global position in T of the suffix at BWT row i.
func (x *Index) locateRow(i int) int {
	steps := 0
	for {
		if x.bs.Get(i) {
			return int(x.ps[x.bs.Rank1(i)]) + steps
		}
		c := x.bwt.Access(i)
		if c == 0 {
			// Suffix starts at the beginning of text doc[r].
			r := x.bwt.Rank(0, i)
			return x.strt.Select1(int(x.doc[r])) + steps
		}
		i = x.c[c] + x.bwt.Rank(c, i)
		steps++
	}
}

// PosToText maps a global position of T to (text id, offset inside text).
func (x *Index) PosToText(p int) (int, int) {
	id := x.strt.Rank1(p+1) - 1
	return id, p - x.strt.Select1(id)
}

// Occurrence is a located pattern match.
type Occurrence struct {
	Text   int // text identifier
	Offset int // 0-based offset within the text
}

// LocateRow locates the suffix at BWT row i and maps it to a text position.
// It is the building block external searchers (e.g. the PSSM backtracking
// of Section 6.7) use to report matches from interval ranges.
func (x *Index) LocateRow(i int) Occurrence {
	g := x.locateRow(i)
	t, off := x.PosToText(g)
	return Occurrence{Text: t, Offset: off}
}

// Locate reports all occurrences of p, unordered.
func (x *Index) Locate(p []byte) []Occurrence {
	sp, ep := x.BackwardSearch(p)
	occs := make([]Occurrence, 0, max(0, ep-sp))
	for i := sp; i < ep; i++ {
		g := x.locateRow(i)
		t, off := x.PosToText(g)
		occs = append(occs, Occurrence{Text: t, Offset: off})
	}
	return occs
}

// Contains returns the sorted identifiers of the distinct texts containing p.
func (x *Index) Contains(p []byte) []int {
	sp, ep := x.BackwardSearch(p)
	seen := make(map[int]struct{})
	for i := sp; i < ep; i++ {
		g := x.locateRow(i)
		t, _ := x.PosToText(g)
		seen[t] = struct{}{}
	}
	ids := make([]int, 0, len(seen))
	for t := range seen {
		ids = append(ids, t)
	}
	sort.Ints(ids)
	return ids
}

// ContainsCount returns the number of distinct texts containing p.
func (x *Index) ContainsCount(p []byte) int { return len(x.Contains(p)) }

// ContainsAny reports whether any text contains p (existential query).
func (x *Index) ContainsAny(p []byte) bool {
	sp, ep := x.BackwardSearch(p)
	return ep > sp
}

// StartsWith returns the sorted ids of texts having p as a prefix. After the
// backward search, rows whose BWT character is the terminator correspond to
// texts starting with p; Doc yields their identifiers directly (Section 3.2).
func (x *Index) StartsWith(p []byte) []int {
	sp, ep := x.BackwardSearch(p)
	if ep <= sp {
		return nil
	}
	r0, r1 := x.bwt.Rank(0, sp), x.bwt.Rank(0, ep)
	ids := make([]int, 0, r1-r0)
	for r := r0; r < r1; r++ {
		ids = append(ids, int(x.doc[r]))
	}
	sort.Ints(ids)
	return ids
}

// StartsWithCount counts texts having p as a prefix without reporting them.
func (x *Index) StartsWithCount(p []byte) int {
	sp, ep := x.BackwardSearch(p)
	if ep <= sp {
		return 0
	}
	return x.bwt.Rank(0, ep) - x.bwt.Rank(0, sp)
}

// EndsWith returns the sorted ids of texts having p as a suffix. The search
// starts from the terminator rows F[0..d) (Section 3.2).
func (x *Index) EndsWith(p []byte) []int {
	sp, ep := x.endsWithRange(p)
	ids := make([]int, 0, ep-sp)
	for i := sp; i < ep; i++ {
		g := x.locateRow(i)
		t, _ := x.PosToText(g)
		ids = append(ids, t)
	}
	sort.Ints(ids)
	return ids
}

// EndsWithCount counts texts with suffix p in constant time after the search.
func (x *Index) EndsWithCount(p []byte) int {
	sp, ep := x.endsWithRange(p)
	return ep - sp
}

func (x *Index) endsWithRange(p []byte) (int, int) {
	sp, ep := 0, x.d // terminator rows
	for i := len(p) - 1; i >= 0 && sp < ep; i-- {
		sp, ep = x.Step(p[i], sp, ep)
	}
	if ep < sp {
		return 0, 0
	}
	return sp, ep
}

// Equals returns the sorted ids of texts exactly equal to p: an ends-with
// search followed by the starts-with mapping to terminators.
func (x *Index) Equals(p []byte) []int {
	sp, ep := x.endsWithRange(p)
	if ep <= sp {
		return nil
	}
	r0, r1 := x.bwt.Rank(0, sp), x.bwt.Rank(0, ep)
	ids := make([]int, 0, r1-r0)
	for r := r0; r < r1; r++ {
		ids = append(ids, int(x.doc[r]))
	}
	sort.Ints(ids)
	return ids
}

// EqualsCount counts texts equal to p.
func (x *Index) EqualsCount(p []byte) int {
	sp, ep := x.endsWithRange(p)
	if ep <= sp {
		return 0
	}
	return x.bwt.Rank(0, ep) - x.bwt.Rank(0, sp)
}

// lowerBound returns the BWT row insertion point of pattern p: the number of
// rows whose suffix is lexicographically smaller than p.
func (x *Index) lowerBound(p []byte) int {
	// Process the pattern backwards. When the range becomes empty the
	// pattern does not occur, but the steps still refine the insertion
	// point correctly (sp == ep is maintained by Step), so no special case
	// is needed (Section 3.2, operators <=, <, >, >=).
	sp, ep := 0, x.n
	for i := len(p) - 1; i >= 0; i-- {
		sp, ep = x.Step(p[i], sp, ep)
	}
	return sp
}

// LessThanCount returns the number of texts lexicographically smaller than p.
func (x *Index) LessThanCount(p []byte) int {
	sp := x.lowerBound(p)
	// Texts strictly below p are exactly the text-start rows under sp.
	return x.bwt.Rank(0, sp)
}

// LessEqCount returns the number of texts <= p.
func (x *Index) LessEqCount(p []byte) int { return x.LessThanCount(p) + x.EqualsCount(p) }

// GreaterThanCount returns the number of texts > p.
func (x *Index) GreaterThanCount(p []byte) int { return x.d - x.LessEqCount(p) }

// GreaterEqCount returns the number of texts >= p.
func (x *Index) GreaterEqCount(p []byte) int { return x.d - x.LessThanCount(p) }

// Extract reproduces text id from the self-index alone, walking the BWT
// backwards from the text's terminator row (Section 3.3), at O(log sigma)
// cost per symbol.
func (x *Index) Extract(id int) []byte {
	if id < 0 || id >= x.d {
		return nil
	}
	out := make([]byte, x.lens[id])
	i := id // row of terminator of text id
	for k := len(out) - 1; k >= 0; k-- {
		c := x.bwt.Access(i)
		out[k] = c
		i = x.c[c] + x.bwt.Rank(c, i)
	}
	return out
}

// SizeInBytes reports the memory footprint of the structure.
func (x *Index) SizeInBytes() int {
	return x.bwt.SizeInBytes() + 257*8 + 4*len(x.doc) + x.bs.SizeInBytes() +
		4*len(x.ps) + x.strt.SizeInBytes() + 4*len(x.lens) + 64
}

func (x *Index) String() string {
	return fmt.Sprintf("fmindex[n=%d d=%d l=%d]", x.n, x.d, x.l)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
