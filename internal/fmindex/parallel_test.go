package fmindex

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// saveBytes serializes an index the way .sxsi files embed it; byte equality
// here is what makes parallel and serial builds produce identical files.
func saveBytes(t *testing.T, x *Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := x.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// assertIdentical pins the parallel build against the serial one: identical
// serialized bytes and identical in-memory tables (c and strt are not part
// of the serialized payload, so they are compared directly).
func assertIdentical(t *testing.T, texts [][]byte, opts Options, bo BuildOptions) {
	t.Helper()
	want, err := New(texts, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewParallel(context.Background(), texts, opts, bo)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saveBytes(t, want), saveBytes(t, got)) {
		t.Fatalf("serialized bytes differ (procs=%d budget=%d)", bo.Procs, bo.MemoryBudget)
	}
	if want.c != got.c {
		t.Fatalf("c tables differ (procs=%d budget=%d)", bo.Procs, bo.MemoryBudget)
	}
	if !reflect.DeepEqual(want.doc, got.doc) || !reflect.DeepEqual(want.ps, got.ps) {
		t.Fatal("doc/ps differ")
	}
	for i := 0; i < len(texts); i++ {
		if want.strt.Select1(i) != got.strt.Select1(i) {
			t.Fatalf("strt differs at text %d", i)
		}
	}
}

// randomTexts draws a collection over the given alphabet, including empty
// texts roughly one time in eight.
func randomTexts(rng *rand.Rand, d, maxLen, sigma int) [][]byte {
	texts := make([][]byte, d)
	for i := range texts {
		if rng.Intn(8) == 0 {
			texts[i] = []byte{}
			continue
		}
		n := rng.Intn(maxLen + 1)
		b := make([]byte, n)
		for j := range b {
			b[j] = byte(1 + rng.Intn(sigma)) // never 0
		}
		texts[i] = b
	}
	return texts
}

func TestParallelEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := []struct{ d, maxLen, sigma int }{
		{1, 300, 26},
		{5, 100, 2},    // tiny alphabet: long shared prefixes, deep ties
		{40, 200, 26},  // many texts, empties mixed in
		{12, 400, 200}, // wide alphabet
		{30, 50, 1},    // unary alphabet: every suffix pair ties
	}
	budgets := []int64{0, 1 << 20}
	procs := []int{1, 2, 8}
	for si, sh := range shapes {
		texts := randomTexts(rng, sh.d, sh.maxLen, sh.sigma)
		for _, p := range procs {
			for _, b := range budgets {
				bo := BuildOptions{Procs: p, MemoryBudget: b, TempDir: t.TempDir()}
				assertIdentical(t, texts, Options{SampleRate: 4}, bo)
				_ = si
			}
		}
	}
}

func TestParallelEdgeCases(t *testing.T) {
	cases := map[string][][]byte{
		"empty collection": nil,
		"one empty text":   {{}},
		"all empty":        {{}, {}, {}, {}},
		"single text":      {[]byte("mississippi")},
		"prefix chain":     {[]byte("a"), []byte("ab"), []byte("abc"), []byte("abcd"), []byte("")},
		"identical texts":  {[]byte("abab"), []byte("abab"), []byte("abab")},
	}
	for name, texts := range cases {
		t.Run(name, func(t *testing.T) {
			for _, p := range []int{1, 3} {
				assertIdentical(t, texts, Options{SampleRate: 4},
					BuildOptions{Procs: p, TempDir: t.TempDir()})
			}
		})
	}
}

// A tight budget must force multiple chunks and spilling, exercise the
// split-and-merge machinery on a skewed two-letter alphabet, still produce
// identical bytes, and leave no spill files behind.
func TestParallelTightBudgetSpills(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	texts := randomTexts(rng, 64, 8<<10, 2)
	dir := t.TempDir()
	var st BuildStats
	bo := BuildOptions{Procs: 8, MemoryBudget: 1 << 20, TempDir: dir, Stats: &st}
	assertIdentical(t, texts, Options{SampleRate: 16}, bo)
	if st.Chunks < 2 {
		t.Fatalf("expected multiple chunks, got %d", st.Chunks)
	}
	if !st.Spilled {
		t.Fatal("expected the tight budget to spill suffix arrays")
	}
	left, err := filepath.Glob(filepath.Join(dir, "sxsi-sa-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("spill files left behind: %v", left)
	}
}

func TestParallelNulByte(t *testing.T) {
	_, err := NewParallel(context.Background(), [][]byte{[]byte("ok"), {1, 0, 2}},
		Options{}, BuildOptions{Procs: 2, TempDir: t.TempDir()})
	if !errors.Is(err, ErrNulByte) {
		t.Fatalf("want ErrNulByte, got %v", err)
	}
}

// Cancellation must propagate out of the chunk sort and leave the spill
// directory clean.
func TestParallelCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	texts := randomTexts(rng, 16, 64<<10, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dir := t.TempDir()
	_, err := NewParallel(ctx, texts, Options{},
		BuildOptions{Procs: 4, MemoryBudget: 1 << 20, TempDir: dir})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("temp files left after cancellation: %v", ents)
	}
}
