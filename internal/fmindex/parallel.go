package fmindex

// Parallel, memory-bounded FM-index construction (the write-side
// counterpart of the mmap read path). The serial builder suffix-sorts the
// whole collection at once; this file chunks the text collection at text
// boundaries, runs SA-IS over the chunks concurrently, and merges the
// per-chunk suffix orders back into the one global order the serial builder
// produces — the resulting Index is byte-for-byte identical to New's, which
// the equivalence suite pins across corpora, worker counts and budgets.
//
// Why per-chunk sorting is exact: every text carries a distinct terminator
// that sorts below all characters and by text identifier (Section 3.2's
// fixed ordering), so any two distinct suffixes differ at or before the
// first terminator either one contains. Suffix comparisons therefore never
// cross a text boundary, a chunk-local sort (with terminators renumbered
// 0..m-1, preserving relative order) agrees with the global order, and two
// suffixes from different chunks compare by their raw text bytes with the
// "prefix is smaller" rule plus a text-id tie-break — exactly
// bytes.Compare semantics.
//
// The merge is parallel too: the global suffix order splits into
// independent output segments by suffix prefix (the d terminator rows
// first, then one bucket per leading byte, recursively refined while a
// bucket stays oversized), and every segment k-way-merges its per-chunk
// subranges into a disjoint range of the output BWT.
//
// Memory is bounded by construction: the chunk size caps the SA-IS working
// set per worker, and when holding every chunk's suffix array in RAM would
// exceed the budget they are spilled to temporary files and streamed back
// during the merge.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/bitvec"
	"repro/internal/sais"
)

// BuildOptions tune the parallel builder. The zero value builds with all
// CPUs, unbounded memory and the system temp directory.
type BuildOptions struct {
	// Procs is the number of concurrent workers for the sort and merge
	// stages (0 = GOMAXPROCS). Any value produces the same index.
	Procs int
	// MemoryBudget bounds the transient construction memory in bytes: the
	// concurrent SA-IS working sets, the retained per-chunk suffix arrays
	// (spilled to disk when they alone would blow the budget) and the BWT
	// scratch buffer. 0 means unbounded. The budget cannot undercut the
	// hard floor of one BWT buffer (|T| bytes) plus one minimal chunk
	// working set; smaller budgets are honored best-effort at that floor.
	MemoryBudget int64
	// TempDir receives suffix-array spill files ("" = os.TempDir()).
	TempDir string
	// Stats, when non-nil, receives the realized plan (observability and
	// test hooks).
	Stats *BuildStats
}

// BuildStats reports what the planner decided.
type BuildStats struct {
	Chunks     int   // number of text-collection chunks sorted independently
	Procs      int   // realized worker count
	Spilled    bool  // whether chunk suffix arrays went through temp files
	MergeTasks int   // number of independent merge segments
	ChunkSyms  int   // target chunk size in symbols
	Transient  int64 // planned transient-memory estimate in bytes
}

const (
	// saisBytesPerSym estimates the SA-IS working set per input symbol:
	// the int32 chunk string, the sorter's shifted copy and output array
	// (4 bytes each), the type bitmap, and the geometric recursion tail.
	saisBytesPerSym = 18
	// minChunkSyms floors the chunk size: below this, per-chunk fixed
	// costs (alphabet buckets, goroutines, spill files) dominate.
	minChunkSyms = 64 << 10
	// maxChunks caps the merge fan-in so heap depth and spill-file
	// buffers stay bounded even under tiny budgets.
	maxChunks = 512
	// minTaskRows is the smallest merge segment worth splitting further.
	minTaskRows = 16 << 10
	// maxSplitDepth bounds prefix refinement of oversized buckets; ties
	// deeper than this are rare enough that balance no longer matters.
	maxSplitDepth = 8
	// mergePollStride is how many output rows a merge segment emits
	// between context polls.
	mergePollStride = 1 << 16
	// spillBufBytes is the write buffer per spill file and the read
	// buffer per (segment, chunk) cursor when suffix arrays are spilled.
	spillBufBytes = 64 << 10
)

// NewParallel builds the same index as New over the given texts, using up
// to bo.Procs workers and at most bo.MemoryBudget bytes of transient
// construction memory. Cancellation is polled in every stage; on error or
// cancellation all temporary state (including spill files) is released and
// nothing partially built escapes.
func NewParallel(ctx context.Context, texts [][]byte, opts Options, bo BuildOptions) (*Index, error) {
	if opts.SampleRate <= 0 {
		opts.SampleRate = 64
	}
	if opts.Builder == nil {
		opts.Builder = WaveletBuilder
	}
	d := len(texts)
	n, err := collectionSize(texts)
	if err != nil {
		return nil, err
	}
	idx := &Index{d: d, n: n, l: opts.SampleRate}
	if d == 0 {
		idx.bwt = opts.Builder(nil)
		idx.bs = bitvec.FromBools(nil)
		idx.strt = bitvec.NewSparse(1, nil)
		return idx, nil
	}

	starts := make([]int, d)
	idx.lens = make([]int32, d)
	pos := 0
	for i, t := range texts {
		if i&0xfff == 0 {
			if err := ctxErr(ctx); err != nil {
				return nil, err
			}
		}
		starts[i] = pos
		idx.lens[i] = int32(len(t))
		pos += len(t) + 1
	}
	idx.strt = bitvec.NewSparse(n+1, starts)

	plan := planBuild(n, bo)
	if bo.Stats != nil {
		defer func() { *bo.Stats = plan.stats() }()
	}
	chunks, cleanup, err := sortChunks(ctx, texts, starts, plan)
	defer cleanup()
	if err != nil {
		return nil, err
	}

	bwt := make([]byte, n)
	outs, err := mergeChunks(ctx, texts, starts, chunks, plan, bwt, idx.l)
	if err != nil {
		return nil, err
	}
	// Free the chunk suffix arrays (and spill files) before the wavelet
	// build doubles down on allocation.
	//sxsivet:ignore ctxpoll chunks is capped at maxChunks (512) by planBuild, O(1) body
	for _, c := range chunks {
		c.rows = nil
	}
	cleanup()

	// Stitch the per-segment side outputs back together in row order and
	// derive the count table from the chunk histograms: the BWT is a
	// permutation of the collection's symbol multiset, so the counts are
	// the text byte histogram plus one collapsed 0 per terminator.
	sampled := bitvec.New(n)
	for _, o := range outs {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		idx.doc = append(idx.doc, o.doc...)
		for _, s := range o.samples {
			sampled.Set(int(s.row))
			idx.ps = append(idx.ps, s.pos)
		}
	}
	sampled.Build()
	idx.bs = sampled
	idx.c[1] = d
	//sxsivet:ignore ctxpoll at most maxChunks (512) iterations of a 256-entry histogram add
	for _, c := range chunks {
		for b, cnt := range c.hist {
			idx.c[b+1] += int(cnt)
		}
	}
	for i := 1; i <= 256; i++ {
		idx.c[i] += idx.c[i-1]
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	idx.bwt = opts.Builder(bwt)
	return idx, nil
}

func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// buildPlan is the realized resource plan.
type buildPlan struct {
	procs     int
	chunkSyms int // target symbols per chunk
	spill     bool
	tempDir   string
	transient int64
	nChunks   int // filled after chunking
	nTasks    int // filled after merge planning
}

func (p *buildPlan) stats() BuildStats {
	return BuildStats{
		Chunks: p.nChunks, Procs: p.procs, Spilled: p.spill,
		MergeTasks: p.nTasks, ChunkSyms: p.chunkSyms, Transient: p.transient,
	}
}

// planBuild sizes chunks and concurrency against the memory budget.
// Unbounded: one chunk per worker. Bounded: the concurrent SA-IS working
// sets get at most half the budget (the other half covers the BWT scratch
// and retained suffix arrays), workers shed if even minimal chunks would
// not fit, and suffix arrays spill to disk when holding them all in RAM
// (4 bytes/symbol) plus the BWT buffer would overflow.
func planBuild(n int, bo BuildOptions) *buildPlan {
	p := &buildPlan{procs: bo.Procs, tempDir: bo.TempDir}
	if p.procs <= 0 {
		p.procs = runtime.GOMAXPROCS(0)
	}
	minChunk := minChunkSyms
	if n/maxChunks > minChunk {
		minChunk = n / maxChunks
	}
	if bo.MemoryBudget <= 0 {
		p.chunkSyms = maxInt((n+p.procs-1)/p.procs, minChunk)
		p.transient = int64(5*n) + int64(p.procs)*saisBytesPerSym*int64(p.chunkSyms)
		return p
	}
	budget := bo.MemoryBudget
	for p.procs > 1 && int64(p.procs)*saisBytesPerSym*int64(minChunk) > budget/2 {
		p.procs--
	}
	p.chunkSyms = int(budget / (2 * saisBytesPerSym * int64(p.procs)))
	if p.chunkSyms < minChunk {
		p.chunkSyms = minChunk
	}
	if perProc := (n + p.procs - 1) / p.procs; p.chunkSyms > perProc && perProc >= minChunk {
		p.chunkSyms = perProc
	}
	inflight := int64(p.procs) * saisBytesPerSym * int64(p.chunkSyms)
	p.spill = int64(n)+int64(4*n)+inflight > budget // bwt + retained SAs + sorting
	p.transient = int64(n) + inflight
	if !p.spill {
		p.transient += int64(4 * n)
	}
	return p
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// chunkSA is one sorted chunk: a contiguous text range, its suffix rows
// that start with a character (terminator rows are reconstructed directly),
// and the first-byte bucket boundaries within them.
type chunkSA struct {
	tlo, thi int      // text id range [tlo, thi)
	gstart   int      // global position of the chunk's first symbol
	rows     []int32  // char-starting suffix positions (global), sorted; nil when spilled
	f        *os.File // spill file holding rows as little-endian int32s
	cum      [257]int64
	hist     [256]int64 // byte histogram of the chunk's texts
}

// sortChunks partitions the collection at text boundaries and suffix-sorts
// the chunks concurrently. The returned cleanup closes and removes any
// spill files; it is safe to call more than once.
func sortChunks(ctx context.Context, texts [][]byte, starts []int, plan *buildPlan) ([]*chunkSA, func(), error) {
	var chunks []*chunkSA
	d := len(texts)
	for tlo := 0; tlo < d; {
		if err := ctxErr(ctx); err != nil {
			return nil, func() {}, err
		}
		thi, syms := tlo, 0
		for thi < d && (syms == 0 || syms+len(texts[thi])+1 <= plan.chunkSyms) {
			syms += len(texts[thi]) + 1
			thi++
		}
		chunks = append(chunks, &chunkSA{tlo: tlo, thi: thi, gstart: starts[tlo]})
		tlo = thi
	}
	plan.nChunks = len(chunks)
	cleanup := func() {
		//sxsivet:ignore ctxpoll cleanup over at most maxChunks (512) spill files; must run even when ctx is dead
		for _, c := range chunks {
			if c.f != nil {
				name := c.f.Name()
				c.f.Close()
				os.Remove(name)
				c.f = nil
			}
		}
	}

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		failed   atomic.Bool
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		failed.Store(true)
	}
	sem := make(chan struct{}, plan.procs)
	for _, c := range chunks {
		wg.Add(1)
		sem <- struct{}{}
		go func(c *chunkSA) {
			defer func() { <-sem; wg.Done() }()
			if failed.Load() {
				return
			}
			if err := sortOneChunk(ctx, texts, c, plan); err != nil {
				fail(err)
			}
		}(c)
	}
	wg.Wait()
	if failed.Load() {
		cleanup()
		return nil, func() {}, firstErr
	}
	return chunks, cleanup, nil
}

// sortOneChunk builds the chunk's integer string with renumbered
// terminators (0..m-1, preserving relative order), suffix-sorts it, and
// keeps the char-starting rows as global positions — in RAM or spilled.
func sortOneChunk(ctx context.Context, texts [][]byte, c *chunkSA, plan *buildPlan) error {
	m := c.thi - c.tlo
	syms := 0
	for i, t := range texts[c.tlo:c.thi] {
		if i&0xfff == 0 {
			if err := ctxErr(ctx); err != nil {
				return err
			}
		}
		syms += len(t) + 1
	}
	s := make([]int32, 0, syms)
	for i, t := range texts[c.tlo:c.thi] {
		if i&0xfff == 0 {
			if err := ctxErr(ctx); err != nil {
				return err
			}
		}
		for _, ch := range t {
			if ch == 0 {
				return ErrNulByte
			}
			s = append(s, int32(m)+int32(ch))
			c.hist[ch]++
		}
		s = append(s, int32(i))
	}
	sa, err := sais.ComputeCtx(ctx, s, m+256)
	if err != nil {
		return err
	}
	s = nil
	// First-byte bucket boundaries: cum[b] = rows with first byte < b,
	// derived from the histogram (the rows are sorted by suffix, and the
	// m terminator rows sort before every char row).
	var acc int64
	for b := 0; b < 256; b++ {
		c.cum[b] = acc
		acc += c.hist[b]
	}
	c.cum[256] = acc
	// Drop the terminator rows and globalize the rest in place.
	rows := sa[m:]
	for i, p := range rows {
		if i&(mergePollStride-1) == 0 {
			if err := ctxErr(ctx); err != nil {
				return err
			}
		}
		rows[i] = int32(c.gstart) + p
	}
	if !plan.spill {
		c.rows = rows
		return nil
	}
	f, err := os.CreateTemp(plan.tempDir, "sxsi-sa-*.tmp")
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, spillBufBytes)
	var le [4]byte
	for i, p := range rows {
		if i&(mergePollStride-1) == 0 {
			if err := ctxErr(ctx); err != nil {
				f.Close()
				os.Remove(f.Name())
				return err
			}
		}
		binary.LittleEndian.PutUint32(le[:], uint32(p))
		if _, err := w.Write(le[:]); err != nil {
			f.Close()
			os.Remove(f.Name())
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	c.f = f
	return nil
}

// rowAt reads the i-th char row of a chunk (RAM or spill file).
func (c *chunkSA) rowAt(i int64) (int32, error) {
	if c.rows != nil {
		return c.rows[i], nil
	}
	var b [4]byte
	if _, err := c.f.ReadAt(b[:], i*4); err != nil {
		return 0, err
	}
	return int32(binary.LittleEndian.Uint32(b[:])), nil
}

// sample is one locate sample: the BWT row it was taken at and the global
// text position it records.
type sample struct{ row, pos int32 }

// segOut is the side output of one merge segment, in row order.
type segOut struct {
	doc     []int32
	samples []sample
}

// mergeSeg is one independent slice of the global suffix order: per chunk,
// the half-open row range holding this segment's suffixes, plus the
// absolute output row where the segment starts.
type mergeSeg struct {
	row        int
	size       int64
	depth      int  // symbols of shared prefix (split refinement depth)
	splittable bool // false for terminator classes and exhausted splits
	ranges     [][2]int64
}

// mergeChunks emits the terminator rows directly, plans the bucket
// segments, refines oversized ones by deeper suffix prefixes, and merges
// all segments concurrently into bwt. Side outputs come back in row order.
func mergeChunks(ctx context.Context, texts [][]byte, starts []int, chunks []*chunkSA, plan *buildPlan, bwt []byte, l int) ([]segOut, error) {
	d := len(texts)
	n := len(bwt)

	// Terminator rows 0..d-1: the suffix starting at text t's terminator
	// sits at row t. Its BWT symbol is the text's last byte — or, for an
	// empty text, the previous terminator, which collapses to byte 0 and
	// contributes the doc entry of the text starting at that position.
	var termOut segOut
	for t := 0; t < d; t++ {
		if t&0xfff == 0 {
			if err := ctxErr(ctx); err != nil {
				return nil, err
			}
		}
		p := starts[t] + len(texts[t])
		if len(texts[t]) > 0 {
			bwt[t] = texts[t][len(texts[t])-1]
		} else {
			bwt[t] = 0
			termOut.doc = append(termOut.doc, int32(t))
		}
		termOut.samples = appendSample(termOut.samples, int32(t), int32(p), l)
	}

	// Initial segments: one per leading byte, rows d.. onwards.
	segs := make([]*mergeSeg, 0, 64)
	row := d
	for b := 0; b < 256; b++ {
		var size int64
		ranges := make([][2]int64, len(chunks))
		for ci, c := range chunks {
			ranges[ci] = [2]int64{c.cum[b], c.cum[b+1]}
			size += c.cum[b+1] - c.cum[b]
		}
		if size == 0 {
			continue
		}
		segs = append(segs, &mergeSeg{row: row, size: size, depth: 1, splittable: true, ranges: ranges})
		row += int(size)
	}
	if row != n {
		return nil, fmt.Errorf("fmindex: internal: bucket rows %d != %d", row, n)
	}

	// Refine oversized segments so the workers stay busy even on skewed
	// alphabets (four-letter DNA collections put a quarter of the rows in
	// one bucket).
	threshold := int64(n-d) / int64(4*plan.procs)
	if threshold < minTaskRows {
		threshold = minTaskRows
	}
	refined := make([]*mergeSeg, 0, len(segs))
	queue := segs
	for len(queue) > 0 {
		sg := queue[0]
		queue = queue[1:]
		if !sg.splittable || sg.size <= threshold || sg.depth >= maxSplitDepth {
			refined = append(refined, sg)
			continue
		}
		subs, err := splitSeg(sg, texts, starts, chunks)
		if err != nil {
			return nil, err
		}
		if len(subs) <= 1 {
			sg.splittable = false // one class only: splitting cannot help
			refined = append(refined, sg)
			continue
		}
		queue = append(queue, subs...)
	}
	sort.Slice(refined, func(i, j int) bool { return refined[i].row < refined[j].row })
	plan.nTasks = len(refined)

	// Merge the segments concurrently, largest first so a big segment is
	// not left running alone at the tail.
	order := make([]int, len(refined))
	//sxsivet:ignore ctxpoll O(1)-body init over segment count; the adjacent sort.Slice cannot poll and dominates it
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return refined[order[i]].size > refined[order[j]].size })
	outs := make([]segOut, len(refined))
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		failed   atomic.Bool
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		failed.Store(true)
	}
	sem := make(chan struct{}, plan.procs)
	for _, oi := range order {
		wg.Add(1)
		sem <- struct{}{}
		go func(oi int) {
			defer func() { <-sem; wg.Done() }()
			if failed.Load() {
				return
			}
			out, err := mergeOneSeg(ctx, refined[oi], texts, starts, chunks, bwt, l)
			if err != nil {
				fail(err)
				return
			}
			outs[oi] = out
		}(oi)
	}
	wg.Wait()
	if failed.Load() {
		return nil, firstErr
	}
	return append([]segOut{termOut}, outs...), nil
}

func appendSample(s []sample, row, pos int32, every int) []sample {
	if int(pos)%every == 0 {
		s = append(s, sample{row: row, pos: pos})
	}
	return s
}

// suffixKey orders the symbol at offset k of the suffix (t, off): the
// text's terminator (when the suffix ends exactly there) sorts below every
// character and by text id; characters sort by byte value above all
// terminators — the same total order the global integer alphabet realizes.
func suffixKey(texts [][]byte, d int, t int32, off int64, k int) int {
	text := texts[t]
	if off+int64(k) == int64(len(text)) {
		return int(t)
	}
	return d + int(text[off+int64(k)])
}

// splitSeg partitions a segment by the symbol at its refinement depth:
// first the terminator class (suffixes ending exactly at the shared-prefix
// boundary), then one class per next byte. Each chunk's subranges are found
// by binary search — the rows of a segment share their first depth symbols,
// so the symbol at that depth is nondecreasing across them; spilled chunks
// are probed with point reads.
func splitSeg(sg *mergeSeg, texts [][]byte, starts []int, chunks []*chunkSA) ([]*mergeSeg, error) {
	d := len(texts)
	k := sg.depth
	// cuts[ci] holds 258 cut points per chunk: before the terminator
	// class, after it (= before byte 0), ..., after byte 255.
	cuts := make([][258]int64, len(chunks))
	var probeErr error
	keyAt := func(c *chunkSA, i int64) int {
		p, err := c.rowAt(i)
		if err != nil {
			probeErr = err
			return 0
		}
		t, off := locate(starts, c, p)
		return suffixKey(texts, d, t, off, k)
	}
	for ci, c := range chunks {
		lo, hi := sg.ranges[ci][0], sg.ranges[ci][1]
		cuts[ci][0] = lo
		// One binary search per class threshold: first row with key >= d
		// (end of the terminator class), then first row with key >= d+b+1.
		for cls := 0; cls < 257; cls++ {
			thr := d + cls // keys below thr belong to classes before cls
			base := cuts[ci][cls]
			idx := int64(sort.Search(int(hi-base), func(i int) bool {
				return keyAt(c, base+int64(i)) >= thr
			}))
			cuts[ci][cls+1] = base + idx
			if probeErr != nil {
				return nil, probeErr
			}
		}
	}
	subs := make([]*mergeSeg, 0, 8)
	row := sg.row
	for cls := 0; cls < 257; cls++ {
		var size int64
		ranges := make([][2]int64, len(chunks))
		for ci := range chunks {
			ranges[ci] = [2]int64{cuts[ci][cls], cuts[ci][cls+1]}
			size += cuts[ci][cls+1] - cuts[ci][cls]
		}
		if size == 0 {
			continue
		}
		// Class 0 is the terminator class: fully ordered by text id, its
		// suffix remainders are at most depth bytes, never worth splitting
		// further. Byte classes may recurse.
		subs = append(subs, &mergeSeg{
			row: row, size: size, depth: k + 1, splittable: cls > 0, ranges: ranges,
		})
		row += int(size)
	}
	return subs, nil
}

// locate maps a global position inside a chunk to (text id, offset).
func locate(starts []int, c *chunkSA, p int32) (int32, int64) {
	lo, hi := c.tlo, c.thi // the position belongs to one of the chunk's texts
	t := lo + sort.Search(hi-lo, func(i int) bool { return starts[lo+i] > int(p) }) - 1
	return int32(t), int64(int(p) - starts[t])
}

// cursor streams one chunk's rows of a merge segment.
type cursor struct {
	c    *chunkSA
	next int64 // next row index within the chunk
	end  int64
	rd   *bufio.Reader // spill reader, nil for RAM chunks

	// current entry
	pos int32
	t   int32
	off int64
	suf []byte
}

func (cu *cursor) advance(texts [][]byte, starts []int) (bool, error) {
	if cu.next >= cu.end {
		return false, nil
	}
	var p int32
	if cu.rd != nil {
		var le [4]byte
		if _, err := io.ReadFull(cu.rd, le[:]); err != nil {
			return false, err
		}
		p = int32(binary.LittleEndian.Uint32(le[:]))
	} else {
		p = cu.c.rows[cu.next]
	}
	cu.next++
	cu.pos = p
	cu.t, cu.off = locate(starts, cu.c, p)
	cu.suf = texts[cu.t][cu.off:]
	return true, nil
}

// less orders two cursors by their current suffix: raw byte comparison
// with the prefix-is-smaller rule (a suffix that runs out hits its
// terminator, which sorts below every byte), ties — identical remainders —
// by text id (terminators are distinct).
func (cu *cursor) less(o *cursor) bool {
	if c := bytes.Compare(cu.suf, o.suf); c != 0 {
		return c < 0
	}
	return cu.t < o.t
}

// mergeOneSeg k-way-merges one segment's chunk subranges into its disjoint
// slice of the output BWT, collecting doc entries and locate samples in
// row order. Single-chunk segments stream without a heap.
func mergeOneSeg(ctx context.Context, sg *mergeSeg, texts [][]byte, starts []int, chunks []*chunkSA, bwt []byte, l int) (segOut, error) {
	var out segOut
	if ctx != nil && ctx.Done() == nil {
		ctx = nil
	}
	var curs []*cursor
	//sxsivet:ignore ctxpoll cursor setup over at most maxChunks (512) chunks, one buffered open each
	for ci, c := range chunks {
		lo, hi := sg.ranges[ci][0], sg.ranges[ci][1]
		if lo >= hi {
			continue
		}
		cu := &cursor{c: c, next: lo, end: hi}
		if c.rows == nil {
			cu.rd = bufio.NewReaderSize(io.NewSectionReader(c.f, lo*4, (hi-lo)*4), spillBufBytes)
		}
		if _, err := cu.advance(texts, starts); err != nil {
			return out, err
		}
		curs = append(curs, cu)
	}
	row := int32(sg.row)
	emit := func(cu *cursor) {
		if cu.off == 0 {
			// The previous symbol is the terminator of the preceding text:
			// byte 0 in the BWT plus the doc entry of the text starting
			// here (the paper's Doc convention, as in the serial builder).
			bwt[row] = 0
			out.doc = append(out.doc, cu.t)
		} else {
			bwt[row] = texts[cu.t][cu.off-1]
		}
		out.samples = appendSample(out.samples, row, cu.pos, l)
		row++
	}
	poll := mergePollStride
	checkPoll := func() error {
		poll--
		if poll > 0 || ctx == nil {
			return nil
		}
		poll = mergePollStride
		return ctx.Err()
	}
	if len(curs) == 1 {
		cu := curs[0]
		for {
			emit(cu)
			if err := checkPoll(); err != nil {
				return out, err
			}
			ok, err := cu.advance(texts, starts)
			if err != nil {
				return out, err
			}
			if !ok {
				return out, nil
			}
		}
	}
	// Binary min-heap over the cursors.
	h := curs
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(h, i)
	}
	for len(h) > 0 {
		cu := h[0]
		emit(cu)
		if err := checkPoll(); err != nil {
			return out, err
		}
		ok, err := cu.advance(texts, starts)
		if err != nil {
			return out, err
		}
		if !ok {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		if len(h) > 0 {
			siftDown(h, 0)
		}
	}
	return out, nil
}

func siftDown(h []*cursor, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h) && h[l].less(h[smallest]) {
			smallest = l
		}
		if r < len(h) && h[r].less(h[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}
