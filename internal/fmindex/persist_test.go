package fmindex

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/persist"
	"repro/internal/rlfm"
)

var persistTexts = [][]byte{
	[]byte("abracadabra"),
	[]byte(""),
	[]byte("gold ring"),
	[]byte("ring of gold"),
	[]byte("abra"),
}

func checkSameIndex(t *testing.T, a, b *Index) {
	t.Helper()
	if a.NumTexts() != b.NumTexts() || a.Size() != b.Size() {
		t.Fatal("dimensions differ")
	}
	patterns := [][]byte{
		[]byte("a"), []byte("abra"), []byte("gold"), []byte("ring"),
		[]byte("zzz"), []byte(""), []byte("abracadabra"), []byte("g"),
	}
	for _, p := range patterns {
		if a.GlobalCount(p) != b.GlobalCount(p) {
			t.Fatalf("GlobalCount(%q)", p)
		}
		if !reflect.DeepEqual(a.Contains(p), b.Contains(p)) {
			t.Fatalf("Contains(%q)", p)
		}
		if !reflect.DeepEqual(a.StartsWith(p), b.StartsWith(p)) {
			t.Fatalf("StartsWith(%q)", p)
		}
		if !reflect.DeepEqual(a.EndsWith(p), b.EndsWith(p)) {
			t.Fatalf("EndsWith(%q)", p)
		}
		if !reflect.DeepEqual(a.Equals(p), b.Equals(p)) {
			t.Fatalf("Equals(%q)", p)
		}
		if a.LessThanCount(p) != b.LessThanCount(p) {
			t.Fatalf("LessThanCount(%q)", p)
		}
	}
	for id := 0; id < a.NumTexts(); id++ {
		if !bytes.Equal(a.Extract(id), b.Extract(id)) {
			t.Fatalf("Extract(%d)", id)
		}
	}
}

func TestIndexSaveLoadRoundTrip(t *testing.T) {
	x, err := New(persistTexts, Options{SampleRate: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := x.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(bytes.NewReader(buf.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	checkSameIndex(t, x, got)
}

func TestIndexSaveLoadEmpty(t *testing.T) {
	x, err := New(nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := x.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTexts() != 0 || got.Size() != 0 {
		t.Fatal("empty index dimensions")
	}
}

// A wavelet-stored file loaded with a run-length builder must re-materialize
// the BWT and answer identically; and vice versa a run-length index saves as
// a raw BWT and loads into a wavelet tree.
func TestIndexSaveLoadCrossSequence(t *testing.T) {
	rlBuilder := func(bwt []byte) RankSequence { return rlfm.New(bwt) }

	x, err := New(persistTexts, Options{SampleRate: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := x.Save(&buf); err != nil {
		t.Fatal(err)
	}
	gotRL, err := Load(bytes.NewReader(buf.Bytes()), rlBuilder)
	if err != nil {
		t.Fatal(err)
	}
	checkSameIndex(t, x, gotRL)

	xRL, err := New(persistTexts, Options{SampleRate: 4, Builder: rlBuilder})
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := xRL.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	gotWT, err := Load(bytes.NewReader(buf2.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	checkSameIndex(t, x, gotWT)
}

func TestIndexLoadCorrupt(t *testing.T) {
	x, err := New(persistTexts, Options{SampleRate: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	x.Save(&buf)
	data := buf.Bytes()
	for cut := 0; cut < len(data); cut++ {
		if _, err := Load(bytes.NewReader(data[:cut]), nil); !errors.Is(err, persist.ErrCorrupt) {
			t.Fatalf("cut=%d err=%v", cut, err)
		}
	}
	// Text count inconsistent with the terminator count.
	bad := append([]byte(nil), data...)
	bad[9]++ // d field (format byte + n)
	if _, err := Load(bytes.NewReader(bad), nil); !errors.Is(err, persist.ErrCorrupt) {
		t.Fatalf("bad d: %v", err)
	}
}
