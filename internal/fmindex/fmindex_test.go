package fmindex

import (
	"bytes"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

func mkTexts(ss ...string) [][]byte {
	t := make([][]byte, len(ss))
	for i, s := range ss {
		t[i] = []byte(s)
	}
	return t
}

func build(t *testing.T, texts [][]byte, rate int) *Index {
	t.Helper()
	idx, err := New(texts, Options{SampleRate: rate})
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

// naive oracles

func naiveGlobalCount(texts [][]byte, p []byte) int {
	n := 0
	for _, t := range texts {
		n += strings.Count(string(t), string(p))
		// strings.Count counts non-overlapping; we need all occurrences.
	}
	// recompute with overlapping
	n = 0
	for _, t := range texts {
		for i := 0; i+len(p) <= len(t); i++ {
			if bytes.Equal(t[i:i+len(p)], p) {
				n++
			}
		}
	}
	return n
}

func naiveContains(texts [][]byte, p []byte) []int {
	var ids []int
	for i, t := range texts {
		if bytes.Contains(t, p) {
			ids = append(ids, i)
		}
	}
	return ids
}

func naiveStartsWith(texts [][]byte, p []byte) []int {
	var ids []int
	for i, t := range texts {
		if bytes.HasPrefix(t, p) {
			ids = append(ids, i)
		}
	}
	return ids
}

func naiveEndsWith(texts [][]byte, p []byte) []int {
	var ids []int
	for i, t := range texts {
		if bytes.HasSuffix(t, p) {
			ids = append(ids, i)
		}
	}
	return ids
}

func naiveEquals(texts [][]byte, p []byte) []int {
	var ids []int
	for i, t := range texts {
		if bytes.Equal(t, p) {
			ids = append(ids, i)
		}
	}
	return ids
}

func naiveLess(texts [][]byte, p []byte) int {
	n := 0
	for _, t := range texts {
		if bytes.Compare(t, p) < 0 {
			n++
		}
	}
	return n
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func checkAllOps(t *testing.T, texts [][]byte, idx *Index, patterns []string) {
	t.Helper()
	for _, ps := range patterns {
		p := []byte(ps)
		if got, want := idx.GlobalCount(p), naiveGlobalCount(texts, p); got != want {
			t.Fatalf("GlobalCount(%q)=%d want %d", ps, got, want)
		}
		if got, want := idx.Contains(p), naiveContains(texts, p); !intsEqual(got, want) {
			t.Fatalf("Contains(%q)=%v want %v", ps, got, want)
		}
		if got, want := idx.StartsWith(p), naiveStartsWith(texts, p); !intsEqual(got, want) {
			t.Fatalf("StartsWith(%q)=%v want %v", ps, got, want)
		}
		if got, want := idx.StartsWithCount(p), len(naiveStartsWith(texts, p)); got != want {
			t.Fatalf("StartsWithCount(%q)=%d want %d", ps, got, want)
		}
		if got, want := idx.EndsWith(p), naiveEndsWith(texts, p); !intsEqual(got, want) {
			t.Fatalf("EndsWith(%q)=%v want %v", ps, got, want)
		}
		if got, want := idx.Equals(p), naiveEquals(texts, p); !intsEqual(got, want) {
			t.Fatalf("Equals(%q)=%v want %v", ps, got, want)
		}
		if got, want := idx.LessThanCount(p), naiveLess(texts, p); got != want {
			t.Fatalf("LessThanCount(%q)=%d want %d", ps, got, want)
		}
		if got, want := idx.LessEqCount(p), naiveLess(texts, p)+len(naiveEquals(texts, p)); got != want {
			t.Fatalf("LessEqCount(%q)=%d want %d", ps, got, want)
		}
		if got, want := idx.GreaterThanCount(p), len(texts)-naiveLess(texts, p)-len(naiveEquals(texts, p)); got != want {
			t.Fatalf("GreaterThanCount(%q)=%d want %d", ps, got, want)
		}
		// Locate: verify every reported occurrence and the count.
		occs := idx.Locate(p)
		if len(occs) != naiveGlobalCount(texts, p) {
			t.Fatalf("Locate(%q) count=%d want %d", ps, len(occs), naiveGlobalCount(texts, p))
		}
		for _, o := range occs {
			if o.Text < 0 || o.Text >= len(texts) {
				t.Fatalf("Locate(%q) bad text id %d", ps, o.Text)
			}
			tx := texts[o.Text]
			if o.Offset < 0 || o.Offset+len(p) > len(tx) || !bytes.Equal(tx[o.Offset:o.Offset+len(p)], p) {
				t.Fatalf("Locate(%q) bad occurrence %+v", ps, o)
			}
		}
	}
}

func TestPaperRunningExample(t *testing.T) {
	// The six texts from Figure 1.
	texts := mkTexts("pen", "Soon discontinued", "blue", "40", "rubber", "30")
	idx := build(t, texts, 3)
	checkAllOps(t, texts, idx, []string{
		"n", "o", "blue", "pen", "rubber", "discontinued", "Soon", "0", "3", "4",
		"e", "ue", "zzz", "b", "", "S",
	})
	// Extraction must reproduce every text.
	for i, tx := range texts {
		if got := idx.Extract(i); !bytes.Equal(got, tx) {
			t.Fatalf("Extract(%d)=%q want %q", i, got, tx)
		}
	}
}

func TestDiscontinuedExample(t *testing.T) {
	// Figure 2 example: T = "discontinued", sampled each 3 positions; the
	// paper finds P="n" at positions {6, 9} (1-based), i.e. {5, 8} 0-based.
	texts := mkTexts("discontinued")
	idx := build(t, texts, 3)
	occs := idx.Locate([]byte("n"))
	var offs []int
	for _, o := range occs {
		offs = append(offs, o.Offset)
	}
	sort.Ints(offs)
	if !intsEqual(offs, []int{5, 8}) {
		t.Fatalf("offsets=%v", offs)
	}
}

func TestSingleText(t *testing.T) {
	texts := mkTexts("mississippi")
	idx := build(t, texts, 4)
	checkAllOps(t, texts, idx, []string{"ssi", "i", "p", "mississippi", "x", "m", "pi"})
}

func TestManySmallTexts(t *testing.T) {
	var texts [][]byte
	words := []string{"apple", "banana", "cherry", "apple", "date", "fig", "grape", "banana", "kiwi", "lemon"}
	for _, w := range words {
		texts = append(texts, []byte(w))
	}
	idx := build(t, texts, 2)
	checkAllOps(t, texts, idx, []string{"a", "an", "apple", "e", "fig", "z", "ki", "banana", "ban"})
}

func TestEmptyCollection(t *testing.T) {
	idx := build(t, nil, 4)
	if idx.GlobalCount([]byte("a")) != 0 {
		t.Fatal("empty collection count")
	}
	if idx.NumTexts() != 0 {
		t.Fatal("numtexts")
	}
}

func TestEmptyTextInCollection(t *testing.T) {
	texts := mkTexts("abc", "", "def")
	idx := build(t, texts, 2)
	checkAllOps(t, texts, idx, []string{"abc", "", "d", "c"})
	if got := idx.Extract(1); len(got) != 0 {
		t.Fatalf("empty text extract %q", got)
	}
}

func TestNulByteRejected(t *testing.T) {
	_, err := New([][]byte{{1, 0, 2}}, Options{})
	if err != ErrNulByte {
		t.Fatalf("want ErrNulByte, got %v", err)
	}
}

func TestRandomCollectionAllRates(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	alpha := "abcdb"
	for trial := 0; trial < 10; trial++ {
		d := 1 + r.Intn(12)
		texts := make([][]byte, d)
		for i := range texts {
			n := r.Intn(40)
			b := make([]byte, n)
			for j := range b {
				b[j] = alpha[r.Intn(len(alpha))]
			}
			texts[i] = b
		}
		var patterns []string
		for k := 0; k < 8; k++ {
			n := 1 + r.Intn(4)
			b := make([]byte, n)
			for j := range b {
				b[j] = alpha[r.Intn(len(alpha))]
			}
			patterns = append(patterns, string(b))
		}
		for _, rate := range []int{1, 3, 64} {
			idx := build(t, texts, rate)
			checkAllOps(t, texts, idx, patterns)
			for i, tx := range texts {
				if got := idx.Extract(i); !bytes.Equal(got, tx) {
					t.Fatalf("Extract(%d)=%q want %q", i, got, tx)
				}
			}
		}
	}
}

func TestPosToText(t *testing.T) {
	texts := mkTexts("abc", "de", "f")
	idx := build(t, texts, 1)
	// Global layout: a b c $ d e $ f $
	cases := []struct{ pos, text, off int }{
		{0, 0, 0}, {2, 0, 2}, {4, 1, 0}, {5, 1, 1}, {7, 2, 0},
	}
	for _, c := range cases {
		tx, off := idx.PosToText(c.pos)
		if tx != c.text || off != c.off {
			t.Errorf("PosToText(%d)=(%d,%d) want (%d,%d)", c.pos, tx, off, c.text, c.off)
		}
	}
}

func TestUnicodeUTF8(t *testing.T) {
	texts := mkTexts("héllo wörld", "日本語テキスト", "ascii only")
	idx := build(t, texts, 4)
	checkAllOps(t, texts, idx, []string{"héllo", "日本", "only", "ö"})
}

func BenchmarkBackwardSearch(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	var texts [][]byte
	for i := 0; i < 200; i++ {
		n := 500 + r.Intn(500)
		tx := make([]byte, n)
		for j := range tx {
			tx[j] = byte('a' + r.Intn(20))
		}
		texts = append(texts, tx)
	}
	idx, _ := New(texts, Options{SampleRate: 64})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.GlobalCount([]byte("abcde"))
	}
}
