package fmindex

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Property-based tests (testing/quick) on the core self-index invariants.

// collection is a quick.Generator producing small random text collections
// over a tiny alphabet (to force repeats and edge cases).
type collection [][]byte

func (collection) Generate(r *rand.Rand, size int) reflect.Value {
	d := 1 + r.Intn(6)
	texts := make(collection, d)
	for i := range texts {
		n := r.Intn(25)
		t := make([]byte, n)
		for j := range t {
			t[j] = byte('a' + r.Intn(3))
		}
		texts[i] = t
	}
	return reflect.ValueOf(texts)
}

type pattern []byte

func (pattern) Generate(r *rand.Rand, size int) reflect.Value {
	n := 1 + r.Intn(4)
	p := make(pattern, n)
	for j := range p {
		p[j] = byte('a' + r.Intn(3))
	}
	return reflect.ValueOf(p)
}

var quickCfg = &quick.Config{MaxCount: 120}

// Invariant: extraction reproduces every text (the self-index property).
func TestQuickExtractRoundTrip(t *testing.T) {
	f := func(texts collection) bool {
		idx, err := New(texts, Options{SampleRate: 3})
		if err != nil {
			return false
		}
		for i, tx := range texts {
			if !bytes.Equal(idx.Extract(i), tx) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// Invariant: GlobalCount equals the number of occurrences reported by
// Locate, and every located occurrence is real.
func TestQuickCountLocateAgree(t *testing.T) {
	f := func(texts collection, p pattern) bool {
		idx, err := New(texts, Options{SampleRate: 2})
		if err != nil {
			return false
		}
		occs := idx.Locate(p)
		if len(occs) != idx.GlobalCount(p) {
			return false
		}
		for _, o := range occs {
			tx := texts[o.Text]
			if o.Offset+len(p) > len(tx) || !bytes.Equal(tx[o.Offset:o.Offset+len(p)], p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// Invariant: the lexicographic partition Less + Equals + Greater covers the
// collection exactly.
func TestQuickLexPartition(t *testing.T) {
	f := func(texts collection, p pattern) bool {
		idx, err := New(texts, Options{SampleRate: 4})
		if err != nil {
			return false
		}
		lt := idx.LessThanCount(p)
		eq := idx.EqualsCount(p)
		gt := idx.GreaterThanCount(p)
		return lt+eq+gt == len(texts) && idx.LessEqCount(p) == lt+eq && idx.GreaterEqCount(p) == eq+gt
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// Invariant: StartsWith ⊆ Contains, Equals ⊆ StartsWith ∩ EndsWith.
func TestQuickPredicateContainment(t *testing.T) {
	contains := func(set []int, x int) bool {
		for _, v := range set {
			if v == x {
				return true
			}
		}
		return false
	}
	f := func(texts collection, p pattern) bool {
		idx, err := New(texts, Options{SampleRate: 2})
		if err != nil {
			return false
		}
		cs := idx.Contains(p)
		for _, id := range idx.StartsWith(p) {
			if !contains(cs, id) {
				return false
			}
		}
		sw, ew := idx.StartsWith(p), idx.EndsWith(p)
		for _, id := range idx.Equals(p) {
			if !contains(sw, id) || !contains(ew, id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// Invariant: LF applied |T| times from any terminator row cycles through
// the whole collection (the BWT is a single-permutation cycle structure
// over text boundaries).
func TestQuickLFIsPermutation(t *testing.T) {
	f := func(texts collection) bool {
		idx, err := New(texts, Options{SampleRate: 2})
		if err != nil {
			return false
		}
		seen := make([]bool, idx.Size())
		i := 0
		for step := 0; step < idx.Size(); step++ {
			if seen[i] {
				return false
			}
			seen[i] = true
			i = idx.LF(i)
		}
		return i == 0 // back to the start after |T| steps
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}
