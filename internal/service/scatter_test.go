package service

// Tests for the fan-out (scatter-gather) forms of /count, /exists, /query
// and batch items: doc=* and comma-separated doc lists, merge ordering,
// and per-document error isolation.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/collection"
	"repro/internal/core"
)

// newMultiServer serves three documents with 1, 2 and 3 <book> elements,
// registered out of name order so sortedness is earned, not incidental.
func newMultiServer(t *testing.T) (*httptest.Server, *collection.Collection) {
	t.Helper()
	c := collection.New(collection.Config{Workers: 4})
	for _, d := range []struct {
		name string
		n    int
	}{{"b", 2}, {"c", 3}, {"a", 1}} {
		var sb strings.Builder
		sb.WriteString("<lib>")
		for i := 0; i < d.n; i++ {
			fmt.Fprintf(&sb, "<book>%s%d</book>", d.name, i)
		}
		sb.WriteString("</lib>")
		eng, err := core.Build([]byte(sb.String()), core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		c.Add(d.name, eng)
	}
	ts := httptest.NewServer(New(c))
	t.Cleanup(ts.Close)
	return ts, c
}

func decodeMultiCount(t *testing.T, body []byte) multiCountBody {
	t.Helper()
	var out multiCountBody
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("%v in %s", err, body)
	}
	return out
}

func TestScatterCountAll(t *testing.T) {
	ts, _ := newMultiServer(t)
	code, body := get(t, ts.URL+"/count?doc=*&q="+escape("//book"))
	if code != http.StatusOK {
		t.Fatalf("count doc=*: %d %s", code, body)
	}
	out := decodeMultiCount(t, body)
	if out.Total != 6 {
		t.Fatalf("total = %d, want 6: %s", out.Total, body)
	}
	// doc=* merges in sorted name order.
	want := []docCount{{Doc: "a", Count: 1}, {Doc: "b", Count: 2}, {Doc: "c", Count: 3}}
	if len(out.Docs) != len(want) {
		t.Fatalf("docs: %s", body)
	}
	for i, w := range want {
		if out.Docs[i] != w {
			t.Fatalf("docs[%d] = %+v, want %+v", i, out.Docs[i], w)
		}
	}
}

func TestScatterCountList(t *testing.T) {
	ts, _ := newMultiServer(t)
	// A comma list keeps the caller's order.
	code, body := get(t, ts.URL+"/count?doc=c%2Ca&q="+escape("//book"))
	if code != http.StatusOK {
		t.Fatalf("count doc=c,a: %d %s", code, body)
	}
	out := decodeMultiCount(t, body)
	if out.Total != 4 || len(out.Docs) != 2 || out.Docs[0].Doc != "c" || out.Docs[1].Doc != "a" {
		t.Fatalf("count doc=c,a body: %s", body)
	}
}

func TestScatterErrorIsolation(t *testing.T) {
	ts, _ := newMultiServer(t)
	// One unknown document must not fail its siblings: the fan-out stays
	// 200 and the failure is a per-doc error entry.
	code, body := get(t, ts.URL+"/count?doc=a%2Cnope&q="+escape("//book"))
	if code != http.StatusOK {
		t.Fatalf("count doc=a,nope: %d %s", code, body)
	}
	out := decodeMultiCount(t, body)
	if out.Total != 1 || len(out.Docs) != 2 {
		t.Fatalf("body: %s", body)
	}
	if out.Docs[0].Doc != "a" || out.Docs[0].Error != "" || out.Docs[0].Count != 1 {
		t.Fatalf("healthy doc entry: %+v", out.Docs[0])
	}
	if out.Docs[1].Doc != "nope" || out.Docs[1].Error == "" {
		t.Fatalf("unknown doc entry: %+v", out.Docs[1])
	}
	// A single plain name keeps the classic behavior: unknown is 404.
	if code, _ := get(t, ts.URL+"/count?doc=nope&q="+escape("//book")); code != http.StatusNotFound {
		t.Fatalf("single unknown doc: %d, want 404", code)
	}
}

func TestScatterExists(t *testing.T) {
	ts, _ := newMultiServer(t)
	// b0 only occurs in document b.
	code, body := get(t, ts.URL+"/exists?doc=*&q="+escape("//book[contains(., 'b0')]"))
	if code != http.StatusOK {
		t.Fatalf("exists doc=*: %d %s", code, body)
	}
	var out multiExistsBody
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Any || len(out.Docs) != 3 {
		t.Fatalf("exists body: %s", body)
	}
	for _, d := range out.Docs {
		if want := d.Doc == "b"; d.Exists != want {
			t.Fatalf("exists[%s] = %v: %s", d.Doc, d.Exists, body)
		}
	}
}

func TestScatterQueryStream(t *testing.T) {
	ts, _ := newMultiServer(t)
	code, body := get(t, ts.URL+"/query?doc=*&q="+escape("//book"))
	if code != http.StatusOK {
		t.Fatalf("query doc=*: %d %s", code, body)
	}
	// Per-doc frames, in sorted order, each followed by that document's
	// serialized results.
	got := string(body)
	wantOrder := []string{
		"<!-- doc: a -->", "<book>a0</book>",
		"<!-- doc: b -->", "<book>b0</book>", "<book>b1</book>",
		"<!-- doc: c -->", "<book>c0</book>",
	}
	pos := -1
	for _, w := range wantOrder {
		i := strings.Index(got, w)
		if i <= pos {
			t.Fatalf("marker %q out of order (or missing) in:\n%s", w, got)
		}
		pos = i
	}
}

func TestScatterQueryStreamErrorFrame(t *testing.T) {
	ts, _ := newMultiServer(t)
	code, body := get(t, ts.URL+"/query?doc=a%2Cnope&q="+escape("//book"))
	if code != http.StatusOK {
		t.Fatalf("query doc=a,nope: %d %s", code, body)
	}
	got := string(body)
	if !strings.Contains(got, "<book>a0</book>") {
		t.Fatalf("healthy doc results missing:\n%s", got)
	}
	if !strings.Contains(got, "<!-- doc: nope error: ") {
		t.Fatalf("error frame missing:\n%s", got)
	}
	// A query that cannot compile anywhere is a clean 400, not a stream of
	// error comments.
	if code, _ := get(t, ts.URL+"/query?doc=*&q="+escape("//book[")); code != http.StatusBadRequest {
		t.Fatalf("bad query doc=*: %d, want 400", code)
	}
}

func TestScatterBatch(t *testing.T) {
	ts, _ := newMultiServer(t)
	body := `{"requests":[
		{"doc":"*","query":"//book"},
		{"doc":"c,a","query":"//book","mode":"exists"}
	]}`
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Results []BatchResult `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	// The first item expands to a,b,c; the second to c,a — five results,
	// each under its concrete document name.
	if len(out.Results) != 5 {
		t.Fatalf("results: %+v", out.Results)
	}
	wantDocs := []string{"a", "b", "c", "c", "a"}
	wantCounts := []int64{1, 2, 3, 1, 1}
	for i, r := range out.Results {
		if r.Doc != wantDocs[i] || r.Count != wantCounts[i] || r.Error != "" {
			t.Fatalf("results[%d] = %+v, want doc %s count %d", i, r, wantDocs[i], wantCounts[i])
		}
	}
	if out.Results[3].Mode != "exists" || !out.Results[3].Exists {
		t.Fatalf("exists item: %+v", out.Results[3])
	}
}
