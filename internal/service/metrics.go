package service

import (
	"bytes"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"repro/internal/collection"
)

// handleMetrics renders the serving metrics in the Prometheus text
// exposition format (version 0.0.4), hand-rolled so the module stays
// dependency-free: counters for queries/errors/cancellations, per-mode
// latency histograms, compiled-query cache statistics, the mapped/heap
// split of index memory, admission-control gauges and a few Go runtime
// numbers. The endpoint is cheap (atomic loads plus one pass over the
// registry) and is not admission-gated, so scrapes keep working while the
// server sheds query load.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.c.Metrics()
	var b bytes.Buffer

	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, fmtFloat(v))
	}

	gauge("sxsi_uptime_seconds", "Seconds since the server started.", time.Since(s.started).Seconds())
	counter("sxsi_queries_total", "Evaluations started (single, batch and fan-out requests each count per document).", m.Queries)
	counter("sxsi_query_errors_total", "Evaluations that failed server-side (bad queries, unknown docs, evaluation failures, deadline expiry).", m.Errors)
	counter("sxsi_query_canceled_total", "Evaluations abandoned by the client (context canceled); kept out of the error counter.", m.Canceled)
	counter("sxsi_reloads_total", "Reload passes over the file-backed documents.", m.Reloads)
	counter("sxsi_search_total", "Ranked full-text searches started (GET /search and Collection.Search).", m.Searches)
	counter("sxsi_search_errors_total", "Searches that failed server-side (bad queries, deadline expiry, internal errors).", m.SearchErrs)

	counter("sxsi_cache_hits_total", "Compiled-query cache hits.", m.CacheHits)
	counter("sxsi_cache_misses_total", "Compiled-query cache misses.", m.CacheMisses)
	ratio := 0.0
	if lookups := m.CacheHits + m.CacheMisses; lookups > 0 {
		ratio = float64(m.CacheHits) / float64(lookups)
	}
	gauge("sxsi_cache_hit_ratio", "Compiled-query cache hits over lookups.", ratio)
	gauge("sxsi_cache_entries", "Compiled queries currently cached.", float64(m.CacheLen))

	gauge("sxsi_docs", "Registered documents.", float64(m.Docs))
	gauge("sxsi_mapped_docs", "Documents whose index is memory-mapped.", float64(m.MappedDocs))
	gauge("sxsi_index_mapped_bytes", "Index bytes aliasing mapped files (shared with the page cache).", float64(m.MappedBytes))
	gauge("sxsi_index_heap_bytes", "Index bytes held on the Go heap (private).", float64(m.HeapBytes))

	writeLatencyHistogram(&b, m.Latency)
	writeSearchHistogram(&b, m.SearchLatency)

	if s.adm != nil {
		gauge("sxsi_admission_in_flight", "Query-evaluating requests currently holding an admission slot.", float64(s.adm.inFlight()))
		gauge("sxsi_admission_queued", "Requests waiting for an admission slot.", float64(s.adm.queuedNow()))
		counter("sxsi_admission_rejected_total", "Requests rejected with 429 because slots and queue were full.", s.adm.rejectedTotal())
	}

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	gauge("sxsi_go_goroutines", "Live goroutines.", float64(runtime.NumGoroutine()))
	gauge("sxsi_go_heap_alloc_bytes", "Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).", float64(ms.HeapAlloc))

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(b.Bytes())
}

// writeLatencyHistogram renders the per-mode evaluation latency as one
// Prometheus histogram family with a mode label, cumulative buckets and
// the conventional _sum/_count series.
func writeLatencyHistogram(b *bytes.Buffer, lat map[string]collection.HistogramSnapshot) {
	const name = "sxsi_query_duration_seconds"
	fmt.Fprintf(b, "# HELP %s Evaluation latency by mode (stream = GET /query serializations).\n# TYPE %s histogram\n", name, name)
	for _, mode := range sortedNames(lat) {
		h := lat[mode]
		for i, bound := range collection.LatencyBuckets {
			fmt.Fprintf(b, "%s_bucket{mode=%q,le=%q} %d\n", name, mode, fmtFloat(bound), h.Counts[i])
		}
		fmt.Fprintf(b, "%s_bucket{mode=%q,le=\"+Inf\"} %d\n", name, mode, h.Count)
		fmt.Fprintf(b, "%s_sum{mode=%q} %s\n", name, mode, fmtFloat(h.SumSeconds))
		fmt.Fprintf(b, "%s_count{mode=%q} %d\n", name, mode, h.Count)
	}
}

// writeSearchHistogram renders the end-to-end Search latency (a search
// spans many per-document evaluations, so it gets its own family instead
// of a mode label in the per-evaluation histogram).
func writeSearchHistogram(b *bytes.Buffer, h collection.HistogramSnapshot) {
	const name = "sxsi_search_duration_seconds"
	fmt.Fprintf(b, "# HELP %s End-to-end ranked search latency (GET /search).\n# TYPE %s histogram\n", name, name)
	for i, bound := range collection.LatencyBuckets {
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, fmtFloat(bound), h.Counts[i])
	}
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
	fmt.Fprintf(b, "%s_sum %s\n", name, fmtFloat(h.SumSeconds))
	fmt.Fprintf(b, "%s_count %d\n", name, h.Count)
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
