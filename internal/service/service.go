// Package service exposes a collection of indexed documents over HTTP: the
// sxsid daemon and the `sxsi serve` subcommand are thin wrappers around this
// handler. The API is JSON except for GET /query, which streams the same
// bytes the `sxsi query` CLI prints, so the two can be diffed directly:
//
//	GET  /healthz           liveness probe
//	GET  /docs              registered documents with index statistics
//	GET  /count?doc=D&q=Q   {"doc":D,"query":Q,"count":N}
//	GET  /exists?doc=D&q=Q  {"doc":D,"query":Q,"exists":B} (lazy, first hit)
//	GET  /query?doc=D&q=Q   serialized result subtrees (CLI byte-identical)
//	POST /query             {"requests":[{doc,query,mode}]} batch evaluation
//	GET  /search?q=TERMS    BM25-ranked top-k documents (see handleSearch)
//	POST /reload            re-open changed index files (zero-downtime swap)
//	GET  /stats?doc=D       index statistics; without doc, serving counters
//	GET  /metrics           Prometheus text-format serving metrics
//
// The doc parameter of /count, /exists and /query (and the doc field of
// batch items) also accepts "*" — every registered document — or a
// comma-separated list of names; the query then fans out across the
// collection's worker pool and the response merges per-doc results keyed
// by document name (sorted for "*", as given for a list). A failing
// document yields a per-doc error entry without failing its siblings.
//
// Every evaluation runs under the request's context (plus the collection's
// RequestTimeout, if set): a client that disconnects or times out cancels
// the evaluators mid-run instead of leaving them to finish into the void.
// When Config.MaxConcurrent is set, an admission semaphore bounds the
// evaluations in flight; requests beyond MaxConcurrent+MaxQueue are
// rejected with 429 and a Retry-After hint instead of piling up goroutines.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/collection"
	"repro/internal/core"
)

// Config tunes the HTTP layer; the zero value imposes no admission limits.
type Config struct {
	// MaxConcurrent bounds the number of query-evaluating requests running
	// at once (a batch or fan-out counts as one; its internal parallelism
	// is already bounded by the collection's worker pool). Zero means
	// unlimited.
	MaxConcurrent int
	// MaxQueue bounds the requests allowed to wait for an evaluation slot
	// when MaxConcurrent are running; beyond it the server answers 429
	// with a Retry-After hint. Zero means no queue: reject as soon as the
	// slots are full.
	MaxQueue int
}

// Server is the HTTP front end of a Collection.
type Server struct {
	c       *collection.Collection
	mux     *http.ServeMux
	started time.Time
	adm     *admission
}

// New builds the handler for a collection with no admission limits.
func New(c *collection.Collection) *Server { return NewWithConfig(c, Config{}) }

// NewWithConfig builds the handler for a collection.
func NewWithConfig(c *collection.Collection, cfg Config) *Server {
	s := &Server{c: c, mux: http.NewServeMux(), started: time.Now(), adm: newAdmission(cfg)}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /docs", s.handleDocs)
	s.mux.HandleFunc("GET /count", s.handleCount)
	s.mux.HandleFunc("GET /exists", s.handleExists)
	s.mux.HandleFunc("GET /query", s.handleQueryGet)
	s.mux.HandleFunc("POST /query", s.handleQueryPost)
	s.mux.HandleFunc("GET /search", s.handleSearch)
	s.mux.HandleFunc("POST /reload", s.handleReload)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Collection returns the served collection.
func (s *Server) Collection() *collection.Collection { return s.c }

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

// statusClientClosedRequest is nginx's 499: the client closed the
// connection before the server finished answering. net/http has no
// constant for it; no response actually reaches the client, but the access
// log and metrics should not blame the server (500) for client behavior.
const statusClientClosedRequest = 499

// statusFor maps evaluation errors to HTTP statuses: unknown documents are
// 404, malformed queries (parse or unsupported-fragment errors, wrapped in
// *collection.QueryError) are 400, a request that outran its per-request
// deadline is 504, a client that went away mid-evaluation is 499, and
// anything else is a server-side evaluation failure, 500.
func statusFor(err error) int {
	if errors.Is(err, collection.ErrUnknownDoc) {
		return http.StatusNotFound
	}
	if errors.Is(err, collection.ErrSearchDisabled) {
		return http.StatusNotImplemented
	}
	var qerr *collection.QueryError
	if errors.As(err, &qerr) {
		return http.StatusBadRequest
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	if errors.Is(err, context.Canceled) {
		return statusClientClosedRequest
	}
	return http.StatusInternalServerError
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// admit gates a query-evaluating handler through the admission semaphore.
// It reports whether the request may proceed; when it may, the caller must
// call release. A full queue answers 429 with a Retry-After hint, and a
// client that disconnects while queued is dropped with 499.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	switch err := s.adm.acquire(r.Context()); {
	case err == nil:
		return s.adm.release, true
	case errors.Is(err, errAdmissionFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
	default: // context canceled while queued
		writeError(w, statusFor(err), err)
	}
	return nil, false
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// DocInfo describes one registered document.
type DocInfo struct {
	Name string `json:"name"`
	core.Stats
}

func (s *Server) handleDocs(w http.ResponseWriter, r *http.Request) {
	names := s.c.Names()
	docs := make([]DocInfo, 0, len(names))
	for _, name := range names {
		eng, ok := s.c.Get(name)
		if !ok {
			continue // removed between Names and Get
		}
		docs = append(docs, DocInfo{Name: name, Stats: eng.Stats()})
	}
	writeJSON(w, http.StatusOK, map[string]any{"docs": docs})
}

// reqParams extracts doc and q, both required.
func reqParams(r *http.Request) (doc, q string, err error) {
	doc = r.URL.Query().Get("doc")
	q = r.URL.Query().Get("q")
	if doc == "" {
		return "", "", fmt.Errorf("missing doc parameter")
	}
	if q == "" {
		return "", "", fmt.Errorf("missing q parameter")
	}
	return doc, q, nil
}

// expandDocs resolves the doc parameter into the target document list.
// "*" selects every registered document (sorted); a comma-separated list
// selects the named documents in the given order. multi reports whether
// the spec was a fan-out form — a single plain name keeps the classic
// single-document response shape and statuses.
func (s *Server) expandDocs(spec string) (docs []string, multi bool) {
	if spec == "*" {
		return s.c.Names(), true
	}
	if !strings.Contains(spec, ",") {
		return []string{spec}, false
	}
	for _, d := range strings.Split(spec, ",") {
		if d = strings.TrimSpace(d); d != "" {
			docs = append(docs, d)
		}
	}
	return docs, true
}

// scatter fans one query out over docs in the requested mode on the
// collection's worker pool and returns the per-doc results in docs order.
func (s *Server) scatter(ctx context.Context, docs []string, q string, mode collection.Mode) []collection.Result {
	reqs := make([]collection.Request, len(docs))
	for i, d := range docs {
		reqs[i] = collection.Request{Doc: d, Query: q, Mode: mode}
	}
	return s.c.Query(ctx, reqs)
}

type countBody struct {
	Doc   string `json:"doc"`
	Query string `json:"query"`
	Count int64  `json:"count"`
}

// docCount is one document's slice of a fan-out count.
type docCount struct {
	Doc   string `json:"doc"`
	Count int64  `json:"count"`
	Error string `json:"error,omitempty"`
}

// multiCountBody is the fan-out response of GET /count: per-doc counts
// keyed by document name plus their sum over the successful documents.
type multiCountBody struct {
	Query string     `json:"query"`
	Total int64      `json:"total"`
	Docs  []docCount `json:"docs"`
}

func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	doc, q, err := reqParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	docs, multi := s.expandDocs(doc)
	if !multi {
		res := s.c.DoContext(r.Context(), collection.Request{Doc: doc, Query: q, Mode: collection.ModeCount})
		if res.Err != nil {
			writeError(w, statusFor(res.Err), res.Err)
			return
		}
		writeJSON(w, http.StatusOK, countBody{Doc: doc, Query: q, Count: res.Count})
		return
	}
	out := multiCountBody{Query: q, Docs: make([]docCount, len(docs))}
	for i, res := range s.scatter(r.Context(), docs, q, collection.ModeCount) {
		out.Docs[i] = docCount{Doc: res.Doc, Count: res.Count}
		if res.Err != nil {
			out.Docs[i].Error = res.Err.Error()
			continue
		}
		out.Total += res.Count
	}
	writeJSON(w, http.StatusOK, out)
}

type existsBody struct {
	Doc    string `json:"doc"`
	Query  string `json:"query"`
	Exists bool   `json:"exists"`
}

// docExists is one document's slice of a fan-out existence probe.
type docExists struct {
	Doc    string `json:"doc"`
	Exists bool   `json:"exists"`
	Error  string `json:"error,omitempty"`
}

// multiExistsBody is the fan-out response of GET /exists; Any reports
// whether the query matched in at least one document.
type multiExistsBody struct {
	Query string      `json:"query"`
	Any   bool        `json:"any"`
	Docs  []docExists `json:"docs"`
}

// handleExists answers "does this query select anything" lazily: evaluation
// stops at the first verified result, so it is the cheap way to probe
// selective queries on large documents.
func (s *Server) handleExists(w http.ResponseWriter, r *http.Request) {
	doc, q, err := reqParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	docs, multi := s.expandDocs(doc)
	if !multi {
		res := s.c.DoContext(r.Context(), collection.Request{Doc: doc, Query: q, Mode: collection.ModeExists})
		if res.Err != nil {
			writeError(w, statusFor(res.Err), res.Err)
			return
		}
		writeJSON(w, http.StatusOK, existsBody{Doc: doc, Query: q, Exists: res.Exists})
		return
	}
	out := multiExistsBody{Query: q, Docs: make([]docExists, len(docs))}
	for i, res := range s.scatter(r.Context(), docs, q, collection.ModeExists) {
		out.Docs[i] = docExists{Doc: res.Doc, Exists: res.Exists}
		if res.Err != nil {
			out.Docs[i].Error = res.Err.Error()
			continue
		}
		out.Any = out.Any || res.Exists
	}
	writeJSON(w, http.StatusOK, out)
}

// handleQueryGet streams the serialized result subtrees — for a single
// document, exactly the bytes `sxsi query` writes to stdout for the same
// document and query. The serialization goes straight to the response
// writer, so arbitrarily large result sets never buffer in memory (the
// transfer as a whole is bounded by the server's WriteTimeout), and the
// stream is flushed periodically so long-running queries make visible
// progress. Collection.Serialize writes nothing before compilation
// succeeds, so errors raised before the first byte still map to a proper
// status.
//
// With doc=* or a comma list, the documents stream back to back in
// per-doc frames: each document's results are preceded by a comment line
// `<!-- doc: NAME -->`, and a document that fails yields an error comment
// instead of failing the whole stream. Documents stream sequentially —
// interleaving would garble the XML — so memory stays bounded at one
// in-flight serialization.
func (s *Server) handleQueryGet(w http.ResponseWriter, r *http.Request) {
	doc, q, err := reqParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	docs, multi := s.expandDocs(doc)
	w.Header().Set("Content-Type", "application/xml; charset=utf-8")
	tw := newTrackingWriter(w)
	if !multi {
		if _, err := s.c.SerializeContext(r.Context(), doc, q, tw); err != nil {
			if !tw.wrote {
				// Nothing sent yet: writeError replaces the headers set above.
				writeError(w, statusFor(err), err)
				return
			}
			// Mid-stream failure: abort the connection rather than pretend the
			// truncated body is a complete result.
			panic(http.ErrAbortHandler)
		}
		return
	}
	// A query that does not compile fails identically on every document;
	// answer a clean 400 instead of a stream of error comments. Unknown
	// documents stay per-doc errors (another doc in the list may compile).
	for _, d := range docs {
		_, err := s.c.Compiled(d, q)
		if err == nil {
			break
		}
		var qerr *collection.QueryError
		if errors.As(err, &qerr) {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	for _, d := range docs {
		fmt.Fprintf(tw, "<!-- doc: %s -->\n", commentSafe(d))
		if _, err := s.c.SerializeContext(r.Context(), d, q, tw); err != nil {
			if r.Context().Err() != nil {
				// The client is gone or the deadline passed: no point in
				// continuing with the remaining documents.
				panic(http.ErrAbortHandler)
			}
			// Per-doc isolation: report this document's failure in-band and
			// keep streaming its siblings.
			fmt.Fprintf(tw, "<!-- doc: %s error: %s -->\n", commentSafe(d), commentSafe(err.Error()))
		}
		tw.flush()
	}
}

// commentSafe makes s safe to embed in an XML comment ("--" cannot occur
// inside one).
func commentSafe(s string) string { return strings.ReplaceAll(s, "--", "- -") }

// flushEvery is how many streamed bytes may accumulate before the
// response is flushed to the client.
const flushEvery = 32 << 10

// trackingWriter wraps the response writer of a streamed GET /query. It
// records whether any body byte reached the client (which decides between
// a clean error response and an aborted connection) and flushes the
// response every flushEvery bytes, so long-running streams show progress
// instead of sitting in net/http's buffer.
type trackingWriter struct {
	w         http.ResponseWriter
	rc        *http.ResponseController
	wrote     bool
	unflushed int
}

func newTrackingWriter(w http.ResponseWriter) *trackingWriter {
	return &trackingWriter{w: w, rc: http.NewResponseController(w)}
}

func (t *trackingWriter) Write(p []byte) (int, error) {
	if len(p) > 0 {
		t.wrote = true
	}
	n, err := t.w.Write(p)
	t.unflushed += n
	if err == nil && t.unflushed >= flushEvery {
		t.flush()
	}
	return n, err
}

// flush forwards to the underlying connection's Flusher, if any
// (ResponseController also reaches Flush through wrapping middlewares).
func (t *trackingWriter) flush() {
	t.unflushed = 0
	t.rc.Flush() // best-effort: ErrNotSupported just means no streaming
}

// BatchRequest is the POST /query body.
type BatchRequest struct {
	Requests []BatchItem `json:"requests"`
}

// BatchItem is one request of a batch; mode is "count" (default), "nodes",
// "serialize" or "exists", and doc accepts the same "*" / comma-list
// fan-out forms as GET /count (the item expands into one result per
// document). Serialize results are buffered into the JSON response, so the
// batch endpoint suits counts and small extractions; stream large result
// sets through GET /query instead.
type BatchItem struct {
	Doc   string `json:"doc"`
	Query string `json:"query"`
	Mode  string `json:"mode,omitempty"`
}

// BatchResult is one result of a batch response.
type BatchResult struct {
	Doc    string `json:"doc"`
	Query  string `json:"query"`
	Mode   string `json:"mode"`
	Count  int64  `json:"count"`
	Nodes  []int  `json:"nodes,omitempty"`
	Output string `json:"output,omitempty"`
	Exists bool   `json:"exists,omitempty"`
	Error  string `json:"error,omitempty"`
}

const maxBatchBody = 16 << 20 // 16 MiB

func (s *Server) handleQueryPost(w http.ResponseWriter, r *http.Request) {
	var batch BatchRequest
	// MaxBytesReader (unlike a bare LimitReader) makes an oversized body a
	// distinguishable error instead of a silent truncation that surfaces
	// as a confusing JSON parse failure.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBatchBody))
	if err == nil {
		err = json.Unmarshal(body, &batch)
	}
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("batch body exceeds the %d-byte limit; split the batch", mbe.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad batch body: %w", err))
		return
	}
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	var reqs []collection.Request
	for _, item := range batch.Requests {
		mode, err := collection.ParseMode(item.Mode)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		docs, _ := s.expandDocs(item.Doc)
		for _, d := range docs {
			reqs = append(reqs, collection.Request{Doc: d, Query: item.Query, Mode: mode})
		}
	}
	results := s.c.Query(r.Context(), reqs)
	out := make([]BatchResult, len(results))
	for i, res := range results {
		out[i] = BatchResult{
			Doc:    res.Doc,
			Query:  res.Query,
			Mode:   res.Mode.String(),
			Count:  res.Count,
			Nodes:  res.Nodes,
			Output: string(res.Output),
			Exists: res.Exists,
		}
		if res.Err != nil {
			out[i].Error = res.Err.Error()
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": out})
}

// handleReload re-stats every file-backed document and swaps the changed
// ones in with zero downtime: the swap is a registry pointer flip, queries
// already running finish on the old engine (whose mapping stays alive
// until they do), and the compiled-query cache entries of swapped
// documents are dropped. The response is the collection.ReloadReport.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	rep := s.c.Reload(r.Context())
	status := http.StatusOK
	if len(rep.Failed) > 0 {
		status = http.StatusMultiStatus
	}
	writeJSON(w, status, rep)
}

type serviceStats struct {
	UptimeSeconds float64          `json:"uptime_seconds"`
	Collection    collection.Stats `json:"collection"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if doc := r.URL.Query().Get("doc"); doc != "" {
		eng, ok := s.c.Get(doc)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("%w: %q", collection.ErrUnknownDoc, doc))
			return
		}
		writeJSON(w, http.StatusOK, DocInfo{Name: doc, Stats: eng.Stats()})
		return
	}
	writeJSON(w, http.StatusOK, serviceStats{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Collection:    s.c.Stats(),
	})
}

// sortedNames returns the keys of m, sorted — stable iteration for
// rendered output.
func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
