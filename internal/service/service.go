// Package service exposes a collection of indexed documents over HTTP: the
// sxsid daemon and the `sxsi serve` subcommand are thin wrappers around this
// handler. The API is JSON except for GET /query, which streams the same
// bytes the `sxsi query` CLI prints, so the two can be diffed directly:
//
//	GET  /healthz           liveness probe
//	GET  /docs              registered documents with index statistics
//	GET  /count?doc=D&q=Q   {"doc":D,"query":Q,"count":N}
//	GET  /exists?doc=D&q=Q  {"doc":D,"query":Q,"exists":B} (lazy, first hit)
//	GET  /query?doc=D&q=Q   serialized result subtrees (CLI byte-identical)
//	POST /query             {"requests":[{doc,query,mode}]} batch evaluation
//	GET  /stats?doc=D       index statistics; without doc, serving counters
//
// Every evaluation runs under the request's context (plus the collection's
// RequestTimeout, if set): a client that disconnects or times out cancels
// the evaluators mid-run instead of leaving them to finish into the void.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/collection"
	"repro/internal/core"
)

// Server is the HTTP front end of a Collection.
type Server struct {
	c       *collection.Collection
	mux     *http.ServeMux
	started time.Time
}

// New builds the handler for a collection.
func New(c *collection.Collection) *Server {
	s := &Server{c: c, mux: http.NewServeMux(), started: time.Now()}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /docs", s.handleDocs)
	s.mux.HandleFunc("GET /count", s.handleCount)
	s.mux.HandleFunc("GET /exists", s.handleExists)
	s.mux.HandleFunc("GET /query", s.handleQueryGet)
	s.mux.HandleFunc("POST /query", s.handleQueryPost)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	return s
}

// Collection returns the served collection.
func (s *Server) Collection() *collection.Collection { return s.c }

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

// statusFor maps evaluation errors to HTTP statuses: unknown documents are
// 404, malformed queries (parse or unsupported-fragment errors, wrapped in
// *collection.QueryError) are 400, a request that outran its per-request
// deadline is 504, and anything else is a server-side evaluation failure,
// 500.
func statusFor(err error) int {
	if errors.Is(err, collection.ErrUnknownDoc) {
		return http.StatusNotFound
	}
	var qerr *collection.QueryError
	if errors.As(err, &qerr) {
		return http.StatusBadRequest
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	return http.StatusInternalServerError
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// DocInfo describes one registered document.
type DocInfo struct {
	Name string `json:"name"`
	core.Stats
}

func (s *Server) handleDocs(w http.ResponseWriter, r *http.Request) {
	names := s.c.Names()
	docs := make([]DocInfo, 0, len(names))
	for _, name := range names {
		eng, ok := s.c.Get(name)
		if !ok {
			continue // removed between Names and Get
		}
		docs = append(docs, DocInfo{Name: name, Stats: eng.Stats()})
	}
	writeJSON(w, http.StatusOK, map[string]any{"docs": docs})
}

// reqParams extracts doc and q, both required.
func reqParams(r *http.Request) (doc, q string, err error) {
	doc = r.URL.Query().Get("doc")
	q = r.URL.Query().Get("q")
	if doc == "" {
		return "", "", fmt.Errorf("missing doc parameter")
	}
	if q == "" {
		return "", "", fmt.Errorf("missing q parameter")
	}
	return doc, q, nil
}

type countBody struct {
	Doc   string `json:"doc"`
	Query string `json:"query"`
	Count int64  `json:"count"`
}

func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	doc, q, err := reqParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res := s.c.DoContext(r.Context(), collection.Request{Doc: doc, Query: q, Mode: collection.ModeCount})
	if res.Err != nil {
		writeError(w, statusFor(res.Err), res.Err)
		return
	}
	writeJSON(w, http.StatusOK, countBody{Doc: doc, Query: q, Count: res.Count})
}

type existsBody struct {
	Doc    string `json:"doc"`
	Query  string `json:"query"`
	Exists bool   `json:"exists"`
}

// handleExists answers "does this query select anything" lazily: evaluation
// stops at the first verified result, so it is the cheap way to probe
// selective queries on large documents.
func (s *Server) handleExists(w http.ResponseWriter, r *http.Request) {
	doc, q, err := reqParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res := s.c.DoContext(r.Context(), collection.Request{Doc: doc, Query: q, Mode: collection.ModeExists})
	if res.Err != nil {
		writeError(w, statusFor(res.Err), res.Err)
		return
	}
	writeJSON(w, http.StatusOK, existsBody{Doc: doc, Query: q, Exists: res.Exists})
}

// handleQueryGet streams the serialized result subtrees — exactly the bytes
// `sxsi query` writes to stdout for the same document and query. The
// serialization goes straight to the response writer, so arbitrarily large
// result sets never buffer in memory (the transfer as a whole is bounded
// by the server's WriteTimeout). Collection.Serialize writes nothing
// before compilation succeeds, so errors raised before the first byte
// still map to a proper status.
func (s *Server) handleQueryGet(w http.ResponseWriter, r *http.Request) {
	doc, q, err := reqParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "application/xml; charset=utf-8")
	tw := &trackingWriter{w: w}
	if _, err := s.c.SerializeContext(r.Context(), doc, q, tw); err != nil {
		if !tw.wrote {
			// Nothing sent yet: writeError replaces the headers set above.
			writeError(w, statusFor(err), err)
			return
		}
		// Mid-stream failure: abort the connection rather than pretend the
		// truncated body is a complete result.
		panic(http.ErrAbortHandler)
	}
}

// trackingWriter records whether any body byte reached the client, which
// decides between a clean error response and an aborted connection.
type trackingWriter struct {
	w     http.ResponseWriter
	wrote bool
}

func (t *trackingWriter) Write(p []byte) (int, error) {
	if len(p) > 0 {
		t.wrote = true
	}
	return t.w.Write(p)
}

// BatchRequest is the POST /query body.
type BatchRequest struct {
	Requests []BatchItem `json:"requests"`
}

// BatchItem is one request of a batch; mode is "count" (default), "nodes",
// "serialize" or "exists". Serialize results are buffered into the JSON
// response, so the batch endpoint suits counts and small extractions;
// stream large result sets through GET /query instead.
type BatchItem struct {
	Doc   string `json:"doc"`
	Query string `json:"query"`
	Mode  string `json:"mode,omitempty"`
}

// BatchResult is one result of a batch response.
type BatchResult struct {
	Doc    string `json:"doc"`
	Query  string `json:"query"`
	Mode   string `json:"mode"`
	Count  int64  `json:"count"`
	Nodes  []int  `json:"nodes,omitempty"`
	Output string `json:"output,omitempty"`
	Exists bool   `json:"exists,omitempty"`
	Error  string `json:"error,omitempty"`
}

const maxBatchBody = 16 << 20 // 16 MiB

func (s *Server) handleQueryPost(w http.ResponseWriter, r *http.Request) {
	var batch BatchRequest
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBatchBody))
	if err == nil {
		err = json.Unmarshal(body, &batch)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad batch body: %w", err))
		return
	}
	reqs := make([]collection.Request, len(batch.Requests))
	for i, item := range batch.Requests {
		mode, err := collection.ParseMode(item.Mode)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		reqs[i] = collection.Request{Doc: item.Doc, Query: item.Query, Mode: mode}
	}
	results := s.c.Query(r.Context(), reqs)
	out := make([]BatchResult, len(results))
	for i, res := range results {
		out[i] = BatchResult{
			Doc:    res.Doc,
			Query:  res.Query,
			Mode:   res.Mode.String(),
			Count:  res.Count,
			Nodes:  res.Nodes,
			Output: string(res.Output),
			Exists: res.Exists,
		}
		if res.Err != nil {
			out[i].Error = res.Err.Error()
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": out})
}

type serviceStats struct {
	UptimeSeconds float64          `json:"uptime_seconds"`
	Collection    collection.Stats `json:"collection"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if doc := r.URL.Query().Get("doc"); doc != "" {
		eng, ok := s.c.Get(doc)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("%w: %q", collection.ErrUnknownDoc, doc))
			return
		}
		writeJSON(w, http.StatusOK, DocInfo{Name: doc, Stats: eng.Stats()})
		return
	}
	writeJSON(w, http.StatusOK, serviceStats{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Collection:    s.c.Stats(),
	})
}
