package service

// Tests for the Prometheus /metrics endpoint and for the two response-path
// bugfixes riding along: the 413 on oversized batch bodies and the
// Flusher-forwarding tracking writer.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// TestMetricsEndpoint pins the exposition content: counter and histogram
// series with the right names, values reflecting the traffic served, and
// the text-format content type. CI runs it (with -race) as the metrics
// smoke check.
func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	// One success and one compile failure, both in count mode.
	if code, _ := get(t, ts.URL+"/count?doc=lib&q="+escape("//book")); code != http.StatusOK {
		t.Fatal("warm-up count failed")
	}
	if code, _ := get(t, ts.URL+"/count?doc=lib&q="+escape("//book[")); code != http.StatusBadRequest {
		t.Fatal("warm-up bad query not 400")
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type: %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	for _, want := range []string{
		"# TYPE sxsi_queries_total counter",
		"sxsi_queries_total 2",
		"sxsi_query_errors_total 1",
		"sxsi_query_canceled_total 0",
		"# TYPE sxsi_query_duration_seconds histogram",
		`sxsi_query_duration_seconds_bucket{mode="count",le="+Inf"} 2`,
		`sxsi_query_duration_seconds_count{mode="count"} 2`,
		`sxsi_query_duration_seconds_sum{mode="count"} `,
		`sxsi_query_duration_seconds_bucket{mode="stream",le="+Inf"} 0`,
		"sxsi_cache_hit_ratio 0",
		"sxsi_cache_misses_total 2",
		"sxsi_docs 1",
		"sxsi_index_mapped_bytes 0", // built in-memory, nothing mapped
		"sxsi_go_goroutines ",
		"sxsi_uptime_seconds ",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, body)
		}
	}

	// Histogram buckets are cumulative: every count-mode bucket count must
	// be ≤ the +Inf value and non-decreasing.
	last := int64(-1)
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, `sxsi_query_duration_seconds_bucket{mode="count"`) {
			continue
		}
		v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("bucket line %q: %v", line, err)
		}
		if v < last {
			t.Fatalf("buckets not cumulative at %q", line)
		}
		last = v
	}
	if last != 2 {
		t.Fatalf("last count bucket = %d, want 2", last)
	}
}

// TestBatchBodyTooLarge pins the 413: an oversized batch body is rejected
// with a clear message instead of being silently truncated into a
// confusing 400 JSON parse error.
func TestBatchBodyTooLarge(t *testing.T) {
	ts, _ := newTestServer(t)
	body := strings.NewReader(`{"requests":[` + strings.Repeat(" ", maxBatchBody+1024) + `]}`)
	resp, err := http.Post(ts.URL+"/query", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch: %d, want 413", resp.StatusCode)
	}
	raw, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(raw), "limit") {
		t.Fatalf("413 body: %s", raw)
	}
}

// TestTrackingWriterFlushes pins the Flusher forwarding: a streamed body
// larger than flushEvery reaches the client before the handler returns
// (previously the wrapper hid the Flusher and bytes sat in net/http's
// buffer until it filled).
func TestTrackingWriterFlushes(t *testing.T) {
	rec := httptest.NewRecorder()
	tw := newTrackingWriter(rec)
	if _, err := tw.Write(make([]byte, flushEvery/2)); err != nil {
		t.Fatal(err)
	}
	if rec.Flushed {
		t.Fatal("flushed below the threshold")
	}
	if _, err := tw.Write(make([]byte, flushEvery/2+1)); err != nil {
		t.Fatal(err)
	}
	if !rec.Flushed {
		t.Fatal("did not flush past the threshold")
	}
	if !tw.wrote {
		t.Fatal("wrote not tracked")
	}
}
