package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/collection"
	"repro/internal/core"
)

func saveLibIndex(t *testing.T, path string, books int) {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("<lib>")
	for i := 0; i < books; i++ {
		fmt.Fprintf(&sb, "<book>v%d</book>", i)
	}
	sb.WriteString("</lib>")
	eng, err := core.Build([]byte(sb.String()), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// SaveFile writes a temp file and renames it into place, so the old
	// inode — possibly still mapped under the serving engine — is never
	// mutated.
	if _, err := eng.SaveFile(path); err != nil {
		t.Fatal(err)
	}
}

// TestReloadEndpointUnderLoad is the hot-swap race test: clients hammer
// /count while the index file behind the document is rewritten and
// POST /reload swaps it in, repeatedly. Every in-flight query must finish
// cleanly on whichever engine it started on — zero failed requests — and
// every response must show one of the two valid counts. Run under -race in
// CI, this also pins the swap's memory-model soundness.
func TestReloadEndpointUnderLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lib.sxsi")
	saveLibIndex(t, path, 2)

	c := collection.New(collection.Config{Workers: 4})
	if err := c.Open("lib", path); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(c))
	t.Cleanup(ts.Close)

	var failures atomic.Int64
	var firstFailure atomic.Value
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/count?doc=lib&q=" + escape("//book"))
				if err != nil {
					failures.Add(1)
					firstFailure.CompareAndSwap(nil, fmt.Sprintf("transport: %v", err))
					continue
				}
				var out countBody
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || err != nil {
					failures.Add(1)
					firstFailure.CompareAndSwap(nil, fmt.Sprintf("status %d, decode %v", resp.StatusCode, err))
					continue
				}
				if out.Count != 2 && out.Count != 3 {
					failures.Add(1)
					firstFailure.CompareAndSwap(nil, fmt.Sprintf("count %d", out.Count))
				}
			}
		}()
	}

	// Swap between the 2-book and 3-book index several times under load.
	for i := 0; i < 6; i++ {
		saveLibIndex(t, path, 2+(i+1)%2)
		// Distinct mtimes even on coarse filesystem clocks (sizes differ
		// between the two versions anyway; this is belt and braces).
		if err := os.Chtimes(path, time.Time{}, time.Now().Add(time.Duration(i+1)*time.Second)); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/reload", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		var rep collection.ReloadReport
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || len(rep.Reloaded) != 1 || rep.Reloaded[0] != "lib" {
			t.Fatalf("reload %d: status %d report %+v", i, resp.StatusCode, rep)
		}
	}
	close(stop)
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d requests failed during hot swaps; first: %v", n, firstFailure.Load())
	}
	// The last swap wins: 6 iterations end on the 2-book version.
	code, body := get(t, ts.URL+"/count?doc=lib&q="+escape("//book"))
	var out countBody
	if err := json.Unmarshal(body, &out); err != nil || code != http.StatusOK {
		t.Fatalf("final count: %d %s", code, body)
	}
	if out.Count != 2 {
		t.Fatalf("final count = %d, want the last-written index's 2", out.Count)
	}
	if st := c.Stats(); st.Reloads != 6 {
		t.Fatalf("Stats.Reloads = %d, want 6", st.Reloads)
	}
}
