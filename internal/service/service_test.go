package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/gen"
)

const testXML = `<lib><book id="1"><title>gold rush</title></book>` +
	`<book id="2"><title>silver age</title></book><note>gold note</note></lib>`

func newTestServer(t *testing.T) (*httptest.Server, *collection.Collection) {
	t.Helper()
	c := collection.New(collection.Config{Workers: 4})
	eng, err := core.Build([]byte(testXML), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	c.Add("lib", eng)
	ts := httptest.NewServer(New(c))
	t.Cleanup(ts.Close)
	return ts, c
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz: %d %s", code, body)
	}
}

func TestDocs(t *testing.T) {
	ts, _ := newTestServer(t)
	code, body := get(t, ts.URL+"/docs")
	if code != http.StatusOK {
		t.Fatalf("docs: %d %s", code, body)
	}
	var out struct {
		Docs []struct {
			Name  string `json:"name"`
			Nodes int    `json:"nodes"`
		} `json:"docs"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Docs) != 1 || out.Docs[0].Name != "lib" || out.Docs[0].Nodes == 0 {
		t.Fatalf("docs body: %s", body)
	}
}

func TestCount(t *testing.T) {
	ts, _ := newTestServer(t)
	code, body := get(t, ts.URL+"/count?doc=lib&q="+escape("//book"))
	if code != http.StatusOK {
		t.Fatalf("count: %d %s", code, body)
	}
	var out struct {
		Count int64 `json:"count"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Count != 2 {
		t.Fatalf("count = %d", out.Count)
	}
}

func TestErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	if code, _ := get(t, ts.URL+"/count?doc=nope&q="+escape("//x")); code != http.StatusNotFound {
		t.Fatalf("unknown doc: %d", code)
	}
	if code, _ := get(t, ts.URL+"/count?doc=lib&q="+escape("//book[")); code != http.StatusBadRequest {
		t.Fatalf("parse error: %d", code)
	}
	if code, _ := get(t, ts.URL+"/count?doc=lib"); code != http.StatusBadRequest {
		t.Fatalf("missing q: %d", code)
	}
	if code, _ := get(t, ts.URL+"/stats?doc=nope"); code != http.StatusNotFound {
		t.Fatalf("stats unknown doc: %d", code)
	}
}

func TestBatch(t *testing.T) {
	ts, _ := newTestServer(t)
	body := `{"requests":[
		{"doc":"lib","query":"//book"},
		{"doc":"lib","query":"//title","mode":"nodes"},
		{"doc":"lib","query":"//note","mode":"serialize"},
		{"doc":"nope","query":"//x"}
	]}`
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, raw)
	}
	var out struct {
		Results []struct {
			Mode   string `json:"mode"`
			Count  int64  `json:"count"`
			Nodes  []int  `json:"nodes"`
			Output string `json:"output"`
			Error  string `json:"error"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 4 {
		t.Fatalf("results: %s", raw)
	}
	if r := out.Results[0]; r.Mode != "count" || r.Count != 2 || r.Error != "" {
		t.Fatalf("batch count: %+v", r)
	}
	if r := out.Results[1]; r.Mode != "nodes" || len(r.Nodes) != 2 {
		t.Fatalf("batch nodes: %+v", r)
	}
	if r := out.Results[2]; r.Output != "<note>gold note</note>\n" {
		t.Fatalf("batch serialize: %+v", r)
	}
	if r := out.Results[3]; r.Error == "" {
		t.Fatalf("batch unknown doc: %+v", r)
	}
}

func TestStats(t *testing.T) {
	ts, _ := newTestServer(t)
	get(t, ts.URL+"/count?doc=lib&q="+escape("//book"))
	code, body := get(t, ts.URL+"/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d %s", code, body)
	}
	var out struct {
		Collection collection.Stats `json:"collection"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Collection.Docs != 1 || out.Collection.Queries == 0 {
		t.Fatalf("stats body: %s", body)
	}
	code, body = get(t, ts.URL+"/stats?doc=lib")
	if code != http.StatusOK || !strings.Contains(string(body), `"nodes"`) {
		t.Fatalf("doc stats: %d %s", code, body)
	}
}

// TestCLIByteIdentical pins the acceptance criterion: on the same saved
// index, GET /query returns exactly the bytes `sxsi query` prints, and
// /count agrees with `sxsi count`. The CLI path is core.Load + Serialize /
// Count on the saved file, reproduced here in-process.
func TestCLIByteIdentical(t *testing.T) {
	dir := t.TempDir()
	xml := gen.XMark(7, 64<<10)
	eng, err := core.Build(xml, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	idxPath := filepath.Join(dir, "xmark.sxsi")
	if _, err := eng.SaveFile(idxPath); err != nil {
		t.Fatal(err)
	}

	c := collection.New(collection.Config{})
	if err := c.Open("xmark", idxPath); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(c))
	defer ts.Close()

	loaded, err := core.LoadFile(idxPath, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"//listitem//keyword",
		"//item[.//keyword]/name",
		"//person[address]//emailaddress",
		"//keyword[contains(., 'gold')]",
		// Backward axes flow through the same load → compile → serialize
		// pipeline, so the server must stay byte-identical to the CLI.
		"//keyword/ancestor::listitem",
		"//emph/..",
		"//name[preceding-sibling::location]",
	}
	for _, q := range queries {
		var cli bytes.Buffer
		if _, err := loaded.Serialize(q, &cli); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		code, body := get(t, ts.URL+"/query?doc=xmark&q="+escape(q))
		if code != http.StatusOK {
			t.Fatalf("%s: http %d", q, code)
		}
		if !bytes.Equal(body, cli.Bytes()) {
			t.Fatalf("%s: server output differs from CLI (%d vs %d bytes)", q, len(body), cli.Len())
		}

		n, err := loaded.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		code, cbody := get(t, ts.URL+"/count?doc=xmark&q="+escape(q))
		if code != http.StatusOK {
			t.Fatalf("%s: count http %d", q, code)
		}
		var out struct {
			Count int64 `json:"count"`
		}
		if err := json.Unmarshal(cbody, &out); err != nil {
			t.Fatal(err)
		}
		// The CLI prints the count as a decimal line; compare that rendering.
		if fmt.Sprintf("%d\n", out.Count) != fmt.Sprintf("%d\n", n) {
			t.Fatalf("%s: server count %d != CLI count %d", q, out.Count, n)
		}
	}
}

func TestRunLoadsAndServes(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "doc.xml"), []byte(testXML), 0o666); err != nil {
		t.Fatal(err)
	}
	// Run blocks on ListenAndServe; exercise its loading path through the
	// collection it would serve instead of binding a port here.
	c := collection.New(collection.Config{})
	names, err := c.LoadDir(t.Context(), dir)
	if err != nil || len(names) != 1 {
		t.Fatalf("LoadDir: %v %v", names, err)
	}
}

func escape(q string) string {
	r := strings.NewReplacer(" ", "%20", "[", "%5B", "]", "%5D", "'", "%27", ",", "%2C", "/", "%2F", "(", "%28", ")", "%29", ".", "%2E")
	return r.Replace(q)
}
