package service

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/collection"
)

// Run loads every .sxsi/.xml file under dir into a fresh collection and
// serves it on addr until the listener fails; it is the shared body of the
// sxsid daemon and `sxsi serve`. Per-file load failures are logged and the
// surviving documents are served; Run only fails up front when addr cannot
// be bound or nothing at all could be loaded from a requested dir.
func Run(addr, dir string, cfg collection.Config, logw io.Writer) error {
	c := collection.New(cfg)
	if dir != "" {
		start := time.Now()
		names, err := c.LoadDir(context.Background(), dir)
		if err != nil {
			if len(names) == 0 {
				return fmt.Errorf("load %s: %w", dir, err)
			}
			fmt.Fprintf(logw, "warning: some documents failed to load: %v\n", err)
		}
		fmt.Fprintf(logw, "loaded %d document(s) in %v: %s\n",
			len(names), time.Since(start).Round(time.Millisecond), strings.Join(names, " "))
	}
	fmt.Fprintf(logw, "listening on %s\n", addr)
	srv := &http.Server{
		Addr:    addr,
		Handler: New(c),
		// Bound slow clients on both sides so a trickled request or a
		// slow-reading response consumer cannot pin goroutines and file
		// descriptors indefinitely. WriteTimeout is the ceiling on one
		// whole response transfer — streamed GET /query bodies are
		// unbounded in size but not in time.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      10 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	return srv.ListenAndServe()
}
