package service

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"repro/internal/collection"
)

// Options configures Run, the shared body of the sxsid daemon and
// `sxsi serve`.
type Options struct {
	// Addr is the main listen address (required).
	Addr string
	// Dir, when set, is bulk-loaded into the collection before serving.
	Dir string
	// DebugAddr, when set, serves net/http/pprof on a second listener,
	// kept off the query port so profiling endpoints are never exposed to
	// query clients by accident.
	DebugAddr string
	// Watch, when positive, polls the file-backed documents every Watch
	// and hot-swaps the ones whose files changed (the polling twin of
	// POST /reload).
	Watch time.Duration
	// HTTP tunes admission control on the query endpoints.
	HTTP Config
	// Collection configures the served collection.
	Collection collection.Config
}

// Run loads every .sxsi/.xml file under opts.Dir into a fresh collection
// and serves it on opts.Addr until the listener fails. Per-file load
// failures are logged and the surviving documents are served; Run only
// fails up front when addr cannot be bound or nothing at all could be
// loaded from a requested dir.
func Run(opts Options, logw io.Writer) error {
	c := collection.New(opts.Collection)
	if opts.Dir != "" {
		start := time.Now()
		names, err := c.LoadDir(context.Background(), opts.Dir)
		if err != nil {
			if len(names) == 0 {
				return fmt.Errorf("load %s: %w", opts.Dir, err)
			}
			fmt.Fprintf(logw, "warning: some documents failed to load: %v\n", err)
		}
		fmt.Fprintf(logw, "loaded %d document(s) in %v: %s\n",
			len(names), time.Since(start).Round(time.Millisecond), strings.Join(names, " "))
	}
	if opts.DebugAddr != "" {
		go func() {
			fmt.Fprintf(logw, "pprof listening on %s\n", opts.DebugAddr)
			err := http.ListenAndServe(opts.DebugAddr, debugMux())
			fmt.Fprintf(logw, "warning: pprof listener failed: %v\n", err)
		}()
	}
	if opts.Watch > 0 {
		go watchReload(c, opts.Watch, logw)
	}
	fmt.Fprintf(logw, "listening on %s\n", opts.Addr)
	srv := &http.Server{
		Addr:    opts.Addr,
		Handler: NewWithConfig(c, opts.HTTP),
		// Bound slow clients on both sides so a trickled request or a
		// slow-reading response consumer cannot pin goroutines and file
		// descriptors indefinitely. WriteTimeout is the ceiling on one
		// whole response transfer — streamed GET /query bodies are
		// unbounded in size but not in time.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      10 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	return srv.ListenAndServe()
}

// watchReload polls the collection's file-backed documents and hot-swaps
// changed ones, logging every pass that did something. It runs for the
// life of the daemon.
func watchReload(c *collection.Collection, every time.Duration, logw io.Writer) {
	for range time.Tick(every) {
		rep := c.Reload(context.Background())
		if len(rep.Reloaded) > 0 || len(rep.Removed) > 0 || len(rep.Failed) > 0 {
			fmt.Fprintf(logw, "reload: %d reloaded %v, %d removed %v, %d unchanged, failures: %v\n",
				len(rep.Reloaded), rep.Reloaded, len(rep.Removed), rep.Removed, rep.Unchanged, rep.Failed)
		}
	}
}

// debugMux is the pprof handler set on its own mux (importing
// net/http/pprof for its side effect would also pollute
// http.DefaultServeMux).
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
