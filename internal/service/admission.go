package service

import (
	"context"
	"errors"
	"sync/atomic"
)

// errAdmissionFull rejects a request when every evaluation slot is taken
// and the wait queue is at capacity; the HTTP layer maps it to 429 with a
// Retry-After hint.
var errAdmissionFull = errors.New("service: server at capacity, retry later")

// admission is a semaphore bounding concurrent query evaluations plus a
// bounded count of waiters. Under a burst of pathological queries the
// server degrades gracefully — MaxConcurrent evaluations run,
// MaxQueue requests wait (still bounded by their own contexts), and the
// rest are turned away immediately — instead of accumulating a goroutine
// and an evaluation per queued connection. A nil *admission admits
// everything, so the unlimited default costs nothing per request.
type admission struct {
	sem      chan struct{} // buffered to MaxConcurrent; a send is an acquire
	maxQueue int64
	queued   atomic.Int64
	rejected atomic.Int64
}

func newAdmission(cfg Config) *admission {
	if cfg.MaxConcurrent <= 0 {
		return nil
	}
	return &admission{sem: make(chan struct{}, cfg.MaxConcurrent), maxQueue: int64(cfg.MaxQueue)}
}

// acquire claims an evaluation slot, waiting in the bounded queue if none
// is free. It returns nil (caller must release), errAdmissionFull, or the
// context's error if the client went away while queued.
func (a *admission) acquire(ctx context.Context) error {
	if a == nil {
		return nil
	}
	select {
	case a.sem <- struct{}{}:
		return nil
	default:
	}
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		a.rejected.Add(1)
		return errAdmissionFull
	}
	defer a.queued.Add(-1)
	select {
	case a.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (a *admission) release() {
	if a != nil {
		<-a.sem
	}
}

func (a *admission) inFlight() int {
	if a == nil {
		return 0
	}
	return len(a.sem)
}

func (a *admission) queuedNow() int64 {
	if a == nil {
		return 0
	}
	return a.queued.Load()
}

func (a *admission) rejectedTotal() int64 {
	if a == nil {
		return 0
	}
	return a.rejected.Load()
}
