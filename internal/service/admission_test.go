package service

// Admission-control tests: with MaxConcurrent evaluations running and
// MaxQueue requests waiting, the next request is turned away with 429 and
// a Retry-After hint; queued requests complete once a slot frees. The
// blocking evaluation is deterministic — a custom predicate parks on a
// channel — so nothing here races a timer.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/xpath"
)

func TestAdmissionControl(t *testing.T) {
	block := make(chan struct{})
	entered := make(chan struct{}, 16)
	opts := xpath.Options{
		ForceStrategy: xpath.StrategyBottomUp,
		CustomMatchSets: map[string]func(string) []int32{
			"blockwait": func(string) []int32 {
				select {
				case entered <- struct{}{}:
				default:
				}
				<-block
				return []int32{0}
			},
		},
	}
	c := collection.New(collection.Config{Workers: 4, CacheSize: -1})
	eng, err := core.Build([]byte(testXML), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	c.Add("lib", eng.WithQueryOptions(opts))
	ts := httptest.NewServer(NewWithConfig(c, Config{MaxConcurrent: 1, MaxQueue: 1}))
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		select {
		case <-block:
		default:
			close(block)
		}
	})

	blockingURL := ts.URL + "/count?doc=lib&q=" + escape("//title[blockwait(., 'x')]")
	type reply struct {
		code int
		body string
	}
	fire := func() chan reply {
		ch := make(chan reply, 1)
		go func() {
			resp, err := http.Get(blockingURL)
			if err != nil {
				ch <- reply{0, err.Error()}
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			ch <- reply{resp.StatusCode, string(body)}
		}()
		return ch
	}

	// A takes the only evaluation slot and parks inside the evaluator.
	aCh := fire()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("first request never entered evaluation")
	}

	// B fills the queue. Queueing happens before evaluation, so poll the
	// admission gauge through /metrics until B is provably waiting.
	bCh := fire()
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, mbody := get(t, ts.URL+"/metrics")
		if strings.Contains(string(mbody), "sxsi_admission_queued 1") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue gauge never reached 1:\n%s", mbody)
		}
		time.Sleep(time.Millisecond)
	}

	// C finds slots and queue full: 429 with a Retry-After hint. /metrics
	// itself is not admission-gated (the poll above already proved that).
	resp, err := http.Get(blockingURL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third request: %d %s, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var e errorBody
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("429 body: %s", body)
	}

	// Freeing the evaluator drains A, then B, both successfully.
	close(block)
	for _, ch := range []chan reply{aCh, bCh} {
		select {
		case r := <-ch:
			if r.code != http.StatusOK {
				t.Fatalf("blocked request finished with %d %s", r.code, r.body)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("blocked request never finished")
		}
	}
	if code, mbody := get(t, ts.URL+"/metrics"); code != http.StatusOK ||
		!strings.Contains(string(mbody), "sxsi_admission_rejected_total 1") ||
		!strings.Contains(string(mbody), "sxsi_admission_in_flight 0") {
		t.Fatalf("post-drain metrics:\n%s", mbody)
	}
}
