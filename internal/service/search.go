package service

import (
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/collection"
)

// searchBody is the GET /search response: the collection.SearchReport plus
// an echo of the request.
type searchBody struct {
	Query string `json:"query"`
	XPath string `json:"xpath,omitempty"`
	K     int    `json:"k"`
	collection.SearchReport
}

// handleSearch is the ranked full-text endpoint:
//
//	GET /search?q=TERMS[&xpath=EXPR][&k=N]
//
// q is a conjunctive term query ("quoted phrases" match exact substrings
// through the FM-index); xpath optionally restricts the result to
// documents where the expression selects at least one node (evaluated only
// on the term candidates); k caps the ranked hits (default
// collection.DefaultTopK). The response carries the BM25-ranked hits with
// scores, text snippets and — when xpath was given — per-document result
// node counts. Like every evaluating endpoint it runs under the admission
// semaphore and the request's context.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing q parameter"))
		return
	}
	xpath := r.URL.Query().Get("xpath")
	k := 0
	if ks := r.URL.Query().Get("k"); ks != "" {
		var err error
		if k, err = strconv.Atoi(ks); err != nil || k <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad k parameter %q", ks))
			return
		}
	}
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	rep, err := s.c.Search(r.Context(), q, xpath, k)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	if k == 0 {
		k = collection.DefaultTopK
	}
	writeJSON(w, http.StatusOK, searchBody{Query: q, XPath: xpath, K: k, SearchReport: *rep})
}
