package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/collection"
	"repro/internal/core"
)

// newSearchServer serves a corpus big enough to make ranking meaningful:
// five documents with graded term frequencies.
func newSearchServer(t *testing.T) (*httptest.Server, *collection.Collection) {
	t.Helper()
	c := collection.New(collection.Config{Workers: 4})
	for i := 1; i <= 5; i++ {
		xml := fmt.Sprintf(`<doc><title>doc %d</title><body>%s%s</body></doc>`,
			i,
			strings.Repeat("gold ", i),
			strings.Repeat("filler word padding ", 6-i))
		eng, err := core.Build([]byte(xml), core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		c.Add(fmt.Sprintf("d%d", i), eng)
	}
	ts := httptest.NewServer(New(c))
	t.Cleanup(ts.Close)
	return ts, c
}

type searchResp struct {
	Query      string                 `json:"query"`
	XPath      string                 `json:"xpath"`
	K          int                    `json:"k"`
	Terms      []string               `json:"terms"`
	Candidates int                    `json:"candidates"`
	Matched    int                    `json:"matched"`
	Hits       []collection.SearchHit `json:"hits"`
	Failed     map[string]string      `json:"failed"`
}

func doSearch(t *testing.T, base string, params url.Values) (int, searchResp, []byte) {
	t.Helper()
	code, body := get(t, base+"/search?"+params.Encode())
	var out searchResp
	if code == http.StatusOK {
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("bad search body %s: %v", body, err)
		}
	}
	return code, out, body
}

func TestSearchEndpoint(t *testing.T) {
	ts, _ := newSearchServer(t)
	code, out, body := doSearch(t, ts.URL, url.Values{"q": {"gold"}})
	if code != http.StatusOK {
		t.Fatalf("search: %d %s", code, body)
	}
	if out.Candidates != 5 || out.Matched != 5 || out.K != collection.DefaultTopK {
		t.Fatalf("search body: %s", body)
	}
	if len(out.Hits) != 5 {
		t.Fatalf("hits: %s", body)
	}
	// d5 repeats "gold" five times in the shortest body: it must rank first,
	// and scores must be non-increasing down the list.
	if out.Hits[0].Doc != "d5" {
		t.Fatalf("top hit: %s", body)
	}
	for i := 1; i < len(out.Hits); i++ {
		if out.Hits[i].Score > out.Hits[i-1].Score {
			t.Fatalf("scores not sorted: %s", body)
		}
	}
	if !strings.Contains(out.Hits[0].Snippet, "gold") {
		t.Fatalf("snippet: %s", body)
	}
	if out.Terms[0] != "gold" {
		t.Fatalf("terms echo: %s", body)
	}
}

func TestSearchEndpointTopKAndXPath(t *testing.T) {
	ts, _ := newSearchServer(t)
	code, out, body := doSearch(t, ts.URL, url.Values{
		"q": {"gold"}, "k": {"2"}, "xpath": {`//title[contains(., "doc")]`},
	})
	if code != http.StatusOK {
		t.Fatalf("search: %d %s", code, body)
	}
	if out.Matched != 5 || len(out.Hits) != 2 || out.K != 2 {
		t.Fatalf("k=2 body: %s", body)
	}
	for _, h := range out.Hits {
		if h.Nodes != 1 {
			t.Fatalf("nodes: %s", body)
		}
	}
	// A selective filter narrows the matches.
	code, out, body = doSearch(t, ts.URL, url.Values{
		"q": {"gold"}, "xpath": {`//title[contains(., "doc 3")]`},
	})
	if code != http.StatusOK || out.Matched != 1 || out.Hits[0].Doc != "d3" {
		t.Fatalf("selective filter: %d %s", code, body)
	}
}

func TestSearchEndpointErrors(t *testing.T) {
	ts, _ := newSearchServer(t)
	for _, tc := range []struct {
		params url.Values
		want   int
	}{
		{url.Values{}, http.StatusBadRequest},                          // missing q
		{url.Values{"q": {`"unterminated`}}, http.StatusBadRequest},    // bad query
		{url.Values{"q": {"gold"}, "k": {"x"}}, http.StatusBadRequest}, // bad k
		{url.Values{"q": {"gold"}, "k": {"-1"}}, http.StatusBadRequest},
	} {
		if code, _, body := doSearch(t, ts.URL, tc.params); code != tc.want {
			t.Fatalf("params %v: %d %s, want %d", tc.params, code, body, tc.want)
		}
	}
}

func TestSearchEndpointDisabled(t *testing.T) {
	c := collection.New(collection.Config{DisableSearch: true})
	ts := httptest.NewServer(New(c))
	t.Cleanup(ts.Close)
	code, _, body := doSearch(t, ts.URL, url.Values{"q": {"gold"}})
	if code != http.StatusNotImplemented {
		t.Fatalf("disabled search: %d %s", code, body)
	}
}

// TestSearchMetrics pins the sxsi_search_* exposition series.
func TestSearchMetrics(t *testing.T) {
	ts, _ := newSearchServer(t)
	if code, _, _ := doSearch(t, ts.URL, url.Values{"q": {"gold"}}); code != http.StatusOK {
		t.Fatal("warm-up search failed")
	}
	if code, _, _ := doSearch(t, ts.URL, url.Values{"q": {`"x`}}); code != http.StatusBadRequest {
		t.Fatal("warm-up bad search not 400")
	}
	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	for _, want := range []string{
		"# TYPE sxsi_search_total counter",
		"sxsi_search_total 2",
		"sxsi_search_errors_total 1",
		"# TYPE sxsi_search_duration_seconds histogram",
		`sxsi_search_duration_seconds_bucket{le="+Inf"} 2`,
		"sxsi_search_duration_seconds_count 2",
		"sxsi_search_duration_seconds_sum ",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics missing %q in:\n%s", want, body)
		}
	}
}
