package service

// Tests for the exists endpoint, per-request deadlines and batch
// cancellation. The batch cancellation test is deterministic: a custom
// predicate blocks the evaluation until the server-side request context is
// actually cancelled (no timers racing the evaluator), so the worker is
// guaranteed to observe the cancellation at its next poll.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/xpath"
)

func TestExistsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	var out existsBody
	code, body := get(t, ts.URL+"/exists?doc=lib&q="+escape("//book"))
	if code != http.StatusOK {
		t.Fatalf("exists: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Exists || out.Doc != "lib" {
		t.Fatalf("exists body: %s", body)
	}
	code, body = get(t, ts.URL+"/exists?doc=lib&q="+escape("//missing"))
	if code != http.StatusOK {
		t.Fatalf("exists absent: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Exists {
		t.Fatalf("exists absent body: %s", body)
	}
	if code, _ := get(t, ts.URL+"/exists?doc=nope&q="+escape("//x")); code != http.StatusNotFound {
		t.Fatalf("exists unknown doc: %d", code)
	}
}

// TestRequestTimeout pins the deadline plumbing end to end: a collection
// with a 1ns per-request budget produces a context whose deadline has
// already passed when evaluation starts, the evaluator's upfront check
// fails with context.DeadlineExceeded, and the handler maps it to 504.
func TestRequestTimeout(t *testing.T) {
	c := collection.New(collection.Config{Workers: 2, RequestTimeout: time.Nanosecond})
	eng, err := core.Build([]byte(testXML), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	c.Add("lib", eng)
	ts := httptest.NewServer(New(c))
	t.Cleanup(ts.Close)
	code, body := get(t, ts.URL+"/count?doc=lib&q="+escape("//book"))
	if code != http.StatusGatewayTimeout {
		t.Fatalf("count under 1ns budget: %d %s, want 504", code, body)
	}
	if !strings.Contains(string(body), "deadline") {
		t.Fatalf("error body: %s", body)
	}
}

// TestBatchCancellation cancels a POST /query batch mid-evaluation through
// the client's request context. The custom predicate first hands the
// server-side request context to the test and blocks until that context is
// cancelled, so by the time the bottom-up climb starts polling, the
// cancellation has provably propagated client → connection → request
// context → evaluator.
func TestBatchCancellation(t *testing.T) {
	c := collection.New(collection.Config{Workers: 2, CacheSize: -1})
	serverCtxCh := make(chan context.Context, 1)
	started := make(chan struct{})
	var sctx context.Context
	opts := xpath.Options{
		ForceStrategy: xpath.StrategyBottomUp,
		CustomMatchSets: map[string]func(string) []int32{
			"cancelwait": func(string) []int32 {
				if sctx == nil {
					sctx = <-serverCtxCh
					close(started)
				}
				<-sctx.Done()
				return []int32{0, 1, 2}
			},
		},
	}
	eng, err := core.Build([]byte(testXML), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	c.Add("lib", eng.WithQueryOptions(opts))
	inner := New(c)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		serverCtxCh <- r.Context()
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	body := `{"requests":[{"doc":"lib","query":"//title[cancelwait(., 'x')]","mode":"count"}]}`
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/query", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errCh <- err
	}()
	<-started
	cancel()
	if err := <-errCh; err == nil {
		t.Fatal("client Do succeeded despite cancellation")
	}
	// The worker observed the cancellation: the request is accounted as a
	// cancellation — client behavior, kept out of the error counter — not
	// as a success or an error (and the server did not wedge — Stats would
	// block forever on a deadlocked worker holding the engine lock).
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := c.Stats()
		if st.Queries == 1 && st.Canceled == 1 && st.Errors == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats = %+v, want Queries=1 Canceled=1 Errors=0", st)
		}
		time.Sleep(time.Millisecond)
	}
}
