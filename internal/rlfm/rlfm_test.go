package rlfm

import (
	"math/rand"
	"testing"

	"repro/internal/fmindex"
)

func naiveRank(s []byte, c byte, i int) int {
	n := 0
	for j := 0; j < i && j < len(s); j++ {
		if s[j] == c {
			n++
		}
	}
	return n
}

func checkSeq(t *testing.T, s []byte) {
	t.Helper()
	q := New(s)
	if q.Len() != len(s) {
		t.Fatalf("len=%d", q.Len())
	}
	for i := range s {
		if q.Access(i) != s[i] {
			t.Fatalf("access(%d)=%d want %d", i, q.Access(i), s[i])
		}
	}
	syms := map[byte]bool{}
	for _, c := range s {
		syms[c] = true
	}
	for c := range syms {
		if q.Count(c) != naiveRank(s, c, len(s)) {
			t.Fatalf("count(%d)", c)
		}
		for i := 0; i <= len(s); i++ {
			if got := q.Rank(c, i); got != naiveRank(s, c, i) {
				t.Fatalf("rank(%d,%d)=%d want %d (s=%q)", c, i, got, naiveRank(s, c, i), s)
			}
		}
	}
	if q.Rank('\xff', len(s)) != naiveRank(s, '\xff', len(s)) {
		t.Fatal("absent symbol rank")
	}
}

func TestRunsBasic(t *testing.T) {
	checkSeq(t, []byte("aaabbbcccaaa"))
	checkSeq(t, []byte("a"))
	checkSeq(t, []byte("ab"))
	checkSeq(t, []byte("aaaa"))
	checkSeq(t, []byte("abcabc"))
}

func TestEmpty(t *testing.T) {
	q := New(nil)
	if q.Len() != 0 || q.Rank('a', 0) != 0 {
		t.Fatal("empty")
	}
}

func TestRandomRuns(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		var s []byte
		for len(s) < 200 {
			c := byte('a' + r.Intn(4))
			rep := 1 + r.Intn(8)
			for k := 0; k < rep; k++ {
				s = append(s, c)
			}
		}
		checkSeq(t, s)
	}
}

func TestRunsCount(t *testing.T) {
	q := New([]byte("aaabbbaaa"))
	if q.Runs() != 3 {
		t.Fatalf("runs=%d", q.Runs())
	}
}

func TestAsFMIndexSequence(t *testing.T) {
	// Swap the RLFM sequence into the FM-index and verify all operations on
	// a repetitive collection, against the default wavelet-backed index.
	motif := "ACGTACGTTGCA"
	var texts [][]byte
	for i := 0; i < 20; i++ {
		texts = append(texts, []byte(motif+motif))
	}
	texts = append(texts, []byte("AAAATTTT"))
	builder := func(bwt []byte) fmindex.RankSequence { return New(bwt) }
	rl, err := fmindex.New(texts, fmindex.Options{SampleRate: 4, Builder: builder})
	if err != nil {
		t.Fatal(err)
	}
	wt, err := fmindex.New(texts, fmindex.Options{SampleRate: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"ACGT", "TT", "GCAACGT", "AAAATTTT", "X", "A"} {
		if a, b := rl.GlobalCount([]byte(p)), wt.GlobalCount([]byte(p)); a != b {
			t.Fatalf("GlobalCount(%q): rlfm=%d wavelet=%d", p, a, b)
		}
		ra, rb := rl.Contains([]byte(p)), wt.Contains([]byte(p))
		if len(ra) != len(rb) {
			t.Fatalf("Contains(%q): %v vs %v", p, ra, rb)
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("Contains(%q) mismatch", p)
			}
		}
	}
	for i := range texts {
		if string(rl.Extract(i)) != string(texts[i]) {
			t.Fatalf("extract %d", i)
		}
	}
	// Repetitive collection: run-length structure must be much smaller than
	// the text.
	seq := New(nil)
	_ = seq
}

func BenchmarkRLFMRank(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	var s []byte
	for len(s) < 1<<20 {
		c := byte('a' + r.Intn(4))
		for k := 0; k < 1+r.Intn(30); k++ {
			s = append(s, c)
		}
	}
	q := New(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Rank(byte('a'+i&3), i&(1<<20-1))
	}
}
