// Package rlfm implements a run-length encoded FM-index rank sequence
// (Mäkinen–Navarro RLFM), the stand-in for the RLCSA the paper plugs in for
// highly repetitive biological collections (Section 6.7). Space is
// proportional to the number of runs of the BWT rather than its length, so
// collections whose exons repeat across many transcripts compress well.
//
// It implements fmindex.RankSequence, so swapping it in requires only a
// different SequenceBuilder — exactly the modularity claim of the paper
// ("only the text index was modified in isolation").
package rlfm

import (
	"repro/internal/bitvec"
	"repro/internal/wavelet"
)

// Sequence is the run-length rank/access structure over a byte string.
type Sequence struct {
	n     int
	heads *wavelet.Tree  // one symbol per run, in BWT order
	b     *bitvec.Vector // marks run starts in the BWT domain
	bc    *bitvec.Vector // run lengths grouped by symbol: 1 0^{len-1} each
	// cRuns[c]  = number of runs of symbols < c
	// cExp[c]   = total expanded length of runs of symbols < c
	cRuns [257]int
	cExp  [257]int
	count [256]int
}

// New builds the structure from the raw sequence (typically a BWT).
func New(s []byte) *Sequence {
	q := &Sequence{n: len(s)}
	// Collect runs.
	type run struct {
		sym byte
		len int
	}
	var runs []run
	for i := 0; i < len(s); {
		j := i + 1
		for j < len(s) && s[j] == s[i] {
			j++
		}
		runs = append(runs, run{sym: s[i], len: j - i})
		q.count[s[i]] += j - i
		i = j
	}
	heads := make([]byte, len(runs))
	b := bitvec.New(len(s))
	pos := 0
	for i, r := range runs {
		heads[i] = r.sym
		b.Set(pos)
		pos += r.len
	}
	b.Build()
	q.heads = wavelet.New(heads)
	q.b = b

	// Group run lengths by symbol.
	var runsPerSym [256]int
	var expPerSym [256]int
	for _, r := range runs {
		runsPerSym[r.sym]++
		expPerSym[r.sym] += r.len
	}
	for c := 0; c < 256; c++ {
		q.cRuns[c+1] = q.cRuns[c] + runsPerSym[c]
		q.cExp[c+1] = q.cExp[c] + expPerSym[c]
	}
	bc := bitvec.New(len(s))
	// For each symbol in order, lay out its runs' lengths as 1 0^{len-1}.
	offset := make([]int, 256)
	for c := 0; c < 256; c++ {
		offset[c] = q.cExp[c]
	}
	for _, r := range runs {
		bc.Set(offset[r.sym])
		offset[r.sym] += r.len
	}
	bc.Build()
	q.bc = bc
	return q
}

// Len returns the sequence length.
func (q *Sequence) Len() int { return q.n }

// Count returns the number of occurrences of c.
func (q *Sequence) Count(c byte) int { return q.count[c] }

// Access returns the symbol at position i.
func (q *Sequence) Access(i int) byte {
	return q.heads.Access(q.b.Rank1(i+1) - 1)
}

// Rank returns the number of occurrences of c in [0, i).
func (q *Sequence) Rank(c byte, i int) int {
	if i <= 0 || q.count[c] == 0 {
		return 0
	}
	if i > q.n {
		i = q.n
	}
	// k: index of the run containing position i-1.
	k := q.b.Rank1(i) - 1
	// r: number of c-runs among runs [0, k].
	r := q.heads.Rank(c, k+1)
	if r == 0 {
		return 0
	}
	if q.heads.Access(k) == c {
		// Partial last run: expanded length of the first r-1 c-runs, plus
		// the offset of i within the current run.
		full := q.expandedLen(c, r-1)
		runStart := q.b.Select1(k)
		return full + (i - runStart)
	}
	return q.expandedLen(c, r)
}

// expandedLen returns the total length of the first j runs of symbol c.
func (q *Sequence) expandedLen(c byte, j int) int {
	if j == 0 {
		return 0
	}
	totalRuns := q.cRuns[int(c)+1] - q.cRuns[c]
	if j >= totalRuns {
		return q.cExp[int(c)+1] - q.cExp[c]
	}
	// Start bit of the (j+1)-th run of c in bc, minus c's section start.
	return q.bc.Select1(q.cRuns[c]+j) - q.cExp[c]
}

// Runs returns the number of BWT runs (the compressibility measure).
func (q *Sequence) Runs() int { return q.heads.Len() }

// SizeInBytes reports the memory footprint of the structure.
func (q *Sequence) SizeInBytes() int {
	return q.heads.SizeInBytes() + q.b.SizeInBytes() + q.bc.SizeInBytes() + 257*16 + 256*8
}
