package wavelet

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/persist"
)

func roundTrip(t *testing.T, s []byte) *Tree {
	t.Helper()
	w := New(s)
	var buf bytes.Buffer
	if err := w.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != w.Len() {
		t.Fatalf("len %d != %d", got.Len(), w.Len())
	}
	for i := range s {
		if got.Access(i) != s[i] {
			t.Fatalf("Access(%d)=%q want %q", i, got.Access(i), s[i])
		}
	}
	for c := 0; c < 256; c++ {
		if got.Count(byte(c)) != w.Count(byte(c)) {
			t.Fatalf("Count(%d)", c)
		}
	}
	return got
}

func TestTreeSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	seqs := [][]byte{
		nil,
		[]byte("aaaaaaa"), // single symbol: leaf root, no bitmaps
		[]byte("abracadabra"),
		make([]byte, 4096),
	}
	for i := range seqs[3] {
		seqs[3][i] = byte(rng.Intn(200))
	}
	for _, s := range seqs {
		got := roundTrip(t, s)
		// Rank/Select must agree with a fresh tree at probe points.
		fresh := New(s)
		for c := 0; c < 256; c += 13 {
			for i := 0; i <= len(s); i += 1 + len(s)/61 {
				if got.Rank(byte(c), i) != fresh.Rank(byte(c), i) {
					t.Fatalf("Rank(%d,%d)", c, i)
				}
			}
			for j := 0; j < fresh.Count(byte(c)); j += 1 + fresh.Count(byte(c))/17 {
				if got.Select(byte(c), j) != fresh.Select(byte(c), j) {
					t.Fatalf("Select(%d,%d)", c, j)
				}
			}
		}
	}
}

func TestTreeLoadCorrupt(t *testing.T) {
	w := New([]byte("mississippi river runs"))
	var buf bytes.Buffer
	w.Save(&buf)
	data := buf.Bytes()
	for cut := 0; cut < len(data); cut++ {
		if _, err := Load(bytes.NewReader(data[:cut])); !errors.Is(err, persist.ErrCorrupt) {
			t.Fatalf("cut=%d err=%v", cut, err)
		}
	}
	// Counts not summing to the length.
	bad := append([]byte(nil), data...)
	bad[1] = byte(len("mississippi river runs") + 1)
	if _, err := Load(bytes.NewReader(bad)); !errors.Is(err, persist.ErrCorrupt) {
		t.Fatalf("bad total: %v", err)
	}
}
