// Package wavelet implements a Huffman-shaped wavelet tree over a byte
// alphabet, the sequence representation the paper uses for the BWT string
// (Section 3.1): access, rank and select in O(H0) average time, with
// uncompressed bitmaps inside, following Claude and Navarro [SPIRE 2008].
package wavelet

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/bitvec"
)

// Tree is an immutable wavelet tree over a sequence of symbols in [0, 256).
type Tree struct {
	root   *node
	n      int
	counts [256]int // number of occurrences of each symbol
	codes  [256]code
}

type node struct {
	bits        *bitvec.Vector
	left, right *node
	leafSym     int // valid when leaf (left == nil && right == nil)
	isLeaf      bool
}

type code struct {
	bits uint64
	len  uint8
}

// hItem is a Huffman priority-queue entry.
type hItem struct {
	weight      int
	sym         int // leaf symbol, -1 for internal
	left, right int // indices into the builder's node arena, -1 for leaves
	order       int // tie-break for determinism
}

type hHeap []hItem

func (h hHeap) Len() int { return len(h) }
func (h hHeap) Less(i, j int) bool {
	if h[i].weight != h[j].weight {
		return h[i].weight < h[j].weight
	}
	return h[i].order < h[j].order
}
func (h hHeap) Swap(i, j int)  { h[i], h[j] = h[j], h[i] }
func (h *hHeap) Push(x any)    { *h = append(*h, x.(hItem)) }
func (h *hHeap) Pop() any      { old := *h; x := old[len(old)-1]; *h = old[:len(old)-1]; return x }
func (h hHeap) String() string { return fmt.Sprint([]hItem(h)) }

type arenaNode struct {
	sym         int
	left, right int
}

// New builds a wavelet tree from the sequence s.
func New(s []byte) *Tree {
	t := &Tree{n: len(s)}
	for _, c := range s {
		t.counts[c]++
	}
	if t.buildShape() {
		// Build bitmap nodes: one pass over s per level would be ideal; we do
		// a single pass distributing each symbol along its code path using
		// append-only vectors.
		t.fill(s)
		t.freeze(t.root)
	}
	return t
}

// buildShape constructs the Huffman tree shape and the code table from the
// symbol counts alone. The construction is deterministic in the counts
// (symbols enter the heap in increasing order, ties break on insertion
// order), which lets the loader recreate the identical shape without the
// shape ever being stored. It reports whether the tree is non-empty.
func (t *Tree) buildShape() bool {
	// Collect present symbols.
	var syms []int
	for c, cnt := range t.counts {
		if cnt > 0 {
			syms = append(syms, c)
		}
	}
	sort.Ints(syms)
	if len(syms) == 0 {
		return false
	}
	// Build Huffman tree shape over an arena, with explicit arena indices in
	// the heap items.
	arena := make([]arenaNode, 0, 2*len(syms))
	h := &hHeap{}
	for _, c := range syms {
		arena = append(arena, arenaNode{sym: c, left: -1, right: -1})
		heap.Push(h, hItem{weight: t.counts[c], sym: len(arena) - 1, left: -1, right: -1, order: len(arena) - 1})
	}
	order := len(arena)
	for h.Len() > 1 {
		a := heap.Pop(h).(hItem)
		b := heap.Pop(h).(hItem)
		arena = append(arena, arenaNode{sym: -1, left: a.sym, right: b.sym})
		heap.Push(h, hItem{weight: a.weight + b.weight, sym: len(arena) - 1, order: order})
		order++
	}
	rootIdx := heap.Pop(h).(hItem).sym
	t.assignCodes(arena, rootIdx, 0, 0)
	t.root = t.buildNode(arena, rootIdx)
	return true
}

func (t *Tree) assignCodes(arena []arenaNode, idx int, prefix uint64, depth uint8) {
	an := arena[idx]
	if an.left == -1 {
		t.codes[an.sym] = code{bits: prefix, len: depth}
		return
	}
	t.assignCodes(arena, an.left, prefix, depth+1)           // left = 0 bit
	t.assignCodes(arena, an.right, prefix|1<<depth, depth+1) // right = 1 bit
}

func (t *Tree) buildNode(arena []arenaNode, idx int) *node {
	an := arena[idx]
	if an.left == -1 {
		return &node{isLeaf: true, leafSym: an.sym}
	}
	return &node{
		bits:  &bitvec.Vector{},
		left:  t.buildNode(arena, an.left),
		right: t.buildNode(arena, an.right),
	}
}

func (t *Tree) fill(s []byte) {
	for _, c := range s {
		cd := t.codes[c]
		nd := t.root
		for d := uint8(0); d < cd.len; d++ {
			bit := cd.bits>>d&1 == 1
			nd.bits.AppendBit(bit)
			if bit {
				nd = nd.right
			} else {
				nd = nd.left
			}
		}
	}
}

func (t *Tree) freeze(nd *node) {
	if nd == nil || nd.isLeaf {
		return
	}
	nd.bits.Build()
	t.freeze(nd.left)
	t.freeze(nd.right)
}

// Len returns the sequence length.
func (t *Tree) Len() int { return t.n }

// Count returns the number of occurrences of symbol c in the whole sequence.
func (t *Tree) Count(c byte) int { return t.counts[c] }

// Access returns the symbol at position i.
func (t *Tree) Access(i int) byte {
	nd := t.root
	for !nd.isLeaf {
		if nd.bits.Get(i) {
			i = nd.bits.Rank1(i)
			nd = nd.right
		} else {
			i = nd.bits.Rank0(i)
			nd = nd.left
		}
	}
	return byte(nd.leafSym)
}

// Rank returns the number of occurrences of c in s[0:i].
func (t *Tree) Rank(c byte, i int) int {
	if t.counts[c] == 0 || i <= 0 {
		return 0
	}
	if i > t.n {
		i = t.n
	}
	cd := t.codes[c]
	nd := t.root
	for d := uint8(0); d < cd.len; d++ {
		if cd.bits>>d&1 == 1 {
			i = nd.bits.Rank1(i)
			nd = nd.right
		} else {
			i = nd.bits.Rank0(i)
			nd = nd.left
		}
		if i == 0 {
			return 0
		}
	}
	return i
}

// Select returns the position of the (j+1)-th occurrence of c (0-based j),
// or -1 if there are fewer.
func (t *Tree) Select(c byte, j int) int {
	if j < 0 || j >= t.counts[c] {
		return -1
	}
	cd := t.codes[c]
	// Walk down to the leaf collecting the path, then walk back up.
	path := make([]*node, 0, cd.len)
	nd := t.root
	for d := uint8(0); d < cd.len; d++ {
		path = append(path, nd)
		if cd.bits>>d&1 == 1 {
			nd = nd.right
		} else {
			nd = nd.left
		}
	}
	for d := int(cd.len) - 1; d >= 0; d-- {
		nd = path[d]
		if cd.bits>>uint(d)&1 == 1 {
			j = nd.bits.Select1(j)
		} else {
			j = nd.bits.Select0(j)
		}
		if j < 0 {
			return -1
		}
	}
	return j
}

// SizeInBytes reports the memory footprint of the structure.
func (t *Tree) SizeInBytes() int {
	sz := 256*8 + 256*16
	var walk func(nd *node)
	walk = func(nd *node) {
		if nd == nil {
			return
		}
		sz += 48
		if nd.bits != nil {
			sz += nd.bits.SizeInBytes()
		}
		walk(nd.left)
		walk(nd.right)
	}
	walk(t.root)
	return sz
}
