package wavelet

import (
	"math/rand"
	"testing"
)

func naiveRank(s []byte, c byte, i int) int {
	n := 0
	for j := 0; j < i && j < len(s); j++ {
		if s[j] == c {
			n++
		}
	}
	return n
}

func naiveSelect(s []byte, c byte, j int) int {
	for i, x := range s {
		if x == c {
			if j == 0 {
				return i
			}
			j--
		}
	}
	return -1
}

func checkAll(t *testing.T, s []byte) {
	t.Helper()
	w := New(s)
	if w.Len() != len(s) {
		t.Fatalf("len=%d want %d", w.Len(), len(s))
	}
	present := map[byte]bool{}
	for i, c := range s {
		present[c] = true
		if got := w.Access(i); got != c {
			t.Fatalf("access(%d)=%d want %d", i, got, c)
		}
	}
	for c := range present {
		if w.Count(c) != naiveRank(s, c, len(s)) {
			t.Fatalf("count(%d) wrong", c)
		}
		step := 1
		if len(s) > 500 {
			step = len(s) / 200
		}
		for i := 0; i <= len(s); i += step {
			if got := w.Rank(c, i); got != naiveRank(s, c, i) {
				t.Fatalf("rank(%d,%d)=%d want %d", c, i, got, naiveRank(s, c, i))
			}
		}
		for j := 0; j < w.Count(c); j++ {
			if got := w.Select(c, j); got != naiveSelect(s, c, j) {
				t.Fatalf("select(%d,%d)=%d want %d", c, j, got, naiveSelect(s, c, j))
			}
		}
		if w.Select(c, w.Count(c)) != -1 {
			t.Fatal("select out of range must be -1")
		}
	}
	// Absent symbol.
	if w.Rank('\xfe', len(s)) != naiveRank(s, '\xfe', len(s)) {
		t.Fatal("rank of absent symbol")
	}
}

func TestWaveletSmall(t *testing.T) {
	checkAll(t, []byte("abracadabra"))
	checkAll(t, []byte("mississippi$"))
	checkAll(t, []byte("discontinued$"))
}

func TestWaveletSingleSymbol(t *testing.T) {
	checkAll(t, []byte("aaaaaaaa"))
	checkAll(t, []byte("a"))
}

func TestWaveletEmpty(t *testing.T) {
	w := New(nil)
	if w.Len() != 0 {
		t.Fatal("empty len")
	}
	if w.Rank('a', 0) != 0 || w.Select('a', 0) != -1 {
		t.Fatal("empty ops")
	}
}

func TestWaveletTwoSymbols(t *testing.T) {
	checkAll(t, []byte("ababababbbaa"))
}

func TestWaveletRandomByte(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, n := range []int{10, 100, 1000, 5000} {
		for _, sigma := range []int{2, 4, 26, 200} {
			s := make([]byte, n)
			for i := range s {
				s[i] = byte(r.Intn(sigma))
			}
			checkAll(t, s)
		}
	}
}

func TestWaveletSkewedDistribution(t *testing.T) {
	// Huffman shape should handle very skewed distributions: one dominant
	// symbol plus rare ones.
	r := rand.New(rand.NewSource(9))
	s := make([]byte, 4000)
	for i := range s {
		if r.Intn(100) == 0 {
			s[i] = byte(1 + r.Intn(30))
		} else {
			s[i] = 0
		}
	}
	checkAll(t, s)
}

func TestWaveletFullAlphabet(t *testing.T) {
	s := make([]byte, 512)
	for i := range s {
		s[i] = byte(i % 256)
	}
	checkAll(t, s)
}

func BenchmarkWaveletRank(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	s := make([]byte, 1<<20)
	for i := range s {
		s[i] = byte(r.Intn(64))
	}
	w := New(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Rank(byte(i&63), i&(1<<20-1))
	}
}

func BenchmarkWaveletAccess(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	s := make([]byte, 1<<20)
	for i := range s {
		s[i] = byte(r.Intn(64))
	}
	w := New(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Access(i & (1<<20 - 1))
	}
}
