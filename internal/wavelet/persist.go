package wavelet

import (
	"io"

	"repro/internal/bitvec"
	"repro/internal/persist"
)

// On-disk layout: the symbol counts and the per-node bitmaps in preorder.
// The Huffman shape is not stored — buildShape is deterministic in the
// counts, so the loader recreates the identical tree and attaches each
// stored bitmap to its node. Loading therefore skips the bit-by-bit fill
// pass of New, the expensive half of construction.

const treeFormat = 1

// Store serializes the tree into pw.
func (t *Tree) Store(pw *persist.Writer) {
	pw.Byte(treeFormat)
	pw.Int(t.n)
	counts := make([]uint64, 256)
	for c, cnt := range t.counts {
		counts[c] = uint64(cnt)
	}
	pw.Words(counts)
	var walk func(nd *node)
	walk = func(nd *node) {
		if nd == nil || nd.isLeaf {
			return
		}
		nd.bits.Store(pw)
		walk(nd.left)
		walk(nd.right)
	}
	walk(t.root)
}

// Read reads a tree written by Store. On corrupt input it returns nil and
// leaves the error in pr.
func Read(pr persist.Source) *Tree {
	if pr.Check(pr.Byte() == treeFormat, "unknown wavelet tree format") != nil {
		return nil
	}
	t := &Tree{n: pr.Int()}
	counts := pr.Words()
	if pr.Check(len(counts) == 256, "wavelet count table size") != nil {
		return nil
	}
	total := 0
	for c, cnt := range counts {
		if pr.Check(cnt <= uint64(t.n), "wavelet symbol count out of range") != nil {
			return nil
		}
		t.counts[c] = int(cnt)
		total += int(cnt)
	}
	if pr.Check(total == t.n, "wavelet counts do not sum to length") != nil {
		return nil
	}
	if !t.buildShape() {
		return t
	}
	// Attach the stored bitmaps preorder, validating each node's length
	// against the count flow implied by the shape.
	var walk func(nd *node, want int) bool
	walk = func(nd *node, want int) bool {
		if nd.isLeaf {
			return pr.Check(want == t.counts[nd.leafSym], "wavelet leaf count mismatch") == nil
		}
		bits := bitvec.ReadVector(pr)
		if bits == nil {
			return false
		}
		if pr.Check(bits.Len() == want, "wavelet node length mismatch") != nil {
			return false
		}
		nd.bits = bits
		return walk(nd.left, bits.Rank0(want)) && walk(nd.right, bits.Rank1(want))
	}
	if !walk(t.root, t.n) {
		return nil
	}
	return t
}

// Save serializes the tree to w.
func (t *Tree) Save(w io.Writer) error {
	pw := persist.NewWriter(w)
	t.Store(pw)
	return pw.Flush()
}

// Load reads a tree written by Save.
func Load(r io.Reader) (*Tree, error) {
	pr := persist.NewReader(r)
	t := Read(pr)
	if pr.Err() != nil {
		return nil, pr.Err()
	}
	return t, nil
}
