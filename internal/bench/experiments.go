package bench

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"repro/internal/automata"
	"repro/internal/bp"
	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/fmindex"
	"repro/internal/gen"
	"repro/internal/pssm"
	"repro/internal/stream"
	"repro/internal/tags"
	"repro/internal/wordindex"
	"repro/internal/xmlparse"
	"repro/internal/xpath"
)

// Scale multiplies the base corpus sizes; 1.0 is the quick laptop setting.
type Scale float64

func (s Scale) bytes(base int) int { return int(float64(base) * float64(s)) }

// Fig8 reproduces Figure 8: index construction time and memory, loading
// time, index size vs document size, over growing XMark documents.
func Fig8(w io.Writer, scale Scale) {
	fmt.Fprintln(w, "== Figure 8: indexing of XMark documents ==")
	t := NewTable(w, "doc size", "construct", "load", "tree+fm size", "ratio", "nodes")
	for _, base := range []int{1 << 20, 2 << 20, 3 << 20, 4 << 20, 5 << 20} {
		data := gen.XMark(uint64(base), scale.bytes(base))
		var eng *core.Engine
		build := MeasureOnce(func() {
			eng, _ = core.Build(data, core.Config{})
		})
		var buf bytes.Buffer
		if _, err := eng.Save(&buf); err != nil {
			panic(err)
		}
		var load time.Duration
		load = MeasureOnce(func() {
			if _, err := core.Load(bytes.NewReader(buf.Bytes()), core.Config{}); err != nil {
				panic(err)
			}
		})
		st := eng.Stats()
		idxSize := st.TreeBytes + st.TextBytes
		t.Row(FormatBytes(len(data)), build, load, FormatBytes(idxSize),
			float64(idxSize)/float64(len(data)), st.Nodes)
	}
	t.Flush()
}

// Table23 reproduces Tables II and III: FM-index search times for patterns
// of increasing frequency, at two sampling rates, against a naive scan.
func Table23(w io.Writer, scale Scale, sampleRate int) {
	fmt.Fprintf(w, "== Table %s: FM-index search times, sampling l=%d ==\n",
		map[int]string{64: "II", 4: "III"}[sampleRate], sampleRate)
	data := gen.Medline(101, scale.bytes(4<<20))
	eng, err := core.Build(data, core.Config{SampleRate: sampleRate})
	if err != nil {
		panic(err)
	}
	fm := eng.Doc.FM
	plain := eng.Doc.Plain.All()

	t := NewTable(w, "pattern", "global#", "global t", "contains#", "contains t", "report t", "naive t")
	for _, p := range Table2Patterns {
		pb := []byte(p)
		var g int
		gt := Measure(func() { g = fm.GlobalCount(pb) })
		var ids []int
		ct := Measure(func() { ids = fm.Contains(pb) })
		var occs []fmindex.Occurrence
		rt := Measure(func() { occs = fm.Locate(pb) })
		_ = occs
		var nn int
		nt := Measure(func() {
			nn = 0
			for _, tx := range plain {
				if bytes.Contains(tx, pb) {
					nn++
				}
			}
		})
		if nn != len(ids) {
			panic(fmt.Sprintf("fm/naive disagree for %q: %d vs %d", p, len(ids), nn))
		}
		t.Row(fmt.Sprintf("%q", p), g, gt, len(ids), ct, rt, nt)
	}
	t.Flush()
}

// Table4 reproduces Table IV: construction times of the pointer tree versus
// the succinct components (parentheses, tags, tag-tables), plus parse time.
func Table4(w io.Writer, scale Scale) {
	fmt.Fprintln(w, "== Table IV: construction times, pointer vs SXSI tree store ==")
	docs := []struct {
		name string
		data []byte
	}{
		{"XMark-1", gen.XMark(1, scale.bytes(2<<20))},
		{"XMark-2", gen.XMark(2, scale.bytes(4<<20))},
		{"XMark-3", gen.XMark(3, scale.bytes(6<<20))},
		{"Treebank", gen.Treebank(4, scale.bytes(2<<20))},
		{"Medline", gen.Medline(5, scale.bytes(3<<20))},
	}
	t := NewTable(w, "file", "parse", "pointers", "parentheses", "tags", "tag-tabs")
	for _, d := range docs {
		parse := MeasureOnce(func() { _ = xmlparse.Parse(d.data, nop{}) })
		ptr := MeasureOnce(func() { _, _ = dom.Parse(d.data) })
		eng, err := core.Build(d.data, core.Config{SkipFM: true})
		if err != nil {
			panic(err)
		}
		// Re-time the succinct components from the built model's raw data.
		parens := make([]bool, eng.Doc.Par.Len())
		ids := make([]int32, eng.Doc.Tag.Len())
		for i := range parens {
			parens[i] = eng.Doc.Par.IsOpen(i)
			ids[i] = eng.Doc.Tag.Access(i)
		}
		pt := MeasureOnce(func() { bp.NewFromBools(parens) })
		tt := MeasureOnce(func() { tags.Build(ids, 2*eng.Doc.NumTags()) })
		tabt := MeasureOnce(func() { eng.Doc.RebuildTagTables() })
		t.Row(d.name, parse, ptr, pt, tt, tabt)
	}
	t.Flush()
}

type nop struct{}

func (nop) StartElement(string, []xmlparse.Attr) error { return nil }
func (nop) EndElement(string) error                    { return nil }
func (nop) Text([]byte) error                          { return nil }

// Table5 reproduces Table V: full recursive traversal of all nodes, pointer
// tree vs SXSI, and element-node recursion vs the //* automaton in counting
// mode.
func Table5(w io.Writer, scale Scale) {
	fmt.Fprintln(w, "== Table V: traversal times ==")
	docs := []struct {
		name string
		data []byte
	}{
		{"XMark-1", gen.XMark(1, scale.bytes(2<<20))},
		{"XMark-2", gen.XMark(2, scale.bytes(4<<20))},
		{"Treebank", gen.Treebank(4, scale.bytes(2<<20))},
		{"Medline", gen.Medline(5, scale.bytes(3<<20))},
	}
	t := NewTable(w, "file", "#nodes", "pointer", "SXSI", "elem rec.", "//* (count)")
	for _, d := range docs {
		tree, _ := dom.Parse(d.data)
		eng, _ := core.Build(d.data, core.Config{SkipFM: true})
		n := 0
		ptrT := Measure(func() {
			n = 0
			var walk func(*dom.Node)
			walk = func(x *dom.Node) {
				n++
				for c := x.FirstChild; c != nil; c = c.NextSibling {
					walk(c)
				}
			}
			walk(tree.Root)
		})
		doc := eng.Doc
		m := 0
		sxsiT := Measure(func() {
			m = 0
			var walk func(int)
			walk = func(x int) {
				m++
				for c := doc.FirstChild(x); c != -1; c = doc.NextSibling(c) {
					walk(c)
				}
			}
			walk(doc.Root())
		})
		if n != m {
			panic("traversal count mismatch")
		}
		// Element-only recursion (skipping #/@/% nodes).
		elems := 0
		elemT := Measure(func() {
			elems = 0
			tt, at, vt, rt := doc.TextTag(), doc.AttrsTag(), doc.AttrValTag(), doc.RootTag()
			var walk func(int)
			walk = func(x int) {
				tg := doc.TagOf(x)
				if tg != tt && tg != at && tg != vt && tg != rt {
					elems++
				}
				for c := doc.FirstChild(x); c != -1; c = doc.NextSibling(c) {
					walk(c)
				}
			}
			walk(doc.Root())
		})
		q, _ := eng.Compile("//*")
		var cnt int64
		starT := Measure(func() { cnt = q.Count() })
		if cnt != int64(elems) {
			panic(fmt.Sprintf("//* count %d != recursion %d", cnt, elems))
		}
		t.Row(d.name, n, ptrT, sxsiT, elemT, starT)
	}
	t.Flush()
}

// Table6 reproduces Table VI: tagged traversals over XMark — a direct
// TaggedDesc/TaggedFoll jump loop, the //tag automaton in counting mode,
// and in materialization mode.
func Table6(w io.Writer, scale Scale) {
	fmt.Fprintln(w, "== Table VI: tagged traversals over XMark ==")
	data := gen.XMark(1, scale.bytes(4<<20))
	eng, _ := core.Build(data, core.Config{SkipFM: true})
	doc := eng.Doc
	t := NewTable(w, "tag", "#nodes", "jump(Go)", "//tag (count)", "//tag (mat)")
	for _, tag := range []string{"incategory", "price", "listitem", "keyword"} {
		id := doc.TagID(tag)
		if id < 0 {
			continue
		}
		n := 0
		jumpT := Measure(func() {
			// Raw preorder iteration over all occurrences via the tag row
			// (select), the Go analogue of the paper's C++ jump loop; note
			// that TaggedFoll alone would skip occurrences nested below a
			// recursive tag such as listitem (cf. Section 6.4).
			n = 0
			for p := doc.Tag.NextOccurrence(2*id, 0); p != -1; p = doc.Tag.NextOccurrence(2*id, p+1) {
				n++
			}
		})
		q, _ := eng.Compile("//" + tag)
		var c int64
		countT := Measure(func() { c = q.Count() })
		var nodes []int
		matT := Measure(func() { nodes = q.Nodes() })
		if int(c) != n || len(nodes) != n {
			panic(fmt.Sprintf("tag %s: jump=%d count=%d mat=%d", tag, n, c, len(nodes)))
		}
		t.Row(tag, n, jumpT, countT, matT)
	}
	t.Flush()
}

// Fig10 reproduces Figure 10: X01-X17 in counting, materialization and
// materialization+serialization modes, SXSI vs the pointer-DOM baseline
// (and the streaming baseline where it applies).
func Fig10(w io.Writer, scale Scale) {
	for _, size := range []int{scale.bytes(2 << 20), scale.bytes(8 << 20)} {
		fmt.Fprintf(w, "== Figure 10: XMark queries, %s ==\n", FormatBytes(size))
		data := gen.XMark(1, size)
		eng, _ := core.Build(data, core.Config{})
		tree, _ := dom.Parse(data)
		t := NewTable(w, "query", "#res", "count", "mat", "mat+ser", "DOM", "DOM ser", "stream")
		for _, q := range XMarkQueries {
			cq, err := eng.Compile(q.Query)
			if err != nil {
				panic(q.ID + ": " + err.Error())
			}
			var n int64
			countT := Measure(func() { n = cq.Count() })
			var nodes []int
			matT := Measure(func() { nodes = cq.Nodes() })
			serT := Measure(func() { _, _ = cq.Serialize(io.Discard) })
			var dn []*dom.Node
			domT := Measure(func() { dn, _ = tree.Eval(q.Query) })
			domSerT := Measure(func() {
				var buf bytes.Buffer
				for _, x := range dn {
					x.Serialize(&buf)
				}
			})
			if len(dn) != len(nodes) || n != int64(len(nodes)) {
				panic(fmt.Sprintf("%s: sxsi=%d mat=%d dom=%d", q.ID, n, len(nodes), len(dn)))
			}
			streamCol := "-"
			if sq, err := stream.Compile(q.Query); err == nil {
				st := Measure(func() { _, _ = sq.Count(data) })
				streamCol = FormatDuration(st)
			}
			t.Row(q.ID, n, countT, matT, serT, domT, domSerT, streamCol)
		}
		t.Flush()
	}
}

// Fig11 reproduces Figure 11: Treebank queries T01-T05.
func Fig11(w io.Writer, scale Scale) {
	fmt.Fprintln(w, "== Figure 11: Treebank queries ==")
	data := gen.Treebank(4, scale.bytes(3<<20))
	eng, _ := core.Build(data, core.Config{})
	tree, _ := dom.Parse(data)
	t := NewTable(w, "query", "#res", "count", "mat", "mat+ser", "DOM")
	for _, q := range TreebankQueries {
		cq, err := eng.Compile(q.Query)
		if err != nil {
			panic(q.ID + ": " + err.Error())
		}
		var n int64
		countT := Measure(func() { n = cq.Count() })
		matT := Measure(func() { cq.Nodes() })
		serT := Measure(func() { _, _ = cq.Serialize(io.Discard) })
		var dn []*dom.Node
		domT := Measure(func() { dn, _ = tree.Eval(q.Query) })
		if int64(len(dn)) != n {
			panic(fmt.Sprintf("%s: sxsi=%d dom=%d", q.ID, n, len(dn)))
		}
		t.Row(q.ID, n, countT, matT, serT, domT)
	}
	t.Flush()
}

// Fig12 reproduces Figure 12: the optimization ablation — naive execution,
// jumping only, memoization only, and everything enabled — over X01-X17 in
// counting mode.
func Fig12(w io.Writer, scale Scale) {
	fmt.Fprintln(w, "== Figure 12: impact of jumping and memoization ==")
	data := gen.XMark(1, scale.bytes(2<<20))
	eng, _ := core.Build(data, core.Config{})
	configs := []struct {
		name string
		opts automata.Options
	}{
		{"naive", automata.Options{NoJump: true, NoMemo: true, NoEarly: true, NoLazy: true}},
		{"jump-only", automata.Options{NoMemo: true, NoEarly: true}},
		{"memo-only", automata.Options{NoJump: true, NoLazy: true}},
		{"all-opts", automata.Options{}},
	}
	t := NewTable(w, "query", "naive", "jump-only", "memo-only", "all-opts", "#res")
	for _, q := range XMarkQueries {
		cols := make([]any, 0, 6)
		cols = append(cols, q.ID)
		var want int64 = -1
		for _, cfg := range configs {
			e2 := eng.WithEval(cfg.opts)
			cq, err := e2.Compile(q.Query)
			if err != nil {
				panic(err)
			}
			var n int64
			d := Measure(func() { n = cq.Count() })
			if want == -1 {
				want = n
			} else if n != want {
				panic(fmt.Sprintf("%s ablation disagrees: %d vs %d (%s)", q.ID, n, want, cfg.name))
			}
			cols = append(cols, d)
		}
		cols = append(cols, want)
		t.Row(cols...)
	}
	t.Flush()
}

// Fig13 reproduces Figure 13: visited vs marked vs result node counts per
// XMark query (the memory-use proxy: visited nodes drive evaluator memory).
func Fig13(w io.Writer, scale Scale) {
	fmt.Fprintln(w, "== Figure 13: visited / marked / result nodes ==")
	data := gen.XMark(1, scale.bytes(2<<20))
	eng, _ := core.Build(data, core.Config{})
	t := NewTable(w, "query", "visited", "marked", "results", "doc elements")
	elemCount, _ := eng.Count("//*")
	for _, q := range XMarkQueries {
		cq, err := eng.Compile(q.Query)
		if err != nil {
			panic(err)
		}
		nodes := cq.Nodes()
		st := cq.Stats()
		t.Row(q.ID, st.Visited, st.Marked, len(nodes), elemCount)
	}
	t.Flush()
}

// Fig15 reproduces Figures 14/15: Medline text queries with the planner's
// strategy choice, versus the DOM baseline.
func Fig15(w io.Writer, scale Scale) {
	fmt.Fprintln(w, "== Figures 14/15: Medline text queries ==")
	data := gen.Medline(101, scale.bytes(6<<20))
	eng, _ := core.Build(data, core.Config{})
	tree, _ := dom.Parse(data)
	t := NewTable(w, "query", "strategy(paper)", "strategy", "#res", "count", "mat+ser", "DOM")
	for _, q := range MedlineQueries {
		cq, err := eng.Compile(q.Query)
		if err != nil {
			panic(q.ID + ": " + err.Error())
		}
		var n int64
		countT := Measure(func() { n = cq.Count() })
		serT := Measure(func() { _, _ = cq.Serialize(io.Discard) })
		var dn []*dom.Node
		domT := Measure(func() { dn, _ = tree.Eval(q.Query) })
		if int64(len(dn)) != n {
			panic(fmt.Sprintf("%s: sxsi=%d dom=%d", q.ID, n, len(dn)))
		}
		t.Row(q.ID, q.PaperStrategy, cq.Strategy(), n, countT, serT, domT)
	}
	t.Flush()
}

// Table7 reproduces Table VII: word-based phrase queries through the
// pluggable word index, compared with the DOM baseline evaluating the same
// phrase semantics naively.
func Table7(w io.Writer, scale Scale) {
	fmt.Fprintln(w, "== Table VII: word-based text queries ==")
	med := gen.Medline(101, scale.bytes(4<<20))
	wiki := gen.Wiki(202, scale.bytes(8<<20))
	t := NewTable(w, "query", "#res", "SXSI(word)", "naive scan")
	for _, q := range WordQueries {
		data := wiki
		if q.Medline {
			data = med
		}
		eng, _ := core.Build(data, core.Config{})
		widx, err := wordindex.New(eng.Doc.Plain.All())
		if err != nil {
			panic(q.ID + ": " + err.Error())
		}
		opts := xpath.Options{CustomMatchSets: map[string]func(string) []int32{
			"wcontains": widx.ContainsPhrase,
		}}
		e2 := eng.WithQueryOptions(opts)
		cq, err := e2.Compile(q.Query)
		if err != nil {
			panic(q.ID + ": " + err.Error())
		}
		var n int64
		wordT := Measure(func() { n = cq.Count() })
		// Naive comparison: tokenize and scan every text per query (what an
		// engine without a word index must do).
		phrase := wordindex.Tokenize([]byte(firstLiteral(q.Query)))
		naiveT := Measure(func() {
			for _, tx := range eng.Doc.Plain.All() {
				words := wordindex.Tokenize(tx)
				for i := 0; i+len(phrase) <= len(words); i++ {
					ok := true
					for k := range phrase {
						if words[i+k] != phrase[k] {
							ok = false
							break
						}
					}
					if ok {
						break
					}
				}
			}
		})
		t.Row(q.ID, n, wordT, naiveT)
	}
	t.Flush()
}

// Fig18 reproduces Figure 18: PSSM queries over the BioXML document with the
// run-length text index, reporting the text-search and automaton split.
func Fig18(w io.Writer, scale Scale) {
	fmt.Fprintln(w, "== Figure 18: PSSM queries over BioXML (run-length index) ==")
	data := gen.BioXML(77, scale.bytes(6<<20))
	eng, err := core.Build(data, core.Config{RunLength: true, SampleRate: 16})
	if err != nil {
		panic(err)
	}
	matrices := map[string]pssm.Matrix{"M1": pssm.M1(), "M2": pssm.M2(), "M3": pssm.M3()}
	thresholds := map[string]float64{"M1": 0.85, "M2": 0.80, "M3": 0.78}
	// The custom predicate runs the branch-and-bound search over the
	// FM-index and returns the matching text ids; memoized per matrix.
	cache := map[string][]int32{}
	var lastTextTime time.Duration
	match := func(lit string) []int32 {
		if ids, ok := cache[lit]; ok {
			return ids
		}
		m := matrices[lit]
		thr := m.MaxScore() * thresholds[lit]
		start := time.Now()
		occs := pssm.Search(eng.Doc.FM, &m, thr)
		lastTextTime = time.Since(start)
		ids := pssm.DistinctTexts(occs)
		cache[lit] = ids
		return ids
	}
	e2 := eng.WithQueryOptions(xpath.Options{CustomMatchSets: map[string]func(string) []int32{"pssm": match}})
	t := NewTable(w, "query", "#res", "text t", "total t", "strategy")
	for _, q := range PSSMQueries {
		cq, err := e2.Compile(q.Query)
		if err != nil {
			panic(q.ID + ": " + err.Error())
		}
		cache = map[string][]int32{}
		var n int64
		total := MeasureOnce(func() { n = cq.Count() })
		t.Row(q.ID+" "+q.Query, n, lastTextTime, total, cq.Strategy())
	}
	t.Flush()
}

// Streaming reproduces the introduction's indexed-vs-streaming comparison:
// SXSI counting vs one-pass streaming for simple paths.
func Streaming(w io.Writer, scale Scale) {
	fmt.Fprintln(w, "== Streaming baseline vs SXSI (introduction) ==")
	data := gen.XMark(1, scale.bytes(4<<20))
	eng, _ := core.Build(data, core.Config{SkipFM: true})
	t := NewTable(w, "query", "#res", "SXSI count", "stream count", "speedup")
	for _, q := range []string{"//keyword", "//listitem//keyword", "/site/regions/*/item", "//incategory/@category"} {
		cq, err := eng.Compile(q)
		if err != nil {
			panic(err)
		}
		var n int64
		sx := Measure(func() { n = cq.Count() })
		sq, err := stream.Compile(q)
		if err != nil {
			panic(err)
		}
		var m int64
		st := Measure(func() { m, _ = sq.Count(data) })
		if n != m {
			panic(fmt.Sprintf("%s: sxsi=%d stream=%d", q, n, m))
		}
		t.Row(q, n, sx, st, float64(st)/float64(sx))
	}
	t.Flush()
}

// firstLiteral extracts the first quoted literal of a query (for the naive
// word-scan comparison of Table VII).
func firstLiteral(q string) string {
	i := -1
	for k := 0; k < len(q); k++ {
		if q[k] == '"' || q[k] == '\'' {
			i = k
			break
		}
	}
	if i < 0 {
		return ""
	}
	quote := q[i]
	j := i + 1
	for j < len(q) && q[j] != quote {
		j++
	}
	return q[i+1 : j]
}
