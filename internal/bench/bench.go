package bench

import (
	"fmt"
	"io"
	"time"
)

// Timing protocol (Section 6.1): each measurement runs the operation once
// to warm caches, then averages `repeats` timed runs.
const repeats = 3

// Measure returns the average duration of f after one warm-up run.
func Measure(f func()) time.Duration {
	f() // warm-up, discarded (the paper discards the first of eleven runs)
	var total time.Duration
	for i := 0; i < repeats; i++ {
		start := time.Now()
		f()
		total += time.Since(start)
	}
	return total / repeats
}

// MeasureOnce times a single execution (for expensive operations like index
// construction).
func MeasureOnce(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// Table is a simple fixed-width table printer for the harness output.
type Table struct {
	w      io.Writer
	widths []int
	rows   [][]string
	header []string
}

// NewTable creates a table with the given header.
func NewTable(w io.Writer, header ...string) *Table {
	t := &Table{w: w, header: header, widths: make([]int, len(header))}
	for i, h := range header {
		t.widths[i] = len(h)
	}
	return t
}

// Row appends a row; values are formatted with %v.
func (t *Table) Row(cols ...any) {
	row := make([]string, len(cols))
	for i, c := range cols {
		switch v := c.(type) {
		case time.Duration:
			row[i] = FormatDuration(v)
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
		if i < len(t.widths) && len(row[i]) > t.widths[i] {
			t.widths[i] = len(row[i])
		}
	}
	t.rows = append(t.rows, row)
}

// Flush prints the table.
func (t *Table) Flush() {
	printRow := func(cols []string) {
		for i, c := range cols {
			if i > 0 {
				fmt.Fprint(t.w, "  ")
			}
			fmt.Fprintf(t.w, "%-*s", t.widths[i], c)
		}
		fmt.Fprintln(t.w)
	}
	printRow(t.header)
	total := 0
	for _, w := range t.widths {
		total += w + 2
	}
	for i := 0; i < total; i++ {
		fmt.Fprint(t.w, "-")
	}
	fmt.Fprintln(t.w)
	for _, r := range t.rows {
		printRow(r)
	}
	fmt.Fprintln(t.w)
}

// FormatDuration renders a duration the way the paper's tables do
// (milliseconds, switching to seconds when large).
func FormatDuration(d time.Duration) string {
	ms := float64(d.Microseconds()) / 1000
	if ms >= 10000 {
		return fmt.Sprintf("%.1fs", ms/1000)
	}
	if ms < 0.1 {
		return fmt.Sprintf("%.3fms", ms)
	}
	return fmt.Sprintf("%.1fms", ms)
}

// FormatBytes renders a byte count in MB.
func FormatBytes(n int) string {
	return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
}
