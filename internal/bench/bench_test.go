package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// The experiment runners assert internal consistency (SXSI vs DOM vs
// streaming result counts) and panic on divergence, so running them at a
// tiny scale doubles as an end-to-end integration test of the whole stack.

func runQuiet(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("experiment diverged: %v", r)
		}
	}()
	f()
}

func TestExperimentsConsistentAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	s := Scale(0.05)
	runQuiet(t, func() { Table4(&buf, s) })
	runQuiet(t, func() { Table5(&buf, s) })
	runQuiet(t, func() { Table6(&buf, s) })
	runQuiet(t, func() { Fig11(&buf, s) })
	runQuiet(t, func() { Fig12(&buf, s) })
	runQuiet(t, func() { Fig13(&buf, s) })
	runQuiet(t, func() { Fig15(&buf, s) })
	runQuiet(t, func() { Fig18(&buf, s) })
	runQuiet(t, func() { Streaming(&buf, s) })
	out := buf.String()
	for _, want := range []string{"Table IV", "Table V", "Figure 12", "Figure 18"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing section %q", want)
		}
	}
}

func TestTablePrinter(t *testing.T) {
	var buf bytes.Buffer
	tb := NewTable(&buf, "a", "bb")
	tb.Row(1, 250*time.Millisecond)
	tb.Row("xyz", 3.5)
	tb.Flush()
	out := buf.String()
	if !strings.Contains(out, "250.0ms") || !strings.Contains(out, "xyz") {
		t.Fatalf("table output:\n%s", out)
	}
}

func TestFormatters(t *testing.T) {
	if FormatDuration(50*time.Microsecond) != "0.050ms" {
		t.Fatal(FormatDuration(50 * time.Microsecond))
	}
	if FormatDuration(15*time.Second) != "15.0s" {
		t.Fatal(FormatDuration(15 * time.Second))
	}
	if FormatBytes(1<<20) != "1.0MB" {
		t.Fatal(FormatBytes(1 << 20))
	}
}

func TestFirstLiteral(t *testing.T) {
	if firstLiteral(`//a[wcontains(., "x y")]`) != "x y" {
		t.Fatal("double quote")
	}
	if firstLiteral(`//a[f(., 'z')]`) != "z" {
		t.Fatal("single quote")
	}
	if firstLiteral(`//a`) != "" {
		t.Fatal("no literal")
	}
}

func TestQuerySuitesWellFormed(t *testing.T) {
	if len(XMarkQueries) != 17 || len(TreebankQueries) != 5 || len(MedlineQueries) != 11 || len(WordQueries) != 10 || len(PSSMQueries) != 9 {
		t.Fatal("query suite sizes must match the paper")
	}
}
