// Package bench defines the paper's benchmark workloads and the experiment
// runners that regenerate every table and figure of the evaluation
// (Section 6). The cmd/sxsibench binary and the root bench_test.go are thin
// wrappers around this package; EXPERIMENTS.md records the outcomes.
package bench

// XMarkQueries are X01-X17 of Figure 9: XPathMark tree-oriented queries
// over XMark data, plus the crash tests X13-X17.
var XMarkQueries = []struct{ ID, Query string }{
	{"X01", "/site/regions"},
	{"X02", "/site/regions/*/item"},
	{"X03", "/site/closed_auctions/closed_auction/annotation/description/text/keyword"},
	{"X04", "//listitem//keyword"},
	{"X05", "/site/closed_auctions/closed_auction[annotation/description/text/keyword]/date"},
	{"X06", "/site/closed_auctions/closed_auction[.//keyword]/date"},
	{"X07", "/site/people/person[profile/gender and profile/age]/name"},
	{"X08", "/site/people/person[phone or homepage]/name"},
	{"X09", "/site/people/person[address and (phone or homepage) and (creditcard or profile)]/name"},
	{"X10", "//listitem[not(.//keyword/emph)]//parlist"},
	{"X11", "//listitem[(.//keyword or .//emph) and (.//emph or .//bold)]/parlist"},
	{"X12", "//people[.//person[not(address)] and .//person[not(watches)]]/person[watches]"},
	{"X13", "/*[.//*]"},
	{"X14", "//*"},
	{"X15", "//*//*"},
	{"X16", "//*//*//*"},
	{"X17", "//*//*//*//*"},
}

// TreebankQueries are T01-T05 of Figure 9.
var TreebankQueries = []struct{ ID, Query string }{
	{"T01", "//NP"},
	{"T02", "//S[.//VP and .//NP]/VP/PP[IN]/NP/VBN"},
	{"T03", "//NP[.//JJ or .//CC]"},
	{"T04", "//CC[not(.//JJ)]"},
	{"T05", "//NN[.//VBZ or .//IN]/*[.//NN or .//_QUOTE_]"},
}

// MedlineQueries are M01-M11 of Figure 14, with the evaluation strategy the
// paper reports (arrow: bottom-up/top-down; index: fm/naive).
var MedlineQueries = []struct {
	ID, Query string
	// PaperStrategy is Figure 14's annotation: "down,fm", "up,fm", "down,naive".
	PaperStrategy string
}{
	{"M01", `//Article[.//AbstractText[contains(., "foot") or contains(., "feet")]]`, "down,fm"},
	{"M02", `//Article[.//AbstractText[contains(., "plus")]]`, "up,fm"},
	{"M03", `//Article[.//AbstractText[contains(., "plus") or contains(., "for")]]`, "down,fm"},
	{"M04", `//Article[.//AbstractText[contains(., "plus") and not(contains(., "for"))]]`, "down,fm"},
	{"M05", `//MedlineCitation/Article/AuthorList/Author[./LastName[starts-with(., "Bar")]]`, "up,fm"},
	{"M06", `//*[.//LastName[contains(., "Nguyen")]]`, "up,fm"},
	{"M07", `//*//AbstractText[contains(., "epididymis")]`, "up,fm"},
	{"M08", `//*[.//PublicationType[ends-with(., "Article")]]`, "up,fm"},
	{"M09", `//MedlineCitation[.//Country[contains(., "AUSTRALIA")]]`, "up,fm"},
	{"M10", `//MedlineCitation[contains(., "blood cell")]`, "down,naive"},
	{"M11", `//*/*[contains(., "1999\n11\n26")]`, "down,naive"},
}

// Table2Patterns are the FM-index probe patterns of Tables II/III, ordered
// by increasing frequency in the Medline-like collection.
var Table2Patterns = []string{
	"Bakst", "ruminants", "morphine", "AUSTRALIA", "molecule",
	"brain", "human", "blood", "from", "with", "in", "a", "\n",
}

// WordQueries are W01-W10 of Figure 16 (word-based index experiments);
// "wcontains" is the word-boundary contains backed by the word index.
var WordQueries = []struct {
	ID, Query string
	Medline   bool // W01-W05 run on Medline, W06-W10 on the wiki document
}{
	{"W01", `//Article[.//AbstractText[wcontains(., "blood sample")]]`, true},
	{"W02", `//Article[.//AbstractText[wcontains(., "is such that")]]`, true},
	{"W03", `//Article[.//AbstractText[wcontains(., "various types of") and wcontains(., "immune cells")]]`, true},
	{"W04", `//Article[.//AbstractText[wcontains(., "of the bone marrow")]]`, true},
	{"W05", `//Article[.//AbstractText[wcontains(., "cell") and not(wcontains(., "blood"))]]`, true},
	{"W06", `//text[wcontains(., "dark horse")]`, false},
	{"W07", `//text[wcontains(., "horse") and wcontains(., "princess")]`, false},
	{"W08", `//page/child::title[wcontains(., "crude oil")]`, false},
	{"W09", `//page[.//text[wcontains(., "played on a board")]]/title`, false},
	{"W10", `//page[.//text[wcontains(., "whether accidentally or purposefully")]]/title`, false},
}

// PSSMQueries are the Figure 18 query shapes; the literal selects the
// matrix (M1/M2/M3), thresholds are fractions of the matrix maximum chosen
// to give selective result sets as in the paper.
var PSSMQueries = []struct{ ID, Query string }{
	{"P1", `//promoter[pssm(., 'M1')]`},
	{"P2", `//promoter[pssm(., 'M2')]`},
	{"P3", `//promoter[pssm(., 'M3')]`},
	{"P4", `//exon[.//sequence[pssm(., 'M1')]]`},
	{"P5", `//exon[.//sequence[pssm(., 'M2')]]`},
	{"P6", `//exon[.//sequence[pssm(., 'M3')]]`},
	{"P7", `//*[pssm(., 'M1')]`},
	{"P8", `//*[pssm(., 'M2')]`},
	{"P9", `//*[pssm(., 'M3')]`},
}
