package bp

import (
	"math/rand"
	"testing"
)

// refTree is a pointer-based oracle built from the same parenthesis string.
type refTree struct {
	parent     []int
	firstChild []int
	nextSib    []int
	prevSib    []int
	open       []int // open position of node k (preorder)
	close      []int
	depth      []int
}

func buildRef(parens []bool) *refTree {
	r := &refTree{}
	var stack []int
	posToNode := map[int]int{}
	for i, b := range parens {
		if b {
			node := len(r.parent)
			posToNode[i] = node
			r.parent = append(r.parent, Nil)
			r.firstChild = append(r.firstChild, Nil)
			r.nextSib = append(r.nextSib, Nil)
			r.prevSib = append(r.prevSib, Nil)
			r.open = append(r.open, i)
			r.close = append(r.close, Nil)
			r.depth = append(r.depth, len(stack)+1)
			if len(stack) > 0 {
				p := stack[len(stack)-1]
				r.parent[node] = p
				if r.firstChild[p] == Nil {
					r.firstChild[p] = node
				} else {
					c := r.firstChild[p]
					for r.nextSib[c] != Nil {
						c = r.nextSib[c]
					}
					r.nextSib[c] = node
					r.prevSib[node] = c
				}
			}
			stack = append(stack, node)
		} else {
			node := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			r.close[node] = i
		}
	}
	return r
}

// randomTreeParens generates a random balanced parenthesis string with one
// root enclosing everything.
func randomTreeParens(r *rand.Rand, n int) []bool {
	// generate by random walk guaranteeing balance, nested under a root
	var out []bool
	out = append(out, true)
	depth := 1
	remaining := 2 * n
	for remaining > 0 {
		canOpen := depth >= 1
		mustClose := remaining <= depth
		if !mustClose && canOpen && r.Intn(2) == 0 {
			out = append(out, true)
			depth++
		} else if depth > 1 {
			out = append(out, false)
			depth--
		} else {
			out = append(out, true)
			depth++
		}
		remaining--
	}
	for depth > 0 {
		out = append(out, false)
		depth--
	}
	return out
}

func checkTree(t *testing.T, parens []bool) {
	t.Helper()
	p := NewFromBools(parens)
	ref := buildRef(parens)
	nNodes := len(ref.parent)
	if p.NumNodes() != nNodes {
		t.Fatalf("numnodes=%d want %d", p.NumNodes(), nNodes)
	}
	for k := 0; k < nNodes; k++ {
		x := ref.open[k]
		if got := p.FindClose(x); got != ref.close[k] {
			t.Fatalf("FindClose(%d)=%d want %d", x, got, ref.close[k])
		}
		if got := p.FindOpen(ref.close[k]); got != x {
			t.Fatalf("FindOpen(%d)=%d want %d", ref.close[k], got, x)
		}
		wantParent := Nil
		if ref.parent[k] != Nil {
			wantParent = ref.open[ref.parent[k]]
		}
		if got := p.Parent(x); got != wantParent {
			t.Fatalf("Parent(%d)=%d want %d", x, got, wantParent)
		}
		wantFC := Nil
		if ref.firstChild[k] != Nil {
			wantFC = ref.open[ref.firstChild[k]]
		}
		if got := p.FirstChild(x); got != wantFC {
			t.Fatalf("FirstChild(%d)=%d want %d", x, got, wantFC)
		}
		wantNS := Nil
		if ref.nextSib[k] != Nil {
			wantNS = ref.open[ref.nextSib[k]]
		}
		if got := p.NextSibling(x); got != wantNS {
			t.Fatalf("NextSibling(%d)=%d want %d", x, got, wantNS)
		}
		wantPS := Nil
		if ref.prevSib[k] != Nil {
			wantPS = ref.open[ref.prevSib[k]]
		}
		if got := p.PrevSibling(x); got != wantPS {
			t.Fatalf("PrevSibling(%d)=%d want %d", x, got, wantPS)
		}
		// LevelAncestor against the parent chain: d=0 is the node itself,
		// d=depth-1 the root, anything beyond falls off the tree. Deep
		// chains are spot-checked to keep the suite linear.
		chain := []int{x}
		for a := ref.parent[k]; a != Nil; a = ref.parent[a] {
			chain = append(chain, ref.open[a])
		}
		depths := []int{0, 1, 2, len(chain) / 2, len(chain) - 1, len(chain), len(chain) + 1}
		if len(chain) <= 32 {
			depths = depths[:0]
			for d := 0; d <= len(chain)+1; d++ {
				depths = append(depths, d)
			}
		}
		for _, d := range depths {
			want := Nil
			if d >= 0 && d < len(chain) {
				want = chain[d]
			}
			if got := p.LevelAncestor(x, d); got != want {
				t.Fatalf("LevelAncestor(%d,%d)=%d want %d", x, d, got, want)
			}
		}
		if got := p.Preorder(x); got != k {
			t.Fatalf("Preorder(%d)=%d want %d", x, got, k)
		}
		if got := p.NodeAtPreorder(k); got != x {
			t.Fatalf("NodeAtPreorder(%d)=%d want %d", k, got, x)
		}
		if got := p.Depth(x); got != ref.depth[k] {
			t.Fatalf("Depth(%d)=%d want %d", x, got, ref.depth[k])
		}
		if p.IsLeaf(x) != (ref.firstChild[k] == Nil) {
			t.Fatalf("IsLeaf(%d)", x)
		}
		wantSize := (ref.close[k] - x + 1) / 2
		if got := p.SubtreeSize(x); got != wantSize {
			t.Fatalf("SubtreeSize(%d)=%d want %d", x, got, wantSize)
		}
	}
	// IsAncestor spot checks.
	r := rand.New(rand.NewSource(123))
	for trial := 0; trial < 200 && nNodes > 1; trial++ {
		a, b := r.Intn(nNodes), r.Intn(nNodes)
		xa, xb := ref.open[a], ref.open[b]
		want := xa <= xb && ref.close[b] <= ref.close[a]
		if got := p.IsAncestor(xa, xb); got != want {
			t.Fatalf("IsAncestor(%d,%d)=%v want %v", xa, xb, got, want)
		}
	}
}

func TestTinyTrees(t *testing.T) {
	checkTree(t, []bool{true, false})                                        // single node
	checkTree(t, []bool{true, true, false, false})                           // chain of 2
	checkTree(t, []bool{true, true, false, true, false, false})              // root with 2 children
	checkTree(t, []bool{true, true, true, false, false, true, false, false}) // mixed
}

func TestPaperExampleTree(t *testing.T) {
	// The tree of Figure 1: ( ( ( ( ( ( ) ) ) ( ) ( ( ) ) ( ( ) ) ) ( ( ( ( ) ) ) ( ( ) ) ) ) )
	// 17 nodes: & P p @ n % # c # s # p @ n % s #
	s := "(((((())))()(())(()))((((())))(())))"
	parens := make([]bool, len(s))
	for i := range s {
		parens[i] = s[i] == '('
	}
	// sanity: balanced?
	d := 0
	for _, b := range parens {
		if b {
			d++
		} else {
			d--
		}
		if d < 0 {
			t.Fatal("test string unbalanced")
		}
	}
	if d != 0 {
		t.Fatal("test string unbalanced at end")
	}
	checkTree(t, parens)
}

func TestDeepChain(t *testing.T) {
	// A 3000-deep chain exercises cross-block searches.
	n := 3000
	parens := make([]bool, 2*n)
	for i := 0; i < n; i++ {
		parens[i] = true
	}
	checkTree(t, parens)
}

func TestWideStar(t *testing.T) {
	// Root with 5000 leaf children.
	var parens []bool
	parens = append(parens, true)
	for i := 0; i < 5000; i++ {
		parens = append(parens, true, false)
	}
	parens = append(parens, false)
	checkTree(t, parens)
}

func TestRandomTrees(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 15; trial++ {
		n := 1 + r.Intn(2000)
		checkTree(t, randomTreeParens(r, n))
	}
}

func TestEmpty(t *testing.T) {
	p := NewFromBools(nil)
	if p.Root() != Nil {
		t.Fatal("empty root")
	}
}

func BenchmarkFindClose(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	parens := randomTreeParens(r, 1<<18)
	p := NewFromBools(parens)
	var opens []int
	for i, x := range parens {
		if x {
			opens = append(opens, i)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.FindClose(opens[i%len(opens)])
	}
}

func BenchmarkParent(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	parens := randomTreeParens(r, 1<<18)
	p := NewFromBools(parens)
	var opens []int
	for i, x := range parens {
		if x {
			opens = append(opens, i)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Parent(opens[i%len(opens)])
	}
}
