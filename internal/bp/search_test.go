package bp

import (
	"math"
	"math/rand"
	"testing"
)

// --- naive references ---

// excessPrefix returns exc with exc[j+1] == Excess(j), exc[0] == 0, so the
// naive searches run in linear time per call.
func excessPrefix(parens []bool) []int {
	exc := make([]int, len(parens)+1)
	for j, b := range parens {
		if b {
			exc[j+1] = exc[j] + 1
		} else {
			exc[j+1] = exc[j] - 1
		}
	}
	return exc
}

// naiveFwdSearch is the contract of fwdSearch: smallest j > i with
// Excess(j) == target, or Nil.
func naiveFwdSearch(exc []int, i, target int) int {
	for j := i + 1; j < len(exc)-1; j++ {
		if exc[j+1] == target {
			return j
		}
	}
	return Nil
}

// naiveBwdSearch is the contract of bwdSearch: largest j < i with
// Excess(j) == target (j == -1 counts, with Excess(-1) == 0), or -2.
func naiveBwdSearch(exc []int, i, target int) int {
	if i > len(exc)-1 {
		i = len(exc) - 1
	}
	for j := i - 1; j >= -1; j-- {
		if exc[j+1] == target {
			return j
		}
	}
	return -2
}

// --- adversarial shapes ---

// deepChainParens is n opens followed by n closes: excess is strictly
// monotone on each half, the worst case for value-based block skipping.
func deepChainParens(n int) []bool {
	parens := make([]bool, 2*n)
	for i := 0; i < n; i++ {
		parens[i] = true
	}
	return parens
}

// wideFlatParens is a root with n leaf children: excess oscillates between 1
// and 2 for the whole document, so no interior block ever covers 0.
func wideFlatParens(n int) []bool {
	parens := make([]bool, 0, 2*n+2)
	parens = append(parens, true)
	for i := 0; i < n; i++ {
		parens = append(parens, true, false)
	}
	return append(parens, false)
}

// alternatingParens nests chains of depth d side by side under one root.
func alternatingParens(groups, d int) []bool {
	parens := []bool{true}
	for g := 0; g < groups; g++ {
		for i := 0; i < d; i++ {
			parens = append(parens, true)
		}
		for i := 0; i < d; i++ {
			parens = append(parens, false)
		}
	}
	return append(parens, false)
}

// searchShapes returns the named test documents, sized to span many rmM
// blocks plus one single-block document.
func searchShapes() map[string][]bool {
	return map[string][]bool{
		"single-block": wideFlatParens(100), // 202 parens: nBlocks == 1
		"deep-chain":   deepChainParens(3000),
		"wide-flat":    wideFlatParens(3000),
		"alternating":  alternatingParens(40, 60),
	}
}

// TestSearchAgainstNaive cross-checks fwdSearch and bwdSearch against the
// linear-scan references on random positions and excess targets, over random
// trees and the adversarial shapes.
func TestSearchAgainstNaive(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	shapes := searchShapes()
	for trial := 0; trial < 6; trial++ {
		shapes["random"] = randomTreeParens(r, 200+r.Intn(1500))
		for name, parens := range shapes {
			p := NewFromBools(parens)
			exc := excessPrefix(parens)
			n := len(parens)
			positions := []int{0, 1, n / 2, n - 2, n - 1}
			for k := 0; k < 40; k++ {
				positions = append(positions, r.Intn(n))
			}
			for _, i := range positions {
				e := p.Excess(i)
				for _, target := range []int{e, e - 1, e + 1, e - 2, 0, 1, e - r.Intn(5), e + r.Intn(5)} {
					if got, want := p.fwdSearch(i, target), naiveFwdSearch(exc, i, target); got != want {
						t.Fatalf("%s: fwdSearch(%d,%d)=%d want %d", name, i, target, got, want)
					}
					if got, want := p.bwdSearch(i, target), naiveBwdSearch(exc, i, target); got != want {
						t.Fatalf("%s: bwdSearch(%d,%d)=%d want %d", name, i, target, got, want)
					}
				}
			}
		}
	}
}

// TestBwdSearchNeverReturnsArgument is the contract regression: for every
// position i, bwdSearch(i, Excess(i)) must return a strictly smaller
// position (or a no-answer sentinel), never i itself. On a deep chain the
// excess of each open is unique, so the old scanBwd, which checked the start
// position, returned i — masked only by callers pre-decrementing.
func TestBwdSearchNeverReturnsArgument(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	shapes := searchShapes()
	shapes["random"] = randomTreeParens(r, 1000)
	for name, parens := range shapes {
		p := NewFromBools(parens)
		exc := excessPrefix(parens)
		for i := 0; i < len(parens); i++ {
			got := p.bwdSearch(i, p.Excess(i))
			if got >= i {
				t.Fatalf("%s: bwdSearch(%d, Excess(%d)) = %d, not < %d", name, i, i, got, i)
			}
			if want := naiveBwdSearch(exc, i, p.Excess(i)); got != want {
				t.Fatalf("%s: bwdSearch(%d, Excess(%d)) = %d want %d", name, i, i, got, want)
			}
		}
	}
	// The sharpest case: on the opening half of a chain each excess value
	// occurs exactly once, so there is no earlier position to find.
	p := NewFromBools(deepChainParens(2000))
	for _, i := range []int{5, 600, 1999} {
		if got := p.bwdSearch(i, p.Excess(i)); got != -2 {
			t.Fatalf("chain: bwdSearch(%d, Excess(%d)) = %d want -2", i, i, got)
		}
	}
}

// TestSearchVirtualPosition pins the j == -1 family: target 0 is reachable
// at the virtual position -1 exactly when i >= 0, and never below.
func TestSearchVirtualPosition(t *testing.T) {
	p := NewFromBools(deepChainParens(1500)) // excess > 0 at every real position but the last
	n := p.Len()
	if got := p.bwdSearch(n-1, 0); got != -1 {
		t.Fatalf("bwdSearch(n-1, 0) = %d want -1", got)
	}
	if got := p.bwdSearch(0, 0); got != -1 {
		t.Fatalf("bwdSearch(0, 0) = %d want -1", got)
	}
	if got := p.bwdSearch(0, 1); got != -2 {
		t.Fatalf("bwdSearch(0, 1) = %d want -2", got)
	}
	// Excess(n-1) == 0: target 0 at the real position n-1 beats the virtual one.
	if got := p.bwdSearch(n, 0); got != n-1 {
		t.Fatalf("bwdSearch(n, 0) = %d want %d", got, n-1)
	}
}

// TestFwdSearchEdges pins the forward edge family the backward bug belonged
// to: last partial block, a target reachable only at j == n-1, and
// single-block documents.
func TestFwdSearchEdges(t *testing.T) {
	// Deep chain: excess returns to 0 only at the very last position, which
	// sits in a partial final block (6000 % 512 != 0).
	parens := deepChainParens(1500)
	p := NewFromBools(parens)
	n := p.Len()
	if n%blockBits == 0 {
		t.Fatalf("want a partial last block, n=%d", n)
	}
	for _, i := range []int{-1, 0, n / 2, n - 2} {
		if got := p.fwdSearch(i, 0); got != n-1 {
			t.Fatalf("fwdSearch(%d, 0) = %d want %d", i, got, n-1)
		}
	}
	// From the last position there is nothing ahead.
	if got := p.fwdSearch(n-1, 0); got != Nil {
		t.Fatal("fwdSearch past the end must be Nil")
	}
	// Single-block document: all answers come from the first scan.
	small := wideFlatParens(20)
	ps := NewFromBools(small)
	smallExc := excessPrefix(small)
	for i := -1; i < ps.Len(); i++ {
		for _, target := range []int{0, 1, 2, 3} {
			if got, want := ps.fwdSearch(i, target), naiveFwdSearch(smallExc, i, target); got != want {
				t.Fatalf("single-block fwdSearch(%d,%d)=%d want %d", i, target, got, want)
			}
		}
	}
}

// TestBlockWalks exercises nextBlock/prevBlock directly, including the
// single-leaf segment tree (segLeaves == 1), where the old climb loop could
// not reach the root-as-leaf node.
func TestBlockWalks(t *testing.T) {
	// Single block: the root of the segment tree is its only leaf.
	p := NewFromBools(wideFlatParens(50))
	if p.nBlocks != 1 || p.segLeaves != 1 {
		t.Fatalf("want single-leaf tree, got nBlocks=%d segLeaves=%d", p.nBlocks, p.segLeaves)
	}
	if got := p.nextBlock(0, 1, nil); got != 0 {
		t.Fatalf("nextBlock(0,1)=%d want 0", got)
	}
	if got := p.prevBlock(0, 2, nil); got != 0 {
		t.Fatalf("prevBlock(0,2)=%d want 0", got)
	}
	if got := p.nextBlock(0, 99, nil); got != -1 {
		t.Fatalf("nextBlock(0,99)=%d want -1", got)
	}
	if got := p.prevBlock(0, -7, nil); got != -1 {
		t.Fatalf("prevBlock(0,-7)=%d want -1", got)
	}
	// Out-of-range block arguments.
	if p.nextBlock(1, 1, nil) != -1 || p.prevBlock(-1, 1, nil) != -1 {
		t.Fatal("out-of-range block index must be -1")
	}
	// Multi-block: compare both walks against a linear scan of the leaves,
	// from every block and for targets in and out of range.
	p = NewFromBools(deepChainParens(3000))
	for b := 0; b < p.nBlocks; b++ {
		for _, target := range []int32{0, 1, 500, 1499, 3000, 5999, -1, 9999} {
			wantNext := -1
			for blk := b; blk < p.nBlocks; blk++ {
				if p.segMin[p.segLeaves+blk] <= target && target <= p.segMax[p.segLeaves+blk] {
					wantNext = blk
					break
				}
			}
			if got := p.nextBlock(b, target, nil); got != wantNext {
				t.Fatalf("nextBlock(%d,%d)=%d want %d", b, target, got, wantNext)
			}
			wantPrev := -1
			for blk := b; blk >= 0; blk-- {
				if p.segMin[p.segLeaves+blk] <= target && target <= p.segMax[p.segLeaves+blk] {
					wantPrev = blk
					break
				}
			}
			if got := p.prevBlock(b, target, nil); got != wantPrev {
				t.Fatalf("prevBlock(%d,%d)=%d want %d", b, target, got, wantPrev)
			}
		}
	}
}

// TestSearchVisitBounds is the whitebox complexity assertion: on a ~1M-paren
// document every search touches at most two blocks and O(log n) segment-tree
// nodes. The budget is 4*ceil(log2(segLeaves))+4: the climb and the descent
// each test at most two nodes per level.
func TestSearchVisitBounds(t *testing.T) {
	shapes := map[string][]bool{
		"deep-chain":  deepChainParens(1 << 19),
		"wide-flat":   wideFlatParens(1 << 19),
		"alternating": alternatingParens(1<<13, 64),
	}
	r := rand.New(rand.NewSource(11))
	for name, parens := range shapes {
		p := NewFromBools(parens)
		n := p.Len()
		segBudget := 4*int(math.Ceil(math.Log2(float64(p.segLeaves)))) + 4
		check := func(op string, c *navCounter) {
			t.Helper()
			if c.blocks > 2 {
				t.Fatalf("%s: %s scanned %d blocks, budget 2", name, op, c.blocks)
			}
			if c.segNodes > segBudget {
				t.Fatalf("%s: %s visited %d segment nodes, budget %d", name, op, c.segNodes, segBudget)
			}
		}
		positions := []int{0, 1, n / 3, n / 2, n - 2, n - 1}
		for k := 0; k < 50; k++ {
			positions = append(positions, r.Intn(n))
		}
		for _, i := range positions {
			e := p.Excess(i)
			for _, target := range []int{e - 1, e, e + 1, 0, e / 2} {
				var cb navCounter
				p.bwdSearchCounted(i, target, &cb)
				check("bwdSearch", &cb)
				var cf navCounter
				p.fwdSearchCounted(i, target, &cf)
				check("fwdSearch", &cf)
			}
		}
	}
}
