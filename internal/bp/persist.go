package bp

import (
	"io"

	"repro/internal/bits"
	"repro/internal/bitvec"
	"repro/internal/persist"
)

// On-disk layout: only the parenthesis bit vector is stored. The
// range-min-max tree is a linear-time directory over it, so Load rebuilds
// it instead of paying the disk space.

const parensFormat = 1

// Store serializes the parenthesis sequence into pw.
func (p *Parens) Store(pw *persist.Writer) {
	pw.Byte(parensFormat)
	p.bits.Store(pw)
}

// Read reads a parenthesis sequence written by Store and rebuilds the
// range-min-max tree over it. On corrupt input it returns nil and leaves
// the error in pr.
func Read(pr persist.Source) *Parens {
	if pr.Check(pr.Byte() == parensFormat, "unknown parentheses format") != nil {
		return nil
	}
	v := bitvec.ReadVector(pr)
	if pr.Err() != nil {
		return nil
	}
	if pr.Check(v.Len()%2 == 0, "odd parenthesis count") != nil {
		return nil
	}
	// The sequence must be balanced: navigation (and consumers iterating
	// open/close pairs) assume every close matches an earlier open. Walk
	// whole bytes with the prefix-excess tables where possible.
	excess, n := 0, v.Len()
	words := v.Words()
	for i := 0; i < n && excess >= 0; {
		if i%8 == 0 && n-i >= 8 {
			bv := byte(words[i>>6] >> uint(i&63))
			if excess+int(bits.ExcessFwdMin[bv]) < 0 {
				excess = -1
				break
			}
			excess += int(bits.ExcessTotal[bv])
			i += 8
			continue
		}
		if v.Get(i) {
			excess++
		} else {
			excess--
		}
		i++
	}
	if pr.Check(excess == 0, "unbalanced parentheses") != nil {
		return nil
	}
	return New(v)
}

// Save serializes the parenthesis sequence to w.
func (p *Parens) Save(w io.Writer) error {
	pw := persist.NewWriter(w)
	p.Store(pw)
	return pw.Flush()
}

// Load reads a parenthesis sequence written by Save.
func Load(r io.Reader) (*Parens, error) {
	pr := persist.NewReader(r)
	p := Read(pr)
	if pr.Err() != nil {
		return nil, pr.Err()
	}
	return p, nil
}
