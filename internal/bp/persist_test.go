package bp

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/persist"
)

// randomTree produces a balanced parenthesis sequence of n nodes.
func randomTree(rng *rand.Rand, n int) []bool {
	var seq []bool
	open := 0
	nodes := 0
	for nodes < n || open > 0 {
		if nodes < n && (open == 0 || rng.Intn(2) == 0) {
			seq = append(seq, true)
			open++
			nodes++
		} else {
			seq = append(seq, false)
			open--
		}
	}
	return seq
}

func TestParensSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 10, 300, 2000} {
		p := NewFromBools(randomTree(rng, n))
		var buf bytes.Buffer
		if err := p.Save(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Load(&buf)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got.Len() != p.Len() || got.NumNodes() != p.NumNodes() {
			t.Fatalf("n=%d: dimensions", n)
		}
		for i := 0; i < p.Len(); i++ {
			if got.IsOpen(i) != p.IsOpen(i) {
				t.Fatalf("IsOpen(%d)", i)
			}
			if p.IsOpen(i) {
				if got.FindClose(i) != p.FindClose(i) ||
					got.Parent(i) != p.Parent(i) ||
					got.FirstChild(i) != p.FirstChild(i) ||
					got.NextSibling(i) != p.NextSibling(i) ||
					got.SubtreeSize(i) != p.SubtreeSize(i) {
					t.Fatalf("navigation differs at %d", i)
				}
			}
		}
	}
}

func TestParensLoadCorrupt(t *testing.T) {
	p := NewFromBools([]bool{true, true, false, true, false, false})
	var buf bytes.Buffer
	p.Save(&buf)
	data := buf.Bytes()
	for cut := 0; cut < len(data); cut++ {
		if _, err := Load(bytes.NewReader(data[:cut])); !errors.Is(err, persist.ErrCorrupt) {
			t.Fatalf("cut=%d err=%v", cut, err)
		}
	}
	// An odd parenthesis count cannot be a tree.
	bad := append([]byte(nil), data...)
	bad[2] = 7 // vector length field (offset: parens format byte + vector format byte)
	if _, err := Load(bytes.NewReader(bad)); !errors.Is(err, persist.ErrCorrupt) {
		t.Fatalf("odd count: %v", err)
	}
}
