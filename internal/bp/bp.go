// Package bp implements the balanced-parentheses representation of an
// ordinal tree (paper Section 4.1.1) with the navigation set of Section 4.2:
// FindClose/FindOpen/Enclose run on a range-min-max tree over the excess
// sequence (Sadakane and Navarro, SODA 2010), giving O(log n) worst case and
// near-constant time in practice for local queries; Preorder and friends use
// the constant-time rank of the underlying bit vector.
//
// A tree node is identified by the position of its opening parenthesis, as
// in the paper. Nil is represented by -1.
package bp

import (
	"repro/internal/bitvec"
)

// Nil is the missing-node sentinel.
const Nil = -1

const blockBits = 512 // one rmM leaf covers this many parentheses

// Parens is the frozen balanced-parentheses sequence with its rmM tree.
type Parens struct {
	bits *bitvec.Vector
	n    int
	// Excess at the start of each block (excess of all positions before it).
	blockStart []int32
	// Segment tree over blocks: per node, min and max absolute excess
	// attained inside the node's range. 1-based heap layout.
	segMin, segMax []int32
	nBlocks        int
	segLeaves      int // power of two >= nBlocks
}

// byte tables: walking a byte LSB-first, prefix excess min/max and total.
var (
	byteTotal [256]int8
	byteMin   [256]int8 // min prefix excess (after >=1 steps)
	byteMax   [256]int8
)

func init() {
	for v := 0; v < 256; v++ {
		e, mn, mx := 0, 127, -127
		for b := 0; b < 8; b++ {
			if v>>uint(b)&1 == 1 {
				e++
			} else {
				e--
			}
			if e < mn {
				mn = e
			}
			if e > mx {
				mx = e
			}
		}
		byteTotal[v] = int8(e)
		byteMin[v] = int8(mn)
		byteMax[v] = int8(mx)
	}
}

// NewFromBools builds the structure from a parenthesis sequence
// (true = '('). The sequence must be balanced.
func NewFromBools(parens []bool) *Parens {
	v := bitvec.New(len(parens))
	for i, b := range parens {
		if b {
			v.Set(i)
		}
	}
	v.Build()
	return New(v)
}

// New builds the structure from a frozen bit vector (1 = open paren).
func New(v *bitvec.Vector) *Parens {
	p := &Parens{bits: v, n: v.Len()}
	nb := (p.n + blockBits - 1) / blockBits
	if nb == 0 {
		nb = 1
	}
	p.nBlocks = nb
	p.blockStart = make([]int32, nb+1)
	leaves := 1
	for leaves < nb {
		leaves *= 2
	}
	p.segLeaves = leaves
	p.segMin = make([]int32, 2*leaves)
	p.segMax = make([]int32, 2*leaves)
	for i := range p.segMin {
		p.segMin[i] = int32(1) << 30
		p.segMax[i] = -(int32(1) << 30)
	}
	e := int32(0)
	for b := 0; b < nb; b++ {
		p.blockStart[b] = e
		mn, mx := int32(1)<<30, -(int32(1) << 30)
		lo, hi := b*blockBits, (b+1)*blockBits
		if hi > p.n {
			hi = p.n
		}
		for i := lo; i < hi; i++ {
			if v.Get(i) {
				e++
			} else {
				e--
			}
			if e < mn {
				mn = e
			}
			if e > mx {
				mx = e
			}
		}
		p.segMin[leaves+b] = mn
		p.segMax[leaves+b] = mx
	}
	p.blockStart[nb] = e
	for i := leaves - 1; i >= 1; i-- {
		p.segMin[i] = min32(p.segMin[2*i], p.segMin[2*i+1])
		p.segMax[i] = max32(p.segMax[2*i], p.segMax[2*i+1])
	}
	return p
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}
func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

// Len returns the number of parentheses (2x number of nodes).
func (p *Parens) Len() int { return p.n }

// IsOpen reports whether position i holds an opening parenthesis.
func (p *Parens) IsOpen(i int) bool { return p.bits.Get(i) }

// Excess returns the number of open minus closed parentheses in [0, i].
func (p *Parens) Excess(i int) int {
	if i < 0 {
		return 0
	}
	return 2*p.bits.Rank1(i+1) - (i + 1)
}

// Rank1 counts opening parentheses in [0, i).
func (p *Parens) Rank1(i int) int { return p.bits.Rank1(i) }

// Select1 returns the position of the (j+1)-th opening parenthesis.
func (p *Parens) Select1(j int) int { return p.bits.Select1(j) }

// fwdSearch returns the smallest j > i with Excess(j) == target, or Nil.
func (p *Parens) fwdSearch(i, target int) int {
	e := p.Excess(i)
	start := i + 1
	b := start / blockBits
	if b < p.nBlocks {
		end := (b + 1) * blockBits
		if end > p.n {
			end = p.n
		}
		if j, ok := p.scanFwd(start, end, e, target); ok {
			return j
		}
		// Find next block whose [min,max] range covers target.
		nb := p.nextBlock(b+1, int32(target))
		if nb < 0 {
			return Nil
		}
		lo, hi := nb*blockBits, (nb+1)*blockBits
		if hi > p.n {
			hi = p.n
		}
		if j, ok := p.scanFwd(lo, hi, int(p.blockStart[nb]), target); ok {
			return j
		}
	}
	return Nil
}

// scanFwd scans positions [start, end) with running excess e (the excess
// just before start) and returns the first position where excess hits
// target. Uses byte tables to skip 8 positions at a time.
func (p *Parens) scanFwd(start, end, e, target int) (int, bool) {
	words := p.bits.Words()
	i := start
	for i < end {
		// Align to byte boundary first.
		if i%8 != 0 || end-i < 8 {
			if p.bits.Get(i) {
				e++
			} else {
				e--
			}
			if e == target {
				return i, true
			}
			i++
			continue
		}
		bv := byte(words[i>>6] >> uint(i&63))
		d := target - e
		if int(byteMin[bv]) <= d && d <= int(byteMax[bv]) {
			// The target is hit inside this byte; scan its bits.
			for b := 0; b < 8; b++ {
				if bv>>uint(b)&1 == 1 {
					e++
				} else {
					e--
				}
				if e == target {
					return i + b, true
				}
			}
		}
		e += int(byteTotal[bv])
		i += 8
	}
	return 0, false
}

// nextBlock returns the first block index >= b whose excess range covers
// target, or -1.
func (p *Parens) nextBlock(b int, target int32) int {
	if b >= p.nBlocks {
		return -1
	}
	// Walk up from the leaf, checking right siblings, then descend.
	idx := p.segLeaves + b
	for idx > 1 {
		if idx%2 == 0 { // left child: check this subtree first if we haven't
			if p.segMin[idx] <= target && target <= p.segMax[idx] {
				break
			}
			idx++ // move to right sibling
		} else {
			if p.segMin[idx] <= target && target <= p.segMax[idx] {
				break
			}
			// climb until we are a left child again
			idx /= 2
			for idx > 1 && idx%2 == 1 {
				idx /= 2
			}
			if idx <= 1 {
				return -1
			}
			idx++ // right sibling of the ancestor
		}
	}
	if idx <= 1 {
		return -1
	}
	// Descend to the leftmost covering leaf.
	for idx < p.segLeaves {
		if p.segMin[2*idx] <= target && target <= p.segMax[2*idx] {
			idx = 2 * idx
		} else {
			idx = 2*idx + 1
		}
	}
	blk := idx - p.segLeaves
	if blk >= p.nBlocks {
		return -1
	}
	return blk
}

// bwdSearch returns the largest j < i with Excess(j) == target, or -2 when
// no such j exists even conceptually; j == -1 (Excess(-1) == 0) is a valid
// answer when target is 0.
func (p *Parens) bwdSearch(i, target int) int {
	if i < 0 {
		if target == 0 {
			return -1
		}
		return -2
	}
	e := p.Excess(i)
	// Walk j from i-1 down to -1; excess(j) = excess(j+1) - val(j+1).
	j := i
	b := j / blockBits
	lo := b * blockBits
	if r, ok := p.scanBwd(j, lo, e, target); ok {
		return r
	}
	// blocks to the left
	for blk := b - 1; blk >= 0; blk-- {
		if p.segMin[p.segLeaves+blk] <= int32(target) && int32(target) <= p.segMax[p.segLeaves+blk] {
			hi := (blk+1)*blockBits - 1
			if r, ok := p.scanBwd(hi, blk*blockBits, int(p.Excess(hi)), target); ok {
				return r
			}
		}
	}
	if target == 0 {
		return -1
	}
	return -2
}

// scanBwd scans positions j = start-1 ... lo-1 where e is Excess(start) and
// returns the largest j in [lo-1, start-1] with Excess(j) == target. The
// position `start` itself is also checked.
func (p *Parens) scanBwd(start, lo, e, target int) (int, bool) {
	for j := start; j >= lo; j-- {
		if e == target {
			return j, true
		}
		if p.bits.Get(j) {
			e--
		} else {
			e++
		}
	}
	return 0, false
}

// FindClose returns the position of the closing parenthesis matching the
// open parenthesis at i.
func (p *Parens) FindClose(i int) int {
	if i+1 < p.n && !p.bits.Get(i+1) {
		return i + 1 // leaf fast path
	}
	return p.fwdSearch(i, p.Excess(i)-1)
}

// FindOpen returns the position of the opening parenthesis matching the
// close parenthesis at j.
func (p *Parens) FindOpen(j int) int {
	if j > 0 && p.bits.Get(j-1) {
		return j - 1 // leaf fast path
	}
	r := p.bwdSearch(j-1, p.Excess(j))
	if r < -1 {
		return Nil
	}
	return r + 1
}

// Enclose returns the opening parenthesis of the parent of the node whose
// opening parenthesis is at i, or Nil for the root.
func (p *Parens) Enclose(i int) int {
	if i == 0 {
		return Nil
	}
	r := p.bwdSearch(i-1, p.Excess(i)-2)
	if r < -1 {
		return Nil
	}
	return r + 1
}

// --- Tree operations (Section 4.2.1) ---

// Root returns the root node (position 0), or Nil for an empty tree.
func (p *Parens) Root() int {
	if p.n == 0 {
		return Nil
	}
	return 0
}

// Close is the paper's Close(x).
func (p *Parens) Close(x int) int { return p.FindClose(x) }

// Preorder returns the 0-based preorder number of node x.
func (p *Parens) Preorder(x int) int { return p.bits.Rank1(x+1) - 1 }

// NodeAtPreorder returns the node with 0-based preorder k.
func (p *Parens) NodeAtPreorder(k int) int { return p.bits.Select1(k) }

// NumNodes returns the number of tree nodes.
func (p *Parens) NumNodes() int { return p.n / 2 }

// SubtreeSize returns the number of nodes in the subtree rooted at x.
func (p *Parens) SubtreeSize(x int) int { return (p.FindClose(x) - x + 1) / 2 }

// IsAncestor reports whether x is an ancestor of y (inclusive).
func (p *Parens) IsAncestor(x, y int) bool { return x <= y && y <= p.FindClose(x) }

// IsLeaf reports whether x has no children.
func (p *Parens) IsLeaf(x int) bool { return !p.bits.Get(x + 1) }

// FirstChild returns x's first child or Nil.
func (p *Parens) FirstChild(x int) int {
	if p.bits.Get(x + 1) {
		return x + 1
	}
	return Nil
}

// NextSibling returns x's next sibling or Nil.
func (p *Parens) NextSibling(x int) int {
	c := p.FindClose(x) + 1
	if c < p.n && p.bits.Get(c) {
		return c
	}
	return Nil
}

// PrevSibling returns x's previous sibling or Nil. If the parenthesis just
// before x is an opening one it belongs to x's parent (x is a first child);
// otherwise it closes the previous sibling and FindOpen locates it.
func (p *Parens) PrevSibling(x int) int {
	if x <= 0 || p.bits.Get(x-1) {
		return Nil
	}
	return p.FindOpen(x - 1)
}

// Parent returns x's parent or Nil.
func (p *Parens) Parent(x int) int { return p.Enclose(x) }

// LevelAncestor returns the ancestor of x that is d levels above it (d = 1
// is the parent), or Nil when the walk leaves the tree. It generalizes
// Enclose: inside the subtree of the ancestor at depth Depth(x)-d the excess
// never drops below that depth, so the largest position before x with excess
// Depth(x)-d-1 is the position just before that ancestor's opening
// parenthesis — one bwdSearch instead of d Parent hops.
func (p *Parens) LevelAncestor(x, d int) int {
	if d <= 0 {
		return x
	}
	r := p.bwdSearch(x-1, p.Excess(x)-1-d)
	if r < -1 {
		return Nil
	}
	return r + 1
}

// Depth returns the depth of node x (root has depth 1).
func (p *Parens) Depth(x int) int { return p.Excess(x) }

// SizeInBytes reports the memory footprint of the structure.
func (p *Parens) SizeInBytes() int {
	return p.bits.SizeInBytes() + 4*len(p.blockStart) + 4*len(p.segMin) + 4*len(p.segMax) + 48
}
