// Package bp implements the balanced-parentheses representation of an
// ordinal tree (paper Section 4.1.1) with the navigation set of Section 4.2:
// FindClose/FindOpen/Enclose run on a range-min-max tree over the excess
// sequence (Sadakane and Navarro, SODA 2010), giving O(log n) worst case and
// near-constant time in practice for local queries; Preorder and friends use
// the constant-time rank of the underlying bit vector.
//
// A tree node is identified by the position of its opening parenthesis, as
// in the paper. Nil is represented by -1.
package bp

import (
	"repro/internal/bits"
	"repro/internal/bitvec"
)

// Nil is the missing-node sentinel.
const Nil = -1

const blockBits = 512 // one rmM leaf covers this many parentheses

// Parens is the frozen balanced-parentheses sequence with its rmM tree.
type Parens struct {
	bits *bitvec.Vector
	n    int
	// Excess at the start of each block (excess of all positions before it).
	blockStart []int32
	// Segment tree over blocks: per node, min and max absolute excess
	// attained inside the node's range. 1-based heap layout.
	segMin, segMax []int32
	nBlocks        int
	segLeaves      int // power of two >= nBlocks
}

// navCounter counts structure visits during a search. Production calls pass
// nil (no shared state, so concurrent readers stay race-free); whitebox
// tests pass a counter to assert the O(log n) bound: at most two block scans
// plus a root-to-leaf factor of segment-tree nodes per search.
type navCounter struct {
	blocks   int // blocks scanned by scanFwd/scanBwd
	segNodes int // segment-tree nodes whose [min,max] was tested
}

func (c *navCounter) block() {
	if c != nil {
		c.blocks++
	}
}

func (c *navCounter) segNode() {
	if c != nil {
		c.segNodes++
	}
}

// NewFromBools builds the structure from a parenthesis sequence
// (true = '('). The sequence must be balanced.
func NewFromBools(parens []bool) *Parens {
	v := bitvec.New(len(parens))
	for i, b := range parens {
		if b {
			v.Set(i)
		}
	}
	v.Build()
	return New(v)
}

// New builds the structure from a frozen bit vector (1 = open paren).
func New(v *bitvec.Vector) *Parens {
	p := &Parens{bits: v, n: v.Len()}
	nb := (p.n + blockBits - 1) / blockBits
	if nb == 0 {
		nb = 1
	}
	p.nBlocks = nb
	p.blockStart = make([]int32, nb+1)
	leaves := 1
	for leaves < nb {
		leaves *= 2
	}
	p.segLeaves = leaves
	p.segMin = make([]int32, 2*leaves)
	p.segMax = make([]int32, 2*leaves)
	for i := range p.segMin {
		p.segMin[i] = int32(1) << 30
		p.segMax[i] = -(int32(1) << 30)
	}
	// Per-block excess sweep, one byte at a time through the prefix-excess
	// tables (block boundaries are byte-aligned): ~8x fewer steps than a
	// per-bit walk, which matters because this build runs on every load.
	words := v.Words()
	e := int32(0)
	for b := 0; b < nb; b++ {
		p.blockStart[b] = e
		mn, mx := int32(1)<<30, -(int32(1) << 30)
		lo, hi := b*blockBits, (b+1)*blockBits
		if hi > p.n {
			hi = p.n
		}
		i := lo
		for ; hi-i >= 8; i += 8 {
			bv := byte(words[i>>6] >> uint(i&63))
			if m := e + int32(bits.ExcessFwdMin[bv]); m < mn {
				mn = m
			}
			if m := e + int32(bits.ExcessFwdMax[bv]); m > mx {
				mx = m
			}
			e += int32(bits.ExcessTotal[bv])
		}
		for ; i < hi; i++ {
			if v.Get(i) {
				e++
			} else {
				e--
			}
			if e < mn {
				mn = e
			}
			if e > mx {
				mx = e
			}
		}
		p.segMin[leaves+b] = mn
		p.segMax[leaves+b] = mx
	}
	p.blockStart[nb] = e
	for i := leaves - 1; i >= 1; i-- {
		p.segMin[i] = min32(p.segMin[2*i], p.segMin[2*i+1])
		p.segMax[i] = max32(p.segMax[2*i], p.segMax[2*i+1])
	}
	return p
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}
func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

// Len returns the number of parentheses (2x number of nodes).
func (p *Parens) Len() int { return p.n }

// IsOpen reports whether position i holds an opening parenthesis.
func (p *Parens) IsOpen(i int) bool { return p.bits.Get(i) }

// BitWords exposes the raw words of the parenthesis bit vector, for
// word-parallel consumers (cross-structure validation, serialization).
func (p *Parens) BitWords() []uint64 { return p.bits.Words() }

// Excess returns the number of open minus closed parentheses in [0, i].
func (p *Parens) Excess(i int) int {
	if i < 0 {
		return 0
	}
	return 2*p.bits.Rank1(i+1) - (i + 1)
}

// Rank1 counts opening parentheses in [0, i).
func (p *Parens) Rank1(i int) int { return p.bits.Rank1(i) }

// Select1 returns the position of the (j+1)-th opening parenthesis.
func (p *Parens) Select1(j int) int { return p.bits.Select1(j) }

// covers reports whether segment-tree node idx's excess range contains
// target. Padding leaves keep their sentinel ranges and never cover.
func (p *Parens) covers(idx int, target int32, c *navCounter) bool {
	c.segNode()
	return p.segMin[idx] <= target && target <= p.segMax[idx]
}

// fwdSearch returns the smallest j > i with Excess(j) == target, or Nil.
func (p *Parens) fwdSearch(i, target int) int {
	return p.fwdSearchCounted(i, target, nil)
}

func (p *Parens) fwdSearchCounted(i, target int, c *navCounter) int {
	start := i + 1
	b := start / blockBits
	if b >= p.nBlocks {
		return Nil
	}
	e := p.Excess(i)
	end := (b + 1) * blockBits
	if end > p.n {
		end = p.n
	}
	c.block()
	if j, ok := p.scanFwd(start, end, e, target); ok {
		return j
	}
	// Find the next block whose [min,max] range covers target; inside it a
	// ±1 walk attains every value of the range, so the scan cannot miss.
	nb := p.nextBlock(b+1, int32(target), c)
	if nb < 0 {
		return Nil
	}
	lo, hi := nb*blockBits, (nb+1)*blockBits
	if hi > p.n {
		hi = p.n
	}
	c.block()
	if j, ok := p.scanFwd(lo, hi, int(p.blockStart[nb]), target); ok {
		return j
	}
	return Nil
}

// scanFwd scans positions [start, end) with running excess e (the excess
// just before start) and returns the first position where excess hits
// target. Uses byte tables to skip 8 positions at a time.
func (p *Parens) scanFwd(start, end, e, target int) (int, bool) {
	words := p.bits.Words()
	i := start
	for i < end {
		// Align to byte boundary first.
		if i%8 != 0 || end-i < 8 {
			if p.bits.Get(i) {
				e++
			} else {
				e--
			}
			if e == target {
				return i, true
			}
			i++
			continue
		}
		bv := byte(words[i>>6] >> uint(i&63))
		d := target - e
		if int(bits.ExcessFwdMin[bv]) <= d && d <= int(bits.ExcessFwdMax[bv]) {
			// The target is hit inside this byte; scan its bits.
			for b := 0; b < 8; b++ {
				if bv>>uint(b)&1 == 1 {
					e++
				} else {
					e--
				}
				if e == target {
					return i + b, true
				}
			}
		}
		e += int(bits.ExcessTotal[bv])
		i += 8
	}
	return 0, false
}

// nextBlock returns the first block index >= b whose excess range covers
// target, or -1. It climbs from the leaf to the nearest ancestor that is a
// left child, steps to that ancestor's right sibling, and repeats until a
// covering subtree is found, then descends to its leftmost covering leaf:
// O(log n) node visits total.
func (p *Parens) nextBlock(b int, target int32, c *navCounter) int {
	if b < 0 || b >= p.nBlocks {
		return -1
	}
	idx := p.segLeaves + b
	for !p.covers(idx, target, c) {
		for idx > 1 && idx%2 == 1 {
			idx /= 2
		}
		if idx <= 1 {
			return -1
		}
		idx++ // right sibling: all blocks beyond those already ruled out
	}
	for idx < p.segLeaves {
		if p.covers(2*idx, target, c) {
			idx = 2 * idx
		} else {
			idx = 2*idx + 1
		}
	}
	return idx - p.segLeaves
}

// prevBlock returns the last block index <= b whose excess range covers
// target, or -1. Mirror image of nextBlock: climb past left-child
// ancestors, step to the left sibling, descend to the rightmost covering
// leaf.
func (p *Parens) prevBlock(b int, target int32, c *navCounter) int {
	if b < 0 || b >= p.nBlocks {
		return -1
	}
	idx := p.segLeaves + b
	for !p.covers(idx, target, c) {
		for idx > 1 && idx%2 == 0 {
			idx /= 2
		}
		if idx <= 1 {
			return -1
		}
		idx-- // left sibling: all blocks before those already ruled out
	}
	for idx < p.segLeaves {
		if p.covers(2*idx+1, target, c) {
			idx = 2*idx + 1
		} else {
			idx = 2 * idx
		}
	}
	return idx - p.segLeaves
}

// bwdSearch returns the largest j < i with Excess(j) == target, or -2 when
// no such j exists; j == -1 (Excess(-1) == 0) is a valid answer when target
// is 0. The position i itself is never returned, even when Excess(i) ==
// target.
func (p *Parens) bwdSearch(i, target int) int {
	return p.bwdSearchCounted(i, target, nil)
}

func (p *Parens) bwdSearchCounted(i, target int, c *navCounter) int {
	if i <= 0 {
		// The only candidate below position 0 is the virtual j == -1.
		if i == 0 && target == 0 {
			return -1
		}
		return -2
	}
	hi := i - 1
	b := hi / blockBits
	c.block()
	if r, ok := p.scanBwd(hi, b*blockBits, p.Excess(hi), target); ok {
		return r
	}
	// The scan covered block b down to its lower boundary (position
	// b*blockBits-1, whose excess is blockStart[b]). Jump straight to the
	// last earlier block covering target; blockStart seeds its edge excess,
	// so no rank is needed.
	if pb := p.prevBlock(b-1, int32(target), c); pb >= 0 {
		c.block()
		if r, ok := p.scanBwd((pb+1)*blockBits-1, pb*blockBits, int(p.blockStart[pb+1]), target); ok {
			return r
		}
	}
	if target == 0 {
		return -1
	}
	return -2
}

// scanBwd scans positions j = start, start-1, ..., lo-1, where e is
// Excess(start), and returns the largest j with Excess(j) == target
// (excess(j) = excess(j+1) - delta(j+1)). Uses the backward byte tables to
// skip 8 positions at a time.
func (p *Parens) scanBwd(start, lo, e, target int) (int, bool) {
	words := p.bits.Words()
	j := start
	for {
		if e == target {
			return j, true
		}
		if j < lo {
			return 0, false
		}
		// Byte acceleration: j at the top of a byte whose 8 backward steps
		// all stay within [lo-1, start].
		if j&7 == 7 && j-7 >= lo {
			bv := byte(words[j>>6] >> uint(j&63&^7))
			d := target - e
			if int(bits.ExcessBwdMin[bv]) <= d && d <= int(bits.ExcessBwdMax[bv]) {
				// The target is hit inside this byte; undo its bits top-down.
				for b := 7; b >= 0; b-- {
					if bv>>uint(b)&1 == 1 {
						e--
					} else {
						e++
					}
					if e == target {
						return j - 8 + b, true
					}
				}
			}
			e -= int(bits.ExcessTotal[bv])
			j -= 8
			continue
		}
		if p.bits.Get(j) {
			e--
		} else {
			e++
		}
		j--
	}
}

// FindClose returns the position of the closing parenthesis matching the
// open parenthesis at i.
func (p *Parens) FindClose(i int) int {
	if i+1 < p.n && !p.bits.Get(i+1) {
		return i + 1 // leaf fast path
	}
	return p.fwdSearch(i, p.Excess(i)-1)
}

// FindOpen returns the position of the opening parenthesis matching the
// close parenthesis at j.
func (p *Parens) FindOpen(j int) int {
	if j > 0 && p.bits.Get(j-1) {
		return j - 1 // leaf fast path
	}
	r := p.bwdSearch(j, p.Excess(j))
	if r < -1 {
		return Nil
	}
	return r + 1
}

// Enclose returns the opening parenthesis of the parent of the node whose
// opening parenthesis is at i, or Nil for the root.
func (p *Parens) Enclose(i int) int {
	if i == 0 {
		return Nil
	}
	r := p.bwdSearch(i, p.Excess(i)-2)
	if r < -1 {
		return Nil
	}
	return r + 1
}

// --- Tree operations (Section 4.2.1) ---

// Root returns the root node (position 0), or Nil for an empty tree.
func (p *Parens) Root() int {
	if p.n == 0 {
		return Nil
	}
	return 0
}

// Close is the paper's Close(x).
func (p *Parens) Close(x int) int { return p.FindClose(x) }

// Preorder returns the 0-based preorder number of node x.
func (p *Parens) Preorder(x int) int { return p.bits.Rank1(x+1) - 1 }

// NodeAtPreorder returns the node with 0-based preorder k.
func (p *Parens) NodeAtPreorder(k int) int { return p.bits.Select1(k) }

// NumNodes returns the number of tree nodes.
func (p *Parens) NumNodes() int { return p.n / 2 }

// SubtreeSize returns the number of nodes in the subtree rooted at x.
func (p *Parens) SubtreeSize(x int) int { return (p.FindClose(x) - x + 1) / 2 }

// IsAncestor reports whether x is an ancestor of y (inclusive).
func (p *Parens) IsAncestor(x, y int) bool { return x <= y && y <= p.FindClose(x) }

// IsLeaf reports whether x has no children.
func (p *Parens) IsLeaf(x int) bool { return !p.bits.Get(x + 1) }

// FirstChild returns x's first child or Nil.
func (p *Parens) FirstChild(x int) int {
	if p.bits.Get(x + 1) {
		return x + 1
	}
	return Nil
}

// NextSibling returns x's next sibling or Nil.
func (p *Parens) NextSibling(x int) int {
	c := p.FindClose(x) + 1
	if c < p.n && p.bits.Get(c) {
		return c
	}
	return Nil
}

// PrevSibling returns x's previous sibling or Nil. If the parenthesis just
// before x is an opening one it belongs to x's parent (x is a first child);
// otherwise it closes the previous sibling and FindOpen locates it.
func (p *Parens) PrevSibling(x int) int {
	if x <= 0 || p.bits.Get(x-1) {
		return Nil
	}
	return p.FindOpen(x - 1)
}

// Parent returns x's parent or Nil.
func (p *Parens) Parent(x int) int { return p.Enclose(x) }

// LevelAncestor returns the ancestor of x that is d levels above it (d = 1
// is the parent), or Nil when the walk leaves the tree. It generalizes
// Enclose: inside the subtree of the ancestor at depth Depth(x)-d the excess
// never drops below that depth, so the largest position before x with excess
// Depth(x)-d-1 is the position just before that ancestor's opening
// parenthesis — one bwdSearch instead of d Parent hops.
func (p *Parens) LevelAncestor(x, d int) int {
	if d <= 0 {
		return x
	}
	r := p.bwdSearch(x, p.Excess(x)-1-d)
	if r < -1 {
		return Nil
	}
	return r + 1
}

// Depth returns the depth of node x (root has depth 1).
func (p *Parens) Depth(x int) int { return p.Excess(x) }

// SizeInBytes reports the memory footprint of the structure.
func (p *Parens) SizeInBytes() int {
	return p.bits.SizeInBytes() + 4*len(p.blockStart) + 4*len(p.segMin) + 4*len(p.segMax) + 48
}
