package persist

import (
	"bytes"
	"errors"
	"testing"
	"unsafe"
)

// writeAligned serializes one of every primitive with an aligned Writer,
// returning the stream and the expected values.
func writeAligned(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	pw := NewWriter(&buf)
	pw.SetAligned(true)
	pw.Byte(0xAB)
	pw.Words([]uint64{1, 1 << 63, 0})
	pw.Uint32(7)
	pw.Int32s([]int32{-1, 0, 1 << 30})
	pw.Int(123456)
	pw.Bytes([]byte("hello"))
	pw.String("wörld")
	pw.Words(nil)
	pw.Raw([]byte{9, 8, 7})
	if err := pw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func checkAlignedStream(t *testing.T, pr Source) {
	t.Helper()
	if v := pr.Byte(); v != 0xAB {
		t.Fatalf("Byte=%x", v)
	}
	if w := pr.Words(); len(w) != 3 || w[1] != 1<<63 {
		t.Fatalf("Words=%v", w)
	}
	if v := pr.Uint32(); v != 7 {
		t.Fatalf("Uint32=%d", v)
	}
	if xs := pr.Int32s(); len(xs) != 3 || xs[0] != -1 || xs[2] != 1<<30 {
		t.Fatalf("Int32s=%v", xs)
	}
	if v := pr.Int(); v != 123456 {
		t.Fatalf("Int=%d", v)
	}
	if b := pr.Bytes(); string(b) != "hello" {
		t.Fatalf("Bytes=%q", b)
	}
	if s := pr.String(); s != "wörld" {
		t.Fatalf("String=%q", s)
	}
	if w := pr.Words(); len(w) != 0 {
		t.Fatalf("empty Words=%v", w)
	}
	if b := pr.Raw(3); !bytes.Equal(b, []byte{9, 8, 7}) {
		t.Fatalf("Raw=%v", b)
	}
	if pr.Err() != nil {
		t.Fatal(pr.Err())
	}
}

// TestAlignedStreamBothReaders decodes one aligned stream through the
// streaming Reader and the mapped MReader: the Source contract.
func TestAlignedStreamBothReaders(t *testing.T) {
	data := writeAligned(t)
	pr := NewReader(bytes.NewReader(data))
	pr.SetAligned(true)
	checkAlignedStream(t, pr)

	aligned := EnsureAligned(data)
	checkAlignedStream(t, NewMReader(aligned))
}

// TestMReaderAliases proves the zero-copy property: the slices returned by
// an aliasing MReader share memory with the buffer.
func TestMReaderAliases(t *testing.T) {
	var buf bytes.Buffer
	pw := NewWriter(&buf)
	pw.SetAligned(true)
	pw.Words([]uint64{11, 22})
	pw.Int32s([]int32{33, 44})
	pw.Bytes([]byte("payload"))
	if err := pw.Flush(); err != nil {
		t.Fatal(err)
	}
	data := EnsureAligned(buf.Bytes())
	mr := NewMReader(data)
	if !mr.Aliasing() {
		t.Skip("host cannot alias (big-endian)")
	}
	ws := mr.Words()
	xs := mr.Int32s()
	bs := mr.Bytes()
	if mr.Err() != nil {
		t.Fatal(mr.Err())
	}
	inBuf := func(p unsafe.Pointer) bool {
		base := uintptr(unsafe.Pointer(&data[0]))
		return uintptr(p) >= base && uintptr(p) < base+uintptr(len(data))
	}
	if !inBuf(unsafe.Pointer(&ws[0])) || !inBuf(unsafe.Pointer(&xs[0])) || !inBuf(unsafe.Pointer(&bs[0])) {
		t.Fatal("payload slices do not alias the buffer")
	}
	if ws[0] != 11 || ws[1] != 22 || xs[0] != 33 || xs[1] != 44 || string(bs) != "payload" {
		t.Fatalf("aliased values wrong: %v %v %q", ws, xs, bs)
	}
}

// TestMReaderUnalignedBaseCopies: a buffer with a misaligned base must
// still decode correctly (by copying).
func TestMReaderUnalignedBaseCopies(t *testing.T) {
	data := writeAligned(t)
	backing := make([]byte, len(data)+1)
	copy(backing[1:], data)
	mr := NewMReader(backing[1:])
	if mr.Aliasing() {
		t.Skip("allocator produced an aligned odd slice; nothing to test")
	}
	checkAlignedStream(t, mr)
}

// TestMReaderTruncation: every proper prefix fails with ErrCorrupt and
// never panics or over-reads.
func TestMReaderTruncation(t *testing.T) {
	data := writeAligned(t)
	for cut := 0; cut < len(data); cut++ {
		mr := NewMReader(EnsureAligned(data[:cut]))
		mr.Byte()
		mr.Words()
		mr.Uint32()
		mr.Int32s()
		mr.Int()
		mr.Bytes()
		_ = mr.String()
		mr.Words()
		mr.Raw(3)
		if !errors.Is(mr.Err(), ErrCorrupt) {
			t.Fatalf("cut=%d err=%v", cut, mr.Err())
		}
	}
}

// TestMReaderImplausibleLength mirrors the streaming reader's cap.
func TestMReaderImplausibleLength(t *testing.T) {
	var buf bytes.Buffer
	pw := NewWriter(&buf)
	pw.Uint64(1 << 62)
	pw.Flush()
	mr := NewMReader(EnsureAligned(buf.Bytes()))
	mr.SetAligned(false)
	if b := mr.Bytes(); b != nil || !errors.Is(mr.Err(), ErrCorrupt) {
		t.Fatalf("b=%v err=%v", b, mr.Err())
	}
}

// TestAlignedContainerRoundTrip writes an aligned container and reads it
// back through both FileReader and OpenMappedContainer, checking payload
// alignment along the way.
func TestAlignedContainerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFileWriter(&buf, "MAGIC!", 3, true)
	fw.Section(1, func(pw *Writer) { pw.String("one") })
	fw.Section(9, func(pw *Writer) { pw.Int(99) })
	fw.Section(2, func(pw *Writer) { pw.Byte(1); pw.Words([]uint64{5, 6}) })
	n, err := fw.Close()
	if err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if n != int64(len(data)) {
		t.Fatalf("Close reported %d bytes, wrote %d", n, len(data))
	}

	// Streaming read with alignment from version 3 on.
	fr, err := NewFileReader(bytes.NewReader(data), "MAGIC!", 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	id, pr, err := fr.Next()
	if err != nil || id != 1 || pr.String() != "one" {
		t.Fatalf("section 1: id=%d err=%v", id, err)
	}
	id, _, err = fr.Next() // skip the unknown section by length
	if err != nil || id != 9 {
		t.Fatalf("section 9: id=%d err=%v", id, err)
	}
	id, pr, err = fr.Next()
	if err != nil || id != 2 || pr.Byte() != 1 {
		t.Fatalf("section 2: id=%d err=%v", id, err)
	}
	if w := pr.Words(); len(w) != 2 || w[0] != 5 || w[1] != 6 {
		t.Fatalf("section 2 payload: %v", w)
	}
	if id, _, err = fr.Next(); err != nil || id != 0 {
		t.Fatalf("end: id=%d err=%v", id, err)
	}

	// Mapped read.
	mf, err := OpenMappedContainer(EnsureAligned(data), "MAGIC!", 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	id, mr, err := mf.Next()
	if err != nil || id != 1 || mr.String() != "one" {
		t.Fatalf("mapped section 1: id=%d err=%v", id, err)
	}
	id, _, err = mf.Next()
	if err != nil || id != 9 {
		t.Fatalf("mapped section 9: id=%d err=%v", id, err)
	}
	id, mr, err = mf.Next()
	if err != nil || id != 2 || mr.Byte() != 1 {
		t.Fatalf("mapped section 2: id=%d err=%v", id, err)
	}
	if w := mr.Words(); len(w) != 2 || w[1] != 6 {
		t.Fatalf("mapped section 2 payload: %v", w)
	}
	if id, _, err = mf.Next(); err != nil || id != 0 {
		t.Fatalf("mapped end: id=%d err=%v", id, err)
	}
}

// TestOpenMappedContainerRejects: wrong magic, future version, unaligned
// (old) version, truncations.
func TestOpenMappedContainerRejects(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFileWriter(&buf, "MAGIC!", 3, true)
	fw.Section(1, func(pw *Writer) { pw.Words(make([]uint64, 64)) })
	fw.Close()
	data := EnsureAligned(buf.Bytes())

	if _, err := OpenMappedContainer([]byte("WRONG!aa"), "MAGIC!", 3, 3); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: %v", err)
	}
	if _, err := OpenMappedContainer(data, "MAGIC!", 2, 2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("future version: %v", err)
	}

	var old bytes.Buffer
	ow := NewFileWriter(&old, "MAGIC!", 2, false)
	ow.Section(1, func(pw *Writer) { pw.Int(1) })
	ow.Close()
	if _, err := OpenMappedContainer(EnsureAligned(old.Bytes()), "MAGIC!", 3, 3); !errors.Is(err, ErrNotMappable) {
		t.Fatalf("old version: %v", err)
	}

	for cut := 0; cut < len(data); cut++ {
		mf, err := OpenMappedContainer(EnsureAligned(data[:cut]), "MAGIC!", 3, 3)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("cut=%d header err=%v", cut, err)
			}
			continue
		}
		detected := false
		for {
			id, mr, err := mf.Next()
			if err != nil {
				detected = errors.Is(err, ErrCorrupt)
				break
			}
			if id == 0 {
				break
			}
			mr.Words()
			if mr.Err() != nil {
				detected = true
				break
			}
		}
		if !detected {
			t.Fatalf("cut=%d: truncation not detected", cut)
		}
	}
}

// TestUnalignedWriterUnchanged pins that non-aligned serialization is
// byte-for-byte what it was before alignment existed: no padding anywhere.
func TestUnalignedWriterUnchanged(t *testing.T) {
	var buf bytes.Buffer
	pw := NewWriter(&buf)
	pw.Byte(1)
	pw.Words([]uint64{2})
	pw.Int32s([]int32{3})
	pw.Flush()
	// byte + (len + word) + (len + int32) with no padding
	if want := 1 + 8 + 8 + 8 + 4; buf.Len() != want {
		t.Fatalf("unaligned stream is %d bytes, want %d", buf.Len(), want)
	}
}

func TestEnsureAligned(t *testing.T) {
	if EnsureAligned(nil) != nil {
		t.Fatal("nil should stay nil")
	}
	backing := make([]byte, 17)
	for i := range backing {
		backing[i] = byte(i)
	}
	got := EnsureAligned(backing[1:])
	if uintptr(unsafe.Pointer(&got[0]))&7 != 0 {
		t.Fatal("result not aligned")
	}
	if !bytes.Equal(got, backing[1:]) {
		t.Fatal("copy differs")
	}
}
