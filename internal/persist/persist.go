// Package persist provides the shared binary primitives of the on-disk
// index format: a bounds-checked little-endian reader/writer pair for the
// scalar and slice types the succinct structures are made of, and a
// sectioned container format with a magic number, a format version and an
// explicit byte length per section, so that future layout changes are
// detected (version mismatch) or skipped (unknown section) rather than
// silently misread. Every structure in the index stack (bitvec, bp,
// wavelet, tags, fmindex, wordindex, xmltree) builds its Save/Load on these
// primitives.
//
// There are two read paths over the same logical layout. The streaming
// Reader decodes from an io.Reader into freshly allocated memory; the
// MReader (mreader.go) decodes from a byte buffer — typically an mmap'd
// file — and aliases its word and int32 payloads instead of copying them.
// Structure loaders are written once against the Source interface and work
// over both. Aliasing requires the payloads to sit on their natural
// boundaries, which is what aligned mode provides: Words and Int32s pad
// the stream to an 8-byte boundary before their length prefix, and the
// aligned container gives every section an 8-byte-aligned payload start.
// Alignment is a property of the enclosing format version, not of the
// primitives, so pre-alignment files keep decoding byte-for-byte as before.
//
// All corruption and truncation conditions surface as errors wrapping
// ErrCorrupt; no input may cause a panic or an unbounded allocation.
package persist

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// ErrCorrupt reports corrupted, truncated or incompatible serialized data.
var ErrCorrupt = errors.New("persist: corrupt or truncated data")

// maxLen caps any single length field (bytes or elements). Lengths beyond
// it are treated as corruption rather than allocation requests.
const maxLen = 1 << 38

// allocChunk bounds the up-front allocation for length-prefixed payloads:
// buffers grow as data actually arrives, so a corrupt length field cannot
// trigger a giant allocation before the read fails.
const allocChunk = 1 << 20

// --- Writer ---

// Writer serializes primitives to an underlying stream. The first write
// error sticks; check Err (or Flush) once at the end instead of after every
// call.
//
// In aligned mode (SetAligned) the word-sized slice primitives pad the
// stream to an 8-byte boundary before their length prefix, so that a reader
// over a buffer whose start is 8-byte aligned can alias the payloads in
// place. Alignment is relative to the Writer's own first byte; enclosing
// formats must place that first byte on an 8-byte file offset (the aligned
// container does).
type Writer struct {
	w       *bufio.Writer
	n       int64
	aligned bool
	err     error
}

var zeroPad [8]byte

// NewWriter returns a buffered Writer over w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

func (pw *Writer) write(b []byte) {
	if pw.err != nil {
		return
	}
	n, err := pw.w.Write(b)
	pw.n += int64(n)
	pw.err = err
}

// SetAligned switches the alignment mode of subsequent writes.
func (pw *Writer) SetAligned(on bool) { pw.aligned = on }

// align8 pads the stream with zero bytes to the next 8-byte boundary
// relative to the Writer's first byte.
func (pw *Writer) align8() {
	if pad := int(-pw.n & 7); pad > 0 {
		pw.write(zeroPad[:pad])
	}
}

// Uint64 writes a fixed 8-byte little-endian value.
func (pw *Writer) Uint64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	pw.write(b[:])
}

// Uint32 writes a fixed 4-byte little-endian value.
func (pw *Writer) Uint32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	pw.write(b[:])
}

// Byte writes a single byte.
func (pw *Writer) Byte(v byte) { pw.write([]byte{v}) }

// Int writes a non-negative int as a Uint64.
func (pw *Writer) Int(v int) { pw.Uint64(uint64(v)) }

// Int32 writes an int32 as a Uint32.
func (pw *Writer) Int32(v int32) { pw.Uint32(uint32(v)) }

// Bytes writes a length-prefixed byte slice.
func (pw *Writer) Bytes(b []byte) {
	pw.Int(len(b))
	pw.write(b)
}

// Raw writes b with no length prefix; the caller's format must make the
// length recoverable.
func (pw *Writer) Raw(b []byte) { pw.write(b) }

// String writes a length-prefixed string.
func (pw *Writer) String(s string) {
	pw.Int(len(s))
	if pw.err == nil {
		var n int
		n, pw.err = pw.w.WriteString(s)
		pw.n += int64(n)
	}
}

// Words writes a length-prefixed []uint64. In aligned mode the length
// prefix is padded onto an 8-byte boundary, which puts the payload on one
// too.
func (pw *Writer) Words(ws []uint64) {
	if pw.aligned {
		pw.align8()
	}
	pw.Int(len(ws))
	var b [8]byte
	for _, x := range ws {
		binary.LittleEndian.PutUint64(b[:], x)
		pw.write(b[:])
	}
}

// Int32s writes a length-prefixed []int32, aligned like Words.
func (pw *Writer) Int32s(xs []int32) {
	if pw.aligned {
		pw.align8()
	}
	pw.Int(len(xs))
	var b [4]byte
	for _, x := range xs {
		binary.LittleEndian.PutUint32(b[:], uint32(x))
		pw.write(b[:])
	}
}

// Count returns the number of bytes handed to the underlying writer so far
// (excluding data still buffered; call Flush first for an exact total).
func (pw *Writer) Count() int64 { return pw.n }

// Err returns the first write error.
func (pw *Writer) Err() error { return pw.err }

// Flush drains the buffer and returns the first error encountered.
func (pw *Writer) Flush() error {
	if pw.err != nil {
		return pw.err
	}
	pw.err = pw.w.Flush()
	return pw.err
}

// --- Source ---

// Source is the decoding interface the structure loaders are written
// against. Two implementations exist: the streaming Reader, which copies
// every payload into fresh memory, and the buffer-backed MReader, which
// aliases word-sized payloads directly out of its (typically mmap'd)
// buffer. A loader built on Source therefore serves both the copying Load
// path and the zero-copy LoadMapped path with one body.
type Source interface {
	Byte() byte
	Uint32() uint32
	Uint64() uint64
	Int() int
	Int32() int32
	Bytes() []byte
	String() string
	Raw(n int) []byte
	Words() []uint64
	Int32s() []int32
	// SetAligned switches alignment-aware decoding of Words/Int32s; formats
	// that embed their own version byte use it after reading that byte.
	SetAligned(on bool)
	Err() error
	Check(cond bool, what string) error
}

// --- Reader ---

// Reader deserializes primitives written by Writer. The first error sticks
// and subsequent reads return zero values; check Err once after the last
// read, or rely on the validation the caller performs on the decoded
// values.
type Reader struct {
	r       io.Reader
	off     int64
	aligned bool
	err     error
}

// NewReader returns a Reader over r. The stream is buffered unless it
// already is.
func NewReader(r io.Reader) *Reader {
	if _, ok := r.(io.ByteReader); !ok {
		r = bufio.NewReader(r)
	}
	return &Reader{r: r}
}

func (pr *Reader) fail(err error) {
	if pr.err == nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			err = fmt.Errorf("%w: unexpected end of input", ErrCorrupt)
		}
		pr.err = err
	}
}

func (pr *Reader) read(b []byte) bool {
	if pr.err != nil {
		return false
	}
	n, err := io.ReadFull(pr.r, b)
	pr.off += int64(n)
	if err != nil {
		pr.fail(err)
		return false
	}
	return true
}

// SetAligned switches the alignment mode of subsequent reads.
func (pr *Reader) SetAligned(on bool) { pr.aligned = on }

// align8 discards the padding bytes a Writer in aligned mode emitted before
// a word-sized payload. Offsets are relative to the Reader's first byte,
// mirroring the Writer.
func (pr *Reader) align8() {
	if pad := int(-pr.off & 7); pad > 0 {
		var b [8]byte
		pr.read(b[:pad])
	}
}

// Uint64 reads a fixed 8-byte little-endian value.
func (pr *Reader) Uint64() uint64 {
	var b [8]byte
	if !pr.read(b[:]) {
		return 0
	}
	return binary.LittleEndian.Uint64(b[:])
}

// Uint32 reads a fixed 4-byte little-endian value.
func (pr *Reader) Uint32() uint32 {
	var b [4]byte
	if !pr.read(b[:]) {
		return 0
	}
	return binary.LittleEndian.Uint32(b[:])
}

// Byte reads a single byte.
func (pr *Reader) Byte() byte {
	var b [1]byte
	if !pr.read(b[:]) {
		return 0
	}
	return b[0]
}

// Int reads a non-negative int, rejecting implausible values.
func (pr *Reader) Int() int {
	v := pr.Uint64()
	if v > maxLen {
		pr.fail(fmt.Errorf("%w: implausible length %d", ErrCorrupt, v))
		return 0
	}
	return int(v)
}

// Int32 reads an int32.
func (pr *Reader) Int32() int32 { return int32(pr.Uint32()) }

// Bytes reads a length-prefixed byte slice. Allocation grows with the data
// actually read, so a corrupt length cannot exhaust memory up front.
func (pr *Reader) Bytes() []byte {
	n := pr.Int()
	if pr.err != nil || n == 0 {
		return nil
	}
	if n <= allocChunk {
		buf := make([]byte, n)
		if !pr.read(buf) {
			return nil
		}
		return buf
	}
	buf := make([]byte, 0, allocChunk)
	chunk := make([]byte, allocChunk)
	for len(buf) < n {
		k := min(n-len(buf), allocChunk)
		if !pr.read(chunk[:k]) {
			return nil
		}
		buf = append(buf, chunk[:k]...)
	}
	return buf
}

// String reads a length-prefixed string.
func (pr *Reader) String() string { return string(pr.Bytes()) }

// Raw reads exactly n unprefixed bytes (the counterpart of Writer.Raw).
// Allocation grows with the data actually read.
func (pr *Reader) Raw(n int) []byte {
	if pr.err != nil || n < 0 || n > maxLen {
		pr.fail(fmt.Errorf("%w: implausible raw length %d", ErrCorrupt, n))
		return nil
	}
	if n == 0 {
		return nil
	}
	if n <= allocChunk {
		buf := make([]byte, n)
		if !pr.read(buf) {
			return nil
		}
		return buf
	}
	buf := make([]byte, 0, allocChunk)
	chunk := make([]byte, allocChunk)
	for len(buf) < n {
		k := min(n-len(buf), allocChunk)
		if !pr.read(chunk[:k]) {
			return nil
		}
		buf = append(buf, chunk[:k]...)
	}
	return buf
}

// Words reads a length-prefixed []uint64.
func (pr *Reader) Words() []uint64 {
	if pr.aligned {
		pr.align8()
	}
	n := pr.Int()
	if pr.err != nil {
		return nil
	}
	out := make([]uint64, 0, min(n, allocChunk/8))
	var b [8]byte
	for i := 0; i < n; i++ {
		if !pr.read(b[:]) {
			return nil
		}
		out = append(out, binary.LittleEndian.Uint64(b[:]))
	}
	return out
}

// Int32s reads a length-prefixed []int32.
func (pr *Reader) Int32s() []int32 {
	if pr.aligned {
		pr.align8()
	}
	n := pr.Int()
	if pr.err != nil {
		return nil
	}
	out := make([]int32, 0, min(n, allocChunk/4))
	var b [4]byte
	for i := 0; i < n; i++ {
		if !pr.read(b[:]) {
			return nil
		}
		out = append(out, int32(binary.LittleEndian.Uint32(b[:])))
	}
	return out
}

// Err returns the first read error.
func (pr *Reader) Err() error { return pr.err }

// Check returns cond ? nil : a corruption error with the given context.
// Loaders use it to turn validation failures into uniform errors.
func (pr *Reader) Check(cond bool, what string) error {
	if pr.err != nil {
		return pr.err
	}
	if !cond {
		pr.err = fmt.Errorf("%w: %s", ErrCorrupt, what)
		return pr.err
	}
	return nil
}

// --- Sectioned container ---

// The classic (unaligned) container layout is:
//
//	magic   [len(magic)]byte
//	version uint16
//	section*:
//	    id      uint32  (nonzero)
//	    length  uint64  (payload bytes)
//	    payload [length]byte
//	end     uint32(0)
//
// The aligned layout — used by format versions at or above the caller's
// alignment cutover — keeps every section payload on an 8-byte file offset
// so a buffer-backed reader can alias word payloads in place:
//
//	magic   [len(magic)]byte
//	version uint16
//	pad     to an 8-byte offset
//	section*:
//	    pad      to an 8-byte offset
//	    id       uint32  (nonzero)
//	    reserved uint32  (zero)
//	    length   uint64  (payload bytes)
//	    payload  [length]byte        (starts 8-byte aligned)
//	end     pad to an 8-byte offset, then uint32(0)
//
// Readers iterate sections by id, skipping unknown ones by their length;
// an unexpected magic or a version above the reader's maximum is reported
// before any payload is interpreted.

// FileWriter writes a sectioned container. Each section is buffered to
// learn its length before being written out, so Save's transient memory
// peaks at roughly the largest single section (the text blob for the
// index container). A seekable-writer backpatching fast path can remove
// that if it ever matters.
type FileWriter struct {
	w       io.Writer
	n       int64
	aligned bool
	err     error
	buf     bytes.Buffer
}

// NewFileWriter writes the header (magic + version) and returns the writer.
// With aligned set, the aligned layout is used and every section payload is
// serialized by an aligned Writer.
func NewFileWriter(w io.Writer, magic string, version uint16, aligned bool) *FileWriter {
	fw := &FileWriter{w: w, aligned: aligned}
	fw.writeAll([]byte(magic))
	var v [2]byte
	binary.LittleEndian.PutUint16(v[:], version)
	fw.writeAll(v[:])
	fw.pad8()
	return fw
}

func (fw *FileWriter) writeAll(b []byte) {
	if fw.err != nil {
		return
	}
	n, err := fw.w.Write(b)
	fw.n += int64(n)
	fw.err = err
}

// pad8 advances to the next 8-byte file offset in aligned mode.
func (fw *FileWriter) pad8() {
	if !fw.aligned {
		return
	}
	if pad := int(-fw.n & 7); pad > 0 {
		fw.writeAll(zeroPad[:pad])
	}
}

// Section writes one section: fn serializes the payload into a Writer, and
// the section header (id, byte length) is emitted before the payload.
func (fw *FileWriter) Section(id uint32, fn func(*Writer)) {
	if fw.err != nil {
		return
	}
	fw.buf.Reset()
	pw := NewWriter(&fw.buf)
	pw.SetAligned(fw.aligned)
	fn(pw)
	if err := pw.Flush(); err != nil {
		fw.err = err
		return
	}
	fw.pad8()
	if fw.aligned {
		var hdr [16]byte
		binary.LittleEndian.PutUint32(hdr[0:4], id)
		binary.LittleEndian.PutUint64(hdr[8:16], uint64(fw.buf.Len()))
		fw.writeAll(hdr[:])
	} else {
		var hdr [12]byte
		binary.LittleEndian.PutUint32(hdr[0:4], id)
		binary.LittleEndian.PutUint64(hdr[4:12], uint64(fw.buf.Len()))
		fw.writeAll(hdr[:])
	}
	fw.writeAll(fw.buf.Bytes())
}

// Close writes the end marker and returns the total bytes written.
func (fw *FileWriter) Close() (int64, error) {
	fw.pad8()
	var end [4]byte
	fw.writeAll(end[:])
	return fw.n, fw.err
}

// FileReader iterates the sections of a container.
type FileReader struct {
	r       *bufio.Reader
	version uint16
	aligned bool
	off     int64 // absolute bytes consumed from the underlying stream
	cur     int64 // unread bytes of the current section
}

// NewFileReader checks the magic and version and positions the reader at
// the first section. maxVersion is the newest format the caller
// understands; versions at or above alignedFrom (when nonzero) use the
// aligned layout.
func NewFileReader(r io.Reader, magic string, maxVersion, alignedFrom uint16) (*FileReader, error) {
	br := bufio.NewReader(r)
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, fmt.Errorf("%w: missing magic", ErrCorrupt)
	}
	if string(got) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, got)
	}
	var v [2]byte
	if _, err := io.ReadFull(br, v[:]); err != nil {
		return nil, fmt.Errorf("%w: missing version", ErrCorrupt)
	}
	ver := binary.LittleEndian.Uint16(v[:])
	if ver == 0 || ver > maxVersion {
		return nil, fmt.Errorf("%w: unsupported format version %d (newest understood: %d)", ErrCorrupt, ver, maxVersion)
	}
	fr := &FileReader{r: br, version: ver, off: int64(len(magic)) + 2}
	fr.aligned = alignedFrom != 0 && ver >= alignedFrom
	if err := fr.skipPad(); err != nil {
		return nil, err
	}
	return fr, nil
}

// Version returns the container's format version.
func (fr *FileReader) Version() uint16 { return fr.version }

// skipPad discards alignment padding up to the next 8-byte offset.
func (fr *FileReader) skipPad() error {
	if !fr.aligned {
		return nil
	}
	if pad := int64(-fr.off & 7); pad > 0 {
		n, err := io.CopyN(io.Discard, fr.r, pad)
		fr.off += n
		if err != nil {
			return fmt.Errorf("%w: truncated padding", ErrCorrupt)
		}
	}
	return nil
}

// Next skips any unread remainder of the current section and returns the
// next section's id and a Reader limited to its payload. It returns id 0
// at the end marker.
func (fr *FileReader) Next() (uint32, *Reader, error) {
	if fr.cur > 0 {
		n, err := io.CopyN(io.Discard, fr.r, fr.cur)
		fr.off += n
		if err != nil {
			return 0, nil, fmt.Errorf("%w: truncated section", ErrCorrupt)
		}
		fr.cur = 0
	}
	if err := fr.skipPad(); err != nil {
		return 0, nil, err
	}
	var idb [4]byte
	if _, err := io.ReadFull(fr.r, idb[:]); err != nil {
		return 0, nil, fmt.Errorf("%w: missing section header", ErrCorrupt)
	}
	fr.off += 4
	id := binary.LittleEndian.Uint32(idb[:])
	if id == 0 {
		return 0, nil, nil
	}
	if fr.aligned {
		var resb [4]byte
		if _, err := io.ReadFull(fr.r, resb[:]); err != nil {
			return 0, nil, fmt.Errorf("%w: missing section header", ErrCorrupt)
		}
		fr.off += 4
	}
	var lb [8]byte
	if _, err := io.ReadFull(fr.r, lb[:]); err != nil {
		return 0, nil, fmt.Errorf("%w: missing section length", ErrCorrupt)
	}
	fr.off += 8
	length := binary.LittleEndian.Uint64(lb[:])
	if length > maxLen {
		return 0, nil, fmt.Errorf("%w: implausible section length %d", ErrCorrupt, length)
	}
	fr.cur = int64(length)
	lr := &countingLimitReader{fr: fr, r: io.LimitReader(fr.r, int64(length))}
	pr := NewReader(lr)
	pr.SetAligned(fr.aligned)
	return id, pr, nil
}

// countingLimitReader tracks how much of the section the consumer has read
// so Next can skip the rest.
type countingLimitReader struct {
	fr *FileReader
	r  io.Reader
}

func (c *countingLimitReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.fr.cur -= int64(n)
	c.fr.off += int64(n)
	if err == io.EOF && c.fr.cur == 0 {
		// A fully consumed section is a clean EOF for the section reader.
		return n, io.EOF
	}
	return n, err
}
