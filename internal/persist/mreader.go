package persist

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"unsafe"
)

// nativeIsLittle reports whether the host is little-endian. Payload aliasing
// reinterprets on-disk little-endian words as host integers, so on a
// big-endian host MReader transparently falls back to copying decodes.
var nativeIsLittle = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// MReader deserializes primitives from an in-memory buffer — typically an
// mmap'd index file. It implements Source like the streaming Reader, with
// one crucial difference: Words, Int32s, Bytes and Raw return slices that
// alias the buffer instead of copying it, so loading a structure through an
// MReader costs O(derived directories), not O(index size), and the pages
// behind the payloads stay shared with the OS page cache.
//
// Aliasing []uint64 and []int32 requires the element start to sit on its
// natural boundary in memory. The aligned container format guarantees the
// right in-buffer offsets; the buffer itself must start 8-byte aligned
// (mmap regions are page-aligned; heap fallbacks must allocate via
// AlignedBuffer). When the buffer start is unaligned, or the host is
// big-endian, or the reader is switched out of aligned mode, MReader
// silently decodes by copying instead — callers still get correct data,
// just not zero-copy.
//
// The returned slices share memory with the buffer: they are read-only and
// valid only while the backing buffer (and any mapping behind it) stays
// alive and unchanged. The first error sticks, as with Reader.
type MReader struct {
	data     []byte
	off      int
	aligned  bool
	canAlias bool
	err      error
}

// NewMReader returns an MReader over data, in aligned mode.
func NewMReader(data []byte) *MReader {
	mr := &MReader{data: data, aligned: true}
	mr.canAlias = nativeIsLittle &&
		(len(data) == 0 || uintptr(unsafe.Pointer(&data[0]))&7 == 0)
	return mr
}

// Aliasing reports whether payload slices alias the buffer (as opposed to
// the copying fallback for unaligned buffers or big-endian hosts).
func (mr *MReader) Aliasing() bool { return mr.canAlias }

// SetAligned switches the alignment mode of subsequent reads. Outside
// aligned mode payloads have no alignment guarantee, so they are copied.
func (mr *MReader) SetAligned(on bool) { mr.aligned = on }

func (mr *MReader) fail(what string) {
	if mr.err == nil {
		mr.err = fmt.Errorf("%w: %s", ErrCorrupt, what)
	}
}

// need reserves n more bytes, failing with a corruption error on overrun.
func (mr *MReader) need(n int) bool {
	if mr.err != nil {
		return false
	}
	if n < 0 || n > len(mr.data)-mr.off {
		mr.fail("unexpected end of input")
		return false
	}
	return true
}

// align8 skips the padding emitted before a word-sized payload.
func (mr *MReader) align8() {
	if pad := -mr.off & 7; pad > 0 && mr.need(pad) {
		mr.off += pad
	}
}

// Byte reads a single byte.
func (mr *MReader) Byte() byte {
	if !mr.need(1) {
		return 0
	}
	b := mr.data[mr.off]
	mr.off++
	return b
}

// Uint32 reads a fixed 4-byte little-endian value.
func (mr *MReader) Uint32() uint32 {
	if !mr.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(mr.data[mr.off:])
	mr.off += 4
	return v
}

// Uint64 reads a fixed 8-byte little-endian value.
func (mr *MReader) Uint64() uint64 {
	if !mr.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(mr.data[mr.off:])
	mr.off += 8
	return v
}

// Int reads a non-negative int, rejecting implausible values.
func (mr *MReader) Int() int {
	v := mr.Uint64()
	if v > maxLen {
		mr.fail(fmt.Sprintf("implausible length %d", v))
		return 0
	}
	return int(v)
}

// Int32 reads an int32.
func (mr *MReader) Int32() int32 { return int32(mr.Uint32()) }

// sliceLen reads a length-prefixed element count and bounds it against the
// bytes remaining in the buffer before the caller slices or allocates: a
// count only escapes this helper once esize*n payload bytes are known to be
// present, so a corrupt length field can never size an allocation larger
// than the section that claims to hold it.
func (mr *MReader) sliceLen(esize int) (n int, ok bool) {
	n = mr.Int()
	if mr.err != nil || !mr.need(esize*n) {
		return 0, false
	}
	return n, true
}

// Bytes reads a length-prefixed byte slice aliasing the buffer.
func (mr *MReader) Bytes() []byte {
	n, ok := mr.sliceLen(1)
	if !ok {
		return nil
	}
	return mr.Raw(n)
}

// String reads a length-prefixed string. Strings are copied — string
// immutability must not depend on the mapping.
func (mr *MReader) String() string { return string(mr.Bytes()) }

// Raw returns exactly n unprefixed bytes aliasing the buffer.
func (mr *MReader) Raw(n int) []byte {
	if mr.err == nil && (n < 0 || n > maxLen) {
		mr.fail(fmt.Sprintf("implausible raw length %d", n))
	}
	if n == 0 || !mr.need(n) {
		return nil
	}
	b := mr.data[mr.off : mr.off+n : mr.off+n]
	mr.off += n
	return b
}

// Words reads a length-prefixed []uint64 aliasing the buffer (zero-copy on
// aligned little-endian buffers, copied otherwise).
func (mr *MReader) Words() []uint64 {
	if mr.aligned {
		mr.align8()
	}
	n, ok := mr.sliceLen(8)
	if !ok {
		return nil
	}
	if n == 0 {
		return []uint64{}
	}
	if mr.canAlias && mr.aligned && mr.off&7 == 0 {
		ws := unsafe.Slice((*uint64)(unsafe.Pointer(&mr.data[mr.off])), n)
		mr.off += 8 * n
		return ws
	}
	ws := make([]uint64, n)
	for i := range ws {
		ws[i] = binary.LittleEndian.Uint64(mr.data[mr.off+8*i:])
	}
	mr.off += 8 * n
	return ws
}

// Int32s reads a length-prefixed []int32 aliasing the buffer.
func (mr *MReader) Int32s() []int32 {
	if mr.aligned {
		mr.align8()
	}
	n, ok := mr.sliceLen(4)
	if !ok {
		return nil
	}
	if n == 0 {
		return []int32{}
	}
	if mr.canAlias && mr.aligned && mr.off&3 == 0 {
		xs := unsafe.Slice((*int32)(unsafe.Pointer(&mr.data[mr.off])), n)
		mr.off += 4 * n
		return xs
	}
	xs := make([]int32, n)
	for i := range xs {
		xs[i] = int32(binary.LittleEndian.Uint32(mr.data[mr.off+4*i:]))
	}
	mr.off += 4 * n
	return xs
}

// Err returns the first read error.
func (mr *MReader) Err() error { return mr.err }

// Check returns cond ? nil : a corruption error with the given context.
func (mr *MReader) Check(cond bool, what string) error {
	if mr.err != nil {
		return mr.err
	}
	if !cond {
		mr.fail(what)
	}
	return mr.err
}

// AlignedBuffer returns an 8-byte-aligned byte slice of length n, for
// read-everything fallbacks that must feed an MReader without an mmap
// region behind it.
func AlignedBuffer(n int) []byte {
	if n == 0 {
		return nil
	}
	words := make([]uint64, (n+7)/8)
	return unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), n)
}

// EnsureAligned returns data if its base is 8-byte aligned, or an aligned
// private copy otherwise. Mapped loads require the former; the copy keeps
// odd callers (tests, fuzzing) correct at the cost of zero-copy.
func EnsureAligned(data []byte) []byte {
	if len(data) == 0 || uintptr(unsafe.Pointer(&data[0]))&7 == 0 {
		return data
	}
	cp := AlignedBuffer(len(data))
	copy(cp, data)
	return cp
}

// Chunked runs fn over the index ranges of [0, n), split across the CPUs
// when src is a mapped reader: mapped payloads are random-access and fully
// bounds-checked up front, so validation and slicing passes over them
// parallelize trivially. Streaming sources run fn(0, n) inline, keeping
// the sequential load path exactly as it always was. fn must treat its
// range as exclusive property; Chunked waits for all chunks.
func Chunked(src Source, n int, fn func(lo, hi int)) {
	const minChunk = 1 << 16
	workers := runtime.GOMAXPROCS(0)
	if _, mapped := src.(*MReader); !mapped || workers == 1 || n < 2*minChunk {
		fn(0, n)
		return
	}
	if workers > n/minChunk {
		workers = n / minChunk
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := n*w/workers, n*(w+1)/workers
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn(lo, hi)
		}()
	}
	wg.Wait()
}

// --- Mapped container ---

// MappedFile walks the sections of an aligned container held in memory,
// mirroring FileReader over a buffer. Sections decode through MReaders, so
// payloads alias the buffer.
type MappedFile struct {
	data    []byte
	pos     int
	version uint16
	aligned bool
}

// ErrNotMappable reports a container whose format version predates the
// aligned layout: its payloads are not alignment-padded, so it cannot be
// aliased and must be loaded through the copying path instead.
var ErrNotMappable = fmt.Errorf("persist: container version predates the aligned layout")

// OpenMappedContainer checks the magic and version of the container in
// data and positions a section walker at the first section. Containers
// older than alignedFrom return ErrNotMappable.
func OpenMappedContainer(data []byte, magic string, maxVersion, alignedFrom uint16) (*MappedFile, error) {
	if len(data) < len(magic)+2 {
		return nil, fmt.Errorf("%w: missing magic", ErrCorrupt)
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:len(magic)])
	}
	ver := binary.LittleEndian.Uint16(data[len(magic):])
	if ver == 0 || ver > maxVersion {
		return nil, fmt.Errorf("%w: unsupported format version %d (newest understood: %d)", ErrCorrupt, ver, maxVersion)
	}
	if alignedFrom == 0 || ver < alignedFrom {
		return nil, ErrNotMappable
	}
	mf := &MappedFile{data: data, pos: len(magic) + 2, version: ver, aligned: true}
	mf.pos += -mf.pos & 7 // header padding
	return mf, nil
}

// Version returns the container's format version.
func (mf *MappedFile) Version() uint16 { return mf.version }

// Next returns the next section's id and an MReader over its payload, or
// id 0 at the end marker.
func (mf *MappedFile) Next() (uint32, *MReader, error) {
	mf.pos += -mf.pos & 7
	if mf.pos+4 > len(mf.data) {
		return 0, nil, fmt.Errorf("%w: missing section header", ErrCorrupt)
	}
	id := binary.LittleEndian.Uint32(mf.data[mf.pos:])
	mf.pos += 4
	if id == 0 {
		return 0, nil, nil
	}
	if mf.pos+12 > len(mf.data) {
		return 0, nil, fmt.Errorf("%w: missing section header", ErrCorrupt)
	}
	length := binary.LittleEndian.Uint64(mf.data[mf.pos+4:])
	mf.pos += 12
	if length > maxLen || length > uint64(len(mf.data)-mf.pos) {
		return 0, nil, fmt.Errorf("%w: truncated section", ErrCorrupt)
	}
	payload := mf.data[mf.pos : mf.pos+int(length) : mf.pos+int(length)]
	mf.pos += int(length)
	mr := NewMReader(payload)
	return id, mr, nil
}
