package persist

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestPrimitivesRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	pw := NewWriter(&buf)
	pw.Uint64(42)
	pw.Uint32(7)
	pw.Byte(0xAB)
	pw.Int(123456)
	pw.Int32(-5)
	pw.Bytes([]byte("hello"))
	pw.Bytes(nil)
	pw.String("wörld")
	pw.Words([]uint64{1, 1 << 63, 0})
	pw.Int32s([]int32{-1, 0, 1 << 30})
	if err := pw.Flush(); err != nil {
		t.Fatal(err)
	}
	if pw.Count() != int64(buf.Len()) {
		t.Fatalf("Count=%d len=%d", pw.Count(), buf.Len())
	}

	pr := NewReader(&buf)
	if v := pr.Uint64(); v != 42 {
		t.Fatalf("Uint64=%d", v)
	}
	if v := pr.Uint32(); v != 7 {
		t.Fatalf("Uint32=%d", v)
	}
	if v := pr.Byte(); v != 0xAB {
		t.Fatalf("Byte=%x", v)
	}
	if v := pr.Int(); v != 123456 {
		t.Fatalf("Int=%d", v)
	}
	if v := pr.Int32(); v != -5 {
		t.Fatalf("Int32=%d", v)
	}
	if b := pr.Bytes(); string(b) != "hello" {
		t.Fatalf("Bytes=%q", b)
	}
	if b := pr.Bytes(); len(b) != 0 {
		t.Fatalf("empty Bytes=%q", b)
	}
	if s := pr.String(); s != "wörld" {
		t.Fatalf("String=%q", s)
	}
	if w := pr.Words(); len(w) != 3 || w[1] != 1<<63 {
		t.Fatalf("Words=%v", w)
	}
	if xs := pr.Int32s(); len(xs) != 3 || xs[0] != -1 || xs[2] != 1<<30 {
		t.Fatalf("Int32s=%v", xs)
	}
	if pr.Err() != nil {
		t.Fatal(pr.Err())
	}
}

func TestReaderTruncation(t *testing.T) {
	var buf bytes.Buffer
	pw := NewWriter(&buf)
	pw.Bytes(make([]byte, 1000))
	pw.Flush()
	data := buf.Bytes()
	// Every proper prefix must produce ErrCorrupt, never a panic.
	for cut := 0; cut < len(data); cut += 7 {
		pr := NewReader(bytes.NewReader(data[:cut]))
		pr.Bytes()
		if !errors.Is(pr.Err(), ErrCorrupt) {
			t.Fatalf("cut=%d err=%v", cut, pr.Err())
		}
	}
}

func TestReaderImplausibleLength(t *testing.T) {
	var buf bytes.Buffer
	pw := NewWriter(&buf)
	pw.Uint64(1 << 62) // absurd length prefix
	pw.Flush()
	pr := NewReader(&buf)
	if b := pr.Bytes(); b != nil || !errors.Is(pr.Err(), ErrCorrupt) {
		t.Fatalf("b=%v err=%v", b, pr.Err())
	}
}

func TestReaderErrorSticks(t *testing.T) {
	pr := NewReader(bytes.NewReader(nil))
	pr.Uint64()
	first := pr.Err()
	if first == nil {
		t.Fatal("expected error")
	}
	pr.Int32s()
	if pr.Err() != first {
		t.Fatal("error did not stick")
	}
}

func TestContainerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFileWriter(&buf, "MAGIC!", 3, false)
	fw.Section(1, func(pw *Writer) { pw.String("one") })
	fw.Section(9, func(pw *Writer) { pw.Int(99) })
	fw.Section(2, func(pw *Writer) { pw.Words([]uint64{5, 6}) })
	n, err := fw.Close()
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("Close reported %d bytes, wrote %d", n, buf.Len())
	}

	fr, err := NewFileReader(&buf, "MAGIC!", 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Version() != 3 {
		t.Fatalf("version=%d", fr.Version())
	}
	id, pr, err := fr.Next()
	if err != nil || id != 1 || pr.String() != "one" {
		t.Fatalf("section 1: id=%d err=%v", id, err)
	}
	// Section 9 is "unknown": skip it without reading the payload.
	id, _, err = fr.Next()
	if err != nil || id != 9 {
		t.Fatalf("section 9: id=%d err=%v", id, err)
	}
	id, pr, err = fr.Next()
	if err != nil || id != 2 {
		t.Fatalf("section 2: id=%d err=%v", id, err)
	}
	if w := pr.Words(); len(w) != 2 || w[0] != 5 {
		t.Fatalf("section 2 payload: %v", w)
	}
	id, _, err = fr.Next()
	if err != nil || id != 0 {
		t.Fatalf("end: id=%d err=%v", id, err)
	}
}

func TestContainerBadHeader(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFileWriter(&buf, "MAGIC!", 2, false)
	fw.Section(1, func(pw *Writer) { pw.Int(1) })
	fw.Close()
	data := buf.Bytes()

	if _, err := NewFileReader(bytes.NewReader([]byte("WRONG!....")), "MAGIC!", 2, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: %v", err)
	}
	if _, err := NewFileReader(bytes.NewReader(data), "MAGIC!", 1, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("future version: %v", err)
	}
	if _, err := NewFileReader(bytes.NewReader(data[:3]), "MAGIC!", 2, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated magic: %v", err)
	}
}

func TestContainerTruncatedSection(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFileWriter(&buf, "MAGIC!", 1, false)
	fw.Section(1, func(pw *Writer) { pw.Bytes(make([]byte, 500)) })
	fw.Section(2, func(pw *Writer) { pw.Int(2) })
	fw.Close()
	data := buf.Bytes()
	// Every proper prefix of the stream must surface ErrCorrupt somewhere —
	// at the header, at a section header, or inside a payload read.
	for cut := 0; cut < len(data); cut++ {
		fr, err := NewFileReader(bytes.NewReader(data[:cut]), "MAGIC!", 1, 0)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("cut=%d header err=%v", cut, err)
			}
			continue
		}
		detected := false
		for {
			id, pr, err := fr.Next()
			if err != nil {
				detected = errors.Is(err, ErrCorrupt)
				break
			}
			if id == 0 {
				break
			}
			pr.Bytes() // drive a payload read into the cut
			if pr.Err() != nil {
				detected = true
				break
			}
		}
		if !detected {
			t.Fatalf("cut=%d: truncation not detected", cut)
		}
	}
}

// limitedWriter fails after n bytes, exercising the write-error path.
type limitedWriter struct{ n int }

func (lw *limitedWriter) Write(p []byte) (int, error) {
	if lw.n <= 0 {
		return 0, io.ErrClosedPipe
	}
	k := min(len(p), lw.n)
	lw.n -= k
	if k < len(p) {
		return k, io.ErrClosedPipe
	}
	return k, nil
}

func TestWriterErrorSticks(t *testing.T) {
	pw := NewWriter(&limitedWriter{n: 4})
	pw.Words(make([]uint64, 1<<16))
	if err := pw.Flush(); err == nil {
		t.Fatal("expected write error")
	}
	if pw.Err() == nil {
		t.Fatal("Err not sticky")
	}
}
