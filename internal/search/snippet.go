package search

import (
	"bytes"
	"context"
	"strings"

	"repro/internal/wordindex"
)

// maxSnippetScan bounds the document bytes a snippet extraction may scan
// linearly when the FM-index cannot answer (word terms are case-folded,
// the FM-index matches raw bytes): snippets are presentation, not
// correctness, so a pathological document costs a bounded amount of work
// and simply yields no snippet.
const maxSnippetScan = 1 << 20

// SnippetWidth is the default snippet window in bytes.
const SnippetWidth = 160

// Snippet extracts a short text window around the first occurrence of the
// first query term in the document behind dp, preferring the FM-index
// (exact bytes, O(term) to find the texts containing it) and falling back
// to a bounded case-insensitive scan of the text store. It returns ""
// when the postings carry no document or nothing matches within the scan
// budget.
func Snippet(ctx context.Context, dp *DocPostings, terms []Term, width int) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	d := dp.doc
	if d == nil || len(terms) == 0 {
		return "", nil
	}
	if width <= 0 {
		width = SnippetWidth
	}
	pat := []byte(terms[0].Text)

	// FM first: for phrases the raw bytes are the exact match; for word
	// terms the folded token still matches documents that use it in
	// lowercase, which is the common case.
	if fm := d.FM; fm != nil {
		ids := fm.Contains(pat)
		polls := 0
		for _, id := range ids {
			if err := pollCtx(ctx, &polls); err != nil {
				return "", err
			}
			text := d.Text(id)
			if at := bytes.Index(text, pat); at >= 0 {
				return window(text, at, len(pat), width), nil
			}
		}
	}

	// Bounded fallback: scan texts in order, folding case, until the term
	// appears or the budget runs out.
	scanned := 0
	polls := 0
	for id := 0; id < d.NumTexts(); id++ {
		if err := pollCtx(ctx, &polls); err != nil {
			return "", err
		}
		text := d.Text(id)
		if at := foldIndex(text, pat); at >= 0 {
			return window(text, at, len(pat), width), nil
		}
		scanned += len(text)
		if scanned > maxSnippetScan {
			break
		}
	}
	return "", nil
}

// foldIndex returns the first index of pat in text under ASCII case
// folding, or -1. pat must already be folded (query tokens are).
func foldIndex(text, pat []byte) int {
	if len(pat) == 0 || len(text) < len(pat) {
		return -1
	}
	for i := 0; i+len(pat) <= len(text); i++ {
		if foldByte(text[i]) != pat[0] {
			continue
		}
		j := 1
		for j < len(pat) && foldByte(text[i+j]) == pat[j] {
			j++
		}
		if j == len(pat) {
			return i
		}
	}
	return -1
}

// window cuts a width-byte window of text centered on the match at
// [at, at+n), snapped outward to word boundaries and marked with
// ellipses where the text continues.
func window(text []byte, at, n, width int) string {
	lo := at - (width-n)/2
	if lo < 0 {
		lo = 0
	}
	hi := lo + width
	if hi > len(text) {
		hi = len(text)
		if lo = hi - width; lo < 0 {
			lo = 0
		}
	}
	// Snap to word boundaries so the window never opens or closes
	// mid-word (or mid-rune: continuation bytes are word bytes).
	for lo > 0 && lo < at && wordindex.IsWordByte(text[lo]) && wordindex.IsWordByte(text[lo-1]) {
		lo++
	}
	for hi < len(text) && hi > at+n && wordindex.IsWordByte(text[hi-1]) && wordindex.IsWordByte(text[hi]) {
		hi--
	}
	s := strings.TrimSpace(string(text[lo:hi]))
	if lo > 0 {
		s = "…" + s
	}
	if hi < len(text) {
		s += "…"
	}
	return s
}
