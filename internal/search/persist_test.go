package search

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/persist"
)

func checkSameIndex(t *testing.T, got, want *Index) {
	t.Helper()
	gs, ws := got.Snapshot(), want.Snapshot()
	if len(gs.Docs) != len(ws.Docs) || gs.Total != ws.Total {
		t.Fatalf("dimensions: %d docs/%d tokens, want %d/%d", len(gs.Docs), gs.Total, len(ws.Docs), ws.Total)
	}
	for name, wdp := range ws.Docs {
		gdp, ok := gs.Docs[name]
		if !ok {
			t.Fatalf("document %q missing", name)
		}
		if gdp.Tokens() != wdp.Tokens() || gdp.NumTerms() != wdp.NumTerms() {
			t.Fatalf("document %q dimensions differ", name)
		}
		for i := 0; i < wdp.NumTerms(); i++ {
			term := string(wdp.term(i))
			if gdp.TF(term) != wdp.TF(term) {
				t.Fatalf("document %q TF(%q) = %d, want %d", name, term, gdp.TF(term), wdp.TF(term))
			}
		}
	}
}

func TestPostingsSaveLoadRoundTrip(t *testing.T) {
	ix := testIndex()
	ix.Add("empty", postingsFromText(""))
	var buf bytes.Buffer
	if _, err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !IsPostingsData(buf.Bytes()) {
		t.Fatal("IsPostingsData = false on saved data")
	}
	got, err := LoadIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	checkSameIndex(t, got, ix)

	// The mapped path reads the same bytes without copying the columns.
	mapped, err := LoadIndexMapped(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	checkSameIndex(t, mapped, ix)
	mdp := mapped.Snapshot().Docs["a"]
	if len(mdp.blob) > 0 {
		data := buf.Bytes()
		if &mdp.blob[0] != &data[bytes.Index(data, mdp.blob)] {
			t.Fatal("mapped postings copied the term blob")
		}
	}
}

func TestOpenIndexFile(t *testing.T) {
	ix := testIndex()
	path := filepath.Join(t.TempDir(), "postings.sxsp")
	n, err := ix.SaveFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != n {
		t.Fatalf("stat: %v, size %d != %d", err, fi.Size(), n)
	}
	got, err := OpenIndexFile(path)
	if err != nil {
		t.Fatal(err)
	}
	checkSameIndex(t, got, ix)
	for name, dp := range got.Snapshot().Docs {
		if dp.backing == nil {
			t.Fatalf("document %q does not pin the mapping", name)
		}
	}
}

func TestPostingsLoadTruncated(t *testing.T) {
	var buf bytes.Buffer
	if _, err := testIndex().Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := 0; cut < len(data); cut++ {
		if _, err := LoadIndex(bytes.NewReader(data[:cut])); !errors.Is(err, persist.ErrCorrupt) {
			t.Fatalf("cut=%d err=%v", cut, err)
		}
	}
}

func TestPostingsLoadBitFlips(t *testing.T) {
	var buf bytes.Buffer
	if _, err := testIndex().Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// No single-byte corruption may panic or load as something structurally
	// invalid; anything that fails must fail as ErrCorrupt.
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xFF
		ix, err := LoadIndex(bytes.NewReader(mut))
		if err != nil {
			if !errors.Is(err, persist.ErrCorrupt) {
				t.Fatalf("byte %d: unexpected error type %v", i, err)
			}
			continue
		}
		// A flip that still loads (e.g. inside a term's bytes) must still
		// satisfy the structural invariants readDoc checks.
		s := ix.Snapshot()
		var total int64
		for _, dp := range s.Docs {
			total += dp.Tokens()
		}
		if total != s.Total {
			t.Fatalf("byte %d: inconsistent totals after benign flip", i)
		}
	}
}

func TestSaveIsDeterministic(t *testing.T) {
	ix := testIndex()
	var a, b bytes.Buffer
	if _, err := ix.Save(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("Save output differs between runs")
	}
}
