// Package search is the collection-scale ranked full-text tier: a global
// word/posting index over every document registered in a collection,
// answering "which documents match these terms" before any structural
// XPath runs, with BM25 top-k ranking and snippet extraction. Per-document
// postings (term frequencies plus the document's token count) are built
// from the engine's text store as documents register; the collection tier
// (package collection) keeps the index in sync across Add/Open/Reload and
// runs candidate scoring on its bounded worker pool.
//
// Word terms are matched at word boundaries, case-folded (ASCII); phrase
// terms — quoted in the query — bypass the posting index and are counted
// with one FM-index backward search per document, so they match exact
// substrings at full-text granularity.
package search

import (
	"fmt"
	"strings"

	"repro/internal/wordindex"
)

// MaxTokenBytes caps a single token: a word run longer than this indexes
// (and queries) as its first MaxTokenBytes bytes, so adversarial inputs —
// megabyte-long "words" in either a document or a query — cost a bounded
// amount of dictionary space and comparison work. Both sides of a lookup
// apply the same cap, so truncation never breaks matching.
const MaxTokenBytes = 64

// MaxQueryTerms caps the number of terms in one parsed query; scoring work
// is linear in it.
const MaxQueryTerms = 32

// foldByte lowercases ASCII letters; other bytes (including UTF-8
// continuation bytes) pass through, so folding is byte-exact and cheap.
// Full Unicode case folding is deliberately out of scope: the FM-index
// below matches raw bytes anyway.
func foldByte(c byte) byte {
	if c >= 'A' && c <= 'Z' {
		return c + ('a' - 'A')
	}
	return c
}

// foldToken folds one word run and applies the token cap.
func foldToken(text []byte, start, end int) string {
	if end-start > MaxTokenBytes {
		end = start + MaxTokenBytes
	}
	b := make([]byte, end-start)
	for i := start; i < end; i++ {
		b[i-start] = foldByte(text[i])
	}
	return string(b)
}

// Tokenize splits text into search tokens: the word boundaries of
// wordindex.ScanWords (letter/digit runs, bytes ≥ 0x80 included), each
// token ASCII-case-folded and capped at MaxTokenBytes. The same function
// tokenizes documents and queries, so lookups agree with the index by
// construction.
func Tokenize(text []byte) []string {
	var tokens []string
	wordindex.ScanWords(text, func(start, end int) {
		tokens = append(tokens, foldToken(text, start, end))
	})
	return tokens
}

// Term is one unit of a parsed search query: either a single folded word
// (matched through the posting index) or a quoted phrase (matched as an
// exact substring through each document's FM-index).
type Term struct {
	// Text is the match key: the folded token for a word term, the raw
	// quoted content for a phrase term.
	Text string
	// Phrase marks a quoted term.
	Phrase bool
}

func (t Term) String() string {
	if t.Phrase {
		return `"` + t.Text + `"`
	}
	return t.Text
}

// ParseQuery splits a query string into terms: whitespace-separated words
// (each tokenized, so punctuation splits them further) and double-quoted
// phrases. A quoted phrase whose content tokenizes to a single word is
// demoted to a plain word term — the FM-index detour would only cost
// accuracy (no case folding) for no gain in precision. Queries with no
// terms at all, an unterminated quote, or more than MaxQueryTerms terms
// are errors.
func ParseQuery(q string) ([]Term, error) {
	var terms []Term
	add := func(t Term) error {
		if len(terms) >= MaxQueryTerms {
			return fmt.Errorf("search: query has more than %d terms", MaxQueryTerms)
		}
		terms = append(terms, t)
		return nil
	}
	i := 0
	for i < len(q) {
		switch c := q[i]; {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '"':
			end := strings.IndexByte(q[i+1:], '"')
			if end < 0 {
				return nil, fmt.Errorf("search: unterminated quote in query")
			}
			inner := q[i+1 : i+1+end]
			i += end + 2
			toks := Tokenize([]byte(inner))
			switch len(toks) {
			case 0: // empty or separator-only quotes: nothing to match
			case 1:
				if err := add(Term{Text: toks[0]}); err != nil {
					return nil, err
				}
			default:
				if err := add(Term{Text: strings.TrimSpace(inner), Phrase: true}); err != nil {
					return nil, err
				}
			}
		default:
			end := i
			for end < len(q) && q[end] != ' ' && q[end] != '\t' && q[end] != '\n' && q[end] != '\r' && q[end] != '"' {
				end++
			}
			for _, tok := range Tokenize([]byte(q[i:end])) {
				if err := add(Term{Text: tok}); err != nil {
					return nil, err
				}
			}
			i = end
		}
	}
	if len(terms) == 0 {
		return nil, fmt.Errorf("search: empty query")
	}
	return terms, nil
}
