package search

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"

	"repro/internal/mmap"
	"repro/internal/persist"
)

// On-disk layout: an aligned v3-style persist container (the same section
// framing every other structure uses), magic "SXSIPOST". Section 1 is the
// metadata (document count, total token count); each document is its own
// section 2 — name, token count, the sorted term blob, the int32 end
// offsets and the int32 term frequencies. The aligned layout means
// OpenIndexFile can mmap the file and alias the blob and int32 payloads
// in place, like every other index structure.

// PostingsMagic identifies a saved posting index.
const PostingsMagic = "SXSIPOST"

const (
	postingsVersion     = 1
	postingsAlignedFrom = 1

	secMeta = 1
	secDoc  = 2
)

// maxDocs bounds the document count read from disk before it sizes an
// allocation; no real collection comes close.
const maxDocs = 1 << 24

// Save writes the index (a point-in-time snapshot of it) to w in
// deterministic (name-sorted) order.
func (ix *Index) Save(w io.Writer) (int64, error) {
	s := ix.Snapshot()
	names := make([]string, 0, len(s.Docs))
	for name := range s.Docs {
		names = append(names, name)
	}
	sort.Strings(names)
	fw := persist.NewFileWriter(w, PostingsMagic, postingsVersion, true)
	fw.Section(secMeta, func(pw *persist.Writer) {
		pw.Int(len(names))
		pw.Int(int(s.Total))
	})
	for _, name := range names {
		dp := s.Docs[name]
		fw.Section(secDoc, func(pw *persist.Writer) {
			pw.String(name)
			pw.Int(int(dp.tokens))
			pw.Bytes(dp.blob)
			pw.Int32s(dp.offs)
			pw.Int32s(dp.tf)
		})
	}
	return fw.Close()
}

// SaveFile writes the index to path crash-safely (temp file + fsync +
// atomic rename, like Engine.SaveFile).
func (ix *Index) SaveFile(path string) (int64, error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return 0, err
	}
	tmp := f.Name()
	if err := f.Chmod(0o644); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	n, err := ix.Save(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return n, err
	}
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return n, nil
}

// IsPostingsData reports whether data begins with the posting-index magic.
func IsPostingsData(data []byte) bool {
	return len(data) >= len(PostingsMagic) && string(data[:len(PostingsMagic)]) == PostingsMagic
}

// LoadIndex reads an index written by Save through the copying path.
func LoadIndex(r io.Reader) (*Index, error) {
	fr, err := persist.NewFileReader(r, PostingsMagic, postingsVersion, postingsAlignedFrom)
	if err != nil {
		return nil, err
	}
	return readSections(func() (uint32, persist.Source, error) { return fr.Next() })
}

// LoadIndexMapped reads an index out of data — typically a mapped file —
// aliasing the term blobs and int32 arrays in place. data must stay alive
// and unchanged for the index's whole lifetime (OpenIndexFile manages
// that automatically).
func LoadIndexMapped(data []byte) (*Index, error) {
	mf, err := persist.OpenMappedContainer(data, PostingsMagic, postingsVersion, postingsAlignedFrom)
	if err != nil {
		return nil, err
	}
	return readSections(func() (uint32, persist.Source, error) { return mf.Next() })
}

// OpenIndexFile opens a saved posting index, memory-mapped when the
// platform allows: the postings alias the mapping, which stays alive for
// as long as any postings loaded from it are reachable and is released by
// a finalizer afterwards.
func OpenIndexFile(path string) (*Index, error) {
	m, err := mmap.Open(path)
	if err != nil {
		return nil, err
	}
	ix, err := LoadIndexMapped(m.Data())
	if err != nil {
		if errors.Is(err, persist.ErrNotMappable) {
			ix, err = LoadIndex(bytes.NewReader(m.Data()))
		}
		m.Close()
		return ix, err
	}
	// Pin the mapping from every postings value handed out: snapshots may
	// outlive the Index itself. Once the last postings value is
	// unreachable, the finalizer releases the mapping.
	runtime.SetFinalizer(m, (*mmap.File).Close)
	ix.mu.Lock()
	for _, dp := range ix.docs {
		dp.backing = m
	}
	ix.mu.Unlock()
	return ix, nil
}

// readSections decodes the container sections into an Index. The documents
// accumulate in a local map and are installed under the lock in one step,
// so the Index is never observable half-filled.
func readSections(next func() (uint32, persist.Source, error)) (*Index, error) {
	docs := make(map[string]*DocPostings)
	var total int64
	sawMeta := false
	wantDocs := 0
	var wantTotal int64
	for {
		id, pr, err := next()
		if err != nil {
			return nil, err
		}
		if id == 0 {
			break
		}
		switch id {
		case secMeta:
			if sawMeta {
				return nil, fmt.Errorf("%w: duplicate postings metadata", persist.ErrCorrupt)
			}
			sawMeta = true
			wantDocs = pr.Int()
			wantTotal = int64(pr.Int())
			if err := pr.Check(wantDocs >= 0 && wantDocs <= maxDocs && wantTotal >= 0,
				"postings metadata out of range"); err != nil {
				return nil, err
			}
		case secDoc:
			dp, name, err := readDoc(pr)
			if err != nil {
				return nil, err
			}
			if _, dup := docs[name]; dup {
				return nil, fmt.Errorf("%w: duplicate postings document %q", persist.ErrCorrupt, name)
			}
			docs[name] = dp
			total += dp.tokens
		default:
			// Unknown section from a future minor revision: skip.
		}
		if err := pr.Err(); err != nil {
			return nil, err
		}
	}
	if !sawMeta {
		return nil, fmt.Errorf("%w: postings metadata missing", persist.ErrCorrupt)
	}
	if len(docs) != wantDocs || total != wantTotal {
		return nil, fmt.Errorf("%w: postings metadata disagrees with sections", persist.ErrCorrupt)
	}
	ix := NewIndex()
	ix.mu.Lock()
	ix.docs = docs
	ix.total = total
	ix.mu.Unlock()
	return ix, nil
}

// readDoc decodes and validates one document section.
func readDoc(pr persist.Source) (*DocPostings, string, error) {
	name := pr.String()
	tokens := pr.Int()
	dp := &DocPostings{
		blob:   pr.Bytes(),
		offs:   pr.Int32s(),
		tf:     pr.Int32s(),
		tokens: int64(tokens),
	}
	if err := pr.Err(); err != nil {
		return nil, "", err
	}
	if err := pr.Check(name != "" && tokens >= 0, "bad postings document header"); err != nil {
		return nil, "", err
	}
	if err := pr.Check(len(dp.tf) == len(dp.offs), "postings array lengths mismatch"); err != nil {
		return nil, "", err
	}
	var sum int64
	prev := int32(0)
	for i, off := range dp.offs {
		if off <= prev || int(off) > len(dp.blob) {
			return nil, "", fmt.Errorf("%w: postings term offsets not increasing", persist.ErrCorrupt)
		}
		if i > 0 && bytes.Compare(dp.term(i-1), dp.term(i)) >= 0 {
			return nil, "", fmt.Errorf("%w: postings terms not sorted", persist.ErrCorrupt)
		}
		if dp.tf[i] <= 0 {
			return nil, "", fmt.Errorf("%w: nonpositive term frequency", persist.ErrCorrupt)
		}
		sum += int64(dp.tf[i])
		prev = off
	}
	if len(dp.offs) > 0 && int(dp.offs[len(dp.offs)-1]) != len(dp.blob) {
		return nil, "", fmt.Errorf("%w: postings blob length mismatch", persist.ErrCorrupt)
	}
	if len(dp.offs) == 0 && len(dp.blob) != 0 {
		return nil, "", fmt.Errorf("%w: postings blob without terms", persist.ErrCorrupt)
	}
	if sum != dp.tokens {
		return nil, "", fmt.Errorf("%w: postings token count disagrees with frequencies", persist.ErrCorrupt)
	}
	return dp, name, nil
}
