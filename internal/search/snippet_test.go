package search_test

// External test package: these tests exercise the postings/snippet path
// through a real engine (core imports search, so the integration can only
// live outside package search).

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/search"
)

func buildEngine(t *testing.T, xml string) *core.Engine {
	t.Helper()
	eng, err := core.Build([]byte(xml), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestEnginePostings(t *testing.T) {
	eng := buildEngine(t, `<doc><p>Gold rush</p><p>gold mine, Gold!</p></doc>`)
	dp := eng.Postings()
	if dp.Doc() != eng.Doc {
		t.Fatal("postings not attached to the engine's document")
	}
	if got := dp.TF("gold"); got != 3 {
		t.Fatalf("TF(gold) = %d", got)
	}
	if got := dp.TF("mine"); got != 1 {
		t.Fatalf("TF(mine) = %d", got)
	}
	if dp.Tokens() != 5 {
		t.Fatalf("Tokens = %d", dp.Tokens())
	}
	// Postings are built once and cached on the engine.
	if eng.Postings() != dp {
		t.Fatal("Postings rebuilt")
	}
}

func TestSnippet(t *testing.T) {
	eng := buildEngine(t, `<doc><p>nothing here</p><p>the famous gold rush of 1849 changed everything</p></doc>`)
	terms, err := search.ParseQuery("gold")
	if err != nil {
		t.Fatal(err)
	}
	snip, err := search.Snippet(context.Background(), eng.Postings(), terms, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(snip, "gold rush") {
		t.Fatalf("snippet %q does not show the match", snip)
	}
	if len(snip) > 40+2*len("…") {
		t.Fatalf("snippet too wide: %d bytes", len(snip))
	}
}

func TestSnippetCaseFoldedFallback(t *testing.T) {
	// The FM-index matches raw bytes; the folded query token "gold" only
	// appears capitalized, so the bounded folding scan must find it.
	eng := buildEngine(t, `<doc><p>The Gold Rush</p></doc>`)
	terms, _ := search.ParseQuery("gold")
	snip, err := search.Snippet(context.Background(), eng.Postings(), terms, 80)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(snip, "Gold Rush") {
		t.Fatalf("snippet = %q", snip)
	}
}

func TestSnippetNoMatch(t *testing.T) {
	eng := buildEngine(t, `<doc><p>nothing relevant</p></doc>`)
	terms, _ := search.ParseQuery("absent")
	snip, err := search.Snippet(context.Background(), eng.Postings(), terms, 80)
	if err != nil {
		t.Fatal(err)
	}
	if snip != "" {
		t.Fatalf("snippet = %q, want empty", snip)
	}
}
