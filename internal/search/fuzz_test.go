package search

import (
	"strings"
	"testing"
)

// FuzzSearchQuery pins the query-parsing contract on arbitrary input:
// ParseQuery either errors or yields 1..MaxQueryTerms terms whose word
// texts are folded, capped tokens, and whose rendered form re-parses to
// the same terms (so reports echoing rep.Terms are faithful). Run with
// `go test -fuzz FuzzSearchQuery ./internal/search`; a plain `go test`
// executes the seed corpus as regression cases.
func FuzzSearchQuery(f *testing.F) {
	for _, s := range []string{
		"gold",
		"Gold Rush",
		`ocean "coral reef" deep`,
		`"crude oil" market`,
		`"Gold"`,
		`"" gold`,
		`a"b c"d`,
		"",
		"   \t\n ",
		`"unterminated`,
		`""`,
		`"""`,
		"foo-bar_baz x86",
		"naïve café",                          // unicode word bytes
		"\xff\xfe\x80",                        // invalid UTF-8 is still bytes
		strings.Repeat("a", 10000),            // giant token
		strings.Repeat("a ", 100),             // too many terms
		`"` + strings.Repeat("b ", 100) + `"`, // giant phrase
		"日本語 テスト",
		"a\x00b",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, q string) {
		terms, err := ParseQuery(q)
		if err != nil {
			return
		}
		if len(terms) == 0 || len(terms) > MaxQueryTerms {
			t.Fatalf("ParseQuery(%q): %d terms", q, len(terms))
		}
		for _, tm := range terms {
			if tm.Text == "" {
				t.Fatalf("ParseQuery(%q): empty term", q)
			}
			if !tm.Phrase {
				if len(tm.Text) > MaxTokenBytes {
					t.Fatalf("ParseQuery(%q): word term %d bytes", q, len(tm.Text))
				}
				if toks := Tokenize([]byte(tm.Text)); len(toks) != 1 || toks[0] != tm.Text {
					t.Fatalf("ParseQuery(%q): word term %q not a canonical token", q, tm.Text)
				}
			} else if strings.ContainsRune(tm.Text, '"') {
				t.Fatalf("ParseQuery(%q): phrase %q contains a quote", q, tm.Text)
			}
		}
		// Round-trip: rendering the terms and re-parsing them must be a
		// fixed point.
		parts := make([]string, len(terms))
		for i, tm := range terms {
			parts[i] = tm.String()
		}
		again, err := ParseQuery(strings.Join(parts, " "))
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", strings.Join(parts, " "), err)
		}
		if len(again) != len(terms) {
			t.Fatalf("re-parse of %q: %d terms, want %d", strings.Join(parts, " "), len(again), len(terms))
		}
		for i := range terms {
			if again[i] != terms[i] {
				t.Fatalf("re-parse term %d: %+v, want %+v", i, again[i], terms[i])
			}
		}
	})
}
