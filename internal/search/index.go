package search

import (
	"context"
	"math"
	"sort"
	"sync"
)

// Index is the collection-level posting index: one DocPostings per
// registered document. All methods are safe for concurrent use; readers
// work on snapshots, so a document swap mid-search never mixes old and
// new postings within one query.
type Index struct {
	mu    sync.RWMutex
	docs  map[string]*DocPostings // guarded by mu
	total int64                   // guarded by mu; sum of per-doc token counts
}

// NewIndex creates an empty posting index.
func NewIndex() *Index {
	return &Index{docs: map[string]*DocPostings{}}
}

// Add registers (or replaces) the postings of one document. The swap is a
// pointer flip: searches that already snapshotted the index keep scoring
// the old postings.
func (ix *Index) Add(name string, dp *DocPostings) {
	ix.mu.Lock()
	if old, ok := ix.docs[name]; ok {
		ix.total -= old.tokens
	}
	ix.docs[name] = dp
	ix.total += dp.tokens
	ix.mu.Unlock()
}

// Remove drops a document's postings; it reports whether they existed.
func (ix *Index) Remove(name string) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	dp, ok := ix.docs[name]
	if ok {
		ix.total -= dp.tokens
		delete(ix.docs, name)
	}
	return ok
}

// Len returns the number of indexed documents.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.docs)
}

// Snapshot is a point-in-time view of the index: the document→postings
// map (postings values are immutable) and the aggregate token count.
// Scoring a snapshot is unaffected by concurrent Add/Remove.
type Snapshot struct {
	Docs  map[string]*DocPostings
	Total int64
}

// Snapshot copies the current registry (O(docs) pointer copies).
func (ix *Index) Snapshot() Snapshot {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	s := Snapshot{Docs: make(map[string]*DocPostings, len(ix.docs)), Total: ix.total}
	for name, dp := range ix.docs {
		s.Docs[name] = dp
	}
	return s
}

// AvgLen returns the average document length in tokens (1 when the
// snapshot is empty or all-empty, so BM25 normalization never divides by
// zero).
func (s Snapshot) AvgLen() float64 {
	if len(s.Docs) == 0 || s.Total == 0 {
		return 1
	}
	return float64(s.Total) / float64(len(s.Docs))
}

// pollStride bounds how many documents a scoring loop may process between
// context polls.
const pollStride = 256

// pollCtx is the shared cancellation poll of the scoring loops: it checks
// ctx every pollStride increments of *n.
func pollCtx(ctx context.Context, n *int) error {
	*n++
	if *n%pollStride == 0 {
		return ctx.Err()
	}
	return nil
}

// Candidates returns, sorted by name, the snapshot documents whose
// postings contain every word term of the query (phrase terms are
// resolved later, against the FM-index of each candidate). With no word
// terms at all, every document is a candidate.
func Candidates(ctx context.Context, s Snapshot, terms []Term) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var words []string
	polls := 0
	for _, t := range terms {
		if err := pollCtx(ctx, &polls); err != nil {
			return nil, err
		}
		if !t.Phrase {
			words = append(words, t.Text)
		}
	}
	cands := make([]string, 0, len(s.Docs))
	for name, dp := range s.Docs {
		if err := pollCtx(ctx, &polls); err != nil {
			return nil, err
		}
		ok := true
		for _, w := range words {
			if dp.TF(w) == 0 {
				ok = false
				break
			}
		}
		if ok {
			cands = append(cands, name)
		}
	}
	sort.Strings(cands)
	return cands, nil
}

// BM25 parameters (the standard Robertson/Walker defaults).
const (
	bm25K1 = 1.2
	bm25B  = 0.75
)

// idf is the BM25 inverse document frequency of a term appearing in df of
// n documents: ln(1 + (n-df+0.5)/(df+0.5)), always positive.
func idf(n, df int) float64 {
	return math.Log(1 + (float64(n)-float64(df)+0.5)/(float64(df)+0.5))
}

// bm25Term is one term's score contribution given its frequency tf in a
// document of length dl tokens.
func bm25Term(tf int64, termIDF, dl, avgdl float64) float64 {
	if tf == 0 {
		return 0
	}
	f := float64(tf)
	return termIDF * f * (bm25K1 + 1) / (f + bm25K1*(1-bm25B+bm25B*dl/avgdl))
}

// DocScore is one ranked document.
type DocScore struct {
	Doc      string
	Score    float64
	Postings *DocPostings
}

// Rank scores the candidate documents against the query terms with BM25
// and returns every candidate that matches all terms, best first (ties
// broken by document name, so rankings are deterministic).
//
// Word-term frequencies come from the snapshot postings and their
// document frequencies are counted over the whole snapshot; phrase-term
// frequencies come from phraseTF — per candidate, one count per phrase
// term in query order, produced by the collection tier from each
// document's FM-index — and their document frequencies are counted over
// the candidate set (the only documents the substring counts exist for).
// Candidates with a zero count for any term drop out: the tier answers
// conjunctive queries.
func Rank(ctx context.Context, s Snapshot, terms []Term, cands []string, phraseTF map[string][]int64) ([]DocScore, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	avgdl := s.AvgLen()
	n := len(s.Docs)

	// Document frequencies: words over the snapshot, phrases over the
	// candidate set.
	termIDF := make([]float64, len(terms))
	polls := 0
	for ti, t := range terms {
		if t.Phrase {
			df := 0
			for _, name := range cands {
				if err := pollCtx(ctx, &polls); err != nil {
					return nil, err
				}
				counts := phraseTF[name]
				if pi := phraseIndex(terms, ti); pi < len(counts) && counts[pi] > 0 {
					df++
				}
			}
			termIDF[ti] = idf(len(cands), df)
			continue
		}
		df := 0
		for _, dp := range s.Docs {
			if err := pollCtx(ctx, &polls); err != nil {
				return nil, err
			}
			if dp.TF(t.Text) > 0 {
				df++
			}
		}
		termIDF[ti] = idf(n, df)
	}

	scored := make([]DocScore, 0, len(cands))
	for _, name := range cands {
		if err := pollCtx(ctx, &polls); err != nil {
			return nil, err
		}
		dp := s.Docs[name]
		if dp == nil {
			continue
		}
		dl := float64(dp.tokens)
		score := 0.0
		matched := true
		for ti, t := range terms {
			var tf int64
			if t.Phrase {
				counts := phraseTF[name]
				if pi := phraseIndex(terms, ti); pi < len(counts) {
					tf = counts[pi]
				}
			} else {
				tf = int64(dp.TF(t.Text))
			}
			if tf == 0 {
				matched = false
				break
			}
			score += bm25Term(tf, termIDF[ti], dl, avgdl)
		}
		if matched {
			scored = append(scored, DocScore{Doc: name, Score: score, Postings: dp})
		}
	}
	sort.Slice(scored, func(i, j int) bool {
		if scored[i].Score != scored[j].Score {
			return scored[i].Score > scored[j].Score
		}
		return scored[i].Doc < scored[j].Doc
	})
	return scored, nil
}

// phraseIndex returns the index of term ti among the phrase terms of the
// query (the row of phraseTF counts it reads).
func phraseIndex(terms []Term, ti int) int {
	pi := 0
	for i := 0; i < ti; i++ {
		if terms[i].Phrase {
			pi++
		}
	}
	return pi
}

// Phrases returns the phrase terms of a parsed query, in order.
func Phrases(terms []Term) []Term {
	var ps []Term
	for _, t := range terms {
		if t.Phrase {
			ps = append(ps, t)
		}
	}
	return ps
}
