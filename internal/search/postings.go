package search

import (
	"bytes"
	"sort"

	"repro/internal/mmap"
	"repro/internal/xmltree"
)

// DocPostings is one document's slice of the posting index: its distinct
// search tokens in sorted order with their term frequencies, plus the
// document's total token count (the BM25 document length). The structure
// is immutable once built — the collection tier swaps whole values on
// reload, never mutates one in place — so readers need no locking.
//
// Layout is columnar and mmap-friendly: the sorted terms live
// concatenated in one blob with int32 end offsets, term frequencies in a
// parallel int32 array. Term i is blob[offs[i-1]:offs[i]] (offs[-1] = 0).
type DocPostings struct {
	blob   []byte
	offs   []int32
	tf     []int32
	tokens int64

	// doc is the runtime attachment to the document the postings were
	// built from: phrase counting and snippet extraction run against
	// exactly this document, so a search that snapshotted the index before
	// a hot reload stays internally consistent. Not persisted.
	doc *xmltree.Doc

	// backing pins the mapped file the columnar payloads alias, for
	// postings loaded through OpenIndexFile; nil otherwise.
	backing *mmap.File
}

// BuildDoc tokenizes every text of d and builds its postings. The
// returned postings carry d for phrase counting and snippets.
func BuildDoc(d *xmltree.Doc) *DocPostings {
	counts := map[string]int32{}
	var tokens int64
	for id := 0; id < d.NumTexts(); id++ {
		for _, tok := range Tokenize(d.Text(id)) {
			counts[tok]++
			tokens++
		}
	}
	dp := fromCounts(counts, tokens)
	dp.doc = d
	return dp
}

// fromCounts freezes a term→frequency map into the columnar layout.
func fromCounts(counts map[string]int32, tokens int64) *DocPostings {
	terms := make([]string, 0, len(counts))
	for t := range counts {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	dp := &DocPostings{
		offs:   make([]int32, len(terms)),
		tf:     make([]int32, len(terms)),
		tokens: tokens,
	}
	var size int
	for _, t := range terms {
		size += len(t)
	}
	dp.blob = make([]byte, 0, size)
	for i, t := range terms {
		dp.blob = append(dp.blob, t...)
		dp.offs[i] = int32(len(dp.blob))
		dp.tf[i] = counts[t]
	}
	return dp
}

// NumTerms returns the number of distinct tokens in the document.
func (dp *DocPostings) NumTerms() int { return len(dp.offs) }

// Tokens returns the document's total token count (the BM25 length).
func (dp *DocPostings) Tokens() int64 { return dp.tokens }

// Doc returns the document the postings were built from (nil for
// postings loaded from disk before WithDoc re-attached one).
func (dp *DocPostings) Doc() *xmltree.Doc { return dp.doc }

// WithDoc returns a copy of the postings attached to d; the columnar
// payloads are shared, so the copy is cheap and a mapped load stays
// mapped.
func (dp *DocPostings) WithDoc(d *xmltree.Doc) *DocPostings {
	cp := *dp
	cp.doc = d
	return &cp
}

// term returns the i-th sorted term as a byte slice into the blob.
func (dp *DocPostings) term(i int) []byte {
	start := int32(0)
	if i > 0 {
		start = dp.offs[i-1]
	}
	return dp.blob[start:dp.offs[i]]
}

// TF returns the term frequency of the (folded) token, 0 when absent.
func (dp *DocPostings) TF(token string) int32 {
	i := sort.Search(len(dp.offs), func(i int) bool {
		return bytes.Compare(dp.term(i), []byte(token)) >= 0
	})
	if i < len(dp.offs) && string(dp.term(i)) == token {
		return dp.tf[i]
	}
	return 0
}

// SizeInBytes reports the memory footprint of the postings.
func (dp *DocPostings) SizeInBytes() int {
	return len(dp.blob) + 4*len(dp.offs) + 4*len(dp.tf) + 48
}
