package search

import (
	"reflect"
	"strings"
	"testing"
)

func TestTokenize(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"  \t\n ", nil},
		{"Hello, World!", []string{"hello", "world"}},
		{"foo-bar_baz", []string{"foo", "bar", "baz"}}, // punctuation splits
		{"x86 is 64bit", []string{"x86", "is", "64bit"}},
		{"naïve café", []string{"naïve", "café"}}, // bytes ≥ 0x80 are word bytes
		{"MiXeD CaSe", []string{"mixed", "case"}},
	} {
		if got := Tokenize([]byte(tc.in)); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestTokenizeCapsGiantTokens(t *testing.T) {
	giant := strings.Repeat("a", 3*MaxTokenBytes)
	toks := Tokenize([]byte("x " + giant + " y"))
	if len(toks) != 3 {
		t.Fatalf("tokens = %v", toks)
	}
	if len(toks[1]) != MaxTokenBytes {
		t.Fatalf("giant token kept %d bytes, want %d", len(toks[1]), MaxTokenBytes)
	}
	// Both sides cap identically, so a truncated index entry still matches a
	// truncated query token.
	if toks[1] != strings.Repeat("a", MaxTokenBytes) {
		t.Fatalf("giant token = %q", toks[1])
	}
}

func TestParseQuery(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want []Term
	}{
		{"gold", []Term{{Text: "gold"}}},
		{"Gold Rush", []Term{{Text: "gold"}, {Text: "rush"}}},
		{"foo-bar", []Term{{Text: "foo"}, {Text: "bar"}}},
		{`"crude oil"`, []Term{{Text: "crude oil", Phrase: true}}},
		{`ocean "coral reef" deep`, []Term{{Text: "ocean"}, {Text: "coral reef", Phrase: true}, {Text: "deep"}}},
		// A single-word quote is demoted to a folded word term.
		{`"Gold"`, []Term{{Text: "gold"}}},
		// Empty or separator-only quotes contribute nothing (but the query
		// still needs at least one term overall).
		{`"" gold " , "`, []Term{{Text: "gold"}}},
		// Quotes glued to a word still separate terms.
		{`a"b c"d`, []Term{{Text: "a"}, {Text: "b c", Phrase: true}, {Text: "d"}}},
	} {
		got, err := ParseQuery(tc.in)
		if err != nil {
			t.Fatalf("ParseQuery(%q): %v", tc.in, err)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseQuery(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParseQueryErrors(t *testing.T) {
	for _, in := range []string{
		"",
		"   ",
		`"unterminated`,
		`gold "unterminated rest`,
		`"" ,,, ""`, // no terms survive
		strings.Repeat("a ", MaxQueryTerms+1),
	} {
		if terms, err := ParseQuery(in); err == nil {
			t.Errorf("ParseQuery(%q) = %v, want error", in, terms)
		}
	}
	// Exactly MaxQueryTerms is fine.
	if _, err := ParseQuery(strings.TrimSpace(strings.Repeat("a ", MaxQueryTerms))); err != nil {
		t.Fatalf("ParseQuery at the cap: %v", err)
	}
}

func TestTermString(t *testing.T) {
	if got := (Term{Text: "gold"}).String(); got != "gold" {
		t.Fatalf("word String = %q", got)
	}
	if got := (Term{Text: "crude oil", Phrase: true}).String(); got != `"crude oil"` {
		t.Fatalf("phrase String = %q", got)
	}
}
