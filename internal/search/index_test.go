package search

import (
	"context"
	"math"
	"reflect"
	"testing"
)

// postingsFromText builds one document's postings straight from a string,
// without an engine behind it (Rank and Candidates only need the columnar
// data).
func postingsFromText(text string) *DocPostings {
	counts := map[string]int32{}
	var tokens int64
	for _, tok := range Tokenize([]byte(text)) {
		counts[tok]++
		tokens++
	}
	return fromCounts(counts, tokens)
}

func testIndex() *Index {
	ix := NewIndex()
	ix.Add("a", postingsFromText("gold rush gold mine"))
	ix.Add("b", postingsFromText("silver age silver screen silver"))
	ix.Add("c", postingsFromText("gold and silver coins"))
	return ix
}

func TestPostingsTF(t *testing.T) {
	dp := postingsFromText("Gold rush GOLD mine gold")
	if got := dp.TF("gold"); got != 3 {
		t.Fatalf("TF(gold) = %d", got)
	}
	if got := dp.TF("rush"); got != 1 {
		t.Fatalf("TF(rush) = %d", got)
	}
	if got := dp.TF("absent"); got != 0 {
		t.Fatalf("TF(absent) = %d", got)
	}
	if dp.Tokens() != 5 {
		t.Fatalf("Tokens = %d", dp.Tokens())
	}
	if dp.NumTerms() != 3 {
		t.Fatalf("NumTerms = %d", dp.NumTerms())
	}
}

func TestIndexAddRemoveSnapshot(t *testing.T) {
	ix := testIndex()
	if ix.Len() != 3 {
		t.Fatalf("Len = %d", ix.Len())
	}
	s := ix.Snapshot()
	if s.Total != 4+5+4 {
		t.Fatalf("Total = %d", s.Total)
	}
	// Replacing a document adjusts the aggregate token count.
	ix.Add("a", postingsFromText("one two"))
	if got := ix.Snapshot().Total; got != 2+5+4 {
		t.Fatalf("Total after replace = %d", got)
	}
	if !ix.Remove("a") || ix.Remove("a") {
		t.Fatal("Remove semantics")
	}
	if got := ix.Snapshot().Total; got != 5+4 {
		t.Fatalf("Total after remove = %d", got)
	}
	// The earlier snapshot is unaffected by all of the above.
	if len(s.Docs) != 3 || s.Total != 13 {
		t.Fatal("snapshot mutated by later Add/Remove")
	}
}

func TestAvgLen(t *testing.T) {
	if got := (Snapshot{}).AvgLen(); got != 1 {
		t.Fatalf("empty AvgLen = %v", got)
	}
	if got := testIndex().Snapshot().AvgLen(); math.Abs(got-13.0/3) > 1e-12 {
		t.Fatalf("AvgLen = %v", got)
	}
}

func TestCandidates(t *testing.T) {
	s := testIndex().Snapshot()
	ctx := context.Background()
	for _, tc := range []struct {
		q    string
		want []string
	}{
		{"gold", []string{"a", "c"}},
		{"silver", []string{"b", "c"}},
		{"gold silver", []string{"c"}},
		{"gold absent", []string{}},
		// A phrase-only query keeps every document as a candidate: phrases
		// resolve later against each FM-index.
		{`"gold rush"`, []string{"a", "b", "c"}},
		{`silver "gold rush"`, []string{"b", "c"}},
	} {
		terms, err := ParseQuery(tc.q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Candidates(ctx, s, terms)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Candidates(%q) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestRankOrderAndConjunction(t *testing.T) {
	s := testIndex().Snapshot()
	ctx := context.Background()
	terms, _ := ParseQuery("gold")
	cands, _ := Candidates(ctx, s, terms)
	scored, err := Rank(ctx, s, terms, cands, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(scored) != 2 {
		t.Fatalf("scored = %+v", scored)
	}
	// "a" has tf=2 in 4 tokens; "c" has tf=1 in 4 tokens: same idf and
	// length, higher tf wins.
	if scored[0].Doc != "a" || scored[1].Doc != "c" {
		t.Fatalf("order = %s, %s", scored[0].Doc, scored[1].Doc)
	}
	if scored[0].Score <= scored[1].Score || scored[1].Score <= 0 {
		t.Fatalf("scores = %v, %v", scored[0].Score, scored[1].Score)
	}
	if scored[0].Postings != s.Docs["a"] {
		t.Fatal("Postings pointer not from the snapshot")
	}

	// A phrase term with zero FM count drops the candidate (conjunction).
	terms, _ = ParseQuery(`gold "gold rush"`)
	cands, _ = Candidates(ctx, s, terms)
	phraseTF := map[string][]int64{"a": {1}, "c": {0}}
	scored, err = Rank(ctx, s, terms, cands, phraseTF)
	if err != nil {
		t.Fatal(err)
	}
	if len(scored) != 1 || scored[0].Doc != "a" {
		t.Fatalf("phrase conjunction scored = %+v", scored)
	}
}

func TestRankDeterministicTieBreak(t *testing.T) {
	ix := NewIndex()
	// Identical documents: identical scores, so the name decides.
	for _, name := range []string{"z", "m", "a"} {
		ix.Add(name, postingsFromText("same words here"))
	}
	s := ix.Snapshot()
	terms, _ := ParseQuery("words")
	cands, _ := Candidates(context.Background(), s, terms)
	scored, err := Rank(context.Background(), s, terms, cands, nil)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, ds := range scored {
		names = append(names, ds.Doc)
	}
	if !reflect.DeepEqual(names, []string{"a", "m", "z"}) {
		t.Fatalf("tie-break order = %v", names)
	}
}

func TestIdfPositive(t *testing.T) {
	for _, tc := range []struct{ n, df int }{{1, 1}, {10, 10}, {10, 1}, {1000000, 999999}, {0, 0}} {
		if v := idf(tc.n, tc.df); v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("idf(%d, %d) = %v", tc.n, tc.df, v)
		}
	}
}

func TestScoringLoopsPollContext(t *testing.T) {
	ix := NewIndex()
	for i := 0; i < 4*pollStride; i++ {
		ix.Add(string(rune('a'+i%26))+string(rune('0'+i%10))+string(rune('A'+i/260%26))+string(rune(i)), postingsFromText("gold"))
	}
	s := ix.Snapshot()
	terms, _ := ParseQuery("gold")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Candidates(ctx, s, terms); err == nil {
		t.Fatal("Candidates ignored a canceled context")
	}
	cands := make([]string, 0, len(s.Docs))
	for name := range s.Docs {
		cands = append(cands, name)
	}
	if _, err := Rank(ctx, s, terms, cands, nil); err == nil {
		t.Fatal("Rank ignored a canceled context")
	}
}

func TestWithDocSharesColumns(t *testing.T) {
	dp := postingsFromText("gold rush")
	cp := dp.WithDoc(nil)
	if cp == dp {
		t.Fatal("WithDoc returned the receiver")
	}
	if &cp.blob[0] != &dp.blob[0] || cp.tokens != dp.tokens {
		t.Fatal("WithDoc copied the columns")
	}
}
