// Package dom is the conventional baseline the paper compares against: a
// pointer-based in-memory tree (two 64-bit pointers per node, as in the
// Table IV/V comparisons) with a straightforward recursive XPath evaluator.
// It stands in for the conventional-engine comparators of Section 6
// (MonetDB/XQuery, Qizx/DB) and doubles as the correctness oracle for the
// differential tests of the automata evaluator.
//
// The tree uses the same document model as the succinct index (synthetic &
// root, @/%-encoded attributes, # text leaves), so the same normalized
// queries apply to both.
package dom

import (
	"bytes"
	"fmt"

	"repro/internal/xmlparse"
	"repro/internal/xpath"
)

// Node is a pointer-based tree node (first-child / next-sibling layout).
type Node struct {
	FirstChild  *Node
	NextSibling *Node
	Parent      *Node
	Tag         string
	Text        []byte // text/attribute-value leaves only
	Order       int    // preorder number
}

// Tree is the pointer-based document.
type Tree struct {
	Root     *Node // synthetic & node
	NumNodes int
	NumTexts int
}

type domBuilder struct {
	t     *Tree
	stack []*Node
	order int
}

// Parse builds a pointer tree from an XML document.
func Parse(data []byte) (*Tree, error) {
	t := &Tree{}
	b := &domBuilder{t: t}
	b.push("&")
	if err := xmlparse.Parse(data, b); err != nil {
		return nil, err
	}
	b.pop()
	return t, nil
}

func (b *domBuilder) push(tag string) *Node {
	n := &Node{Tag: tag, Order: b.order}
	b.order++
	b.t.NumNodes++
	if len(b.stack) > 0 {
		p := b.stack[len(b.stack)-1]
		n.Parent = p
		if p.FirstChild == nil {
			p.FirstChild = n
		} else {
			c := p.FirstChild
			for c.NextSibling != nil {
				c = c.NextSibling
			}
			c.NextSibling = n
		}
	} else {
		b.t.Root = n
	}
	b.stack = append(b.stack, n)
	return n
}

func (b *domBuilder) pop() { b.stack = b.stack[:len(b.stack)-1] }

func (b *domBuilder) StartElement(name string, attrs []xmlparse.Attr) error {
	b.push(name)
	if len(attrs) > 0 {
		b.push("@")
		for _, a := range attrs {
			b.push(a.Name)
			leaf := b.push("%")
			leaf.Text = []byte(a.Value)
			b.t.NumTexts++
			b.pop()
			b.pop()
		}
		b.pop()
	}
	return nil
}

func (b *domBuilder) EndElement(string) error {
	b.pop()
	return nil
}

func (b *domBuilder) Text(data []byte) error {
	leaf := b.push("#")
	leaf.Text = append([]byte(nil), data...)
	b.t.NumTexts++
	b.pop()
	return nil
}

// Value returns the XPath string value of a node.
func (n *Node) Value() []byte {
	if n.Tag == "#" || n.Tag == "%" {
		return n.Text
	}
	if n.FirstChild != nil && n.FirstChild.Tag == "%" {
		return n.FirstChild.Text // attribute node
	}
	var buf bytes.Buffer
	var walk func(*Node)
	walk = func(x *Node) {
		for c := x.FirstChild; c != nil; c = c.NextSibling {
			if c.Tag == "#" {
				buf.Write(c.Text)
			} else if c.Tag != "@" {
				walk(c)
			}
		}
	}
	walk(n)
	return buf.Bytes()
}

// Eval evaluates a Core+ query (naive recursive semantics) and returns the
// result nodes in document order.
func (t *Tree) Eval(src string) ([]*Node, error) {
	ast, err := xpath.ParseQuery(src)
	if err != nil {
		return nil, err
	}
	norm, err := xpath.Normalize(ast)
	if err != nil {
		return nil, err
	}
	cur := []*Node{t.Root}
	for _, st := range norm.Steps {
		var next []*Node
		seen := map[*Node]bool{}
		for _, n := range cur {
			collectAxis(n, st, func(m *Node) {
				if !seen[m] {
					seen[m] = true
					next = append(next, m)
				}
			})
		}
		// filter
		var kept []*Node
		for _, n := range next {
			ok := true
			for _, f := range st.Filters {
				if !evalExpr(n, f) {
					ok = false
					break
				}
			}
			if ok {
				kept = append(kept, n)
			}
		}
		cur = kept
	}
	sortByOrder(cur)
	return cur, nil
}

func sortByOrder(ns []*Node) {
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0 && ns[j].Order < ns[j-1].Order; j-- {
			ns[j], ns[j-1] = ns[j-1], ns[j]
		}
	}
}

// Count evaluates a query in counting mode.
func (t *Tree) Count(src string) (int, error) {
	ns, err := t.Eval(src)
	if err != nil {
		return 0, err
	}
	return len(ns), nil
}

func collectAxis(n *Node, st *xpath.Step, emit func(*Node)) {
	switch st.Axis {
	case xpath.AxisChild:
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			if matches(c, st.Test) {
				emit(c)
			}
		}
	case xpath.AxisDescendant:
		var walk func(*Node)
		walk = func(x *Node) {
			for c := x.FirstChild; c != nil; c = c.NextSibling {
				if matches(c, st.Test) {
					emit(c)
				}
				walk(c)
			}
		}
		walk(n)
	case xpath.AxisDescendantOrSelf:
		emitSubtree(n, st.Test, emit)
	case xpath.AxisSelf:
		if matches(n, st.Test) {
			emit(n)
		}
	case xpath.AxisFollowingSibling:
		for s := n.NextSibling; s != nil; s = s.NextSibling {
			if matches(s, st.Test) {
				emit(s)
			}
		}
	case xpath.AxisPrecedingSibling:
		if n.Parent != nil {
			for s := n.Parent.FirstChild; s != nil && s != n; s = s.NextSibling {
				if matches(s, st.Test) {
					emit(s)
				}
			}
		}
	case xpath.AxisParent:
		if n.Parent != nil && matches(n.Parent, st.Test) {
			emit(n.Parent)
		}
	case xpath.AxisAncestor:
		for a := n.Parent; a != nil; a = a.Parent {
			if matches(a, st.Test) {
				emit(a)
			}
		}
	case xpath.AxisAncestorOrSelf:
		for a := n; a != nil; a = a.Parent {
			if matches(a, st.Test) {
				emit(a)
			}
		}
	case xpath.AxisPreceding:
		// Every node before n in document order that does not enclose it
		// lies in the subtree of a preceding sibling of an ancestor-or-self.
		for a := n; a != nil; a = a.Parent {
			if a.Parent == nil {
				break
			}
			for s := a.Parent.FirstChild; s != nil && s != a; s = s.NextSibling {
				emitSubtree(s, st.Test, emit)
			}
		}
	case xpath.AxisFollowing:
		// Symmetrically: subtrees of following siblings of ancestors-or-self.
		for a := n; a != nil; a = a.Parent {
			for s := a.NextSibling; s != nil; s = s.NextSibling {
				emitSubtree(s, st.Test, emit)
			}
		}
	}
}

// emitSubtree emits n and every descendant matching the test.
func emitSubtree(n *Node, t xpath.NodeTest, emit func(*Node)) {
	if matches(n, t) {
		emit(n)
	}
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		emitSubtree(c, t, emit)
	}
}

func matches(n *Node, t xpath.NodeTest) bool {
	switch t.Kind {
	case xpath.TestName:
		return n.Tag == t.Name
	case xpath.TestStar:
		return n.Tag != "#" && n.Tag != "@" && n.Tag != "%" && n.Tag != "&"
	case xpath.TestText:
		return n.Tag == "#"
	case xpath.TestNode:
		return n.Tag != "@" && n.Tag != "%" && n.Tag != "&"
	}
	return false
}

func evalExpr(n *Node, e xpath.Expr) bool {
	switch x := e.(type) {
	case *xpath.AndExpr:
		return evalExpr(n, x.L) && evalExpr(n, x.R)
	case *xpath.OrExpr:
		return evalExpr(n, x.L) || evalExpr(n, x.R)
	case *xpath.NotExpr:
		return !evalExpr(n, x.E)
	case *xpath.PathExpr:
		return existsPath(n, x.Path.Steps)
	case *xpath.TextExpr:
		if x.Target == nil {
			return textOp(x.Op, n.Value(), []byte(x.Literal))
		}
		found := false
		walkPath(n, x.Target.Steps, func(m *Node) bool {
			if textOp(x.Op, m.Value(), []byte(x.Literal)) {
				found = true
				return false
			}
			return true
		})
		return found
	}
	return false
}

func textOp(op xpath.TextOp, val, lit []byte) bool {
	switch op {
	case xpath.OpContains:
		return bytes.Contains(val, lit)
	case xpath.OpStartsWith:
		return bytes.HasPrefix(val, lit)
	case xpath.OpEndsWith:
		return bytes.HasSuffix(val, lit)
	case xpath.OpEquals:
		return bytes.Equal(val, lit)
	}
	return false
}

func existsPath(n *Node, steps []*xpath.Step) bool {
	exists := false
	walkPath(n, steps, func(*Node) bool {
		exists = true
		return false
	})
	return exists
}

// walkPath visits the nodes selected by the relative path from n; the
// visitor returns false to stop early.
func walkPath(n *Node, steps []*xpath.Step, visit func(*Node) bool) {
	var rec func(cur *Node, i int) bool
	rec = func(cur *Node, i int) bool {
		if i == len(steps) {
			return visit(cur)
		}
		cont := true
		collectAxis(cur, steps[i], func(m *Node) {
			if !cont {
				return
			}
			ok := true
			for _, f := range steps[i].Filters {
				if !evalExpr(m, f) {
					ok = false
					break
				}
			}
			if ok && !rec(m, i+1) {
				cont = false
			}
		})
		return cont
	}
	rec(n, 0)
}

// Serialize writes the subtree of n as XML (for the serialization
// benchmarks).
func (n *Node) Serialize(buf *bytes.Buffer) {
	switch n.Tag {
	case "#", "%":
		buf.Write(xmlparse.Escape(n.Text, false))
		return
	case "&":
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			c.Serialize(buf)
		}
		return
	case "@":
		return
	}
	buf.WriteByte('<')
	buf.WriteString(n.Tag)
	content := n.FirstChild
	if content != nil && content.Tag == "@" {
		for a := content.FirstChild; a != nil; a = a.NextSibling {
			fmt.Fprintf(buf, " %s=\"%s\"", a.Tag, xmlparse.Escape(a.FirstChild.Text, true))
		}
		content = content.NextSibling
	}
	if content == nil {
		buf.WriteString("/>")
		return
	}
	buf.WriteByte('>')
	for c := content; c != nil; c = c.NextSibling {
		c.Serialize(buf)
	}
	buf.WriteString("</" + n.Tag + ">")
}
