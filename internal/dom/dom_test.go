package dom

import (
	"bytes"
	"testing"
)

const doc = `<parts><part name="pen"><color>blue</color><stock>40</stock>End.</part><part><stock>30</stock></part></parts>`

func TestParseShape(t *testing.T) {
	tr, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root.Tag != "&" {
		t.Fatal("synthetic root")
	}
	if tr.NumTexts != 5 {
		t.Fatalf("texts=%d", tr.NumTexts)
	}
	parts := tr.Root.FirstChild
	if parts.Tag != "parts" {
		t.Fatal("root element")
	}
	part := parts.FirstChild
	if part.FirstChild.Tag != "@" {
		t.Fatal("attribute container")
	}
}

func TestValueSemantics(t *testing.T) {
	tr, _ := Parse([]byte(doc))
	part := tr.Root.FirstChild.FirstChild
	// string value excludes attribute text
	if got := string(part.Value()); got != "blue40End." {
		t.Fatalf("value=%q", got)
	}
	attr := part.FirstChild.FirstChild // @ -> name
	if got := string(attr.Value()); got != "pen" {
		t.Fatalf("attr value=%q", got)
	}
}

func TestEvalBasics(t *testing.T) {
	tr, _ := Parse([]byte(doc))
	cases := []struct {
		q string
		n int
	}{
		{"//part", 2},
		{"//part[color]", 1},
		{"//part[@name]", 1},
		{"//part[not(color)]", 1},
		{"//stock[. = '30']", 1},
		{"//part[contains(., 'End')]", 1},
		{"//color/following-sibling::stock", 1},
		{"//text()", 4}, // the attribute value is a % leaf, not text()
	}
	for _, c := range cases {
		got, err := tr.Count(c.q)
		if err != nil {
			t.Fatalf("%s: %v", c.q, err)
		}
		if got != c.n {
			t.Fatalf("%s: got %d want %d", c.q, got, c.n)
		}
	}
}

func TestEvalDocOrderAndDedup(t *testing.T) {
	tr, _ := Parse([]byte("<r><a><b/><b/></a><a><b/></a></r>"))
	ns, err := tr.Eval("//a//b")
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 3 {
		t.Fatalf("len=%d", len(ns))
	}
	for i := 1; i < len(ns); i++ {
		if ns[i].Order <= ns[i-1].Order {
			t.Fatal("not in document order")
		}
	}
}

func TestSerialize(t *testing.T) {
	tr, _ := Parse([]byte(doc))
	var buf bytes.Buffer
	tr.Root.Serialize(&buf)
	tr2, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("reserialized doc does not parse: %v\n%s", err, buf.String())
	}
	if tr2.NumNodes != tr.NumNodes {
		t.Fatalf("nodes %d != %d", tr2.NumNodes, tr.NumNodes)
	}
}
