package xpath

import (
	"fmt"

	"repro/internal/xmltree"
)

// Cost-based strategy selection (the trade-off at the heart of the paper:
// Section 5.4.2 and Figure 14). The planner chooses between the top-down
// marking automaton and the bottom-up climb from text-index matches using
// cheap *exact* statistics, not sampled estimates:
//
//   - the per-tag occurrence count of the last step's node test, read from
//     the tag sequence's rank directories in O(1) (Doc.TagCount). The
//     jumping top-down run visits at most the occurrences of the relevant
//     tags, so this bounds the candidate set the automaton must touch.
//
//   - the text-predicate match count, computed with one FM-index backward
//     search in O(|pattern|) (GlobalCount and friends). The bottom-up run
//     climbs from exactly these matches, so this bounds its work.
//
// Both numbers are exact for the document at hand — the cost model never
// guesses. The decision rule is the paper's selectivity rule: run bottom-up
// exactly when the text predicate selects no more matches than the last
// step's tag has occurrences. QueryOptions.ForceStrategy overrides the
// decision for benchmarking and differential testing.

// Strategy names an evaluation strategy for the main (downward) path.
type Strategy uint8

const (
	// StrategyAuto lets the cost model decide (the default).
	StrategyAuto Strategy = iota
	// StrategyTopDown forces the top-down marking automaton.
	StrategyTopDown
	// StrategyBottomUp forces the bottom-up plan whenever the query shape
	// supports it; ineligible queries still run top-down.
	StrategyBottomUp
)

func (s Strategy) String() string {
	switch s {
	case StrategyAuto:
		return "auto"
	case StrategyTopDown:
		return "top-down"
	case StrategyBottomUp:
		return "bottom-up"
	}
	return fmt.Sprintf("strategy(%d)", s)
}

// ParseStrategy resolves the wire/CLI names of the strategies.
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "auto", "":
		return StrategyAuto, nil
	case "top-down", "topdown", "td":
		return StrategyTopDown, nil
	case "bottom-up", "bottomup", "bu":
		return StrategyBottomUp, nil
	}
	return 0, fmt.Errorf("xpath: unknown strategy %q", s)
}

// CostEstimate records the statistics the planner consulted and the strategy
// it chose for a compiled query. All counts are exact (see the package
// comment above); TextMatches is -1 when the query has no text predicate the
// bottom-up plan could drive from.
type CostEstimate struct {
	// LastStepCount is the number of document nodes matching the last
	// step's node test: the top-down run's candidate bound.
	LastStepCount int
	// TextMatches is the text-predicate match count from one FM backward
	// search: the bottom-up run's work bound. -1 when not applicable.
	TextMatches int
	// BottomUpOK reports whether the query shape supports the bottom-up
	// plan at all (downward path, one trailing indexable text predicate).
	BottomUpOK bool
	// Forced reports that ForceStrategy (or the legacy DisableBottomUp
	// toggle) overrode the cost comparison.
	Forced bool
	// Chosen is the strategy the query will run under.
	Chosen Strategy
}

func (c CostEstimate) String() string {
	return fmt.Sprintf("cost{last=%d text=%d bu=%v forced=%v chosen=%s}",
		c.LastStepCount, c.TextMatches, c.BottomUpOK, c.Forced, c.Chosen)
}

// lastStepCount bounds the candidate set of the last step: the exact tag
// occurrence count for named tests (0 when the tag does not occur), the
// text-leaf count for text() tests, and the node count otherwise.
func lastStepCount(doc *xmltree.Doc, t NodeTest) int {
	switch t.Kind {
	case TestName:
		if id := doc.TagID(t.Name); id >= 0 {
			return doc.TagCount(id)
		}
		return 0
	case TestText:
		return doc.NumTexts()
	}
	return doc.NumNodes()
}

// chooseStrategy applies the decision rule to a (possibly nil) eligible
// bottom-up plan. The plan argument carries the shape eligibility: a nil
// plan means the query cannot run bottom-up regardless of cost.
func chooseStrategy(doc *xmltree.Doc, path *Path, opts Options, plan *buPlan) CostEstimate {
	est := CostEstimate{
		LastStepCount: lastStepCount(doc, path.Steps[len(path.Steps)-1].Test),
		TextMatches:   -1,
		BottomUpOK:    plan != nil,
		Chosen:        StrategyTopDown,
	}
	if opts.DisableBottomUp || opts.ForceStrategy == StrategyTopDown {
		est.Forced = true
		return est
	}
	if plan == nil {
		// Forcing bottom-up on an ineligible shape still runs top-down;
		// record the override so Cost() callers can see it was requested.
		est.Forced = opts.ForceStrategy == StrategyBottomUp
		return est
	}
	est.TextMatches = estimateMatches(doc, opts, plan.op, plan.fn, plan.lit)
	plan.estMatches = est.TextMatches
	if opts.ForceStrategy == StrategyBottomUp {
		est.Forced = true
		est.Chosen = StrategyBottomUp
		return est
	}
	// Selectivity rule (Section 5.4.2): climb from the text matches only
	// when there are no more of them than last-step candidates.
	if est.TextMatches <= est.LastStepCount {
		est.Chosen = StrategyBottomUp
	}
	return est
}
