package xpath

// Navigational evaluation of the axes the downward marking automaton cannot
// express: parent, ancestor, ancestor-or-self, preceding-sibling, preceding
// and following. The balanced-parentheses structure answers every backward
// move in constant-or-log time (Parent/Enclose, PrevSibling/FindOpen), which
// is exactly the paper's argument for why a BP tree needs no parent
// pointers; this file turns those primitives into axis enumerators.
//
// Backward steps reach the evaluator two ways:
//
//   - A backward step on the MAIN path splits the query: the longest leading
//     run of automaton axes (child, descendant, following-sibling) is
//     evaluated by the usual planner (TopDownRun or BottomUpRun), and the
//     remaining steps are applied as navigational set transformations
//     (Query.post, see navApplyStep). Name and text() tests turn the
//     preceding/following axes into forward scans of the tag sequence
//     (Tag.NextOccurrence), so their cost is output-sensitive.
//
//   - A backward step inside a PREDICATE path compiles into an automata
//     Pred formula whose closure walks the document from the carrier node
//     (compileExpr), so both TopDownRun and the bottom-up verifier see the
//     predicate as an ordinary node test.
//
// Semantics are defined on the document model tree (synthetic & root,
// @/%-encoded attributes, # text leaves) exactly as in the dom oracle:
// axes navigate the model tree and node tests do the filtering.

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/xmltree"
)

// automatonAxis reports whether the marking automaton's two down-moves can
// express the axis (Section 5.2's fragment).
func automatonAxis(a Axis) bool {
	switch a {
	case AxisChild, AxisDescendant, AxisSelf, AxisAttribute, AxisFollowingSibling:
		return true
	}
	return false
}

// pathNeedsNav reports whether a normalized relative path contains a step
// outside the automaton fragment (nested filter paths are checked by their
// own compilation, not here).
func pathNeedsNav(p *Path) bool {
	for _, st := range p.Steps {
		if !automatonAxis(st.Axis) {
			return true
		}
	}
	return false
}

// navJumpTag returns the tag to jump on when the node test selects a single
// label (a name or text()), enabling Tag.NextOccurrence scans for the
// order-based axes. A negative tag with ok=true means the label does not
// occur, so the step matches nothing.
func navJumpTag(d *xmltree.Doc, t NodeTest) (int32, bool) {
	switch t.Kind {
	case TestName:
		return d.TagID(t.Name), true
	case TestText:
		return d.TextTag(), true
	}
	return 0, false
}

// navCollect enumerates the nodes reached from x through one step's axis
// that satisfy its node test; filters are the caller's concern. Emission
// order is unspecified (callers deduplicate and sort). The visitor returns
// false to stop the enumeration, which turns existence checks (e.g.
// not(preceding::a)) into early-exit scans.
func navCollect(d *xmltree.Doc, x int, st *Step, emit func(int) bool) {
	switch st.Axis {
	case AxisChild:
		for c := d.FirstChild(x); c != xmltree.Nil; c = d.NextSibling(c) {
			if matchesTest(d, c, st.Test) && !emit(c) {
				return
			}
		}
	case AxisDescendant:
		navDescendants(d, x, st.Test, emit)
	case AxisDescendantOrSelf:
		if matchesTest(d, x, st.Test) && !emit(x) {
			return
		}
		navDescendants(d, x, st.Test, emit)
	case AxisSelf:
		if matchesTest(d, x, st.Test) {
			emit(x)
		}
	case AxisFollowingSibling:
		for s := d.NextSibling(x); s != xmltree.Nil; s = d.NextSibling(s) {
			if matchesTest(d, s, st.Test) && !emit(s) {
				return
			}
		}
	case AxisPrecedingSibling:
		for s := d.PrevSibling(x); s != xmltree.Nil; s = d.PrevSibling(s) {
			if matchesTest(d, s, st.Test) && !emit(s) {
				return
			}
		}
	case AxisParent:
		if pa := d.Parent(x); pa != xmltree.Nil && matchesTest(d, pa, st.Test) {
			emit(pa)
		}
	case AxisAncestor:
		for a := d.Parent(x); a != xmltree.Nil; a = d.Parent(a) {
			if matchesTest(d, a, st.Test) && !emit(a) {
				return
			}
		}
	case AxisAncestorOrSelf:
		for a := x; a != xmltree.Nil; a = d.Parent(a) {
			if matchesTest(d, a, st.Test) && !emit(a) {
				return
			}
		}
	case AxisFollowing:
		// Everything after Close(x): all opens past the closing parenthesis,
		// i.e. nodes following x in document order minus its descendants.
		if tag, ok := navJumpTag(d, st.Test); ok {
			if tag < 0 {
				return
			}
			for q := d.Tag.NextOccurrence(2*tag, d.Close(x)+1); q >= 0; q = d.Tag.NextOccurrence(2*tag, q+1) {
				if !emit(q) {
					return
				}
			}
			return
		}
		for k, n := d.Preorder(x)+d.SubtreeSize(x), d.NumNodes(); k < n; k++ {
			if c := d.NodeAtPreorder(k); matchesTest(d, c, st.Test) && !emit(c) {
				return
			}
		}
	case AxisPreceding:
		// Everything opening before x that does not enclose it: nodes
		// preceding x in document order minus its ancestors.
		if tag, ok := navJumpTag(d, st.Test); ok {
			if tag < 0 {
				return
			}
			for q := d.Tag.NextOccurrence(2*tag, 0); q >= 0 && q < x; q = d.Tag.NextOccurrence(2*tag, q+1) {
				if !d.IsAncestor(q, x) && !emit(q) {
					return
				}
			}
			return
		}
		for k, n := 0, d.Preorder(x); k < n; k++ {
			c := d.NodeAtPreorder(k)
			if !d.IsAncestor(c, x) && matchesTest(d, c, st.Test) && !emit(c) {
				return
			}
		}
	}
}

// navDescendants enumerates the proper descendants of x matching the test,
// jumping through the tag sequence when the test names a single label.
func navDescendants(d *xmltree.Doc, x int, t NodeTest, emit func(int) bool) {
	if tag, ok := navJumpTag(d, t); ok {
		if tag < 0 {
			return
		}
		end := d.Close(x)
		for q := d.Tag.NextOccurrence(2*tag, x+1); q >= 0 && q < end; q = d.Tag.NextOccurrence(2*tag, q+1) {
			if !emit(q) {
				return
			}
		}
		return
	}
	lo := d.Preorder(x)
	for k, n := lo+1, lo+d.SubtreeSize(x); k < n; k++ {
		if c := d.NodeAtPreorder(k); matchesTest(d, c, t) && !emit(c) {
			return
		}
	}
}

// navEvalExpr evaluates a predicate expression at node x with the naive
// navigational semantics, mirroring the dom oracle's evalExpr. Text
// predicates use the string-value semantics directly; extension predicates
// (OpCustom) fall back to the match-set containment check.
func navEvalExpr(d *xmltree.Doc, opts Options, x int, e Expr) bool {
	switch t := e.(type) {
	case *AndExpr:
		return navEvalExpr(d, opts, x, t.L) && navEvalExpr(d, opts, x, t.R)
	case *OrExpr:
		return navEvalExpr(d, opts, x, t.L) || navEvalExpr(d, opts, x, t.R)
	case *NotExpr:
		return !navEvalExpr(d, opts, x, t.E)
	case *PathExpr:
		return navExists(d, opts, x, t.Path.Steps)
	case *TextExpr:
		if t.Target == nil {
			return navTextMatch(d, opts, x, t)
		}
		found := false
		navWalkPath(d, opts, x, t.Target.Steps, func(m int) bool {
			if navTextMatch(d, opts, m, t) {
				found = true
				return false
			}
			return true
		})
		return found
	}
	return false
}

// navTextMatch applies a text predicate to the string value of node x. The
// custom (set-based) predicates recompute their match set per call: they
// only reach this path combined with backward axes, which no benchmark
// workload does; everything else uses the naive string-value check, whose
// agreement with the FM-index path is pinned by the differential suite.
func navTextMatch(d *xmltree.Doc, opts Options, x int, te *TextExpr) bool {
	if te.Op == OpCustom {
		set := matchSet(d, opts, te.Op, te.Func, te.Literal)
		lo, hi := d.TextIDs(x)
		i := sort.Search(len(set), func(k int) bool { return int(set[k]) >= lo })
		return i < len(set) && int(set[i]) < hi
	}
	return evalTextOp(te.Op, nodeValue(d, x), []byte(te.Literal))
}

// navWalkPath visits the nodes selected by the relative path from x,
// applying each step's filters; the visitor returns false to stop early.
func navWalkPath(d *xmltree.Doc, opts Options, x int, steps []*Step, visit func(int) bool) {
	var rec func(cur, i int) bool
	rec = func(cur, i int) bool {
		if i == len(steps) {
			return visit(cur)
		}
		cont := true
		navCollect(d, cur, steps[i], func(m int) bool {
			for _, f := range steps[i].Filters {
				if !navEvalExpr(d, opts, m, f) {
					return true
				}
			}
			cont = rec(m, i+1)
			return cont
		})
		return cont
	}
	rec(x, 0)
}

// navExists reports whether the relative path selects anything from x.
func navExists(d *xmltree.Doc, opts Options, x int, steps []*Step) bool {
	found := false
	navWalkPath(d, opts, x, steps, func(int) bool {
		found = true
		return false
	})
	return found
}

// navApplyStep applies one location step to a sorted node set, returning
// the distinct matching nodes sorted by position (document order). Filter
// verdicts are memoized per target node, so a node reachable from many
// context nodes is tested once. The order-based axes collapse to a single
// context node instead of one scan per context: the union of preceding::
// over a set is preceding:: of its largest member (y precedes some x in the
// set iff Close(y) < max(set)), and the union of following:: is
// following:: of the member whose closing parenthesis is smallest.
// Cancellation is polled between enumerated target nodes, which covers the
// expensive part of a step: the per-target filter evaluations.
func navApplyStep(ctx context.Context, d *xmltree.Doc, opts Options, cur []int, st *Step) ([]int, error) {
	// Entry check: cancellation that arrived while the previous pipeline
	// stage was finishing is honored here even when this step emits fewer
	// nodes than the polling interval.
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if len(cur) > 1 {
		switch st.Axis {
		case AxisPreceding:
			cur = cur[len(cur)-1:]
		case AxisFollowing:
			best, bc := cur[0], d.Close(cur[0])
			//sxsivet:ignore ctxpoll one O(1) Close lookup per input node, bracketed by the entry ctxErr and the per-target poll below
			for _, x := range cur[1:] {
				if c := d.Close(x); c < bc {
					best, bc = x, c
				}
			}
			cur = []int{best}
		}
	}
	done := ctxDone(ctx)
	cancelled := false
	seen := 0
	decided := map[int]bool{}
	var out []int
	for _, x := range cur {
		navCollect(d, x, st, func(m int) bool {
			seen++
			if done != nil && seen&255 == 0 {
				select {
				case <-done:
					cancelled = true
					return false
				default:
				}
			}
			if _, ok := decided[m]; ok {
				return true
			}
			pass := true
			for _, f := range st.Filters {
				if !navEvalExpr(d, opts, m, f) {
					pass = false
					break
				}
			}
			decided[m] = pass
			if pass {
				out = append(out, m)
			}
			return true
		})
		if cancelled {
			return nil, ctx.Err()
		}
	}
	sort.Ints(out)
	return out, nil
}

// navValidateStep rejects at compile time what the automaton path would
// also reject: extension predicates that were never registered. It recurses
// through the step's filters and their nested paths.
func navValidateStep(opts Options, st *Step) error {
	for _, f := range st.Filters {
		if err := navValidateExpr(opts, f); err != nil {
			return err
		}
	}
	return nil
}

func navValidateExpr(opts Options, e Expr) error {
	switch t := e.(type) {
	case *AndExpr:
		if err := navValidateExpr(opts, t.L); err != nil {
			return err
		}
		return navValidateExpr(opts, t.R)
	case *OrExpr:
		if err := navValidateExpr(opts, t.L); err != nil {
			return err
		}
		return navValidateExpr(opts, t.R)
	case *NotExpr:
		return navValidateExpr(opts, t.E)
	case *PathExpr:
		return navValidateSteps(opts, t.Path.Steps)
	case *TextExpr:
		if t.Op == OpCustom {
			if _, ok := opts.CustomMatchSets[t.Func]; !ok {
				return fmt.Errorf("xpath: unknown function %q", t.Func)
			}
		}
		if t.Target != nil {
			return navValidateSteps(opts, t.Target.Steps)
		}
		return nil
	}
	return fmt.Errorf("xpath: unknown expression %T", e)
}

func navValidateSteps(opts Options, steps []*Step) error {
	for _, st := range steps {
		if err := navValidateStep(opts, st); err != nil {
			return err
		}
	}
	return nil
}
