package xpath

import (
	"bytes"
	"sort"
	"sync"

	"repro/internal/automata"
	"repro/internal/xmltree"
)

// predTarget describes the node type a text predicate applies to, which
// decides whether the FM-index can be used (Section 6.6 step 2: the
// predicate must apply to a single text node).
type predTarget struct {
	test      NodeTest
	underAttr bool
}

// singleText reports whether the target's string value is always a single
// text of the collection, and the leaf label that holds it.
func (c *compiler) singleText(t predTarget) (int32, bool) {
	d := c.doc
	if t.underAttr {
		return d.AttrValTag(), true
	}
	switch t.test.Kind {
	case TestText:
		return d.TextTag(), true
	case TestName:
		id := d.TagID(t.test.Name)
		if id >= 0 && d.PureText(id) {
			return d.TextTag(), true
		}
	}
	return 0, false
}

// makePred builds the predicate function for op(value, literal). When the
// FM-index is available and the target is a single text node, the matching
// text identifiers are computed once (choosing FM-index search or plain
// scan by global count, Section 3.4) and the predicate becomes a range
// check against the node's text identifier interval. Otherwise the naive
// string-value semantics is used (Section 6.6).
func (c *compiler) makePred(op TextOp, fn, lit string, tgt predTarget) automata.PredFunc {
	d := c.doc
	leafTag, single := c.singleText(tgt)
	if op == OpCustom || (d.FM != nil && single && !c.opts.ForceNaiveText) {
		// Custom predicates (e.g. PSSM) are always set-based; when the
		// target is not a single text node the predicate holds if any text
		// leaf in the node's range matches (the //*[pssm(...)] case of
		// Figure 18). The set is computed once per compiled query, guarded
		// for concurrent evaluations of a shared Query.
		anyLeaf := !single
		var once sync.Once
		var set []int32
		opts := c.opts
		return func(node int) bool {
			once.Do(func() { set = matchSet(d, opts, op, fn, lit) })
			lo, hi := d.TextIDs(node)
			i := sort.Search(len(set), func(k int) bool { return int(set[k]) >= lo })
			for ; i < len(set) && int(set[i]) < hi; i++ {
				if anyLeaf || d.TagOf(d.TextIDToNode(int(set[i]))) == leafTag {
					return true
				}
			}
			return false
		}
	}
	pb := []byte(lit)
	return func(node int) bool {
		return evalTextOp(op, nodeValue(d, node), pb)
	}
}

func evalTextOp(op TextOp, val, lit []byte) bool {
	switch op {
	case OpContains:
		return bytes.Contains(val, lit)
	case OpStartsWith:
		return bytes.HasPrefix(val, lit)
	case OpEndsWith:
		return bytes.HasSuffix(val, lit)
	case OpEquals:
		return bytes.Equal(val, lit)
	}
	return false
}

// nodeValue computes the XPath string value of a node: its own text for
// text/attribute-value leaves, the attribute value for attribute nodes, and
// the concatenation of descendant texts otherwise.
func nodeValue(d *xmltree.Doc, x int) []byte {
	tag := d.TagOf(x)
	if tag == d.TextTag() || tag == d.AttrValTag() {
		if id := d.NodeToTextID(x); id >= 0 {
			return d.Text(id)
		}
		return nil
	}
	if fc := d.FirstChild(x); fc != xmltree.Nil && d.TagOf(fc) == d.AttrValTag() {
		// attribute node: value is the % leaf
		if id := d.NodeToTextID(fc); id >= 0 {
			return d.Text(id)
		}
		return nil
	}
	return d.TextValue(x)
}

// matchSet returns the sorted identifiers of texts matching op(text, lit),
// deciding between the FM-index and a plain-text scan by the global
// occurrence count (the cut-off rule of Sections 3.4 and 6.3).
func matchSet(d *xmltree.Doc, opts Options, op TextOp, fn, lit string) []int32 {
	if op == OpCustom {
		if f, ok := opts.CustomMatchSets[fn]; ok {
			return f(lit)
		}
		return nil
	}
	fm := d.FM
	p := []byte(lit)
	cutoff := opts.PlainCutoff
	if cutoff <= 0 {
		cutoff = defaultPlainCutoff
	}
	var ids []int
	switch op {
	case OpStartsWith:
		ids = fm.StartsWith(p)
	case OpEquals:
		ids = fm.Equals(p)
	case OpEndsWith:
		if fm.EndsWithCount(p) > cutoff && d.Plain != nil {
			return plainScan(d, op, p)
		}
		ids = fm.EndsWith(p)
	case OpContains:
		g := fm.GlobalCount(p)
		if g == 0 {
			return nil
		}
		if g > cutoff && d.Plain != nil {
			return plainScan(d, op, p)
		}
		ids = fm.Contains(p)
	}
	out := make([]int32, len(ids))
	for i, id := range ids {
		out[i] = int32(id)
	}
	return out
}

const defaultPlainCutoff = 20000

// plainScan evaluates the predicate over the redundant plain-text store.
func plainScan(d *xmltree.Doc, op TextOp, p []byte) []int32 {
	var out []int32
	for id, n := 0, d.Plain.Len(); id < n; id++ {
		if evalTextOp(op, d.Plain.Get(id), p) {
			out = append(out, int32(id))
		}
	}
	return out
}
