package xpath

import (
	"testing"

	"repro/internal/xmltree"
)

// TestCountNestedDescendantChains pins the second inexact counting shape: a
// descendant step with a child continuation followed by a later descendant
// step. With nested matches of the first step, the same result is reachable
// from child-spawns at several depths, so exact counters would double-count;
// the compiler must flag the query and Count must fall back to set
// semantics. Found by the parallel-build differential suite on
// //*/node()[...]//tag queries.
func TestCountNestedDescendantChains(t *testing.T) {
	const doc = `<r><a><b><a><b><x/></b></a></b></a></r>`
	d, err := xmltree.Parse([]byte(doc), xmltree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		query string
		flag  bool
	}{
		{"//a/b//x", true}, // nested <a>: x has two (a,b) derivations
		{"//a/node()//x", true},
		{"//a//x", false},  // desc-desc stays exact (first-match pruning)
		{"//a/b/x", false}, // fixed depth below the spawn stays exact
	} {
		q, err := Compile(tc.query, d, Options{})
		if err != nil {
			t.Fatalf("%s: %v", tc.query, err)
		}
		if q.auto != nil && q.mayOvercount != tc.flag {
			t.Errorf("%s: mayOvercount = %v, want %v", tc.query, q.mayOvercount, tc.flag)
		}
		nodes := q.Nodes()
		if n := q.Count(); n != int64(len(nodes)) {
			t.Errorf("%s: Count = %d, Nodes = %d", tc.query, n, len(nodes))
		}
	}
}
