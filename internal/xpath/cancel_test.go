package xpath

// Cancellation tests. All mid-flight cancellations here are deterministic:
// instead of racing a timer against the evaluator, a custom match-set
// predicate cancels the context from inside the evaluation at a known call,
// and the assertions rely only on the documented polling intervals (the
// automaton checks every 64 visits, the bottom-up climb every 64 leaves,
// the scanning iterator every 256 candidates).

import (
	"context"
	"errors"
	"io"
	"strings"
	"sync"
	"testing"

	"repro/internal/automata"
	"repro/internal/xmltree"
)

func buildTestDoc(t *testing.T, xml string) *xmltree.Doc {
	t.Helper()
	d, err := xmltree.Parse([]byte(xml), xmltree.Options{SampleRate: 4})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// wideDoc is <r> followed by n copies of <b>w</b>: n element nodes, n text
// leaves, every text id in 0..n-1 belonging to a b element.
func wideDoc(t *testing.T, n int) *xmltree.Doc {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < n; i++ {
		sb.WriteString("<b>w</b>")
	}
	sb.WriteString("</r>")
	return buildTestDoc(t, sb.String())
}

// allTextIDs returns every text id of the document, the match set a custom
// predicate returns to keep the climb loop busy after cancelling.
func allTextIDs(d *xmltree.Doc) []int32 {
	ids := make([]int32, d.NumTexts())
	for i := range ids {
		ids[i] = int32(i)
	}
	return ids
}

// TestAlreadyCancelledContext pins the upfront check: a context that is
// already done must fail every evaluation entry point of every strategy
// immediately, before any work starts.
func TestAlreadyCancelledContext(t *testing.T) {
	d := wideDoc(t, 100)
	cases := []struct {
		name string
		src  string
		opts Options
	}{
		{"topdown", "//b", Options{ForceStrategy: StrategyTopDown}},
		{"bottomup", "//b[. = 'w']", Options{ForceStrategy: StrategyBottomUp}},
		{"nav", "//b/ancestor::r", Options{}},
		{"auto", "//b[contains(., 'w')]", Options{}},
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q, err := Compile(tc.src, d, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if tc.name == "bottomup" && !q.UsesBottomUp() {
				t.Fatal("expected the bottom-up plan to be selected")
			}
			if _, err := q.CountCtx(ctx); !errors.Is(err, context.Canceled) {
				t.Errorf("CountCtx: err = %v, want Canceled", err)
			}
			if _, err := q.NodesCtx(ctx); !errors.Is(err, context.Canceled) {
				t.Errorf("NodesCtx: err = %v, want Canceled", err)
			}
			if _, err := q.Exists(ctx); !errors.Is(err, context.Canceled) {
				t.Errorf("Exists: err = %v, want Canceled", err)
			}
			if _, err := q.SerializeCtx(ctx, io.Discard); !errors.Is(err, context.Canceled) {
				t.Errorf("SerializeCtx: err = %v, want Canceled", err)
			}
			it := q.Iter(ctx)
			if _, ok := it.Next(); ok {
				t.Error("Iter.Next: produced a result on a cancelled context")
			}
			if err := it.Err(); !errors.Is(err, context.Canceled) {
				t.Errorf("Iter.Err: %v, want Canceled", err)
			}
			if err := it.Close(); err != nil {
				t.Errorf("Iter.Close: %v", err)
			}
		})
	}
}

// pollCtx simulates cancellation that arrives immediately after an
// evaluation has started: Done is closed from the beginning, but the first
// Err call (the entry point's upfront check) still reports "not cancelled",
// so the run proceeds and must be stopped by its own mid-flight poll. This
// makes the poll deterministic to test without racing a timer.
type pollCtx struct {
	context.Context
	done     chan struct{}
	errCalls int
}

func newPollCtx() *pollCtx {
	c := &pollCtx{Context: context.Background(), done: make(chan struct{})}
	close(c.done)
	return c
}

func (c *pollCtx) Done() <-chan struct{} { return c.done }

func (c *pollCtx) Err() error {
	c.errCalls++
	if c.errCalls <= 1 {
		return nil
	}
	return context.Canceled
}

// TestMidFlightCancelTopDown covers the top-down evaluator's two
// cancellation points. The automaton's own 64-visit poll is exercised with
// pollCtx (the run must abort within one polling interval of the 10k-visit
// document, in both counting and materializing modes). The pipeline-stage
// entry check is exercised with a real context cancelled from inside a
// custom predicate during the automaton prefix: the automaton evaluates
// predicates while unwinding, after its visits, so the cancellation is
// observed when the navigational post step starts.
func TestMidFlightCancelTopDown(t *testing.T) {
	d := wideDoc(t, 10000)
	t.Run("poll", func(t *testing.T) {
		// A structural filter defeats the lazy collector (which would count
		// //b by rank directories alone, without visiting any node), forcing
		// a genuine ~20k-visit run in both modes.
		var sb strings.Builder
		sb.WriteString("<r>")
		for i := 0; i < 10000; i++ {
			sb.WriteString("<b><c/></b>")
		}
		sb.WriteString("</r>")
		pd := buildTestDoc(t, sb.String())
		q, err := Compile("//b[c]", pd, Options{ForceStrategy: StrategyTopDown})
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []automata.Mode{automata.Count, automata.Materialize} {
			ctx := newPollCtx()
			ev := automata.NewEvaluator(q.auto, pd, mode, Options{}.Eval)
			_, _, evalErr := ev.RunContext(ctx)
			if !errors.Is(evalErr, context.Canceled) {
				t.Fatalf("mode %v: err = %v, want Canceled", mode, evalErr)
			}
			if ev.Stats.Visited > 64 {
				t.Fatalf("mode %v: %d nodes visited after cancellation, want <= 64 (one polling interval)",
					mode, ev.Stats.Visited)
			}
		}
	})
	for _, mode := range []string{"count", "nodes"} {
		t.Run("navpost-"+mode, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			opts := Options{
				ForceStrategy: StrategyTopDown,
				CustomMatchSets: map[string]func(string) []int32{
					"cancelset": func(string) []int32 { cancel(); return allTextIDs(d) },
				},
			}
			q, err := Compile("//b[cancelset(., 'x')]/ancestor::r", d, opts)
			if err != nil {
				t.Fatal(err)
			}
			var evalErr error
			switch mode {
			case "count":
				_, evalErr = q.CountCtx(ctx)
			case "nodes":
				_, evalErr = q.NodesCtx(ctx)
			}
			if !errors.Is(evalErr, context.Canceled) {
				t.Fatalf("%s: err = %v, want Canceled", mode, evalErr)
			}
		})
	}
}

// TestMidFlightCancelBottomUp cancels from inside the bottom-up climb. The
// custom predicate is consulted twice per compiled query — once by the cost
// model at compile time, once by the plan's shared match set on the first
// evaluation — so a stateful function cancels on the second call and returns
// every text id, and the climb's leaf-loop poll observes the cancellation.
func TestMidFlightCancelBottomUp(t *testing.T) {
	d := wideDoc(t, 10000)
	for _, mode := range []string{"count", "nodes", "exists"} {
		t.Run(mode, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			calls := 0
			opts := Options{
				ForceStrategy: StrategyBottomUp,
				CustomMatchSets: map[string]func(string) []int32{
					"cancelset": func(string) []int32 {
						calls++
						if calls == 2 {
							cancel()
						}
						return allTextIDs(d)
					},
				},
			}
			q, err := Compile("//b[cancelset(., 'x')]", d, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !q.UsesBottomUp() {
				t.Fatal("expected the bottom-up plan to be selected")
			}
			if calls != 1 {
				t.Fatalf("compile-time estimate calls = %d, want 1", calls)
			}
			var evalErr error
			switch mode {
			case "count":
				_, evalErr = q.CountCtx(ctx)
			case "nodes":
				_, evalErr = q.NodesCtx(ctx)
			case "exists":
				_, evalErr = q.Exists(ctx)
			}
			if calls != 2 {
				t.Fatalf("total match-set calls = %d, want 2", calls)
			}
			if !errors.Is(evalErr, context.Canceled) {
				t.Fatalf("%s: err = %v, want Canceled", mode, evalErr)
			}
		})
	}
}

// TestMidFlightCancelScanIter cancels a streaming iteration between Next
// calls: after the cancellation the iterator must stop within its 256-
// candidate polling interval and report the context's error.
func TestMidFlightCancelScanIter(t *testing.T) {
	d := wideDoc(t, 10000)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	q, err := Compile("//b", d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	it := q.Iter(ctx)
	defer it.Close()
	if _, ok := it.Next(); !ok {
		t.Fatalf("first Next: exhausted, err %v", it.Err())
	}
	cancel()
	results := 0
	for {
		_, ok := it.Next()
		if !ok {
			break
		}
		results++
		if results > 256 {
			t.Fatal("iterator produced >256 results after cancellation")
		}
	}
	if err := it.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err = %v, want Canceled", err)
	}
}

// TestCancellationStress runs every entry point from 8 goroutines while the
// shared context is cancelled concurrently, under -race: any single call may
// either complete (correct result) or fail with context.Canceled, and the
// shared compiled queries must tolerate the concurrency.
func TestCancellationStress(t *testing.T) {
	d := wideDoc(t, 2000)
	srcs := []string{"//b", "//b[. = 'w']", "//b[contains(., 'w')]", "//b/ancestor::r"}
	queries := make([]*Query, len(srcs))
	wants := make([]int, len(srcs))
	for i, src := range srcs {
		q, err := Compile(src, d, Options{})
		if err != nil {
			t.Fatal(err)
		}
		queries[i] = q
		wants[i] = len(q.Nodes())
	}
	const goroutines = 8
	const rounds = 25
	for r := 0; r < rounds; r++ {
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				q, want := queries[g%len(queries)], wants[g%len(queries)]
				check := func(err error, ok bool, what string) {
					if err != nil && !errors.Is(err, context.Canceled) {
						t.Errorf("%s: unexpected error %v", what, err)
					}
					if err == nil && !ok {
						t.Errorf("%s: wrong result with nil error", what)
					}
				}
				switch g % 4 {
				case 0:
					n, err := q.CountCtx(ctx)
					check(err, n == int64(want), "CountCtx")
				case 1:
					nodes, err := q.NodesCtx(ctx)
					check(err, len(nodes) == want, "NodesCtx")
				case 2:
					ex, err := q.Exists(ctx)
					check(err, ex == (want > 0), "Exists")
				case 3:
					it := q.Iter(ctx)
					n := 0
					for {
						if _, ok := it.Next(); !ok {
							break
						}
						n++
					}
					check(it.Err(), n == want, "Iter")
					it.Close()
				}
			}(g)
		}
		cancel()
		wg.Wait()
	}
}
