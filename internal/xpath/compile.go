package xpath

import (
	"fmt"

	"repro/internal/automata"
	"repro/internal/xmltree"
)

// Normalize exposes the AST normalization for baseline evaluators that
// share the query fragment (package dom, package stream).
func Normalize(path *Path) (*Path, error) { return normalize(path) }

// normalize rewrites the AST: attribute steps are desugared into the model's
// @-encoding (Section 2), self steps are fused into their predecessor, and
// the same rewriting is applied to paths inside predicates.
func normalize(path *Path) (*Path, error) {
	out := &Path{}
	for _, st := range path.Steps {
		// Normalize filter sub-paths first.
		var filters []Expr
		for _, f := range st.Filters {
			nf, err := normalizeExpr(f)
			if err != nil {
				return nil, err
			}
			filters = append(filters, nf)
		}
		switch st.Axis {
		case AxisAttribute:
			out.Steps = append(out.Steps,
				&Step{Axis: AxisChild, Test: NodeTest{Kind: TestName, Name: xmltree.AttrsLabel}},
				&Step{Axis: AxisChild, Test: st.Test, Filters: filters, underAttr: true})
		case AxisSelf:
			if st.Test.Kind != TestNode {
				return nil, fmt.Errorf("xpath: self axis with a %s test is not supported outside predicates", st.Test)
			}
			if len(out.Steps) == 0 {
				if len(filters) > 0 {
					return nil, fmt.Errorf("xpath: predicate on the root context is not supported")
				}
				continue
			}
			prev := out.Steps[len(out.Steps)-1]
			prev.Filters = append(prev.Filters, filters...)
		default:
			out.Steps = append(out.Steps, &Step{Axis: st.Axis, Test: st.Test, Filters: filters, underAttr: st.underAttr})
		}
	}
	if len(out.Steps) == 0 {
		return nil, fmt.Errorf("xpath: query selects nothing")
	}
	return out, nil
}

func normalizeExpr(e Expr) (Expr, error) {
	switch x := e.(type) {
	case *AndExpr:
		l, err := normalizeExpr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := normalizeExpr(x.R)
		if err != nil {
			return nil, err
		}
		return &AndExpr{L: l, R: r}, nil
	case *OrExpr:
		l, err := normalizeExpr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := normalizeExpr(x.R)
		if err != nil {
			return nil, err
		}
		return &OrExpr{L: l, R: r}, nil
	case *NotExpr:
		inner, err := normalizeExpr(x.E)
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: inner}, nil
	case *PathExpr:
		p, err := normalizeRel(x.Path)
		if err != nil {
			return nil, err
		}
		// Canonicalize "path[textpred(.)]" into "textpred(path)": the forms
		// are equivalent and the latter is what the bottom-up planner
		// recognizes (e.g. M05's ./LastName[starts-with(., 'Bar')]).
		last := p.Steps[len(p.Steps)-1]
		if len(last.Filters) == 1 {
			if te, ok := last.Filters[0].(*TextExpr); ok && te.Target == nil {
				stripped := *last
				stripped.Filters = nil
				steps := append(append([]*Step{}, p.Steps[:len(p.Steps)-1]...), &stripped)
				return &TextExpr{Op: te.Op, Target: &Path{Steps: steps}, Literal: te.Literal, Func: te.Func}, nil
			}
		}
		return &PathExpr{Path: p}, nil
	case *TextExpr:
		if x.Target == nil {
			return x, nil
		}
		p, err := normalizeRel(x.Target)
		if err != nil {
			return nil, err
		}
		return &TextExpr{Op: x.Op, Target: p, Literal: x.Literal, Func: x.Func}, nil
	}
	return nil, fmt.Errorf("xpath: unknown expression %T", e)
}

// normalizeRel normalizes a relative (predicate) path; a leading self step
// is dropped.
func normalizeRel(path *Path) (*Path, error) {
	n, err := normalize(&Path{Steps: path.Steps})
	if err != nil {
		return nil, err
	}
	return n, nil
}

// compiler turns a normalized AST into a marking automaton bound to a
// document (Section 5.2: the automaton is "isomorphic" to the query).
type compiler struct {
	doc  *xmltree.Doc
	f    *automata.Factory
	opts Options

	states []stateDef

	// mayOvercount is set when the construction cannot guarantee disjoint
	// result values (descendant step followed by following-sibling step);
	// counting then falls back to materialization.
	mayOvercount bool
}

type stateDef struct {
	trans  []automata.Transition
	bottom bool
}

func (c *compiler) newState(bottom bool) int {
	c.states = append(c.states, stateDef{bottom: bottom})
	return len(c.states) - 1
}

func (c *compiler) addTrans(q int, guard automata.LabelSet, phi *automata.Formula) {
	c.states[q].trans = append(c.states[q].trans, automata.Transition{Guard: guard, Phi: phi})
}

// guardFor maps a node test to a label set, following the paper's
// convention that "*" is the co-finite set L - {@, #, %, &} (Section 5.3).
func (c *compiler) guardFor(t NodeTest) (automata.LabelSet, bool) {
	d := c.doc
	switch t.Kind {
	case TestName:
		id := d.TagID(t.Name)
		if id < 0 {
			return automata.LabelSet{}, false // tag absent: no match possible
		}
		return automata.Finite(id), true
	case TestStar:
		return automata.AllBut(d.TextTag(), d.AttrsTag(), d.AttrValTag(), d.RootTag()), true
	case TestText:
		return automata.Finite(d.TextTag()), true
	case TestNode:
		return automata.AllBut(d.AttrsTag(), d.AttrValTag(), d.RootTag()), true
	}
	return automata.LabelSet{}, false
}

// compile builds the automaton for a normalized main path.
func (c *compiler) compile(path *Path) (*automata.Automaton, error) {
	q0 := c.newState(false)
	first, err := c.compileSteps(path.Steps, true, nil)
	if err != nil {
		return nil, err
	}
	entry := c.f.Down1(first)
	if path.Steps[0].Axis == AxisFollowingSibling {
		return nil, fmt.Errorf("xpath: following-sibling cannot be the first step")
	}
	c.addTrans(q0, automata.Finite(c.doc.RootTag()), entry)

	a, err := automata.NewAutomaton(len(c.states), c.f)
	if err != nil {
		return nil, err
	}
	a.Start = q0
	for q, def := range c.states {
		if def.bottom {
			a.SetBottom(q)
		}
		for _, t := range def.trans {
			a.AddTransition(q, t.Guard, t.Phi)
		}
	}
	a.Finish()
	return a, nil
}

// compileSteps allocates one state per step and wires the transitions.
//
// For the main (marking) path, per-state transitions are made mutually
// exclusive so that result counters never add the same mark twice
// (Section 5.5.3's disjointness guarantee): the neutral loop is guarded by
// the complement of the match guard, and a node matching the test takes
// either the filter-true transition (which continues the query but does not
// re-descend into territory the next state already covers) or the
// filter-false transition (which behaves like the loop). The inexact
// combinations — a following-sibling step after a descendant step, and a
// descendant step whose child-continuation is later followed by another
// descendant step — are flagged so counting falls back to materialization
// with set semantics.
//
// Existence paths inside predicates only need truth, so they keep the
// simpler overlapping construction with disjunctive (descendant) or
// right-linear (child/sibling) recursion; those states are not in B.
func (c *compiler) compileSteps(steps []*Step, marking bool, lastExtra *automata.Formula) (int, error) {
	ids := make([]int, len(steps))
	for i := range steps {
		ids[i] = c.newState(marking)
	}
	for i, st := range steps {
		q := ids[i]
		guard, matchable := c.guardFor(st.Test)

		// The neutral self-recursion formula for this state.
		var loop *automata.Formula
		switch st.Axis {
		case AxisChild, AxisFollowingSibling:
			loop = c.f.Down2(q)
		case AxisDescendant:
			if marking {
				loop = c.f.And(c.f.Down1(q), c.f.Down2(q))
			} else {
				loop = c.f.Or(c.f.Down1(q), c.f.Down2(q))
			}
		default:
			return 0, fmt.Errorf("xpath: unsupported axis %s after normalization", st.Axis)
		}

		if !marking {
			// Existence path: full loop plus additive match transition.
			c.addTrans(q, automata.AllLabels, loop)
			if !matchable {
				continue
			}
			var phi *automata.Formula
			if i+1 < len(steps) {
				var err error
				phi, err = c.continuation(steps[i+1], ids[i+1])
				if err != nil {
					return 0, err
				}
			} else if lastExtra != nil {
				phi = lastExtra
			} else {
				phi = c.f.True
			}
			for _, flt := range st.Filters {
				fphi, err := c.compileExpr(flt, st)
				if err != nil {
					return 0, err
				}
				phi = c.f.And(phi, fphi)
			}
			c.addTrans(q, guard, phi)
			continue
		}

		// Marking path: loop on the complement of the match guard.
		if !matchable {
			c.addTrans(q, automata.AllLabels, loop)
			continue
		}
		c.addTrans(q, complement(guard), loop)

		// Continuation and self-continuation at a matching node.
		var cont *automata.Formula
		contFollSib := false
		if i+1 < len(steps) {
			var err error
			cont, err = c.continuation(steps[i+1], ids[i+1])
			if err != nil {
				return 0, err
			}
			contFollSib = steps[i+1].Axis == AxisFollowingSibling
		} else {
			cont = c.f.Mark
		}
		var selfCont *automata.Formula
		switch st.Axis {
		case AxisDescendant:
			switch {
			case cont == c.f.Mark:
				// Continue everywhere: node, subtree and rest are disjoint.
				selfCont = c.f.And(c.f.Down1(q), c.f.Down2(q))
			case contFollSib:
				// The next state only scans the top-level chain after this
				// node, so deeper matches in the rest-region still need q;
				// the resulting value overlap makes counters inexact.
				selfCont = c.f.And(c.f.Down1(q), c.f.Down2(q))
				c.mayOvercount = true
			case i+1 < len(steps) && steps[i+1].Axis == AxisDescendant:
				// The next (descendant) state covers the whole subtree;
				// only the rest-region needs q. Nested matches would hand
				// the next state the same territory twice.
				selfCont = c.f.Down2(q)
			default:
				// Child-axis continuation: every result is attributed to
				// its unique parent's spawn, so recursing below nested
				// matches stays disjoint — and is required for coverage.
				selfCont = c.f.And(c.f.Down1(q), c.f.Down2(q))
				// Disjointness holds only while the remaining steps fix the
				// result's depth relative to the spawn (child/sibling axes).
				// A later descendant step can reach the same result from
				// child-spawns at several nesting depths of this state's
				// matches (e.g. //a/b//c with nested a), so the counters
				// overlap exactly like the following-sibling case above.
				for k := i + 2; k < len(steps); k++ {
					if steps[k].Axis == AxisDescendant {
						c.mayOvercount = true
						break
					}
				}
			}
		case AxisChild, AxisFollowingSibling:
			if contFollSib {
				// The next state scans the remainder of this very chain, so
				// later matches of q are already covered.
				selfCont = c.f.True
			} else {
				selfCont = c.f.Down2(q)
			}
		}

		filter := c.f.True
		for _, flt := range st.Filters {
			fphi, err := c.compileExpr(flt, st)
			if err != nil {
				return 0, err
			}
			filter = c.f.And(filter, fphi)
		}
		// Filter-true transition. The shape Mark AND (down1 q AND down2 q)
		// of an unfiltered final descendant step is what the collector
		// analysis (lazy result sets, Section 5.5.4) recognizes.
		c.addTrans(q, guard, c.f.And(c.f.And(cont, selfCont), filter))
		// Filter-false transition keeps the search alive past the node.
		if filter != c.f.True {
			c.addTrans(q, guard, c.f.And(c.f.Not(filter), loop))
		}
	}
	return ids[0], nil
}

// continuation returns the formula that launches the state of the next step
// from a matching node.
func (c *compiler) continuation(next *Step, nextID int) (*automata.Formula, error) {
	switch next.Axis {
	case AxisChild, AxisDescendant:
		return c.f.Down1(nextID), nil
	case AxisFollowingSibling:
		return c.f.Down2(nextID), nil
	}
	return nil, fmt.Errorf("xpath: unsupported axis %s", next.Axis)
}

func complement(s automata.LabelSet) automata.LabelSet {
	return automata.LabelSet{Cofinite: !s.Cofinite, Tags: s.Tags}
}

// compileExpr builds the formula for a predicate evaluated at a node whose
// step is carrier (used to type dot-targets for text predicates).
func (c *compiler) compileExpr(e Expr, carrier *Step) (*automata.Formula, error) {
	switch x := e.(type) {
	case *AndExpr:
		l, err := c.compileExpr(x.L, carrier)
		if err != nil {
			return nil, err
		}
		r, err := c.compileExpr(x.R, carrier)
		if err != nil {
			return nil, err
		}
		return c.f.And(l, r), nil
	case *OrExpr:
		l, err := c.compileExpr(x.L, carrier)
		if err != nil {
			return nil, err
		}
		r, err := c.compileExpr(x.R, carrier)
		if err != nil {
			return nil, err
		}
		return c.f.Or(l, r), nil
	case *NotExpr:
		inner, err := c.compileExpr(x.E, carrier)
		if err != nil {
			return nil, err
		}
		return c.f.Not(inner), nil
	case *PathExpr:
		if pathNeedsNav(x.Path) {
			// A predicate path with a backward (or following) step becomes a
			// built-in predicate that walks the document from the carrier
			// node; both TopDownRun and the bottom-up verifier then see it
			// as an ordinary node test (see nav.go).
			if err := navValidateSteps(c.opts, x.Path.Steps); err != nil {
				return nil, err
			}
			d, opts, steps := c.doc, c.opts, x.Path.Steps
			return c.f.Pred(x.String(), func(node int) bool {
				return navExists(d, opts, node, steps)
			}), nil
		}
		return c.compilePathFormula(x.Path, nil)
	case *TextExpr:
		if x.Op == OpCustom {
			if _, ok := c.opts.CustomMatchSets[x.Func]; !ok {
				return nil, fmt.Errorf("xpath: unknown function %q", x.Func)
			}
		}
		if x.Target != nil && pathNeedsNav(x.Target) {
			if err := navValidateSteps(c.opts, x.Target.Steps); err != nil {
				return nil, err
			}
			d, opts, te := c.doc, c.opts, x
			return c.f.Pred(x.String(), func(node int) bool {
				found := false
				navWalkPath(d, opts, node, te.Target.Steps, func(m int) bool {
					if navTextMatch(d, opts, m, te) {
						found = true
						return false
					}
					return true
				})
				return found
			}), nil
		}
		if x.Target == nil {
			pred := c.makePred(x.Op, x.Func, x.Literal, predTarget{test: carrier.Test, underAttr: carrier.underAttr})
			return c.f.Pred(x.String(), pred), nil
		}
		last := x.Target.Steps[len(x.Target.Steps)-1]
		pred := c.makePred(x.Op, x.Func, x.Literal, predTarget{test: last.Test, underAttr: last.underAttr})
		return c.compilePathFormula(x.Target, c.f.Pred(x.String(), pred))
	}
	return nil, fmt.Errorf("xpath: unknown expression %T", e)
}

// compilePathFormula compiles an existence path inside a predicate and
// returns the formula contribution at the carrier node.
func (c *compiler) compilePathFormula(p *Path, lastExtra *automata.Formula) (*automata.Formula, error) {
	first, err := c.compileSteps(p.Steps, false, lastExtra)
	if err != nil {
		return nil, err
	}
	switch p.Steps[0].Axis {
	case AxisChild, AxisDescendant:
		return c.f.Down1(first), nil
	case AxisFollowingSibling:
		return c.f.Down2(first), nil
	}
	return nil, fmt.Errorf("xpath: unsupported predicate path axis %s", p.Steps[0].Axis)
}
