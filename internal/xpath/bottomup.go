package xpath

import (
	"context"
	"sort"
	"sync"

	"repro/internal/xmltree"
)

// buPlan is a BottomUpRun plan (Section 5.4.2): for queries of the shape
//
//	/axis::step/.../axis::step[text-predicate]
//
// the text index produces the matching texts, each match is climbed up
// through the predicate's downward path to the candidate result nodes, and
// the candidates' paths to the root are verified against the main path.
// Shared ancestors are verified once via memoization, which plays the role
// of the shift-reduce stop-at-LCA rule of Figure 6.
type buPlan struct {
	doc       *xmltree.Doc
	mainSteps []*Step // the k main steps; result nodes match the last one
	downChain []dstep // from result node down to the value leaf
	op        TextOp
	fn        string
	lit       string
	leafTag   int32
	opts      Options

	estMatches int

	// The text match set is deterministic over the immutable document, so
	// it is computed once per compiled query and shared by all evaluations
	// (a cached query served concurrently must not repeat the FM locate,
	// which dominates bottom-up cost).
	matchOnce sync.Once
	matches   []int32
}

func (p *buPlan) matchedSet() []int32 {
	p.matchOnce.Do(func() { p.matches = matchSet(p.doc, p.opts, p.op, p.fn, p.lit) })
	return p.matches
}

// dstep is one downward hop of the predicate path.
type dstep struct {
	axis Axis
	test NodeTest
	leaf bool // the virtual hop onto the text/attribute-value leaf
}

// buildBottomUpPlan inspects the normalized query (or, for queries with
// backward steps, its downward prefix — Compile splits the path and applies
// the remaining axes navigationally on top of this plan's result set) and
// builds a bottom-up plan if the path has the supported shape and the text
// predicate can use the text index; it returns nil otherwise. Backward axes
// inside the path or the predicate target leave the plan ineligible: the
// climb of run() only walks child and descendant hops.
//
// Eligibility is purely structural; whether the plan actually runs is the
// cost model's decision (chooseStrategy in cost.go).
func buildBottomUpPlan(doc *xmltree.Doc, path *Path, opts Options) *buPlan {
	if doc.FM == nil || opts.DisableBottomUp || opts.ForceNaiveText {
		return nil
	}
	k := len(path.Steps)
	for i, st := range path.Steps {
		if st.Axis != AxisChild && st.Axis != AxisDescendant {
			return nil
		}
		if i < k-1 && len(st.Filters) > 0 {
			return nil
		}
	}
	last := path.Steps[k-1]
	if len(last.Filters) != 1 {
		return nil
	}
	te, ok := last.Filters[0].(*TextExpr)
	if !ok {
		return nil
	}
	plan := &buPlan{doc: doc, mainSteps: path.Steps, op: te.Op, fn: te.Func, lit: te.Literal, opts: opts}
	c := &compiler{doc: doc, opts: opts}
	var tgt predTarget
	if te.Target == nil {
		tgt = predTarget{test: last.Test, underAttr: last.underAttr}
	} else {
		for _, st := range te.Target.Steps {
			if (st.Axis != AxisChild && st.Axis != AxisDescendant) || len(st.Filters) > 0 {
				return nil
			}
			plan.downChain = append(plan.downChain, dstep{axis: st.Axis, test: st.Test})
		}
		tl := te.Target.Steps[len(te.Target.Steps)-1]
		tgt = predTarget{test: tl.Test, underAttr: tl.underAttr}
	}
	leafTag, single := c.singleText(tgt)
	if !single {
		return nil
	}
	plan.leafTag = leafTag
	// Unless the value target is itself a text() leaf, append the virtual
	// hop from the pure-text element (or attribute node) onto its leaf.
	if tgt.test.Kind != TestText {
		plan.downChain = append(plan.downChain, dstep{axis: AxisChild, leaf: true})
	}
	if te.Op == OpCustom {
		if _, ok := opts.CustomMatchSets[te.Func]; !ok {
			return nil
		}
	}
	return plan
}

func estimateMatches(doc *xmltree.Doc, opts Options, op TextOp, fn, lit string) int {
	p := []byte(lit)
	switch op {
	case OpContains:
		return doc.FM.GlobalCount(p)
	case OpStartsWith:
		return doc.FM.StartsWithCount(p)
	case OpEndsWith:
		return doc.FM.EndsWithCount(p)
	case OpEquals:
		return doc.FM.EqualsCount(p)
	case OpCustom:
		return len(matchSet(doc, opts, op, fn, lit))
	}
	return doc.NumTexts()
}

// nodeStep keys the climbing/verification memo tables.
type nodeStep struct{ node, j int }

// forEachCandidate climbs from each matched leaf in text order, calling
// emit for every candidate result node it discovers. Candidates can repeat
// (the same node is reachable from several leaves or chains); callers
// deduplicate. emit returns false to stop the climb early, which is what
// makes bottom-up existence checks output-sensitive. Cancellation is
// checked between leaves (a single climb is bounded by the tree depth).
func (p *buPlan) forEachCandidate(ctx context.Context, emit func(int) bool) error {
	d := p.doc
	set := p.matchedSet()
	climbed := map[nodeStep]bool{}
	stopped := false
	done := ctxDone(ctx)
	// The ancestor climbs are bounded by tree depth, but depth itself is
	// document-scale on degenerate inputs (one long element chain), so the
	// climbs share a poll counter with cancellation surfaced via climbErr —
	// stopping on a dead ctx must not masquerade as a complete result.
	var climbErr error
	climbTicks := 0

	var addCandidatesAbove func(node int, j int)
	addCandidatesAbove = func(node, j int) {
		key := nodeStep{node, j}
		if stopped || climbed[key] {
			return
		}
		climbed[key] = true
		if j < 0 {
			stopped = !emit(node)
			return
		}
		step := p.downChain[j]
		if step.axis == AxisChild {
			pa := d.Parent(node)
			if pa == xmltree.Nil {
				return
			}
			if j == 0 {
				stopped = !emit(pa)
			} else if p.matchesChain(pa, j-1) {
				addCandidatesAbove(pa, j-1)
			}
			return
		}
		// descendant hop: any proper ancestor can be the previous node
		for a := d.Parent(node); a != xmltree.Nil && !stopped; a = d.Parent(a) {
			climbTicks++
			if done != nil && climbTicks&1023 == 0 {
				select {
				case <-done:
					climbErr = ctx.Err()
					stopped = true
					return
				default:
				}
			}
			if j == 0 {
				stopped = !emit(a)
			} else if p.matchesChain(a, j-1) {
				addCandidatesAbove(a, j-1)
			}
		}
	}

	for i, id := range set {
		if done != nil && i&63 == 0 {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		leaf := d.TextIDToNode(int(id))
		if d.TagOf(leaf) != p.leafTag {
			continue
		}
		if len(p.downChain) == 0 {
			// The result nodes are the text leaves themselves.
			if !emit(leaf) {
				return nil
			}
			continue
		}
		// The leaf must match the last chain hop.
		if !p.matchesChain(leaf, len(p.downChain)-1) {
			continue
		}
		addCandidatesAbove(leaf, len(p.downChain)-1)
		if stopped {
			return climbErr // nil when emit asked to stop; ctx.Err() when cancelled mid-climb
		}
	}
	return nil
}

// verifier checks candidates against the last step's test and the upward
// main path (MatchAbove of Figure 6), memoizing both the per-candidate
// verdict and the shared ancestor verification.
type verifier struct {
	p       *buPlan
	verdict map[int]bool
	memo    map[nodeStep]bool
}

func (p *buPlan) newVerifier() *verifier {
	return &verifier{p: p, verdict: map[int]bool{}, memo: map[nodeStep]bool{}}
}

func (v *verifier) ok(x int) bool {
	if res, seen := v.verdict[x]; seen {
		return res
	}
	res := matchesTest(v.p.doc, x, v.p.mainSteps[len(v.p.mainSteps)-1].Test) &&
		v.p.matchUp(x, len(v.p.mainSteps)-1, v.memo)
	v.verdict[x] = res
	return res
}

// run executes the plan and returns the sorted result node positions.
func (p *buPlan) run() []int {
	out, _ := p.runCtx(context.Background())
	return out
}

// runCtx is run with cancellation: a nil error means out is complete.
func (p *buPlan) runCtx(ctx context.Context) ([]int, error) {
	v := p.newVerifier()
	var out []int
	err := p.forEachCandidate(ctx, func(x int) bool {
		if _, seen := v.verdict[x]; !seen && v.ok(x) {
			out = append(out, x)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	sort.Ints(out)
	return out, nil
}

// countCtx counts the distinct verified results without materializing a
// node slice (counting mode over the climb).
func (p *buPlan) countCtx(ctx context.Context) (int64, error) {
	v := p.newVerifier()
	var n int64
	err := p.forEachCandidate(ctx, func(x int) bool {
		if _, seen := v.verdict[x]; !seen && v.ok(x) {
			n++
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	return n, nil
}

// existsCtx reports whether the plan produces any result, stopping the
// climb at the first verified candidate: for a selective text predicate
// this touches one leaf-to-root path instead of the whole match set.
func (p *buPlan) existsCtx(ctx context.Context) (bool, error) {
	v := p.newVerifier()
	found := false
	err := p.forEachCandidate(ctx, func(x int) bool {
		if v.ok(x) {
			found = true
			return false
		}
		return true
	})
	if err != nil {
		return false, err
	}
	return found, nil
}

func (p *buPlan) matchesChain(node, j int) bool {
	step := p.downChain[j]
	if step.leaf {
		return p.doc.TagOf(node) == p.leafTag
	}
	return matchesTest(p.doc, node, step.test)
}

// matchUp verifies that mainSteps[0..i-1] can be matched on the ancestor
// path of node (which matches step i), reaching the synthetic root.
func (p *buPlan) matchUp(node, i int, memo map[nodeStep]bool) bool {
	d := p.doc
	if i == 0 {
		if p.mainSteps[0].Axis == AxisChild {
			return d.Parent(node) == d.Root()
		}
		return node != d.Root()
	}
	key := nodeStep{node, i}
	if v, ok := memo[key]; ok {
		return v
	}
	res := false
	if p.mainSteps[i].Axis == AxisChild {
		pa := d.Parent(node)
		if pa != xmltree.Nil && matchesTest(d, pa, p.mainSteps[i-1].Test) {
			res = p.matchUp(pa, i-1, memo)
		}
	} else {
		for a := d.Parent(node); a != xmltree.Nil; a = d.Parent(a) {
			if matchesTest(d, a, p.mainSteps[i-1].Test) && p.matchUp(a, i-1, memo) {
				res = true
				break
			}
		}
	}
	memo[key] = res
	return res
}

// matchesTest checks a node test directly on a document node.
func matchesTest(d *xmltree.Doc, x int, t NodeTest) bool {
	tag := d.TagOf(x)
	switch t.Kind {
	case TestName:
		id := d.TagID(t.Name)
		return id >= 0 && tag == id
	case TestStar:
		return tag != d.TextTag() && tag != d.AttrsTag() && tag != d.AttrValTag() && tag != d.RootTag()
	case TestText:
		return tag == d.TextTag()
	case TestNode:
		return tag != d.AttrsTag() && tag != d.AttrValTag() && tag != d.RootTag()
	}
	return false
}
