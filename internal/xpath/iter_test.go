package xpath

// Iterator-laziness tests: the streaming iterator must make Exists
// output-sensitive (first hit, not full evaluation) and the counting mode
// must stay allocation-bounded regardless of the result cardinality. Both
// run on a million-node document so an accidental fallback to materialized
// evaluation shows up as a gross, not marginal, violation.

import (
	"context"
	"strings"
	"testing"

	"repro/internal/xmltree"
)

const millionNodes = 1 << 20

// millionDoc is <r><b/><a/><a/>...</r> with a million a elements after a
// single leading b.
func millionDoc(t testing.TB) *xmltree.Doc {
	t.Helper()
	var sb strings.Builder
	sb.Grow(4*millionNodes + 16)
	sb.WriteString("<r><b/>")
	for i := 0; i < millionNodes; i++ {
		sb.WriteString("<a/>")
	}
	sb.WriteString("</r>")
	d, err := xmltree.Parse([]byte(sb.String()), xmltree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestExistsVisitsFirstHitOnly(t *testing.T) {
	d := millionDoc(t)
	q, err := Compile("//b", d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !q.streamable() {
		t.Fatal("//b should stream")
	}
	ctx := context.Background()
	it, ok := q.Iter(ctx).(*scanIter)
	if !ok {
		t.Fatalf("Iter returned %T, want *scanIter", q.Iter(ctx))
	}
	defer it.Close()
	if _, found := it.Next(); !found {
		t.Fatalf("first Next: no result, err %v", it.Err())
	}
	// The jump-mode scan lands on the single b directly: one candidate
	// checked, not a million.
	if it.checked > 4 {
		t.Fatalf("first result took %d candidate checks, want O(1)", it.checked)
	}
	ex, err := q.Exists(ctx)
	if err != nil || !ex {
		t.Fatalf("Exists = %v, %v", ex, err)
	}
}

// TestIterStopsEarly pins the other half of laziness: pulling k results from
// a million-result query touches ~k candidates, not the full set.
func TestIterStopsEarly(t *testing.T) {
	d := millionDoc(t)
	q, err := Compile("//a", d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	it := q.Iter(context.Background()).(*scanIter)
	defer it.Close()
	const k = 10
	for i := 0; i < k; i++ {
		if _, ok := it.Next(); !ok {
			t.Fatalf("Next %d: exhausted, err %v", i, it.Err())
		}
	}
	if it.checked > k+4 {
		t.Fatalf("%d results took %d candidate checks, want ~%d", k, it.checked, k)
	}
}

func TestCountAllocsBounded(t *testing.T) {
	d := millionDoc(t)
	q, err := Compile("//a", d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if q.UsesBottomUp() || q.post != nil || q.mayOvercount {
		t.Fatal("expected a pure top-down counting query")
	}
	want := q.Count()
	if want != millionNodes {
		t.Fatalf("Count = %d, want %d", want, millionNodes)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if n := q.Count(); n != want {
			t.Fatalf("Count = %d, want %d", n, want)
		}
	})
	// Counting mode resolves //a from the tag rank directories (Section
	// 5.5.3/5.5.4): a handful of fixed evaluator structures, no per-result
	// work at all. Materializing the same query builds and expands the
	// million-node result sequence.
	if allocs > 100 {
		t.Fatalf("Count allocated %.0f objects per run; counting mode must not scale with the %d results",
			allocs, want)
	}
}
