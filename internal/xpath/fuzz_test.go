package xpath_test

import (
	"strings"
	"testing"

	"repro/internal/xmltree"
	. "repro/internal/xpath"
)

// FuzzParseQuery pins the parser/compiler contract on arbitrary input:
// ParseQuery either errors or yields an AST that normalizes and compiles
// against a real document without panicking, and the compiled query
// evaluates. Run with `go test -fuzz FuzzParseQuery ./internal/xpath`; in a
// plain `go test` run the seed corpus below is executed as regression
// cases.
func FuzzParseQuery(f *testing.F) {
	for _, s := range []string{
		"//listitem//keyword",
		"/parts/part[stock and color]",
		"//part[ @name = 'pen' ]/color",
		"//part[ contains(., 'discontinued') ]",
		"//keyword[ starts-with(., 'go') ]/following-sibling::emph",
		"//*[not(.//keyword) or ends-with(., 'x')]//text()",
		"//a[b/c = 'd']",
		"self::node()",
		"//a[.//b[c][.//d = 'e'] and not(@f)]",
		"",
		"//",
		"//a[",
		"//a]'",
		"not(not(not(//a)))",
		strings.Repeat("not(", 300) + "//a" + strings.Repeat(")", 300),
		strings.Repeat("//a[b]", 50),
		"//a[\"unterminated",
		"//a[. = 'quote\\'s']",
		"descendant::*",
		"@attr",
		"//text()[. = '&']",
		"//keyword/parent::listitem",
		"//keyword/..",
		"/part/../listitem",
		"//emph/ancestor::listitem",
		"//emph/ancestor-or-self::node()",
		"//emph/preceding-sibling::keyword",
		"//part/preceding::keyword",
		"//keyword/following::color",
		"//color[parent::part]",
		"//part[preceding-sibling::listitem]",
		"//emph[ancestor::doc and not(preceding::part)]",
		"//keyword[contains(.., 'pen')]",
		"//listitem/descendant-or-self::keyword",
		"/descendant-or-self::node()",
		"..",
		"/..",
		"//..",
		"../..[a]",
		"..::x",
		"//a/..b",
		"preceding::",
	} {
		f.Add(s)
	}
	doc, err := xmltree.Parse([]byte(
		`<doc a="1"><listitem><keyword>gold</keyword><emph>x</emph></listitem>`+
			`<part name="pen"><color>blue</color></part>text</doc>`),
		xmltree.Options{SampleRate: 4})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, src string) {
		path, err := ParseQuery(src)
		if err != nil {
			return
		}
		if path == nil || len(path.Steps) == 0 {
			t.Fatalf("ParseQuery(%q): nil/empty path without error", src)
		}
		// String must not panic on any accepted AST.
		_ = path.String()
		// The full pipeline must not panic; errors are fine (unsupported
		// fragment shapes are rejected during normalize/compile).
		q, err := Compile(src, doc, Options{})
		if err != nil {
			return
		}
		nodes := q.Nodes()
		if n := q.Count(); n != int64(len(nodes)) {
			t.Fatalf("Compile(%q): Count=%d but Nodes has %d entries", src, n, len(nodes))
		}
	})
}
