// Package xpath implements the full-axis Core+ XPath fragment: Core XPath
// (every XPath axis but namespace — child, descendant, descendant-or-self,
// self, attribute, following-sibling, following, parent, ancestor,
// ancestor-or-self, preceding-sibling and preceding — with filters, and,
// or, not) extended with the text predicates =, contains, starts-with and
// ends-with. Queries
// are compiled into the marking tree automata of package automata
// (Section 5.2) for the downward fragment, with a planner that chooses
// between TopDownRun and BottomUpRun and between the FM-index and the naive
// text store (Section 6.6); upward and leftward steps, which the balanced
// parentheses answer in constant-or-log time (Parent, PrevSibling,
// FindOpen), are evaluated by direct navigation (see nav.go).
package xpath

import (
	"fmt"
	"strings"
)

// Axis enumerates the supported axes. The first group (through
// AxisFollowingSibling) is expressible by the downward marking automaton;
// the second group is evaluated navigationally over the BP structure.
type Axis uint8

const (
	AxisChild Axis = iota
	AxisDescendant
	AxisSelf
	AxisAttribute
	AxisFollowingSibling

	AxisDescendantOrSelf
	AxisParent
	AxisAncestor
	AxisAncestorOrSelf
	AxisPrecedingSibling
	AxisPreceding
	AxisFollowing
)

func (a Axis) String() string {
	switch a {
	case AxisChild:
		return "child"
	case AxisDescendant:
		return "descendant"
	case AxisSelf:
		return "self"
	case AxisAttribute:
		return "attribute"
	case AxisFollowingSibling:
		return "following-sibling"
	case AxisDescendantOrSelf:
		return "descendant-or-self"
	case AxisParent:
		return "parent"
	case AxisAncestor:
		return "ancestor"
	case AxisAncestorOrSelf:
		return "ancestor-or-self"
	case AxisPrecedingSibling:
		return "preceding-sibling"
	case AxisPreceding:
		return "preceding"
	case AxisFollowing:
		return "following"
	}
	return "?"
}

// TestKind enumerates node tests.
type TestKind uint8

const (
	TestName TestKind = iota // a tag name
	TestStar                 // *
	TestText                 // text()
	TestNode                 // node()
)

// NodeTest is a node test.
type NodeTest struct {
	Kind TestKind
	Name string
}

func (t NodeTest) String() string {
	switch t.Kind {
	case TestName:
		return t.Name
	case TestStar:
		return "*"
	case TestText:
		return "text()"
	}
	return "node()"
}

// Step is one location step.
type Step struct {
	Axis    Axis
	Test    NodeTest
	Filters []Expr

	// underAttr is set by normalization when this step selects attribute
	// nodes (whose value leaf is labeled %, not #).
	underAttr bool
}

func (s *Step) String() string {
	out := s.Axis.String() + "::" + s.Test.String()
	for _, f := range s.Filters {
		out += "[" + f.String() + "]"
	}
	return out
}

// Path is a sequence of steps.
type Path struct {
	Steps []*Step
}

func (p *Path) String() string {
	parts := make([]string, len(p.Steps))
	for i, s := range p.Steps {
		parts[i] = s.String()
	}
	return "/" + strings.Join(parts, "/")
}

// Expr is a filter expression.
type Expr interface{ String() string }

// AndExpr, OrExpr, NotExpr are the Boolean connectives.
type AndExpr struct{ L, R Expr }
type OrExpr struct{ L, R Expr }
type NotExpr struct{ E Expr }

func (e *AndExpr) String() string { return "(" + e.L.String() + " and " + e.R.String() + ")" }
func (e *OrExpr) String() string  { return "(" + e.L.String() + " or " + e.R.String() + ")" }
func (e *NotExpr) String() string { return "not(" + e.E.String() + ")" }

// PathExpr tests the existence of a relative path.
type PathExpr struct{ Path *Path }

func (e *PathExpr) String() string { return e.Path.String() }

// TextOp enumerates text predicates.
type TextOp uint8

const (
	OpContains TextOp = iota
	OpStartsWith
	OpEndsWith
	OpEquals
	// OpCustom is an extension predicate (e.g. the PSSM matcher of Section
	// 6.7) resolved through Options.CustomMatchSets by function name.
	OpCustom
)

func (o TextOp) String() string {
	switch o {
	case OpContains:
		return "contains"
	case OpStartsWith:
		return "starts-with"
	case OpEndsWith:
		return "ends-with"
	case OpCustom:
		return "custom"
	}
	return "="
}

// TextExpr applies a text predicate to the string value of a target. A nil
// Target means the current node (".").
type TextExpr struct {
	Op      TextOp
	Target  *Path // nil = current node
	Literal string
	// Func names the extension predicate when Op == OpCustom.
	Func string
}

func (e *TextExpr) String() string {
	tgt := "."
	if e.Target != nil {
		tgt = e.Target.String()
	}
	if e.Op == OpEquals {
		return tgt + " = " + fmt.Sprintf("%q", e.Literal)
	}
	name := e.Op.String()
	if e.Op == OpCustom {
		name = e.Func
	}
	return fmt.Sprintf("%s(%s, %q)", name, tgt, e.Literal)
}

// --- Lexer ---

type tokKind uint8

const (
	tkEOF tokKind = iota
	tkSlash
	tkDSlash // //
	tkLBracket
	tkRBracket
	tkLParen
	tkRParen
	tkComma
	tkAxis // name followed by ::
	tkName
	tkStar
	tkAt
	tkDot
	tkDotDot // ..
	tkEquals
	tkString
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// ParseError reports a malformed query.
type ParseError struct {
	Pos int
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("xpath parse error at %d: %s", e.Pos, e.Msg)
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '/':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '/' {
				l.emit(tkDSlash, "//")
				l.pos += 2
			} else {
				l.emit(tkSlash, "/")
				l.pos++
			}
		case c == '[':
			l.emit(tkLBracket, "[")
			l.pos++
		case c == ']':
			l.emit(tkRBracket, "]")
			l.pos++
		case c == '(':
			l.emit(tkLParen, "(")
			l.pos++
		case c == ')':
			l.emit(tkRParen, ")")
			l.pos++
		case c == ',':
			l.emit(tkComma, ",")
			l.pos++
		case c == '*':
			l.emit(tkStar, "*")
			l.pos++
		case c == '@':
			l.emit(tkAt, "@")
			l.pos++
		case c == '.':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '.' {
				l.emit(tkDotDot, "..")
				l.pos += 2
			} else {
				l.emit(tkDot, ".")
				l.pos++
			}
		case c == '=':
			l.emit(tkEquals, "=")
			l.pos++
		case c == '\'' || c == '"':
			quote := c
			j := l.pos + 1
			for j < len(l.src) && l.src[j] != quote {
				j++
			}
			if j >= len(l.src) {
				return nil, &ParseError{Pos: l.pos, Msg: "unterminated string literal"}
			}
			l.emit(tkString, unescapeLiteral(l.src[l.pos+1:j]))
			l.pos = j + 1
		case isNameStart(c):
			j := l.pos
			for j < len(l.src) && isNameChar(l.src[j]) {
				j++
			}
			name := l.src[l.pos:j]
			if strings.HasPrefix(l.src[j:], "::") {
				l.emit(tkAxis, name)
				l.pos = j + 2
			} else {
				l.emit(tkName, name)
				l.pos = j
			}
		default:
			return nil, &ParseError{Pos: l.pos, Msg: fmt.Sprintf("unexpected character %q", c)}
		}
	}
	l.emit(tkEOF, "")
	return l.toks, nil
}

func (l *lexer) emit(k tokKind, text string) {
	l.toks = append(l.toks, token{kind: k, text: text, pos: l.pos})
}

func isNameStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c >= 0x80
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c >= '0' && c <= '9' || c == '-'
}

// unescapeLiteral resolves the common C-style escapes the paper uses in its
// benchmark queries (e.g. "1999\n11\n26" in M11).
func unescapeLiteral(s string) string {
	if !strings.Contains(s, "\\") {
		return s
	}
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			switch s[i] {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case 'r':
				sb.WriteByte('\r')
			case '\\':
				sb.WriteByte('\\')
			default:
				sb.WriteByte('\\')
				sb.WriteByte(s[i])
			}
		} else {
			sb.WriteByte(s[i])
		}
	}
	return sb.String()
}

// --- Parser ---

type parser struct {
	toks []token
	i    int
	// depth bounds the combined nesting of predicates, parentheses and
	// sub-paths so pathological inputs (e.g. ten thousand "not(" in a row)
	// fail with a ParseError instead of exhausting the goroutine stack —
	// later recursive passes (normalize, compile, the dom oracle) then
	// inherit the same bound.
	depth int
}

// maxParseDepth is far beyond any real query but well within stack limits.
const maxParseDepth = 200

func (p *parser) enter() error {
	p.depth++
	if p.depth > maxParseDepth {
		return &ParseError{Pos: p.cur().pos, Msg: "query nesting too deep"}
	}
	return nil
}

func (p *parser) leave() { p.depth-- }

// ParseQuery parses a Core+ query.
func ParseQuery(src string) (*Path, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	path, err := p.parsePath(true)
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tkEOF {
		return nil, p.errf("trailing input %q", p.cur().text)
	}
	if len(path.Steps) == 0 {
		return nil, p.errf("empty query")
	}
	return path, nil
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Pos: p.cur().pos, Msg: fmt.Sprintf(format, args...)}
}

// parsePath parses [/|//] step ((/|//) step)*. At the top level a leading
// slash is implied; inside predicates a leading "./" or ".//" or bare step
// makes the path relative (the same thing for our evaluation model).
func (p *parser) parsePath(top bool) (*Path, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	path := &Path{}
	nextAxis := AxisChild
	// Optional leading ./ or . for relative paths.
	if !top && p.cur().kind == tkDot {
		// Lone "." (current node) is handled by the caller; here "." must
		// be followed by a slash.
		p.next()
		switch p.cur().kind {
		case tkSlash:
			p.next()
		case tkDSlash:
			p.next()
			nextAxis = AxisDescendant
		default:
			return nil, p.errf("expected / or // after .")
		}
	} else {
		switch p.cur().kind {
		case tkSlash:
			p.next()
		case tkDSlash:
			p.next()
			nextAxis = AxisDescendant
		}
	}
	for {
		step, err := p.parseStep(nextAxis)
		if err != nil {
			return nil, err
		}
		path.Steps = append(path.Steps, step)
		switch p.cur().kind {
		case tkSlash:
			p.next()
			nextAxis = AxisChild
		case tkDSlash:
			p.next()
			nextAxis = AxisDescendant
		default:
			return path, nil
		}
	}
}

// parseStep parses one location step; defaultAxis applies when no explicit
// axis is given (child, or descendant after //).
func (p *parser) parseStep(defaultAxis Axis) (*Step, error) {
	st := &Step{Axis: defaultAxis}
	switch p.cur().kind {
	case tkAxis:
		name := p.next().text
		switch name {
		case "child":
			st.Axis = AxisChild
		case "descendant":
			st.Axis = AxisDescendant
		case "self":
			st.Axis = AxisSelf
		case "attribute":
			st.Axis = AxisAttribute
		case "following-sibling":
			st.Axis = AxisFollowingSibling
		case "parent":
			st.Axis = AxisParent
		case "ancestor":
			st.Axis = AxisAncestor
		case "ancestor-or-self":
			st.Axis = AxisAncestorOrSelf
		case "preceding-sibling":
			st.Axis = AxisPrecedingSibling
		case "preceding":
			st.Axis = AxisPreceding
		case "following":
			st.Axis = AxisFollowing
		case "descendant-or-self":
			st.Axis = AxisDescendantOrSelf
		default:
			return nil, p.errf("unknown axis %q (supported: child, descendant, descendant-or-self, self, attribute, following-sibling, following, parent, ancestor, ancestor-or-self, preceding-sibling, preceding)", name)
		}
	case tkAt:
		p.next()
		st.Axis = AxisAttribute
	case tkDot:
		p.next()
		st.Axis = AxisSelf
		st.Test = NodeTest{Kind: TestNode}
		return p.parseFilters(st)
	case tkDotDot:
		// ".." abbreviates parent::node(). As everywhere in this grammar, an
		// explicit axis overrides the // shorthand, so "a//.." is a/..
		p.next()
		st.Axis = AxisParent
		st.Test = NodeTest{Kind: TestNode}
		return p.parseFilters(st)
	}
	// Node test.
	switch p.cur().kind {
	case tkStar:
		p.next()
		st.Test = NodeTest{Kind: TestStar}
	case tkName:
		name := p.next().text
		if p.cur().kind == tkLParen && (name == "text" || name == "node") {
			p.next()
			if p.cur().kind != tkRParen {
				return nil, p.errf("expected ) after %s(", name)
			}
			p.next()
			if name == "text" {
				st.Test = NodeTest{Kind: TestText}
			} else {
				st.Test = NodeTest{Kind: TestNode}
			}
		} else {
			st.Test = NodeTest{Kind: TestName, Name: name}
		}
	default:
		return nil, p.errf("expected node test, got %q", p.cur().text)
	}
	return p.parseFilters(st)
}

func (p *parser) parseFilters(st *Step) (*Step, error) {
	for p.cur().kind == tkLBracket {
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.cur().kind != tkRBracket {
			return nil, p.errf("expected ] after predicate")
		}
		p.next()
		st.Filters = append(st.Filters, e)
	}
	return st, nil
}

// parseExpr parses or-expressions.
func (p *parser) parseExpr() (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tkName && p.cur().text == "or" {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &OrExpr{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tkName && p.cur().text == "and" {
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &AndExpr{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tkName && t.text == "not":
		p.next()
		if p.cur().kind != tkLParen {
			return nil, p.errf("expected ( after not")
		}
		p.next()
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.cur().kind != tkRParen {
			return nil, p.errf("expected ) to close not(")
		}
		p.next()
		return &NotExpr{E: inner}, nil
	case t.kind == tkLParen:
		p.next()
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.cur().kind != tkRParen {
			return nil, p.errf("expected )")
		}
		p.next()
		return inner, nil
	case t.kind == tkName && t.text != "not" && t.text != "text" && t.text != "node" && p.toks[p.i+1].kind == tkLParen:
		name := p.next().text
		p.next() // (
		target, err := p.parseValueTarget()
		if err != nil {
			return nil, err
		}
		if p.cur().kind != tkComma {
			return nil, p.errf("expected , in %s()", name)
		}
		p.next()
		if p.cur().kind != tkString {
			return nil, p.errf("expected string literal in %s()", name)
		}
		lit := p.next().text
		if p.cur().kind != tkRParen {
			return nil, p.errf("expected ) to close %s()", name)
		}
		p.next()
		op := OpContains
		fn := ""
		switch name {
		case "contains":
		case "starts-with":
			op = OpStartsWith
		case "ends-with":
			op = OpEndsWith
		default:
			op, fn = OpCustom, name
		}
		return &TextExpr{Op: op, Target: target, Literal: lit, Func: fn}, nil
	default:
		// A path expression, optionally compared with = literal.
		target, err := p.parseValueTarget()
		if err != nil {
			return nil, err
		}
		if p.cur().kind == tkEquals {
			p.next()
			if p.cur().kind != tkString {
				return nil, p.errf("expected string literal after =")
			}
			lit := p.next().text
			return &TextExpr{Op: OpEquals, Target: target, Literal: lit}, nil
		}
		if target == nil {
			return nil, p.errf("bare . is not a predicate")
		}
		return &PathExpr{Path: target}, nil
	}
}

// parseValueTarget parses "." (returns nil) or a relative path.
func (p *parser) parseValueTarget() (*Path, error) {
	if p.cur().kind == tkDot {
		// "." alone, or "./..." / ".//..." path
		if p.toks[p.i+1].kind == tkSlash || p.toks[p.i+1].kind == tkDSlash {
			return p.parsePath(false)
		}
		p.next()
		return nil, nil
	}
	if p.cur().kind == tkAxis && p.cur().text == "self" {
		// self::node() etc. means the current node
		save := p.i
		st, err := p.parseStep(AxisSelf)
		if err != nil {
			return nil, err
		}
		if st.Axis == AxisSelf && len(st.Filters) == 0 {
			return nil, nil
		}
		p.i = save
	}
	switch p.cur().kind {
	case tkSlash, tkDSlash, tkName, tkStar, tkAt, tkAxis, tkDotDot:
		return p.parsePath(false)
	}
	return nil, p.errf("expected path or . , got %q", p.cur().text)
}
