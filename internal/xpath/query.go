package xpath

import (
	"io"
	"sync"

	"repro/internal/automata"
	"repro/internal/xmltree"
)

// Options configure query compilation and evaluation.
type Options struct {
	// Eval toggles the automata optimizations (the Figure 12 ablation axes).
	Eval automata.Options
	// DisableBottomUp forces TopDownRun even for eligible queries.
	DisableBottomUp bool
	// ForceNaiveText disables the FM-index for text predicates, using the
	// naive string-value semantics everywhere.
	ForceNaiveText bool
	// PlainCutoff is the global-count threshold above which contains
	// predicates scan the plain texts instead of locating via the FM-index
	// (Section 3.4). Zero means the default.
	PlainCutoff int
	// CustomMatchSets registers extension predicates by function name (the
	// paper's PSSM queries, Section 6.7): the function receives the literal
	// argument and returns the sorted ids of matching texts.
	CustomMatchSets map[string]func(lit string) []int32
}

// Query is a compiled Core+ query bound to a document. A Query is safe for
// concurrent use by multiple goroutines: every evaluation builds its own
// evaluator state, and the statistics of the most recently finished
// evaluation are kept behind a mutex (see Stats).
type Query struct {
	Src string
	AST *Path

	doc  *xmltree.Doc
	auto *automata.Automaton
	plan *buPlan
	opts Options

	// mayOvercount: counters are not guaranteed disjoint (see compileSteps);
	// Count falls back to materialized set semantics.
	mayOvercount bool

	statsMu   sync.Mutex
	lastStats automata.Stats
}

// Strategy describes the chosen evaluation plan, in the notation of
// Figure 14: "top-down" or "bottom-up", plus "fm" or "naive" when the query
// has text predicates.
func (q *Query) Strategy() string {
	s := "top-down"
	if q.plan != nil {
		s = "bottom-up"
	}
	if hasText, fm := q.textInfo(); hasText {
		if fm && !q.opts.ForceNaiveText && q.doc.FM != nil {
			return s + ",fm"
		}
		return s + ",naive"
	}
	return s
}

func (q *Query) textInfo() (hasText, fmUsable bool) {
	c := &compiler{doc: q.doc, opts: q.opts}
	var walkExpr func(e Expr, carrier *Step)
	var walkPath func(p *Path)
	fmUsable = true
	walkExpr = func(e Expr, carrier *Step) {
		switch x := e.(type) {
		case *AndExpr:
			walkExpr(x.L, carrier)
			walkExpr(x.R, carrier)
		case *OrExpr:
			walkExpr(x.L, carrier)
			walkExpr(x.R, carrier)
		case *NotExpr:
			walkExpr(x.E, carrier)
		case *PathExpr:
			walkPath(x.Path)
		case *TextExpr:
			hasText = true
			tgt := predTarget{test: carrier.Test, underAttr: carrier.underAttr}
			if x.Target != nil {
				walkPath(x.Target)
				tl := x.Target.Steps[len(x.Target.Steps)-1]
				tgt = predTarget{test: tl.Test, underAttr: tl.underAttr}
			}
			if _, ok := c.singleText(tgt); !ok {
				fmUsable = false
			}
		}
	}
	walkPath = func(p *Path) {
		for _, st := range p.Steps {
			for _, f := range st.Filters {
				walkExpr(f, st)
			}
		}
	}
	walkPath(q.AST)
	return hasText, fmUsable
}

// Compile parses, normalizes, plans and compiles a query against a document.
func Compile(src string, doc *xmltree.Doc, opts Options) (*Query, error) {
	ast, err := ParseQuery(src)
	if err != nil {
		return nil, err
	}
	norm, err := normalize(ast)
	if err != nil {
		return nil, err
	}
	q := &Query{Src: src, AST: norm, doc: doc, opts: opts}
	q.plan = planBottomUp(doc, norm, opts)
	if q.plan == nil {
		c := &compiler{doc: doc, f: automata.NewFactory(), opts: opts}
		auto, err := c.compile(norm)
		if err != nil {
			return nil, err
		}
		q.auto = auto
		q.mayOvercount = c.mayOvercount
	}
	return q, nil
}

// Count returns the number of result nodes (counting mode, Section 5.5.3).
func (q *Query) Count() int64 {
	if q.plan != nil {
		nodes := q.plan.run()
		q.setStats(automata.Stats{Visited: int64(len(nodes)), Marked: int64(len(nodes))})
		return int64(len(nodes))
	}
	if q.mayOvercount {
		return int64(len(q.Nodes()))
	}
	ev := automata.NewEvaluator(q.auto, q.doc, automata.Count, q.opts.Eval)
	n, _ := ev.Run()
	q.setStats(ev.Stats)
	return n
}

// Nodes materializes the result nodes in document order.
func (q *Query) Nodes() []int {
	if q.plan != nil {
		nodes := q.plan.run()
		q.setStats(automata.Stats{Visited: int64(len(nodes)), Marked: int64(len(nodes))})
		return nodes
	}
	ev := automata.NewEvaluator(q.auto, q.doc, automata.Materialize, q.opts.Eval)
	_, nodes := ev.Run()
	q.setStats(ev.Stats)
	return nodes
}

// Serialize writes the XML serialization of every result node to w and
// returns the number of results.
func (q *Query) Serialize(w io.Writer) (int, error) {
	nodes := q.Nodes()
	for _, x := range nodes {
		tag := q.doc.TagOf(x)
		var err error
		if tag == q.doc.TextTag() || tag == q.doc.AttrValTag() {
			err = q.doc.GetText(q.doc.NodeToTextID(x), w)
		} else {
			err = q.doc.GetSubtree(x, w)
		}
		if err != nil {
			return 0, err
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return 0, err
		}
	}
	return len(nodes), nil
}

func (q *Query) setStats(s automata.Stats) {
	q.statsMu.Lock()
	q.lastStats = s
	q.statsMu.Unlock()
}

// Stats returns the evaluation statistics of the most recently finished
// Count/Nodes call (any goroutine's).
func (q *Query) Stats() automata.Stats {
	q.statsMu.Lock()
	defer q.statsMu.Unlock()
	return q.lastStats
}

// Automaton exposes the compiled automaton (nil for bottom-up plans); used
// by tests and the benchmark harness.
func (q *Query) Automaton() *automata.Automaton { return q.auto }

// UsesBottomUp reports whether the bottom-up plan was selected.
func (q *Query) UsesBottomUp() bool { return q.plan != nil }
