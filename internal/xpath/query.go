package xpath

import (
	"context"
	"io"
	"sync"

	"repro/internal/automata"
	"repro/internal/xmltree"
)

// Options configure query compilation and evaluation.
type Options struct {
	// Eval toggles the automata optimizations (the Figure 12 ablation axes).
	Eval automata.Options
	// ForceStrategy overrides the cost model's top-down/bottom-up decision
	// (see cost.go). StrategyAuto, the zero value, lets the model decide;
	// StrategyBottomUp only takes effect on queries whose shape supports the
	// bottom-up plan.
	ForceStrategy Strategy
	// DisableBottomUp forces TopDownRun even for eligible queries. It
	// predates ForceStrategy and additionally suppresses the FM statistics
	// lookup; StrategyTopDown is the preferred spelling.
	DisableBottomUp bool
	// ForceNaiveText disables the FM-index for text predicates, using the
	// naive string-value semantics everywhere.
	ForceNaiveText bool
	// PlainCutoff is the global-count threshold above which contains
	// predicates scan the plain texts instead of locating via the FM-index
	// (Section 3.4). Zero means the default.
	PlainCutoff int
	// CustomMatchSets registers extension predicates by function name (the
	// paper's PSSM queries, Section 6.7): the function receives the literal
	// argument and returns the sorted ids of matching texts.
	CustomMatchSets map[string]func(lit string) []int32
}

// Query is a compiled Core+ query bound to a document. A Query is safe for
// concurrent use by multiple goroutines: every evaluation builds its own
// evaluator state, and the statistics of the most recently finished
// evaluation are kept behind a mutex (see Stats).
type Query struct {
	Src string
	AST *Path

	doc  *xmltree.Doc
	auto *automata.Automaton
	plan *buPlan
	opts Options
	cost CostEstimate

	// post holds the trailing steps evaluated navigationally: everything
	// from the first backward (or following) step of the main path onward.
	// The automaton/bottom-up plan evaluates the downward prefix; each post
	// step is then a set transformation over BP navigation (nav.go). nil
	// for pure downward queries, whose pipeline is unchanged.
	post []*Step

	// mayOvercount: counters are not guaranteed disjoint (see compileSteps);
	// Count falls back to materialized set semantics.
	mayOvercount bool

	statsMu   sync.Mutex
	lastStats automata.Stats // guarded by statsMu
}

// Strategy describes the chosen evaluation plan, in the notation of
// Figure 14: "top-down" or "bottom-up", plus "fm" or "naive" when the query
// has text predicates.
func (q *Query) Strategy() string {
	s := "top-down"
	if q.plan != nil {
		s = "bottom-up"
	}
	if q.post != nil {
		if q.plan == nil && q.auto == nil {
			s = "nav"
		} else {
			s += "+nav"
		}
	}
	if hasText, fm := q.textInfo(); hasText {
		if fm && !q.opts.ForceNaiveText && q.doc.FM != nil {
			return s + ",fm"
		}
		return s + ",naive"
	}
	return s
}

func (q *Query) textInfo() (hasText, fmUsable bool) {
	c := &compiler{doc: q.doc, opts: q.opts}
	// Steps evaluated navigationally (the post segment) apply their text
	// predicates with the naive string-value semantics, as does anything
	// nested under a backward-axis predicate path.
	postSet := map[*Step]bool{}
	for _, st := range q.post {
		postSet[st] = true
	}
	var walkExpr func(e Expr, carrier *Step, nav bool)
	var walkPath func(p *Path, nav bool)
	fmUsable = true
	walkExpr = func(e Expr, carrier *Step, nav bool) {
		switch x := e.(type) {
		case *AndExpr:
			walkExpr(x.L, carrier, nav)
			walkExpr(x.R, carrier, nav)
		case *OrExpr:
			walkExpr(x.L, carrier, nav)
			walkExpr(x.R, carrier, nav)
		case *NotExpr:
			walkExpr(x.E, carrier, nav)
		case *PathExpr:
			walkPath(x.Path, nav || pathNeedsNav(x.Path))
		case *TextExpr:
			hasText = true
			if nav {
				fmUsable = false
				if x.Target != nil {
					walkPath(x.Target, true)
				}
				return
			}
			tgt := predTarget{test: carrier.Test, underAttr: carrier.underAttr}
			if x.Target != nil {
				if pathNeedsNav(x.Target) {
					fmUsable = false
					walkPath(x.Target, true)
					return
				}
				walkPath(x.Target, false)
				tl := x.Target.Steps[len(x.Target.Steps)-1]
				tgt = predTarget{test: tl.Test, underAttr: tl.underAttr}
			}
			if _, ok := c.singleText(tgt); !ok {
				fmUsable = false
			}
		}
	}
	walkPath = func(p *Path, nav bool) {
		for _, st := range p.Steps {
			stepNav := nav || postSet[st]
			for _, f := range st.Filters {
				walkExpr(f, st, stepNav)
			}
		}
	}
	walkPath(q.AST, false)
	return hasText, fmUsable
}

// Compile parses, normalizes, plans and compiles a query against a document.
//
// The main path is split at the first step the marking automaton cannot
// express (a backward or following axis): the downward prefix goes through
// the usual planner (bottom-up when the text predicate is selective,
// TopDownRun otherwise) and the remaining steps become navigational set
// transformations over the BP structure. Pure downward queries take exactly
// the pre-existing pipeline.
func Compile(src string, doc *xmltree.Doc, opts Options) (*Query, error) {
	ast, err := ParseQuery(src)
	if err != nil {
		return nil, err
	}
	norm, err := normalize(ast)
	if err != nil {
		return nil, err
	}
	q := &Query{Src: src, AST: norm, doc: doc, opts: opts}
	split := 0
	for split < len(norm.Steps) && automatonAxis(norm.Steps[split].Axis) {
		split++
	}
	if norm.Steps[0].Axis == AxisFollowingSibling {
		// The automaton launches its first state below the root, where a
		// sibling-axis start has no meaning; evaluate navigationally (the
		// synthetic root has no siblings, so such queries select nothing).
		split = 0
	}
	if split < len(norm.Steps) {
		q.post = norm.Steps[split:]
		if err := navValidateSteps(opts, q.post); err != nil {
			return nil, err
		}
		if split == 0 {
			// Fully navigational; record the (top-down) decision for Cost
			// against the whole path, since there is no downward prefix.
			q.cost = chooseStrategy(doc, norm, opts, nil)
			return q, nil
		}
		norm = &Path{Steps: norm.Steps[:split]}
	}
	plan := buildBottomUpPlan(doc, norm, opts)
	q.cost = chooseStrategy(doc, norm, opts, plan)
	if plan != nil && q.cost.Chosen == StrategyBottomUp {
		q.plan = plan
	} else {
		c := &compiler{doc: doc, f: automata.NewFactory(), opts: opts}
		auto, err := c.compile(norm)
		if err != nil {
			return nil, err
		}
		q.auto = auto
		q.mayOvercount = c.mayOvercount
	}
	return q, nil
}

// Cost returns the statistics and decision the cost model recorded when the
// query was compiled.
func (q *Query) Cost() CostEstimate { return q.cost }

// Count returns the number of result nodes (counting mode, Section 5.5.3).
func (q *Query) Count() int64 {
	n, _ := q.CountCtx(context.Background())
	return n
}

// CountCtx is Count with cancellation. No strategy materializes a node
// slice here: the bottom-up plan counts distinct verified candidates during
// the climb and the automaton runs in counting mode (the deduplicating
// fallbacks for navigational and possibly-overcounting queries still
// materialize, as before).
func (q *Query) CountCtx(ctx context.Context) (int64, error) {
	if err := ctxErr(ctx); err != nil {
		return 0, err
	}
	if q.post != nil || (q.plan == nil && q.mayOvercount) {
		// Navigational steps and non-disjoint counters deduplicate by
		// materializing.
		nodes, err := q.NodesCtx(ctx)
		if err != nil {
			return 0, err
		}
		return int64(len(nodes)), nil
	}
	if q.plan != nil {
		n, err := q.plan.countCtx(ctx)
		if err != nil {
			return 0, err
		}
		q.setStats(automata.Stats{Visited: n, Marked: n})
		return n, nil
	}
	ev := automata.NewEvaluator(q.auto, q.doc, automata.Count, q.opts.Eval)
	n, _, err := ev.RunContext(ctx)
	if err != nil {
		return 0, err
	}
	q.setStats(ev.Stats)
	return n, nil
}

// Nodes materializes the result nodes in document order.
func (q *Query) Nodes() []int {
	nodes, _ := q.NodesCtx(context.Background())
	return nodes
}

// NodesCtx is Nodes with cancellation: a nil error means the slice is the
// complete result set.
func (q *Query) NodesCtx(ctx context.Context) ([]int, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if q.post != nil {
		nodes, stats, err := q.prefixNodes(ctx)
		if err != nil {
			return nil, err
		}
		for _, st := range q.post {
			nodes, err = navApplyStep(ctx, q.doc, q.opts, nodes, st)
			if err != nil {
				return nil, err
			}
		}
		stats.Marked = int64(len(nodes))
		q.setStats(stats)
		return nodes, nil
	}
	if q.plan != nil {
		nodes, err := q.plan.runCtx(ctx)
		if err != nil {
			return nil, err
		}
		q.setStats(automata.Stats{Visited: int64(len(nodes)), Marked: int64(len(nodes))})
		return nodes, nil
	}
	ev := automata.NewEvaluator(q.auto, q.doc, automata.Materialize, q.opts.Eval)
	_, nodes, err := ev.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	q.setStats(ev.Stats)
	return nodes, nil
}

// Exists reports whether the query selects at least one node, without
// evaluating the full result set: the bottom-up plan stops its climb at the
// first verified candidate, and streamable top-down queries pull one result
// from the lazy iterator. Only the navigational and non-streamable shapes
// fall back to materializing.
func (q *Query) Exists(ctx context.Context) (bool, error) {
	if err := ctxErr(ctx); err != nil {
		return false, err
	}
	if q.plan != nil && q.post == nil {
		return q.plan.existsCtx(ctx)
	}
	it := q.Iter(ctx)
	defer it.Close()
	_, ok := it.Next()
	if err := it.Err(); err != nil {
		return false, err
	}
	return ok, nil
}

// Iter returns a lazy document-order iterator over the result nodes. Pure
// downward queries (child and descendant axes only) stream via scanIter;
// every other shape evaluates eagerly on the first Next and iterates the
// materialized set. The iterator must be closed (or drained) before the
// underlying index is.
func (q *Query) Iter(ctx context.Context) ResultIter {
	if q.streamable() {
		return newScanIter(ctx, q.doc, q.opts, q.AST.Steps)
	}
	nodes, err := q.NodesCtx(ctx)
	return &materializedIter{nodes: nodes, err: err}
}

// streamable reports whether the query is in the fragment scanIter
// evaluates: a pure downward main path with no navigational post segment.
func (q *Query) streamable() bool {
	if q.post != nil || len(q.AST.Steps) == 0 {
		return false
	}
	for _, st := range q.AST.Steps {
		if st.Axis != AxisChild && st.Axis != AxisDescendant {
			return false
		}
	}
	return true
}

// prefixNodes evaluates the downward prefix of a query with navigational
// post steps; an empty prefix yields the root context.
func (q *Query) prefixNodes(ctx context.Context) ([]int, automata.Stats, error) {
	switch {
	case q.plan != nil:
		nodes, err := q.plan.runCtx(ctx)
		if err != nil {
			return nil, automata.Stats{}, err
		}
		return nodes, automata.Stats{Visited: int64(len(nodes))}, nil
	case q.auto != nil:
		ev := automata.NewEvaluator(q.auto, q.doc, automata.Materialize, q.opts.Eval)
		_, nodes, err := ev.RunContext(ctx)
		if err != nil {
			return nil, automata.Stats{}, err
		}
		return nodes, ev.Stats, nil
	default:
		return []int{q.doc.Root()}, automata.Stats{}, nil
	}
}

// Serialize writes the XML serialization of every result node to w and
// returns the number of results.
func (q *Query) Serialize(w io.Writer) (int, error) {
	return q.SerializeCtx(context.Background(), w)
}

// SerializeCtx streams the XML serialization of the result nodes to w,
// pulling from the lazy iterator so streamable queries hold at most one
// result at a time, and returns the number of results written.
func (q *Query) SerializeCtx(ctx context.Context, w io.Writer) (int, error) {
	it := q.Iter(ctx)
	defer it.Close()
	n := 0
	for {
		x, ok := it.Next()
		if !ok {
			break
		}
		tag := q.doc.TagOf(x)
		var err error
		if tag == q.doc.TextTag() || tag == q.doc.AttrValTag() {
			err = q.doc.GetText(q.doc.NodeToTextID(x), w)
		} else {
			err = q.doc.GetSubtree(x, w)
		}
		if err != nil {
			return n, err
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return n, err
		}
		n++
	}
	return n, it.Err()
}

func (q *Query) setStats(s automata.Stats) {
	q.statsMu.Lock()
	q.lastStats = s
	q.statsMu.Unlock()
}

// Stats returns the evaluation statistics of the most recently finished
// Count/Nodes call (any goroutine's).
func (q *Query) Stats() automata.Stats {
	q.statsMu.Lock()
	defer q.statsMu.Unlock()
	return q.lastStats
}

// Automaton exposes the compiled automaton (nil for bottom-up plans); used
// by tests and the benchmark harness.
func (q *Query) Automaton() *automata.Automaton { return q.auto }

// UsesBottomUp reports whether the bottom-up plan was selected.
func (q *Query) UsesBottomUp() bool { return q.plan != nil }
