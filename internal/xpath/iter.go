package xpath

// Streaming result iterators. The top-down marking automaton cannot stream:
// its marks are provisional (a speculative down-state launch may be discarded
// when an ancestor's formula later fails), so results only become definite
// when the whole run finishes. The leaf-order bottom-up climb cannot stream
// either — a later text match can climb to a candidate that PRECEDES an
// already-produced one in document order. What does stream is the dual view:
// scan the candidates of the LAST step in position order (the BP position of
// a node is its document-order rank, and the per-tag rank directories jump
// between occurrences of a named test in O(1)-ish time), and verify each
// candidate's ancestor path upward against the earlier steps, memoizing the
// per-(node, step) verdicts so shared ancestors are verified once. For the
// downward fragment this yields lazy document-order iteration whose cost is
// proportional to the candidates of the most selective bound we have — the
// last step — not to the full result set.

import (
	"context"

	"repro/internal/xmltree"
)

// ResultIter streams the positions of result nodes in document order.
//
// Next returns the next result and true, or false when the iteration is
// exhausted, cancelled or closed; after Next returns false, Err
// distinguishes completion (nil) from cancellation (the context's error).
// Close releases the iterator; it is idempotent and must be called (or the
// iterator drained) before the index the query is bound to is closed, since
// live iterators read from the engine's (possibly memory-mapped) structures.
type ResultIter interface {
	Next() (int, bool)
	Err() error
	Close() error
}

// ctxDone returns the context's done channel, or nil when the context can
// never be cancelled (context.Background and friends), letting hot loops
// skip the select entirely.
func ctxDone(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// ctxErr is the upfront cancellation check: evaluation entry points fail
// immediately on an already-done context instead of starting work whose
// first poll may be hundreds of nodes in.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// materializedIter adapts an already-evaluated node set (or a failed
// evaluation) to ResultIter for the strategies that cannot stream.
type materializedIter struct {
	nodes  []int
	i      int
	err    error
	closed bool
}

func (it *materializedIter) Next() (int, bool) {
	if it.closed || it.err != nil || it.i >= len(it.nodes) {
		return 0, false
	}
	x := it.nodes[it.i]
	it.i++
	return x, true
}

func (it *materializedIter) Err() error { return it.err }

func (it *materializedIter) Close() error {
	it.closed = true
	return nil
}

// scanIter lazily evaluates a pure downward path (child/descendant axes
// only, no navigational post segment) in document order: candidates for the
// last step come from a tag-row occurrence scan (named and text() tests) or
// a preorder sweep (star and node() tests), and each candidate is verified
// upward with upMatch. Predicates anywhere in the path are evaluated with
// the naive navigational semantics (navEvalExpr), which the differential
// suite pins against the DOM oracle.
type scanIter struct {
	ctx  context.Context
	done <-chan struct{}
	d    *xmltree.Doc
	opts Options

	steps []*Step

	useJump   bool
	jumpTag   int32
	pos       int // next BP position to probe (jump mode)
	k, n      int // next preorder rank and limit (sweep mode)
	exhausted bool

	memo    map[nodeStep]bool
	checked int
	err     error
	closed  bool
}

func newScanIter(ctx context.Context, d *xmltree.Doc, opts Options, steps []*Step) *scanIter {
	it := &scanIter{
		ctx:   ctx,
		done:  ctxDone(ctx),
		d:     d,
		opts:  opts,
		steps: steps,
		memo:  map[nodeStep]bool{},
		err:   ctxErr(ctx),
	}
	last := steps[len(steps)-1]
	if tag, ok := navJumpTag(d, last.Test); ok {
		if tag < 0 {
			it.exhausted = true // the label does not occur in the document
		} else {
			it.useJump = true
			it.jumpTag = tag
		}
	} else {
		it.n = d.NumNodes()
	}
	return it
}

// nextCandidate yields the next node matching the last step's test, in
// position (= document) order.
func (it *scanIter) nextCandidate() (int, bool) {
	if it.exhausted {
		return 0, false
	}
	if it.useJump {
		q := it.d.Tag.NextOccurrence(2*it.jumpTag, it.pos)
		if q < 0 {
			it.exhausted = true
			return 0, false
		}
		it.pos = q + 1
		return q, true
	}
	last := it.steps[len(it.steps)-1]
	for it.k < it.n {
		x := it.d.NodeAtPreorder(it.k)
		it.k++
		if matchesTest(it.d, x, last.Test) {
			return x, true
		}
	}
	it.exhausted = true
	return 0, false
}

// upMatch reports whether node x can play the role of step i: it satisfies
// the step's test and filters, and some ancestor chain above it matches
// steps[0..i-1], anchored at the synthetic root by step 0's axis. Verdicts
// are memoized per (node, step), so ancestors shared between candidates are
// verified once — the streaming analogue of the bottom-up verifier's
// stop-at-LCA memoization.
func (it *scanIter) upMatch(x, i int) bool {
	key := nodeStep{x, i}
	if v, ok := it.memo[key]; ok {
		return v
	}
	res := it.upMatchEval(x, i)
	it.memo[key] = res
	return res
}

func (it *scanIter) upMatchEval(x, i int) bool {
	d, st := it.d, it.steps[i]
	if !matchesTest(d, x, st.Test) {
		return false
	}
	for _, f := range st.Filters {
		if !navEvalExpr(d, it.opts, x, f) {
			return false
		}
	}
	if i == 0 {
		if st.Axis == AxisChild {
			return d.Parent(x) == d.Root()
		}
		return x != d.Root()
	}
	if st.Axis == AxisChild {
		pa := d.Parent(x)
		return pa != xmltree.Nil && it.upMatch(pa, i-1)
	}
	for a := d.Parent(x); a != xmltree.Nil; a = d.Parent(a) {
		if it.upMatch(a, i-1) {
			return true
		}
	}
	return false
}

func (it *scanIter) Next() (int, bool) {
	if it.closed || it.err != nil {
		return 0, false
	}
	last := len(it.steps) - 1
	for {
		it.checked++
		if it.done != nil && it.checked&255 == 0 {
			select {
			case <-it.done:
				it.err = it.ctx.Err()
				return 0, false
			default:
			}
		}
		x, ok := it.nextCandidate()
		if !ok {
			return 0, false
		}
		if it.upMatch(x, last) {
			return x, true
		}
	}
}

func (it *scanIter) Err() error { return it.err }

func (it *scanIter) Close() error {
	it.closed = true
	return nil
}
