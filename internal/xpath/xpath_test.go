package xpath_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/automata"
	"repro/internal/dom"
	"repro/internal/xmltree"
	. "repro/internal/xpath"
)

const paperDoc = `<parts><part name="pen"><color>blue</color><stock>40</stock>Soon discontinued.</part><part name="rubber"><stock>30</stock></part></parts>`

// listDoc mimics the running example of Section 5 (listitem/keyword/emph).
const listDoc = `<doc>
<listitem><keyword>alpha<emph>x</emph></keyword><text>plain</text></listitem>
<listitem><parlist><listitem><keyword>beta</keyword></listitem></parlist><keyword><emph>nested</emph></keyword></listitem>
<section><keyword>gamma</keyword><bold>b</bold></section>
<listitem><keyword>delta Unique</keyword><emph>tail</emph></listitem>
</doc>`

var configs = []struct {
	name string
	opts Options
}{
	{"default", Options{}},
	{"nojump", Options{Eval: automata.Options{NoJump: true}}},
	{"nomemo", Options{Eval: automata.Options{NoMemo: true}}},
	{"noearly", Options{Eval: automata.Options{NoEarly: true}}},
	{"nolazy", Options{Eval: automata.Options{NoLazy: true}}},
	{"naiveall", Options{Eval: automata.Options{NoJump: true, NoMemo: true, NoEarly: true, NoLazy: true}}},
	{"nobottomup", Options{DisableBottomUp: true}},
	{"naivetext", Options{ForceNaiveText: true}},
	{"nofm-nobu", Options{ForceNaiveText: true, DisableBottomUp: true}},
}

// checkAgainstOracle verifies Count, Nodes and result identity (by preorder
// numbers) against the DOM oracle, across all evaluator configurations.
func checkAgainstOracle(t *testing.T, docSrc string, queries []string) {
	t.Helper()
	d, err := xmltree.Parse([]byte(docSrc), xmltree.Options{SampleRate: 4})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := dom.Parse([]byte(docSrc))
	if err != nil {
		t.Fatal(err)
	}
	for _, qs := range queries {
		want, err := tree.Eval(qs)
		if err != nil {
			t.Fatalf("oracle eval %q: %v", qs, err)
		}
		wantOrders := make([]int, len(want))
		for i, n := range want {
			wantOrders[i] = n.Order
		}
		for _, cfg := range configs {
			q, err := Compile(qs, d, cfg.opts)
			if err != nil {
				t.Fatalf("[%s] compile %q: %v", cfg.name, qs, err)
			}
			if got := q.Count(); got != int64(len(want)) {
				t.Errorf("[%s] Count(%q)=%d want %d (strategy %s)", cfg.name, qs, got, len(want), q.Strategy())
				continue
			}
			nodes := q.Nodes()
			if len(nodes) != len(want) {
				t.Errorf("[%s] Nodes(%q) len=%d want %d", cfg.name, qs, len(nodes), len(want))
				continue
			}
			for i, x := range nodes {
				if d.Preorder(x) != wantOrders[i] {
					t.Errorf("[%s] Nodes(%q)[%d] preorder=%d want %d", cfg.name, qs, i, d.Preorder(x), wantOrders[i])
					break
				}
			}
		}
	}
}

func TestPaperDocQueries(t *testing.T) {
	checkAgainstOracle(t, paperDoc, []string{
		"/parts",
		"/parts/part",
		"/parts/part/stock",
		"//stock",
		"//part/color",
		"//part[color]/stock",
		"//part[not(color)]",
		"//part[@name]",
		"//part[attribute::name]",
		"/parts/part[stock and color]",
		"/parts/part[stock or color]",
		"//text()",
		"//*",
		"//*//*",
		"/*[ .//* ]",
		"//part[ @name = 'pen' ]",
		"//part[ @name = 'nosuch' ]",
		"//part[ contains(., 'discontinued') ]",
		"//part[ starts-with(color, 'bl') ]",
		"//color[ . = 'blue' ]",
		"//stock[ . = '40' ]",
		"//stock[ ends-with(., '0') ]",
		"//part/following-sibling::part",
		"//color/following-sibling::stock",
		"//part[color/following-sibling::stock]",
		"//nosuchtag",
		"//part[nosuchtag]",
		"//part[contains(@name, 'ub')]",
		"//color/parent::part",
		"//color/..",
		"//color/../stock",
		"//stock/ancestor::*",
		"//stock/ancestor-or-self::node()",
		"//stock/preceding-sibling::color",
		"//part/preceding-sibling::part",
		"//color/following::stock",
		"//stock/preceding::color",
		"//part[preceding-sibling::part]",
		"//stock[parent::part[@name = 'pen']]",
		"//part[color]/../part[not(color)]",
		"//stock[ancestor::parts]",
		"//color[following::part]",
		"/parts/part/color/ancestor::part/stock",
	})
}

func TestListDocQueries(t *testing.T) {
	checkAgainstOracle(t, listDoc, []string{
		"/descendant::listitem/descendant::keyword[child::emph]",
		"//listitem//keyword",
		"//listitem/keyword",
		"//listitem[.//keyword]",
		"//listitem[not(.//keyword/emph)]",
		"//listitem[ (.//keyword or .//emph) and (.//emph or .//bold) ]",
		"//keyword[contains(., 'Unique')]",
		"//listitem//keyword[contains(., 'Unique')]",
		"//listitem[.//keyword[contains(., 'beta')]]",
		"//section/keyword",
		"//keyword/emph",
		"//keyword[emph]",
		"//keyword[not(emph)]",
		"//*[keyword]",
		"//listitem/*",
		"//listitem/node()",
		"//listitem//text()",
		"//text()[contains(., 'plain')]",
		"//keyword[starts-with(., 'alpha')]",
		"//keyword[. = 'gamma']",
		"//keyword[. = 'beta']",
		"//listitem[keyword and not(parlist)]",
		"//emph/ancestor::listitem",
		"//keyword/ancestor-or-self::keyword",
		"//emph/ancestor::keyword/..",
		"//keyword[parent::listitem]",
		"//keyword[parent::section]",
		"//emph[ancestor::parlist]",
		"//keyword/following::emph",
		"//emph/preceding::keyword",
		"//bold/preceding-sibling::keyword",
		"//keyword[following::bold]",
		"//listitem[.//keyword/ancestor::parlist]",
		"//keyword[contains(., 'beta')]/ancestor::listitem",
		"//emph[starts-with(., 'tail')]/preceding::keyword",
		"//keyword[ancestor::listitem and not(emph)]",
		"//section/keyword/following::*",
		"//parlist/ancestor-or-self::listitem/keyword",
		"//keyword[contains(ancestor::listitem, 'plain')]",
		"//text()[preceding::bold]",
		"//keyword[preceding::keyword[contains(., 'alpha')]]",
	})
}

// TestFullAxisQueries exercises every axis spelling end to end against the
// oracle, including axes as the first step (evaluated from the root
// context) and chains that alternate forward and backward movement.
func TestFullAxisQueries(t *testing.T) {
	checkAgainstOracle(t, listDoc, []string{
		"/child::doc",
		"/doc/child::listitem",
		"/descendant::keyword",
		"//keyword/self::node()",
		"/parent::node()",
		"/..",
		"/ancestor::node()",
		"/ancestor-or-self::node()",
		"/following::node()",
		"/preceding::node()",
		"/following-sibling::node()",
		"/preceding-sibling::node()",
		"//emph/parent::keyword/parent::listitem",
		"//emph/ancestor::listitem//text()",
		"//keyword/../..",
		"//parlist/preceding::text()",
		"//keyword/following::text()",
		"//keyword[../bold]",
		"//emph[../../parlist]",
		"//keyword[ancestor-or-self::*[parent::doc]]",
		"//*[preceding-sibling::listitem and following-sibling::listitem]",
		"//keyword[not(preceding::keyword)]",
		"//keyword[following::keyword and preceding::keyword]",
		"//emph/ancestor::*[keyword]/..",
		"//listitem/descendant::emph/ancestor-or-self::keyword",
		"/descendant-or-self::node()",
		"/descendant-or-self::keyword",
		"//keyword/descendant-or-self::keyword",
		"//listitem/descendant-or-self::*/keyword",
		"//keyword[descendant-or-self::*[contains(., 'beta')]]",
		"//emph/ancestor::listitem/descendant-or-self::text()",
	})
}

func TestStrategySelection(t *testing.T) {
	d, err := xmltree.Parse([]byte(listDoc), xmltree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Selective text predicate on a pure-text target: bottom-up with FM.
	q, err := Compile("//listitem//emph[contains(., 'tail')]", d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !q.UsesBottomUp() {
		t.Errorf("expected bottom-up, strategy=%s", q.Strategy())
	}
	if got := q.Count(); got != 1 {
		t.Errorf("count=%d", got)
	}
	// Complex filter: must stay top-down.
	q2, err := Compile("//listitem[.//keyword and .//emph]", d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if q2.UsesBottomUp() {
		t.Error("boolean filter should not be bottom-up")
	}
	// Mixed content target: naive text.
	q3, err := Compile("//listitem[contains(., 'beta')]", d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q3.Strategy(), "naive") {
		t.Errorf("mixed content should use naive text, got %s", q3.Strategy())
	}
	// Pure-text element target: fm.
	q4, err := Compile("//emph[contains(., 'nest')]", d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q4.Strategy(), "fm") {
		t.Errorf("pure text should use fm, got %s", q4.Strategy())
	}
}

func TestSerialize(t *testing.T) {
	d, err := xmltree.Parse([]byte(paperDoc), xmltree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	q, err := Compile("//color", d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := q.Serialize(&buf)
	if err != nil || n != 1 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if strings.TrimSpace(buf.String()) != "<color>blue</color>" {
		t.Fatalf("serialized %q", buf.String())
	}
}

func TestParseErrors(t *testing.T) {
	d, _ := xmltree.Parse([]byte(paperDoc), xmltree.Options{SkipFM: true})
	bad := []string{
		"",
		"//",
		"//part[",
		"//part[]",
		"//nosuchaxis::x",
		"//part[contains(.)]",
		"//part[contains(., 'x'",
		"//part[\"lit\"]",
		"//part = 'x'",
		"//part[child::]",
		"//...",
	}
	for _, qs := range bad {
		if _, err := Compile(qs, d, Options{}); err == nil {
			t.Errorf("expected error for %q", qs)
		}
	}
}

func TestStatsReported(t *testing.T) {
	d, _ := xmltree.Parse([]byte(listDoc), xmltree.Options{})
	q, _ := Compile("//keyword", d, Options{})
	if q.Count() != 5 {
		t.Fatalf("count=%d", q.Count())
	}
	st := q.Stats()
	if st.Marked != 5 {
		t.Errorf("marked=%d", st.Marked)
	}
	// With jumping + lazy sets, far fewer nodes are visited than exist.
	if st.Visited >= int64(d.NumNodes()) {
		t.Errorf("visited=%d nodes=%d: jumping had no effect", st.Visited, d.NumNodes())
	}
}

// --- randomized differential testing ---

var fuzzTags = []string{"a", "b", "c", "d", "e"}

func randomXML(r *rand.Rand, maxNodes int) string {
	var sb strings.Builder
	var build func(depth int, budget *int)
	build = func(depth int, budget *int) {
		for *budget > 0 && r.Intn(3) != 0 {
			*budget--
			tag := fuzzTags[r.Intn(len(fuzzTags))]
			sb.WriteString("<" + tag)
			if r.Intn(4) == 0 {
				sb.WriteString(` k="` + fuzzTags[r.Intn(len(fuzzTags))] + `"`)
			}
			sb.WriteString(">")
			if r.Intn(3) == 0 {
				words := []string{"foo", "bar", "baz qux", "hello", "xyz"}
				sb.WriteString(words[r.Intn(len(words))])
			}
			if depth < 6 {
				build(depth+1, budget)
			}
			sb.WriteString("</" + tag + ">")
		}
	}
	sb.WriteString("<root>")
	budget := 2 + r.Intn(maxNodes)
	build(0, &budget)
	sb.WriteString("</root>")
	return sb.String()
}

var fuzzQueries = []string{
	"//a", "//a/b", "//a//b", "/root/a", "//a[b]", "//a[.//b]",
	"//a[not(b)]", "//a[b or c]", "//a[b and .//c]", "//*", "//*//*",
	"//a/*", "//a/text()", "//a[contains(., 'foo')]",
	"//a[starts-with(., 'bar')]", "//a[. = 'hello']",
	"//a[@k]", "//a[@k = 'b']", "//a/following-sibling::b",
	"//a[b/following-sibling::c]", "//a[not(.//b) and c]",
	"//a//b[contains(., 'qux')]", "//d//e", "//a/b/c",
	"//b/..", "//b/parent::a", "//b/ancestor::a", "//c/ancestor-or-self::*",
	"//b/preceding-sibling::a", "//b/preceding::c", "//a/following::b",
	"//a[..]", "//b[parent::a]", "//c[ancestor::a[@k]]",
	"//b[preceding-sibling::b]", "//a[preceding::b]", "//b[following::c]",
	"//a//b/../c", "//e/ancestor::a/b", "//b[contains(.., 'foo')]",
	"//c[. = 'hello']/preceding::b", "//a[b]/following::a[c]",
	"//d/ancestor-or-self::d", "//a/b/preceding-sibling::*",
}

func TestRandomizedDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		doc := randomXML(r, 120)
		checkAgainstOracle(t, doc, fuzzQueries)
	}
}

func TestDeepRecursiveTags(t *testing.T) {
	// Recursive labels (listitem inside listitem) stress TaggedDesc reuse.
	doc := "<r>" + strings.Repeat("<a><b>", 30) + "x" + strings.Repeat("</b></a>", 30) + "</r>"
	checkAgainstOracle(t, doc, []string{"//a//b", "//a/b", "//a[.//b]", "//b[.//a]", "//a//a", "//*//*//*"})
}

func TestWideDocument(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 500; i++ {
		if i%7 == 0 {
			sb.WriteString("<a><b>k</b></a>")
		} else {
			sb.WriteString("<c>t</c>")
		}
	}
	sb.WriteString("</r>")
	checkAgainstOracle(t, sb.String(), []string{"//a", "//a/b", "//c", "//r/*", "//a[b]", "//b[contains(., 'k')]"})
}
