// Package bits provides broadword primitives used by the succinct data
// structures: population counts and in-word select. These are the O(1)
// building blocks the paper's rank/select structures (Section 2) assume.
package bits

import "math/bits"

// Popcount returns the number of set bits in w.
func Popcount(w uint64) int { return bits.OnesCount64(w) }

// SelectInWord returns the position (0-based, from the least significant bit)
// of the (j+1)-th set bit of w. j must be < Popcount(w); otherwise the result
// is 64.
func SelectInWord(w uint64, j int) int {
	for i := 0; i < j; i++ {
		w &= w - 1 // clear lowest set bit
	}
	if w == 0 {
		return 64
	}
	return bits.TrailingZeros64(w)
}

// Rank9WordMask returns a mask with the low n bits set (n in [0,64]).
func Rank9WordMask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(n)) - 1
}
