// Package bits provides broadword primitives used by the succinct data
// structures: population counts, in-word select, and byte-granularity
// excess tables for balanced-parentheses searches. These are the O(1)
// building blocks the paper's rank/select structures (Section 2) assume.
package bits

import "math/bits"

// Excess byte tables. A byte is read as 8 parentheses, bit 0 first
// (1 = open, +1; 0 = close, -1). The forward tables describe a left-to-right
// walk, the backward tables a right-to-left walk; together they let the BP
// scans test "does the target excess occur inside this byte?" in O(1) and
// skip 8 positions at a time in either direction.
var (
	// ExcessTotal[v] is the total excess delta of the byte.
	ExcessTotal [256]int8
	// ExcessFwdMin/Max[v] bound the running excess after k = 1..8 forward
	// steps, relative to the excess just before the byte.
	ExcessFwdMin [256]int8
	ExcessFwdMax [256]int8
	// ExcessBwdMin/Max[v] bound the running excess after k = 1..8 backward
	// steps (undoing bits 7, 6, ... 0), relative to the excess at the
	// byte's last position. After k steps the walk sits at excess
	// -(d7 + ... + d(8-k)) where di is the delta of bit i.
	ExcessBwdMin [256]int8
	ExcessBwdMax [256]int8
)

func init() {
	for v := 0; v < 256; v++ {
		e, mn, mx := 0, 127, -127
		for b := 0; b < 8; b++ {
			if v>>uint(b)&1 == 1 {
				e++
			} else {
				e--
			}
			if e < mn {
				mn = e
			}
			if e > mx {
				mx = e
			}
		}
		ExcessTotal[v] = int8(e)
		ExcessFwdMin[v] = int8(mn)
		ExcessFwdMax[v] = int8(mx)
		e, mn, mx = 0, 127, -127
		for b := 7; b >= 0; b-- {
			if v>>uint(b)&1 == 1 {
				e--
			} else {
				e++
			}
			if e < mn {
				mn = e
			}
			if e > mx {
				mx = e
			}
		}
		ExcessBwdMin[v] = int8(mn)
		ExcessBwdMax[v] = int8(mx)
	}
}

// Popcount returns the number of set bits in w.
func Popcount(w uint64) int { return bits.OnesCount64(w) }

// SelectInWord returns the position (0-based, from the least significant bit)
// of the (j+1)-th set bit of w. j must be < Popcount(w); otherwise the result
// is 64.
func SelectInWord(w uint64, j int) int {
	for i := 0; i < j; i++ {
		w &= w - 1 // clear lowest set bit
	}
	if w == 0 {
		return 64
	}
	return bits.TrailingZeros64(w)
}

// Rank9WordMask returns a mask with the low n bits set (n in [0,64]).
func Rank9WordMask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(n)) - 1
}
