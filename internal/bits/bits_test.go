package bits

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSelectInWordBasic(t *testing.T) {
	cases := []struct {
		w    uint64
		j    int
		want int
	}{
		{0b1, 0, 0},
		{0b10, 0, 1},
		{0b101, 1, 2},
		{^uint64(0), 63, 63},
		{^uint64(0), 0, 0},
		{1 << 63, 0, 63},
		{0, 0, 64},
	}
	for _, c := range cases {
		if got := SelectInWord(c.w, c.j); got != c.want {
			t.Errorf("SelectInWord(%b,%d)=%d want %d", c.w, c.j, got, c.want)
		}
	}
}

func TestSelectInWordProperty(t *testing.T) {
	f := func(w uint64) bool {
		pc := Popcount(w)
		seen := 0
		for b := 0; b < 64; b++ {
			if w&(1<<uint(b)) != 0 {
				if SelectInWord(w, seen) != b {
					return false
				}
				seen++
			}
		}
		return seen == pc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRank9WordMask(t *testing.T) {
	if Rank9WordMask(0) != 0 {
		t.Error("mask(0) != 0")
	}
	if Rank9WordMask(64) != ^uint64(0) {
		t.Error("mask(64) != all ones")
	}
	if Rank9WordMask(1) != 1 {
		t.Error("mask(1) != 1")
	}
	for n := 0; n <= 64; n++ {
		if got := Popcount(Rank9WordMask(n)); got != n {
			t.Errorf("popcount(mask(%d)) = %d", n, got)
		}
	}
}

func BenchmarkSelectInWord(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	ws := make([]uint64, 1024)
	for i := range ws {
		ws[i] = r.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := ws[i&1023]
		SelectInWord(w, Popcount(w)/2)
	}
}
