package bits

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSelectInWordBasic(t *testing.T) {
	cases := []struct {
		w    uint64
		j    int
		want int
	}{
		{0b1, 0, 0},
		{0b10, 0, 1},
		{0b101, 1, 2},
		{^uint64(0), 63, 63},
		{^uint64(0), 0, 0},
		{1 << 63, 0, 63},
		{0, 0, 64},
	}
	for _, c := range cases {
		if got := SelectInWord(c.w, c.j); got != c.want {
			t.Errorf("SelectInWord(%b,%d)=%d want %d", c.w, c.j, got, c.want)
		}
	}
}

func TestSelectInWordProperty(t *testing.T) {
	f := func(w uint64) bool {
		pc := Popcount(w)
		seen := 0
		for b := 0; b < 64; b++ {
			if w&(1<<uint(b)) != 0 {
				if SelectInWord(w, seen) != b {
					return false
				}
				seen++
			}
		}
		return seen == pc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRank9WordMask(t *testing.T) {
	if Rank9WordMask(0) != 0 {
		t.Error("mask(0) != 0")
	}
	if Rank9WordMask(64) != ^uint64(0) {
		t.Error("mask(64) != all ones")
	}
	if Rank9WordMask(1) != 1 {
		t.Error("mask(1) != 1")
	}
	for n := 0; n <= 64; n++ {
		if got := Popcount(Rank9WordMask(n)); got != n {
			t.Errorf("popcount(mask(%d)) = %d", n, got)
		}
	}
}

// TestExcessTables recomputes every table entry from the definition: the
// byte is a sequence of 8 parentheses, bit 0 first, delta +1 for a set bit.
func TestExcessTables(t *testing.T) {
	for v := 0; v < 256; v++ {
		// Forward: running excess after 1..8 steps from bit 0.
		e, mn, mx := 0, 127, -127
		for b := 0; b < 8; b++ {
			if v>>uint(b)&1 == 1 {
				e++
			} else {
				e--
			}
			if e < mn {
				mn = e
			}
			if e > mx {
				mx = e
			}
		}
		if int(ExcessTotal[v]) != e {
			t.Fatalf("ExcessTotal[%#02x]=%d want %d", v, ExcessTotal[v], e)
		}
		if int(ExcessFwdMin[v]) != mn || int(ExcessFwdMax[v]) != mx {
			t.Fatalf("ExcessFwd[%#02x]=[%d,%d] want [%d,%d]", v, ExcessFwdMin[v], ExcessFwdMax[v], mn, mx)
		}
		// Backward: undoing bits 7..0 from the byte's last position, the
		// walk sits at the negated suffix sums of the deltas.
		e, mn, mx = 0, 127, -127
		for b := 7; b >= 0; b-- {
			if v>>uint(b)&1 == 1 {
				e--
			} else {
				e++
			}
			if e < mn {
				mn = e
			}
			if e > mx {
				mx = e
			}
		}
		if int(ExcessBwdMin[v]) != mn || int(ExcessBwdMax[v]) != mx {
			t.Fatalf("ExcessBwd[%#02x]=[%d,%d] want [%d,%d]", v, ExcessBwdMin[v], ExcessBwdMax[v], mn, mx)
		}
		// The two walks are mirror images: backward over v equals forward
		// over the bit-reversed byte with signs flipped.
		rev := 0
		for b := 0; b < 8; b++ {
			if v>>uint(b)&1 == 1 {
				rev |= 1 << uint(7-b)
			}
		}
		if int(ExcessBwdMin[v]) != -int(ExcessFwdMax[rev]) || int(ExcessBwdMax[v]) != -int(ExcessFwdMin[rev]) {
			t.Fatalf("ExcessBwd[%#02x] not mirror of ExcessFwd[%#02x]", v, rev)
		}
	}
}

func BenchmarkSelectInWord(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	ws := make([]uint64, 1024)
	for i := range ws {
		ws[i] = r.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := ws[i&1023]
		SelectInWord(w, Popcount(w)/2)
	}
}
