package collection

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// searchDocs is a small corpus with known term statistics.
var searchDocs = map[string]string{
	"mining":  `<doc><p>gold rush</p><p>the gold mine produced gold</p></doc>`,
	"finance": `<doc><p>gold and silver markets</p><p>crude oil futures</p></doc>`,
	"cooking": `<doc><p>olive oil and salt</p><p>no metals here</p></doc>`,
}

func searchCollection(t *testing.T) *Collection {
	t.Helper()
	c := New(Config{})
	for name, xml := range searchDocs {
		c.Add(name, buildEngine(t, xml))
	}
	return c
}

func TestSearchRanksAndSnips(t *testing.T) {
	c := searchCollection(t)
	rep, err := c.Search(context.Background(), "gold", "", 10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Candidates != 2 || rep.Matched != 2 || len(rep.Hits) != 2 {
		t.Fatalf("report = %+v", rep)
	}
	// "mining" has tf=3, "finance" tf=1: BM25 puts mining first.
	if rep.Hits[0].Doc != "mining" || rep.Hits[1].Doc != "finance" {
		t.Fatalf("order = %s, %s", rep.Hits[0].Doc, rep.Hits[1].Doc)
	}
	if rep.Hits[0].Score <= rep.Hits[1].Score {
		t.Fatalf("scores = %v, %v", rep.Hits[0].Score, rep.Hits[1].Score)
	}
	if rep.Hits[0].Snippet == "" {
		t.Fatal("no snippet on the top hit")
	}
	if got := c.Stats().Searches; got != 1 {
		t.Fatalf("Stats.Searches = %d", got)
	}
}

func TestSearchTopKTruncates(t *testing.T) {
	c := searchCollection(t)
	rep, err := c.Search(context.Background(), "gold", "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Matched != 2 || len(rep.Hits) != 1 || rep.Hits[0].Doc != "mining" {
		t.Fatalf("report = %+v", rep)
	}
}

func TestSearchPhrase(t *testing.T) {
	c := searchCollection(t)
	// Both oil documents contain "oil", but only finance has "crude oil".
	rep, err := c.Search(context.Background(), `"crude oil"`, "", 10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Matched != 1 || rep.Hits[0].Doc != "finance" {
		t.Fatalf("report = %+v", rep)
	}
	// Phrase and word terms are conjunctive: "olive oil" + gold matches
	// nothing (cooking has the phrase but no gold).
	rep, err = c.Search(context.Background(), `gold "olive oil"`, "", 10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Matched != 0 || len(rep.Hits) != 0 {
		t.Fatalf("conjunction report = %+v", rep)
	}
}

func TestSearchXPathFilter(t *testing.T) {
	c := searchCollection(t)
	// Every gold document matches //p, but only mining has a <p> whose text
	// contains "mine".
	rep, err := c.Search(context.Background(), "gold", `//p[contains(., "mine")]`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Candidates != 2 || rep.Matched != 1 || rep.Hits[0].Doc != "mining" {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Hits[0].Nodes != 1 {
		t.Fatalf("Nodes = %d", rep.Hits[0].Nodes)
	}
	// A bad XPath surfaces per-doc (the search query itself was fine), so
	// matched drops to zero with every candidate in Failed.
	rep, err = c.Search(context.Background(), "gold", `//p[`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Matched != 0 || len(rep.Failed) != 2 {
		t.Fatalf("bad-xpath report = %+v", rep)
	}
}

func TestSearchErrors(t *testing.T) {
	c := searchCollection(t)
	var qerr *QueryError
	if _, err := c.Search(context.Background(), `"unterminated`, "", 10); !errors.As(err, &qerr) {
		t.Fatalf("bad query error = %v", err)
	}
	if _, err := c.Search(context.Background(), "", "", 10); !errors.As(err, &qerr) {
		t.Fatalf("empty query error = %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Search(ctx, "gold", "", 10); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled search error = %v", err)
	}
	if got := c.Stats().SearchErrs; got != 2 {
		t.Fatalf("SearchErrs = %d (cancellations must not count)", got)
	}

	d := New(Config{DisableSearch: true})
	if _, err := d.Search(context.Background(), "gold", "", 10); !errors.Is(err, ErrSearchDisabled) {
		t.Fatalf("disabled search error = %v", err)
	}
	if d.SearchIndex() != nil {
		t.Fatal("disabled collection still built an index")
	}
}

func TestSearchIndexFollowsRegistry(t *testing.T) {
	c := searchCollection(t)
	if got := c.SearchIndex().Len(); got != 3 {
		t.Fatalf("index Len = %d", got)
	}
	c.Remove("cooking")
	if got := c.SearchIndex().Len(); got != 2 {
		t.Fatalf("index Len after Remove = %d", got)
	}
	// Replacing a document re-points its postings: the old terms vanish.
	c.Add("mining", buildEngine(t, `<doc><p>now about beekeeping</p></doc>`))
	rep, err := c.Search(context.Background(), "gold", "", 10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Matched != 1 || rep.Hits[0].Doc != "finance" {
		t.Fatalf("report after replace = %+v", rep)
	}
	rep, err = c.Search(context.Background(), "beekeeping", "", 10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Matched != 1 || rep.Hits[0].Doc != "mining" {
		t.Fatalf("report for new terms = %+v", rep)
	}
}

func TestSaveSearchIndex(t *testing.T) {
	c := searchCollection(t)
	path := filepath.Join(t.TempDir(), "postings.sxsp")
	if _, err := c.SaveSearchIndex(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	d := New(Config{DisableSearch: true})
	if _, err := d.SaveSearchIndex(path); !errors.Is(err, ErrSearchDisabled) {
		t.Fatalf("disabled save error = %v", err)
	}
}

// TestSearchDuringReload hammers Search while the underlying files are
// rewritten and hot-reloaded: run with -race, it pins the reload
// consistency contract — a search that snapshotted the posting index
// before a swap keeps scoring (and snippeting) the old postings against
// the old document, never a mix.
func TestSearchDuringReload(t *testing.T) {
	dir := t.TempDir()
	gen := func(version int) string {
		if version%2 == 0 {
			return `<doc><p>gold rush era</p><p>gold everywhere</p></doc>`
		}
		return `<doc><p>silver age era</p><p>silver everywhere</p></doc>`
	}
	path := filepath.Join(dir, "swap.xml")
	if err := os.WriteFile(path, []byte(gen(0)), 0o666); err != nil {
		t.Fatal(err)
	}
	c := New(Config{})
	if err := c.Open("swap", path); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := 1; ctx.Err() == nil; v++ {
			if err := os.WriteFile(path, []byte(gen(v)), 0o666); err != nil {
				return
			}
			// Backdate the mtime so every pass sees a "changed" file even on
			// filesystems with coarse timestamps.
			old := time.Now().Add(-time.Duration(v) * time.Second)
			os.Chtimes(path, old, old)
			c.Reload(ctx)
		}
	}()

	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		for _, q := range []string{"gold", "silver", `"gold rush"`, "era"} {
			rep, err := c.Search(ctx, q, "", 5)
			if err != nil {
				t.Errorf("Search(%q): %v", q, err)
				break
			}
			// Whichever version was live, "era" matches it; and a hit must
			// carry a self-consistent snippet (terms from one version never
			// pair with the other version's document).
			if q == "era" && rep.Matched != 1 {
				t.Errorf("Search(era) matched %d", rep.Matched)
			}
		}
	}
	cancel()
	wg.Wait()
}
