package collection

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/search"
)

// This file is the collection's ranked full-text tier: Search answers
// "which documents talk about these terms" from the posting index first,
// and only then runs structural XPath — on the matching candidates, never
// the whole collection. Scoring is BM25 over the posting snapshot; quoted
// phrase terms fall back to FM-index substring counts per candidate.

// ErrSearchDisabled reports a Search call on a collection built with
// Config.DisableSearch.
var ErrSearchDisabled = errors.New("collection: search tier disabled")

// DefaultTopK is the Search result size when the caller passes k <= 0.
const DefaultTopK = 10

// maxTopK caps the result size a single Search may request.
const maxTopK = 1000

// SearchHit is one ranked document of a Search.
type SearchHit struct {
	// Doc is the document name.
	Doc string `json:"doc"`
	// Score is the document's BM25 score over the query terms.
	Score float64 `json:"score"`
	// Snippet is a short text window around the first matched term ("" when
	// extraction found nothing within its budget).
	Snippet string `json:"snippet,omitempty"`
	// Nodes is the structural result count when the search carried an XPath
	// filter; 0 otherwise.
	Nodes int64 `json:"nodes,omitempty"`
}

// SearchReport is the outcome of one Search.
type SearchReport struct {
	// Terms echoes the parsed query terms (phrases quoted).
	Terms []string `json:"terms"`
	// Candidates is how many documents the posting index admitted before
	// phrase counting and the structural filter.
	Candidates int `json:"candidates"`
	// Matched is how many documents matched every term (and the XPath
	// filter, when given); Hits is its top-k prefix.
	Matched int `json:"matched"`
	// Hits are the top-k documents, best first.
	Hits []SearchHit `json:"hits"`
	// Failed maps candidate documents to the error that kept the XPath
	// filter from running on them (reloaded away mid-search, evaluation
	// failure); they are excluded from Matched rather than guessed at.
	Failed map[string]string `json:"failed,omitempty"`
}

// Search ranks the collection's documents against a full-text query and
// returns the top k (DefaultTopK when k <= 0), scored with BM25 over the
// posting index. Terms are implicitly conjunctive; "quoted phrases" match
// exact byte substrings through each candidate's FM-index. A non-empty
// xpath restricts the result to documents where the expression matches at
// least one node, evaluated in counting mode on the batch worker pool —
// only on the term candidates, which is the point of the tier.
//
// Search works on a point-in-time snapshot of the posting index: a
// concurrent Reload or Add swaps documents for later searches but never
// mixes old and new postings inside this one. The XPath filter, by
// contrast, runs on the live registry (compiled queries are only valid
// against live engines), so a document swapped mid-search is filtered
// against its newest index — and one removed mid-search lands in Failed.
//
// Parse failures of the query return a *QueryError, like bad XPath.
func (c *Collection) Search(ctx context.Context, query, xpath string, k int) (rep *SearchReport, err error) {
	if c.search == nil {
		return nil, ErrSearchDisabled
	}
	c.met.searches.Add(1)
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("collection: internal error searching %q: %v", query, r)
		}
		c.met.searchDone(time.Since(start), err)
	}()

	terms, err := search.ParseQuery(query)
	if err != nil {
		return nil, &QueryError{Err: err}
	}
	if k <= 0 {
		k = DefaultTopK
	}
	if k > maxTopK {
		k = maxTopK
	}
	ctx, cancel := c.reqCtx(ctx)
	defer cancel()

	snap := c.search.Snapshot()
	cands, err := search.Candidates(ctx, snap, terms)
	if err != nil {
		return nil, err
	}
	rep = &SearchReport{Candidates: len(cands), Hits: []SearchHit{}}
	for _, t := range terms {
		rep.Terms = append(rep.Terms, t.String())
	}

	// Phrase counting: one FM-index substring count per (candidate, phrase)
	// pair, on the worker pool — backward search is O(pattern), so this
	// stays cheap even on large candidate sets.
	phrases := search.Phrases(terms)
	var phraseTF map[string][]int64
	if len(phrases) > 0 {
		phraseTF = make(map[string][]int64, len(cands))
		var mu sync.Mutex
		err = c.forEach(ctx, cands, func(name string) {
			dp := snap.Docs[name]
			counts := make([]int64, len(phrases))
			if d := dp.Doc(); d != nil && d.FM != nil {
				for pi, p := range phrases {
					counts[pi] = int64(d.FM.GlobalCount([]byte(p.Text)))
				}
			}
			mu.Lock()
			phraseTF[name] = counts
			mu.Unlock()
		})
		if err != nil {
			return nil, err
		}
	}

	scored, err := search.Rank(ctx, snap, terms, cands, phraseTF)
	if err != nil {
		return nil, err
	}

	// Structural filter: count the XPath on every scored candidate (worker
	// pool again, each evaluation under the usual per-request accounting)
	// and keep the ones with at least one result node.
	nodes := map[string]int64{}
	if xpath != "" {
		reqs := make([]Request, len(scored))
		for i, ds := range scored {
			reqs[i] = Request{Doc: ds.Doc, Query: xpath, Mode: ModeCount}
		}
		kept := scored[:0]
		for i, res := range c.Query(ctx, reqs) {
			switch {
			case res.Err != nil:
				if isCtxErr(res.Err) {
					return nil, res.Err
				}
				if rep.Failed == nil {
					rep.Failed = map[string]string{}
				}
				rep.Failed[res.Doc] = res.Err.Error()
			case res.Count > 0:
				nodes[res.Doc] = res.Count
				kept = append(kept, scored[i])
			}
		}
		scored = kept
	}
	rep.Matched = len(scored)

	if len(scored) > k {
		scored = scored[:k]
	}
	for _, ds := range scored {
		snip, err := search.Snippet(ctx, ds.Postings, terms, search.SnippetWidth)
		if err != nil {
			return nil, err
		}
		rep.Hits = append(rep.Hits, SearchHit{Doc: ds.Doc, Score: ds.Score, Snippet: snip, Nodes: nodes[ds.Doc]})
	}
	return rep, nil
}

// isCtxErr reports whether err is the context's own failure — the whole
// search is over, as opposed to one document failing.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// forEach runs fn over names on a bounded pool of Config.Workers
// goroutines; a canceled context stops feeding and returns its error (some
// names will not have been visited).
func (c *Collection) forEach(ctx context.Context, names []string, fn func(name string)) error {
	if len(names) == 0 {
		return ctx.Err()
	}
	workers := c.cfg.workers()
	if workers > len(names) {
		workers = len(names)
	}
	jobs := make(chan string)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for name := range jobs {
				fn(name)
			}
		}()
	}
	canceled := false
feed:
	for _, name := range names {
		if ctx.Err() != nil {
			canceled = true
			break
		}
		select {
		case jobs <- name:
		case <-ctx.Done():
			canceled = true
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if canceled {
		return ctx.Err()
	}
	return nil
}

// SaveSearchIndex writes the collection's posting index to path (the
// aligned container OpenIndexFile maps back in); it fails with
// ErrSearchDisabled when the tier is off.
func (c *Collection) SaveSearchIndex(path string) (int64, error) {
	if c.search == nil {
		return 0, ErrSearchDisabled
	}
	return c.search.SaveFile(path)
}

// SearchIndex exposes the posting index (nil when disabled) for tests and
// tools; callers must treat it as read-only.
func (c *Collection) SearchIndex() *search.Index { return c.search }
