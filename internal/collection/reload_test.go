package collection

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// libXML builds a document with n <book> children.
func libXML(n int) []byte {
	var b strings.Builder
	b.WriteString("<lib>")
	for i := 0; i < n; i++ {
		b.WriteString("<book>x</book>")
	}
	b.WriteString("</lib>")
	return []byte(b.String())
}

// saveIndex builds an index for a document with n books and writes it to
// path (atomically, via SaveFile's temp-file + rename).
func saveIndex(t *testing.T, path string, n int) {
	t.Helper()
	eng, err := core.Build(libXML(n), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.SaveFile(path); err != nil {
		t.Fatal(err)
	}
}

func countBooks(t *testing.T, c *Collection, doc string) int64 {
	t.Helper()
	res := c.Do(Request{Doc: doc, Query: "//book", Mode: ModeCount})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	return res.Count
}

func TestReload(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lib.sxsi")
	saveIndex(t, path, 2)

	c := New(Config{})
	if err := c.Open("lib", path); err != nil {
		t.Fatal(err)
	}
	old, _ := c.Get("lib")
	if n := countBooks(t, c, "lib"); n != 2 {
		t.Fatalf("initial count = %d, want 2", n)
	}

	// Nothing changed: the pass is a no-op.
	rep := c.Reload(context.Background())
	if len(rep.Reloaded) != 0 || len(rep.Removed) != 0 || rep.Unchanged != 1 || len(rep.Failed) != 0 {
		t.Fatalf("no-op reload report: %+v", rep)
	}
	if eng, _ := c.Get("lib"); eng != old {
		t.Fatal("no-op reload replaced the engine")
	}

	// The file changed (different size and mtime): the document is
	// re-opened and the registry pointer flips.
	saveIndex(t, path, 3)
	// Belt and braces for coarse filesystem clocks: force a distinct mtime.
	if err := os.Chtimes(path, time.Time{}, time.Now().Add(2*time.Second)); err != nil {
		t.Fatal(err)
	}
	rep = c.Reload(context.Background())
	if len(rep.Reloaded) != 1 || rep.Reloaded[0] != "lib" {
		t.Fatalf("reload report after change: %+v", rep)
	}
	if eng, _ := c.Get("lib"); eng == old {
		t.Fatal("changed file did not swap the engine")
	}
	if n := countBooks(t, c, "lib"); n != 3 {
		t.Fatalf("count after reload = %d, want 3", n)
	}
	if c.Stats().Reloads != 2 {
		t.Fatalf("Stats.Reloads = %d, want 2", c.Stats().Reloads)
	}
}

func TestReloadFailureKeepsOldEngine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lib.sxsi")
	saveIndex(t, path, 2)
	c := New(Config{})
	if err := c.Open("lib", path); err != nil {
		t.Fatal(err)
	}
	// Replace the index with a truncated one — the index magic followed by
	// garbage; the reload must fail and the old engine keep serving. The
	// replacement is an atomic rename, not an in-place write: the old
	// inode stays mapped under the old engine (in-place mutation of a
	// mapped index is out of contract — SaveFile renames for this reason).
	bad := filepath.Join(dir, "bad.tmp")
	if err := os.WriteFile(bad, []byte("SXSIGO garbage, not a real index"), 0o666); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(bad, path); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, time.Time{}, time.Now().Add(2*time.Second)); err != nil {
		t.Fatal(err)
	}
	rep := c.Reload(context.Background())
	if len(rep.Failed) != 1 || rep.Failed["lib"] == "" {
		t.Fatalf("reload report: %+v", rep)
	}
	if n := countBooks(t, c, "lib"); n != 2 {
		t.Fatalf("count after failed reload = %d, want the old index's 2", n)
	}
	// The recorded stat was not updated, so fixing the file is caught by
	// the next pass.
	saveIndex(t, path, 4)
	if err := os.Chtimes(path, time.Time{}, time.Now().Add(4*time.Second)); err != nil {
		t.Fatal(err)
	}
	rep = c.Reload(context.Background())
	if len(rep.Reloaded) != 1 {
		t.Fatalf("reload report after fix: %+v", rep)
	}
	if n := countBooks(t, c, "lib"); n != 4 {
		t.Fatalf("count after fixed reload = %d, want 4", n)
	}
}

func TestReloadRemovesVanishedDocs(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lib.sxsi")
	saveIndex(t, path, 2)
	c := New(Config{})
	if err := c.Open("lib", path); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	rep := c.Reload(context.Background())
	if len(rep.Removed) != 1 || rep.Removed[0] != "lib" {
		t.Fatalf("reload report: %+v", rep)
	}
	if _, ok := c.Get("lib"); ok {
		t.Fatal("vanished document still registered")
	}
}

func TestReloadIgnoresManuallyAddedDocs(t *testing.T) {
	eng, err := core.Build(libXML(1), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	c := New(Config{})
	c.Add("mem", eng)
	rep := c.Reload(context.Background())
	if len(rep.Reloaded)+len(rep.Removed)+rep.Unchanged+len(rep.Failed) != 0 {
		t.Fatalf("reload touched a manually added doc: %+v", rep)
	}
	// Replacing a file-backed doc through Add drops its file binding too.
	dir := t.TempDir()
	path := filepath.Join(dir, "lib.sxsi")
	saveIndex(t, path, 2)
	if err := c.Open("lib", path); err != nil {
		t.Fatal(err)
	}
	c.Add("lib", eng)
	rep = c.Reload(context.Background())
	if rep.Unchanged != 0 {
		t.Fatalf("Add did not drop the file binding: %+v", rep)
	}
}

// TestCanceledCounter pins the accounting split: a canceled evaluation
// lands in Stats.Canceled, a deadline expiry in Stats.Errors.
func TestCanceledCounter(t *testing.T) {
	eng, err := core.Build(libXML(2), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	c := New(Config{})
	c.Add("lib", eng)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := c.DoContext(ctx, Request{Doc: "lib", Query: "//book", Mode: ModeCount})
	if res.Err == nil {
		t.Fatal("canceled request succeeded")
	}
	if st := c.Stats(); st.Canceled != 1 || st.Errors != 0 {
		t.Fatalf("after cancel: %+v, want Canceled=1 Errors=0", st)
	}

	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	res = c.DoContext(dctx, Request{Doc: "lib", Query: "//book", Mode: ModeCount})
	if res.Err == nil {
		t.Fatal("expired request succeeded")
	}
	if st := c.Stats(); st.Canceled != 1 || st.Errors != 1 {
		t.Fatalf("after deadline: %+v, want Canceled=1 Errors=1", st)
	}
}
