package collection

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

const testXML = `<lib><book id="1"><title>gold rush</title><author>Kim</author></book>` +
	`<book id="2"><title>silver age</title><author>Lee</author></book>` +
	`<note>gold note</note></lib>`

func buildEngine(t *testing.T, xml string) *core.Engine {
	t.Helper()
	eng, err := core.Build([]byte(xml), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestRegistry(t *testing.T) {
	c := New(Config{})
	c.Add("a", buildEngine(t, testXML))
	c.Add("b", buildEngine(t, `<x><y>z</y></x>`))
	if got := c.Names(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("Names = %v", got)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("Get(a) missing")
	}
	if !c.Remove("a") {
		t.Fatal("Remove(a) = false")
	}
	if c.Remove("a") {
		t.Fatal("second Remove(a) = true")
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("Get(a) after Remove")
	}
}

func TestOpenSniffsIndexAndXML(t *testing.T) {
	dir := t.TempDir()
	xmlPath := filepath.Join(dir, "doc.xml")
	if err := os.WriteFile(xmlPath, []byte(testXML), 0o666); err != nil {
		t.Fatal(err)
	}
	idxPath := filepath.Join(dir, "doc.sxsi")
	if _, err := buildEngine(t, testXML).SaveFile(idxPath); err != nil {
		t.Fatal(err)
	}

	c := New(Config{})
	if err := c.Open("raw", xmlPath); err != nil {
		t.Fatal(err)
	}
	if err := c.Open("saved", idxPath); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"raw", "saved"} {
		res := c.Do(Request{Doc: name, Query: "//book/title", Mode: ModeCount})
		if res.Err != nil || res.Count != 2 {
			t.Fatalf("%s: count = %d, err = %v", name, res.Count, res.Err)
		}
	}
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	// a: saved index plus a deliberately different same-named .xml — the
	// .sxsi must shadow it.
	if _, err := buildEngine(t, testXML).SaveFile(filepath.Join(dir, "a.sxsi")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "a.xml"), []byte(`<other/>`), 0o666); err != nil {
		t.Fatal(err)
	}
	// b, c: raw XML, built on miss.
	if err := os.WriteFile(filepath.Join(dir, "b.xml"), gen.XMark(1, 4096), 0o666); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "c.xml"), gen.Medline(2, 4096), 0o666); err != nil {
		t.Fatal(err)
	}
	// Ignored: directories and other extensions.
	if err := os.WriteFile(filepath.Join(dir, "README.md"), []byte("x"), 0o666); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "sub"), 0o777); err != nil {
		t.Fatal(err)
	}

	c := New(Config{Workers: 4})
	names, err := c.LoadDir(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"a", "b", "c"}; !reflect.DeepEqual(names, want) {
		t.Fatalf("LoadDir names = %v, want %v", names, want)
	}
	if res := c.Do(Request{Doc: "a", Query: "//book", Mode: ModeCount}); res.Err != nil || res.Count != 2 {
		t.Fatalf("a//book = %d, err %v (index did not shadow a.xml?)", res.Count, res.Err)
	}
	if res := c.Do(Request{Doc: "b", Query: "//item", Mode: ModeCount}); res.Err != nil || res.Count == 0 {
		t.Fatalf("b//item = %d, err %v", res.Count, res.Err)
	}
}

func TestLoadDirErrors(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.xml"), []byte(`<unclosed>`), 0o666); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "good.xml"), []byte(testXML), 0o666); err != nil {
		t.Fatal(err)
	}
	c := New(Config{})
	names, err := c.LoadDir(context.Background(), dir)
	if err == nil {
		t.Fatal("want error for bad.xml")
	}
	if !reflect.DeepEqual(names, []string{"good"}) {
		t.Fatalf("names = %v, want the good document registered", names)
	}
}

func TestBatchQueryModes(t *testing.T) {
	c := New(Config{Workers: 3})
	c.Add("lib", buildEngine(t, testXML))
	reqs := []Request{
		{Doc: "lib", Query: "//book", Mode: ModeCount},
		{Doc: "lib", Query: "//title", Mode: ModeNodes},
		{Doc: "lib", Query: "//note", Mode: ModeSerialize},
		{Doc: "nope", Query: "//x", Mode: ModeCount},
		{Doc: "lib", Query: "//book[", Mode: ModeCount},
	}
	out := c.Query(context.Background(), reqs)
	if out[0].Err != nil || out[0].Count != 2 {
		t.Fatalf("count: %+v", out[0])
	}
	if out[1].Err != nil || len(out[1].Nodes) != 2 || out[1].Count != 2 {
		t.Fatalf("nodes: %+v", out[1])
	}
	if out[2].Err != nil || string(out[2].Output) != "<note>gold note</note>\n" {
		t.Fatalf("serialize: %+v %q", out[2], out[2].Output)
	}
	if !errors.Is(out[3].Err, ErrUnknownDoc) {
		t.Fatalf("unknown doc: err = %v", out[3].Err)
	}
	if out[4].Err == nil {
		t.Fatal("parse error expected")
	}
	// Order must match the request order.
	for i, r := range out {
		if r.Doc != reqs[i].Doc || r.Query != reqs[i].Query {
			t.Fatalf("result %d out of order: %+v", i, r)
		}
	}
}

func TestBatchQueryCancel(t *testing.T) {
	c := New(Config{Workers: 1})
	c.Add("lib", buildEngine(t, testXML))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reqs := make([]Request, 64)
	for i := range reqs {
		reqs[i] = Request{Doc: "lib", Query: "//book", Mode: ModeCount}
	}
	out := c.Query(ctx, reqs)
	sawCancel := false
	for _, r := range out {
		if errors.Is(r.Err, context.Canceled) {
			sawCancel = true
		} else if r.Err != nil {
			t.Fatalf("unexpected error: %v", r.Err)
		}
	}
	if !sawCancel {
		t.Fatal("no request observed the cancellation")
	}
}

func TestQueryCache(t *testing.T) {
	c := New(Config{CacheSize: 2})
	c.Add("lib", buildEngine(t, testXML))

	for i := 0; i < 3; i++ {
		if res := c.Do(Request{Doc: "lib", Query: "//book", Mode: ModeCount}); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	st := c.Stats()
	if st.CacheMisses != 1 || st.CacheHits != 2 {
		t.Fatalf("hits/misses = %d/%d, want 2/1", st.CacheHits, st.CacheMisses)
	}

	// Capacity 2: a third distinct query evicts the LRU entry.
	c.Do(Request{Doc: "lib", Query: "//title", Mode: ModeCount})
	c.Do(Request{Doc: "lib", Query: "//note", Mode: ModeCount})
	if got := c.Stats().CacheLen; got != 2 {
		t.Fatalf("cache len = %d, want 2", got)
	}

	// Replacing the document must drop its cached queries: the new content
	// has three books, and a stale compiled query would still answer 2.
	c.Add("lib", buildEngine(t, `<lib><book/><book/><book/></lib>`))
	if res := c.Do(Request{Doc: "lib", Query: "//book", Mode: ModeCount}); res.Count != 3 {
		t.Fatalf("stale cache: count = %d after replacing document", res.Count)
	}
	if got := c.Stats().CacheLen; got != 1 {
		t.Fatalf("cache len after replace = %d, want 1", got)
	}
}

// TestCacheRejectsStaleInsert simulates the compile/replace race: a query
// compiled against the old engine lands in the cache *after* the document
// was replaced (so dropCached could not remove it). The engine recorded in
// the entry no longer matches, so the lookup must treat it as a miss
// instead of serving results from the old document.
func TestCacheRejectsStaleInsert(t *testing.T) {
	c := New(Config{})
	oldEng := buildEngine(t, testXML) // 2 books
	c.Add("lib", oldEng)
	staleQ, err := oldEng.Compile("//book")
	if err != nil {
		t.Fatal(err)
	}
	c.Add("lib", buildEngine(t, `<lib><book/><book/><book/></lib>`))
	// The racing goroutine's cache.add fires now, post-invalidation.
	c.cacheMu.Lock()
	c.cache.add(qkey{doc: "lib", query: "//book"}, cachedQuery{q: staleQ, eng: oldEng})
	c.cacheMu.Unlock()
	if res := c.Do(Request{Doc: "lib", Query: "//book", Mode: ModeCount}); res.Err != nil || res.Count != 3 {
		t.Fatalf("served stale cached query: count = %d, err = %v", res.Count, res.Err)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := New(Config{CacheSize: -1})
	c.Add("lib", buildEngine(t, testXML))
	for i := 0; i < 2; i++ {
		if res := c.Do(Request{Doc: "lib", Query: "//book", Mode: ModeCount}); res.Err != nil || res.Count != 2 {
			t.Fatalf("%+v", res)
		}
	}
	if st := c.Stats(); st.CacheHits != 0 || st.CacheLen != 0 {
		t.Fatalf("disabled cache recorded hits: %+v", st)
	}
}

func TestParseMode(t *testing.T) {
	for s, want := range map[string]Mode{"": ModeCount, "count": ModeCount, "nodes": ModeNodes, "serialize": ModeSerialize, "query": ModeSerialize} {
		got, err := ParseMode(s)
		if err != nil || got != want {
			t.Fatalf("ParseMode(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Fatal("ParseMode(bogus) succeeded")
	}
}

// TestOpenMapsByDefault: a saved index opens memory-mapped (zero-copy),
// the NoMmap knob opts out, and the collection stats aggregate the split.
func TestOpenMapsByDefault(t *testing.T) {
	dir := t.TempDir()
	idxPath := filepath.Join(dir, "doc.sxsi")
	n, err := buildEngine(t, testXML).SaveFile(idxPath)
	if err != nil {
		t.Fatal(err)
	}

	c := New(Config{})
	if err := c.Open("doc", idxPath); err != nil {
		t.Fatal(err)
	}
	eng, _ := c.Get("doc")
	if !eng.Mapped() {
		t.Fatal("saved index did not open mapped")
	}
	st := c.Stats()
	if st.MappedDocs != 1 || st.MappedBytes != n {
		t.Fatalf("stats = %+v, want 1 mapped doc of %d bytes", st, n)
	}

	nc := New(Config{Index: core.Config{NoMmap: true}})
	if err := nc.Open("doc", idxPath); err != nil {
		t.Fatal(err)
	}
	eng, _ = nc.Get("doc")
	if eng.Mapped() {
		t.Fatal("NoMmap collection mapped anyway")
	}
	if st := nc.Stats(); st.MappedDocs != 0 || st.MappedBytes != 0 {
		t.Fatalf("NoMmap stats = %+v", st)
	}

	// Mapped and copied engines answer identically.
	a := c.Do(Request{Doc: "doc", Query: "//book/title", Mode: ModeSerialize})
	b := nc.Do(Request{Doc: "doc", Query: "//book/title", Mode: ModeSerialize})
	if a.Err != nil || b.Err != nil || string(a.Output) != string(b.Output) {
		t.Fatalf("outputs differ: %q/%v vs %q/%v", a.Output, a.Err, b.Output, b.Err)
	}
}
