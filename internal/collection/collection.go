// Package collection is the multi-document serving layer on top of the SXSI
// engine: a registry of named indexed documents, parallel bulk loading of
// saved indexes (with build-on-miss for raw XML), a bounded worker-pool
// batch query API, and an LRU cache of compiled queries. It is the
// in-process core of the sxsid server (package service); everything here is
// safe for concurrent use.
package collection

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/search"
	"repro/internal/xpath"
)

// ErrUnknownDoc reports a request against a document name that is not in
// the collection.
var ErrUnknownDoc = errors.New("collection: unknown document")

// QueryError wraps a compilation failure (parse error or unsupported
// fragment): the request itself was bad, as opposed to a server-side
// evaluation failure. The HTTP layer maps it to 400.
type QueryError struct{ Err error }

func (e *QueryError) Error() string { return e.Err.Error() }
func (e *QueryError) Unwrap() error { return e.Err }

// DefaultCacheSize is the compiled-query LRU capacity when Config.CacheSize
// is zero.
const DefaultCacheSize = 256

// Config tunes a Collection; the zero value gives sensible defaults.
type Config struct {
	// Workers bounds the batch worker pool and the LoadDir loader pool
	// (default GOMAXPROCS).
	Workers int
	// CacheSize is the compiled-query LRU capacity (default
	// DefaultCacheSize; negative disables caching).
	CacheSize int
	// RequestTimeout bounds the evaluation of every single request (one
	// Do/DoContext call, one streamed Serialize): the evaluators poll their
	// context and a request past its deadline fails with
	// context.DeadlineExceeded instead of occupying a worker forever. Zero
	// means no per-request deadline.
	RequestTimeout time.Duration
	// DisableSearch turns off the collection search tier: no posting
	// index is maintained as documents register (saving the tokenization
	// pass per open) and Search fails with ErrSearchDisabled.
	DisableSearch bool
	// Index configures document building and loading.
	Index core.Config
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Collection is a registry of named indexed documents with a shared
// compiled-query cache. All methods are safe for concurrent use.
type Collection struct {
	cfg Config

	mu      sync.RWMutex
	docs    map[string]*core.Engine // guarded by mu
	sources map[string]docSource    // guarded by mu; docs that came from files, for Reload

	cacheMu sync.Mutex
	cache   *lru // guarded by cacheMu; nil when caching is disabled

	// search is the collection-scale posting index (nil when
	// Config.DisableSearch is set); it has its own internal lock and is
	// kept in sync by add/Remove.
	search *search.Index

	met metrics
}

// docSource remembers where a document was opened from and what the file
// looked like then, so Reload can detect changes with one stat.
type docSource struct {
	path  string
	mtime time.Time
	size  int64
}

// New creates an empty collection.
func New(cfg Config) *Collection {
	c := &Collection{cfg: cfg, docs: map[string]*core.Engine{}, sources: map[string]docSource{}}
	size := cfg.CacheSize
	if size == 0 {
		size = DefaultCacheSize
	}
	if size > 0 {
		c.cache = newLRU(size)
	}
	if !cfg.DisableSearch {
		c.search = search.NewIndex()
	}
	return c
}

// Add registers (or replaces) a document under name. Replacing a document
// drops its cached compiled queries; in-flight evaluations hold their own
// engine pointer and finish against the old index, so a swap is safe under
// load. Documents registered through Add are not file-backed and are left
// alone by Reload.
func (c *Collection) Add(name string, eng *core.Engine) {
	c.add(name, eng, nil)
}

func (c *Collection) add(name string, eng *core.Engine, src *docSource) {
	// Build the postings before touching any lock: tokenizing a large
	// document is the expensive part, and Engine.Postings caches it on
	// the engine, so re-registering is free.
	var dp *search.DocPostings
	if c.search != nil {
		dp = eng.Postings()
	}
	c.mu.Lock()
	c.docs[name] = eng
	if src != nil {
		c.sources[name] = *src
	} else {
		delete(c.sources, name)
	}
	c.mu.Unlock()
	c.dropCached(name)
	if dp != nil {
		// After the registry flip: a search that snapshots between the two
		// still scores self-consistent (postings carry their own document).
		c.search.Add(name, dp)
	}
}

// Remove unregisters a document and drops its cached compiled queries; it
// reports whether the document existed.
func (c *Collection) Remove(name string) bool {
	c.mu.Lock()
	_, ok := c.docs[name]
	delete(c.docs, name)
	delete(c.sources, name)
	c.mu.Unlock()
	c.dropCached(name)
	if c.search != nil {
		c.search.Remove(name)
	}
	return ok
}

func (c *Collection) dropCached(name string) {
	if c.cache == nil {
		return
	}
	c.cacheMu.Lock()
	c.cache.removeDoc(name)
	c.cacheMu.Unlock()
}

// Get returns the engine registered under name.
func (c *Collection) Get(name string) (*core.Engine, bool) {
	c.mu.RLock()
	eng, ok := c.docs[name]
	c.mu.RUnlock()
	return eng, ok
}

// Names returns the registered document names, sorted.
func (c *Collection) Names() []string {
	c.mu.RLock()
	names := make([]string, 0, len(c.docs))
	for n := range c.docs {
		names = append(names, n)
	}
	c.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Len returns the number of registered documents.
func (c *Collection) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.docs)
}

// Open loads the file at path and registers it under name: a saved index
// (recognized by its magic number) is opened through core.OpenFile —
// memory-mapped by default, so startup cost is independent of the index
// size and the pages stay shared with the OS cache (set Index.NoMmap to
// copy instead) — and anything else is treated as raw XML and indexed on
// the fly (build-on-miss). Only the raw-XML path buffers the whole file;
// indexes can be multi-GB and are never held as raw bytes nor copied onto
// the heap.
//
// A mapped engine keeps its index file mapped for as long as the engine is
// reachable; replacing or removing a document does not unmap it eagerly
// (queries may still be running against it). Once the engine — and the
// compiled queries referencing it, which Add/Remove drop from the cache —
// becomes unreachable, the mapping is released by the finalizer OpenFile
// registered, so a daemon that hot-reloads documents does not accumulate
// dead mappings.
func (c *Collection) Open(name, path string) error {
	// Stat before reading: if the file is replaced mid-open, the recorded
	// mtime/size predate the change and the next Reload re-opens it.
	fi, statErr := os.Stat(path)
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	br := bufio.NewReader(f)
	head, _ := br.Peek(16) // shorter files simply fail the magic check
	var eng *core.Engine
	if core.IsIndexData(head) {
		f.Close()
		eng, err = core.OpenFile(path, c.cfg.Index)
	} else {
		var data []byte
		if data, err = io.ReadAll(br); err == nil {
			eng, err = core.Build(data, c.cfg.Index)
		}
		f.Close()
	}
	if err != nil {
		return fmt.Errorf("collection: open %s: %w", path, err)
	}
	var src *docSource
	if statErr == nil {
		src = &docSource{path: path, mtime: fi.ModTime(), size: fi.Size()}
	}
	c.add(name, eng, src)
	return nil
}

// ReloadReport summarizes one Reload pass over the file-backed documents.
type ReloadReport struct {
	// Reloaded lists documents whose source file changed (mtime or size)
	// and was re-opened, sorted.
	Reloaded []string `json:"reloaded"`
	// Removed lists documents whose source file disappeared and were
	// unregistered, sorted.
	Removed []string `json:"removed"`
	// Unchanged counts documents whose source file was stat-identical.
	Unchanged int `json:"unchanged"`
	// Failed maps document names to the error that kept them from
	// reloading; the previously loaded engine keeps serving.
	Failed map[string]string `json:"failed,omitempty"`
}

// Reload re-stats every file-backed document (registered through Open or
// LoadDir) and re-opens, in parallel on Config.Workers loaders, the ones
// whose file changed since it was last opened. The swap is the Add pointer
// flip: in-flight queries finish on the old engine, new requests see the
// new one, and the old engine's cached compiled queries are dropped. A
// mapped old index stays mapped until its last query completes and the
// engine becomes unreachable (the mmap finalizer releases it — see Open).
// Documents whose file vanished are removed; ones that fail to re-open
// keep serving the old index and are reported in Failed. Documents added
// directly with Add have no file and are never touched.
func (c *Collection) Reload(ctx context.Context) ReloadReport {
	c.mu.RLock()
	srcs := make(map[string]docSource, len(c.sources))
	for name, src := range c.sources {
		srcs[name] = src
	}
	c.mu.RUnlock()

	rep := ReloadReport{Reloaded: []string{}, Removed: []string{}}
	var mu sync.Mutex
	fail := func(name string, err error) {
		mu.Lock()
		if rep.Failed == nil {
			rep.Failed = map[string]string{}
		}
		rep.Failed[name] = err.Error()
		mu.Unlock()
	}

	type job struct {
		name string
		src  docSource
	}
	var changed []job
	for name, src := range srcs {
		fi, err := os.Stat(src.path)
		switch {
		case errors.Is(err, os.ErrNotExist):
			c.Remove(name)
			rep.Removed = append(rep.Removed, name)
		case err != nil:
			fail(name, err)
		case fi.ModTime().Equal(src.mtime) && fi.Size() == src.size:
			rep.Unchanged++
		default:
			changed = append(changed, job{name, src})
		}
	}

	jobs := make(chan job)
	var wg sync.WaitGroup
	workers := c.cfg.workers()
	if workers > len(changed) {
		workers = len(changed)
	}
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if err := c.Open(j.name, j.src.path); err != nil {
					fail(j.name, err)
					continue
				}
				mu.Lock()
				rep.Reloaded = append(rep.Reloaded, j.name)
				mu.Unlock()
			}
		}()
	}
feed:
	for i, j := range changed {
		select {
		case jobs <- j:
		case <-ctx.Done():
			for _, rest := range changed[i:] {
				fail(rest.name, ctx.Err())
			}
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	sort.Strings(rep.Reloaded)
	sort.Strings(rep.Removed)
	c.met.reloads.Add(1)
	return rep
}

// LoadDir bulk-loads every .sxsi and .xml file directly under dir using
// Workers parallel loaders; the document name is the file name without its
// extension, and a saved .sxsi index shadows a same-named .xml source. It
// returns the sorted names registered; on error (including context
// cancellation) it still registers the documents already loaded and joins
// every per-file error.
func (c *Collection) LoadDir(ctx context.Context, dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	paths := map[string]string{} // doc name -> file path
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		ext := filepath.Ext(e.Name())
		if ext != ".sxsi" && ext != ".xml" {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ext)
		if prev, ok := paths[name]; ok && filepath.Ext(prev) == ".sxsi" {
			continue // the saved index wins over the raw source
		}
		paths[name] = filepath.Join(dir, e.Name())
	}

	type job struct{ name, path string }
	jobs := make(chan job)
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var errs []error
	for i := 0; i < c.cfg.workers(); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if err := c.Open(j.name, j.path); err != nil {
					errMu.Lock()
					errs = append(errs, err)
					errMu.Unlock()
				}
			}
		}()
	}
feed:
	for name, path := range paths {
		select {
		case jobs <- job{name, path}:
		case <-ctx.Done():
			errMu.Lock()
			errs = append(errs, ctx.Err())
			errMu.Unlock()
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	return c.Names(), errors.Join(errs...)
}

// Compiled returns the compiled form of query against the named document,
// through the LRU cache. Concurrent misses on the same key may compile the
// query more than once; all but the last result are dropped, which is
// harmless because compiled queries are interchangeable and race-free.
// Compilation failures are returned wrapped in *QueryError.
func (c *Collection) Compiled(doc, query string) (*xpath.Query, error) {
	eng, ok := c.Get(doc)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDoc, doc)
	}
	if c.cache == nil {
		return c.compile(eng, query)
	}
	k := qkey{doc: doc, query: query}
	c.cacheMu.Lock()
	ent, ok := c.cache.get(k)
	c.cacheMu.Unlock()
	// An entry compiled against a different engine is stale: its insertion
	// raced with a replacement of the document (compile started before the
	// replacement, cache.add landed after dropCached). Treat it as a miss
	// and overwrite, so a re-registered name never serves old results.
	if ok && ent.eng == eng {
		c.met.cacheHits.Add(1)
		return ent.q, nil
	}
	c.met.cacheMiss.Add(1)
	q, err := c.compile(eng, query)
	if err != nil {
		return nil, err
	}
	c.cacheMu.Lock()
	c.cache.add(k, cachedQuery{q: q, eng: eng})
	c.cacheMu.Unlock()
	return q, nil
}

func (c *Collection) compile(eng *core.Engine, query string) (*xpath.Query, error) {
	q, err := eng.Compile(query)
	if err != nil {
		return nil, &QueryError{Err: err}
	}
	return q, nil
}

// Mode selects the result semantics of a request.
type Mode uint8

const (
	// ModeCount evaluates in counting mode.
	ModeCount Mode = iota
	// ModeNodes materializes the result node positions.
	ModeNodes
	// ModeSerialize serializes the result subtrees as XML.
	ModeSerialize
	// ModeExists checks for at least one result, lazily: evaluation stops
	// at the first hit instead of producing the whole result set.
	ModeExists
)

func (m Mode) String() string {
	switch m {
	case ModeCount:
		return "count"
	case ModeNodes:
		return "nodes"
	case ModeSerialize:
		return "serialize"
	case ModeExists:
		return "exists"
	}
	return fmt.Sprintf("mode(%d)", m)
}

// ParseMode resolves the wire names used by the HTTP API.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "count", "":
		return ModeCount, nil
	case "nodes":
		return ModeNodes, nil
	case "serialize", "query":
		return ModeSerialize, nil
	case "exists":
		return ModeExists, nil
	}
	return 0, fmt.Errorf("collection: unknown mode %q", s)
}

// Request names one evaluation: a query against a registered document.
type Request struct {
	Doc   string
	Query string
	Mode  Mode
}

// Result carries the outcome of one Request. Count is filled in every mode
// (the number of result nodes; 0 or 1 in ModeExists); Nodes only in
// ModeNodes, Output only in ModeSerialize and Exists only in ModeExists.
type Result struct {
	Doc    string
	Query  string
	Mode   Mode
	Count  int64
	Nodes  []int
	Output []byte
	Exists bool
	Err    error
}

// reqCtx applies the per-request deadline; the returned cancel func is
// always non-nil.
func (c *Collection) reqCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.cfg.RequestTimeout > 0 {
		return context.WithTimeout(ctx, c.cfg.RequestTimeout)
	}
	return ctx, func() {}
}

// Do evaluates a single request. Every request counts toward
// Stats.Queries; failed ones (compile errors, unknown documents,
// evaluation failures, deadline expiry) also toward Stats.Errors, except
// cancellations (context.Canceled — the client went away), which count in
// Stats.Canceled so client behavior does not pollute the error rate. An
// evaluator panic is recovered into the Result's Err: batch workers run
// outside net/http's per-request recover, and one poisoned query must not
// take down the daemon and every loaded document with it.
func (c *Collection) Do(req Request) Result {
	return c.DoContext(context.Background(), req)
}

// DoContext is Do bounded by a context (further bounded by the collection's
// RequestTimeout): both evaluation strategies poll the context, so a
// cancelled or expired request stops mid-evaluation and reports the
// context's error.
func (c *Collection) DoContext(ctx context.Context, req Request) (res Result) {
	res = Result{Doc: req.Doc, Query: req.Query, Mode: req.Mode}
	c.met.queries.Add(1)
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			res.Err = fmt.Errorf("collection: internal error evaluating %q on %q: %v", req.Query, req.Doc, r)
		}
		c.met.done(int(req.Mode), time.Since(start), res.Err)
	}()
	q, err := c.Compiled(req.Doc, req.Query)
	if err != nil {
		res.Err = err
		return res
	}
	ctx, cancel := c.reqCtx(ctx)
	defer cancel()
	switch req.Mode {
	case ModeCount:
		res.Count, res.Err = q.CountCtx(ctx)
	case ModeNodes:
		res.Nodes, res.Err = q.NodesCtx(ctx)
		res.Count = int64(len(res.Nodes))
	case ModeSerialize:
		var buf bytes.Buffer
		n, err := q.SerializeCtx(ctx, &buf)
		res.Count, res.Output, res.Err = int64(n), buf.Bytes(), err
		if res.Err != nil {
			res.Output = nil // never hand out a truncated serialization
		}
	case ModeExists:
		res.Exists, res.Err = q.Exists(ctx)
		if res.Exists {
			res.Count = 1
		}
	default:
		res.Err = fmt.Errorf("collection: unknown mode %d", req.Mode)
	}
	return res
}

// Serialize evaluates the query on the named document and streams the XML
// serialization of the result subtrees to w, returning the number of
// results. Unlike ModeSerialize requests, nothing is buffered — this is
// the GET /query path, which must handle result sets of any size without
// materializing them. Nothing is written to w before compilation succeeds,
// so a returned error with zero results means no bytes were produced.
func (c *Collection) Serialize(doc, query string, w io.Writer) (int64, error) {
	return c.SerializeContext(context.Background(), doc, query, w)
}

// SerializeContext is Serialize bounded by a context (and the collection's
// RequestTimeout). Cancellation mid-stream returns the context's error
// after a prefix of the results has been written; the HTTP layer turns
// that into an aborted connection rather than a silently truncated body.
func (c *Collection) SerializeContext(ctx context.Context, doc, query string, w io.Writer) (n int64, err error) {
	c.met.queries.Add(1)
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("collection: internal error evaluating %q on %q: %v", query, doc, r)
		}
		c.met.done(modeStream, time.Since(start), err)
	}()
	q, err := c.Compiled(doc, query)
	if err != nil {
		return 0, err
	}
	ctx, cancel := c.reqCtx(ctx)
	defer cancel()
	k, err := q.SerializeCtx(ctx, w)
	return int64(k), err
}

// Query evaluates a batch of requests on a bounded worker pool of
// Config.Workers goroutines and returns the results in request order. A
// canceled context stops the remaining work: unstarted requests report
// ctx.Err(), and in-flight evaluations observe the same context through
// DoContext and stop mid-run.
func (c *Collection) Query(ctx context.Context, reqs []Request) []Result {
	out := make([]Result, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	workers := c.cfg.workers()
	if workers > len(reqs) {
		workers = len(reqs)
	}
	idx := make(chan int)
	done := make([]bool, len(reqs))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = c.DoContext(ctx, reqs[i])
				done[i] = true
			}
		}()
	}
	canceled := false
feed:
	for i := range reqs {
		// Checked first because select picks randomly among ready cases: an
		// idle worker must not keep winning against a canceled context.
		if ctx.Err() != nil {
			canceled = true
			break
		}
		select {
		case idx <- i:
		case <-ctx.Done():
			canceled = true
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if canceled {
		// Each index is handed to exactly one worker, and the pool has
		// drained, so done[] is settled: unstarted requests report the
		// cancellation.
		for j := range reqs {
			if !done[j] {
				out[j] = Result{Doc: reqs[j].Doc, Query: reqs[j].Query, Mode: reqs[j].Mode, Err: ctx.Err()}
			}
		}
	}
	return out
}

// Stats is a snapshot of the collection's serving counters. MappedDocs
// counts documents whose index payloads alias a mapped file; MappedBytes
// and HeapBytes aggregate the per-engine split of shared (page-cache
// backed) versus private index memory. Canceled counts requests the client
// abandoned (context.Canceled), kept out of Errors so the error rate
// reflects server behavior only; Reloads counts Reload passes.
type Stats struct {
	Docs        int   `json:"docs"`
	MappedDocs  int   `json:"mapped_docs"`
	MappedBytes int64 `json:"mapped_bytes"`
	HeapBytes   int64 `json:"heap_bytes"`
	Queries     int64 `json:"queries"`
	Errors      int64 `json:"errors"`
	Canceled    int64 `json:"canceled"`
	Reloads     int64 `json:"reloads"`
	Searches    int64 `json:"searches"`
	SearchErrs  int64 `json:"search_errors"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	CacheLen    int   `json:"cache_len"`
}

// Stats reports the current serving counters.
func (c *Collection) Stats() Stats {
	s := Stats{
		Queries:     c.met.queries.Load(),
		Errors:      c.met.errors.Load(),
		Canceled:    c.met.canceled.Load(),
		Reloads:     c.met.reloads.Load(),
		Searches:    c.met.searches.Load(),
		SearchErrs:  c.met.searchErrs.Load(),
		CacheHits:   c.met.cacheHits.Load(),
		CacheMisses: c.met.cacheMiss.Load(),
	}
	c.mu.RLock()
	s.Docs = len(c.docs)
	for _, eng := range c.docs {
		es := eng.Stats()
		if es.Mapped {
			s.MappedDocs++
		}
		s.MappedBytes += int64(es.MappedBytes)
		s.HeapBytes += int64(es.HeapBytes)
	}
	c.mu.RUnlock()
	if c.cache != nil {
		c.cacheMu.Lock()
		s.CacheLen = c.cache.len()
		c.cacheMu.Unlock()
	}
	return s
}
