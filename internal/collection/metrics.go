package collection

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// This file is the collection's instrumentation: every serving counter
// lives behind the metrics wrapper below instead of as loose atomics on
// Collection, so the HTTP layer can render one coherent snapshot (the
// Prometheus /metrics endpoint) and the accounting rules — what counts as
// an error, what counts as a cancellation — are written down exactly once.

// LatencyBuckets are the upper bounds, in seconds, of the per-mode request
// latency histograms (cumulative, Prometheus-style; an implicit +Inf bucket
// follows the last bound). The range spans cache-hit counting queries
// (~tens of µs) to multi-second serializations of huge result sets.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

const numLatencyBuckets = 16 // len(LatencyBuckets); fixed so arrays work

// histogram is a fixed-bucket latency histogram with atomic counters; safe
// for concurrent observation without locks. Bucket counts are stored
// non-cumulative and accumulated at snapshot time.
type histogram struct {
	counts   [numLatencyBuckets + 1]atomic.Int64 // last = overflow (+Inf)
	sumNanos atomic.Int64
	total    atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	sec := d.Seconds()
	i := 0
	for i < numLatencyBuckets && sec > LatencyBuckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNanos.Add(int64(d))
	h.total.Add(1)
}

// HistogramSnapshot is a point-in-time copy of one latency histogram.
// Counts are cumulative per bucket (Prometheus semantics): Counts[i] is the
// number of observations ≤ LatencyBuckets[i], and Counts[len-1] == Count.
type HistogramSnapshot struct {
	Counts     []int64 // len(LatencyBuckets)+1; last is the +Inf bucket
	SumSeconds float64
	Count      int64
}

func (h *histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Counts: make([]int64, numLatencyBuckets+1)}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		s.Counts[i] = cum
	}
	// Count is derived from the buckets, not the total counter, so the
	// snapshot is internally consistent even if it races an observe().
	s.Count = cum
	s.SumSeconds = time.Duration(h.sumNanos.Load()).Seconds()
	return s
}

// modeStream indexes the latency histogram of streamed serializations
// (SerializeContext, the GET /query path), which is not a batch Mode.
const modeStream = int(ModeExists) + 1

const numLatencyModes = modeStream + 1

// latencyModeLabels names the histogram slots; the first four match
// Mode.String().
var latencyModeLabels = [numLatencyModes]string{
	"count", "nodes", "serialize", "exists", "stream",
}

// metrics is the instrumented counter set of a Collection. All methods are
// safe for concurrent use.
type metrics struct {
	queries    atomic.Int64
	errors     atomic.Int64
	canceled   atomic.Int64
	cacheHits  atomic.Int64
	cacheMiss  atomic.Int64
	reloads    atomic.Int64
	searches   atomic.Int64
	searchErrs atomic.Int64
	latency    [numLatencyModes]histogram
	searchLat  histogram
}

// done records the completion of one evaluation: its latency under the
// given mode slot, and the outcome. A context.Canceled failure is client
// behavior (a dropped connection), not a server fault: it lands in the
// canceled counter so the error rate stays meaningful. Deadline expiry
// (context.DeadlineExceeded) stays an error — the server failed to answer
// within its own budget.
func (m *metrics) done(mode int, d time.Duration, err error) {
	if mode >= 0 && mode < numLatencyModes {
		m.latency[mode].observe(d)
	}
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled):
		m.canceled.Add(1)
	default:
		m.errors.Add(1)
	}
}

// searchDone records the completion of one Search with the same
// error-vs-cancellation split as done; search failures land in their own
// counter, not the query error counter, because a search is a composite
// (its per-document XPath evaluations already account themselves).
func (m *metrics) searchDone(d time.Duration, err error) {
	m.searchLat.observe(d)
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled):
		m.canceled.Add(1)
	default:
		m.searchErrs.Add(1)
	}
}

// Metrics is a point-in-time snapshot of the collection's instrumentation:
// the Stats counters plus the per-mode latency histograms, keyed by mode
// label ("count", "nodes", "serialize", "exists" and "stream" for streamed
// GET /query serializations). Bucket upper bounds are LatencyBuckets.
type Metrics struct {
	Stats
	Latency map[string]HistogramSnapshot
	// SearchLatency is the end-to-end Search latency histogram (same
	// buckets), separate from the per-mode map because a search spans many
	// per-document evaluations.
	SearchLatency HistogramSnapshot
}

// Metrics returns a snapshot of every serving counter and latency
// histogram.
func (c *Collection) Metrics() Metrics {
	m := Metrics{Stats: c.Stats(), Latency: make(map[string]HistogramSnapshot, numLatencyModes)}
	for i := range c.met.latency {
		m.Latency[latencyModeLabels[i]] = c.met.latency[i].snapshot()
	}
	m.SearchLatency = c.met.searchLat.snapshot()
	return m
}
