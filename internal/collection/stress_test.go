package collection

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

// TestConcurrentCollection hammers one Collection from many goroutines:
// batch queries over the shared compiled-query cache, single requests,
// stats polling, and concurrent document churn (replace/remove/re-add of a
// scratch document). Under -race this is the serving-layer concurrency
// contract test.
func TestConcurrentCollection(t *testing.T) {
	c := New(Config{Workers: 4, CacheSize: 8})
	corpora := map[string][]byte{
		"xmark":   gen.XMark(1, 32<<10),
		"medline": gen.Medline(2, 32<<10),
		"wiki":    gen.Wiki(3, 32<<10),
	}
	for name, data := range corpora {
		eng, err := core.Build(data, core.Config{SampleRate: 8})
		if err != nil {
			t.Fatal(err)
		}
		c.Add(name, eng)
	}
	queries := map[string][]string{
		"xmark":   {"//listitem//keyword", "//item[@id]/name", "//person//emailaddress"},
		"medline": {"//Author/LastName", "//MedlineCitation[.//Country = 'usa']"},
		"wiki":    {"//page/title", "//revision//text()"},
	}
	// Serial ground truth.
	want := map[string]int64{}
	for doc, qs := range queries {
		for _, q := range qs {
			res := c.Do(Request{Doc: doc, Query: q, Mode: ModeCount})
			if res.Err != nil {
				t.Fatalf("%s %s: %v", doc, q, res.Err)
			}
			want[doc+"\x00"+q] = res.Count
		}
	}
	scratch, err := core.Build([]byte(`<s><x/><x/></s>`), core.Config{})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 12
	const iters = 25
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				switch g % 4 {
				case 0: // batch across all documents
					var reqs []Request
					for doc, qs := range queries {
						for _, q := range qs {
							reqs = append(reqs, Request{Doc: doc, Query: q, Mode: ModeCount})
						}
					}
					for _, res := range c.Query(context.Background(), reqs) {
						if res.Err != nil || res.Count != want[res.Doc+"\x00"+res.Query] {
							errc <- fmt.Errorf("g%d batch %s %s: %d, %v", g, res.Doc, res.Query, res.Count, res.Err)
							return
						}
					}
				case 1: // single serialize + nodes requests
					res := c.Do(Request{Doc: "xmark", Query: "//listitem//keyword", Mode: ModeSerialize})
					if res.Err != nil || res.Count != want["xmark\x00//listitem//keyword"] {
						errc <- fmt.Errorf("g%d serialize: %d, %v", g, res.Count, res.Err)
						return
					}
				case 2: // document churn on a name the queries never touch
					c.Add("scratch", scratch)
					if res := c.Do(Request{Doc: "scratch", Query: "//x", Mode: ModeCount}); res.Err == nil && res.Count != 2 {
						errc <- fmt.Errorf("g%d scratch count %d", g, res.Count)
						return
					}
					c.Remove("scratch")
				case 3: // stats polling and misses
					_ = c.Stats()
					_ = c.Names()
					res := c.Do(Request{Doc: "absent", Query: "//x", Mode: ModeCount})
					if !errors.Is(res.Err, ErrUnknownDoc) {
						errc <- fmt.Errorf("g%d: want ErrUnknownDoc, got %v", g, res.Err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if st := c.Stats(); st.Queries == 0 || st.CacheHits == 0 {
		t.Fatalf("stress recorded no traffic: %+v", st)
	}
}
