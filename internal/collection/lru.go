package collection

import (
	"container/list"

	"repro/internal/core"
	"repro/internal/xpath"
)

// qkey identifies a compiled query: the document name plus the query string.
type qkey struct {
	doc   string
	query string
}

// lru is a mutex-guarded LRU map of compiled queries. Compiled queries are
// safe for concurrent evaluation (see xpath.Query), so one cached entry can
// be handed to any number of goroutines.
type lru struct {
	cap int
	ll  *list.List // front = most recently used
	m   map[qkey]*list.Element
}

// cachedQuery pairs a compiled query with the engine it was compiled
// against, so a lookup can reject entries that raced with a document
// replacement (see Collection.Compiled).
type cachedQuery struct {
	q   *xpath.Query
	eng *core.Engine
}

type lruEntry struct {
	k qkey
	v cachedQuery
}

func newLRU(capacity int) *lru {
	return &lru{cap: capacity, ll: list.New(), m: make(map[qkey]*list.Element)}
}

// get returns the cached value and marks it most recently used. The caller
// holds the collection's cache mutex.
func (c *lru) get(k qkey) (cachedQuery, bool) {
	e, ok := c.m[k]
	if !ok {
		return cachedQuery{}, false
	}
	c.ll.MoveToFront(e)
	return e.Value.(*lruEntry).v, true
}

// add inserts or refreshes an entry, evicting the least recently used entry
// beyond capacity.
func (c *lru) add(k qkey, v cachedQuery) {
	if e, ok := c.m[k]; ok {
		c.ll.MoveToFront(e)
		e.Value.(*lruEntry).v = v
		return
	}
	c.m[k] = c.ll.PushFront(&lruEntry{k: k, v: v})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.m, last.Value.(*lruEntry).k)
	}
}

// removeDoc drops every entry compiled against the named document (called
// when the document is replaced or removed, so stale bindings cannot be
// served).
func (c *lru) removeDoc(doc string) {
	for e := c.ll.Front(); e != nil; {
		next := e.Next()
		if ent := e.Value.(*lruEntry); ent.k.doc == doc {
			c.ll.Remove(e)
			delete(c.m, ent.k)
		}
		e = next
	}
}

func (c *lru) len() int { return c.ll.Len() }
