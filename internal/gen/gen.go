// Package gen produces deterministic synthetic XML workloads mirroring the
// paper's benchmark data (Section 6.1): XMark auction documents [62],
// Medline bibliographic records, Penn-Treebank-style deeply recursive parse
// trees, wiktionary-style wiki pages, and the BioXML gene annotation format
// of Figure 17. Real files are not redistributable at benchmark scale, so
// each generator reproduces the tag vocabulary, nesting shape and text
// style that drive SXSI's code paths (see DESIGN.md, substitutions).
package gen

import (
	"fmt"
	"strings"
)

// RNG is a deterministic splitmix64 generator, so generated corpora are
// reproducible across runs and platforms (and its low-order output bits are
// well mixed, unlike a bare LCG's).
type RNG struct{ s uint64 }

// NewRNG seeds a generator.
func NewRNG(seed uint64) *RNG { return &RNG{s: seed*2862933555777941757 + 3037000493} }

// Next returns the next raw 63-bit value.
func (r *RNG) Next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return (z ^ (z >> 31)) >> 1
}

// Intn returns a value in [0, n).
func (r *RNG) Intn(n int) int { return int(r.Next() % uint64(n)) }

// Words is the shared vocabulary for natural-language-ish text.
var Words = strings.Fields(`
the of and a to in is was he for it with as his on be at by i this had
not are but from or have an they which one you were her all she there
would their we him been has when who will more no if out so said what
up its about into than them can only other new some could time these
two may then do first any my now such like our over man me even most
made after also did many before must through back years where much your
way well down should because each just those people mr how too little
state good very make world still own see men work long get here between
both life being under never day same another know while last might us
great old year off come since against go came right used take three
unique plus foot feet morphine ruminants molecule brain human blood
australia epididymis discontinued keyword emph bold parlist listitem
`)

// Sentence appends n random words to sb.
func Sentence(r *RNG, sb *strings.Builder, n int) {
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(Words[r.Intn(len(Words))])
	}
}

func sentence(r *RNG, n int) string {
	var sb strings.Builder
	Sentence(r, &sb, n)
	return sb.String()
}

// --- XMark ---

// XMark generates an XMark-like auction document of approximately the given
// size in bytes. The structure follows the XMark DTD closely enough for the
// X01-X17 queries: site/regions/*/item, people/person with optional
// sub-elements, open and closed auctions with annotations, and recursive
// parlist/listitem/text/keyword/emph/bold description content.
func XMark(seed uint64, targetBytes int) []byte {
	r := NewRNG(seed)
	var sb strings.Builder
	sb.Grow(targetBytes + 4096)
	sb.WriteString("<site>")

	regions := []string{"africa", "asia", "australia", "europe", "namerica", "samerica"}
	itemID := 0
	personID := 0
	auctionID := 0

	// Keep emitting batches until the target size is reached.
	for sb.Len() < targetBytes {
		sb.WriteString("<regions>")
		for _, reg := range regions {
			sb.WriteString("<" + reg + ">")
			nItems := 2 + r.Intn(4)
			for i := 0; i < nItems; i++ {
				writeItem(r, &sb, itemID)
				itemID++
			}
			sb.WriteString("</" + reg + ">")
		}
		sb.WriteString("</regions>")

		sb.WriteString("<people>")
		nPeople := 6 + r.Intn(6)
		for i := 0; i < nPeople; i++ {
			writePerson(r, &sb, personID)
			personID++
		}
		sb.WriteString("</people>")

		sb.WriteString("<open_auctions>")
		for i := 0; i < 3+r.Intn(3); i++ {
			writeOpenAuction(r, &sb, auctionID)
			auctionID++
		}
		sb.WriteString("</open_auctions>")

		sb.WriteString("<closed_auctions>")
		for i := 0; i < 3+r.Intn(3); i++ {
			writeClosedAuction(r, &sb, auctionID)
			auctionID++
		}
		sb.WriteString("</closed_auctions>")
	}
	sb.WriteString("</site>")
	return []byte(sb.String())
}

func writeItem(r *RNG, sb *strings.Builder, id int) {
	fmt.Fprintf(sb, `<item id="item%d">`, id)
	sb.WriteString("<location>" + sentence(r, 2) + "</location>")
	fmt.Fprintf(sb, "<quantity>%d</quantity>", 1+r.Intn(5))
	sb.WriteString("<name>" + sentence(r, 3) + "</name>")
	sb.WriteString("<payment>" + sentence(r, 2) + "</payment>")
	sb.WriteString("<description>")
	writeTextOrParlist(r, sb, 0)
	sb.WriteString("</description>")
	sb.WriteString("<shipping>" + sentence(r, 3) + "</shipping>")
	fmt.Fprintf(sb, `<incategory category="category%d"/>`, r.Intn(100))
	if r.Intn(2) == 0 {
		sb.WriteString("<mailbox><mail><from>" + sentence(r, 2) + "</from><to>" +
			sentence(r, 2) + "</to><date>" + date(r) + "</date><text>" +
			sentence(r, 8) + "</text></mail></mailbox>")
	}
	sb.WriteString("</item>")
}

// writeTextOrParlist emits XMark description content: either a text block
// with keyword/emph/bold islands, or a recursive parlist of listitems.
func writeTextOrParlist(r *RNG, sb *strings.Builder, depth int) {
	if depth < 3 && r.Intn(3) == 0 {
		sb.WriteString("<parlist>")
		n := 1 + r.Intn(3)
		for i := 0; i < n; i++ {
			sb.WriteString("<listitem>")
			writeTextOrParlist(r, sb, depth+1)
			sb.WriteString("</listitem>")
		}
		sb.WriteString("</parlist>")
		return
	}
	sb.WriteString("<text>")
	Sentence(r, asBuilder(sb), 4+r.Intn(8))
	for i := 0; i < r.Intn(3); i++ {
		switch r.Intn(3) {
		case 0:
			sb.WriteString("<keyword>" + sentence(r, 1+r.Intn(2)) + "</keyword>")
		case 1:
			sb.WriteString("<emph>" + sentence(r, 1+r.Intn(2)) + "</emph>")
		default:
			sb.WriteString("<bold>" + sentence(r, 1+r.Intn(2)) + "</bold>")
		}
		sb.WriteByte(' ')
		Sentence(r, asBuilder(sb), 2+r.Intn(5))
	}
	sb.WriteString("</text>")
}

func asBuilder(sb *strings.Builder) *strings.Builder { return sb }

func writePerson(r *RNG, sb *strings.Builder, id int) {
	fmt.Fprintf(sb, `<person id="person%d">`, id)
	sb.WriteString("<name>" + sentence(r, 2) + "</name>")
	sb.WriteString("<emailaddress>mailto:" + Words[r.Intn(len(Words))] + "@example.org</emailaddress>")
	if r.Intn(2) == 0 {
		fmt.Fprintf(sb, "<phone>+%d (%d) %d</phone>", 1+r.Intn(99), r.Intn(999), r.Intn(9999999))
	}
	if r.Intn(3) == 0 {
		sb.WriteString("<address><street>" + sentence(r, 2) + "</street><city>" +
			sentence(r, 1) + "</city><country>" + country(r) + "</country><zipcode>" +
			fmt.Sprint(r.Intn(99999)) + "</zipcode></address>")
	}
	if r.Intn(2) == 0 {
		sb.WriteString("<homepage>http://example.org/~" + Words[r.Intn(len(Words))] + "</homepage>")
	}
	if r.Intn(2) == 0 {
		fmt.Fprintf(sb, "<creditcard>%d %d %d %d</creditcard>", 1000+r.Intn(9000), 1000+r.Intn(9000), 1000+r.Intn(9000), 1000+r.Intn(9000))
	}
	if r.Intn(2) == 0 {
		fmt.Fprintf(sb, `<profile income="%d.%02d">`, 10000+r.Intn(90000), r.Intn(100))
		for i := 0; i < r.Intn(3); i++ {
			fmt.Fprintf(sb, `<interest category="category%d"/>`, r.Intn(100))
		}
		if r.Intn(2) == 0 {
			sb.WriteString("<education>" + []string{"High School", "College", "Graduate School"}[r.Intn(3)] + "</education>")
		}
		if r.Intn(2) == 0 {
			sb.WriteString("<gender>" + []string{"male", "female"}[r.Intn(2)] + "</gender>")
		}
		sb.WriteString("<business>" + []string{"Yes", "No"}[r.Intn(2)] + "</business>")
		if r.Intn(2) == 0 {
			fmt.Fprintf(sb, "<age>%d</age>", 18+r.Intn(60))
		}
		sb.WriteString("</profile>")
	}
	if r.Intn(3) == 0 {
		sb.WriteString("<watches>")
		for i := 0; i < 1+r.Intn(3); i++ {
			fmt.Fprintf(sb, `<watch open_auction="auction%d"/>`, r.Intn(1000))
		}
		sb.WriteString("</watches>")
	}
	sb.WriteString("</person>")
}

func writeOpenAuction(r *RNG, sb *strings.Builder, id int) {
	fmt.Fprintf(sb, `<open_auction id="auction%d">`, id)
	fmt.Fprintf(sb, "<initial>%d.%02d</initial>", 1+r.Intn(300), r.Intn(100))
	for i := 0; i < r.Intn(4); i++ {
		fmt.Fprintf(sb, `<bidder><date>%s</date><personref person="person%d"/><increase>%d.00</increase></bidder>`,
			date(r), r.Intn(1000), 1+r.Intn(50))
	}
	fmt.Fprintf(sb, "<current>%d.%02d</current>", 10+r.Intn(1000), r.Intn(100))
	fmt.Fprintf(sb, `<itemref item="item%d"/>`, r.Intn(1000))
	fmt.Fprintf(sb, `<seller person="person%d"/>`, r.Intn(1000))
	sb.WriteString("<annotation><author>" + sentence(r, 2) + "</author><description>")
	writeTextOrParlist(r, sb, 1)
	sb.WriteString("</description><happiness>" + fmt.Sprint(1+r.Intn(10)) + "</happiness></annotation>")
	fmt.Fprintf(sb, "<quantity>%d</quantity>", 1+r.Intn(5))
	sb.WriteString("<type>" + []string{"Regular", "Featured", "Dutch"}[r.Intn(3)] + "</type>")
	fmt.Fprintf(sb, "<interval><start>%s</start><end>%s</end></interval>", date(r), date(r))
	sb.WriteString("</open_auction>")
}

func writeClosedAuction(r *RNG, sb *strings.Builder, id int) {
	sb.WriteString("<closed_auction>")
	fmt.Fprintf(sb, `<seller person="person%d"/>`, r.Intn(1000))
	fmt.Fprintf(sb, `<buyer person="person%d"/>`, r.Intn(1000))
	fmt.Fprintf(sb, `<itemref item="item%d"/>`, r.Intn(1000))
	fmt.Fprintf(sb, "<price>%d.%02d</price>", 10+r.Intn(500), r.Intn(100))
	sb.WriteString("<date>" + date(r) + "</date>")
	fmt.Fprintf(sb, "<quantity>%d</quantity>", 1+r.Intn(5))
	sb.WriteString("<type>" + []string{"Regular", "Featured", "Dutch"}[r.Intn(3)] + "</type>")
	sb.WriteString("<annotation><author>" + sentence(r, 2) + "</author><description>")
	writeTextOrParlist(r, sb, 1)
	sb.WriteString("</description><happiness>" + fmt.Sprint(1+r.Intn(10)) + "</happiness></annotation>")
	sb.WriteString("</closed_auction>")
}

func date(r *RNG) string {
	return fmt.Sprintf("%02d/%02d/%d", 1+r.Intn(12), 1+r.Intn(28), 1998+r.Intn(4))
}

func country(r *RNG) string {
	return []string{"United States", "AUSTRALIA", "Germany", "Finland", "Chile", "France"}[r.Intn(6)]
}
