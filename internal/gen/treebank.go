package gen

import "strings"

// treebankTags are Penn Treebank phrase and part-of-speech labels, matching
// the T01-T05 queries (S, NP, VP, PP, IN, VBN, JJ, CC, NN, VBZ, _QUOTE_).
var treebankPhrase = []string{"S", "NP", "VP", "PP", "SBAR", "ADJP", "ADVP"}
var treebankPOS = []string{"NN", "VBZ", "VBN", "IN", "JJ", "CC", "DT", "RB", "PRP", "_QUOTE_", "NNS", "VBD"}

// Treebank generates a deeply recursive Treebank-like document of roughly
// targetBytes bytes. Its distinguishing features per Section 6.5: many
// distinct deep paths, high tag recursion (phrase labels nest inside
// themselves), and short text content — the workload where all engines slow
// down relative to XMark.
func Treebank(seed uint64, targetBytes int) []byte {
	r := NewRNG(seed)
	var sb strings.Builder
	sb.Grow(targetBytes + 4096)
	sb.WriteString("<FILE>")
	for sb.Len() < targetBytes {
		sb.WriteString("<EMPTY>")
		writePhrase(r, &sb, 0)
		sb.WriteString("</EMPTY>")
	}
	sb.WriteString("</FILE>")
	return []byte(sb.String())
}

// grammar biases child phrase labels to their likely parents, so paths
// like S/VP/PP/NP that the T-queries probe actually occur.
var grammar = map[string][]string{
	"S":    {"NP", "VP", "NP", "VP", "SBAR", "PP"},
	"NP":   {"NP", "PP", "ADJP", "SBAR"},
	"VP":   {"PP", "NP", "VP", "ADVP"},
	"PP":   {"NP", "NP", "NP", "ADJP"},
	"SBAR": {"S", "S", "VP"},
	"ADJP": {"PP", "ADVP"},
	"ADVP": {"PP"},
}

// posFor biases part-of-speech leaves to their phrase label.
var posFor = map[string][]string{
	"NP": {"DT", "NN", "NNS", "JJ", "VBN", "NN", "PRP", "_QUOTE_"},
	"VP": {"VBZ", "VBD", "VBN", "RB"},
	"PP": {"IN", "IN", "IN", "RB"},
}

func writePhrase(r *RNG, sb *strings.Builder, depth int) {
	writePhraseTag(r, sb, "S", depth)
}

func writePhraseTag(r *RNG, sb *strings.Builder, tag string, depth int) {
	sb.WriteString("<" + tag + ">")
	n := 1 + r.Intn(4)
	for i := 0; i < n; i++ {
		// Recursion probability decays with depth but allows chains up to
		// ~25 deep, mimicking natural-language parse trees.
		if depth < 25 && r.Intn(100) < 55-depth {
			kids := grammar[tag]
			if kids == nil {
				kids = treebankPhrase
			}
			writePhraseTag(r, sb, kids[r.Intn(len(kids))], depth+1)
		} else {
			poss := posFor[tag]
			if poss == nil || r.Intn(3) == 0 {
				poss = treebankPOS
			}
			pos := poss[r.Intn(len(poss))]
			sb.WriteString("<" + pos + ">" + Words[r.Intn(len(Words))] + "</" + pos + ">")
		}
	}
	sb.WriteString("</" + tag + ">")
}

// Wiki generates a wiktionary-like page collection of roughly targetBytes
// bytes: page/title/revision/text with long natural-language text bodies,
// the workload of the word-based index experiments (W06-W10).
func Wiki(seed uint64, targetBytes int) []byte {
	r := NewRNG(seed)
	var sb strings.Builder
	sb.Grow(targetBytes + 4096)
	sb.WriteString("<mediawiki>")
	id := 0
	phrases := []string{
		"dark horse", "crude oil", "played on a board",
		"whether accidentally or purposefully", "free dictionary",
	}
	for sb.Len() < targetBytes {
		sb.WriteString("<page>")
		sb.WriteString("<title>" + wikiTitle(r, phrases) + "</title>")
		sb.WriteString("<id>" + itoa(id) + "</id>")
		sb.WriteString("<revision><text>")
		Sentence(r, &sb, 60+r.Intn(200))
		if r.Intn(12) == 0 {
			sb.WriteByte(' ')
			sb.WriteString(phrases[r.Intn(len(phrases))])
			sb.WriteByte(' ')
			Sentence(r, &sb, 20)
		}
		sb.WriteString("</text></revision>")
		sb.WriteString("</page>")
		id++
	}
	sb.WriteString("</mediawiki>")
	return []byte(sb.String())
}

func wikiTitle(r *RNG, phrases []string) string {
	if r.Intn(40) == 0 {
		return phrases[r.Intn(len(phrases))]
	}
	return Words[r.Intn(len(Words))] + " " + Words[r.Intn(len(Words))]
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
