package gen

import (
	"bytes"
	"testing"

	"repro/internal/xmltree"
)

func checkParses(t *testing.T, name string, data []byte) *xmltree.Doc {
	t.Helper()
	d, err := xmltree.Parse(data, xmltree.Options{SkipFM: true})
	if err != nil {
		t.Fatalf("%s does not parse: %v", name, err)
	}
	return d
}

func TestXMarkGenerates(t *testing.T) {
	data := XMark(1, 200_000)
	if len(data) < 200_000 {
		t.Fatalf("too small: %d", len(data))
	}
	d := checkParses(t, "xmark", data)
	// The tags the X-queries need must all be present.
	for _, tag := range []string{"site", "regions", "item", "people", "person",
		"closed_auctions", "closed_auction", "annotation", "description",
		"text", "keyword", "listitem", "parlist", "emph", "bold", "date",
		"name", "profile", "gender", "age", "phone", "homepage", "address",
		"creditcard", "watches"} {
		if d.TagID(tag) < 0 {
			t.Errorf("missing tag %s", tag)
		}
	}
}

func TestXMarkDeterministic(t *testing.T) {
	a := XMark(7, 50_000)
	b := XMark(7, 50_000)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed must give identical output")
	}
	c := XMark(8, 50_000)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds should differ")
	}
}

func TestMedlineGenerates(t *testing.T) {
	data := Medline(2, 200_000)
	d := checkParses(t, "medline", data)
	for _, tag := range []string{"MedlineCitation", "Article", "AbstractText",
		"AuthorList", "Author", "LastName", "Country", "PublicationType"} {
		if d.TagID(tag) < 0 {
			t.Errorf("missing tag %s", tag)
		}
	}
	// AbstractText must be pure PCDATA (FM-eligible), MedlineCitation mixed.
	if !d.PureText(d.TagID("AbstractText")) {
		t.Error("AbstractText should be pure text")
	}
	if d.PureText(d.TagID("MedlineCitation")) {
		t.Error("MedlineCitation should have mixed content")
	}
}

func TestTreebankGenerates(t *testing.T) {
	data := Treebank(3, 150_000)
	d := checkParses(t, "treebank", data)
	for _, tag := range []string{"S", "NP", "VP", "PP", "IN", "VBN", "JJ", "CC", "NN", "VBZ", "_QUOTE_"} {
		if d.TagID(tag) < 0 {
			t.Errorf("missing tag %s", tag)
		}
	}
	// Recursive structure: NP under NP must occur.
	if !d.HasDescendantTag(d.TagID("NP"), d.TagID("NP")) {
		t.Error("treebank should have recursive NP")
	}
}

func TestWikiGenerates(t *testing.T) {
	data := Wiki(4, 150_000)
	d := checkParses(t, "wiki", data)
	for _, tag := range []string{"page", "title", "text", "revision"} {
		if d.TagID(tag) < 0 {
			t.Errorf("missing tag %s", tag)
		}
	}
}

func TestBioXMLGenerates(t *testing.T) {
	data := BioXML(5, 300_000)
	d := checkParses(t, "bioxml", data)
	for _, tag := range []string{"chromosome", "gene", "promoter", "sequence",
		"transcript", "exon", "biotype", "status"} {
		if d.TagID(tag) < 0 {
			t.Errorf("missing tag %s", tag)
		}
	}
	if !d.PureText(d.TagID("promoter")) || !d.PureText(d.TagID("sequence")) {
		t.Error("promoter/sequence must be pure PCDATA")
	}
}

func TestBioXMLIsRepetitive(t *testing.T) {
	// The exon reuse must make transcript sequences repeat gene content.
	data := BioXML(6, 400_000)
	// crude check: raw data should contain long repeated DNA substrings
	probe := []byte(nil)
	idx := bytes.Index(data, []byte("<exon>"))
	if idx < 0 {
		t.Fatal("no exon")
	}
	seqIdx := bytes.Index(data[idx:], []byte("<sequence>"))
	start := idx + seqIdx + len("<sequence>")
	probe = data[start : start+100]
	first := bytes.Index(data, probe)
	second := bytes.Index(data[first+1:], probe)
	if second < 0 {
		t.Fatal("exon sequence should repeat in transcript sequence")
	}
}

func TestRNGStability(t *testing.T) {
	r := NewRNG(42)
	a := []int{r.Intn(100), r.Intn(100), r.Intn(100)}
	r2 := NewRNG(42)
	b := []int{r2.Intn(100), r2.Intn(100), r2.Intn(100)}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("rng not deterministic")
		}
	}
}
