package gen

import (
	"fmt"
	"strings"
)

// BioXML generates a gene-annotation document following the DTD of Figure
// 17: chromosome(name, gene*), gene(name, strand, biotype, status,
// description?, promoter, sequence, transcript*), transcript(name, start,
// end, exon*, sequence, protein?), exon(name, start, end, sequence).
//
// As in the paper's Ensembl-derived data, the textual content is *highly
// repetitive*: each transcript's sequence is the concatenation of its
// exons' sequences, so the same DNA appears in many texts — the case where
// the run-length index (rlfm) shines (Section 6.7).
func BioXML(seed uint64, targetBytes int) []byte {
	r := NewRNG(seed)
	var sb strings.Builder
	sb.Grow(targetBytes + 8192)
	sb.WriteString("<chromosome><name>5</name>")
	geneID := 0
	for sb.Len() < targetBytes {
		writeGene(r, &sb, geneID)
		geneID++
	}
	sb.WriteString("</chromosome>")
	return []byte(sb.String())
}

var dnaBases = [4]byte{'A', 'C', 'G', 'T'}

func dna(r *RNG, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = dnaBases[r.Intn(4)]
	}
	return string(b)
}

var biotypes = []string{"protein_coding", "pseudogene", "lincRNA", "miRNA", "snoRNA"}
var statuses = []string{"KNOWN", "NOVEL", "PUTATIVE"}

func writeGene(r *RNG, sb *strings.Builder, id int) {
	fmt.Fprintf(sb, "<gene><name>ENSG%011d</name>", id)
	sb.WriteString("<strand>" + []string{"+", "-"}[r.Intn(2)] + "</strand>")
	sb.WriteString("<biotype>" + biotypes[r.Intn(len(biotypes))] + "</biotype>")
	sb.WriteString("<status>" + statuses[r.Intn(len(statuses))] + "</status>")
	if r.Intn(2) == 0 {
		sb.WriteString("<description>" + geneDescription(r) + "</description>")
	}
	// 1000 bp of upstream promoter sequence, as in the paper.
	sb.WriteString("<promoter>" + dna(r, 1000) + "</promoter>")

	// Exons are generated once per gene; transcripts reuse subsets of them,
	// giving the highly repetitive collection of Section 6.7.
	nExons := 3 + r.Intn(8)
	exons := make([]string, nExons)
	for i := range exons {
		exons[i] = dna(r, 150+r.Intn(400))
	}
	geneSeq := strings.Join(exons, dna(r, 80)) // exons joined by introns
	sb.WriteString("<sequence>" + geneSeq + "</sequence>")

	start := 1000000 + r.Intn(100000000)
	nTrans := 1 + r.Intn(4)
	for t := 0; t < nTrans; t++ {
		fmt.Fprintf(sb, "<transcript><name>ENST%011d</name>", id*10+t)
		fmt.Fprintf(sb, "<start>%d</start><end>%d</end>", start, start+len(geneSeq))
		// A transcript includes a contiguous-ish subset of the exons.
		lo := r.Intn(nExons)
		hi := lo + 1 + r.Intn(nExons-lo)
		var concat strings.Builder
		for e := lo; e < hi; e++ {
			fmt.Fprintf(sb, "<exon><name>ENSE%011d</name><start>%d</start><end>%d</end><sequence>%s</sequence></exon>",
				id*100+e, start+e*500, start+e*500+len(exons[e]), exons[e])
			concat.WriteString(exons[e])
		}
		sb.WriteString("<sequence>" + concat.String() + "</sequence>")
		if r.Intn(2) == 0 {
			sb.WriteString("<protein>" + protein(r, 60+r.Intn(200)) + "</protein>")
		}
		sb.WriteString("</transcript>")
	}
	sb.WriteString("</gene>")
}

var aminoAcids = []byte("ACDEFGHIKLMNPQRSTVWY")

func protein(r *RNG, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = aminoAcids[r.Intn(len(aminoAcids))]
	}
	return string(b)
}

func geneDescription(r *RNG) string {
	var sb strings.Builder
	Sentence(r, &sb, 4+r.Intn(8))
	return sb.String()
}
