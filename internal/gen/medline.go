package gen

import (
	"fmt"
	"strings"
)

// medlineTerms mixes medical-domain words (including the paper's Table II
// query patterns at realistic relative frequencies) into abstracts.
var medlineTerms = []struct {
	word string
	freq int // relative weight
}{
	{"Bakst", 1}, {"ruminants", 3}, {"morphine", 12}, {"AUSTRALIA", 14},
	{"molecule", 35}, {"brain", 60}, {"human", 140}, {"blood", 200},
	{"epididymis", 2}, {"plus", 6}, {"foot", 20}, {"feet", 15},
	{"blood sample", 8}, {"bone marrow", 10}, {"immune cells", 6},
	{"cell", 220}, {"protein", 90}, {"patients", 120}, {"treatment", 80},
	{"clinical", 70}, {"analysis", 60}, {"receptor", 40},
}

var lastNames = []string{
	"Barnes", "Barton", "Barbieri", "Nguyen", "Smith", "Johnson", "Lee",
	"Garcia", "Miller", "Navarro", "Maneth", "Arroyuelo", "Virtanen",
	"Korhonen", "Baranov", "Tanaka", "Kim", "Muller", "Rossi", "Silva",
}

var pubTypes = []string{
	"Journal Article", "Review", "Letter", "Comparative Study",
	"Case Reports", "Clinical Trial", "Editorial", "Historical Article",
}

// cannedPhrases seed the multi-word patterns of the W01-W05 queries.
var cannedPhrases = []string{
	"blood sample", "is such that", "various types of",
	"immune cells", "of the bone marrow",
}

var countries = []string{
	"United States", "AUSTRALIA", "England", "Germany", "Finland",
	"Japan", "France", "Canada", "Chile", "Netherlands",
}

// Medline generates a Medline-like bibliographic document of approximately
// targetBytes bytes, with the element vocabulary the M01-M11 and W01-W05
// queries touch: MedlineCitation/Article/AbstractText, AuthorList/Author/
// LastName, Country, PublicationType. MedlineCitation has mixed content
// (M10's case) while AbstractText, LastName etc. are pure PCDATA.
func Medline(seed uint64, targetBytes int) []byte {
	r := NewRNG(seed)
	var sb strings.Builder
	sb.Grow(targetBytes + 4096)
	sb.WriteString("<MedlineCitationSet>")
	id := 0
	for sb.Len() < targetBytes {
		writeCitation(r, &sb, id)
		id++
	}
	sb.WriteString("</MedlineCitationSet>")
	return []byte(sb.String())
}

func writeCitation(r *RNG, sb *strings.Builder, id int) {
	fmt.Fprintf(sb, `<MedlineCitation Owner="NLM" Status="MEDLINE">`)
	fmt.Fprintf(sb, "<PMID>%08d</PMID>", id)
	// Mixed content: a stray text node directly under MedlineCitation keeps
	// its content impure (the M10 scenario).
	sb.WriteString("\n")
	sb.WriteString("<DateCreated><Year>" + fmt.Sprint(1995+r.Intn(15)) + "</Year><Month>" +
		fmt.Sprintf("%02d", 1+r.Intn(12)) + "</Month><Day>" + fmt.Sprintf("%02d", 1+r.Intn(28)) + "</Day></DateCreated>")
	sb.WriteString("<Article>")
	sb.WriteString("<ArticleTitle>" + medSentence(r, 6+r.Intn(8)) + "</ArticleTitle>")
	sb.WriteString("<Abstract><AbstractText>" + medSentence(r, 40+r.Intn(120)) + "</AbstractText></Abstract>")
	sb.WriteString("<AuthorList>")
	for i := 0; i < 1+r.Intn(5); i++ {
		sb.WriteString("<Author><LastName>" + lastNames[r.Intn(len(lastNames))] +
			"</LastName><Initials>" + string(rune('A'+r.Intn(26))) + "</Initials></Author>")
	}
	sb.WriteString("</AuthorList>")
	sb.WriteString("</Article>")
	sb.WriteString("<MedlineJournalInfo><Country>" + countries[r.Intn(len(countries))] + "</Country></MedlineJournalInfo>")
	sb.WriteString("<PublicationTypeList>")
	for i := 0; i < 1+r.Intn(2); i++ {
		sb.WriteString("<PublicationType>" + pubTypes[r.Intn(len(pubTypes))] + "</PublicationType>")
	}
	sb.WriteString("</PublicationTypeList>")
	sb.WriteString("</MedlineCitation>")
}

// medSentence builds abstract text mixing general vocabulary with weighted
// medical terms so that pattern frequencies span several orders of
// magnitude, as in Table II.
func medSentence(r *RNG, n int) string {
	var sb strings.Builder
	totalW := 0
	for _, t := range medlineTerms {
		totalW += t.freq
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(' ')
		}
		if r.Intn(120) == 0 {
			sb.WriteString(cannedPhrases[r.Intn(len(cannedPhrases))])
			continue
		}
		if r.Intn(6) == 0 {
			// weighted medical term
			x := r.Intn(totalW)
			for _, t := range medlineTerms {
				if x < t.freq {
					sb.WriteString(t.word)
					break
				}
				x -= t.freq
			}
		} else {
			sb.WriteString(Words[r.Intn(len(Words))])
		}
	}
	return sb.String()
}
