package pssm

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/fmindex"
)

func randDNA(r *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = Alphabet[r.Intn(4)]
	}
	return s
}

func TestFromPFMScores(t *testing.T) {
	m := FromPFM("t", [][4]int{{10, 0, 0, 0}, {0, 10, 0, 0}})
	// "AC" must be the best-scoring dinucleotide.
	best := m.Score([]byte("AC"), 0)
	for _, s := range []string{"AA", "CC", "TG", "GT"} {
		if sc := m.Score([]byte(s), 0); sc >= best {
			t.Fatalf("score(%s)=%f >= score(AC)=%f", s, sc, best)
		}
	}
	if !math.IsNaN(m.Score([]byte("A"), 0)) {
		t.Fatal("short window should be NaN")
	}
	if !math.IsNaN(m.Score([]byte("NN"), 0)) {
		t.Fatal("non-ACGT should be NaN")
	}
}

func TestMaxScoreIsUpperBound(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	m := M1()
	max := m.MaxScore()
	for trial := 0; trial < 1000; trial++ {
		s := m.Score(randDNA(r, m.Len()), 0)
		if s > max+1e-9 {
			t.Fatalf("score %f exceeds max %f", s, max)
		}
	}
}

func TestSearchMatchesScan(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		var texts [][]byte
		for i := 0; i < 15; i++ {
			texts = append(texts, randDNA(r, 100+r.Intn(200)))
		}
		fm, err := fmindex.New(texts, fmindex.Options{SampleRate: 8})
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range []Matrix{M1(), M2(), M3()} {
			for _, frac := range []float64{0.5, 0.7, 0.9} {
				threshold := m.MaxScore() * frac
				got := Search(fm, &m, threshold)
				want := ScanTexts(texts, &m, threshold)
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("%s thr=%.2f: search=%v scan=%v", m.Name, threshold, got, want)
				}
			}
		}
	}
}

func TestSearchPrunes(t *testing.T) {
	// With a threshold above MaxScore nothing can match and the DFS should
	// return quickly with no results.
	r := rand.New(rand.NewSource(9))
	texts := [][]byte{randDNA(r, 5000)}
	fm, _ := fmindex.New(texts, fmindex.Options{})
	m := M2()
	if got := Search(fm, &m, m.MaxScore()+1); len(got) != 0 {
		t.Fatalf("impossible threshold matched %d", len(got))
	}
}

func TestDistinctTexts(t *testing.T) {
	occs := []fmindex.Occurrence{{Text: 3, Offset: 1}, {Text: 1, Offset: 0}, {Text: 3, Offset: 9}}
	ids := DistinctTexts(occs)
	if fmt.Sprint(ids) != "[1 3]" {
		t.Fatalf("ids=%v", ids)
	}
}

func TestEmbeddedMatrixLengths(t *testing.T) {
	// The paper's matrices have lengths 8, 12, 14 (Figure 18).
	if m := M1(); m.Len() != 8 {
		t.Fatal("M1 length")
	}
	if m := M2(); m.Len() != 12 {
		t.Fatal("M2 length")
	}
	if m := M3(); m.Len() != 14 {
		t.Fatal("M3 length")
	}
}

func TestSearchOnEmptyIndex(t *testing.T) {
	fm, _ := fmindex.New(nil, fmindex.Options{})
	m := M1()
	if got := Search(fm, &m, 0); got != nil {
		t.Fatal("empty index")
	}
}

func BenchmarkPSSMSearchVsScan(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	var texts [][]byte
	for i := 0; i < 50; i++ {
		texts = append(texts, randDNA(r, 2000))
	}
	fm, _ := fmindex.New(texts, fmindex.Options{SampleRate: 16})
	m := M3()
	thr := m.MaxScore() * 0.8
	b.Run("fm-backtrack", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Search(fm, &m, thr)
		}
	})
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ScanTexts(texts, &m, thr)
		}
	})
}
