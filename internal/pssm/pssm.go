// Package pssm implements Position Specific Scoring Matrix search over DNA
// texts (Section 6.7): a Position Frequency Matrix is converted to log-odds
// form, and matches above a threshold are found either by a plain scan or
// by branch-and-bound backtracking over the FM-index (the backtracking
// framework of Section 3.2 [41]): the pattern space {A,C,G,T}^L is explored
// right-to-left with backward-search interval narrowing, pruning a branch
// as soon as its best achievable score falls below the threshold.
package pssm

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/fmindex"
)

// Alphabet is the DNA nucleotide order used for matrix rows.
var Alphabet = [4]byte{'A', 'C', 'G', 'T'}

func baseIndex(c byte) int {
	switch c {
	case 'A', 'a':
		return 0
	case 'C', 'c':
		return 1
	case 'G', 'g':
		return 2
	case 'T', 't':
		return 3
	}
	return -1
}

// Matrix is a PSSM in log-odds form. Cols[i][b] scores nucleotide b at
// pattern position i.
type Matrix struct {
	Name string
	Cols [][4]float64
}

// Len returns the pattern length.
func (m *Matrix) Len() int { return len(m.Cols) }

// FromPFM converts a Position Frequency Matrix (counts per position) into
// log-odds form against a uniform background with pseudocount smoothing, as
// done for the JASPAR matrices of Figure 18.
func FromPFM(name string, counts [][4]int) Matrix {
	m := Matrix{Name: name, Cols: make([][4]float64, len(counts))}
	for i, col := range counts {
		total := 0
		for _, c := range col {
			total += c
		}
		for b := 0; b < 4; b++ {
			p := (float64(col[b]) + 1) / (float64(total) + 4)
			m.Cols[i][b] = math.Log2(p / 0.25)
		}
	}
	return m
}

// Score scores the window seq[pos : pos+Len()]; NaN if out of range or a
// non-ACGT character occurs.
func (m *Matrix) Score(seq []byte, pos int) float64 {
	if pos < 0 || pos+m.Len() > len(seq) {
		return math.NaN()
	}
	s := 0.0
	for i := 0; i < m.Len(); i++ {
		b := baseIndex(seq[pos+i])
		if b < 0 {
			return math.NaN()
		}
		s += m.Cols[i][b]
	}
	return s
}

// MaxScore returns the best achievable score.
func (m *Matrix) MaxScore() float64 {
	s := 0.0
	for _, col := range m.Cols {
		best := col[0]
		for _, v := range col[1:] {
			if v > best {
				best = v
			}
		}
		s += best
	}
	return s
}

// ScanTexts finds all windows scoring >= threshold by brute force.
func ScanTexts(texts [][]byte, m *Matrix, threshold float64) []fmindex.Occurrence {
	var out []fmindex.Occurrence
	for id, t := range texts {
		for pos := 0; pos+m.Len() <= len(t); pos++ {
			if s := m.Score(t, pos); !math.IsNaN(s) && s >= threshold {
				out = append(out, fmindex.Occurrence{Text: id, Offset: pos})
			}
		}
	}
	return out
}

// Search finds all windows scoring >= threshold using branch-and-bound
// backtracking over the FM-index. Matrix columns are consumed last-to-first
// so each DFS step is one backward-search extension.
func Search(fm *fmindex.Index, m *Matrix, threshold float64) []fmindex.Occurrence {
	L := m.Len()
	if L == 0 || fm.Size() == 0 {
		return nil
	}
	// bestPrefix[i] = max achievable score of columns [0, i).
	bestPrefix := make([]float64, L+1)
	for i := 0; i < L; i++ {
		best := m.Cols[i][0]
		for _, v := range m.Cols[i][1:] {
			if v > best {
				best = v
			}
		}
		bestPrefix[i+1] = bestPrefix[i] + best
	}
	var out []fmindex.Occurrence
	var dfs func(col int, sp, ep int, score float64)
	dfs = func(col int, sp, ep int, score float64) {
		if col < 0 {
			for i := sp; i < ep; i++ {
				// One located occurrence per matching BWT row.
				out = append(out, locate(fm, i))
			}
			return
		}
		for b := 0; b < 4; b++ {
			s := score + m.Cols[col][b]
			if s+bestPrefix[col] < threshold {
				continue
			}
			nsp, nep := fm.Step(Alphabet[b], sp, ep)
			if nsp >= nep {
				continue
			}
			dfs(col-1, nsp, nep, s)
		}
	}
	dfs(L-1, 0, fm.Size(), 0)
	sort.Slice(out, func(a, b int) bool {
		if out[a].Text != out[b].Text {
			return out[a].Text < out[b].Text
		}
		return out[a].Offset < out[b].Offset
	})
	return out
}

func locate(fm *fmindex.Index, row int) fmindex.Occurrence {
	occ := fm.LocateRow(row)
	return occ
}

// DistinctTexts reduces occurrences to the sorted set of text identifiers.
func DistinctTexts(occs []fmindex.Occurrence) []int32 {
	seen := map[int]struct{}{}
	for _, o := range occs {
		seen[o.Text] = struct{}{}
	}
	out := make([]int32, 0, len(seen))
	for t := range seen {
		out = append(out, int32(t))
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// --- Embedded matrices for the Figure 18 experiments ---
//
// The paper uses JASPAR matrices MA0031.1 (length 8), MA0050.1 (length 12)
// and MA0017.1 (length 14). The database is not redistributable here, so we
// embed frequency matrices of the same lengths with realistic skew
// (substitution documented in DESIGN.md); the search machinery is identical.

// M1 is an 8-column matrix (stand-in for JASPAR MA0031.1, FOXD1).
func M1() Matrix {
	return FromPFM("M1", [][4]int{
		{5, 2, 3, 40}, {2, 1, 2, 45}, {40, 3, 4, 3}, {2, 2, 3, 43},
		{3, 2, 2, 43}, {5, 3, 38, 4}, {6, 4, 3, 37}, {20, 10, 10, 10},
	})
}

// M2 is a 12-column matrix (stand-in for JASPAR MA0050.1, IRF1).
func M2() Matrix {
	return FromPFM("M2", [][4]int{
		{10, 5, 5, 30}, {5, 3, 2, 40}, {3, 2, 3, 42}, {30, 5, 10, 5},
		{40, 3, 4, 3}, {5, 35, 5, 5}, {4, 4, 38, 4}, {30, 6, 7, 7},
		{35, 5, 5, 5}, {5, 5, 35, 5}, {6, 6, 6, 32}, {12, 13, 12, 13},
	})
}

// M3 is a 14-column matrix (stand-in for JASPAR MA0017.1, NR2F1).
func M3() Matrix {
	return FromPFM("M3", [][4]int{
		{10, 10, 15, 15}, {5, 5, 35, 5}, {4, 4, 4, 38}, {5, 35, 5, 5},
		{35, 5, 5, 5}, {5, 5, 5, 35}, {30, 7, 7, 6}, {6, 6, 32, 6},
		{6, 32, 6, 6}, {32, 6, 6, 6}, {7, 7, 29, 7}, {8, 8, 8, 26},
		{26, 8, 8, 8}, {12, 13, 13, 12},
	})
}

func (m *Matrix) String() string {
	return fmt.Sprintf("pssm[%s len=%d max=%.1f]", m.Name, m.Len(), m.MaxScore())
}
