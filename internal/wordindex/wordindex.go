// Package wordindex implements the word-based text self-index of Section
// 6.6.2 (after Fariña et al.): the text collection is tokenized and viewed
// as a sequence over a large word alphabet, and a word-level suffix array
// answers phrase queries at word granularity. Indexing and query speed are
// traded for word-boundary-only matching, exactly the trade-off the paper
// demonstrates by swapping this index into SXSI for the W01-W10 queries.
package wordindex

import (
	"fmt"
	"sort"

	"repro/internal/sais"
)

// ErrTooLarge reports a collection whose token sequence (including one
// terminator per text) is too long for the suffix sorter's int32 positions;
// it aliases sais.ErrTooLarge so either spelling matches with errors.Is.
var ErrTooLarge = sais.ErrTooLarge

// Index is a word-level suffix array over a text collection.
type Index struct {
	vocab  map[string]int32
	seq    []int32 // word ids (offset by d) with per-text terminators 0..d-1
	sa     []int32
	textOf []int32 // text id of each sequence position
	d      int
}

// IsWordByte reports whether c belongs to a word: ASCII letters and
// digits, plus every byte ≥ 0x80 so multi-byte UTF-8 sequences stay
// inside one word. This single definition is shared by the word-level
// suffix array here and by the collection search tier (package search),
// so the two always agree on word boundaries.
func IsWordByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c >= 0x80
}

// ScanWords calls fn with the byte range [start, end) of each word in
// text — maximal runs of word bytes (IsWordByte); everything else is a
// separator. It is the allocation-free scanner under Tokenize, exported
// so other tokenizers (the search tier's case-folding one) can share the
// boundary rules without sharing the token representation.
func ScanWords(text []byte, fn func(start, end int)) {
	start := -1
	for i := 0; i <= len(text); i++ {
		var c byte
		if i < len(text) {
			c = text[i]
		}
		if IsWordByte(c) {
			if start < 0 {
				start = i
			}
		} else if start >= 0 {
			fn(start, i)
			start = -1
		}
	}
}

// Tokenize splits text into words: maximal runs of letters and digits.
// Everything else is a separator.
func Tokenize(text []byte) []string {
	var words []string
	ScanWords(text, func(start, end int) {
		words = append(words, string(text[start:end]))
	})
	return words
}

// New builds the index over the texts. Text identifiers follow slice order.
// Collections whose token sequence would overflow the suffix sorter's int32
// positions return ErrTooLarge.
func New(texts [][]byte) (*Index, error) {
	ix := &Index{vocab: map[string]int32{}, d: len(texts)}
	d := int32(len(texts))
	for id, t := range texts {
		for _, w := range Tokenize(t) {
			wid, ok := ix.vocab[w]
			if !ok {
				wid = int32(len(ix.vocab))
				ix.vocab[w] = wid
			}
			ix.seq = append(ix.seq, d+wid)
			ix.textOf = append(ix.textOf, int32(id))
		}
		ix.seq = append(ix.seq, int32(id)) // terminator
		ix.textOf = append(ix.textOf, int32(id))
	}
	var err error
	if ix.sa, err = sais.Compute(ix.seq, ix.d+len(ix.vocab)); err != nil {
		return nil, fmt.Errorf("wordindex: %w", err)
	}
	return ix, nil
}

// NumWords returns the total token count (including terminators).
func (ix *Index) NumWords() int { return len(ix.seq) }

// VocabSize returns the number of distinct words.
func (ix *Index) VocabSize() int { return len(ix.vocab) }

// phraseIDs converts a phrase to word ids; ok is false when some word does
// not occur in the collection at all.
func (ix *Index) phraseIDs(phrase string) ([]int32, bool) {
	words := Tokenize([]byte(phrase))
	if len(words) == 0 {
		return nil, false
	}
	ids := make([]int32, len(words))
	for i, w := range words {
		wid, ok := ix.vocab[w]
		if !ok {
			return nil, false
		}
		ids[i] = int32(ix.d) + wid
	}
	return ids, true
}

// saRange returns the half-open suffix-array range of suffixes starting
// with the id sequence p.
func (ix *Index) saRange(p []int32) (int, int) {
	cmpGE := func(suffix int) bool {
		// seq[suffix:] >= p ?
		for k, c := range p {
			if suffix+k >= len(ix.seq) {
				return false // shorter prefix: smaller
			}
			if ix.seq[suffix+k] != c {
				return ix.seq[suffix+k] > c
			}
		}
		return true // p is a prefix: >= p
	}
	cmpGT := func(suffix int) bool {
		for k, c := range p {
			if suffix+k >= len(ix.seq) {
				return false
			}
			if ix.seq[suffix+k] != c {
				return ix.seq[suffix+k] > c
			}
		}
		return false // p is a prefix: not > p
	}
	lo := sort.Search(len(ix.sa), func(i int) bool { return cmpGE(int(ix.sa[i])) })
	hi := sort.Search(len(ix.sa), func(i int) bool { return cmpGT(int(ix.sa[i])) })
	return lo, hi
}

// CountOccurrences returns the number of phrase occurrences (word-aligned).
func (ix *Index) CountOccurrences(phrase string) int {
	ids, ok := ix.phraseIDs(phrase)
	if !ok {
		return 0
	}
	lo, hi := ix.saRange(ids)
	return hi - lo
}

// ContainsPhrase returns the sorted distinct text ids containing the phrase
// as consecutive words.
func (ix *Index) ContainsPhrase(phrase string) []int32 {
	ids, ok := ix.phraseIDs(phrase)
	if !ok {
		return nil
	}
	lo, hi := ix.saRange(ids)
	seen := map[int32]struct{}{}
	for i := lo; i < hi; i++ {
		seen[ix.textOf[ix.sa[i]]] = struct{}{}
	}
	out := make([]int32, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// SizeInBytes reports the memory footprint of the structure.
func (ix *Index) SizeInBytes() int {
	sz := 4*len(ix.seq) + 4*len(ix.sa) + 4*len(ix.textOf) + 48
	for w := range ix.vocab {
		sz += len(w) + 20
	}
	return sz
}
