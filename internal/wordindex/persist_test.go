package wordindex

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/persist"
)

func TestWordIndexSaveLoadRoundTrip(t *testing.T) {
	texts := [][]byte{
		[]byte("the quick brown fox jumps over the lazy dog"),
		[]byte("the quick red fox"),
		[]byte(""),
		[]byte("dog eat dog world"),
	}
	ix := mustNew(t, texts)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumWords() != ix.NumWords() || got.VocabSize() != ix.VocabSize() {
		t.Fatal("dimensions differ")
	}
	for _, phrase := range []string{
		"the quick", "fox", "dog", "quick brown fox", "lazy cat", "dog eat dog", "",
	} {
		if got.CountOccurrences(phrase) != ix.CountOccurrences(phrase) {
			t.Fatalf("CountOccurrences(%q)", phrase)
		}
		if !reflect.DeepEqual(got.ContainsPhrase(phrase), ix.ContainsPhrase(phrase)) {
			t.Fatalf("ContainsPhrase(%q)", phrase)
		}
	}
}

func TestWordIndexLoadCorrupt(t *testing.T) {
	ix := mustNew(t, [][]byte{[]byte("one two three"), []byte("two three four")})
	var buf bytes.Buffer
	ix.Save(&buf)
	data := buf.Bytes()
	for cut := 0; cut < len(data); cut++ {
		if _, err := Load(bytes.NewReader(data[:cut])); !errors.Is(err, persist.ErrCorrupt) {
			t.Fatalf("cut=%d err=%v", cut, err)
		}
	}
	// A suffix array that is not a permutation must be rejected.
	var buf2 bytes.Buffer
	ix.Save(&buf2)
	bad := buf2.Bytes()
	// Find the sa section: it follows seq; corrupt its first entry by making
	// it equal to the second (duplicate → not a permutation). Rather than
	// hand-computing offsets, flip bytes until Load fails with a clean error
	// or succeeds; no input may panic.
	for i := range bad {
		mut := append([]byte(nil), bad...)
		mut[i] ^= 0xFF
		if _, err := Load(bytes.NewReader(mut)); err != nil && !errors.Is(err, persist.ErrCorrupt) {
			t.Fatalf("byte %d: unexpected error type %v", i, err)
		}
	}
}
