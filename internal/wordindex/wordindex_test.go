package wordindex

import (
	"errors"
	"fmt"
	"math/rand"
	"repro/internal/sais"
	"strings"
	"testing"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"hello world", []string{"hello", "world"}},
		{"  a,b;c!  ", []string{"a", "b", "c"}},
		{"", nil},
		{"...", nil},
		{"blood-sample 123", []string{"blood", "sample", "123"}},
	}
	for _, c := range cases {
		got := Tokenize([]byte(c.in))
		if len(got) != len(c.want) {
			t.Fatalf("Tokenize(%q)=%v want %v", c.in, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("Tokenize(%q)=%v want %v", c.in, got, c.want)
			}
		}
	}
}

func naivePhrase(texts []string, phrase string) []int32 {
	pw := Tokenize([]byte(phrase))
	var out []int32
	for id, tx := range texts {
		words := Tokenize([]byte(tx))
		for i := 0; i+len(pw) <= len(words); i++ {
			match := true
			for k := range pw {
				if words[i+k] != pw[k] {
					match = false
					break
				}
			}
			if match {
				out = append(out, int32(id))
				break
			}
		}
	}
	return out
}

func toBytes(ss []string) [][]byte {
	out := make([][]byte, len(ss))
	for i, s := range ss {
		out[i] = []byte(s)
	}
	return out
}

func TestPhraseSearch(t *testing.T) {
	texts := []string{
		"the quick brown fox",
		"the lazy dog sleeps",
		"quick brown dogs bark",
		"a dark horse appears",
		"the dark quick brown horse",
	}
	ix := mustNew(t, toBytes(texts))
	for _, phrase := range []string{
		"quick brown", "the", "dark horse", "dog", "horse", "brown fox",
		"quick brown fox", "nothere", "fox the", "sleeps",
	} {
		got := ix.ContainsPhrase(phrase)
		want := naivePhrase(texts, phrase)
		if len(got) != len(want) {
			t.Fatalf("ContainsPhrase(%q)=%v want %v", phrase, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("ContainsPhrase(%q)=%v want %v", phrase, got, want)
			}
		}
	}
}

func TestCountOccurrences(t *testing.T) {
	texts := []string{"a b a b a", "b a b"}
	ix := mustNew(t, toBytes(texts))
	if got := ix.CountOccurrences("a b"); got != 3 {
		t.Fatalf("count(a b)=%d", got)
	}
	if got := ix.CountOccurrences("b a"); got != 3 {
		t.Fatalf("count(b a)=%d", got)
	}
	if got := ix.CountOccurrences("a b a"); got != 2 {
		t.Fatalf("count(a b a)=%d", got)
	}
	// Phrases never cross text boundaries.
	if got := ix.CountOccurrences("a b a b a b"); got != 0 {
		t.Fatalf("cross-boundary count=%d", got)
	}
}

func TestEmptyAndUnknown(t *testing.T) {
	ix := mustNew(t, nil)
	if ix.ContainsPhrase("x") != nil {
		t.Fatal("empty index")
	}
	ix2 := mustNew(t, toBytes([]string{"hello"}))
	if ix2.ContainsPhrase("unknownword") != nil {
		t.Fatal("unknown word")
	}
	if ix2.ContainsPhrase("...") != nil {
		t.Fatal("empty phrase")
	}
}

func TestRandomizedAgainstNaive(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	vocab := []string{"aa", "bb", "cc", "dd", "ee"}
	for trial := 0; trial < 20; trial++ {
		var texts []string
		for i := 0; i < 10; i++ {
			n := r.Intn(20)
			var ws []string
			for k := 0; k < n; k++ {
				ws = append(ws, vocab[r.Intn(len(vocab))])
			}
			texts = append(texts, strings.Join(ws, " "))
		}
		ix := mustNew(t, toBytes(texts))
		for k := 0; k < 10; k++ {
			plen := 1 + r.Intn(3)
			var pw []string
			for j := 0; j < plen; j++ {
				pw = append(pw, vocab[r.Intn(len(vocab))])
			}
			phrase := strings.Join(pw, " ")
			got := ix.ContainsPhrase(phrase)
			want := naivePhrase(texts, phrase)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("phrase %q: got %v want %v (texts=%v)", phrase, got, want, texts)
			}
		}
	}
}

func mustNew(t *testing.T, texts [][]byte) *Index {
	t.Helper()
	ix, err := New(texts)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// TestErrTooLarge would need a 2^31-token collection to trip the guard end
// to end; the boundary itself is pinned in package sais (CheckSize), and
// this test pins that the wordindex entry point routes through it and that
// the typed error is recognizable under errors.Is through the wrap.
func TestErrTooLargeAlias(t *testing.T) {
	if !errors.Is(fmt.Errorf("wordindex: %w", sais.ErrTooLarge), ErrTooLarge) {
		t.Fatal("wrapped sais.ErrTooLarge must match wordindex.ErrTooLarge")
	}
	if ErrTooLarge != sais.ErrTooLarge {
		t.Fatal("ErrTooLarge must alias sais.ErrTooLarge")
	}
}
