package wordindex

import (
	"io"

	"repro/internal/persist"
)

// On-disk layout: the vocabulary (in id order), the id sequence, the
// word-level suffix array and the per-position text ids. Loading restores
// the structure directly, skipping the suffix sort of New.
//
// Format 2 is the aligned layout: the int32 arrays are padded onto 8-byte
// offsets so LoadMapped can alias them out of a mapped buffer. Format 1
// (unaligned) files keep loading through the copying path.

const (
	wordIndexFormat        = 1
	wordIndexFormatAligned = 2
)

// Store serializes the index into pw in the aligned layout. The writer's
// first byte must sit on an 8-byte offset (stream start or an aligned
// container section) for the alignment to carry to disk.
func (ix *Index) Store(pw *persist.Writer) {
	pw.Byte(wordIndexFormatAligned)
	pw.SetAligned(true)
	pw.Int(ix.d)
	words := make([]string, len(ix.vocab))
	for w, id := range ix.vocab {
		words[id] = w
	}
	pw.Int(len(words))
	for _, w := range words {
		pw.String(w)
	}
	pw.Int32s(ix.seq)
	pw.Int32s(ix.sa)
	pw.Int32s(ix.textOf)
}

// Read reads an index written by Store (either format). On corrupt input
// it returns nil and leaves the error in pr.
func Read(pr persist.Source) *Index {
	format := pr.Byte()
	if pr.Check(format == wordIndexFormat || format == wordIndexFormatAligned,
		"unknown word index format") != nil {
		return nil
	}
	pr.SetAligned(format == wordIndexFormatAligned)
	ix := &Index{vocab: map[string]int32{}}
	ix.d = pr.Int()
	nWords := pr.Int()
	if pr.Err() != nil {
		return nil
	}
	for i := 0; i < nWords; i++ {
		w := pr.String()
		if pr.Err() != nil {
			return nil
		}
		ix.vocab[w] = int32(i)
	}
	if pr.Check(len(ix.vocab) == nWords, "duplicate vocabulary word") != nil {
		return nil
	}
	ix.seq = pr.Int32s()
	ix.sa = pr.Int32s()
	ix.textOf = pr.Int32s()
	if pr.Err() != nil {
		return nil
	}
	n := len(ix.seq)
	ok := len(ix.sa) == n && len(ix.textOf) == n
	if pr.Check(ok, "word index array lengths mismatch") != nil {
		return nil
	}
	maxID := int32(ix.d + nWords)
	seen := make([]bool, n)
	for i := 0; i < n; i++ {
		if pr.Check(ix.seq[i] >= 0 && ix.seq[i] < maxID, "word id out of range") != nil {
			return nil
		}
		p := ix.sa[i]
		if pr.Check(p >= 0 && int(p) < n && !seen[p], "suffix array is not a permutation") != nil {
			return nil
		}
		seen[p] = true
		if pr.Check(ix.textOf[i] >= 0 && int(ix.textOf[i]) < ix.d, "text id out of range") != nil {
			return nil
		}
	}
	return ix
}

// Save serializes the index to w.
func (ix *Index) Save(w io.Writer) error {
	pw := persist.NewWriter(w)
	ix.Store(pw)
	return pw.Flush()
}

// Load reads an index written by Save.
func Load(r io.Reader) (*Index, error) {
	pr := persist.NewReader(r)
	ix := Read(pr)
	if pr.Err() != nil {
		return nil, pr.Err()
	}
	return ix, nil
}

// LoadMapped reads an aligned-format index out of data, aliasing the int32
// arrays instead of copying them. data — typically an mmap'd file — must
// stay alive and unchanged for the lifetime of the index.
func LoadMapped(data []byte) (*Index, error) {
	mr := persist.NewMReader(data)
	ix := Read(mr)
	if mr.Err() != nil {
		return nil, mr.Err()
	}
	return ix, nil
}
