package tags

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/persist"
)

func TestSequenceSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, tc := range []struct{ n, ids int }{
		{0, 1}, {1, 1}, {100, 2}, {1000, 17}, {4096, 300},
	} {
		ids := make([]int32, tc.n)
		for i := range ids {
			ids[i] = int32(rng.Intn(tc.ids))
		}
		s := Build(ids, tc.ids)
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Load(&buf)
		if err != nil {
			t.Fatalf("n=%d ids=%d: %v", tc.n, tc.ids, err)
		}
		if got.Len() != s.Len() || got.NumIDs() != s.NumIDs() {
			t.Fatalf("dimensions")
		}
		for i := 0; i < tc.n; i++ {
			if got.Access(i) != ids[i] {
				t.Fatalf("Access(%d)", i)
			}
		}
		for id := int32(0); int(id) < tc.ids; id++ {
			if got.Count(id) != s.Count(id) {
				t.Fatalf("Count(%d)", id)
			}
			for p := 0; p <= tc.n; p += 1 + tc.n/53 {
				if got.Rank(id, p) != s.Rank(id, p) {
					t.Fatalf("Rank(%d,%d)", id, p)
				}
				if got.NextOccurrence(id, p) != s.NextOccurrence(id, p) {
					t.Fatalf("NextOccurrence(%d,%d)", id, p)
				}
			}
		}
	}
}

func TestSequenceLoadCorrupt(t *testing.T) {
	s := Build([]int32{0, 1, 2, 1, 0, 3}, 4)
	var buf bytes.Buffer
	s.Save(&buf)
	data := buf.Bytes()
	for cut := 0; cut < len(data); cut++ {
		if _, err := Load(bytes.NewReader(data[:cut])); !errors.Is(err, persist.ErrCorrupt) {
			t.Fatalf("cut=%d err=%v", cut, err)
		}
	}
	// Width inconsistent with the id space.
	bad := append([]byte(nil), data...)
	bad[17] = 33 // width field (format byte + n + maxTagID)
	if _, err := Load(bytes.NewReader(bad)); !errors.Is(err, persist.ErrCorrupt) {
		t.Fatalf("bad width: %v", err)
	}
}
