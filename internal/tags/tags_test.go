package tags

import (
	"math/rand"
	"testing"
)

func naiveRank(ids []int32, tag int32, i int) int {
	c := 0
	for j := 0; j < i && j < len(ids); j++ {
		if ids[j] == tag {
			c++
		}
	}
	return c
}

func TestSequenceBasic(t *testing.T) {
	ids := []int32{0, 1, 2, 1, 0, 3, 2, 1}
	s := Build(ids, 4)
	if s.Len() != 8 {
		t.Fatal("len")
	}
	for i, id := range ids {
		if s.Access(i) != id {
			t.Fatalf("access(%d)=%d want %d", i, s.Access(i), id)
		}
	}
	if s.Count(1) != 3 || s.Count(3) != 1 {
		t.Fatal("count")
	}
	if s.Rank(1, 4) != 2 {
		t.Fatalf("rank(1,4)=%d", s.Rank(1, 4))
	}
	if s.Select(1, 2) != 7 {
		t.Fatalf("select(1,2)=%d", s.Select(1, 2))
	}
	if s.NextOccurrence(2, 3) != 6 {
		t.Fatal("next occurrence")
	}
	if s.PrevOccurrence(2, 6) != 2 {
		t.Fatal("prev occurrence")
	}
	if s.PrevOccurrence(2, 2) != -1 {
		t.Fatal("prev occurrence none")
	}
}

func TestSequenceRandom(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for _, numIDs := range []int{1, 2, 7, 64, 300} {
		n := 2000
		ids := make([]int32, n)
		for i := range ids {
			ids[i] = int32(r.Intn(numIDs))
		}
		s := Build(ids, numIDs)
		for i := 0; i < n; i += 17 {
			if s.Access(i) != ids[i] {
				t.Fatalf("access %d", i)
			}
		}
		for tag := int32(0); tag < int32(numIDs); tag += int32(1 + numIDs/8) {
			for i := 0; i <= n; i += 101 {
				if got := s.Rank(tag, i); got != naiveRank(ids, tag, i) {
					t.Fatalf("rank(%d,%d)=%d want %d", tag, i, got, naiveRank(ids, tag, i))
				}
			}
			cnt := s.Count(tag)
			for j := 0; j < cnt; j += 1 + cnt/10 {
				pos := s.Select(tag, j)
				if ids[pos] != tag || naiveRank(ids, tag, pos) != j {
					t.Fatalf("select(%d,%d)=%d wrong", tag, j, pos)
				}
			}
		}
	}
}

func TestSequenceSingleID(t *testing.T) {
	ids := make([]int32, 100)
	s := Build(ids, 1)
	if s.Rank(0, 50) != 50 || s.Select(0, 99) != 99 {
		t.Fatal("single id structure")
	}
}

func TestOutOfRangeTag(t *testing.T) {
	s := Build([]int32{0, 1}, 2)
	if s.Rank(99, 2) != 0 || s.Select(99, 0) != -1 || s.Count(99) != 0 {
		t.Fatal("out of range tag must be empty")
	}
	if s.NextOccurrence(99, 0) != -1 {
		t.Fatal("next occurrence of unknown tag")
	}
}
