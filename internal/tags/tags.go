// Package tags implements the tag sequence of the tree index (paper Section
// 4.1.2): the sequence Tag of opening/closing tag identifiers aligned with
// the parentheses, stored as a packed array for O(1) access plus one sparse
// "sarray" row per distinct tag for rank/select. These power the jump
// operations TaggedDesc, TaggedPrec and TaggedFoll of Section 4.2.2.
package tags

import (
	"math/bits"

	"repro/internal/bitvec"
)

// Sequence stores 2n tag identifiers (one per parenthesis). Identifiers are
// in [0, 2t): even for any value; the caller decides the open/close
// convention. Access is O(1); Rank is O(log n); Select is O(1) amortized.
type Sequence struct {
	packed   []uint64
	width    uint // bits per entry
	n        int
	rows     []*bitvec.Sparse // one per tag id
	maxTagID int
}

// Build creates the sequence from the raw identifier slice; ids must be in
// [0, numIDs).
func Build(ids []int32, numIDs int) *Sequence {
	s := &Sequence{n: len(ids), maxTagID: numIDs}
	w := uint(bits.Len(uint(max(numIDs-1, 1))))
	if w == 0 {
		w = 1
	}
	s.width = w
	s.packed = make([]uint64, (len(ids)*int(w)+63)/64)
	positions := make([][]int, numIDs)
	for i, id := range ids {
		s.set(i, uint64(id))
		positions[id] = append(positions[id], i)
	}
	s.rows = make([]*bitvec.Sparse, numIDs)
	for id := 0; id < numIDs; id++ {
		s.rows[id] = bitvec.NewSparse(len(ids)+1, positions[id])
	}
	return s
}

func (s *Sequence) set(i int, v uint64) {
	bitPos := i * int(s.width)
	w, off := bitPos>>6, uint(bitPos&63)
	s.packed[w] |= v << off
	if off+s.width > 64 {
		s.packed[w+1] |= v >> (64 - off)
	}
}

// Access returns the tag id at position i.
func (s *Sequence) Access(i int) int32 {
	bitPos := i * int(s.width)
	w, off := bitPos>>6, uint(bitPos&63)
	v := s.packed[w] >> off
	if off+s.width > 64 {
		v |= s.packed[w+1] << (64 - off)
	}
	return int32(v & (1<<s.width - 1))
}

// Len returns the sequence length (2n).
func (s *Sequence) Len() int { return s.n }

// NumIDs returns the tag identifier space size.
func (s *Sequence) NumIDs() int { return s.maxTagID }

// Rank returns the number of occurrences of tag in [0, i).
func (s *Sequence) Rank(tag int32, i int) int {
	if int(tag) >= len(s.rows) {
		return 0
	}
	return s.rows[tag].Rank1(i)
}

// Select returns the position of the (j+1)-th occurrence of tag, or -1.
func (s *Sequence) Select(tag int32, j int) int {
	if int(tag) >= len(s.rows) {
		return -1
	}
	return s.rows[tag].Select1(j)
}

// Count returns the total number of occurrences of tag.
func (s *Sequence) Count(tag int32) int {
	if int(tag) >= len(s.rows) {
		return 0
	}
	return s.rows[tag].Ones()
}

// NextOccurrence returns the smallest position >= p holding tag, or -1.
// This is the primitive behind TaggedDesc/TaggedFoll jumps.
func (s *Sequence) NextOccurrence(tag int32, p int) int {
	if int(tag) >= len(s.rows) {
		return -1
	}
	return s.rows[tag].NextOne(p)
}

// PrevOccurrence returns the largest position < p holding tag, or -1.
func (s *Sequence) PrevOccurrence(tag int32, p int) int {
	if int(tag) >= len(s.rows) {
		return -1
	}
	r := s.rows[tag].Rank1(p)
	if r == 0 {
		return -1
	}
	return s.rows[tag].Select1(r - 1)
}

// SizeInBytes reports the memory footprint of the structure.
func (s *Sequence) SizeInBytes() int {
	sz := 8*len(s.packed) + 48
	for _, r := range s.rows {
		sz += r.SizeInBytes()
	}
	return sz
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
