package tags

import (
	"io"
	"sync/atomic"

	"repro/internal/bitvec"
	"repro/internal/persist"
)

// On-disk layout: the packed identifier array plus its dimensions, and the
// per-tag sparse rank/select rows in their Elias–Fano form. The rows could
// be re-derived from the packed array, but storing them (a comparable
// number of bits) makes loading a near-memcpy instead of a per-position
// distribution pass.

const sequenceFormat = 1

// Store serializes the sequence into pw.
func (s *Sequence) Store(pw *persist.Writer) {
	pw.Byte(sequenceFormat)
	pw.Int(s.n)
	pw.Int(s.maxTagID)
	pw.Int(int(s.width))
	pw.Words(s.packed)
	for _, r := range s.rows {
		r.Store(pw)
	}
}

// Read reads a sequence written by Store. On corrupt input it returns nil
// and leaves the error in pr.
func Read(pr persist.Source) *Sequence {
	if pr.Check(pr.Byte() == sequenceFormat, "unknown tag sequence format") != nil {
		return nil
	}
	s := &Sequence{}
	s.n = pr.Int()
	s.maxTagID = pr.Int()
	w := pr.Int()
	s.packed = pr.Words()
	if pr.Err() != nil {
		return nil
	}
	// The id-space bound (2*n+8) reflects the only persisted use: xmltree
	// interns at most four reserved labels plus one label per node, and
	// stores open/close variants. It keeps a corrupt count from driving the
	// per-tag row allocation below.
	ok := w >= 1 && w <= 32 &&
		s.maxTagID >= 1 && s.maxTagID <= 1<<w && s.maxTagID <= 2*s.n+8 &&
		len(s.packed) == (s.n*w+63)/64
	if pr.Check(ok, "tag sequence dimensions mismatch") != nil {
		return nil
	}
	s.width = uint(w)
	// Every packed id must be in range: consumers index per-tag arrays with
	// Access results. Skip the scan when the width makes all values legal;
	// on mapped sources the scan is chunked across the CPUs — it is pure
	// reads over an aliased array and sits on the open-latency path.
	if s.maxTagID < 1<<s.width {
		var bad atomic.Bool
		persist.Chunked(pr, s.n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if int(s.Access(i)) >= s.maxTagID {
					bad.Store(true)
					return
				}
			}
		})
		if pr.Check(!bad.Load(), "tag identifier out of range") != nil {
			return nil
		}
	}
	s.rows = make([]*bitvec.Sparse, s.maxTagID)
	total := 0
	for id := range s.rows {
		r := bitvec.ReadSparse(pr)
		if r == nil {
			return nil
		}
		if pr.Check(r.Len() == s.n+1, "tag row universe mismatch") != nil {
			return nil
		}
		// Row positions must be real sequence positions (< n): jump results
		// flow unchecked into parenthesis navigation.
		if r.Ones() > 0 && pr.Check(r.Select1(r.Ones()-1) < s.n, "tag row position out of range") != nil {
			return nil
		}
		s.rows[id] = r
		total += r.Ones()
	}
	if pr.Check(total == s.n, "tag rows do not cover the sequence") != nil {
		return nil
	}
	return s
}

// Save serializes the sequence to w.
func (s *Sequence) Save(w io.Writer) error {
	pw := persist.NewWriter(w)
	s.Store(pw)
	return pw.Flush()
}

// Load reads a sequence written by Save.
func Load(r io.Reader) (*Sequence, error) {
	pr := persist.NewReader(r)
	s := Read(pr)
	if pr.Err() != nil {
		return nil, pr.Err()
	}
	return s, nil
}
